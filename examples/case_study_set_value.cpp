//===- examples/case_study_set_value.cpp - The §5.5 case study ------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// CVE-2021-23440 (npm `set-value` v3.0.0): a prototype pollution inside a
// loop. The paper's §5.5 uses it to show why MDGs win: the cyclic,
// fixed-point loop representation keeps the graph tiny and the pattern
// visible, while ODGen's unrolling + state forking times out.
//
// This example builds the Figure 9 MDG, shows the loop-versioning cycle,
// runs both detectors, and contrasts the outcomes.
//
// Build & run:  ./build/examples/case_study_set_value
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "odgen/ODGenAnalyzer.h"
#include "queries/QueryRunner.h"

#include <cstdio>

using namespace gjs;

static const char *SetValue =
    "function set_value(target, prop, value) {\n"
    "  const path = prop.split('.');\n"
    "  const len = path.length;\n"
    "  var obj = target;\n"
    "  for (var i = 0; i < len; i++) {\n"
    "    const p = path[i];\n"
    "    if (i === len - 1) {\n"
    "      obj[p] = value;\n"
    "    }\n"
    "    obj = obj[p];\n"
    "  }\n"
    "  return target;\n"
    "}\n"
    "module.exports = set_value;\n";

int main() {
  std::printf("== set-value v3.0.0 (CVE-2021-23440), Figure 8 ==\n%s\n",
              SetValue);

  // Graph.js: summary fixpoint, one node per allocation site.
  DiagnosticEngine Diags;
  auto Program = core::normalizeJS(SetValue, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  analysis::BuildResult Build = analysis::buildMDG(*Program);
  std::printf("Graph.js MDG: %zu nodes, %zu edges (no object explosion)\n",
              Build.Graph.numNodes(), Build.Graph.numEdges());

  // The cyclic representation: version edges that fold loop iterations
  // back onto the same nodes.
  size_t VersionEdges = 0, CyclicEdges = 0;
  for (mdg::NodeId N : Build.Graph.nodeIds())
    for (const mdg::Edge &E : Build.Graph.out(N)) {
      if (E.Kind == mdg::EdgeKind::Version ||
          E.Kind == mdg::EdgeKind::VersionUnknown) {
        ++VersionEdges;
        if (Build.Graph.isVersionAncestor(E.To, E.From))
          ++CyclicEdges;
      }
    }
  std::printf("version edges: %zu (%zu participate in cycles)\n\n",
              VersionEdges, CyclicEdges);

  queries::GraphDBRunner Runner(Build);
  std::vector<queries::VulnReport> Reports =
      Runner.detect(queries::SinkConfig::defaults());
  std::printf("Graph.js findings:\n");
  for (const queries::VulnReport &R : Reports)
    std::printf("  %s\n", R.str().c_str());

  // ODGen: unrolling + abstract-state forking on the dynamic property
  // chain exhausts its budget (the paper: "ODGen times out").
  odgen::ODGenAnalyzer OD;
  odgen::ODGenResult ODR = OD.analyze(SetValue);
  std::printf("\nODGen baseline: %s (graph grew to %zu nodes before "
              "stopping)\n",
              ODR.TimedOut ? "TIMED OUT — no findings" : "completed",
              ODR.NumNodes);

  bool GraphJSFound = false;
  for (const queries::VulnReport &R : Reports)
    GraphJSFound |= R.Type == queries::VulnType::PrototypePollution;
  std::printf("\nsummary: Graph.js %s the CVE-2021-23440 pattern; "
              "ODGen %s.\n",
              GraphJSFound ? "detects" : "misses",
              ODR.TimedOut ? "times out" : "completes");
  return GraphJSFound ? 0 : 1;
}
