//===- examples/scan_package.cpp - Scan JavaScript files ------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The Graph.js command-line experience: scan JavaScript files (or, with no
// arguments, a bundled demo package) and print machine-readable findings
// plus per-phase timings.
//
// Usage:  ./build/examples/scan_package [file.js ...]
//
//===----------------------------------------------------------------------===//

#include "scanner/Scanner.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace gjs;

static const char *DemoIndex =
    "var cp = require('child_process');\n"
    "var helpers = require('./helpers');\n"
    "function deploy(branch, cb) {\n"
    "  var cmd = 'git push origin ' + branch;\n"
    "  cp.exec(cmd, cb);\n"
    "}\n"
    "module.exports = deploy;\n";

static const char *DemoHelpers =
    "function setOption(config, key, subkey, value) {\n"
    "  var section = config[key];\n"
    "  section[subkey] = value;\n"
    "  return config;\n"
    "}\n"
    "exports.setOption = setOption;\n";

int main(int argc, char **argv) {
  std::vector<scanner::SourceFile> Files;
  if (argc > 1) {
    for (int I = 1; I < argc; ++I) {
      std::ifstream In(argv[I]);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", argv[I]);
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Files.push_back({argv[I], SS.str()});
    }
  } else {
    std::printf("(no files given; scanning the bundled demo package)\n\n");
    Files.push_back({"index.js", DemoIndex});
    Files.push_back({"helpers.js", DemoHelpers});
  }

  scanner::Scanner S;
  scanner::ScanResult R = S.scanPackage(Files);

  for (const scanner::ScanError &E : R.Errors)
    std::fprintf(stderr, "warning: %s\n", E.str().c_str());

  std::printf("scanned %zu file(s): %zu AST nodes, %zu core statements\n",
              Files.size(), R.ASTNodes, R.CoreStmts);
  std::printf("MDG: %zu nodes, %zu edges\n", R.MDGNodes, R.MDGEdges);
  std::printf("phases: parse %.3fs, graph %.3fs, import %.3fs, "
              "queries %.3fs\n\n",
              R.Times.Parse, R.Times.GraphBuild, R.Times.DbImport,
              R.Times.Query);

  if (R.Reports.empty()) {
    std::printf("no findings.\n");
    return 0;
  }
  std::printf("%s\n", scanner::reportsToJSON(R.Reports).c_str());
  return 0;
}
