//===- examples/quickstart.cpp - Figure 1 end to end ----------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The paper's motivating example (Figure 1a): a `git_reset` helper with
// both an OS command injection and a prototype pollution. This example
// walks the whole public API surface:
//
//   1. parse JavaScript and lower it to Core JavaScript;
//   2. build the Multiversion Dependency Graph;
//   3. print the MDG (the Figure 1c structure);
//   4. run the Table 2 vulnerability queries through the graph database;
//   5. print the findings as JSON.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "queries/QueryRunner.h"
#include "scanner/Scanner.h"

#include <cstdio>

using namespace gjs;

static const char *Figure1a =
    "const { exec } = require('child_process');\n"
    "function git_reset(config, op, branch_name, url) {\n"
    "  var options = config[op];\n"
    "  options[branch_name] = url;\n"
    "  options.cmd = 'git reset';\n"
    "  exec(options.cmd + ' HEAD~' + options.commit);\n"
    "}\n"
    "module.exports = git_reset;\n";

int main() {
  std::printf("== Figure 1a source ==\n%s\n", Figure1a);

  // Step 1: parse + normalize to Core JavaScript (§3.2).
  DiagnosticEngine Diags;
  auto Program = core::normalizeJS(Figure1a, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("== Core JavaScript ==\n%s\n", core::dump(*Program).c_str());

  // Step 2: build the MDG (§3).
  analysis::BuildResult Build = analysis::buildMDG(*Program);
  std::printf("== MDG (%zu nodes, %zu edges) ==\n%s\n",
              Build.Graph.numNodes(), Build.Graph.numEdges(),
              Build.Graph.dump(Build.Props).c_str());

  // Step 3: run the vulnerability queries (§4, Table 2).
  queries::GraphDBRunner Runner(Build);
  queries::DetectStats Stats;
  std::vector<queries::VulnReport> Reports =
      Runner.detect(queries::SinkConfig::defaults(), &Stats);

  std::printf("== Findings (query work: %llu steps) ==\n",
              static_cast<unsigned long long>(Stats.QueryWork));
  for (const queries::VulnReport &R : Reports)
    std::printf("  %s\n", R.str().c_str());
  std::printf("\n== JSON ==\n%s\n", scanner::reportsToJSON(Reports).c_str());

  // The paper's two findings: CWE-78 at the exec call (line 6) and
  // CWE-1321 at the dynamic assignment (line 4).
  return Reports.size() >= 2 ? 0 : 1;
}
