//===- examples/custom_query.cpp - Extending Graph.js ---------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The paper's §6: "Graph.js's queries can be expanded to identify other
// taint-style vulnerabilities, such as SQL injection, without modifying
// the underlying MDG. For instance, to detect SQL injections, one can
// supply common sinks like mysql.connection.query."
//
// This example does exactly that — a JSON sink configuration adds a SQL
// injection sink class — and then goes one level deeper: it runs a
// hand-written query in the Cypher-like language directly against the
// imported MDG.
//
// Build & run:  ./build/examples/custom_query
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "graphdb/QueryEngine.h"
#include "queries/QueryRunner.h"

#include <cstdio>

using namespace gjs;

static const char *WebApp =
    "var mysql = require('mysql');\n"
    "var db = mysql.createConnection({host: 'localhost'});\n"
    "function findUser(name, cb) {\n"
    "  var q = \"SELECT * FROM users WHERE name = '\" + name + \"'\";\n"
    "  db.query(q, cb);\n"
    "}\n"
    "module.exports = findUser;\n";

// SQL injection is not a built-in class; CWE-94's slot carries it here
// (the report type labels come from the config's class name).
static const char *SinkConfigJSON = R"({
  "code-injection": [
    {"name": "query", "args": [0]},
    {"name": "mysql.createConnection.query", "args": [0]}
  ]
})";

int main() {
  std::printf("== web app with a SQL injection ==\n%s\n", WebApp);

  DiagnosticEngine Diags;
  auto Program = core::normalizeJS(WebApp, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  analysis::BuildResult Build = analysis::buildMDG(*Program);

  // Part 1: user-supplied sink configuration (§4, §6).
  queries::SinkConfig Custom;
  std::string Error;
  if (!queries::SinkConfig::fromJSON(SinkConfigJSON, Custom, &Error)) {
    std::fprintf(stderr, "bad sink config: %s\n", Error.c_str());
    return 1;
  }
  queries::GraphDBRunner Runner(Build);
  std::vector<queries::VulnReport> Reports = Runner.detect(Custom);
  std::printf("== findings with the custom sink list ==\n");
  for (const queries::VulnReport &R : Reports)
    std::printf("  sink '%s' reached by tainted data at line %u\n",
                R.SinkName.c_str(), R.SinkLoc.Line);

  // Part 2: a raw query against the graph database. Find every call whose
  // argument an exported-function parameter reaches.
  graphdb::QueryEngine Engine(Runner.database());
  graphdb::ResultSet RS = Engine.run(
      "MATCH (src:Object {taint: 'true'})-[:D|P|PU|V|VU*0..]->(arg)"
      "-[:D]->(call:Call) RETURN src.label, call.name, call.line");
  std::printf("\n== raw query: tainted call arguments ==\n");
  std::printf("%-14s %-12s %s\n", "source", "call", "line");
  for (const graphdb::ResultRow &Row : RS.Rows)
    std::printf("%-14s %-12s %s\n", Row.Values[0].c_str(),
                Row.Values[1].c_str(), Row.Values[2].c_str());

  return Reports.empty() ? 1 : 0;
}
