// The paper's Figure 1 motivating example: a command injection in a
// git-helper package. `graphjs scan` reports CWE-78 at the exec call;
// `graphjs lint` validates the pipeline artifacts built from it.
const { exec } = require('child_process');

function git_reset(config, op, branch_name, url) {
  var options = config[op];
  options[branch_name] = url;
  options.cmd = 'git reset';
  exec(options.cmd + ' HEAD~' + options.commit);
}

module.exports = git_reset;
