// The §5.5 case study: npm set-value v3.0.0 (CVE-2021-23440), a prototype
// pollution inside a loop. Its MDG contains the loop-folded version cycle
// the lint pass reports as a note (expected shape, not a defect).
function set_value(target, prop, value) {
  const path = prop.split('.');
  const len = path.length;
  var obj = target;
  for (var i = 0; i < len; i++) {
    const p = path[i];
    if (i === len - 1) {
      obj[p] = value;
    }
    obj = obj[p];
  }
  return target;
}

module.exports = set_value;
