// An async command-injection flow for the async lowering (docs/ASYNC.md):
// attacker input settles a promise inside `new Promise(executor)`, crosses
// an `await` and a `.then()` reaction, and reaches the exec sink.
// `graphjs scan` reports CWE-78 at the exec call only when the lowering
// runs (compare `--no-async-lower`); `graphjs lint` validates the lowered
// IR's suspend/resume and reaction shapes.
var cp = require('child_process');

function load(cmd) {
  return new Promise(function (resolve, reject) {
    resolve('git clone ' + cmd);
  });
}

async function run(cmd, cb) {
  var full = await load(cmd);
  load(full).then(function (line) {
    cp.exec(line, cb);
  });
}

module.exports = run;
