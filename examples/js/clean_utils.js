// A benign utility module: no taint flows into a sink, so `graphjs scan`
// reports nothing and `graphjs lint` is error-free. Exercises branches,
// loops, and property writes in the lint smoke test.
function clamp(x, lo, hi) {
  if (x < lo) {
    return lo;
  }
  if (x > hi) {
    return hi;
  }
  return x;
}

function sum(values) {
  var total = 0;
  for (var i = 0; i < values.length; i++) {
    total = total + values[i];
  }
  return total;
}

function describe(name) {
  var info = {};
  info.name = name;
  info.kind = name ? 'named' : 'anonymous';
  return info;
}

module.exports = { clamp: clamp, sum: sum, describe: describe };
