#!/bin/sh
# Smoke test for `graphjs serve`: daemon up, one scan through the --client
# one-shot path, a status check, then a graceful shutdown. Everything runs
# through the real CLI and the real Unix socket.
set -e

BIN="$1"
EXAMPLE="$2"
SOCK="/tmp/gjs_serve_smoke_$$.sock"

"$BIN" serve --socket "$SOCK" --jobs 1 --quiet &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT

RESP=$("$BIN" serve --socket "$SOCK" --client \
  "{\"op\":\"scan\",\"name\":\"smoke\",\"files\":[\"$EXAMPLE\"]}")
echo "$RESP" | grep -q '"ok":true'
echo "$RESP" | grep -q '"package":"smoke"'

"$BIN" serve --socket "$SOCK" --client '{"op":"status"}' \
  | grep -q '"completed":1'

"$BIN" serve --socket "$SOCK" --client '{"op":"shutdown"}' \
  | grep -q '"ok":true'

wait "$PID"
