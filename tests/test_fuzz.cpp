//===- tests/test_fuzz.cpp - Robustness fuzzing ---------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The scanner ingests arbitrary npm-package contents; no input may crash
// it. These sweeps feed random garbage, random token soup, and mutated
// valid programs through the full pipeline (parse -> normalize -> build
// -> query) and require only absence-of-crash plus diagnostics sanity.
//
//===----------------------------------------------------------------------===//

#include "scanner/Scanner.h"
#include "support/RNG.h"
#include "workload/Packages.h"

#include <gtest/gtest.h>

using namespace gjs;

namespace {

std::string randomBytes(RNG &R, size_t Len) {
  std::string Out;
  for (size_t I = 0; I < Len; ++I)
    Out += static_cast<char>(32 + R.below(95)); // Printable ASCII.
  return Out;
}

std::string randomTokenSoup(RNG &R, size_t Tokens) {
  static const char *Pool[] = {
      "function", "var",    "if",   "(",    ")",   "{",    "}",  "[",
      "]",        ";",      ",",    "+",    "=",   "=>",   ".",  "...",
      "return",   "for",    "in",   "of",   "new", "a",    "b",  "f",
      "'s'",      "42",     "`t`",  "==",   "===", "!",    "?",  ":",
      "while",    "try",    "catch", "class", "/x/", "${", "}",  "exports"};
  std::string Out;
  for (size_t I = 0; I < Tokens; ++I) {
    Out += Pool[R.below(std::size(Pool))];
    Out += R.chance(0.2) ? "\n" : " ";
  }
  return Out;
}

} // namespace

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, GarbageNeverCrashesThePipeline) {
  RNG R(GetParam());
  scanner::ScanOptions O;
  O.Builder.WorkBudget = 20000; // Keep runaway inputs cheap.
  O.Engine.WorkBudget = 50000;
  scanner::Scanner S(O);

  // Random printable bytes.
  scanner::ScanResult R1 = S.scanSource(randomBytes(R, 50 + R.below(400)));
  (void)R1;

  // Random token soup (lexes cleanly, parses chaotically).
  scanner::ScanResult R2 =
      S.scanSource(randomTokenSoup(R, 30 + R.below(200)));
  (void)R2;

  // A valid generated program with random single-byte corruption.
  workload::PackageGenerator Gen(GetParam());
  workload::Package P = Gen.vulnerable(
      queries::VulnType::CommandInjection,
      static_cast<workload::Complexity>(R.below(5)),
      workload::VariantKind::Plain, 30);
  std::string Source = P.Files[0].Contents;
  for (int I = 0; I < 8; ++I)
    Source[R.below(Source.size())] = static_cast<char>(32 + R.below(95));
  scanner::ScanResult R3 = S.scanSource(Source);
  (void)R3;

  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range<uint64_t>(1, 31));
