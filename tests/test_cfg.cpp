//===- tests/test_cfg.cpp - CFG construction tests ------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::cfg;

namespace {

ModuleCFG build(const std::string &Source) {
  DiagnosticEngine Diags;
  auto P = parseJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return buildCFG(*P);
}

/// True if block B can reach block T.
bool reaches(const FunctionCFG &G, BlockId B, BlockId T) {
  std::vector<bool> Seen(G.numBlocks(), false);
  std::vector<BlockId> Work{B};
  Seen[B] = true;
  while (!Work.empty()) {
    BlockId N = Work.back();
    Work.pop_back();
    if (N == T)
      return true;
    for (const BlockEdge &E : G.block(N).Successors)
      if (!Seen[E.To]) {
        Seen[E.To] = true;
        Work.push_back(E.To);
      }
  }
  return false;
}

} // namespace

TEST(CFGTest, StraightLineIsOneBlock) {
  ModuleCFG M = build("var a = 1; var b = a + 2; f(b);");
  const FunctionCFG &G = M.TopLevel;
  EXPECT_TRUE(reaches(G, G.entry(), G.exit()));
  EXPECT_EQ(G.numStatements(), 3u);
  // entry, exit, one body block.
  EXPECT_EQ(G.numBlocks(), 3u);
}

TEST(CFGTest, IfCreatesDiamond) {
  ModuleCFG M = build("if (c) { a(); } else { b(); } d();");
  const FunctionCFG &G = M.TopLevel;
  // entry, exit, cond-block, then, else, join.
  EXPECT_EQ(G.numBlocks(), 6u);
  // Both labeled edges exist somewhere.
  bool SawTrue = false, SawFalse = false;
  for (BlockId I = 0; I < G.numBlocks(); ++I)
    for (const BlockEdge &E : G.block(I).Successors) {
      SawTrue |= E.Label == EdgeLabel::True;
      SawFalse |= E.Label == EdgeLabel::False;
    }
  EXPECT_TRUE(SawTrue);
  EXPECT_TRUE(SawFalse);
}

TEST(CFGTest, WhileCreatesBackEdge) {
  ModuleCFG M = build("while (c) { f(); } g();");
  const FunctionCFG &G = M.TopLevel;
  // A cycle exists: some block reaches itself through a successor.
  bool HasCycle = false;
  for (BlockId I = 0; I < G.numBlocks(); ++I)
    for (const BlockEdge &E : G.block(I).Successors)
      if (reaches(G, E.To, I))
        HasCycle = true;
  EXPECT_TRUE(HasCycle);
  EXPECT_TRUE(reaches(G, G.entry(), G.exit()));
}

TEST(CFGTest, ReturnEndsPath) {
  ModuleCFG M = build("function f(x) { if (x) { return 1; } return 2; }");
  ASSERT_EQ(M.Functions.size(), 1u);
  const FunctionCFG &G = M.Functions.begin()->second;
  EXPECT_TRUE(reaches(G, G.entry(), G.exit()));
  // The exit block has at least two predecessors (both returns).
  EXPECT_GE(G.block(G.exit()).Predecessors.size(), 2u);
}

TEST(CFGTest, BreakJumpsPastLoop) {
  ModuleCFG M = build("while (a) { if (b) { break; } c(); } d();");
  const FunctionCFG &G = M.TopLevel;
  EXPECT_TRUE(reaches(G, G.entry(), G.exit()));
}

TEST(CFGTest, NestedFunctionsGetTheirOwnCFGs) {
  ModuleCFG M = build("function outer() { function inner() { return 1; } "
                      "var f = function named() {}; var a = () => 2; }");
  // outer, inner, named, one arrow.
  EXPECT_EQ(M.Functions.size(), 4u);
}

TEST(CFGTest, UnreachableCodeDetected) {
  ModuleCFG M = build("function f() { return 1; g(); }");
  const FunctionCFG &G = M.Functions.begin()->second;
  EXPECT_FALSE(G.unreachableBlocks().empty());
}

TEST(CFGTest, SwitchFallThrough) {
  ModuleCFG M = build(
      "switch (x) { case 1: a(); case 2: b(); break; default: c(); } d();");
  const FunctionCFG &G = M.TopLevel;
  EXPECT_TRUE(reaches(G, G.entry(), G.exit()));
  EXPECT_GE(G.numBlocks(), 6u);
}

TEST(CFGTest, TryCatchBranches) {
  ModuleCFG M = build("try { f(); } catch (e) { g(e); } h();");
  const FunctionCFG &G = M.TopLevel;
  EXPECT_TRUE(reaches(G, G.entry(), G.exit()));
}

TEST(CFGTest, DumpMentionsLoopHeader) {
  ModuleCFG M = build("while (c) { f(); }");
  EXPECT_NE(M.TopLevel.dump().find("loop-header"), std::string::npos);
}

TEST(CFGTest, ModuleTotals) {
  ModuleCFG M = build("function f() { if (a) { b(); } } f();");
  EXPECT_GT(M.totalBlocks(), M.TopLevel.numBlocks());
  EXPECT_GT(M.totalEdges(), 0u);
}
