//===- tests/test_pkggraph.cpp - Cross-package linking tests ---------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The cross-package summary linker: dependency-tree discovery (manifest and
// npm on-disk layout), the package DAG with SCC collapse, flattening, the
// linked scan (`scanDependencyTree`) — and the acceptance bars:
//
//  - a sink buried 3–4 dependency levels below the scan root is detected by
//    the linked scan and missed by an isolated root-only scan, in BOTH
//    query backends;
//  - a missing or unparseable dependency trips the soundness valve: no
//    query touching it is pruned, and the report set with and without
//    pruning is identical, in BOTH backends;
//  - per-package summary JSON round-trips, and a schema-version mismatch is
//    an error, not a silent degradation;
//  - the pkggraph lint pass reports dangling deps, cycles, and summary
//    version mismatches;
//  - batch `--stats` arithmetic survives empty corpora (no NaN/inf).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/PackageGraph.h"
#include "analysis/TaintSummary.h"
#include "core/Normalizer.h"
#include "driver/BatchDriver.h"
#include "frontend/Parser.h"
#include "lint/PassManager.h"
#include "queries/SinkConfig.h"
#include "scanner/Scanner.h"
#include "support/JSON.h"
#include "workload/DepTrees.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace gjs;
using queries::VulnType;
using workload::DepTree;
using workload::DepTreeGenerator;

namespace {

scanner::ScanResult scanTree(const analysis::PackageGraph &G, bool Native,
                             bool Prune = true) {
  scanner::ScanOptions O;
  O.Prune = Prune;
  if (Native)
    O.Backend = scanner::QueryBackend::Native;
  scanner::Scanner S(O);
  return S.scanDependencyTree(G);
}

/// The isolated baseline: only the scan root's own files, dependencies
/// invisible (what per-package batch scanning sees).
scanner::ScanResult scanRootOnly(const analysis::PackageGraph &G,
                                 bool Native) {
  const analysis::PackageInfo &Root = G.packages()[G.rootIndex()];
  std::vector<scanner::SourceFile> Files;
  for (const analysis::PackageFile &F : Root.Files)
    Files.push_back({F.Path, F.Contents});
  scanner::ScanOptions O;
  if (Native)
    O.Backend = scanner::QueryBackend::Native;
  scanner::Scanner S(O);
  return S.scanPackage(Files);
}

std::string uniqueTempDir(const std::string &Tag) {
  std::filesystem::path P = std::filesystem::path(::testing::TempDir()) /
                            ("pkggraph_" + Tag + "_" +
                             std::to_string(::getpid()));
  std::filesystem::remove_all(P);
  return P.string();
}

} // namespace

//===----------------------------------------------------------------------===//
// Package graph construction: topo order, SCC collapse, missing synthesis
//===----------------------------------------------------------------------===//

TEST(PackageGraph, ChainLinkOrderIsBottomUp) {
  DepTreeGenerator Gen(1);
  DepTree T = Gen.chain(VulnType::CommandInjection, 3, true);
  const analysis::PackageGraph &G = T.Graph;
  ASSERT_EQ(G.packages().size(), 4u);
  EXPECT_FALSE(G.hasCycles());
  EXPECT_FALSE(G.hasMissing());

  // Dependencies first: the deepest package links before its dependents,
  // the root last.
  const auto &Order = G.linkOrder();
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(G.packages()[Order.front().front()].Name, T.SinkPackage);
  EXPECT_EQ(Order.back().front(), G.rootIndex());
  for (const auto &SCC : Order)
    EXPECT_EQ(SCC.size(), 1u);
}

TEST(PackageGraph, CyclicDepsCollapseIntoOneSCC) {
  DepTreeGenerator Gen(2);
  DepTree T = Gen.cyclic(VulnType::CodeInjection, true);
  const analysis::PackageGraph &G = T.Graph;
  EXPECT_TRUE(G.hasCycles());
  auto Cycles = G.cycles();
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].size(), 2u);

  // The cycle is one component of the link order; the root still links
  // after it.
  bool SawCycleGroup = false;
  for (const auto &SCC : G.linkOrder())
    if (SCC.size() == 2)
      SawCycleGroup = true;
  EXPECT_TRUE(SawCycleGroup);
  EXPECT_EQ(G.linkOrder().back().front(), G.rootIndex());
}

TEST(PackageGraph, DanglingDepSynthesizesMissingPackage) {
  DepTreeGenerator Gen(3);
  DepTree T = Gen.missingDep(VulnType::PathTraversal, 2);
  const analysis::PackageGraph &G = T.Graph;
  EXPECT_TRUE(G.hasMissing());
  auto Missing = G.missingNames();
  ASSERT_EQ(Missing.size(), 1u);

  // The flattened plan routes the name into the unresolved-name set; the
  // missing package contributes no modules.
  analysis::PackageGraph::FlatPlan Plan = G.flatten();
  EXPECT_EQ(Plan.MissingDeps.count(Missing[0]), 1u);
  for (const auto &M : Plan.Modules)
    EXPECT_NE(M.Pkg, Missing[0]);
}

//===----------------------------------------------------------------------===//
// Manifest round trip and on-disk discovery
//===----------------------------------------------------------------------===//

TEST(PackageGraph, ManifestMaterializeDiscoverRoundTrip) {
  DepTreeGenerator Gen(4);
  DepTree T = Gen.chain(VulnType::CodeInjection, 3, true);
  std::string Dir = uniqueTempDir("roundtrip");
  std::string Error;
  ASSERT_TRUE(workload::materialize(T, Dir, &Error)) << Error;

  analysis::PackageGraph G;
  ASSERT_TRUE(analysis::PackageGraph::discover(Dir, G, &Error)) << Error;
  ASSERT_EQ(G.packages().size(), T.Graph.packages().size());
  for (const analysis::PackageInfo &P : T.Graph.packages()) {
    size_t I = G.indexOf(P.Name);
    ASSERT_LT(I, G.packages().size()) << P.Name;
    EXPECT_EQ(G.packages()[I].Version, P.Version);
    EXPECT_EQ(G.packages()[I].Deps, P.Deps);
    ASSERT_EQ(G.packages()[I].Files.size(), P.Files.size());
    EXPECT_EQ(G.packages()[I].Files[0].Contents, P.Files[0].Contents);
  }
  EXPECT_EQ(G.packages()[G.rootIndex()].Name,
            T.Graph.packages()[T.Graph.rootIndex()].Name);
  std::filesystem::remove_all(Dir);
}

TEST(PackageGraph, DiscoverNodeModulesLayout) {
  // npm layout, no manifest: package.json + node_modules/, nested dep
  // resolved from the root's node_modules (flat install).
  namespace fs = std::filesystem;
  std::string Dir = uniqueTempDir("npm");
  fs::create_directories(fs::path(Dir) / "node_modules" / "liba");
  fs::create_directories(fs::path(Dir) / "node_modules" / "libb");
  auto W = [](const fs::path &P, const std::string &Text) {
    std::ofstream Out(P);
    Out << Text;
  };
  W(fs::path(Dir) / "package.json",
    "{\"name\":\"app\",\"version\":\"1.0.0\",\"main\":\"index.js\","
    "\"dependencies\":{\"liba\":\"^1\"}}");
  W(fs::path(Dir) / "index.js",
    "var d = require('liba');\n"
    "function run(a, b) { return d.process(a, b); }\n"
    "module.exports = run;\n");
  W(fs::path(Dir) / "node_modules" / "liba" / "package.json",
    "{\"name\":\"liba\",\"version\":\"2.0.0\",\"main\":\"index.js\","
    "\"dependencies\":{\"libb\":\"^1\"}}");
  W(fs::path(Dir) / "node_modules" / "liba" / "index.js",
    "var d = require('libb');\n"
    "function process(x, cb) { return d.process('p' + x, cb); }\n"
    "exports.process = process;\n");
  W(fs::path(Dir) / "node_modules" / "libb" / "package.json",
    "{\"name\":\"libb\",\"version\":\"3.0.0\",\"main\":\"index.js\"}");
  W(fs::path(Dir) / "node_modules" / "libb" / "index.js",
    "var cp = require('child_process');\n"
    "function process(x, cb) { cp.exec('run ' + x, cb); }\n"
    "exports.process = process;\n");

  analysis::PackageGraph G;
  std::string Error;
  ASSERT_TRUE(analysis::PackageGraph::discover(Dir, G, &Error)) << Error;
  ASSERT_EQ(G.packages().size(), 3u);
  EXPECT_LT(G.indexOf("liba"), G.packages().size());
  EXPECT_LT(G.indexOf("libb"), G.packages().size());
  EXPECT_FALSE(G.hasMissing());

  // And the linked scan sees the flow through both packages.
  scanner::ScanResult R = scanTree(G, /*Native=*/false);
  ASSERT_EQ(R.Reports.size(), 1u);
  EXPECT_EQ(R.Reports[0].Type, VulnType::CommandInjection);
  EXPECT_EQ(R.LinkedPackages, 3u);
  std::filesystem::remove_all(Dir);
}

TEST(PackageGraph, ManifestSchemaMismatchIsAnError) {
  analysis::PackageGraph G;
  std::string Error;
  EXPECT_FALSE(analysis::PackageGraph::fromManifest(
      "{\"schema\": 99, \"root\": \"x\", \"packages\": []}", ".", G, &Error));
  EXPECT_NE(Error.find("schema"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// The acceptance bar: buried sinks, linked vs isolated, both backends
//===----------------------------------------------------------------------===//

namespace {

void expectBuriedSinkDetected(VulnType Type, unsigned Depth, bool Native) {
  DepTreeGenerator Gen(10 + Depth);
  DepTree T = Gen.chain(Type, Depth, /*Vulnerable=*/true);

  scanner::ScanResult Linked = scanTree(T.Graph, Native);
  ASSERT_FALSE(Linked.Reports.empty())
      << "depth-" << Depth << " sink missed by the linked scan";
  EXPECT_EQ(Linked.Reports[0].Type, Type);
  EXPECT_EQ(Linked.LinkedPackages, Depth + 1);
  EXPECT_TRUE(Linked.MissingDeps.empty());

  // The isolated root-only scan cannot see the flow: the require of the
  // first dependency is an external call.
  scanner::ScanResult Isolated = scanRootOnly(T.Graph, Native);
  EXPECT_TRUE(Isolated.Reports.empty())
      << "isolated scan should miss the buried sink";
}

} // namespace

TEST(CrossPackageDetection, Depth3GraphDB) {
  expectBuriedSinkDetected(VulnType::CommandInjection, 3, /*Native=*/false);
}

TEST(CrossPackageDetection, Depth3Native) {
  expectBuriedSinkDetected(VulnType::CommandInjection, 3, /*Native=*/true);
}

TEST(CrossPackageDetection, Depth4GraphDB) {
  expectBuriedSinkDetected(VulnType::CodeInjection, 4, /*Native=*/false);
}

TEST(CrossPackageDetection, Depth4Native) {
  expectBuriedSinkDetected(VulnType::CodeInjection, 4, /*Native=*/true);
}

TEST(CrossPackageDetection, Depth1EveryClass) {
  // Depth 1 (root -> sink package) for all four classes, graph DB backend.
  for (VulnType Type :
       {VulnType::CommandInjection, VulnType::CodeInjection,
        VulnType::PathTraversal, VulnType::PrototypePollution}) {
    DepTreeGenerator Gen(20);
    DepTree T = Gen.chain(Type, 1, true);
    scanner::ScanResult R = scanTree(T.Graph, /*Native=*/false);
    ASSERT_FALSE(R.Reports.empty()) << queries::vulnTypeName(Type);
    EXPECT_EQ(R.Reports[0].Type, Type) << queries::vulnTypeName(Type);
  }
}

TEST(CrossPackageDetection, BenignChainStaysClean) {
  for (bool Native : {false, true}) {
    DepTreeGenerator Gen(30);
    DepTree T = Gen.chain(VulnType::CommandInjection, 3, /*Vulnerable=*/false);
    scanner::ScanResult R = scanTree(T.Graph, Native);
    EXPECT_TRUE(R.Reports.empty()) << "native=" << Native;
  }
}

TEST(CrossPackageDetection, CyclicTreeDetectedBothBackends) {
  for (bool Native : {false, true}) {
    DepTreeGenerator Gen(40);
    DepTree T = Gen.cyclic(VulnType::CommandInjection, /*Vulnerable=*/true);
    scanner::ScanResult R = scanTree(T.Graph, Native);
    ASSERT_FALSE(R.Reports.empty()) << "native=" << Native;
    EXPECT_EQ(R.Reports[0].Type, VulnType::CommandInjection);
  }
}

TEST(CrossPackageDetection, PruningIsDetectionNeutralOnTrees) {
  // Linked scans with pruning on and off report the same findings, across
  // vulnerable, benign, and cyclic trees (both backends).
  DepTreeGenerator Gen(50);
  std::vector<DepTree> Trees;
  Trees.push_back(Gen.chain(VulnType::CommandInjection, 2, true));
  Trees.push_back(Gen.chain(VulnType::PathTraversal, 3, true));
  Trees.push_back(Gen.chain(VulnType::CodeInjection, 3, false));
  Trees.push_back(Gen.cyclic(VulnType::PrototypePollution, true));
  for (const DepTree &T : Trees) {
    for (bool Native : {false, true}) {
      scanner::ScanResult Pruned = scanTree(T.Graph, Native, /*Prune=*/true);
      scanner::ScanResult Full = scanTree(T.Graph, Native, /*Prune=*/false);
      EXPECT_EQ(scanner::reportsToJSON(Pruned.Reports),
                scanner::reportsToJSON(Full.Reports))
          << "native=" << Native;
    }
  }
}

//===----------------------------------------------------------------------===//
// The cross-package soundness valve
//===----------------------------------------------------------------------===//

namespace {

void expectValveHolds(const DepTree &T, VulnType Type, bool Native) {
  scanner::ScanResult Pruned = scanTree(T.Graph, Native, /*Prune=*/true);
  scanner::ScanResult Full = scanTree(T.Graph, Native, /*Prune=*/false);

  // The class whose flow leads into the invisible dependency must never be
  // pruned: its sink (if any) lives in code we cannot see.
  std::string Cwe = queries::cweOf(Type);
  EXPECT_EQ(Pruned.PruneReason.find(Cwe + ":pruned"), std::string::npos)
      << "native=" << Native << " pruned a query through the valve: "
      << Pruned.PruneReason;

  // And pruning changes nothing observable.
  EXPECT_EQ(scanner::reportsToJSON(Pruned.Reports),
            scanner::reportsToJSON(Full.Reports))
      << "native=" << Native;
}

} // namespace

TEST(SoundnessValve, MissingDependencyBlocksPruningBothBackends) {
  for (bool Native : {false, true}) {
    DepTreeGenerator Gen(60);
    DepTree T = Gen.missingDep(VulnType::CommandInjection, 2);
    scanner::ScanResult R = scanTree(T.Graph, Native);
    ASSERT_FALSE(R.MissingDeps.empty()) << "native=" << Native;
    expectValveHolds(T, VulnType::CommandInjection, Native);
  }
}

TEST(SoundnessValve, UnparseableDependencyBlocksPruningBothBackends) {
  for (bool Native : {false, true}) {
    DepTreeGenerator Gen(70);
    DepTree T = Gen.brokenDep(VulnType::CodeInjection, 2);
    expectValveHolds(T, VulnType::CodeInjection, Native);
  }
}

TEST(SoundnessValve, MissingDepSurfacesInScanResult) {
  DepTreeGenerator Gen(80);
  DepTree T = Gen.missingDep(VulnType::PathTraversal, 3);
  scanner::ScanResult R = scanTree(T.Graph, /*Native=*/false);
  ASSERT_EQ(R.MissingDeps.size(), 1u);
  EXPECT_EQ(R.MissingDeps[0], T.Graph.missingNames()[0]);
}

//===----------------------------------------------------------------------===//
// Per-package summary JSON
//===----------------------------------------------------------------------===//

namespace {

/// Parses + normalizes a flattened tree with the scanner's `<pkg>$<stem>$`
/// prefixing and builds the ModuleLinkInfo for it (test-local mirror of
/// the CLI/scanner front half).
struct LinkedBuild {
  analysis::PackageGraph::FlatPlan Plan;
  std::vector<std::unique_ptr<core::Program>> Programs;
  std::vector<const core::Program *> Mods;
  std::vector<std::string> Stems;
  analysis::ModuleLinkInfo Link;
};

void buildLinked(const analysis::PackageGraph &G, LinkedBuild &B) {
  B.Plan = G.flatten();
  B.Link.ForceUnresolved = B.Plan.MissingDeps;
  core::StmtIndex NextIndex = 1;
  for (const auto &M : B.Plan.Modules) {
    DiagnosticEngine Diags;
    auto Module = parseJS(*M.Contents, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << M.Path;
    std::string Stem = std::filesystem::path(M.Path).stem().string();
    core::Normalizer Norm(Diags, M.Pkg + "$" + Stem + "$", NextIndex);
    auto Program = Norm.normalize(*Module);
    ASSERT_FALSE(Diags.hasErrors()) << M.Path;
    NextIndex = Program->NumIndices + 1;
    B.Link.PkgOf.push_back(M.Pkg);
    if (M.IsMain)
      B.Link.MainModuleOf.emplace(M.Pkg, B.Mods.size());
    B.Programs.push_back(std::move(Program));
    B.Mods.push_back(B.Programs.back().get());
    B.Stems.push_back(std::move(Stem));
  }
}

} // namespace

TEST(PackageSummaries, SliceAndRoundTrip) {
  DepTreeGenerator Gen(90);
  DepTree T = Gen.chain(VulnType::CommandInjection, 2, true);
  LinkedBuild B;
  buildLinked(T.Graph, B);
  analysis::CallGraph CG =
      analysis::CallGraph::build(B.Mods, B.Stems, true, &B.Link);
  analysis::SummarySet Sums = analysis::computeSummaries(
      CG, B.Mods, queries::toSinkTable(queries::SinkConfig::defaults()));
  std::vector<analysis::PackageSummaries> Slices =
      analysis::slicePackageSummaries(T.Graph, CG, Sums, B.Link);
  ASSERT_EQ(Slices.size(), 3u); // root + dep1 + dep2, one module each

  size_t TotalFuncs = 0;
  for (const analysis::PackageSummaries &PS : Slices) {
    TotalFuncs += PS.Sums.Summaries.size();
    std::string Text = analysis::packageSummaryToJSON(PS);
    analysis::PackageSummaries Back;
    std::string Error;
    ASSERT_TRUE(analysis::packageSummaryFromJSON(Text, Back, &Error))
        << Error;
    EXPECT_EQ(Back.Package, PS.Package);
    EXPECT_EQ(Back.Version, PS.Version);
    EXPECT_EQ(Back.Schema, analysis::PackageSummarySchemaVersion);
    EXPECT_EQ(Back.Sums.Summaries.size(), PS.Sums.Summaries.size());
  }
  EXPECT_EQ(TotalFuncs, Sums.Summaries.size());
}

TEST(PackageSummaries, SchemaMismatchRejected) {
  DepTreeGenerator Gen(91);
  DepTree T = Gen.chain(VulnType::CodeInjection, 1, true);
  LinkedBuild B;
  buildLinked(T.Graph, B);
  analysis::CallGraph CG =
      analysis::CallGraph::build(B.Mods, B.Stems, true, &B.Link);
  analysis::SummarySet Sums = analysis::computeSummaries(
      CG, B.Mods, queries::toSinkTable(queries::SinkConfig::defaults()));
  std::vector<analysis::PackageSummaries> Slices =
      analysis::slicePackageSummaries(T.Graph, CG, Sums, B.Link);
  ASSERT_FALSE(Slices.empty());

  // Tamper the schema version: load must fail, loudly.
  json::Value V;
  ASSERT_TRUE(json::parse(analysis::packageSummaryToJSON(Slices[0]), V));
  V.asObject()["schema"] = json::Value(99);
  analysis::PackageSummaries Back;
  std::string Error;
  EXPECT_FALSE(
      analysis::packageSummaryFromJSON(json::Value(V).str(), Back, &Error));
  EXPECT_NE(Error.find("schema"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// The pkggraph lint pass
//===----------------------------------------------------------------------===//

namespace {

std::vector<lint::Finding> runPkgGraphLint(lint::LintContext &Ctx) {
  lint::PassManager PM;
  PM.addPass(lint::createPkgGraphPass());
  lint::LintResult LR = PM.run(Ctx);
  return LR.findings();
}

size_t countCheck(const std::vector<lint::Finding> &Fs,
                  const std::string &Check) {
  size_t N = 0;
  for (const lint::Finding &F : Fs)
    if (F.Check == Check)
      ++N;
  return N;
}

} // namespace

TEST(PkgGraphLint, ReportsDanglingDeps) {
  DepTreeGenerator Gen(100);
  DepTree T = Gen.missingDep(VulnType::CommandInjection, 2);
  lint::LintContext Ctx;
  Ctx.Packages = &T.Graph;
  auto Findings = runPkgGraphLint(Ctx);
  EXPECT_EQ(countCheck(Findings, "dangling-dep"), 1u);
  EXPECT_EQ(countCheck(Findings, "dep-cycle"), 0u);
}

TEST(PkgGraphLint, ReportsCycles) {
  DepTreeGenerator Gen(101);
  DepTree T = Gen.cyclic(VulnType::CodeInjection, true);
  lint::LintContext Ctx;
  Ctx.Packages = &T.Graph;
  auto Findings = runPkgGraphLint(Ctx);
  EXPECT_EQ(countCheck(Findings, "dep-cycle"), 1u);
}

TEST(PkgGraphLint, CleanTreeIsClean) {
  DepTreeGenerator Gen(102);
  DepTree T = Gen.chain(VulnType::PathTraversal, 3, true);
  lint::LintContext Ctx;
  Ctx.Packages = &T.Graph;
  EXPECT_TRUE(runPkgGraphLint(Ctx).empty());
}

TEST(PkgGraphLint, ReportsSummaryVersionMismatch) {
  DepTreeGenerator Gen(103);
  DepTree T = Gen.chain(VulnType::CommandInjection, 1, true);
  lint::LintContext Ctx;
  Ctx.Packages = &T.Graph;

  // Bad schema, unknown package, and a version that disagrees with the
  // tree: one summary-version error each.
  Ctx.PackageSummaries.emplace_back(
      "bad.json", "{\"schema\": 99, \"package\": \"x\", \"version\": \"1\","
                  " \"summaries\": {\"functions\": []}}");
  Ctx.PackageSummaries.emplace_back(
      "stranger.json",
      "{\"schema\": 1, \"package\": \"not-in-tree\", \"version\": \"1\","
      " \"summaries\": {\"functions\": []}}");
  const analysis::PackageInfo &Root =
      T.Graph.packages()[T.Graph.rootIndex()];
  Ctx.PackageSummaries.emplace_back(
      "stale.json", "{\"schema\": 1, \"package\": \"" + Root.Name +
                        "\", \"version\": \"0.0.1-stale\","
                        " \"summaries\": {\"functions\": []}}");
  auto Findings = runPkgGraphLint(Ctx);
  EXPECT_EQ(countCheck(Findings, "summary-version"), 3u);
  for (const lint::Finding &F : Findings)
    EXPECT_EQ(F.Severity, DiagSeverity::Error) << F.str();
}

//===----------------------------------------------------------------------===//
// Batch stats hardening + journal link fields
//===----------------------------------------------------------------------===//

TEST(BatchStats, EmptyCorpusHasNoNaN) {
  driver::BatchSummary Empty;
  std::string Text = driver::batchStatsText(Empty);
  EXPECT_EQ(Text.find("nan"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("inf"), std::string::npos) << Text;
  EXPECT_NE(Text.find("0 scanned"), std::string::npos) << Text;
}

TEST(BatchStats, ResumeOnlyRunHasNoNaN) {
  // Everything skipped via --resume: zero scans, zero wall, zero queries.
  driver::BatchSummary S;
  S.SkippedResumed = 3;
  for (int I = 0; I < 3; ++I) {
    driver::BatchOutcome O;
    O.Package = "p" + std::to_string(I);
    O.Skipped = true;
    S.Outcomes.push_back(std::move(O));
  }
  std::string Text = driver::batchStatsText(S);
  EXPECT_EQ(Text.find("nan"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("inf"), std::string::npos) << Text;
}

TEST(BatchJournal, LinkFieldsRoundTrip) {
  driver::BatchOutcome O;
  O.Package = "tree-root";
  O.Status = driver::BatchStatus::Ok;
  O.Result.LinkedPackages = 4;
  O.Result.MissingDeps = {"left-pad", "right-pad"};
  std::string Line = driver::BatchDriver::journalLine(O);

  driver::BatchOutcome Back;
  ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Line, Back));
  EXPECT_EQ(Back.Result.LinkedPackages, 4u);
  ASSERT_EQ(Back.Result.MissingDeps.size(), 2u);
  EXPECT_EQ(Back.Result.MissingDeps[0], "left-pad");
  EXPECT_EQ(Back.Result.MissingDeps[1], "right-pad");
}

//===----------------------------------------------------------------------===//
// CLI round trips
//===----------------------------------------------------------------------===//

#ifdef GRAPHJS_BIN

namespace {

int runCLI(const std::string &Args) {
  std::string Cmd =
      std::string(GRAPHJS_BIN) + " " + Args + " > /dev/null 2>&1";
  int RC = std::system(Cmd.c_str());
  return WIFEXITED(RC) ? WEXITSTATUS(RC) : -1;
}

} // namespace

TEST(CLI, WithDepsDetectsBuriedSinkRootOnlyMisses) {
  DepTreeGenerator Gen(110);
  DepTree T = Gen.chain(VulnType::CommandInjection, 3, true);
  std::string Dir = uniqueTempDir("cli");
  std::string Error;
  ASSERT_TRUE(workload::materialize(T, Dir, &Error)) << Error;

  // Exit 3 = findings present; exit 0 = clean.
  EXPECT_EQ(runCLI("scan --with-deps --summary " + Dir), 3);
  std::string RootIndex =
      (std::filesystem::path(Dir) /
       T.Graph.packages()[T.Graph.rootIndex()].Name / "index.js")
          .string();
  EXPECT_EQ(runCLI("scan " + RootIndex), 0);
  std::filesystem::remove_all(Dir);
}

TEST(CLI, WithDepsEmitsPackageSummaries) {
  DepTreeGenerator Gen(111);
  DepTree T = Gen.chain(VulnType::CodeInjection, 2, true);
  std::string Dir = uniqueTempDir("cli_sums");
  std::string SumsDir = Dir + "_sums";
  std::string Error;
  ASSERT_TRUE(workload::materialize(T, Dir, &Error)) << Error;
  EXPECT_EQ(runCLI("scan --with-deps --emit-summaries " + SumsDir + " " +
                   Dir),
            3);

  size_t Loaded = 0;
  for (const auto &E : std::filesystem::directory_iterator(SumsDir)) {
    std::ifstream In(E.path());
    std::stringstream SS;
    SS << In.rdbuf();
    analysis::PackageSummaries PS;
    EXPECT_TRUE(analysis::packageSummaryFromJSON(SS.str(), PS, &Error))
        << E.path() << ": " << Error;
    ++Loaded;
  }
  EXPECT_EQ(Loaded, 3u);
  std::filesystem::remove_all(Dir);
  std::filesystem::remove_all(SumsDir);
}

TEST(CLI, CallGraphPackagesMode) {
  DepTreeGenerator Gen(112);
  DepTree T = Gen.chain(VulnType::CommandInjection, 2, true);
  std::string Dir = uniqueTempDir("cli_cg");
  std::string Error;
  ASSERT_TRUE(workload::materialize(T, Dir, &Error)) << Error;
  EXPECT_EQ(runCLI("callgraph --packages --summaries " + Dir), 0);
  std::filesystem::remove_all(Dir);
}

TEST(CLI, SelfCheckRunsPkgGraphPassOnMissingDep) {
  DepTreeGenerator Gen(113);
  DepTree T = Gen.missingDep(VulnType::CommandInjection, 2);
  std::string Dir = uniqueTempDir("cli_valve");
  std::string Error;
  ASSERT_TRUE(workload::materialize(T, Dir, &Error)) << Error;
  // Dangling dep is a warning, not an error: the scan completes (exit 0,
  // no findings — the sink package is the one that is missing).
  EXPECT_EQ(runCLI("scan --with-deps --self-check --summary " + Dir), 0);
  std::filesystem::remove_all(Dir);
}

#endif // GRAPHJS_BIN
