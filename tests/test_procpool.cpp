//===- tests/test_procpool.cpp - Multi-process batch scanning tests --------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The OS-level containment surface: the Subprocess wrapper (fork/exec,
// wait-status decoding, rlimits, kill), the process-fatal fault actions
// (crash/hang/oom), the supervised worker pool (crash containment, the
// kill ladder, deterministic journal merge, retry, resume), and the
// `graphjs batch --jobs N` CLI round trips including resume across a
// SIGKILLed supervisor.
//
//===----------------------------------------------------------------------===//

#include "driver/ProcessPool.h"
#include "obs/Counters.h"
#include "obs/Histogram.h"
#include "obs/Trace.h"
#include "support/JSON.h"
#include "support/Subprocess.h"
#include "workload/Packages.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include <unistd.h>

using namespace gjs;
using scanner::FaultPlan;
using scanner::ScanErrorKind;
using scanner::ScanPhase;

#if defined(__SANITIZE_ADDRESS__)
#define GJS_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GJS_TEST_ASAN 1
#endif
#endif
#ifndef GJS_TEST_ASAN
#define GJS_TEST_ASAN 0
#endif

namespace {

/// A small package with one clear CWE-78: tainted exported parameter
/// flowing into child_process.exec.
const char *VulnSource =
    "var cp = require('child_process');\n"
    "function run(cmd, cb) {\n"
    "  var prefixed = 'git ' + cmd;\n"
    "  cp.exec(prefixed, cb);\n"
    "}\n"
    "module.exports = run;\n";

driver::BatchInput makeInput(const std::string &Name, const char *Source) {
  return {Name, {{Name + ".js", Source}}};
}

std::vector<driver::BatchInput> healthyInputs(size_t N) {
  std::vector<driver::BatchInput> Inputs;
  for (size_t I = 0; I < N; ++I)
    Inputs.push_back(makeInput("pkg" + std::to_string(I), VulnSource));
  return Inputs;
}

std::vector<std::string> readLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

/// The first driver-phase error kind of a Failed outcome.
ScanErrorKind failureKind(const driver::BatchOutcome &O) {
  EXPECT_FALSE(O.Result.Errors.empty()) << O.Package;
  return O.Result.Errors.empty() ? ScanErrorKind::Internal
                                 : O.Result.Errors.front().Kind;
}

FaultPlan makeFault(ScanPhase Phase, FaultPlan::Action Kind,
                    unsigned Package) {
  FaultPlan F;
  F.Phase = Phase;
  F.Kind = Kind;
  F.Package = Package;
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Subprocess
//===----------------------------------------------------------------------===//

TEST(SubprocessTest, SpawnReportsExitCode) {
  Subprocess P;
  std::string Error;
  ASSERT_TRUE(Subprocess::spawn({"/bin/sh", "-c", "exit 7"}, P, &Error))
      << Error;
  WaitStatus S = P.wait();
  EXPECT_TRUE(S.exitedWith(7)) << S.str();
  EXPECT_EQ(S.str(), "exit 7");
}

TEST(SubprocessTest, SpawnReportsFatalSignal) {
  Subprocess P;
  std::string Error;
  ASSERT_TRUE(
      Subprocess::spawn({"/bin/sh", "-c", "kill -SEGV $$"}, P, &Error))
      << Error;
  WaitStatus S = P.wait();
  ASSERT_TRUE(S.signaled()) << S.str();
  EXPECT_EQ(S.Signal, SIGSEGV);
  EXPECT_EQ(S.str(), "signal 11 (SIGSEGV)");
}

TEST(SubprocessTest, CapturesStdoutToEOF) {
  Subprocess P;
  std::string Error;
  ASSERT_TRUE(Subprocess::spawn({"/bin/echo", "hello pool"}, P, &Error,
                                /*CaptureStdout=*/true))
      << Error;
  EXPECT_EQ(P.readAll(), "hello pool\n");
  EXPECT_TRUE(P.wait().exitedWith(0));
}

TEST(SubprocessTest, KillTerminatesChild) {
  Subprocess P;
  std::string Error;
  ASSERT_TRUE(Subprocess::spawn({"/bin/sleep", "30"}, P, &Error)) << Error;
  WaitStatus S;
  EXPECT_FALSE(P.poll(S)); // Still sleeping.
  EXPECT_TRUE(P.kill(SIGKILL));
  S = P.wait();
  ASSERT_TRUE(S.signaled());
  EXPECT_EQ(S.Signal, SIGKILL);
}

TEST(SubprocessTest, ExecFailureExits127) {
  Subprocess P;
  std::string Error;
  ASSERT_TRUE(
      Subprocess::spawn({"/nonexistent/no-such-binary"}, P, &Error))
      << Error;
  EXPECT_TRUE(P.wait().exitedWith(127));
}

TEST(SubprocessTest, ForkChildPropagatesReturnCode) {
  Subprocess P;
  std::string Error;
  ASSERT_TRUE(Subprocess::forkChild([] { return 42; }, P, &Error)) << Error;
  EXPECT_TRUE(P.wait().exitedWith(42));
}

TEST(SubprocessTest, ForkChildExceptionExits125) {
  Subprocess P;
  std::string Error;
  ASSERT_TRUE(Subprocess::forkChild(
      []() -> int { throw std::runtime_error("worker bug"); }, P, &Error))
      << Error;
  EXPECT_TRUE(P.wait().exitedWith(125));
}

TEST(SubprocessTest, MemLimitTurnsAllocationIntoOomExit) {
  if (GJS_TEST_ASAN)
    GTEST_SKIP() << "RLIMIT_AS is skipped under AddressSanitizer";
  Subprocess P;
  std::string Error;
  SubprocessLimits Limits;
  Limits.MemLimitMB = 64;
  ASSERT_TRUE(Subprocess::forkChild(
      [] {
        installOomExitHandler();
        // Touch every page and keep every chunk live so the compiler
        // cannot elide the allocations.
        volatile char Sink = 0;
        std::vector<char *> Keep;
        for (int I = 0; I < 64; ++I) {
          char *Chunk = new char[16u << 20];
          for (size_t J = 0; J < (16u << 20); J += 4096)
            Chunk[J] = 1;
          Keep.push_back(Chunk);
          Sink ^= Chunk[0];
        }
        return Sink ? 1 : 0;
      },
      P, &Error, Limits))
      << Error;
  EXPECT_TRUE(P.wait().exitedWith(WorkerOomExit)) << P.status().str();
}

//===----------------------------------------------------------------------===//
// Process-fatal fault plans and name round trips
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, ParsesProcessFatalActions) {
  FaultPlan F;
  ASSERT_TRUE(FaultPlan::parse("build:crash:1", F));
  EXPECT_EQ(F.Kind, FaultPlan::Action::Crash);
  EXPECT_EQ(F.Package, 1u);
  EXPECT_TRUE(F.processFatal());
  ASSERT_TRUE(FaultPlan::parse("query:hang", F));
  EXPECT_EQ(F.Kind, FaultPlan::Action::Hang);
  EXPECT_TRUE(F.processFatal());
  ASSERT_TRUE(FaultPlan::parse("import:oom:2", F));
  EXPECT_EQ(F.Kind, FaultPlan::Action::Oom);
  EXPECT_TRUE(F.processFatal());
  ASSERT_TRUE(FaultPlan::parse("build:fail:0", F));
  EXPECT_FALSE(F.processFatal());
  std::string Error;
  EXPECT_FALSE(FaultPlan::parse("build:explode", F, &Error));
  EXPECT_NE(Error.find("crash"), std::string::npos);
}

TEST(NamesTest, ScanErrorKindRoundTrips) {
  for (ScanErrorKind K :
       {ScanErrorKind::ParseError, ScanErrorKind::Deadline,
        ScanErrorKind::Budget, ScanErrorKind::InjectedFault,
        ScanErrorKind::Schema, ScanErrorKind::Internal,
        ScanErrorKind::Crashed, ScanErrorKind::KilledOom,
        ScanErrorKind::KilledDeadline}) {
    ScanErrorKind Back;
    ASSERT_TRUE(
        scanner::scanErrorKindFromName(scanner::scanErrorKindName(K), Back));
    EXPECT_EQ(Back, K);
  }
  ScanErrorKind K;
  EXPECT_FALSE(scanner::scanErrorKindFromName("no-such-kind", K));
}

TEST(NamesTest, BatchStatusRoundTrips) {
  for (driver::BatchStatus S :
       {driver::BatchStatus::Ok, driver::BatchStatus::Degraded,
        driver::BatchStatus::Failed}) {
    driver::BatchStatus Back;
    ASSERT_TRUE(
        driver::batchStatusFromName(driver::batchStatusName(S), Back));
    EXPECT_EQ(Back, S);
  }
  driver::BatchStatus S;
  EXPECT_FALSE(driver::batchStatusFromName("exploded", S));
}

TEST(JournalTest, LineParsesBackToOutcome) {
  driver::BatchOutcome Out;
  Out.Package = "left-pad";
  Out.Status = driver::BatchStatus::Degraded;
  Out.Seconds = 1.25;
  Out.Result.Degradation = 1;
  Out.Result.Attempts = 2;
  Out.Result.Retries = 1;
  Out.Result.CumulativeTimes.GraphBuild = 0.5;
  Out.Result.CumulativeTimes.Query = 0.25;
  Out.Result.MDGNodes = 42;
  Out.Result.MDGEdges = 99;
  Out.Result.Errors.push_back({ScanPhase::Build, ScanErrorKind::Deadline,
                               "wall clock expired", "index.js"});
  queries::VulnReport R;
  R.Type = queries::VulnType::CommandInjection;
  R.SinkLoc.Line = 17;
  R.SinkName = "exec";
  Out.Result.Reports.push_back(R);

  driver::BatchOutcome Back;
  ASSERT_TRUE(driver::BatchDriver::parseJournalLine(
      driver::BatchDriver::journalLine(Out), Back));
  EXPECT_EQ(Back.Package, "left-pad");
  EXPECT_EQ(Back.Status, driver::BatchStatus::Degraded);
  EXPECT_DOUBLE_EQ(Back.Seconds, 1.25);
  EXPECT_EQ(Back.Result.Degradation, 1u);
  EXPECT_EQ(Back.Result.Retries, 1u);
  EXPECT_DOUBLE_EQ(Back.Result.CumulativeTimes.Query, 0.25);
  EXPECT_EQ(Back.Result.MDGNodes, 42u);
  EXPECT_EQ(Back.Result.MDGEdges, 99u);
  ASSERT_EQ(Back.Result.Errors.size(), 1u);
  EXPECT_EQ(Back.Result.Errors[0].Kind, ScanErrorKind::Deadline);
  EXPECT_EQ(Back.Result.Errors[0].Phase, ScanPhase::Build);
  EXPECT_EQ(Back.Result.Errors[0].File, "index.js");
  ASSERT_EQ(Back.Result.Reports.size(), 1u);
  EXPECT_EQ(Back.Result.Reports[0], R);

  EXPECT_FALSE(driver::BatchDriver::parseJournalLine("not json", Back));
  EXPECT_FALSE(driver::BatchDriver::parseJournalLine("{\"x\":1}", Back));
}

TEST(StatsTest, BreakdownPrintsWallVsCpuAndWorkers) {
  driver::BatchSummary S;
  S.Scanned = 8;
  S.TotalSeconds = 4.0; // Summed per-package CPU across workers.
  S.WallSeconds = 2.0;  // End-to-end wall-clock.
  S.Crashed = 1;
  S.OomKilled = 2;
  S.DeadlineKilled = 3;
  S.Retried = 4;
  std::string Text = driver::batchStatsText(S);
  EXPECT_NE(Text.find("wall 2.000s"), std::string::npos) << Text;
  EXPECT_NE(Text.find("cpu 4.000s"), std::string::npos) << Text;
  // Throughput is wall-clock based: 8 / 2.0.
  EXPECT_NE(Text.find("4.00 packages/sec"), std::string::npos) << Text;
  EXPECT_NE(Text.find("workers: 1 crashed, 2 oom-killed, 3 deadline-killed, "
                      "4 retried"),
            std::string::npos)
      << Text;

  // Without worker deaths the breakdown line stays out of the way.
  driver::BatchSummary Clean;
  Clean.Scanned = 1;
  Clean.TotalSeconds = 1;
  EXPECT_EQ(driver::batchStatsText(Clean).find("workers:"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// ProcessPool (library)
//===----------------------------------------------------------------------===//

TEST(ProcessPoolTest, HealthyBatchMatchesInProcessDriver) {
  std::vector<driver::BatchInput> Inputs = healthyInputs(6);

  driver::BatchOptions BO;
  driver::BatchSummary InProc = driver::BatchDriver(BO).run(Inputs);

  driver::PoolOptions PO;
  PO.Jobs = 3;
  driver::BatchSummary Pooled = driver::ProcessPool(PO).run(Inputs);

  EXPECT_EQ(Pooled.Scanned, 6u);
  EXPECT_EQ(Pooled.Ok, InProc.Ok);
  EXPECT_EQ(Pooled.Failed, 0u);
  EXPECT_EQ(Pooled.TotalReports, InProc.TotalReports);
  ASSERT_EQ(Pooled.Outcomes.size(), InProc.Outcomes.size());
  for (size_t I = 0; I < Pooled.Outcomes.size(); ++I) {
    // Input order regardless of worker completion order, same verdicts,
    // same report sets (journal-persisted fields: type, sink line, sink —
    // the pool round-trips outcomes through the journal format).
    EXPECT_EQ(Pooled.Outcomes[I].Package, Inputs[I].Name);
    EXPECT_EQ(Pooled.Outcomes[I].Status, InProc.Outcomes[I].Status);
    const auto &PR = Pooled.Outcomes[I].Result.Reports;
    const auto &IR = InProc.Outcomes[I].Result.Reports;
    ASSERT_EQ(PR.size(), IR.size()) << Inputs[I].Name;
    for (size_t J = 0; J < PR.size(); ++J) {
      EXPECT_EQ(PR[J].Type, IR[J].Type);
      EXPECT_EQ(PR[J].SinkLoc.Line, IR[J].SinkLoc.Line);
      EXPECT_EQ(PR[J].SinkName, IR[J].SinkName);
    }
  }
}

TEST(ProcessPoolTest, CrashIsContainedAndAttributed) {
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.Faults.push_back(makeFault(ScanPhase::Build, FaultPlan::Action::Crash, 1));
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(4));

  EXPECT_EQ(S.Scanned, 4u);
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.Ok, 3u);
  EXPECT_EQ(S.Crashed, 1u);
  ASSERT_EQ(S.Outcomes.size(), 4u);
  EXPECT_EQ(S.Outcomes[1].Status, driver::BatchStatus::Failed);
  EXPECT_EQ(failureKind(S.Outcomes[1]), ScanErrorKind::Crashed);
  // SIGABRT shows up in the detail string.
  EXPECT_NE(S.Outcomes[1].Result.Errors[0].Detail.find("SIGABRT"),
            std::string::npos)
      << S.Outcomes[1].Result.Errors[0].Detail;
}

TEST(ProcessPoolTest, OomIsContainedAndAttributed) {
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.MemLimitMB = 128;
  PO.Faults.push_back(makeFault(ScanPhase::Build, FaultPlan::Action::Oom, 0));
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(3));

  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.OomKilled, 1u);
  EXPECT_EQ(S.Outcomes[0].Status, driver::BatchStatus::Failed);
  EXPECT_EQ(failureKind(S.Outcomes[0]), ScanErrorKind::KilledOom);
  EXPECT_EQ(S.Ok, 2u);
}

TEST(ProcessPoolTest, HangIsKilledAtSupervisorDeadline) {
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.KillAfterSeconds = 1.0;
  PO.Faults.push_back(makeFault(ScanPhase::Build, FaultPlan::Action::Hang, 0));
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(3));

  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.DeadlineKilled, 1u);
  EXPECT_EQ(S.Outcomes[0].Status, driver::BatchStatus::Failed);
  EXPECT_EQ(failureKind(S.Outcomes[0]), ScanErrorKind::KilledDeadline);
  // The healthy packages finished despite the spinning worker.
  EXPECT_EQ(S.Ok, 2u);
}

TEST(ProcessPoolTest, RetryCrashedRecoversTransientFault) {
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.RetryCrashed = true;
  PO.Faults.push_back(makeFault(ScanPhase::Build, FaultPlan::Action::Crash, 0));
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(3));

  // The fault is dropped on retry (one-shot transient semantics), so the
  // package recovers; the death is still on the books.
  EXPECT_EQ(S.Retried, 1u);
  EXPECT_EQ(S.Crashed, 1u);
  EXPECT_EQ(S.Failed, 0u);
  EXPECT_EQ(S.Ok, 3u);
  EXPECT_EQ(S.Outcomes[0].Status, driver::BatchStatus::Ok);
}

TEST(ProcessPoolTest, EffectiveKillAfterDerivesFromDeadline) {
  driver::PoolOptions PO;
  EXPECT_EQ(driver::ProcessPool::effectiveKillAfter(PO), 0.0);
  PO.Batch.Scan.Deadline.WallSeconds = 2.0;
  EXPECT_DOUBLE_EQ(driver::ProcessPool::effectiveKillAfter(PO), 5.0);
  PO.KillAfterSeconds = 0.5;
  EXPECT_DOUBLE_EQ(driver::ProcessPool::effectiveKillAfter(PO), 0.5);
}

TEST(ProcessPoolTest, JournalMergeIsInputOrderAndResumable) {
  std::string Journal =
      testing::TempDir() + "procpool_resume_" +
      std::to_string(::getpid()) + ".jsonl";
  std::remove(Journal.c_str());
  std::vector<driver::BatchInput> Inputs = healthyInputs(6);

  // Shard 1: scan the first three packages only.
  driver::PoolOptions PO;
  PO.Jobs = 3;
  PO.Batch.JournalPath = Journal;
  PO.Batch.MaxPackages = 3;
  driver::BatchSummary First = driver::ProcessPool(PO).run(Inputs);
  EXPECT_EQ(First.Scanned, 3u);

  std::vector<std::string> Lines = readLines(Journal);
  ASSERT_EQ(Lines.size(), 3u);
  for (size_t I = 0; I < Lines.size(); ++I) {
    driver::BatchOutcome O;
    ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Lines[I], O));
    EXPECT_EQ(O.Package, Inputs[I].Name); // Input order, not finish order.
  }

  // Shard 2: resume scans only the unjournaled half.
  PO.Batch.MaxPackages = 0;
  PO.Batch.Resume = true;
  driver::BatchSummary Second = driver::ProcessPool(PO).run(Inputs);
  EXPECT_EQ(Second.SkippedResumed, 3u);
  EXPECT_EQ(Second.Scanned, 3u);

  std::set<std::string> Seen;
  for (const std::string &Line : readLines(Journal)) {
    driver::BatchOutcome O;
    ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Line, O));
    EXPECT_TRUE(Seen.insert(O.Package).second)
        << O.Package << " journaled twice";
  }
  EXPECT_EQ(Seen.size(), 6u);
  std::remove(Journal.c_str());
}

//===----------------------------------------------------------------------===//
// ProcessPool persistent mode
//===----------------------------------------------------------------------===//

TEST(PersistentPoolTest, HealthyBatchMatchesForkPerPackage) {
  std::vector<driver::BatchInput> Inputs = healthyInputs(6);

  driver::PoolOptions Fork;
  Fork.Jobs = 3;
  driver::BatchSummary PerFork = driver::ProcessPool(Fork).run(Inputs);

  driver::PoolOptions Pers = Fork;
  Pers.Persistent = true;
  driver::BatchSummary P = driver::ProcessPool(Pers).run(Inputs);

  EXPECT_EQ(P.Scanned, 6u);
  EXPECT_EQ(P.Ok, PerFork.Ok);
  EXPECT_EQ(P.Failed, 0u);
  EXPECT_EQ(P.TotalReports, PerFork.TotalReports);
  ASSERT_EQ(P.Outcomes.size(), PerFork.Outcomes.size());
  for (size_t I = 0; I < P.Outcomes.size(); ++I) {
    EXPECT_EQ(P.Outcomes[I].Package, Inputs[I].Name);
    EXPECT_EQ(P.Outcomes[I].Status, PerFork.Outcomes[I].Status);
    const auto &PR = P.Outcomes[I].Result.Reports;
    const auto &FR = PerFork.Outcomes[I].Result.Reports;
    ASSERT_EQ(PR.size(), FR.size()) << Inputs[I].Name;
    for (size_t J = 0; J < PR.size(); ++J) {
      EXPECT_EQ(PR[J].Type, FR[J].Type);
      EXPECT_EQ(PR[J].SinkLoc.Line, FR[J].SinkLoc.Line);
      EXPECT_EQ(PR[J].SinkName, FR[J].SinkName);
    }
  }
}

TEST(PersistentPoolTest, CrashMidQueueFailsOnlyItsPackage) {
  // One worker draining a six-package queue; the crash on package 2 must
  // fail exactly that package, and the re-forked replacement must drain
  // everything after it.
  driver::PoolOptions PO;
  PO.Jobs = 1;
  PO.Persistent = true;
  PO.Faults.push_back(makeFault(ScanPhase::Build, FaultPlan::Action::Crash, 2));
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(6));

  EXPECT_EQ(S.Scanned, 6u);
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.Ok, 5u);
  EXPECT_EQ(S.Crashed, 1u);
  ASSERT_EQ(S.Outcomes.size(), 6u);
  EXPECT_EQ(S.Outcomes[2].Status, driver::BatchStatus::Failed);
  EXPECT_EQ(failureKind(S.Outcomes[2]), ScanErrorKind::Crashed);
  for (size_t I : {0u, 1u, 3u, 4u, 5u})
    EXPECT_EQ(S.Outcomes[I].Status, driver::BatchStatus::Ok) << I;
}

TEST(PersistentPoolTest, RecycleQuotaRetiresAndReplacesWorkers) {
  driver::PoolOptions PO;
  PO.Jobs = 1;
  PO.Persistent = true;
  PO.RecycleAfter = 2;
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(6));

  EXPECT_EQ(S.Scanned, 6u);
  EXPECT_EQ(S.Failed, 0u);
  EXPECT_EQ(S.Ok, 6u);
  // 6 packages / quota 2 = 3 planned retirements, none of them failures.
  EXPECT_EQ(S.Recycled, 3u);
  EXPECT_EQ(S.Crashed, 0u);
}

TEST(PersistentPoolTest, HangIsKilledAndReplacementDrainsQueue) {
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.Persistent = true;
  PO.KillAfterSeconds = 1.0;
  PO.Faults.push_back(makeFault(ScanPhase::Build, FaultPlan::Action::Hang, 0));
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(4));

  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.DeadlineKilled, 1u);
  EXPECT_EQ(S.Outcomes[0].Status, driver::BatchStatus::Failed);
  EXPECT_EQ(failureKind(S.Outcomes[0]), ScanErrorKind::KilledDeadline);
  EXPECT_EQ(S.Ok, 3u);
}

TEST(PersistentPoolTest, OomIsContainedAndAttributed) {
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.Persistent = true;
  PO.MemLimitMB = 128;
  PO.Faults.push_back(makeFault(ScanPhase::Build, FaultPlan::Action::Oom, 0));
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(3));

  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.OomKilled, 1u);
  EXPECT_EQ(S.Outcomes[0].Status, driver::BatchStatus::Failed);
  EXPECT_EQ(failureKind(S.Outcomes[0]), ScanErrorKind::KilledOom);
  EXPECT_EQ(S.Ok, 2u);
}

TEST(PersistentPoolTest, RetryCrashedRecoversTransientFault) {
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.Persistent = true;
  PO.RetryCrashed = true;
  PO.Faults.push_back(makeFault(ScanPhase::Build, FaultPlan::Action::Crash, 0));
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(3));

  EXPECT_EQ(S.Retried, 1u);
  EXPECT_EQ(S.Crashed, 1u);
  EXPECT_EQ(S.Failed, 0u);
  EXPECT_EQ(S.Ok, 3u);
  EXPECT_EQ(S.Outcomes[0].Status, driver::BatchStatus::Ok);
}

TEST(PersistentPoolTest, JournalMergeIsInputOrderAndResumable) {
  std::string Journal = testing::TempDir() + "persistent_resume_" +
                        std::to_string(::getpid()) + ".jsonl";
  std::remove(Journal.c_str());
  std::vector<driver::BatchInput> Inputs = healthyInputs(6);

  driver::PoolOptions PO;
  PO.Jobs = 3;
  PO.Persistent = true;
  PO.Batch.JournalPath = Journal;
  PO.Batch.MaxPackages = 3;
  driver::BatchSummary First = driver::ProcessPool(PO).run(Inputs);
  EXPECT_EQ(First.Scanned, 3u);

  std::vector<std::string> Lines = readLines(Journal);
  ASSERT_EQ(Lines.size(), 3u);
  for (size_t I = 0; I < Lines.size(); ++I) {
    driver::BatchOutcome O;
    ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Lines[I], O));
    EXPECT_EQ(O.Package, Inputs[I].Name); // Input order, not finish order.
  }

  PO.Batch.MaxPackages = 0;
  PO.Batch.Resume = true;
  driver::BatchSummary Second = driver::ProcessPool(PO).run(Inputs);
  EXPECT_EQ(Second.SkippedResumed, 3u);
  EXPECT_EQ(Second.Scanned, 3u);

  std::set<std::string> Seen;
  for (const std::string &Line : readLines(Journal)) {
    driver::BatchOutcome O;
    ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Line, O));
    EXPECT_TRUE(Seen.insert(O.Package).second)
        << O.Package << " journaled twice";
  }
  EXPECT_EQ(Seen.size(), 6u);
  std::remove(Journal.c_str());
}

//===----------------------------------------------------------------------===//
// CLI round trips
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Cross-process telemetry: stitched traces and merged counters
//===----------------------------------------------------------------------===//

namespace {

/// Forces the counter gate on for one test and restores it after (the
/// supervisor-side worker.job_us clock and merge assertions need it).
class CounterGate {
public:
  explicit CounterGate(bool On) : Prev(obs::setCountersEnabled(On)) {}
  ~CounterGate() { obs::setCountersEnabled(Prev); }

private:
  bool Prev;
};

/// Shared assertions for a stitched pool trace: supervisor job: spans on
/// the default lane, worker phase spans on per-pid lanes, and every
/// worker package span nested inside some scheduling span.
void checkStitchedTrace(const obs::TraceRecorder &TR, size_t Packages) {
  std::vector<const obs::SpanRecord *> Jobs, Pkgs;
  for (const obs::SpanRecord &S : TR.spans()) {
    if (S.Name.rfind("job:", 0) == 0)
      Jobs.push_back(&S);
    else if (S.Name == "package")
      Pkgs.push_back(&S);
  }
  EXPECT_EQ(Jobs.size(), Packages);
  EXPECT_EQ(Pkgs.size(), Packages);
  std::set<int> WorkerPids;
  for (const obs::SpanRecord *J : Jobs)
    EXPECT_EQ(J->Pid, 0) << "job: spans live on the supervisor lane";
  for (const obs::SpanRecord *P : Pkgs) {
    EXPECT_NE(P->Pid, 0) << "package spans live on worker lanes";
    WorkerPids.insert(P->Pid);
    EXPECT_GE(P->StartUs, 0.0);
    EXPECT_GE(P->DurUs, 0.0);
    bool Enclosed = false;
    for (const obs::SpanRecord *J : Jobs)
      Enclosed |= J->StartUs <= P->StartUs + 1e-6 &&
                  P->StartUs + P->DurUs <= J->StartUs + J->DurUs + 1e-6;
    EXPECT_TRUE(Enclosed) << "package span at " << P->StartUs
                          << "us outside every job: scheduling span";
  }
  EXPECT_GE(WorkerPids.size(), 1u);
}

} // namespace

TEST(ProcessPoolTest, TraceStitchesWorkerSpansOntoPidLanes) {
  obs::TraceRecorder TR;
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.Trace = &TR;
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(4));
  EXPECT_EQ(S.Ok, 4u);
  checkStitchedTrace(TR, 4);
  // The Chrome export carries one lane label per process.
  std::string JSON = TR.toChromeJSON();
  EXPECT_NE(JSON.find("process_name"), std::string::npos);
  EXPECT_NE(JSON.find("supervisor"), std::string::npos);
  EXPECT_NE(JSON.find("worker "), std::string::npos);
}

TEST(PersistentPoolTest, TraceStitchesWorkerSpansOntoPidLanes) {
  obs::TraceRecorder TR;
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.Persistent = true;
  PO.Trace = &TR;
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(4));
  EXPECT_EQ(S.Ok, 4u);
  checkStitchedTrace(TR, 4);
}

TEST(ProcessPoolTest, WorkerCounterDeltasMergeIntoSupervisor) {
  // The undercount this fixes: before stitching, a --jobs N run left the
  // supervisor's registry blind to all scan-pipeline work (it happened in
  // children). Merged totals must now equal the per-outcome journal sums.
  CounterGate Gate(true);
  obs::resetCounters();
  obs::resetHistograms();
  driver::PoolOptions PO;
  PO.Jobs = 2;
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(3));
  ASSERT_EQ(S.Ok, 3u);

  uint64_t JournalTokens = 0;
  for (const driver::BatchOutcome &O : S.Outcomes) {
    auto It = O.Result.Counters.find("lex.tokens");
    ASSERT_NE(It, O.Result.Counters.end()) << O.Package;
    JournalTokens += It->second;
  }
  obs::CounterSnapshot Snap = obs::snapshotCounters();
  EXPECT_GT(JournalTokens, 0u);
  EXPECT_EQ(Snap.at("lex.tokens"), JournalTokens);
  EXPECT_EQ(Snap.at("scan.attempts"), 3u);

  // Histogram deltas rode the same frames: one scan-latency sample per
  // package, plus the supervisor's own per-job turnaround clock.
  obs::HistogramSnapshotMap Hists = obs::snapshotHistograms();
  EXPECT_EQ(Hists.at("scan.latency_us").count(), 3u);
  EXPECT_EQ(Hists.at("worker.job_us").count(), 3u);
  EXPECT_GT(Hists.at("phase.parse_us").count(), 0u);
  obs::resetCounters();
  obs::resetHistograms();
}

TEST(PersistentPoolTest, WorkerCounterDeltasMergeIntoSupervisor) {
  CounterGate Gate(true);
  obs::resetCounters();
  obs::resetHistograms();
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.Persistent = true;
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(4));
  ASSERT_EQ(S.Ok, 4u);

  uint64_t JournalNodes = 0;
  for (const driver::BatchOutcome &O : S.Outcomes)
    JournalNodes += O.Result.Counters.count("build.mdg_nodes")
                        ? O.Result.Counters.at("build.mdg_nodes")
                        : 0;
  obs::CounterSnapshot Snap = obs::snapshotCounters();
  EXPECT_GT(JournalNodes, 0u);
  EXPECT_EQ(Snap.at("build.mdg_nodes"), JournalNodes);
  EXPECT_EQ(obs::snapshotHistograms().at("scan.latency_us").count(), 4u);
  obs::resetCounters();
  obs::resetHistograms();
}

TEST(ProcessPoolTest, MetricsOutWritesPrometheusSnapshot) {
  CounterGate Gate(true);
  obs::resetCounters();
  obs::resetHistograms();
  std::string Prom = testing::TempDir() + "gjs_pool_metrics_" +
                     std::to_string(::getpid()) + ".prom";
  std::remove(Prom.c_str());
  driver::PoolOptions PO;
  PO.Jobs = 2;
  PO.Batch.MetricsPath = Prom;
  driver::BatchSummary S = driver::ProcessPool(PO).run(healthyInputs(3));
  ASSERT_EQ(S.Ok, 3u);
  std::ifstream In(Prom);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Page = SS.str();
  EXPECT_NE(Page.find("# TYPE graphjs_scan_latency_us summary"),
            std::string::npos)
      << Page;
  EXPECT_NE(Page.find("graphjs_scan_latency_us_count 3"), std::string::npos);
  EXPECT_NE(Page.find("# TYPE graphjs_lex_tokens counter"), std::string::npos)
      << "merged worker counters must reach the snapshot";
  std::remove(Prom.c_str());
  obs::resetCounters();
  obs::resetHistograms();
}

#if defined(GRAPHJS_BIN)

namespace {

/// Writes a corpus of generated single-file packages to a fresh temp dir.
std::string writeCorpus(size_t N, size_t FillerLoC) {
  std::string Dir = testing::TempDir() + "procpool_corpus_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(FillerLoC);
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  workload::PackageGenerator Gen(7);
  for (size_t I = 0; I < N; ++I) {
    workload::Package P =
        I % 2 ? Gen.benign(FillerLoC)
              : Gen.vulnerable(queries::VulnType::CommandInjection,
                               workload::Complexity::Wrapped,
                               workload::VariantKind::Plain, FillerLoC);
    char Name[64];
    std::snprintf(Name, sizeof(Name), "%s/pkg%03zu.js", Dir.c_str(), I);
    std::ofstream Out(Name);
    Out << P.Files[0].Contents;
  }
  return Dir;
}

/// Package name -> serialized "reports" array from a journal.
std::map<std::string, std::string> reportsByPackage(const std::string &Path) {
  std::map<std::string, std::string> Out;
  for (const std::string &Line : readLines(Path)) {
    json::Value V;
    if (!json::parse(Line, V) || !V.isObject())
      continue;
    const json::Object &O = V.asObject();
    if (!O.count("package") || !O.count("reports"))
      continue;
    Out[O.at("package").asString()] = O.at("reports").str();
  }
  return Out;
}

int runCLI(const std::string &Cmd) { return std::system(Cmd.c_str()); }

} // namespace

TEST(ProcessPoolCLITest, JobsFourContainsCrashAndHang) {
  std::string Dir = writeCorpus(6, 0);
  std::string J1 = Dir + "/j1.jsonl";
  std::string J4 = Dir + "/j4.jsonl";
  std::string Bin = GRAPHJS_BIN;

  ASSERT_EQ(runCLI(Bin + " batch --quiet --journal " + J1 + " " + Dir +
                   " > /dev/null 2>&1"),
            0);
  // Crash package 1, hang package 3; the hang dies at the supervisor's
  // kill deadline.
  int RC = runCLI(Bin + " batch --quiet --jobs 4 --journal " + J4 +
                  " --inject-fault build:crash:1"
                  " --inject-fault build:hang:3"
                  " --kill-after-ms 2000 " +
                  Dir + " > /dev/null 2>&1");
  EXPECT_NE(RC, 0); // Failures present -> nonzero exit.

  std::vector<std::string> Lines = readLines(J4);
  ASSERT_EQ(Lines.size(), 6u);
  std::map<std::string, std::string> KindByPkg;
  for (const std::string &Line : Lines) {
    driver::BatchOutcome O;
    ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Line, O));
    if (O.Status == driver::BatchStatus::Failed)
      KindByPkg[O.Package] =
          scanner::scanErrorKindName(O.Result.Errors.at(0).Kind);
  }
  ASSERT_EQ(KindByPkg.size(), 2u);
  EXPECT_EQ(KindByPkg.count("pkg001.js"), 1u);
  EXPECT_EQ(KindByPkg["pkg001.js"], "crashed");
  EXPECT_EQ(KindByPkg.count("pkg003.js"), 1u);
  EXPECT_EQ(KindByPkg["pkg003.js"], "killed-deadline");

  // Healthy-package report sets identical between --jobs 1 and --jobs 4
  // (timing fields differ run to run; the findings must not).
  std::map<std::string, std::string> R1 = reportsByPackage(J1);
  std::map<std::string, std::string> R4 = reportsByPackage(J4);
  for (const auto &[Pkg, Reports] : R4)
    if (!KindByPkg.count(Pkg)) {
      ASSERT_EQ(R1.count(Pkg), 1u) << Pkg;
      EXPECT_EQ(Reports, R1[Pkg]) << Pkg;
    }
  std::filesystem::remove_all(Dir);
}

TEST(ProcessPoolCLITest, PoolOnlyFlagsRequireJobs) {
  std::string Dir = writeCorpus(1, 0);
  std::string Bin = GRAPHJS_BIN;
  EXPECT_NE(runCLI(Bin + " batch --quiet --inject-fault build:crash:0 " +
                   Dir + " > /dev/null 2>&1"),
            0);
  EXPECT_NE(runCLI(Bin + " batch --quiet --mem-limit-mb 64 " + Dir +
                   " > /dev/null 2>&1"),
            0);
  EXPECT_NE(runCLI(Bin + " batch --quiet --retry-crashed " + Dir +
                   " > /dev/null 2>&1"),
            0);
  // --persistent is a pool mode; recycling is a persistent-worker policy.
  EXPECT_NE(runCLI(Bin + " batch --quiet --persistent " + Dir +
                   " > /dev/null 2>&1"),
            0);
  EXPECT_NE(runCLI(Bin + " batch --quiet --jobs 2 --recycle-after 1 " + Dir +
                   " > /dev/null 2>&1"),
            0);
  EXPECT_NE(runCLI(Bin + " batch --quiet --jobs 2 --recycle-mem-mb 64 " +
                   Dir + " > /dev/null 2>&1"),
            0);
  std::filesystem::remove_all(Dir);
}

TEST(ProcessPoolCLITest, PersistentContainsCrashAndMatchesReports) {
  std::string Dir = writeCorpus(6, 0);
  std::string J1 = Dir + "/j1.jsonl";
  std::string JP = Dir + "/jp.jsonl";
  std::string Bin = GRAPHJS_BIN;

  ASSERT_EQ(runCLI(Bin + " batch --quiet --journal " + J1 + " " + Dir +
                   " > /dev/null 2>&1"),
            0);
  int RC = runCLI(Bin + " batch --quiet --jobs 2 --persistent"
                  " --recycle-after 2 --journal " + JP +
                  " --inject-fault build:crash:1 " + Dir +
                  " > /dev/null 2>&1");
  EXPECT_NE(RC, 0); // The crashed package -> nonzero exit.

  std::vector<std::string> Lines = readLines(JP);
  ASSERT_EQ(Lines.size(), 6u);
  std::set<std::string> FailedPkgs;
  for (const std::string &Line : Lines) {
    driver::BatchOutcome O;
    ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Line, O));
    if (O.Status == driver::BatchStatus::Failed) {
      FailedPkgs.insert(O.Package);
      EXPECT_EQ(failureKind(O), ScanErrorKind::Crashed);
    }
  }
  EXPECT_EQ(FailedPkgs, std::set<std::string>{"pkg001.js"});

  // Healthy-package report sets identical between in-process and
  // persistent-pool scans (detection neutrality across execution modes).
  std::map<std::string, std::string> R1 = reportsByPackage(J1);
  std::map<std::string, std::string> RP = reportsByPackage(JP);
  for (const auto &[Pkg, Reports] : RP)
    if (!FailedPkgs.count(Pkg)) {
      ASSERT_EQ(R1.count(Pkg), 1u) << Pkg;
      EXPECT_EQ(Reports, R1[Pkg]) << Pkg;
    }
  std::filesystem::remove_all(Dir);
}

TEST(ProcessPoolCLITest, PersistentResumeAfterSupervisorSigkill) {
  // The persistent-mode variant of the exactly-once guarantee: SIGKILL
  // the supervisor mid-run (workers see EOF on their job pipe and exit),
  // then --resume must rescan only unjournaled packages.
  std::string Dir = writeCorpus(40, 401);
  std::string Journal = Dir + "/kill.jsonl";
  std::string Bin = GRAPHJS_BIN;

  Subprocess P;
  std::string Error;
  ASSERT_TRUE(Subprocess::spawn(
      {"/bin/sh", "-c",
       "exec " + Bin + " batch --quiet --jobs 2 --persistent --journal " +
           Journal + " " + Dir + " > /dev/null 2>&1"},
      P, &Error))
      << Error;

  WaitStatus WS;
  bool SelfFinished = false;
  for (int Spin = 0; Spin < 2000; ++Spin) {
    if (P.poll(WS)) {
      SelfFinished = true;
      break;
    }
    if (readLines(Journal).size() >= 2)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!SelfFinished) {
    ::kill(P.pid(), SIGKILL);
    P.wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  size_t Journaled = readLines(Journal).size();
  ASSERT_GE(Journaled, 1u);

  ASSERT_EQ(runCLI(Bin + " batch --quiet --jobs 2 --persistent --resume"
                   " --journal " + Journal + " " + Dir +
                   " > /dev/null 2>&1"),
            0);

  std::set<std::string> Seen;
  std::vector<std::string> Lines = readLines(Journal);
  for (const std::string &Line : Lines) {
    driver::BatchOutcome O;
    ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Line, O));
    EXPECT_TRUE(Seen.insert(O.Package).second)
        << O.Package << " journaled twice";
  }
  EXPECT_EQ(Seen.size(), 40u);
  EXPECT_EQ(Lines.size(), 40u);
  std::filesystem::remove_all(Dir);
}

TEST(ProcessPoolCLITest, ResumeAfterSupervisorSigkill) {
  // A corpus big enough that jobs=2 takes a while: SIGKILL the supervisor
  // mid-run, then --resume must rescan only unjournaled packages.
  std::string Dir = writeCorpus(40, 400);
  std::string Journal = Dir + "/kill.jsonl";
  std::string Bin = GRAPHJS_BIN;

  Subprocess P;
  std::string Error;
  // `exec` so P.pid() IS the supervisor, not an sh wrapper around it.
  ASSERT_TRUE(Subprocess::spawn(
      {"/bin/sh", "-c",
       "exec " + Bin + " batch --quiet --jobs 2 --journal " + Journal + " " +
           Dir + " > /dev/null 2>&1"},
      P, &Error))
      << Error;

  // Wait for a valid journal prefix, then SIGKILL the supervisor
  // (orphaned workers finish their line files and _exit on their own).
  WaitStatus WS;
  bool SelfFinished = false;
  for (int Spin = 0; Spin < 2000; ++Spin) {
    if (P.poll(WS)) {
      SelfFinished = true;
      break;
    }
    if (readLines(Journal).size() >= 2)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!SelfFinished) {
    ::kill(P.pid(), SIGKILL);
    P.wait();
    // Give any in-flight worker a moment to drain before resuming.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  size_t Journaled = readLines(Journal).size();
  ASSERT_GE(Journaled, 1u);

  ASSERT_EQ(runCLI(Bin + " batch --quiet --jobs 2 --resume --journal " +
                   Journal + " " + Dir + " > /dev/null 2>&1"),
            0);

  // Every package exactly once across both runs.
  std::set<std::string> Seen;
  std::vector<std::string> Lines = readLines(Journal);
  for (const std::string &Line : Lines) {
    driver::BatchOutcome O;
    ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Line, O));
    EXPECT_TRUE(Seen.insert(O.Package).second)
        << O.Package << " journaled twice";
  }
  EXPECT_EQ(Seen.size(), 40u);
  // The resume run appended, never rewrote, the first run's prefix.
  EXPECT_EQ(Lines.size(), 40u);
  std::filesystem::remove_all(Dir);
}

#endif // GRAPHJS_BIN
