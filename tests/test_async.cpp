//===- tests/test_async.cpp - Async lowering and detection tests ----------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
//
// The async-awareness suite (docs/ASYNC.md):
//
//  - Golden lowering tests: each supported form (await, .then chains,
//    `new Promise(executor)`, Promise statics) rewrites into the documented
//    suspend/resume/reaction/resolver shape, visible as role markers in the
//    Core IR dump, with the matching AsyncLowerStats.
//  - Detection: the workload generator's async shapes are found in BOTH
//    query backends, at the annotated sink line — and the promise-carried
//    shapes are provably MISSED when lowering is disabled (the acceptance
//    criterion that the detection is the lowering's doing).
//  - No regressions: error-first callbacks detect with lowering on or off;
//    benign async twins stay clean in both modes.
//  - Prune neutrality: summary-based pruning changes no reports over the
//    async corpus, either backend.
//  - The async lint pass accepts the lowering's real output and rejects
//    hand-broken shapes (orphan suspend/resume/promise).
//  - Parse errors carry a structured line:column SourceLocation.
//
//===----------------------------------------------------------------------===//

#include "core/AsyncLower.h"
#include "core/CoreIR.h"
#include "core/Normalizer.h"
#include "lint/PassManager.h"
#include "scanner/Scanner.h"
#include "workload/Packages.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace gjs;
using queries::VulnType;

namespace {

/// Normalize + lower, returning the lowered program and the stats.
std::unique_ptr<core::Program> lower(const std::string &Source, core::AsyncLowerStats *Out) {
  DiagnosticEngine Diags;
  std::unique_ptr<core::Program> P = core::normalizeJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  if (!P)
    return nullptr;
  core::AsyncLowerStats S = core::lowerAsync(*P);
  if (Out)
    *Out = S;
  return P;
}

size_t countMarker(const std::string &Dump, const std::string &Role) {
  const std::string Needle = "/* async:" + Role + " */";
  size_t N = 0;
  for (size_t At = Dump.find(Needle); At != std::string::npos;
       At = Dump.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

std::vector<queries::VulnReport>
scan(const std::vector<scanner::SourceFile> &Files, scanner::QueryBackend B,
     bool AsyncLower, bool Prune = true) {
  scanner::ScanOptions O;
  O.Backend = B;
  O.AsyncLower = AsyncLower;
  O.Prune = Prune;
  scanner::Scanner S(O);
  return S.scanPackage(Files).Reports;
}

bool hasAnnotatedReport(const std::vector<queries::VulnReport> &Reports,
                        const workload::Package &P) {
  for (const workload::Annotation &A : P.Annotations)
    for (const queries::VulnReport &R : Reports)
      if (R.Type == A.Type && R.SinkLoc.Line == A.SinkLine)
        return true;
  return false;
}

const scanner::QueryBackend BothBackends[] = {scanner::QueryBackend::GraphDB,
                                              scanner::QueryBackend::Native};

const char *backendName(scanner::QueryBackend B) {
  return B == scanner::QueryBackend::GraphDB ? "graphdb" : "native";
}

//===----------------------------------------------------------------------===//
// Golden lowering shapes
//===----------------------------------------------------------------------===//

TEST(AsyncLowerTest, AwaitBecomesSuspendResumeJoin) {
  core::AsyncLowerStats S;
  std::unique_ptr<core::Program> P = lower("async function f(p) {\n"
                             "  var x = await p;\n"
                             "  return x;\n"
                             "}\n",
                             &S);
  ASSERT_NE(P, nullptr);
  std::string D = core::dump(*P);
  // Two suspend reads (settled value + one-level flattening), one resume,
  // one alias join back into the awaited expression's target.
  EXPECT_EQ(countMarker(D, "suspend"), 2u) << D;
  EXPECT_EQ(countMarker(D, "resume"), 1u) << D;
  EXPECT_EQ(countMarker(D, "join"), 1u) << D;
  EXPECT_NE(D.find("%promise"), std::string::npos) << D;
  EXPECT_EQ(S.AwaitsLowered, 1u);
}

TEST(AsyncLowerTest, ThenRegistersReactionAndChainsPromise) {
  core::AsyncLowerStats S;
  std::unique_ptr<core::Program> P = lower("var q = p.then(function (v) { return v; });\n",
                             &S);
  ASSERT_NE(P, nullptr);
  std::string D = core::dump(*P);
  EXPECT_GE(countMarker(D, "reaction"), 1u) << D;
  EXPECT_GE(countMarker(D, "promise"), 1u) << D;
  EXPECT_GE(countMarker(D, "suspend"), 2u) << D;
  EXPECT_GE(countMarker(D, "resume"), 1u) << D;
  EXPECT_EQ(S.ReactionsLinked, 1u);
  EXPECT_EQ(S.CallbacksUnresolved, 0u);
}

TEST(AsyncLowerTest, NewPromiseSynthesizesResolvers) {
  core::AsyncLowerStats S;
  std::unique_ptr<core::Program> P = lower(
      "var p = new Promise(function (res, rej) { res('v'); });\n", &S);
  ASSERT_NE(P, nullptr);
  std::string D = core::dump(*P);
  // Two synthesized settle functions (resolve + reject) and the executor
  // invocation that receives them.
  EXPECT_EQ(countMarker(D, "resolver"), 2u) << D;
  EXPECT_GE(countMarker(D, "reaction"), 1u) << D;
  EXPECT_GE(countMarker(D, "promise"), 1u) << D;
  EXPECT_EQ(S.ReactionsLinked, 1u);
}

TEST(AsyncLowerTest, PromiseResolveSettlesFreshPromise) {
  core::AsyncLowerStats S;
  std::unique_ptr<core::Program> P = lower("var p = Promise.resolve(x);\n", &S);
  ASSERT_NE(P, nullptr);
  std::string D = core::dump(*P);
  EXPECT_GE(countMarker(D, "promise"), 1u) << D;
  EXPECT_NE(D.find("%promise"), std::string::npos) << D;
}

TEST(AsyncLowerTest, UnknownHandlerCountsAsUnresolved) {
  // `h` is a parameter, not a statically known function value: the handler
  // is left to the call graph's UnresolvedCallback soundness valve.
  core::AsyncLowerStats S;
  std::unique_ptr<core::Program> P = lower("function reg(p, h) { return p.then(h); }\n", &S);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(S.ReactionsLinked, 0u);
  EXPECT_EQ(S.CallbacksUnresolved, 1u);
}

TEST(AsyncLowerTest, PlainCodeIsUntouched) {
  core::AsyncLowerStats S;
  std::unique_ptr<core::Program> P = lower("function add(a, b) { return a + b; }\n"
                             "module.exports = add;\n",
                             &S);
  ASSERT_NE(P, nullptr);
  std::string D = core::dump(*P);
  EXPECT_EQ(D.find("/* async:"), std::string::npos) << D;
  EXPECT_EQ(S.AwaitsLowered, 0u);
  EXPECT_EQ(S.ReactionsLinked, 0u);
  EXPECT_EQ(S.CallbacksUnresolved, 0u);
}

TEST(AsyncLowerTest, LoweringIsIdempotentOnItsOwnOutput) {
  // Re-running the pass must not re-expand the model statements it
  // emitted (they are skipped by role).
  core::AsyncLowerStats S1;
  std::unique_ptr<core::Program> P = lower("async function f(p) { return await p; }\n", &S1);
  ASSERT_NE(P, nullptr);
  std::string D1 = core::dump(*P);
  core::AsyncLowerStats S2 = core::lowerAsync(*P);
  EXPECT_EQ(S2.AwaitsLowered, 0u);
  EXPECT_EQ(core::dump(*P), D1);
}

//===----------------------------------------------------------------------===//
// Detection: both backends, plus the asserted miss without lowering
//===----------------------------------------------------------------------===//

// The promise-carried shapes: taint reaches the sink only through the
// `%promise` model property, so detection hinges on the lowering.
const workload::AsyncForm PromiseForms[] = {
    workload::AsyncForm::Await, workload::AsyncForm::ThenChain,
    workload::AsyncForm::PromiseExecutor};

TEST(AsyncDetectionTest, PromiseFormsDetectedInBothBackends) {
  for (workload::AsyncForm F : PromiseForms) {
    workload::PackageGenerator Gen(7);
    workload::Package P = Gen.asyncVulnerable(F);
    ASSERT_EQ(P.Annotations.size(), 1u);
    for (scanner::QueryBackend B : BothBackends) {
      auto Reports = scan(P.Files, B, /*AsyncLower=*/true);
      EXPECT_TRUE(hasAnnotatedReport(Reports, P))
          << workload::asyncFormName(F) << " undetected on " << backendName(B)
          << ":\n" << P.Files[0].Contents;
    }
  }
}

TEST(AsyncDetectionTest, PromiseFormsMissedWithoutLowering) {
  // The acceptance criterion's control run: with `--no-async-lower` the
  // same packages must be MISSED — proof the flow crosses the async
  // boundary rather than leaking through some other path.
  for (workload::AsyncForm F : PromiseForms) {
    workload::PackageGenerator Gen(7);
    workload::Package P = Gen.asyncVulnerable(F);
    for (scanner::QueryBackend B : BothBackends) {
      auto Reports = scan(P.Files, B, /*AsyncLower=*/false);
      EXPECT_FALSE(hasAnnotatedReport(Reports, P))
          << workload::asyncFormName(F) << " unexpectedly detected without "
          << "lowering on " << backendName(B);
    }
  }
}

TEST(AsyncDetectionTest, ErrorFirstCallbackDetectedWithAndWithoutLowering) {
  // Error-first callbacks flow through the unknown-callee callback rule
  // that predates the lowering: the pass must not break that path.
  workload::PackageGenerator Gen(7);
  workload::Package P =
      Gen.asyncVulnerable(workload::AsyncForm::ErrorFirstCallback);
  for (scanner::QueryBackend B : BothBackends)
    for (bool Lower : {true, false})
      EXPECT_TRUE(hasAnnotatedReport(scan(P.Files, B, Lower), P))
          << backendName(B) << " lower=" << Lower;
}

TEST(AsyncDetectionTest, BenignTwinsStayClean) {
  // The same async structure with constant settled values must produce no
  // reports — the lowering must not invent taint.
  const workload::AsyncForm AllForms[] = {
      workload::AsyncForm::Await, workload::AsyncForm::ThenChain,
      workload::AsyncForm::PromiseExecutor,
      workload::AsyncForm::ErrorFirstCallback};
  for (workload::AsyncForm F : AllForms) {
    workload::PackageGenerator Gen(11);
    workload::Package P = Gen.asyncBenign(F);
    for (scanner::QueryBackend B : BothBackends)
      for (bool Lower : {true, false}) {
        auto Reports = scan(P.Files, B, Lower);
        EXPECT_TRUE(Reports.empty())
            << workload::asyncFormName(F) << " on " << backendName(B)
            << " lower=" << Lower << ": "
            << scanner::reportsToJSON(Reports);
      }
  }
}

//===----------------------------------------------------------------------===//
// Prune neutrality over the async corpus
//===----------------------------------------------------------------------===//

TEST(AsyncPruneTest, PruningIsDetectionNeutralOnAsyncCorpus) {
  const workload::AsyncForm AllForms[] = {
      workload::AsyncForm::Await, workload::AsyncForm::ThenChain,
      workload::AsyncForm::PromiseExecutor,
      workload::AsyncForm::ErrorFirstCallback};
  workload::PackageGenerator Gen(23);
  std::vector<workload::Package> Corpus;
  for (workload::AsyncForm F : AllForms) {
    Corpus.push_back(Gen.asyncVulnerable(F, /*FillerLoC=*/20));
    Corpus.push_back(Gen.asyncBenign(F, /*FillerLoC=*/20));
  }
  for (const workload::Package &P : Corpus)
    for (scanner::QueryBackend B : BothBackends) {
      std::string With = scanner::reportsToJSON(
          scan(P.Files, B, /*AsyncLower=*/true, /*Prune=*/true));
      std::string Without = scanner::reportsToJSON(
          scan(P.Files, B, /*AsyncLower=*/true, /*Prune=*/false));
      EXPECT_EQ(With, Without)
          << P.Name << " on " << backendName(B);
    }
}

//===----------------------------------------------------------------------===//
// The async lint pass
//===----------------------------------------------------------------------===//

size_t countCheck(const lint::LintResult &R, const std::string &Check) {
  size_t N = 0;
  for (const lint::Finding &F : R.findings())
    if (F.Check == Check)
      ++N;
  return N;
}

lint::LintResult runAsyncPass(const core::Program &P) {
  lint::PassManager PM;
  PM.addPass(lint::createAsyncPass());
  lint::LintContext Ctx;
  Ctx.Program = &P;
  return PM.run(Ctx);
}

TEST(AsyncLintTest, LoweredOutputPassesClean) {
  const workload::AsyncForm AllForms[] = {
      workload::AsyncForm::Await, workload::AsyncForm::ThenChain,
      workload::AsyncForm::PromiseExecutor};
  for (workload::AsyncForm F : AllForms) {
    workload::PackageGenerator Gen(3);
    workload::Package Pkg = Gen.asyncVulnerable(F);
    std::unique_ptr<core::Program> P = lower(Pkg.Files[0].Contents, nullptr);
    ASSERT_NE(P, nullptr);
    lint::LintResult R = runAsyncPass(*P);
    EXPECT_EQ(R.errorCount(), 0u) << workload::asyncFormName(F);
  }
}

TEST(AsyncLintTest, OrphanSuspendIsAnError) {
  core::Program P;
  auto S = std::make_unique<core::Stmt>(core::StmtKind::StaticLookup);
  S->Index = 1;
  S->Target = "%a1";
  S->Obj = core::Operand::var("p");
  S->Prop = "%promise";
  S->Async = core::AsyncRole::AwaitSuspend;
  P.TopLevel.push_back(std::move(S));
  lint::LintResult R = runAsyncPass(P);
  EXPECT_EQ(countCheck(R, "async.orphan-suspend"), 1u);
}

TEST(AsyncLintTest, OrphanResumeIsAnError) {
  core::Program P;
  auto S = std::make_unique<core::Stmt>(core::StmtKind::BinOp);
  S->Index = 1;
  S->Target = "%a3";
  S->LHS = core::Operand::var("%a1");
  S->RHS = core::Operand::var("%a2");
  S->Op = "await";
  S->Async = core::AsyncRole::AwaitResume;
  P.TopLevel.push_back(std::move(S));
  lint::LintResult R = runAsyncPass(P);
  EXPECT_EQ(countCheck(R, "async.orphan-resume"), 1u);
}

TEST(AsyncLintTest, OrphanPromiseIsAnError) {
  core::Program P;
  auto S = std::make_unique<core::Stmt>(core::StmtKind::NewObject);
  S->Index = 1;
  S->Target = "%p1";
  S->Async = core::AsyncRole::PromiseAlloc;
  P.TopLevel.push_back(std::move(S));
  lint::LintResult R = runAsyncPass(P);
  EXPECT_EQ(countCheck(R, "async.orphan-promise"), 1u);
}

//===----------------------------------------------------------------------===//
// Structured parse-error locations
//===----------------------------------------------------------------------===//

TEST(ScanErrorLocTest, ParseErrorCarriesLineAndColumn) {
  scanner::Scanner S{scanner::ScanOptions{}};
  scanner::ScanResult R =
      S.scanSource("var ok = 1;\nvar bad = ;\n");
  ASSERT_FALSE(R.Errors.empty());
  const scanner::ScanError &E = R.Errors[0];
  EXPECT_EQ(E.Phase, scanner::ScanPhase::Parse);
  EXPECT_TRUE(E.Loc.isValid());
  EXPECT_EQ(E.Loc.Line, 2u);
  // The rendered form carries the position for journals/CLI output.
  EXPECT_NE(E.str().find("2:"), std::string::npos) << E.str();
}

//===----------------------------------------------------------------------===//
// Workload generator sanity
//===----------------------------------------------------------------------===//

TEST(AsyncWorkloadTest, AllFormsParseAndAnnotateTheSink) {
  const workload::AsyncForm AllForms[] = {
      workload::AsyncForm::Await, workload::AsyncForm::ThenChain,
      workload::AsyncForm::PromiseExecutor,
      workload::AsyncForm::ErrorFirstCallback};
  workload::PackageGenerator Gen(5);
  for (workload::AsyncForm F : AllForms) {
    for (workload::Package P :
         {Gen.asyncVulnerable(F, 10), Gen.asyncBenign(F, 10)}) {
      for (const scanner::SourceFile &File : P.Files) {
        DiagnosticEngine Diags;
        auto Prog = core::normalizeJS(File.Contents, Diags);
        EXPECT_FALSE(Diags.hasErrors())
            << P.Name << ":\n" << File.Contents << Diags.str();
        EXPECT_NE(Prog, nullptr);
      }
    }
    workload::Package V = Gen.asyncVulnerable(F);
    ASSERT_EQ(V.Annotations.size(), 1u) << workload::asyncFormName(F);
    // The annotated line must contain the sink call.
    std::istringstream IS(V.Files[0].Contents);
    std::string Line;
    uint32_t N = 0;
    bool Found = false;
    while (std::getline(IS, Line)) {
      ++N;
      if (N == V.Annotations[0].SinkLine) {
        EXPECT_NE(Line.find("exec"), std::string::npos) << Line;
        Found = true;
      }
    }
    EXPECT_TRUE(Found) << workload::asyncFormName(F);
  }
}

} // namespace
