//===- tests/test_replay.cpp - Witness-replay tests -----------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "queries/QueryRunner.h"
#include "scanner/WitnessReplay.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::scanner;
using queries::VulnType;

namespace {

/// Scans + replays in one step; returns (findings, confirmed).
std::pair<std::vector<queries::VulnReport>, std::vector<queries::VulnReport>>
scanAndReplay(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  analysis::BuildResult Build = analysis::buildMDG(*Prog);
  queries::GraphDBRunner Runner(Build);
  auto Findings = Runner.detect(queries::SinkConfig::defaults());
  auto Confirmed = confirmByReplay(*Prog, Findings);
  return {Findings, Confirmed};
}

bool contains(const std::vector<queries::VulnReport> &Rs, VulnType T) {
  for (const queries::VulnReport &R : Rs)
    if (R.Type == T)
      return true;
  return false;
}

} // namespace

TEST(WitnessReplayTest, ConfirmsDirectCommandInjection) {
  auto [Findings, Confirmed] = scanAndReplay(
      "var cp = require('child_process');\n"
      "function run(cmd, cb) { cp.exec('git ' + cmd, cb); }\n"
      "module.exports = run;\n");
  ASSERT_TRUE(contains(Findings, VulnType::CommandInjection));
  EXPECT_TRUE(contains(Confirmed, VulnType::CommandInjection));
}

TEST(WitnessReplayTest, ConfirmsLoopBuiltCommand) {
  auto [Findings, Confirmed] = scanAndReplay(
      "var cp = require('child_process');\n"
      "function run(parts, cb) {\n"
      "  var full = 'tar';\n"
      "  for (var i = 0; i < parts.length; i++) {\n"
      "    full = full + ' ' + parts[i];\n"
      "  }\n"
      "  cp.exec(full, cb);\n"
      "}\n"
      "module.exports = run;\n");
  ASSERT_TRUE(contains(Findings, VulnType::CommandInjection));
  EXPECT_TRUE(contains(Confirmed, VulnType::CommandInjection));
}

TEST(WitnessReplayTest, ConfirmsSetValuePollution) {
  // Needs the concrete `split` model: the dotted-canary input drives the
  // loop to the polluting write.
  auto [Findings, Confirmed] = scanAndReplay(
      "function setValue(target, prop, value) {\n"
      "  var path = prop.split('.');\n"
      "  var len = path.length;\n"
      "  var obj = target;\n"
      "  for (var i = 0; i < len; i++) {\n"
      "    var p = path[i];\n"
      "    if (i === len - 1) {\n"
      "      obj[p] = value;\n"
      "    }\n"
      "    obj = obj[p];\n"
      "  }\n"
      "  return target;\n"
      "}\n"
      "module.exports = setValue;\n");
  ASSERT_TRUE(contains(Findings, VulnType::PrototypePollution));
  EXPECT_TRUE(contains(Confirmed, VulnType::PrototypePollution));
}

TEST(WitnessReplayTest, ConfirmsDirectPollution) {
  auto [Findings, Confirmed] = scanAndReplay(
      "function setPath(obj, key, subkey, value) {\n"
      "  var child = obj[key];\n"
      "  child[subkey] = value;\n"
      "  return obj;\n"
      "}\n"
      "module.exports = setPath;\n");
  ASSERT_TRUE(contains(Findings, VulnType::PrototypePollution));
  EXPECT_TRUE(contains(Confirmed, VulnType::PrototypePollution));
}

TEST(WitnessReplayTest, DoesNotConfirmGuardedSink) {
  // The guard blocks the canary (long, contains no allowed chars), so the
  // sink never executes with it: the static report stays unconfirmed —
  // exactly the paper's TFP class.
  auto [Findings, Confirmed] = scanAndReplay(
      "var cp = require('child_process');\n"
      "function run(c, cb) {\n"
      "  var g = 'git ' + c;\n"
      "  if (g.length < 4 && g.indexOf(';') === -1) {\n"
      "    cp.exec(g, cb);\n"
      "  }\n"
      "}\n"
      "module.exports = run;\n");
  ASSERT_TRUE(contains(Findings, VulnType::CommandInjection))
      << "statically reported (the query does not evaluate guards)";
  EXPECT_FALSE(contains(Confirmed, VulnType::CommandInjection))
      << "but not confirmable by replay";
}

TEST(WitnessReplayTest, DoesNotConfirmSanitizedOverwrite) {
  auto [Findings, Confirmed] = scanAndReplay(
      "var cp = require('child_process');\n"
      "function run(c, cb) {\n"
      "  var o = {};\n"
      "  o.c = c;\n"
      "  o.c = 'git status';\n"
      "  cp.exec(o.c, cb);\n"
      "}\n"
      "module.exports = run;\n");
  EXPECT_FALSE(contains(Confirmed, VulnType::CommandInjection));
  (void)Findings;
}

TEST(WitnessReplayTest, ReportsAttemptsAndWitness) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(
      "function run(e) { return eval('(' + e + ')'); }\n"
      "module.exports = run;\n",
      Diags);
  queries::VulnReport F;
  F.Type = VulnType::CodeInjection;
  F.SinkLoc = SourceLocation(1, 1);
  F.SinkName = "eval";
  ReplayResult R = replayFinding(*Prog, F);
  EXPECT_TRUE(R.Confirmed);
  EXPECT_GT(R.Attempts, 0u);
  EXPECT_NE(R.Witness.find("__CANARY__"), std::string::npos);
  EXPECT_FALSE(R.EntryFunction.empty());
}

TEST(WitnessReplayTest, WrongLineDoesNotConfirm) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(
      "function run(e) { return eval('(' + e + ')'); }\n"
      "module.exports = run;\n",
      Diags);
  queries::VulnReport F;
  F.Type = VulnType::CodeInjection;
  F.SinkLoc = SourceLocation(999, 1);
  F.SinkName = "eval";
  EXPECT_FALSE(replayFinding(*Prog, F).Confirmed);
}
