//===- tests/test_lattice.cpp - Lattice-law property tests ----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The paper's formal development rests on MDGs and abstract stores forming
// lattices (§3.1: "MDGs form a lattice under standard subset inclusion";
// §3.2: stores under pointwise subset inclusion), and on the analysis
// being *monotone* so fixpoints exist. These property tests check the
// lattice laws on randomized instances and the analysis' monotonicity /
// determinism on randomized programs.
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "mdg/AbstractStore.h"
#include "mdg/MDG.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::mdg;

namespace {

/// A random graph over N nodes with E random edges.
Graph randomGraph(RNG &R, size_t N, size_t E, StringInterner &Props) {
  Graph G;
  for (size_t I = 0; I < N; ++I)
    G.addNode(NodeKind::Object, static_cast<uint32_t>(I), SourceLocation(),
              "n" + std::to_string(I));
  for (size_t I = 0; I < E; ++I) {
    NodeId From = static_cast<NodeId>(R.below(N));
    NodeId To = static_cast<NodeId>(R.below(N));
    EdgeKind K = static_cast<EdgeKind>(R.below(5));
    Symbol P = 0;
    if (K == EdgeKind::Prop || K == EdgeKind::Version)
      P = Props.intern("p" + std::to_string(R.below(3)));
    G.addEdge(From, To, K, P);
  }
  return G;
}

AbstractStore randomStore(RNG &R, size_t Vars, size_t Nodes) {
  AbstractStore S;
  for (size_t I = 0; I < Vars; ++I) {
    AbstractStore::LocSet Locs;
    size_t K = R.below(4);
    for (size_t J = 0; J < K; ++J)
      Locs.insert(static_cast<NodeId>(R.below(Nodes)));
    S.set("v" + std::to_string(I), std::move(Locs));
  }
  return S;
}

} // namespace

class LatticeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LatticeSweep, GraphLeqIsReflexiveAndMonotone) {
  RNG R(GetParam());
  StringInterner Props;
  Graph G = randomGraph(R, 8 + R.below(8), 20 + R.below(20), Props);
  EXPECT_TRUE(Graph::leq(G, G)) << "reflexivity";

  // Adding edges only moves up the lattice.
  Graph G2 = G; // Copy.
  NodeId A = static_cast<NodeId>(R.below(G.numNodes()));
  NodeId B = static_cast<NodeId>(R.below(G.numNodes()));
  G2.addEdge(A, B, EdgeKind::Dep);
  EXPECT_TRUE(Graph::leq(G, G2));
}

TEST_P(LatticeSweep, StoreLatticeLaws) {
  RNG R(GetParam() ^ 0xBEEF);
  AbstractStore S1 = randomStore(R, 5, 10);
  AbstractStore S2 = randomStore(R, 5, 10);

  // Reflexivity.
  EXPECT_TRUE(AbstractStore::leq(S1, S1));

  // Join is an upper bound of both operands.
  AbstractStore J = S1;
  J.joinWith(S2);
  EXPECT_TRUE(AbstractStore::leq(S1, J));
  EXPECT_TRUE(AbstractStore::leq(S2, J));

  // Idempotence: joining again changes nothing.
  AbstractStore J2 = J;
  EXPECT_FALSE(J2.joinWith(S2));
  EXPECT_TRUE(J2 == J);

  // Commutativity: S1 ⊔ S2 == S2 ⊔ S1.
  AbstractStore JRev = S2;
  JRev.joinWith(S1);
  EXPECT_TRUE(JRev == J);
}

TEST_P(LatticeSweep, ResolvePropertyIsMonotoneUnderNewDeps) {
  // Adding dependency edges never removes resolution results.
  RNG R(GetParam() ^ 0xCAFE);
  StringInterner Props;
  Graph G = randomGraph(R, 10, 25, Props);
  Symbol P = Props.intern("p0");
  NodeId L = static_cast<NodeId>(R.below(G.numNodes()));
  auto Before = G.resolveProperty(L, P);
  G.addEdge(static_cast<NodeId>(R.below(G.numNodes())),
            static_cast<NodeId>(R.below(G.numNodes())), EdgeKind::Dep);
  auto After = G.resolveProperty(L, P);
  for (NodeId N : Before)
    EXPECT_NE(std::find(After.begin(), After.end(), N), After.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeSweep,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Analysis determinism and budget monotonicity
//===----------------------------------------------------------------------===//

namespace {

const char *MixedProgram =
    "function helper(h) { return h + '!'; }\n"
    "function entry(a, b, k) {\n"
    "  var o = {x: a};\n"
    "  o[k] = helper(b);\n"
    "  var i = 0;\n"
    "  while (i < 3) { o.x = o.x + a; i = i + 1; }\n"
    "  sink(o.x, o[k]);\n"
    "}\n"
    "module.exports = entry;\n";

} // namespace

TEST(AnalysisPropertyTest, BuildIsDeterministic) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(MixedProgram, Diags);
  analysis::BuildResult R1 = analysis::buildMDG(*Prog);
  analysis::BuildResult R2 = analysis::buildMDG(*Prog);
  EXPECT_EQ(R1.Graph.numNodes(), R2.Graph.numNodes());
  EXPECT_EQ(R1.Graph.numEdges(), R2.Graph.numEdges());
  EXPECT_TRUE(Graph::leq(R1.Graph, R2.Graph));
  EXPECT_TRUE(Graph::leq(R2.Graph, R1.Graph));
}

TEST(AnalysisPropertyTest, MoreFixpointItersNeverShrinkTheGraph) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(MixedProgram, Diags);
  size_t PrevEdges = 0;
  for (unsigned Iters : {1u, 2u, 4u, 64u}) {
    analysis::BuilderOptions O;
    O.MaxFixpointIters = Iters;
    analysis::BuildResult R = analysis::buildMDG(*Prog, O);
    EXPECT_GE(R.Graph.numEdges(), PrevEdges);
    PrevEdges = R.Graph.numEdges();
  }
}

TEST(AnalysisPropertyTest, DeeperInliningNeverShrinksTheGraph) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(MixedProgram, Diags);
  size_t PrevEdges = 0;
  for (unsigned Depth : {1u, 2u, 4u, 8u}) {
    analysis::BuilderOptions O;
    O.MaxInlineDepth = Depth;
    analysis::BuildResult R = analysis::buildMDG(*Prog, O);
    EXPECT_GE(R.Graph.numEdges(), PrevEdges);
    PrevEdges = R.Graph.numEdges();
  }
}
