//===- tests/test_workload.cpp - Dataset generator tests ------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Normalizer.h"
#include "eval/Metrics.h"
#include "workload/Datasets.h"

#include <gtest/gtest.h>

#include <set>

using namespace gjs;
using namespace gjs::workload;
using queries::VulnType;

namespace {

/// Every generated package must parse cleanly.
void expectParses(const Package &P) {
  for (const scanner::SourceFile &F : P.Files) {
    DiagnosticEngine Diags;
    auto Prog = core::normalizeJS(F.Contents, Diags);
    EXPECT_FALSE(Diags.hasErrors())
        << "package " << P.Name << ":\n" << F.Contents << Diags.str();
    EXPECT_NE(Prog, nullptr);
  }
}

} // namespace

TEST(PackageGeneratorTest, AllShapesParse) {
  PackageGenerator Gen(42);
  for (int T = 0; T < 4; ++T)
    for (int C = 0; C < 5; ++C)
      for (int V = 0; V < 6; ++V) {
        Package P = Gen.vulnerable(static_cast<VulnType>(T),
                                   static_cast<Complexity>(C),
                                   static_cast<VariantKind>(V), 30);
        expectParses(P);
        EXPECT_FALSE(P.Annotations.empty())
            << "vulnerable packages carry annotations";
      }
  expectParses(Gen.benign(50));
  expectParses(Gen.benignWithSafeSinks(50));
  expectParses(Gen.dynamicRequire(50));
}

TEST(PackageGeneratorTest, AnnotationLinesPointAtSinks) {
  PackageGenerator Gen(1);
  Package P = Gen.vulnerable(VulnType::CommandInjection, Complexity::Direct,
                             VariantKind::Plain, 0);
  ASSERT_EQ(P.Annotations.size(), 1u);
  // The annotated line must contain the sink call.
  std::istringstream IS(P.Files[0].Contents);
  std::string Line;
  uint32_t N = 0;
  while (std::getline(IS, Line)) {
    ++N;
    if (N == P.Annotations[0].SinkLine)
      EXPECT_NE(Line.find("exec"), std::string::npos) << Line;
  }
}

TEST(PackageGeneratorTest, FillerScalesLoC) {
  PackageGenerator Gen(2);
  Package Small = Gen.benign(0);
  Package Large = Gen.benign(800);
  EXPECT_GT(Large.LoC, Small.LoC + 500);
}

TEST(PackageGeneratorTest, DeterministicForSameSeed) {
  PackageGenerator G1(9), G2(9);
  Package P1 = G1.vulnerable(VulnType::CodeInjection, Complexity::Loop,
                             VariantKind::Plain, 40);
  Package P2 = G2.vulnerable(VulnType::CodeInjection, Complexity::Loop,
                             VariantKind::Plain, 40);
  EXPECT_EQ(P1.Files[0].Contents, P2.Files[0].Contents);
}

TEST(DatasetTest, Table3CountsMatch) {
  auto VulcaN = makeVulcaN(3);
  EXPECT_EQ(VulcaN.size(), VulcaNCounts.total()); // 219
  auto SecBench = makeSecBench(3);
  EXPECT_EQ(SecBench.size(), SecBenchCounts.total()); // 384

  auto CountType = [](const std::vector<Package> &Ps, VulnType T) {
    size_t N = 0;
    for (const Package &P : Ps)
      for (const Annotation &A : P.Annotations)
        if (A.Type == T)
          ++N;
    return N;
  };
  EXPECT_EQ(CountType(VulcaN, VulnType::PathTraversal), 5u);
  EXPECT_EQ(CountType(VulcaN, VulnType::CommandInjection), 87u);
  EXPECT_EQ(CountType(VulcaN, VulnType::CodeInjection), 33u);
  EXPECT_EQ(CountType(VulcaN, VulnType::PrototypePollution), 94u);
  EXPECT_EQ(CountType(SecBench, VulnType::PathTraversal), 161u);
}

TEST(DatasetTest, GroundTruthIsCombined) {
  auto GT = makeGroundTruth(3);
  EXPECT_EQ(GT.size(), VulcaNCounts.total() + SecBenchCounts.total()); // 603
}

TEST(DatasetTest, CollectedIsMostlyBenign) {
  auto C = makeCollected(3, 300);
  EXPECT_EQ(C.size(), 300u);
  size_t Annotated = 0, Unreported = 0;
  for (const Package &P : C) {
    if (!P.Annotations.empty())
      ++Annotated;
    if (!P.PreviouslyReported)
      ++Unreported;
  }
  EXPECT_LT(Annotated, C.size() / 4);
  EXPECT_GT(Annotated, 0u);
  EXPECT_GT(Unreported, 0u);
}

TEST(DatasetTest, AllGroundTruthPackagesParse) {
  // A broad smoke test over the whole generator space.
  workload::DatasetCounts Small{8, 8, 8, 8};
  auto Ps = makeDataset(17, Small);
  for (const Package &P : Ps)
    expectParses(P);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, ExactMatchScoring) {
  PackageGenerator Gen(5);
  Package P = Gen.vulnerable(VulnType::CommandInjection, Complexity::Direct,
                             VariantKind::Plain, 0);
  queries::VulnReport Hit;
  Hit.Type = VulnType::CommandInjection;
  Hit.SinkLoc = SourceLocation(P.Annotations[0].SinkLine, 3);
  auto S = eval::scorePackage(P, {Hit}, VulnType::CommandInjection);
  EXPECT_EQ(S.TP, 1u);
  EXPECT_EQ(S.FP, 0u);

  queries::VulnReport Miss = Hit;
  Miss.SinkLoc = SourceLocation(9999, 1);
  auto S2 = eval::scorePackage(P, {Miss}, VulnType::CommandInjection);
  EXPECT_EQ(S2.TP, 0u);
  EXPECT_EQ(S2.FP, 1u);
  EXPECT_EQ(S2.TFP, 1u);
}

TEST(MetricsTest, TypeOnlyLeniency) {
  PackageGenerator Gen(5);
  Package P = Gen.vulnerable(VulnType::CodeInjection, Complexity::Direct,
                             VariantKind::Plain, 0);
  queries::VulnReport WrongLine;
  WrongLine.Type = VulnType::CodeInjection;
  WrongLine.SinkLoc = SourceLocation(9999, 1);
  eval::ScorePolicy Lenient;
  Lenient.TypeOnlyMatch = true;
  auto S = eval::scorePackage(P, {WrongLine}, VulnType::CodeInjection,
                              Lenient);
  EXPECT_EQ(S.TP, 1u);
}

TEST(MetricsTest, ExtraRealSinkIsFPNotTFP) {
  PackageGenerator Gen(6);
  Package P = Gen.vulnerable(VulnType::CommandInjection, Complexity::Direct,
                             VariantKind::ExtraSink, 0);
  ASSERT_FALSE(P.ExtraRealLines.empty());
  queries::VulnReport OnExtra;
  OnExtra.Type = VulnType::CommandInjection;
  OnExtra.SinkLoc = SourceLocation(P.ExtraRealLines[0], 3);
  auto S = eval::scorePackage(P, {OnExtra}, VulnType::CommandInjection);
  EXPECT_EQ(S.FP, 1u);
  EXPECT_EQ(S.TFP, 0u);
}

TEST(MetricsTest, PrecisionRecallF1) {
  eval::ClassStats S;
  S.Total = 100;
  S.TP = 80;
  S.TFP = 20;
  EXPECT_DOUBLE_EQ(S.recall(), 0.8);
  EXPECT_DOUBLE_EQ(S.precision(), 0.8);
  EXPECT_DOUBLE_EQ(S.f1(), 0.8);
}

TEST(MetricsTest, VennDecomposition) {
  std::vector<bool> A = {true, true, false, false};
  std::vector<bool> B = {true, false, true, false};
  eval::VennCounts V = eval::venn(A, B);
  EXPECT_EQ(V.Both, 1u);
  EXPECT_EQ(V.OnlyA, 1u);
  EXPECT_EQ(V.OnlyB, 1u);
  EXPECT_EQ(V.Neither, 1u);
}

TEST(MetricsTest, CDFComputation) {
  auto C = eval::cdf({1.0, 2.0, 3.0, 4.0}, {0.5, 2.0, 10.0});
  EXPECT_DOUBLE_EQ(C[0], 0.0);
  EXPECT_DOUBLE_EQ(C[1], 0.5);
  EXPECT_DOUBLE_EQ(C[2], 1.0);
}

TEST(MetricsTest, LoCBuckets) {
  EXPECT_EQ(eval::bucketOf(50), 0);
  EXPECT_EQ(eval::bucketOf(100), 1);
  EXPECT_EQ(eval::bucketOf(499), 1);
  EXPECT_EQ(eval::bucketOf(750), 2);
  EXPECT_EQ(eval::bucketOf(5000), 3);
}
