//===- tests/test_lint.cpp - Static validation subsystem tests ------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Covers the three pass families of `graphjs lint`: the Core IR verifier,
// the MDG well-formedness checker, and the query schema linter — each on
// clean pipeline output (no errors) and on manufactured violations (the
// expected finding appears).
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "graphdb/SchemaLint.h"
#include "lint/PassManager.h"
#include "queries/QueryRunner.h"
#include "scanner/Scanner.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::lint;
using core::Operand;
using core::Stmt;
using core::StmtKind;

namespace {

analysis::BuildResult buildFrom(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return analysis::buildMDG(*Prog);
}

LintResult runPass(std::unique_ptr<Pass> P, const LintContext &Ctx) {
  PassManager PM;
  PM.addPass(std::move(P));
  return PM.run(Ctx);
}

size_t countCheck(const LintResult &R, const std::string &Check) {
  size_t N = 0;
  for (const Finding &F : R.findings())
    if (F.Check == Check)
      ++N;
  return N;
}

std::string describeErrors(const LintResult &R) {
  std::string Out;
  for (const Finding &F : R.findings())
    if (F.Severity == DiagSeverity::Error)
      Out += F.str() + "\n";
  return Out;
}

core::StmtPtr makeStmt(StmtKind K, core::StmtIndex Index) {
  auto S = std::make_unique<Stmt>(K);
  S->Index = Index;
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// IR verifier
//===----------------------------------------------------------------------===//

TEST(IRVerifierTest, NormalizerOutputIsClean) {
  // Exercises ternaries (same temp assigned in both If branches), loops
  // (fixpoint def semantics), nested functions, and exports.
  const char *Source =
      "function outer(a, b) {\n"
      "  var kind = a ? 'yes' : 'no';\n"
      "  function inner(x) { return x + kind; }\n"
      "  var total = 0;\n"
      "  for (var i = 0; i < b.length; i++) { total = total + b[i]; }\n"
      "  return inner(total);\n"
      "}\n"
      "module.exports = outer;\n";
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  LintContext Ctx;
  Ctx.Program = Prog.get();
  LintResult R = runPass(createIRVerifierPass(), Ctx);
  EXPECT_FALSE(R.hasErrors()) << describeErrors(R);
}

TEST(IRVerifierTest, UseBeforeDefDetected) {
  core::Program P;
  auto S = makeStmt(StmtKind::Assign, 1);
  S->Target = "x";
  S->Value = Operand::var("%t9"); // Never defined.
  P.TopLevel.push_back(std::move(S));
  LintContext Ctx;
  Ctx.Program = &P;
  LintResult R = runPass(createIRVerifierPass(), Ctx);
  EXPECT_TRUE(R.hasErrors());
  EXPECT_EQ(countCheck(R, "ir.use-before-def"), 1u);
}

TEST(IRVerifierTest, MultiAssignWarnsButTernaryJoinDoesNot) {
  // Straight-line double definition of the same temp: warning.
  core::Program P;
  for (core::StmtIndex I : {1u, 2u}) {
    auto S = makeStmt(StmtKind::Assign, I);
    S->Target = "%t1";
    S->Value = Operand::number(1);
    P.TopLevel.push_back(std::move(S));
  }
  LintContext Ctx;
  Ctx.Program = &P;
  LintResult R = runPass(createIRVerifierPass(), Ctx);
  EXPECT_EQ(countCheck(R, "ir.multi-assign"), 1u);

  // One definition per branch of the same `if` is the ternary join: clean.
  core::Program P2;
  auto If = makeStmt(StmtKind::If, 1);
  If->Cond = Operand::boolean(true);
  auto T = makeStmt(StmtKind::Assign, 2);
  T->Target = "%t1";
  T->Value = Operand::number(1);
  auto E = makeStmt(StmtKind::Assign, 3);
  E->Target = "%t1";
  E->Value = Operand::number(2);
  If->Then.push_back(std::move(T));
  If->Else.push_back(std::move(E));
  P2.TopLevel.push_back(std::move(If));
  LintContext Ctx2;
  Ctx2.Program = &P2;
  LintResult R2 = runPass(createIRVerifierPass(), Ctx2);
  EXPECT_EQ(countCheck(R2, "ir.multi-assign"), 0u);
}

TEST(IRVerifierTest, DuplicateAndZeroIndicesDetected) {
  core::Program P;
  P.TopLevel.push_back(makeStmt(StmtKind::NewObject, 7));
  P.TopLevel.push_back(makeStmt(StmtKind::NewObject, 7)); // Collision.
  P.TopLevel.push_back(makeStmt(StmtKind::NewObject, 0)); // Missing index.
  for (auto &S : P.TopLevel)
    S->Target = "o" + std::to_string(S->Index);
  LintContext Ctx;
  Ctx.Program = &P;
  LintResult R = runPass(createIRVerifierPass(), Ctx);
  EXPECT_EQ(countCheck(R, "ir.dup-index"), 1u);
  EXPECT_EQ(countCheck(R, "ir.zero-index"), 1u);
}

TEST(IRVerifierTest, DanglingExportDetected) {
  core::Program P;
  P.Exports.push_back({"main", "no_such_function"});
  LintContext Ctx;
  Ctx.Program = &P;
  LintResult R = runPass(createIRVerifierPass(), Ctx);
  EXPECT_EQ(countCheck(R, "ir.export-dangling"), 1u);
}

//===----------------------------------------------------------------------===//
// MDG checker
//===----------------------------------------------------------------------===//

TEST(MDGCheckerTest, BuiltGraphIsClean) {
  analysis::BuildResult B = buildFrom(
      "function f(a) { var o = {}; o.x = a; o.x = 'safe'; g(o.x); }\n"
      "module.exports = f;\n");
  LintContext Ctx;
  Ctx.Build = &B;
  LintResult R = runPass(createMDGCheckPass(), Ctx);
  EXPECT_FALSE(R.hasErrors()) << describeErrors(R);
}

TEST(MDGCheckerTest, LoopVersionCycleIsNoteNotError) {
  // §5.5: the site-reuse allocator folds loop iterations, so version
  // chains may legitimately be cyclic — a note, never an error.
  analysis::BuildResult B = buildFrom(
      "function set_value(target, prop, value) {\n"
      "  var obj = target;\n"
      "  for (var i = 0; i < 3; i++) { obj[prop] = value; obj = obj[prop]; }\n"
      "  return target;\n"
      "}\n"
      "module.exports = set_value;\n");
  LintContext Ctx;
  Ctx.Build = &B;
  LintResult R = runPass(createMDGCheckPass(), Ctx);
  EXPECT_FALSE(R.hasErrors()) << describeErrors(R);
}

TEST(MDGCheckerTest, ZeroPropertySymbolOnPEdgeFlagged) {
  analysis::BuildResult B;
  mdg::NodeId A = B.Graph.addNode(mdg::NodeKind::Object, 1, {});
  mdg::NodeId C = B.Graph.addNode(mdg::NodeKind::Object, 2, {});
  B.Graph.addEdge(A, C, mdg::EdgeKind::Prop, 0); // P edge without a name.
  LintContext Ctx;
  Ctx.Build = &B;
  LintResult R = runPass(createMDGCheckPass(), Ctx);
  EXPECT_EQ(countCheck(R, "mdg.edge-prop"), 1u);
  EXPECT_TRUE(R.hasErrors());
}

TEST(MDGCheckerTest, PropertySymbolOnDepEdgeFlagged) {
  analysis::BuildResult B;
  mdg::NodeId A = B.Graph.addNode(mdg::NodeKind::Object, 1, {});
  mdg::NodeId C = B.Graph.addNode(mdg::NodeKind::Object, 2, {});
  Symbol P = B.Props.intern("x");
  B.Graph.addEdge(A, C, mdg::EdgeKind::Dep, P); // D edges are unnamed.
  LintContext Ctx;
  Ctx.Build = &B;
  LintResult R = runPass(createMDGCheckPass(), Ctx);
  EXPECT_EQ(countCheck(R, "mdg.edge-prop"), 1u);
}

TEST(MDGCheckerTest, TaintFlagMismatchFlaggedBothWays) {
  analysis::BuildResult B;
  mdg::NodeId A = B.Graph.addNode(mdg::NodeKind::Object, 1, {});
  mdg::NodeId C = B.Graph.addNode(mdg::NodeKind::Object, 2, {});
  B.Graph.node(A).IsTaintSource = true; // Flagged but not listed.
  B.TaintSources.push_back(C);          // Listed but not flagged.
  LintContext Ctx;
  Ctx.Build = &B;
  LintResult R = runPass(createMDGCheckPass(), Ctx);
  EXPECT_EQ(countCheck(R, "mdg.taint-flag"), 2u);
}

TEST(MDGCheckerTest, CallArgWithoutDepEdgeFlagged) {
  analysis::BuildResult B;
  mdg::NodeId Arg = B.Graph.addNode(mdg::NodeKind::Object, 1, {});
  mdg::NodeId Call = B.Graph.addNode(mdg::NodeKind::Call, 2, {});
  B.Graph.node(Call).CallName = "exec";
  B.Graph.node(Call).Args = {{Arg}}; // Recorded arg, but no D edge.
  B.CallNodes.push_back(Call);
  LintContext Ctx;
  Ctx.Build = &B;
  LintResult R = runPass(createMDGCheckPass(), Ctx);
  EXPECT_EQ(countCheck(R, "mdg.call-arg"), 1u);

  // Adding the D edge the builder normally wires clears the finding.
  B.Graph.addEdge(Arg, Call, mdg::EdgeKind::Dep);
  LintResult R2 = runPass(createMDGCheckPass(), Ctx);
  EXPECT_EQ(countCheck(R2, "mdg.call-arg"), 0u);
}

TEST(MDGCheckerTest, CallNodeMissingFromListFlagged) {
  analysis::BuildResult B;
  mdg::NodeId Call = B.Graph.addNode(mdg::NodeKind::Call, 1, {});
  B.Graph.node(Call).CallName = "exec";
  // Not pushed into B.CallNodes.
  LintContext Ctx;
  Ctx.Build = &B;
  LintResult R = runPass(createMDGCheckPass(), Ctx);
  EXPECT_EQ(countCheck(R, "mdg.call-meta"), 1u);
}

//===----------------------------------------------------------------------===//
// Query schema linter
//===----------------------------------------------------------------------===//

namespace {

bool hasIssue(const std::vector<graphdb::SchemaIssue> &Issues,
              const std::string &Code) {
  for (const graphdb::SchemaIssue &I : Issues)
    if (I.Code == Code)
      return true;
  return false;
}

std::vector<graphdb::SchemaIssue> lintText(const std::string &Text) {
  return graphdb::lintQueryText(Text, graphdb::mdgSchema());
}

} // namespace

TEST(SchemaLintTest, TypoedEdgeLabelIsError) {
  auto Issues =
      lintText("MATCH (a:Object)-[:DD]->(b:Object) RETURN a, b");
  EXPECT_TRUE(hasIssue(Issues, "query.unknown-rel-type"));
  EXPECT_TRUE(graphdb::hasSchemaError(Issues));
}

TEST(SchemaLintTest, UnknownNodeLabelIsError) {
  auto Issues = lintText("MATCH (a:Objet) RETURN a");
  EXPECT_TRUE(hasIssue(Issues, "query.unknown-node-label"));
}

TEST(SchemaLintTest, UnsatisfiableHopBoundsIsError) {
  auto Issues = lintText("MATCH (a)-[:D*3..1]->(b) RETURN a, b");
  EXPECT_TRUE(hasIssue(Issues, "query.hop-bounds"));
}

TEST(SchemaLintTest, UnboundReturnVariableIsError) {
  auto Issues = lintText("MATCH (a:Object) RETURN c");
  EXPECT_TRUE(hasIssue(Issues, "query.unbound-var"));
}

TEST(SchemaLintTest, UnusedBindingIsWarningOnly) {
  auto Issues = lintText("MATCH (a:Object)-[:D]->(b:Object) RETURN a");
  EXPECT_TRUE(hasIssue(Issues, "query.unused-binding"));
  EXPECT_FALSE(graphdb::hasSchemaError(Issues));
}

TEST(SchemaLintTest, UnknownPropertyKeyIsWarning) {
  auto Issues = lintText("MATCH (a:Object) RETURN a.nosuchkey");
  EXPECT_TRUE(hasIssue(Issues, "query.unknown-prop-key"));
  EXPECT_FALSE(graphdb::hasSchemaError(Issues));
}

TEST(SchemaLintTest, WellFormedTaintQueryIsClean) {
  auto Issues = lintText(
      "MATCH p = (src:Object {taint: 'true'})-[:D|P|PU|V|VU*0..]->(arg)"
      "-[:D]->(call:Call {name: 'exec'})\n"
      "WHERE NOT untainted(p)\nRETURN src, arg, call");
  EXPECT_TRUE(Issues.empty());
}

TEST(SchemaLintTest, BuiltinQueriesValidateCleanly) {
  // The acceptance gate: every Table 2 query instantiated from the default
  // sink config must pass the schema linter.
  std::string Error;
  EXPECT_TRUE(queries::GraphDBRunner::validateBuiltinQueries(
      queries::SinkConfig::defaults(), &Error))
      << Error;
}

TEST(SchemaLintTest, TypoedBuiltinTemplateFailsValidation) {
  // Simulates seeding a typo into a Table 2 template: the same linter that
  // guards startup must reject it with a positioned, named diagnostic.
  auto Issues = lintText(
      "MATCH p = (src:Object {taint: 'true'})-[:D|P|PU|V|VUU*0..]->(arg)"
      "-[:D]->(call:Call {name: 'exec'})\n"
      "WHERE NOT untainted(p)\nRETURN src, arg, call");
  EXPECT_TRUE(hasIssue(Issues, "query.unknown-rel-type"));
  EXPECT_TRUE(graphdb::hasSchemaError(Issues));
}

//===----------------------------------------------------------------------===//
// Pass manager integration
//===----------------------------------------------------------------------===//

TEST(PassManagerTest, StandardPipelineOnFullContext) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(
      "function f(a) { var o = {}; o.x = a; g(o.x); }\n"
      "module.exports = f;\n",
      Diags);
  ASSERT_FALSE(Diags.hasErrors());
  analysis::BuildResult B = analysis::buildMDG(*Prog);
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();

  LintContext Ctx;
  Ctx.Program = Prog.get();
  Ctx.Build = &B;
  Ctx.Sinks = &Sinks;
  LintResult R = PassManager::standard().run(Ctx);
  EXPECT_FALSE(R.hasErrors()) << describeErrors(R);
}

TEST(PassManagerTest, ExtraQueryWithTypoProducesErrorFinding) {
  LintContext Ctx;
  Ctx.ExtraQueries.push_back(
      "MATCH (a:Object)-[:DD]->(b:Object) RETURN a, b");
  LintResult R = runPass(createQuerySchemaPass(), Ctx);
  EXPECT_TRUE(R.hasErrors());
  EXPECT_EQ(countCheck(R, "query.unknown-rel-type"), 1u);
}

TEST(PassManagerTest, FindingsRenderAsJSON) {
  LintContext Ctx;
  Ctx.ExtraQueries.push_back("MATCH (a:Objet) RETURN a");
  LintResult R = runPass(createQuerySchemaPass(), Ctx);
  ASSERT_TRUE(R.hasErrors());
  std::string J = R.renderJSON();
  EXPECT_NE(J.find("\"findings\""), std::string::npos);
  EXPECT_NE(J.find("query.unknown-node-label"), std::string::npos);
  EXPECT_NE(J.find("\"errors\""), std::string::npos);
}

TEST(PassManagerTest, FindingsMirrorIntoDiagnostics) {
  LintContext Ctx;
  Ctx.ExtraQueries.push_back("MATCH (a:Objet) RETURN a");
  LintResult R = runPass(createQuerySchemaPass(), Ctx);
  DiagnosticEngine Diags;
  R.toDiagnostics(Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("query-schema/query.unknown-node-label"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Scanner SelfCheck mode
//===----------------------------------------------------------------------===//

TEST(ScannerSelfCheckTest, CleanScanHasNoSchemaErrorAndNoSelfCheckErrors) {
  scanner::ScanOptions O;
  O.SelfCheck = true;
  scanner::Scanner S(O);
  scanner::ScanResult R = S.scanSource(
      "const { exec } = require('child_process');\n"
      "function run(cmd) { exec(cmd); }\n"
      "module.exports = run;\n");
  EXPECT_FALSE(R.parseFailed());
  EXPECT_TRUE(R.SchemaError.empty()) << R.SchemaError;
  for (const Finding &F : R.SelfCheckFindings)
    EXPECT_NE(F.Severity, DiagSeverity::Error) << F.str();
  EXPECT_FALSE(R.Reports.empty()); // The CWE-78 is still found.
}
