//===- tests/test_summaries.cpp - Call graph + taint summary tests ---------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The summary-based pruning stage: static call-graph construction, the
// bottom-up per-function taint summaries, the pruning decision and its
// soundness guardrails (an unresolved callee on a relevant path blocks
// pruning), the SinkConfig error paths, the summary JSON round trip, and
// — the acceptance bar — detection neutrality: the confirmed report set
// with and without pruning is byte-identical over examples/js and a
// generated workload corpus, in both query backends.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/MDGBuilder.h"
#include "analysis/TaintSummary.h"
#include "core/Normalizer.h"
#include "obs/Counters.h"
#include "lint/PassManager.h"
#include "queries/SinkConfig.h"
#include "scanner/Scanner.h"
#include "workload/Datasets.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace gjs;

namespace {

std::unique_ptr<core::Program> normalize(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Program = core::normalizeJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Program;
}

// The call graph keeps pointers into the normalized program, so every
// helper returns the program alongside what was derived from it.
struct Built {
  std::unique_ptr<core::Program> Program;
  analysis::CallGraph CG;
  analysis::SummarySet Sums;
  analysis::PruneDecision Decision;
};

Built graphOf(const std::string &Source) {
  Built B;
  B.Program = normalize(Source);
  B.CG = analysis::CallGraph::build(*B.Program);
  return B;
}

Built analyze(const std::string &Source) {
  Built B;
  B.Program = normalize(Source);
  std::vector<const core::Program *> Mods{B.Program.get()};
  B.CG = analysis::CallGraph::build(Mods, {""});
  B.Sums = analysis::computeSummaries(
      B.CG, Mods, queries::toSinkTable(queries::SinkConfig::defaults()));
  B.Decision = analysis::decidePruning(B.CG, B.Sums);
  return B;
}

const analysis::FunctionSummary &summaryOf(const Built &B,
                                           const std::string &Name) {
  analysis::FuncId Id = B.CG.functionByName(Name);
  EXPECT_NE(Id, analysis::InvalidFuncId) << Name;
  return B.Sums.Summaries[Id];
}

} // namespace

//===----------------------------------------------------------------------===//
// SinkConfig error paths
//===----------------------------------------------------------------------===//

TEST(SinkConfigErrors, RejectsNonObjectConfig) {
  queries::SinkConfig Out;
  std::string Error;
  EXPECT_FALSE(queries::SinkConfig::fromJSON("[1,2]", Out, &Error));
  EXPECT_EQ(Error, "sink config must be a JSON object");
}

TEST(SinkConfigErrors, RejectsMalformedJSON) {
  queries::SinkConfig Out;
  std::string Error;
  EXPECT_FALSE(queries::SinkConfig::fromJSON("{\"command-injection\": ",
                                             Out, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(SinkConfigErrors, RejectsUnknownVulnerabilityClass) {
  queries::SinkConfig Out;
  std::string Error;
  EXPECT_FALSE(queries::SinkConfig::fromJSON(
      "{\"cwe-9999\": [{\"name\": \"exec\"}]}", Out, &Error));
  EXPECT_EQ(Error, "unknown vulnerability class 'cwe-9999'");
}

TEST(SinkConfigErrors, RejectsNonArraySinkList) {
  queries::SinkConfig Out;
  std::string Error;
  EXPECT_FALSE(queries::SinkConfig::fromJSON(
      "{\"command-injection\": {\"name\": \"exec\"}}", Out, &Error));
  EXPECT_EQ(Error, "sink list for 'command-injection' must be an array");
}

TEST(SinkConfigErrors, RejectsSinkWithoutName) {
  queries::SinkConfig Out;
  std::string Error;
  EXPECT_FALSE(queries::SinkConfig::fromJSON(
      "{\"command-injection\": [{\"args\": [0]}]}", Out, &Error));
  EXPECT_EQ(Error, "each sink needs a 'name'");
}

TEST(SinkConfigErrors, RejectsNonArraySanitizers) {
  queries::SinkConfig Out;
  std::string Error;
  EXPECT_FALSE(queries::SinkConfig::fromJSON("{\"sanitizers\": \"clean\"}",
                                             Out, &Error));
  EXPECT_EQ(Error, "'sanitizers' must be an array of names");
}

//===----------------------------------------------------------------------===//
// Call-graph construction
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, ResolvesDirectLocalCalls) {
  Built B = graphOf("function helper(x) { return x; }\n"
                    "function run(a) { return helper(a); }\n"
                    "module.exports = run;\n");
  const analysis::CallGraph &CG = B.CG;
  analysis::FuncId Run = CG.functionByName("run#1");
  analysis::FuncId Helper = CG.functionByName("helper#0");
  ASSERT_NE(Run, analysis::InvalidFuncId);
  ASSERT_NE(Helper, analysis::InvalidFuncId);
  EXPECT_TRUE(CG.functions()[Run].IsEntry);
  EXPECT_FALSE(CG.functions()[Helper].IsEntry);

  bool SawEdge = false;
  for (const analysis::CallSite &S : CG.sites())
    if (S.Caller == Run && S.Kind == analysis::CalleeKind::Resolved)
      for (analysis::FuncId T : S.Targets)
        SawEdge |= T == Helper;
  EXPECT_TRUE(SawEdge) << CG.dumpText();
  EXPECT_GE(CG.numResolvedEdges(), 1u);
}

TEST(CallGraphTest, ClassifiesRequireCallsAsExternal) {
  Built B = graphOf("var cp = require('child_process');\n"
                    "function f(c) { cp.exec(c); }\n"
                    "module.exports = f;\n");
  const analysis::CallGraph &CG = B.CG;
  bool SawExec = false;
  for (const analysis::CallSite &S : CG.sites())
    if (S.CalleePath == "child_process.exec") {
      SawExec = true;
      EXPECT_EQ(S.Kind, analysis::CalleeKind::External);
    }
  EXPECT_TRUE(SawExec) << CG.dumpText();
}

TEST(CallGraphTest, EscapedFunctionValueForcesUnresolved) {
  // `f` escapes into the heap, and `h` is called through a property
  // lookup: the builder's store could still reach user code there, so the
  // site must land in the Unresolved bucket (not External).
  Built B = graphOf("function f(x) { return x; }\n"
                    "var o = {};\n"
                    "o.m = f;\n"
                    "function g(a) { var h = o.m; h(a); }\n"
                    "module.exports = g;\n");
  const analysis::CallGraph &CG = B.CG;
  EXPECT_TRUE(CG.anyFunctionEscapes());
  EXPECT_GE(CG.numUnresolvedSites(), 1u) << CG.dumpText();
  analysis::FuncId F = CG.functionByName("f#0");
  ASSERT_NE(F, analysis::InvalidFuncId);
  EXPECT_TRUE(CG.functions()[F].IsEscaped);
  // Escaped functions are reachability roots: code we cannot see may
  // invoke them.
  EXPECT_TRUE(CG.reachableFromRoots()[F]);
}

TEST(CallGraphTest, SCCOrderIsReverseTopological) {
  Built B = graphOf("function even(n) { return n ? odd(n - 1) : 1; }\n"
                    "function odd(n) { return n ? even(n - 1) : 0; }\n"
                    "function top(n) { return even(n); }\n"
                    "module.exports = top;\n");
  const analysis::CallGraph &CG = B.CG;
  analysis::FuncId Even = CG.functionByName("even#0");
  analysis::FuncId Odd = CG.functionByName("odd#1");
  analysis::FuncId Top = CG.functionByName("top#2");
  ASSERT_NE(Even, analysis::InvalidFuncId);

  // even/odd form one SCC; top's SCC must come later (callees first).
  std::map<analysis::FuncId, size_t> Rank;
  const auto &SCCs = CG.sccOrder();
  for (size_t I = 0; I < SCCs.size(); ++I)
    for (analysis::FuncId F : SCCs[I])
      Rank[F] = I;
  EXPECT_EQ(Rank.at(Even), Rank.at(Odd));
  EXPECT_GT(Rank.at(Top), Rank.at(Even));
}

//===----------------------------------------------------------------------===//
// Summaries
//===----------------------------------------------------------------------===//

TEST(SummaryTest, ParamToSinkFlowThroughHelper) {
  Built B = analyze("var cp = require('child_process');\n"
                    "function wrap(s) { return s; }\n"
                    "function f(a) { cp.exec(wrap(a)); }\n"
                    "module.exports = f;\n");
  const analysis::FunctionSummary &Wrap = summaryOf(B, "wrap#0");
  EXPECT_EQ(Wrap.RetFlow & analysis::paramBit(0), analysis::paramBit(0));
  const analysis::FunctionSummary &F = summaryOf(B, "f#1");
  EXPECT_TRUE(F.HasSinkSite[analysis::SinkClassCommandInjection]);
  EXPECT_NE(F.SinkFlow[analysis::SinkClassCommandInjection] &
                analysis::paramBit(0),
            0u);
  EXPECT_FALSE(B.Decision.Prunable[analysis::SinkClassCommandInjection])
      << B.Decision.str();
}

TEST(SummaryTest, JSONRoundTripPreservesSummaries) {
  Built B = analyze("var cp = require('child_process');\n"
                    "function merge(o, k, v) { o[k] = v; return o; }\n"
                    "function f(a, b) { cp.exec(a + b); return merge({}, a, b); }\n"
                    "module.exports = f;\n");
  std::string Text = analysis::summariesToJSON(B.Sums);
  analysis::SummarySet Round;
  std::string Error;
  ASSERT_TRUE(analysis::summariesFromJSON(Text, Round, &Error)) << Error;
  ASSERT_EQ(Round.Summaries.size(), B.Sums.Summaries.size());
  for (size_t I = 0; I < Round.Summaries.size(); ++I)
    EXPECT_TRUE(Round.Summaries[I] == B.Sums.Summaries[I])
        << B.Sums.Summaries[I].Name;
}

TEST(SummaryTest, RejectsMalformedSummaryJSON) {
  analysis::SummarySet Out;
  std::string Error;
  EXPECT_FALSE(analysis::summariesFromJSON("[not json", Out, &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Pruning decisions and soundness guardrails
//===----------------------------------------------------------------------===//

TEST(PruneTest, BenignPackagePrunesEverything) {
  Built B = analyze("function add(a, b) { return a + b; }\n"
                    "module.exports = add;\n");
  EXPECT_TRUE(B.Decision.allPruned()) << B.Decision.str();
}

TEST(PruneTest, ConstantSinkArgumentPrunes) {
  // A sink callsite exists, but only a constant reaches it: the class's
  // flow is provably clean.
  Built B = analyze("var cp = require('child_process');\n"
                    "function f(a) { var r = 'ls'; cp.exec(r); }\n"
                    "module.exports = f;\n");
  EXPECT_TRUE(B.Decision.Prunable[analysis::SinkClassCommandInjection])
      << B.Decision.str();
}

TEST(PruneTest, TaintedExternalCallResultBlocksPrune) {
  // Identical to the above except the sink argument comes from an unknown
  // call over the tainted parameter — the builder models that result as
  // depending on its inputs, so pruning must be blocked.
  Built B = analyze("var cp = require('child_process');\n"
                    "function f(a) { var r = transform(a); cp.exec(r); }\n"
                    "module.exports = f;\n");
  EXPECT_FALSE(B.Decision.Prunable[analysis::SinkClassCommandInjection])
      << B.Decision.str();
}

TEST(PruneTest, DynamicCalleeBlocksPruneForReachableSinks) {
  // The callee itself is dynamic (a function value from the heap): the
  // summary stage cannot name the code that runs, so any class with a
  // reachable sink site stays un-pruned.
  Built B = analyze("var cp = require('child_process');\n"
                    "var handlers = {};\n"
                    "function reg(h) { handlers.h = h; }\n"
                    "function f(a) { var g = handlers.h; g(a); cp.exec(a); }\n"
                    "module.exports = { reg: reg, run: f };\n");
  EXPECT_FALSE(B.Decision.Prunable[analysis::SinkClassCommandInjection])
      << B.Decision.str();
}

TEST(PruneTest, NoTaintSourcesPrunesTaintClasses) {
  // Exported API takes no parameters: no taint sources exist, so the
  // taint-style classes are prunable even with sink callsites present.
  Built B = analyze("var cp = require('child_process');\n"
                    "function f() { cp.exec('ls'); }\n"
                    "module.exports = f;\n");
  EXPECT_TRUE(B.Decision.Prunable[analysis::SinkClassCommandInjection])
      << B.Decision.str();
}

TEST(PruneTest, PollutionKeptOnlyWithDynamicWrites) {
  Built Clean = analyze("function set(o, v) { o.fixed = v; return o; }\n"
                        "module.exports = set;\n");
  EXPECT_TRUE(Clean.Decision.Prunable[analysis::SinkClassPrototypePollution])
      << Clean.Decision.str();

  Built Dirty = analyze(
      "function set(o, k, v) { o[k] = v; return o; }\n"
      "module.exports = set;\n");
  EXPECT_FALSE(Dirty.Decision.Prunable[analysis::SinkClassPrototypePollution])
      << Dirty.Decision.str();
}

//===----------------------------------------------------------------------===//
// Scanner integration
//===----------------------------------------------------------------------===//

TEST(ScannerPruneTest, BenignSourceSkipsImportAndRecordsDecision) {
  scanner::Scanner S{scanner::ScanOptions{}};
  scanner::ScanResult R =
      S.scanSource("function add(a, b) { return a + b; }\n"
                   "module.exports = add;\n");
  EXPECT_TRUE(R.Reports.empty());
  EXPECT_EQ(R.PrunedQueries, 4u);
  EXPECT_TRUE(R.PruneSkippedImport);
  EXPECT_NE(R.PruneReason.find("CWE-78:pruned"), std::string::npos)
      << R.PruneReason;
}

TEST(ScannerPruneTest, NoPruneOptionDisablesTheStage) {
  scanner::ScanOptions O;
  O.Prune = false;
  scanner::Scanner S(O);
  scanner::ScanResult R =
      S.scanSource("function add(a, b) { return a + b; }\n"
                   "module.exports = add;\n");
  EXPECT_EQ(R.PrunedQueries, 0u);
  EXPECT_TRUE(R.PruneReason.empty());
  EXPECT_FALSE(R.PruneSkippedImport);
}

TEST(ScannerPruneTest, PruneCountersAreRecorded) {
  bool Prev = obs::setCountersEnabled(true);
  obs::CounterSnapshot Before = obs::snapshotCounters();
  scanner::Scanner S{scanner::ScanOptions{}};
  S.scanSource("function add(a, b) { return a + b; }\nmodule.exports = add;\n");
  obs::CounterSnapshot Delta =
      obs::counterDelta(Before, obs::snapshotCounters());
  EXPECT_EQ(Delta["prune.queries_skipped"], 4u);
  EXPECT_EQ(Delta["prune.imports_skipped"], 1u);
  EXPECT_GE(Delta["summaries.computed"], 2u); // add + toplevel
  obs::setCountersEnabled(Prev);
}

//===----------------------------------------------------------------------===//
// Lint pass
//===----------------------------------------------------------------------===//

TEST(CallGraphLintTest, CleanSourceProducesNoFindings) {
  auto Program = normalize("function even(n) { return n ? odd(n - 1) : 1; }\n"
                           "function odd(n) { return n ? even(n - 1) : 0; }\n"
                           "var cp = require('child_process');\n"
                           "function run(c) { if (even(3)) cp.exec(c); }\n"
                           "module.exports = run;\n");
  analysis::BuildResult Build = analysis::buildMDG(*Program);
  lint::PassManager PM;
  PM.addPass(lint::createCallGraphPass());
  lint::LintContext Ctx;
  Ctx.Program = Program.get();
  Ctx.Build = &Build;
  lint::LintResult LR = PM.run(Ctx);
  EXPECT_EQ(LR.errorCount(), 0u) << LR.renderText();
}

TEST(CallGraphLintTest, StandardPipelineIncludesCallGraphPass) {
  auto Program = normalize("function f(x) { return f(x); }\n"
                           "module.exports = f;\n");
  analysis::BuildResult Build = analysis::buildMDG(*Program);
  lint::LintContext Ctx;
  Ctx.Program = Program.get();
  Ctx.Build = &Build;
  lint::LintResult LR = lint::PassManager::standard().run(Ctx);
  EXPECT_EQ(LR.errorCount(), 0u) << LR.renderText();
}

//===----------------------------------------------------------------------===//
// Detection neutrality — the acceptance bar: pruning must never change
// the confirmed report set, in either backend.
//===----------------------------------------------------------------------===//

namespace {

std::string scanReports(const std::vector<scanner::SourceFile> &Files,
                        bool Prune, scanner::QueryBackend Backend) {
  scanner::ScanOptions O;
  O.Prune = Prune;
  O.Backend = Backend;
  scanner::Scanner S(O);
  return scanner::reportsToJSON(S.scanPackage(Files).Reports);
}

void expectNeutral(const std::string &Name,
                   const std::vector<scanner::SourceFile> &Files) {
  for (scanner::QueryBackend B :
       {scanner::QueryBackend::GraphDB, scanner::QueryBackend::Native}) {
    std::string With = scanReports(Files, true, B);
    std::string Without = scanReports(Files, false, B);
    EXPECT_EQ(With, Without)
        << Name << " ("
        << (B == scanner::QueryBackend::GraphDB ? "graphdb" : "native")
        << " backend): pruning changed the report set";
  }
}

} // namespace

#ifdef GJS_EXAMPLES_JS_DIR
TEST(NeutralityTest, ExamplesScanIdenticallyWithAndWithoutPruning) {
  namespace fs = std::filesystem;
  size_t Seen = 0;
  for (const fs::directory_entry &E :
       fs::directory_iterator(GJS_EXAMPLES_JS_DIR)) {
    if (E.path().extension() != ".js")
      continue;
    std::ifstream In(E.path());
    std::ostringstream SS;
    SS << In.rdbuf();
    expectNeutral(E.path().filename().string(),
                  {{E.path().string(), SS.str()}});
    ++Seen;
  }
  EXPECT_GE(Seen, 3u);
}
#endif

TEST(NeutralityTest, WorkloadCorpusScansIdenticallyWithAndWithoutPruning) {
  // A mixed corpus covering every class, complexity tier, and variant the
  // generator produces, plus the benign/safe-sink/dynamic-require shapes
  // whose pruning matters most.
  std::vector<workload::Package> Corpus =
      workload::makeDataset(1234, {3, 3, 3, 3});
  workload::PackageGenerator Gen(99);
  Corpus.push_back(Gen.benign(10));
  Corpus.push_back(Gen.benignWithSafeSinks(10));
  Corpus.push_back(Gen.dynamicRequire(10));
  for (queries::VulnType T :
       {queries::VulnType::CommandInjection, queries::VulnType::CodeInjection,
        queries::VulnType::PathTraversal,
        queries::VulnType::PrototypePollution})
    Corpus.push_back(Gen.vulnerable(T, workload::Complexity::Recursive,
                                    workload::VariantKind::Sanitized));

  for (const workload::Package &P : Corpus)
    expectNeutral(P.Name, P.Files);
}

TEST(NeutralityTest, PruningKeepsAnnotatedVulnerabilitiesDetected) {
  // Sanity on top of neutrality: with pruning on, a known-vulnerable
  // package still yields its annotated report.
  workload::PackageGenerator Gen(7);
  workload::Package P =
      Gen.vulnerable(queries::VulnType::CommandInjection,
                     workload::Complexity::Wrapped,
                     workload::VariantKind::Plain);
  scanner::Scanner S{scanner::ScanOptions{}};
  scanner::ScanResult R = S.scanPackage(P.Files);
  bool Found = false;
  for (const queries::VulnReport &Rep : R.Reports)
    for (const workload::Annotation &A : P.Annotations)
      Found |= Rep.Type == A.Type && Rep.SinkLoc.Line == A.SinkLine;
  EXPECT_TRUE(Found) << "pruning lost the annotated finding";
}
