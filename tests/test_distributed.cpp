//===- tests/test_distributed.cpp - Distributed draining tests -------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The crash-only distributed draining surface: CRC32+length journal
// framing and torn-tail recovery, the shared work ledger (O_EXCL claims,
// lease stealing, fencing tokens, heartbeats), poison-package quarantine,
// the deterministic merge, runSharedBatch end to end, the overloaded
// client retry path, and chaos CLI round trips — concurrent supervisors
// SIGKILLed mid-drain with exactly-once accounting against a
// single-supervisor baseline.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"
#include "driver/ScanService.h"
#include "driver/WorkLedger.h"
#include "obs/Counters.h"
#include "support/JSON.h"
#include "support/Subprocess.h"
#include "workload/Packages.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gjs;

namespace {

const char *VulnSource =
    "var cp = require('child_process');\n"
    "function run(cmd, cb) {\n"
    "  var prefixed = 'git ' + cmd;\n"
    "  cp.exec(prefixed, cb);\n"
    "}\n"
    "module.exports = run;\n";

const char *CleanSource =
    "function add(a, b) { return a + b; }\n"
    "module.exports = add;\n";

std::string tempDir(const std::string &Tag) {
  std::string Dir =
      testing::TempDir() + "dist_" + Tag + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::vector<std::string> readLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

driver::BatchInput makeInput(const std::string &Name, const char *Source) {
  return {Name, {{Name + ".js", Source}}};
}

std::vector<driver::BatchInput> fourInputs() {
  return {makeInput("alpha", VulnSource), makeInput("bravo", CleanSource),
          makeInput("charlie", VulnSource), makeInput("delta", CleanSource)};
}

std::vector<std::string> namesOf(const std::vector<driver::BatchInput> &In) {
  std::vector<std::string> N;
  for (const driver::BatchInput &I : In)
    N.push_back(I.Name);
  return N;
}

/// Unframes (when framed) and parses one journal line.
json::Object parseAnyLine(const std::string &Line) {
  std::string Payload;
  EXPECT_TRUE(driver::unframeJournalLine(Line, Payload)) << Line;
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Payload, V, &Error)) << Error << "\n" << Payload;
  EXPECT_TRUE(V.isObject());
  return V.asObject();
}

/// Package -> status from a (possibly framed) journal.
std::map<std::string, std::string> statusByPackage(const std::string &Path) {
  std::map<std::string, std::string> Out;
  for (const std::string &Line : readLines(Path)) {
    json::Object O = parseAnyLine(Line);
    if (O.count("package") && O.count("status"))
      Out[O.at("package").asString()] = O.at("status").asString();
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Journal framing (CRC32 + length)
//===----------------------------------------------------------------------===//

TEST(JournalFramingTest, RoundTrip) {
  std::string Payload = "{\"package\":\"p\",\"status\":\"ok\"}";
  std::string Framed = driver::frameJournalLine(Payload);
  ASSERT_FALSE(Framed.empty());
  EXPECT_EQ(Framed[0], '@');
  std::string Back;
  bool WasFramed = false;
  ASSERT_TRUE(driver::unframeJournalLine(Framed, Back, &WasFramed));
  EXPECT_TRUE(WasFramed);
  EXPECT_EQ(Back, Payload);
}

TEST(JournalFramingTest, BareLinePassesThrough) {
  std::string Back;
  bool WasFramed = true;
  ASSERT_TRUE(driver::unframeJournalLine("{\"a\":1}", Back, &WasFramed));
  EXPECT_FALSE(WasFramed);
  EXPECT_EQ(Back, "{\"a\":1}");
}

TEST(JournalFramingTest, TornTailRejected) {
  std::string Framed = driver::frameJournalLine("{\"package\":\"torn\"}");
  // A SIGKILL mid-write leaves a prefix: every strict prefix must fail the
  // length/CRC check rather than parse as a shorter record.
  for (size_t Cut = 1; Cut < Framed.size(); ++Cut) {
    std::string Back;
    EXPECT_FALSE(
        driver::unframeJournalLine(Framed.substr(0, Cut), Back))
        << "prefix of length " << Cut << " accepted";
  }
}

TEST(JournalFramingTest, CorruptPayloadRejected) {
  std::string Framed = driver::frameJournalLine("{\"package\":\"x\"}");
  std::string Flipped = Framed;
  Flipped[Framed.size() - 2] ^= 0x20; // Flip a payload byte; length intact.
  std::string Back;
  EXPECT_FALSE(driver::unframeJournalLine(Flipped, Back));
}

TEST(JournalFramingTest, CorruptCrcRejected) {
  std::string Framed = driver::frameJournalLine("{\"package\":\"x\"}");
  size_t Colon = Framed.find(':');
  ASSERT_NE(Colon, std::string::npos);
  std::string Flipped = Framed;
  Flipped[Colon + 1] = Flipped[Colon + 1] == '0' ? '1' : '0';
  std::string Back;
  EXPECT_FALSE(driver::unframeJournalLine(Flipped, Back));
}

TEST(JournalFramingTest, MalformedHeadersRejected) {
  std::string Back;
  EXPECT_FALSE(driver::unframeJournalLine("@", Back));
  EXPECT_FALSE(driver::unframeJournalLine("@12", Back));
  EXPECT_FALSE(driver::unframeJournalLine("@12:deadbeef", Back));
  EXPECT_FALSE(driver::unframeJournalLine("@x:deadbeef:{}", Back));
  EXPECT_FALSE(driver::unframeJournalLine("@2:nothex8:{}", Back));
}

TEST(JournalFramingTest, Crc32KnownVector) {
  // The IEEE polynomial's classic check value.
  EXPECT_EQ(driver::journalCrc32("123456789"), 0xcbf43926u);
}

//===----------------------------------------------------------------------===//
// Torn/corrupt journal hardening (resume skip-and-log)
//===----------------------------------------------------------------------===//

TEST(JournalHardeningTest, JournaledPackagesSkipsAndCountsBadLines) {
  std::string Dir = tempDir("harden");
  std::string Path = Dir + "/j.jsonl";
  {
    std::ofstream Out(Path);
    Out << "{\"package\":\"good-bare\",\"status\":\"ok\"}\n";
    Out << driver::frameJournalLine(
               "{\"package\":\"good-framed\",\"status\":\"ok\"}")
        << '\n';
    // Torn framed tail (truncated), then plain garbage.
    std::string Torn = driver::frameJournalLine(
        "{\"package\":\"torn\",\"status\":\"ok\"}");
    Out << Torn.substr(0, Torn.size() / 2) << '\n';
    Out << "%% not a journal line %%\n";
  }
  size_t Dropped = 0;
  std::set<std::string> Done = driver::BatchDriver::journaledPackages(
      Path, &Dropped);
  EXPECT_EQ(Done, (std::set<std::string>{"good-bare", "good-framed"}));
  EXPECT_EQ(Dropped, 2u);
  std::filesystem::remove_all(Dir);
}

TEST(JournalHardeningTest, ResumeAcrossCorruptCrcMidFile) {
  std::string Dir = tempDir("resume_crc");
  std::string Path = Dir + "/j.jsonl";
  std::vector<driver::BatchInput> Inputs = fourInputs();

  driver::BatchOptions O;
  O.JournalPath = Path;
  O.FramedJournal = true;
  O.Quiet = true;
  driver::BatchSummary S1 = driver::BatchDriver(O).run(Inputs);
  EXPECT_EQ(S1.Scanned, 4u);

  // Corrupt the CRC of the second line: the record for that package is now
  // torn, everything around it intact.
  std::vector<std::string> Lines = readLines(Path);
  ASSERT_EQ(Lines.size(), 4u);
  std::string Victim = parseAnyLine(Lines[1]).at("package").asString();
  size_t Colon = Lines[1].find(':');
  Lines[1][Colon + 1] = Lines[1][Colon + 1] == 'f' ? '0' : 'f';
  {
    std::ofstream Out(Path);
    for (const std::string &L : Lines)
      Out << L << '\n';
  }

  // Resume re-scans exactly the corrupted package and skips the rest.
  driver::BatchOptions O2 = O;
  O2.Resume = true;
  driver::BatchSummary S2 = driver::BatchDriver(O2).run(Inputs);
  EXPECT_EQ(S2.Scanned, 1u);
  EXPECT_EQ(S2.SkippedResumed, 3u);
  ASSERT_EQ(S2.Outcomes.size(), 4u);
  for (const driver::BatchOutcome &Out : S2.Outcomes)
    if (!Out.Skipped) {
      EXPECT_EQ(Out.Package, Victim);
    }

  // The journal now resolves every package again (appended rescan line).
  size_t Dropped = 0;
  std::set<std::string> Done =
      driver::BatchDriver::journaledPackages(Path, &Dropped);
  EXPECT_EQ(Done.size(), 4u);
  EXPECT_EQ(Dropped, 1u);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// WorkLedger: claims, steals, fencing, quarantine, merge
//===----------------------------------------------------------------------===//

namespace {

driver::LedgerOptions ledgerOpts(const std::string &Dir, size_t ShardSize,
                                 double ExpirySeconds,
                                 const std::string &Id) {
  driver::LedgerOptions L;
  L.Dir = Dir;
  L.ShardSize = ShardSize;
  L.LeaseExpirySeconds = ExpirySeconds;
  L.SupervisorId = Id;
  return L;
}

} // namespace

TEST(WorkLedgerTest, InitShardsAndClaimUntilExhausted) {
  std::string Dir = tempDir("claims");
  driver::WorkLedger L(ledgerOpts(Dir, 2, 10.0, "sup-a"));
  std::string Error;
  ASSERT_TRUE(L.init({"a", "b", "c", "d", "e"}, &Error)) << Error;
  ASSERT_EQ(L.numShards(), 3u); // 2 + 2 + 1.
  EXPECT_EQ(L.shards()[2], (std::vector<size_t>{4}));

  std::set<size_t> Claimed;
  for (int I = 0; I < 3; ++I) {
    std::optional<driver::LeaseInfo> Lease = L.claimFresh();
    ASSERT_TRUE(Lease.has_value());
    EXPECT_EQ(Lease->Token, 1u);
    EXPECT_EQ(Lease->Holder, "sup-a");
    Claimed.insert(Lease->Shard);
  }
  EXPECT_EQ(Claimed.size(), 3u);
  EXPECT_FALSE(L.claimFresh().has_value());
  EXPECT_EQ(L.claims(), 3u);
  std::filesystem::remove_all(Dir);
}

TEST(WorkLedgerTest, JoinerVerifiesManifest) {
  std::string Dir = tempDir("manifest");
  driver::WorkLedger A(ledgerOpts(Dir, 2, 10.0, "sup-a"));
  std::string Error;
  ASSERT_TRUE(A.init({"a", "b"}, &Error)) << Error;

  driver::WorkLedger B(ledgerOpts(Dir, 2, 10.0, "sup-b"));
  EXPECT_TRUE(B.init({"a", "b"}, &Error)) << Error;

  driver::WorkLedger C(ledgerOpts(Dir, 2, 10.0, "sup-c"));
  EXPECT_FALSE(C.init({"a", "zzz"}, &Error));
  EXPECT_FALSE(Error.empty());
  std::filesystem::remove_all(Dir);
}

TEST(WorkLedgerTest, StealOnlyAfterExpiryAndFencingWins) {
  std::string Dir = tempDir("steal");
  driver::WorkLedger A(ledgerOpts(Dir, 1, 0.2, "sup-a"));
  driver::WorkLedger B(ledgerOpts(Dir, 1, 0.2, "sup-b"));
  std::string Error;
  ASSERT_TRUE(A.init({"only"}, &Error)) << Error;
  ASSERT_TRUE(B.init({"only"}, &Error)) << Error;

  std::optional<driver::LeaseInfo> Held = A.claimFresh();
  ASSERT_TRUE(Held.has_value());

  // Fresh lease: nothing to steal yet, and the claim is gone.
  EXPECT_FALSE(B.claimFresh().has_value());
  EXPECT_FALSE(B.stealStale().has_value());

  // Heartbeats keep the lease alive past its nominal expiry.
  ::usleep(120 * 1000);
  ASSERT_TRUE(A.heartbeat(*Held));
  ::usleep(120 * 1000);
  EXPECT_FALSE(B.stealStale().has_value());

  // Silence past the expiry: the steal succeeds with the next token and
  // the original holder is fenced out of its own heartbeat.
  ::usleep(300 * 1000);
  std::optional<driver::LeaseInfo> Stolen = B.stealStale();
  ASSERT_TRUE(Stolen.has_value());
  EXPECT_EQ(Stolen->Shard, Held->Shard);
  EXPECT_EQ(Stolen->Token, 2u);
  EXPECT_EQ(Stolen->Holder, "sup-b");
  EXPECT_EQ(B.steals(), 1u);
  EXPECT_FALSE(A.heartbeat(*Held)) << "fenced holder must lose heartbeat";

  std::optional<driver::LeaseInfo> Owner = B.owner(Stolen->Shard);
  ASSERT_TRUE(Owner.has_value());
  EXPECT_EQ(Owner->Holder, "sup-b");
  EXPECT_EQ(Owner->Token, 2u);
  std::filesystem::remove_all(Dir);
}

TEST(WorkLedgerTest, MergeIsDeterministicInputOrder) {
  std::string Dir = tempDir("merge");
  driver::WorkLedger L(ledgerOpts(Dir, 2, 10.0, "sup-a"));
  std::string Error;
  ASSERT_TRUE(L.init({"w", "x", "y", "z"}, &Error)) << Error;

  // Drain shard 1 before shard 0: the merge must still come out in corpus
  // input order, not completion order.
  for (int I = 0; I < 2; ++I) {
    std::optional<driver::LeaseInfo> Lease = L.claimFresh();
    ASSERT_TRUE(Lease.has_value());
    for (size_t Idx : L.shards()[Lease->Shard]) {
      const std::string &Pkg = L.packageNames()[Idx];
      L.appendRecord(*Lease, "{\"package\":\"" + Pkg +
                                 "\",\"status\":\"ok\"}");
    }
    L.markDone(*Lease, L.shards()[Lease->Shard].size());
  }
  ASSERT_TRUE(L.allDone());
  ASSERT_TRUE(L.merge(&Error)) << Error;

  std::vector<std::string> Lines = readLines(L.corpusJournalPath());
  ASSERT_EQ(Lines.size(), 4u);
  std::vector<std::string> Order;
  for (const std::string &Line : Lines)
    Order.push_back(parseAnyLine(Line).at("package").asString());
  EXPECT_EQ(Order, (std::vector<std::string>{"w", "x", "y", "z"}));

  // Re-merge is idempotent.
  ASSERT_TRUE(L.merge(&Error)) << Error;
  EXPECT_EQ(readLines(L.corpusJournalPath()).size(), 4u);
  std::filesystem::remove_all(Dir);
}

TEST(WorkLedgerTest, LateStaleWriteLosesToFencedThief) {
  std::string Dir = tempDir("fence_write");
  driver::WorkLedger A(ledgerOpts(Dir, 1, 0.15, "sup-a"));
  driver::WorkLedger B(ledgerOpts(Dir, 1, 0.15, "sup-b"));
  std::string Error;
  ASSERT_TRUE(A.init({"contested"}, &Error)) << Error;
  ASSERT_TRUE(B.init({"contested"}, &Error)) << Error;

  std::optional<driver::LeaseInfo> Old = A.claimFresh();
  ASSERT_TRUE(Old.has_value());
  ::usleep(250 * 1000); // A goes silent; its lease expires.
  std::optional<driver::LeaseInfo> New = B.stealStale();
  ASSERT_TRUE(New.has_value());

  // The thief scans and records; then the stale holder's late write for
  // the same package lands in its own (token-1) journal.
  B.appendRecord(*New, "{\"package\":\"contested\",\"status\":\"ok\","
                       "\"writer\":\"thief\"}");
  A.appendRecord(*Old, "{\"package\":\"contested\",\"status\":\"failed\","
                       "\"writer\":\"stale\"}");
  B.markDone(*New, 1);

  // Exactly one record survives the merge, and the fencing token wins:
  // the higher-token (thief) record is the record of record.
  ASSERT_TRUE(B.merge(&Error)) << Error;
  std::vector<std::string> Lines = readLines(B.corpusJournalPath());
  ASSERT_EQ(Lines.size(), 1u);
  json::Object O = parseAnyLine(Lines[0]);
  EXPECT_EQ(O.at("writer").asString(), "thief");
  EXPECT_EQ(O.at("status").asString(), "ok");
  std::filesystem::remove_all(Dir);
}

TEST(WorkLedgerTest, StrikeAccountingAndKillClassTerminals) {
  std::string Dir = tempDir("strikes");
  driver::WorkLedger L(ledgerOpts(Dir, 4, 10.0, "sup-a"));
  std::string Error;
  ASSERT_TRUE(L.init({"poison", "flaky", "fine"}, &Error)) << Error;
  std::optional<driver::LeaseInfo> Lease = L.claimFresh();
  ASSERT_TRUE(Lease.has_value());

  // poison: two starts, no terminal -> 2 strikes, no terminal record.
  L.appendRecord(*Lease, "{\"start\":\"poison\",\"token\":1}");
  L.appendRecord(*Lease, "{\"start\":\"poison\",\"token\":1}");
  // flaky: start + kill-class terminal -> terminal exists, strike kept.
  L.appendRecord(*Lease, "{\"start\":\"flaky\",\"token\":1}");
  L.appendRecord(*Lease,
                 "{\"package\":\"flaky\",\"status\":\"failed\","
                 "\"errors\":[{\"kind\":\"crashed\",\"phase\":\"build\"}]}");
  // fine: start + clean terminal -> no strike.
  L.appendRecord(*Lease, "{\"start\":\"fine\",\"token\":1}");
  L.appendRecord(*Lease, "{\"package\":\"fine\",\"status\":\"ok\"}");

  driver::WorkLedger::ShardHistory H = L.readShardHistory(Lease->Shard);
  EXPECT_EQ(H.Strikes.count("poison"), 1u);
  EXPECT_EQ(H.Strikes.at("poison"), 2u);
  EXPECT_EQ(H.Strikes.count("flaky"), 1u);
  EXPECT_EQ(H.Strikes.at("flaky"), 1u);
  EXPECT_EQ(H.Strikes.count("fine"), 0u);
  EXPECT_EQ(H.Terminals.count("poison"), 0u);
  EXPECT_EQ(H.Terminals.count("flaky"), 1u);
  EXPECT_EQ(H.Terminals.count("fine"), 1u);
  std::filesystem::remove_all(Dir);
}

TEST(WorkLedgerTest, QuarantinePersistsAcrossRestart) {
  std::string Dir = tempDir("quarantine");
  {
    driver::WorkLedger L(ledgerOpts(Dir, 1, 10.0, "sup-a"));
    std::string Error;
    ASSERT_TRUE(L.init({"bad pkg/name", "ok"}, &Error)) << Error;
    EXPECT_FALSE(L.isQuarantined("bad pkg/name"));
    L.quarantine("bad pkg/name", 3);
    EXPECT_TRUE(L.isQuarantined("bad pkg/name"));
  }
  // A brand-new supervisor process (fresh WorkLedger instance) sees the
  // marker: quarantine is corpus-global and restart-proof.
  driver::WorkLedger L2(ledgerOpts(Dir, 1, 10.0, "sup-b"));
  std::string Error;
  ASSERT_TRUE(L2.init({"bad pkg/name", "ok"}, &Error)) << Error;
  EXPECT_TRUE(L2.isQuarantined("bad pkg/name"));
  EXPECT_FALSE(L2.isQuarantined("ok"));
  EXPECT_EQ(L2.quarantinedPackages().size(), 1u);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// runSharedBatch (library, in-process)
//===----------------------------------------------------------------------===//

TEST(SharedBatchTest, SingleSupervisorDrainsAndMerges) {
  std::string Dir = tempDir("shared_single");
  driver::SharedBatchOptions SO;
  SO.Ledger = ledgerOpts(Dir, 2, 10.0, "solo");
  SO.Batch.Quiet = true;
  std::vector<driver::BatchInput> Inputs = fourInputs();

  driver::SharedBatchResult R = driver::runSharedBatch(SO, Inputs);
  EXPECT_EQ(R.Summary.Scanned, 4u);
  EXPECT_EQ(R.Summary.Failed, 0u);
  EXPECT_EQ(R.Summary.LedgerClaims, 2u);
  EXPECT_EQ(R.Summary.LedgerSteals, 0u);
  EXPECT_EQ(R.ShardsDrained, 2u);
  ASSERT_TRUE(R.Merged);

  std::map<std::string, std::string> Status = statusByPackage(R.MergedJournal);
  ASSERT_EQ(Status.size(), 4u);
  for (const std::string &Name : namesOf(Inputs))
    EXPECT_EQ(Status[Name], "ok") << Name;

  // A second supervisor joining a converged corpus scans nothing and the
  // re-merge stays put.
  driver::SharedBatchOptions SO2 = SO;
  SO2.Ledger.SupervisorId = "late";
  driver::SharedBatchResult R2 = driver::runSharedBatch(SO2, Inputs);
  EXPECT_EQ(R2.Summary.Scanned, 0u);
  EXPECT_TRUE(R2.Merged);
  EXPECT_EQ(readLines(R2.MergedJournal).size(), 4u);
  std::filesystem::remove_all(Dir);
}

TEST(SharedBatchTest, CopiesMergedJournalToBatchJournalPath) {
  std::string Dir = tempDir("shared_copy");
  driver::SharedBatchOptions SO;
  SO.Ledger = ledgerOpts(Dir, 4, 10.0, "solo");
  SO.Batch.Quiet = true;
  SO.Batch.JournalPath = Dir + "/copy.jsonl";
  driver::SharedBatchResult R = driver::runSharedBatch(SO, fourInputs());
  ASSERT_TRUE(R.Merged);
  EXPECT_EQ(readLines(Dir + "/copy.jsonl").size(), 4u);
  std::filesystem::remove_all(Dir);
}

TEST(SharedBatchTest, QuarantinesPackageWithStrikeHistory) {
  std::string Dir = tempDir("shared_quar");
  std::vector<driver::BatchInput> Inputs = fourInputs();
  std::vector<std::string> Names = namesOf(Inputs);

  // Forge the aftermath of three supervisors that each started "charlie"
  // and died: three start records across three tokens, no terminal, and
  // an expired lease.
  {
    driver::WorkLedger L(ledgerOpts(Dir, 4, 0.1, "ghost"));
    std::string Error;
    ASSERT_TRUE(L.init(Names, &Error)) << Error;
    std::optional<driver::LeaseInfo> Lease = L.claimFresh();
    ASSERT_TRUE(Lease.has_value());
    for (int I = 0; I < 3; ++I)
      L.appendRecord(*Lease,
                     "{\"start\":\"charlie\",\"token\":1,"
                     "\"supervisor\":\"ghost\"}");
    ::usleep(200 * 1000); // Let the ghost's lease expire.
  }

  driver::SharedBatchOptions SO;
  SO.Ledger = ledgerOpts(Dir, 4, 0.1, "medic");
  SO.Ledger.QuarantineAfter = 3;
  SO.Batch.Quiet = true;
  driver::SharedBatchResult R = driver::runSharedBatch(SO, Inputs);

  EXPECT_EQ(R.Summary.Quarantined, 1u);
  EXPECT_EQ(R.Summary.Scanned, 3u);
  EXPECT_GE(R.Summary.LedgerSteals, 1u);
  ASSERT_TRUE(R.Merged);
  std::map<std::string, std::string> Status = statusByPackage(R.MergedJournal);
  EXPECT_EQ(Status["charlie"], "quarantined");
  EXPECT_EQ(Status["alpha"], "ok");

  driver::WorkLedger L(ledgerOpts(Dir, 4, 0.1, "check"));
  std::string Error;
  ASSERT_TRUE(L.init(Names, &Error)) << Error;
  EXPECT_TRUE(L.isQuarantined("charlie"));
  std::filesystem::remove_all(Dir);
}

TEST(SharedBatchTest, InitMismatchFailsEveryPackage) {
  std::string Dir = tempDir("shared_mismatch");
  driver::SharedBatchOptions SO;
  SO.Ledger = ledgerOpts(Dir, 2, 10.0, "a");
  SO.Batch.Quiet = true;
  driver::SharedBatchResult R1 = driver::runSharedBatch(SO, fourInputs());
  ASSERT_TRUE(R1.Merged);

  // Same ledger dir, different corpus: refuse outright, fail everything.
  std::vector<driver::BatchInput> Other = {makeInput("zeta", CleanSource)};
  driver::SharedBatchResult R2 = driver::runSharedBatch(SO, Other);
  EXPECT_FALSE(R2.Merged);
  EXPECT_EQ(R2.Summary.Failed, 1u);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Overloaded-rejection client retry
//===----------------------------------------------------------------------===//

namespace {

/// A minimal Unix-socket server that answers every request line with a
/// canned response: the admission-rejection half of the daemon, without
/// the daemon.
class CannedServer {
public:
  CannedServer(const std::string &Path, std::string Response,
               size_t OverloadedUntil)
      : Response(std::move(Response)), OverloadedUntil(OverloadedUntil) {
    ::unlink(Path.c_str());
    FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    ::bind(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
    ::listen(FD, 8);
    Server = std::thread([this] { loop(); });
  }

  ~CannedServer() {
    Stop = true;
    Server.join();
    ::close(FD);
  }

  size_t requests() const { return Requests.load(); }

private:
  void loop() {
    while (!Stop) {
      pollfd P{FD, POLLIN, 0};
      if (::poll(&P, 1, 20) <= 0)
        continue;
      int C = ::accept(FD, nullptr, nullptr);
      if (C < 0)
        continue;
      char Buf[512];
      ssize_t N = ::recv(C, Buf, sizeof(Buf), 0);
      (void)N;
      size_t Seq = ++Requests;
      std::string Out =
          (Seq <= OverloadedUntil
               ? std::string("{\"ok\":false,\"error\":\"overloaded\"}")
               : Response) +
          "\n";
      ::send(C, Out.data(), Out.size(), MSG_NOSIGNAL);
      ::close(C);
    }
  }

  int FD = -1;
  std::string Response;
  size_t OverloadedUntil;
  std::atomic<bool> Stop{false};
  std::atomic<size_t> Requests{0};
  std::thread Server;
};

} // namespace

TEST(ClientRetryTest, RetriesOverloadedUntilAdmitted) {
  std::string Dir = tempDir("retry_ok");
  std::string Sock = Dir + "/s.sock";
  CannedServer Server(Sock, "{\"ok\":true,\"op\":\"status\"}", 2);

  std::string Response, Error;
  size_t Retries = 0;
  ASSERT_TRUE(driver::ScanService::requestWithRetry(
      Sock, "{\"op\":\"status\"}", Response, &Error, /*RetryBudgetMs=*/5000,
      &Retries));
  EXPECT_NE(Response.find("\"ok\":true"), std::string::npos) << Response;
  EXPECT_EQ(Retries, 2u);
  EXPECT_EQ(Server.requests(), 3u);
  std::filesystem::remove_all(Dir);
}

TEST(ClientRetryTest, ZeroBudgetIsSingleAttempt) {
  std::string Dir = tempDir("retry_zero");
  std::string Sock = Dir + "/s.sock";
  CannedServer Server(Sock, "{\"ok\":true}", 1000000);

  std::string Response, Error;
  size_t Retries = 7;
  ASSERT_TRUE(driver::ScanService::requestWithRetry(
      Sock, "{\"op\":\"status\"}", Response, &Error, /*RetryBudgetMs=*/0,
      &Retries));
  EXPECT_NE(Response.find("overloaded"), std::string::npos);
  EXPECT_EQ(Retries, 0u);
  EXPECT_EQ(Server.requests(), 1u);
  std::filesystem::remove_all(Dir);
}

TEST(ClientRetryTest, BudgetExhaustionSurfacesOverloaded) {
  std::string Dir = tempDir("retry_budget");
  std::string Sock = Dir + "/s.sock";
  CannedServer Server(Sock, "{\"ok\":true}", 1000000);

  std::string Response, Error;
  size_t Retries = 0;
  ASSERT_TRUE(driver::ScanService::requestWithRetry(
      Sock, "{\"op\":\"status\"}", Response, &Error, /*RetryBudgetMs=*/150,
      &Retries));
  EXPECT_NE(Response.find("overloaded"), std::string::npos);
  EXPECT_GE(Retries, 1u);
  EXPECT_GE(Server.requests(), 2u);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Chaos CLI round trips (concurrent supervisors, SIGKILL, exactly-once)
//===----------------------------------------------------------------------===//

#if defined(GRAPHJS_BIN)

namespace {

/// Writes a corpus of generated single-file packages to a fresh temp dir.
std::string writeCorpus(size_t N, const std::string &Tag) {
  std::string Dir = tempDir("corpus_" + Tag);
  workload::PackageGenerator Gen(11);
  for (size_t I = 0; I < N; ++I) {
    workload::Package P =
        I % 2 ? Gen.benign(0)
              : Gen.vulnerable(queries::VulnType::CommandInjection,
                               workload::Complexity::Wrapped,
                               workload::VariantKind::Plain, 0);
    char Name[64];
    std::snprintf(Name, sizeof(Name), "%s/pkg%03zu.js", Dir.c_str(), I);
    std::ofstream Out(Name);
    Out << P.Files[0].Contents;
  }
  return Dir;
}

std::set<std::string> corpusNames(size_t N) {
  std::set<std::string> Names;
  for (size_t I = 0; I < N; ++I) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "pkg%03zu.js", I);
    Names.insert(Name);
  }
  return Names;
}

/// Package name -> serialized "reports" array from a (maybe framed)
/// journal.
std::map<std::string, std::string>
reportsByPackage(const std::string &Path) {
  std::map<std::string, std::string> Out;
  for (const std::string &Line : readLines(Path)) {
    json::Object O = parseAnyLine(Line);
    if (O.count("package") && O.count("reports"))
      Out[O.at("package").asString()] = O.at("reports").str();
  }
  return Out;
}

int runCLI(const std::string &Cmd) { return std::system(Cmd.c_str()); }

/// Counts terminal records per package across every shard journal of a
/// ledger — the raw exactly-once ground truth before the merge dedups.
std::map<std::string, size_t>
terminalsAcrossShardJournals(const std::string &LedgerDir) {
  std::map<std::string, size_t> Count;
  for (const auto &E :
       std::filesystem::directory_iterator(LedgerDir + "/shards")) {
    if (E.path().extension() != ".jsonl")
      continue;
    for (const std::string &Line : readLines(E.path().string())) {
      std::string Payload;
      json::Value V;
      if (!driver::unframeJournalLine(Line, Payload) ||
          !json::parse(Payload, V) || !V.isObject())
        continue;
      const json::Object &O = V.asObject();
      if (O.count("package"))
        ++Count[O.at("package").asString()];
    }
  }
  return Count;
}

} // namespace

TEST(DistributedCLITest, ChaosKilledSupervisorIsStolenExactlyOnce) {
  size_t N = 6;
  std::string Dir = writeCorpus(N, "chaos");
  std::string Ledger = Dir + "/ledger";
  std::string Bin = GRAPHJS_BIN;
  std::string Flags =
      " --shared " + Ledger + " --shard-size 2 --lease-expiry-ms 300 ";

  // Supervisor 1 SIGKILLs itself right after its second start record:
  // one package completed, one started-but-torn, the rest unclaimed.
  int RC1 = runCLI(Bin + " batch --quiet" + Flags +
                   "--chaos-kill-after 1 --supervisor-id victim " + Dir +
                   " > /dev/null 2>&1");
  EXPECT_NE(RC1, 0);
  EXPECT_FALSE(std::filesystem::exists(Ledger + "/corpus.jsonl"));

  // Supervisor 2 steals the orphaned lease after expiry and finishes.
  int RC2 = runCLI(Bin + " batch --quiet" + Flags +
                   "--supervisor-id medic " + Dir + " > /dev/null 2>&1");
  EXPECT_EQ(RC2, 0);

  // Exactly one terminal per package: in the merged corpus AND across the
  // raw per-token shard journals (no lost, no duplicated work).
  std::map<std::string, std::string> Status =
      statusByPackage(Ledger + "/corpus.jsonl");
  ASSERT_EQ(Status.size(), N);
  std::set<std::string> Seen;
  for (const auto &[Pkg, St] : Status) {
    EXPECT_EQ(St, "ok") << Pkg;
    Seen.insert(Pkg);
  }
  EXPECT_EQ(Seen, corpusNames(N));
  for (const auto &[Pkg, Cnt] : terminalsAcrossShardJournals(Ledger))
    EXPECT_EQ(Cnt, 1u) << Pkg;

  // A steal actually happened: some shard reached token 2.
  bool SawToken2 = false;
  for (const auto &E :
       std::filesystem::directory_iterator(Ledger + "/shards"))
    SawToken2 |= E.path().filename().string().find(".tok.2") !=
                 std::string::npos;
  EXPECT_TRUE(SawToken2);

  // Detection parity with a plain single-supervisor run: identical report
  // sets per package (timing fields differ; findings must not).
  std::string Baseline = Dir + "/baseline.jsonl";
  ASSERT_EQ(runCLI(Bin + " batch --quiet --journal " + Baseline + " " + Dir +
                   " > /dev/null 2>&1"),
            0);
  std::map<std::string, std::string> Shared =
      reportsByPackage(Ledger + "/corpus.jsonl");
  std::map<std::string, std::string> Solo = reportsByPackage(Baseline);
  ASSERT_EQ(Shared.size(), Solo.size());
  for (const auto &[Pkg, Reports] : Solo)
    EXPECT_EQ(Shared[Pkg], Reports) << Pkg;
  std::filesystem::remove_all(Dir);
}

TEST(DistributedCLITest, ConcurrentSupervisorsShareOneLedger) {
  size_t N = 8;
  std::string Dir = writeCorpus(N, "concurrent");
  std::string Ledger = Dir + "/ledger";
  std::string Bin = GRAPHJS_BIN;

  // Two supervisors race the same ledger concurrently; a third joins a
  // moment later. All must exit clean.
  std::vector<Subprocess> Sups(3);
  std::string Error;
  for (size_t I = 0; I < Sups.size(); ++I) {
    ASSERT_TRUE(Subprocess::spawn(
        {Bin, "batch", "--quiet", "--shared", Ledger, "--shard-size", "1",
         "--lease-expiry-ms", "2000", "--supervisor-id",
         "sup" + std::to_string(I), Dir},
        Sups[I], &Error, /*CaptureStdout=*/true))
        << Error;
  }
  for (Subprocess &P : Sups) {
    P.readAll();
    WaitStatus St = P.wait();
    EXPECT_TRUE(St.exitedWith(0)) << St.str();
  }

  // Exactly-once accounting across every supervisor's shard journals, and
  // a complete merged corpus.
  std::map<std::string, size_t> Terminals =
      terminalsAcrossShardJournals(Ledger);
  ASSERT_EQ(Terminals.size(), N);
  for (const auto &[Pkg, Cnt] : Terminals)
    EXPECT_EQ(Cnt, 1u) << Pkg;
  std::map<std::string, std::string> Status =
      statusByPackage(Ledger + "/corpus.jsonl");
  ASSERT_EQ(Status.size(), N);
  for (const auto &[Pkg, St] : Status)
    EXPECT_EQ(St, "ok") << Pkg;
  std::filesystem::remove_all(Dir);
}

TEST(DistributedCLITest, CrashLoopingPackageLandsInQuarantine) {
  size_t N = 4;
  std::string Dir = writeCorpus(N, "poison");
  std::string Ledger = Dir + "/ledger";
  std::string Bin = GRAPHJS_BIN;
  std::string Cmd = Bin + " batch --quiet --shared " + Ledger +
                    " --shard-size 4 --lease-expiry-ms 200"
                    " --quarantine-after 2"
                    " --inject-fault build:crash@pkg001.js " +
                    Dir + " > /dev/null 2>&1";

  // Each supervisor run crashes on the poison package (in-process fault
  // == supervisor death); restarts accumulate strikes until the breaker
  // trips and a run converges.
  int RC = -1;
  int Runs = 0;
  for (; Runs < 8 && RC != 0; ++Runs)
    RC = runCLI(Cmd);
  ASSERT_EQ(RC, 0) << "no run converged after " << Runs << " attempts";
  EXPECT_GE(Runs, 3); // >= QuarantineAfter crashes + the converging run.

  std::map<std::string, std::string> Status =
      statusByPackage(Ledger + "/corpus.jsonl");
  ASSERT_EQ(Status.size(), N);
  EXPECT_EQ(Status["pkg001.js"], "quarantined");
  EXPECT_EQ(Status["pkg000.js"], "ok");

  // The marker is on disk and a fresh supervisor never rescans the
  // package: an immediate re-run converges with zero scans.
  EXPECT_FALSE(std::filesystem::is_empty(Ledger + "/quarantine"));
  EXPECT_EQ(runCLI(Cmd), 0);
  std::filesystem::remove_all(Dir);
}

TEST(DistributedCLITest, SharedOnlyFlagsRequireShared) {
  std::string Dir = writeCorpus(1, "flags");
  std::string Bin = GRAPHJS_BIN;
  EXPECT_NE(runCLI(Bin + " batch --quiet --shard-size 2 " + Dir +
                   " > /dev/null 2>&1"),
            0);
  EXPECT_NE(runCLI(Bin + " batch --quiet --chaos-kill-after 1 " + Dir +
                   " > /dev/null 2>&1"),
            0);
  std::filesystem::remove_all(Dir);
}

#endif // GRAPHJS_BIN
