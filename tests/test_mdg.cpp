//===- tests/test_mdg.cpp - Unit tests for the MDG data structure ---------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "mdg/AbstractStore.h"
#include "mdg/MDG.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::mdg;

namespace {

NodeId obj(Graph &G, const std::string &Label, uint32_t Site = 0) {
  return G.addNode(NodeKind::Object, Site, SourceLocation(), Label);
}

} // namespace

TEST(MDGTest, AddNodesAndEdges) {
  Graph G;
  NodeId A = obj(G, "a"), B = obj(G, "b");
  EXPECT_TRUE(G.addEdge(A, B, EdgeKind::Dep));
  EXPECT_FALSE(G.addEdge(A, B, EdgeKind::Dep)) << "duplicate edge";
  EXPECT_EQ(G.numNodes(), 2u);
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_TRUE(G.hasEdge(A, B, EdgeKind::Dep));
  EXPECT_FALSE(G.hasEdge(B, A, EdgeKind::Dep));
}

TEST(MDGTest, EdgesWithDifferentPropsAreDistinct) {
  Graph G;
  StringInterner SI;
  NodeId A = obj(G, "a"), B = obj(G, "b");
  EXPECT_TRUE(G.addEdge(A, B, EdgeKind::Prop, SI.intern("x")));
  EXPECT_TRUE(G.addEdge(A, B, EdgeKind::Prop, SI.intern("y")));
  EXPECT_EQ(G.numEdges(), 2u);
}

TEST(MDGTest, RevisionBumpsOnGrowth) {
  Graph G;
  uint64_t R0 = G.revision();
  NodeId A = obj(G, "a");
  EXPECT_GT(G.revision(), R0);
  NodeId B = obj(G, "b");
  uint64_t R1 = G.revision();
  G.addEdge(A, B, EdgeKind::Dep);
  EXPECT_GT(G.revision(), R1);
  uint64_t R2 = G.revision();
  G.addEdge(A, B, EdgeKind::Dep); // No growth.
  EXPECT_EQ(G.revision(), R2);
}

TEST(MDGTest, VersionChainWalk) {
  Graph G;
  StringInterner SI;
  NodeId O1 = obj(G, "o1"), O2 = obj(G, "o2"), O3 = obj(G, "o3");
  G.addEdge(O1, O2, EdgeKind::Version, SI.intern("a"));
  G.addEdge(O2, O3, EdgeKind::VersionUnknown);
  auto Chain = G.versionAncestors(O3);
  EXPECT_EQ(Chain.size(), 3u);
  auto Oldest = G.oldestVersions(O3);
  ASSERT_EQ(Oldest.size(), 1u);
  EXPECT_EQ(Oldest[0], O1);
  EXPECT_TRUE(G.isVersionAncestor(O1, O3));
  EXPECT_TRUE(G.isVersionAncestor(O2, O3));
  EXPECT_FALSE(G.isVersionAncestor(O3, O1));
}

TEST(MDGTest, VersionCycleTerminates) {
  Graph G;
  StringInterner SI;
  NodeId O1 = obj(G, "o1"), O2 = obj(G, "o2");
  G.addEdge(O1, O2, EdgeKind::Version, SI.intern("p"));
  G.addEdge(O2, O1, EdgeKind::Version, SI.intern("q")); // Cycle (§5.5).
  auto Chain = G.versionAncestors(O2);
  EXPECT_EQ(Chain.size(), 2u);
  EXPECT_TRUE(G.isVersionAncestor(O1, O2));
  EXPECT_TRUE(G.isVersionAncestor(O2, O1));
}

TEST(MDGTest, ResolvePropertyNearestVersionWins) {
  // o1 --V(a)--> o2; o1 has P(a)->x, o2 has P(a)->y. Resolving `a` on o2
  // must return only y (the newer definition shadows the older one).
  Graph G;
  StringInterner SI;
  Symbol A = SI.intern("a");
  NodeId O1 = obj(G, "o1"), O2 = obj(G, "o2");
  NodeId X = obj(G, "x"), Y = obj(G, "y");
  G.addEdge(O1, O2, EdgeKind::Version, A);
  G.addEdge(O1, X, EdgeKind::Prop, A);
  G.addEdge(O2, Y, EdgeKind::Prop, A);
  auto R = G.resolveProperty(O2, A);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0], Y);
}

TEST(MDGTest, ResolvePropertyFigure1Line7) {
  // The paper's Fig. 1 line 7: chain o5 -V(*)-> o6 -V(cmd)-> o7;
  // o5 has P(commit)->o9 (lazily added) and o6 has P(*)->o4.
  // Resolving `commit` on o7 returns {o9, o4}.
  Graph G;
  StringInterner SI;
  Symbol Commit = SI.intern("commit");
  Symbol Cmd = SI.intern("cmd");
  NodeId O5 = obj(G, "o5"), O6 = obj(G, "o6"), O7 = obj(G, "o7");
  NodeId O4 = obj(G, "o4"), O9 = obj(G, "o9");
  G.addEdge(O5, O6, EdgeKind::VersionUnknown);
  G.addEdge(O6, O7, EdgeKind::Version, Cmd);
  G.addEdge(O6, O4, EdgeKind::PropUnknown);
  G.addEdge(O5, O9, EdgeKind::Prop, Commit);
  auto R = G.resolveProperty(O7, Commit);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_NE(std::find(R.begin(), R.end(), O9), R.end());
  EXPECT_NE(std::find(R.begin(), R.end(), O4), R.end());
}

TEST(MDGTest, ResolvePropertyIgnoresOlderUnknown) {
  // P(*) on a version OLDER than the newest P(p) owner cannot overwrite p.
  Graph G;
  StringInterner SI;
  Symbol A = SI.intern("a");
  NodeId O1 = obj(G, "o1"), O2 = obj(G, "o2");
  NodeId Star = obj(G, "star"), X = obj(G, "x");
  G.addEdge(O1, O2, EdgeKind::Version, A);
  G.addEdge(O1, Star, EdgeKind::PropUnknown);
  G.addEdge(O2, X, EdgeKind::Prop, A);
  auto R = G.resolveProperty(O2, A);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0], X);
}

TEST(MDGTest, ResolveUnknownPropertyCollectsEverything) {
  Graph G;
  StringInterner SI;
  Symbol A = SI.intern("a");
  NodeId O1 = obj(G, "o1"), O2 = obj(G, "o2");
  NodeId X = obj(G, "x"), Star = obj(G, "star");
  G.addEdge(O1, O2, EdgeKind::Version, A);
  G.addEdge(O1, X, EdgeKind::Prop, A);
  G.addEdge(O2, Star, EdgeKind::PropUnknown);
  auto R = G.resolveUnknownProperty(O2);
  EXPECT_EQ(R.size(), 2u);
}

TEST(MDGTest, LatticeLeq) {
  Graph G1, G2;
  NodeId A1 = obj(G1, "a"), B1 = obj(G1, "b");
  NodeId A2 = obj(G2, "a"), B2 = obj(G2, "b");
  (void)A2;
  (void)B2;
  G2.addEdge(A1, B1, EdgeKind::Dep);
  EXPECT_TRUE(Graph::leq(G1, G2));
  EXPECT_FALSE(Graph::leq(G2, G1));
  G1.addEdge(A1, B1, EdgeKind::Dep);
  EXPECT_TRUE(Graph::leq(G1, G2));
  EXPECT_TRUE(Graph::leq(G2, G1));
}

TEST(MDGTest, DumpMentionsEdgeLabels) {
  Graph G;
  StringInterner SI;
  NodeId A = obj(G, "cfg"), B = obj(G, "opt");
  G.addEdge(A, B, EdgeKind::Prop, SI.intern("cmd"));
  std::string D = G.dump(SI);
  EXPECT_NE(D.find("P(cmd)"), std::string::npos);
  EXPECT_NE(D.find("cfg"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Abstract store
//===----------------------------------------------------------------------===//

TEST(AbstractStoreTest, SetAndGet) {
  AbstractStore S;
  S.set("x", 3);
  EXPECT_EQ(S.get("x").size(), 1u);
  EXPECT_TRUE(S.get("x").count(3));
  EXPECT_TRUE(S.get("y").empty());
  EXPECT_FALSE(S.contains("y"));
}

TEST(AbstractStoreTest, StrongUpdateReplaces) {
  AbstractStore S;
  S.set("x", 1);
  S.set("x", 2);
  EXPECT_EQ(S.get("x").size(), 1u);
  EXPECT_TRUE(S.get("x").count(2));
}

TEST(AbstractStoreTest, JoinAccumulates) {
  AbstractStore S;
  S.set("x", 1);
  EXPECT_TRUE(S.join("x", {2}));
  EXPECT_FALSE(S.join("x", {2}));
  EXPECT_EQ(S.get("x").size(), 2u);
}

TEST(AbstractStoreTest, JoinWithAndLeq) {
  AbstractStore S1, S2;
  S1.set("x", 1);
  S2.set("x", 2);
  S2.set("y", 3);
  EXPECT_FALSE(AbstractStore::leq(S2, S1));
  AbstractStore Joined = S1;
  EXPECT_TRUE(Joined.joinWith(S2));
  EXPECT_TRUE(AbstractStore::leq(S1, Joined));
  EXPECT_TRUE(AbstractStore::leq(S2, Joined));
  EXPECT_EQ(Joined.get("x").size(), 2u);
}

TEST(AbstractStoreTest, ReplaceEverywhereRewritesVersions) {
  AbstractStore S;
  S.set("a", {1, 5});
  S.set("b", 5);
  S.replaceEverywhere(5, 9);
  EXPECT_TRUE(S.get("a").count(9));
  EXPECT_FALSE(S.get("a").count(5));
  EXPECT_TRUE(S.get("b").count(9));
}

TEST(AbstractStoreTest, Equality) {
  AbstractStore S1, S2;
  S1.set("x", 1);
  S2.set("x", 1);
  EXPECT_TRUE(S1 == S2);
  S2.join("x", {2});
  EXPECT_FALSE(S1 == S2);
}

TEST(MDGTest, DotExportRendersStructure) {
  Graph G;
  StringInterner SI;
  NodeId A = obj(G, "config");
  NodeId B = obj(G, "options");
  NodeId C = G.addNode(NodeKind::Call, 7, SourceLocation(6, 3), "exec");
  G.node(A).IsTaintSource = true;
  G.addEdge(A, B, EdgeKind::PropUnknown);
  G.addEdge(B, C, EdgeKind::Dep);
  G.addEdge(A, B, EdgeKind::Version, SI.intern("cmd"));
  std::string Dot = G.toDot(SI);
  EXPECT_NE(Dot.find("digraph MDG"), std::string::npos);
  EXPECT_NE(Dot.find("shape=box"), std::string::npos);
  EXPECT_NE(Dot.find("fillcolor=lightcoral"), std::string::npos);
  EXPECT_NE(Dot.find("P(*)"), std::string::npos);
  EXPECT_NE(Dot.find("V(cmd)"), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
}

TEST(MDGTest, CollapseVersionsMergesChains) {
  // o1 -V(a)-> o2 -V(b)-> o3; o1 has P(x)->v; o2 has P(a)->w.
  Graph G;
  StringInterner SI;
  Symbol A = SI.intern("a"), B = SI.intern("b"), X = SI.intern("x");
  NodeId O1 = obj(G, "o1"), O2 = obj(G, "o2"), O3 = obj(G, "o3");
  NodeId V = obj(G, "v"), W = obj(G, "w");
  G.node(O1).IsTaintSource = true;
  G.addEdge(O1, O2, EdgeKind::Version, A);
  G.addEdge(O2, O3, EdgeKind::Version, B);
  G.addEdge(O1, V, EdgeKind::Prop, X);
  G.addEdge(O2, W, EdgeKind::Prop, A);

  Graph C = G.collapseVersions();
  // o1/o2/o3 merge into one node; v and w survive: 3 nodes total.
  EXPECT_EQ(C.numNodes(), 3u);
  // No version edges remain.
  for (NodeId N : C.nodeIds())
    for (const Edge &E : C.out(N)) {
      EXPECT_NE(E.Kind, EdgeKind::Version);
      EXPECT_NE(E.Kind, EdgeKind::VersionUnknown);
    }
  // The merged object keeps both properties and the taint flag.
  bool Tainted = false;
  size_t PropEdges = 0;
  for (NodeId N : C.nodeIds()) {
    Tainted |= C.node(N).IsTaintSource;
    for (const Edge &E : C.out(N))
      PropEdges += E.Kind == EdgeKind::Prop;
  }
  EXPECT_TRUE(Tainted);
  EXPECT_EQ(PropEdges, 2u);
}

TEST(MDGTest, CollapseShadowsOverwrittenProperties) {
  // o1 -V(a)-> o2, both define P(a): only o2's survives.
  Graph G;
  StringInterner SI;
  Symbol A = SI.intern("a");
  NodeId O1 = obj(G, "o1"), O2 = obj(G, "o2");
  NodeId Old = obj(G, "old"), New = obj(G, "new");
  G.addEdge(O1, O2, EdgeKind::Version, A);
  G.addEdge(O1, Old, EdgeKind::Prop, A);
  G.addEdge(O2, New, EdgeKind::Prop, A);
  Graph C = G.collapseVersions();
  size_t PropEdges = 0;
  for (NodeId N : C.nodeIds())
    for (const Edge &E : C.out(N))
      PropEdges += E.Kind == EdgeKind::Prop;
  EXPECT_EQ(PropEdges, 1u);
}

TEST(MDGTest, CollapseHandlesVersionCycles) {
  Graph G;
  StringInterner SI;
  NodeId O1 = obj(G, "o1"), O2 = obj(G, "o2");
  G.addEdge(O1, O2, EdgeKind::VersionUnknown);
  G.addEdge(O2, O1, EdgeKind::VersionUnknown);
  G.addEdge(O1, obj(G, "x"), EdgeKind::PropUnknown);
  Graph C = G.collapseVersions();
  EXPECT_EQ(C.numNodes(), 2u);
}
