//===- tests/test_integration.cpp - Whole-pipeline integration tests ------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Drives the full Graph.js pipeline and the ODGen baseline over generated
// dataset packages, checking the cross-cutting invariants the evaluation
// depends on: both tools run on every generated shape without crashing,
// annotated Plain flows are detected, the two query backends agree on
// dataset packages, and the harness produces sane outcomes.
//
//===----------------------------------------------------------------------===//

#include "eval/Harness.h"
#include "workload/Datasets.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace gjs;
using namespace gjs::eval;
using namespace gjs::workload;
using queries::VulnType;

namespace {

std::vector<Package> smallDataset(uint64_t Seed) {
  DatasetCounts Counts{6, 6, 6, 6};
  return makeDataset(Seed, Counts);
}

} // namespace

TEST(IntegrationTest, HarnessRunsBothToolsOnDataset) {
  auto Packages = smallDataset(101);
  HarnessOptions O = HarnessOptions::defaults();
  auto GJ = runGraphJS(Packages, O.Scan);
  auto OD = runODGen(Packages, O.ODGen);
  ASSERT_EQ(GJ.size(), Packages.size());
  ASSERT_EQ(OD.size(), Packages.size());
  for (size_t I = 0; I < Packages.size(); ++I) {
    EXPECT_TRUE(GJ[I].GraphBuilt) << Packages[I].Name;
    EXPECT_GE(GJ[I].Seconds, 0.0);
  }
}

TEST(IntegrationTest, PlainDirectFlowsAlwaysDetected) {
  PackageGenerator Gen(55);
  HarnessOptions O = HarnessOptions::defaults();
  for (int T = 0; T < 4; ++T) {
    Package P = Gen.vulnerable(static_cast<VulnType>(T),
                               Complexity::Direct, VariantKind::Plain, 50);
    auto GJ = runGraphJS({P}, O.Scan);
    ScorePolicy Policy;
    ClassStats S =
        scorePackage(P, GJ[0].Reports, static_cast<VulnType>(T), Policy);
    EXPECT_EQ(S.TP, 1u) << "Graph.js must find the Plain Direct "
                        << queries::cweOf(static_cast<VulnType>(T));
  }
}

TEST(IntegrationTest, GraphJSRecallBeatsODGenOnPollution) {
  DatasetCounts Counts{0, 0, 0, 24};
  auto Packages = makeDataset(77, Counts);
  HarnessOptions O = HarnessOptions::defaults();
  auto GJ = runGraphJS(Packages, O.Scan);
  auto OD = runODGen(Packages, O.ODGen);
  ScorePolicy GJPol, ODPol;
  ODPol.TypeOnlyMatch = true;
  ClassStats SG =
      scoreDataset(Packages, GJ, VulnType::PrototypePollution, GJPol);
  ClassStats SO =
      scoreDataset(Packages, OD, VulnType::PrototypePollution, ODPol);
  EXPECT_GT(SG.TP, SO.TP)
      << "the paper's headline: 3x more pollution detections";
}

TEST(IntegrationTest, SanitizedDecoysSplitTheTools) {
  // Graph.js's UntaintedPath suppresses the sanitized decoy; the
  // baseline's unversioned ODG over-taints and reports it.
  PackageGenerator Gen(88);
  Package P = Gen.vulnerable(VulnType::CommandInjection, Complexity::Direct,
                             VariantKind::Sanitized, 0);
  HarnessOptions O = HarnessOptions::defaults();
  auto GJ = runGraphJS({P}, O.Scan);
  auto OD = runODGen({P}, O.ODGen);
  // Main annotated sink: both find it.
  ScorePolicy GJPol, ODPol;
  ODPol.TypeOnlyMatch = true;
  ClassStats SG =
      scorePackage(P, GJ[0].Reports, VulnType::CommandInjection, GJPol);
  EXPECT_EQ(SG.TP, 1u);
  // The decoy: Graph.js reports exactly the one annotated sink; the
  // baseline reports the decoy too.
  EXPECT_EQ(GJ[0].Reports.size(), 1u)
      << "Graph.js must not report the overwritten decoy";
  EXPECT_GE(OD[0].Reports.size(), 2u)
      << "the unversioned baseline over-taints";
}

TEST(IntegrationTest, BackendsAgreeAcrossDatasetSample) {
  auto Packages = smallDataset(202);
  scanner::ScanOptions NativeOpts;
  NativeOpts.Backend = scanner::QueryBackend::Native;
  scanner::ScanOptions DbOpts;
  for (const Package &P : Packages) {
    scanner::Scanner DB(DbOpts), Native(NativeOpts);
    auto RDb = DB.scanPackage(P.Files);
    auto RNat = Native.scanPackage(P.Files);
    if (RDb.timedOut() || RNat.timedOut())
      continue;
    std::sort(RDb.Reports.begin(), RDb.Reports.end());
    std::sort(RNat.Reports.begin(), RNat.Reports.end());
    EXPECT_EQ(RDb.Reports, RNat.Reports)
        << "backend divergence on " << P.Name;
  }
}

TEST(IntegrationTest, CollectedScanFindsPlantedVulnsAndLoaderFPs) {
  auto Packages = makeCollected(33, 120);
  HarnessOptions O = HarnessOptions::defaults();
  auto GJ = runGraphJS(Packages, O.Scan);
  size_t Exploitable = 0, LoaderReports = 0;
  for (size_t I = 0; I < Packages.size(); ++I) {
    const Package &P = Packages[I];
    bool IsLoader = P.Name.rfind("loader-", 0) == 0;
    for (const queries::VulnReport &R : GJ[I].Reports) {
      if (IsLoader && R.Type == VulnType::CodeInjection)
        ++LoaderReports;
      for (const Annotation &A : P.Annotations)
        Exploitable += A.Type == R.Type && A.SinkLine == R.SinkLoc.Line;
    }
  }
  EXPECT_GT(Exploitable, 0u) << "planted vulnerabilities must be found";
  EXPECT_GT(LoaderReports, 0u)
      << "dynamic require must trigger CWE-94 reports (the §5.3 FP class)";
}

TEST(IntegrationTest, TimeoutsDegradeButKeepPartialResults) {
  // A Deep pollution package under a tiny Graph.js budget: the scan times
  // out, is attributed to graph construction, and rides the degradation
  // ladder — but unlike the all-or-nothing baseline, whatever the partial
  // MDG yields is kept (§5.2 graceful degradation).
  PackageGenerator Gen(44);
  Package P = Gen.vulnerable(VulnType::PrototypePollution, Complexity::Deep,
                             VariantKind::Plain, 0);
  scanner::ScanOptions O;
  O.Builder.WorkBudget = 5;
  auto GJ = runGraphJS({P}, O);
  EXPECT_TRUE(GJ[0].TimedOut);
  EXPECT_TRUE(GJ[0].BuildTimedOut);
  EXPECT_FALSE(GJ[0].QueryTimedOut);
  EXPECT_GT(GJ[0].Degradation, 0u) << "the ladder must have retried";
}

TEST(IntegrationTest, MultiVulnPackageYieldsMultipleFindings) {
  // VulcaN-style: one package, several annotated vulnerabilities (here
  // via the ExtraSink shape — the second sink is real but unannotated).
  PackageGenerator Gen(66);
  Package P = Gen.vulnerable(VulnType::CommandInjection, Complexity::Direct,
                             VariantKind::ExtraSink, 0);
  HarnessOptions O = HarnessOptions::defaults();
  auto GJ = runGraphJS({P}, O.Scan);
  EXPECT_GE(GJ[0].Reports.size(), 2u);
  ScorePolicy Policy;
  ClassStats S =
      scorePackage(P, GJ[0].Reports, VulnType::CommandInjection, Policy);
  EXPECT_EQ(S.TP, 1u);
  EXPECT_EQ(S.FP, 1u);
  EXPECT_EQ(S.TFP, 0u) << "the extra sink is real: FP but not TFP";
}

//===----------------------------------------------------------------------===//
// Cross-file package linking
//===----------------------------------------------------------------------===//

TEST(PackageLinkingTest, TaintFlowsThroughLocalRequire) {
  // index.js passes tainted data into helpers.js, where the sink sits.
  scanner::Scanner S;
  scanner::ScanResult R = S.scanPackage(
      {{"index.js", "var h = require('./helpers');\n"
                    "function deploy(branch, cb) {\n"
                    "  return h.runGit('push ' + branch, cb);\n"
                    "}\n"
                    "module.exports = deploy;\n"},
       {"helpers.js", "var cp = require('child_process');\n"
                      "function runGit(args, cb) {\n"
                      "  cp.exec('git ' + args, cb);\n"
                      "}\n"
                      "exports.runGit = runGit;\n"}});
  EXPECT_FALSE(R.parseFailed());
  // The sink is at helpers.js line 3 — reachable both from deploy's
  // tainted parameter (via the linked require) and from runGit's own
  // exported parameter.
  bool Found = false;
  for (const queries::VulnReport &Rep : R.Reports)
    Found |= Rep.Type == VulnType::CommandInjection && Rep.SinkLoc.Line == 3;
  EXPECT_TRUE(Found);
}

TEST(PackageLinkingTest, UnexportedHelperOnlyReachableViaLink) {
  // The vulnerable module exports nothing by itself; only the main
  // module's tainted entry reaches the sink. Without linking, no tool
  // would see a tainted path into doExec.
  scanner::Scanner S;
  scanner::ScanResult R = S.scanPackage(
      {{"main.js", "var inner = require('./inner');\n"
                   "function run(c, cb) { inner.go('x ' + c, cb); }\n"
                   "module.exports = run;\n"},
       {"inner.js", "var cp = require('child_process');\n"
                    "function helper(c, cb) { cp.exec(c, cb); }\n"
                    "function go(c, cb) { helper(c, cb); }\n"
                    "exports.go = go;\n"}});
  bool Found = false;
  for (const queries::VulnReport &Rep : R.Reports)
    Found |= Rep.Type == VulnType::CommandInjection && Rep.SinkLoc.Line == 2;
  EXPECT_TRUE(Found);
}

TEST(PackageLinkingTest, RequireOrderDoesNotMatter) {
  // helpers listed first or last: the two-pass linking converges.
  std::vector<scanner::SourceFile> Files = {
      {"index.js", "var h = require('./util');\n"
                   "function f(e) { return h.evalIt('(' + e + ')'); }\n"
                   "module.exports = f;\n"},
      {"util.js", "function evalIt(code) { return eval(code); }\n"
                  "exports.evalIt = evalIt;\n"}};
  for (int Swap = 0; Swap < 2; ++Swap) {
    scanner::Scanner S;
    scanner::ScanResult R = S.scanPackage(Files);
    bool Found = false;
    for (const queries::VulnReport &Rep : R.Reports)
      Found |= Rep.Type == VulnType::CodeInjection;
    EXPECT_TRUE(Found) << "order " << Swap;
    std::swap(Files[0], Files[1]);
  }
}

TEST(PackageLinkingTest, CrossFilePrototypePollution) {
  scanner::Scanner S;
  scanner::ScanResult R = S.scanPackage(
      {{"api.js", "var m = require('./merge');\n"
                  "function set(o, k1, k2, v) { return m.setPath(o, k1, k2, v); }\n"
                  "module.exports = set;\n"},
       {"merge.js", "function setPath(obj, key, subkey, value) {\n"
                    "  var child = obj[key];\n"
                    "  child[subkey] = value;\n"
                    "  return obj;\n"
                    "}\n"
                    "exports.setPath = setPath;\n"}});
  bool Found = false;
  for (const queries::VulnReport &Rep : R.Reports)
    Found |= Rep.Type == VulnType::PrototypePollution;
  EXPECT_TRUE(Found);
}

TEST(PackageLinkingTest, SharedGraphCountsOnce) {
  scanner::Scanner S;
  scanner::ScanResult R = S.scanPackage(
      {{"a.js", "exports.one = function(x) { return x; };\n"},
       {"b.js", "var a = require('./a');\n"
                "exports.two = function(y) { return a.one(y); };\n"}});
  EXPECT_GT(R.MDGNodes, 0u);
  EXPECT_FALSE(R.timedOut());
}

TEST(PackageLinkingTest, GeneratedMultiFilePackagesDetected) {
  // The generator emits some Wrapped CWE-78 packages split across
  // index.js + lib.js; linked analysis must still find them.
  PackageGenerator Gen(123);
  bool SawMultiFile = false;
  HarnessOptions O = HarnessOptions::defaults();
  for (int I = 0; I < 12; ++I) {
    Package P = Gen.vulnerable(VulnType::CommandInjection,
                               Complexity::Wrapped, VariantKind::Plain, 20);
    if (P.Files.size() < 2)
      continue;
    SawMultiFile = true;
    auto GJ = runGraphJS({P}, O.Scan);
    ScorePolicy Policy;
    ClassStats S =
        scorePackage(P, GJ[0].Reports, VulnType::CommandInjection, Policy);
    EXPECT_EQ(S.TP, 1u) << P.Files[0].Contents;
  }
  EXPECT_TRUE(SawMultiFile);
}
