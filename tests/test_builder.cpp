//===- tests/test_builder.cpp - Tests for the abstract MDG builder --------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// These tests follow the paper's worked examples: the Figure 1 motivating
// example and the §5.5 set-value case study.
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::analysis;
using namespace gjs::mdg;

namespace {

BuildResult buildFrom(const std::string &Source, BuilderOptions O = {}) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return buildMDG(*Prog, O);
}

/// Finds the first call node whose CalleeName matches.
NodeId findCall(const BuildResult &R, const std::string &Name) {
  for (NodeId C : R.CallNodes)
    if (R.Graph.node(C).CallName == Name)
      return C;
  return InvalidNode;
}

/// Simple D/P/V-reachability (ignores the untainted-path exclusion; the
/// query engine implements the full TaintPath).
bool reaches(const Graph &G, NodeId From, NodeId To) {
  std::vector<bool> Seen(G.numNodes(), false);
  std::vector<NodeId> Work{From};
  Seen[From] = true;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    if (N == To)
      return true;
    for (const Edge &E : G.out(N))
      if (!Seen[E.To]) {
        Seen[E.To] = true;
        Work.push_back(E.To);
      }
  }
  return false;
}

const char *Figure1Source =
    "const { exec } = require('child_process');\n"
    "function git_reset(config, op, branch_name, url) {\n"
    "  var options = config[op];\n"
    "  options[branch_name] = url;\n"
    "  options.cmd = 'git reset';\n"
    "  exec(options.cmd + ' HEAD~' + options.commit);\n"
    "}\n"
    "module.exports = git_reset;\n";

} // namespace

TEST(MDGBuilderTest, ParamsAreTaintSources) {
  BuildResult R = buildFrom("function f(a, b) { return a; }\n"
                            "module.exports = f;\n");
  EXPECT_EQ(R.TaintSources.size(), 2u);
  for (NodeId N : R.TaintSources)
    EXPECT_TRUE(R.Graph.node(N).IsTaintSource);
}

TEST(MDGBuilderTest, BinOpCreatesDependencies) {
  BuildResult R = buildFrom("function f(a, b) { var c = a + b; g(c); }\n"
                            "module.exports = f;\n");
  NodeId Call = findCall(R, "g");
  ASSERT_NE(Call, InvalidNode);
  // Both params flow into the call through c.
  for (NodeId Src : R.TaintSources)
    EXPECT_TRUE(reaches(R.Graph, Src, Call));
}

TEST(MDGBuilderTest, LiteralsCarryNoTaint) {
  BuildResult R = buildFrom("function f(a) { var c = 'safe'; g(c); }\n"
                            "module.exports = f;\n");
  NodeId Call = findCall(R, "g");
  ASSERT_NE(Call, InvalidNode);
  ASSERT_EQ(R.TaintSources.size(), 1u);
  EXPECT_FALSE(reaches(R.Graph, R.TaintSources[0], Call));
}

TEST(MDGBuilderTest, StaticPropertyFlow) {
  BuildResult R = buildFrom("function f(a) { var o = {}; o.x = a; g(o.x); }\n"
                            "module.exports = f;\n");
  NodeId Call = findCall(R, "g");
  ASSERT_NE(Call, InvalidNode);
  EXPECT_TRUE(reaches(R.Graph, R.TaintSources[0], Call));
}

TEST(MDGBuilderTest, OverwrittenPropertyStillReachesViaVersionEdges) {
  // Raw reachability sees a path o->o' even after overwrite; it is the
  // query's UntaintedPath exclusion that rules it out. Here we only check
  // the direct value read resolves to the NEW value node.
  BuildResult R = buildFrom(
      "function f(a) { var o = {}; o.x = a; o.x = 'safe'; g(o.x); }\n"
      "module.exports = f;\n");
  NodeId Call = findCall(R, "g");
  ASSERT_NE(Call, InvalidNode);
  // The call's argument locations must NOT include the tainted param.
  const Node &CN = R.Graph.node(Call);
  ASSERT_EQ(CN.Args.size(), 1u);
  for (NodeId ArgLoc : CN.Args[0])
    EXPECT_NE(ArgLoc, R.TaintSources[0]);
}

TEST(MDGBuilderTest, Figure1GraphShape) {
  BuildResult R = buildFrom(Figure1Source);
  ASSERT_EQ(R.TaintSources.size(), 4u);

  NodeId Exec = findCall(R, "exec");
  ASSERT_NE(Exec, InvalidNode);
  EXPECT_EQ(R.Graph.node(Exec).CallPath, "child_process.exec");

  // config, op, branch_name, url all reach the exec call.
  for (NodeId Src : R.TaintSources)
    EXPECT_TRUE(reaches(R.Graph, Src, Exec))
        << "source " << R.Graph.node(Src).Label << " must reach exec";

  // The graph contains at least one unknown-property edge (config[op]),
  // one unknown version edge (options[branch_name] = url), and one known
  // version edge (options.cmd = ...).
  bool HasPropUnknown = false, HasVersionUnknown = false, HasVersion = false;
  for (NodeId N : R.Graph.nodeIds())
    for (const Edge &E : R.Graph.out(N)) {
      HasPropUnknown |= E.Kind == EdgeKind::PropUnknown;
      HasVersionUnknown |= E.Kind == EdgeKind::VersionUnknown;
      HasVersion |= E.Kind == EdgeKind::Version;
    }
  EXPECT_TRUE(HasPropUnknown);
  EXPECT_TRUE(HasVersionUnknown);
  EXPECT_TRUE(HasVersion);
}

TEST(MDGBuilderTest, Figure1CommitLookupFindsTwoVersions) {
  // After line 6, `options.commit` resolves to both the lazily-created
  // commit property on the oldest version AND the dynamic write's value
  // (Fig. 1c: o9 and o4 both flow into f1).
  BuildResult R = buildFrom(Figure1Source);
  NodeId Exec = findCall(R, "exec");
  ASSERT_NE(Exec, InvalidNode);
  // url (4th param) must reach the exec call *through* the dynamic
  // property write + commit lookup chain.
  NodeId Url = InvalidNode;
  for (NodeId S : R.TaintSources)
    if (R.Graph.node(S).Label == "url")
      Url = S;
  ASSERT_NE(Url, InvalidNode);
  EXPECT_TRUE(reaches(R.Graph, Url, Exec));
}

TEST(MDGBuilderTest, WhileLoopReachesFixpoint) {
  BuildResult R = buildFrom(
      "function f(a) {\n"
      "  var o = {};\n"
      "  var i = 0;\n"
      "  while (i < 10) { o[a] = a; i = i + 1; }\n"
      "  return o;\n"
      "}\n"
      "module.exports = f;\n");
  EXPECT_FALSE(R.TimedOut);
  // Allocation-site abstraction: the loop must not blow up the graph.
  EXPECT_LT(R.Graph.numNodes(), 40u);
}

TEST(MDGBuilderTest, SetValueCaseStudyTerminatesAndStaysSmall) {
  // §5.5 / Figure 8: CVE-2021-23440-style nested dynamic updates in a loop.
  BuildResult R = buildFrom(
      "function set_value(target, prop, value) {\n"
      "  const path = prop.split('.');\n"
      "  const len = path.length;\n"
      "  var obj = target;\n"
      "  for (var i = 0; i < len; i++) {\n"
      "    const p = path[i];\n"
      "    if (i === len - 1) {\n"
      "      obj[p] = value;\n"
      "    }\n"
      "    obj = obj[p];\n"
      "  }\n"
      "  return target;\n"
      "}\n"
      "module.exports = set_value;\n");
  EXPECT_FALSE(R.TimedOut);
  EXPECT_LT(R.Graph.numNodes(), 60u) << "object explosion detected";
  // The loop's dynamic update creates a version cycle or re-used version
  // node; all three params reach into the graph.
  EXPECT_EQ(R.TaintSources.size(), 3u);
}

TEST(MDGBuilderTest, InterproceduralFlowThroughHelper) {
  BuildResult R = buildFrom(
      "function helper(x) { return x; }\n"
      "function entry(a) { var v = helper(a); sink(v); }\n"
      "module.exports = entry;\n");
  NodeId Call = findCall(R, "sink");
  ASSERT_NE(Call, InvalidNode);
  NodeId A = InvalidNode;
  for (NodeId S : R.TaintSources)
    if (R.Graph.node(S).Label == "a")
      A = S;
  ASSERT_NE(A, InvalidNode);
  EXPECT_TRUE(reaches(R.Graph, A, Call));
}

TEST(MDGBuilderTest, RecursionTerminates) {
  BuildResult R = buildFrom(
      "function rec(o, k, v) {\n"
      "  if (k) { o[k] = v; rec(o[k], k, v); }\n"
      "  return o;\n"
      "}\n"
      "module.exports = rec;\n");
  EXPECT_FALSE(R.TimedOut);
  EXPECT_LT(R.Graph.numNodes(), 80u);
}

TEST(MDGBuilderTest, UnknownCallReturnDependsOnArgs) {
  BuildResult R = buildFrom(
      "function f(a) { var r = unknown(a); sink(r); }\n"
      "module.exports = f;\n");
  NodeId Sink = findCall(R, "sink");
  ASSERT_NE(Sink, InvalidNode);
  EXPECT_TRUE(reaches(R.Graph, R.TaintSources[0], Sink));
}

TEST(MDGBuilderTest, IfJoinKeepsBothBranches) {
  BuildResult R = buildFrom(
      "function f(a, b, c) {\n"
      "  var x;\n"
      "  if (c) { x = a; } else { x = b; }\n"
      "  sink(x);\n"
      "}\n"
      "module.exports = f;\n");
  NodeId Sink = findCall(R, "sink");
  ASSERT_NE(Sink, InvalidNode);
  NodeId A = InvalidNode, B = InvalidNode;
  for (NodeId S : R.TaintSources) {
    if (R.Graph.node(S).Label == "a")
      A = S;
    if (R.Graph.node(S).Label == "b")
      B = S;
  }
  EXPECT_TRUE(reaches(R.Graph, A, Sink));
  EXPECT_TRUE(reaches(R.Graph, B, Sink));
}

TEST(MDGBuilderTest, WorkBudgetTimesOut) {
  BuilderOptions O;
  O.WorkBudget = 5;
  BuildResult R = buildFrom(
      "function f(a) { var x = a + 1; var y = x + 2; var z = y + 3;\n"
      "  var w = z + 4; var v = w + 5; var u = v + 6; sink(u); }\n"
      "module.exports = f;\n",
      O);
  EXPECT_TRUE(R.TimedOut);
}

TEST(MDGBuilderTest, GraphGrowsLinearlyWithStraightLineCode) {
  // Allocation-site abstraction: N objects -> O(N) nodes.
  std::string Small = "function f(a) {\n", Large = "function f(a) {\n";
  for (int I = 0; I < 10; ++I)
    Small += "  var s" + std::to_string(I) + " = {x: a};\n";
  for (int I = 0; I < 100; ++I)
    Large += "  var s" + std::to_string(I) + " = {x: a};\n";
  Small += "}\nmodule.exports = f;\n";
  Large += "}\nmodule.exports = f;\n";
  BuildResult RS = buildFrom(Small);
  BuildResult RL = buildFrom(Large);
  double Ratio = static_cast<double>(RL.Graph.numNodes()) /
                 static_cast<double>(RS.Graph.numNodes());
  EXPECT_LT(Ratio, 15.0);
  EXPECT_GT(Ratio, 5.0);
}

TEST(MDGBuilderTest, MethodCallBindsThis) {
  BuildResult R = buildFrom(
      "var api = { run: function(c) { sink(c); } };\n"
      "function entry(a) { api.run(a); }\n"
      "module.exports = entry;\n");
  NodeId Sink = findCall(R, "sink");
  ASSERT_NE(Sink, InvalidNode);
  NodeId A = InvalidNode;
  for (NodeId S : R.TaintSources)
    if (R.Graph.node(S).Label == "a")
      A = S;
  ASSERT_NE(A, InvalidNode);
  EXPECT_TRUE(reaches(R.Graph, A, Sink));
}

TEST(MDGBuilderTest, PrototypePollutionPatternShape) {
  // The canonical pollution shape: lookup via dynamic prop, then assign
  // via dynamic prop on the result, with attacker-controlled names/value.
  BuildResult R = buildFrom(
      "function merge(obj, key, key2, value) {\n"
      "  var child = obj[key];\n"
      "  child[key2] = value;\n"
      "}\n"
      "module.exports = merge;\n");
  const Graph &G = R.Graph;
  // Expect a node chain: obj -P(*)-> child ... -V(*)-> child' -P(*)-> value.
  bool FoundLookup = false, FoundAssign = false;
  for (NodeId N : G.nodeIds()) {
    for (const Edge &E : G.out(N)) {
      if (E.Kind == EdgeKind::PropUnknown &&
          G.node(E.From).IsTaintSource)
        FoundLookup = true;
      if (E.Kind == EdgeKind::VersionUnknown)
        FoundAssign = true;
    }
  }
  EXPECT_TRUE(FoundLookup);
  EXPECT_TRUE(FoundAssign);
}
