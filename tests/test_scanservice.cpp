//===- tests/test_scanservice.cpp - graphjs serve daemon tests -------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The long-lived scan service surface: the supervisor<->worker wire
// protocol (length-prefixed frames, incremental reassembly, the
// request/response codec), and the daemon end to end — scan round trips,
// status, bounded admission ("overloaded") with recovery after the queue
// drains, crash attribution with worker re-fork, drain/shutdown, and the
// append-mode journal across daemon restarts.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"
#include "driver/ScanService.h"
#include "driver/WorkerProtocol.h"
#include "obs/Histogram.h"
#include "obs/Trace.h"
#include "support/JSON.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gjs;
using driver::FrameReader;
using driver::ScanService;
using driver::ServiceOptions;
using driver::WorkerRequest;
using driver::WorkerResponse;

namespace {

const char *VulnSource =
    "var cp = require('child_process');\n"
    "function run(cmd, cb) {\n"
    "  var prefixed = 'git ' + cmd;\n"
    "  cp.exec(prefixed, cb);\n"
    "}\n"
    "module.exports = run;\n";

/// A per-test scratch dir holding the socket, the journal, and package
/// sources (socket paths must stay short: sun_path is ~108 bytes).
struct Scratch {
  std::string Dir;
  explicit Scratch(const std::string &Tag) {
    Dir = "/tmp/gjs_serve_" + Tag + "_" + std::to_string(::getpid());
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  ~Scratch() { std::filesystem::remove_all(Dir); }
  std::string path(const std::string &Name) const { return Dir + "/" + Name; }
  std::string writeJS(const std::string &Name, const char *Source) const {
    std::string P = path(Name);
    std::ofstream Out(P);
    Out << Source;
    return P;
  }
};

/// The daemon under test, forked into its own process (run() is blocking).
struct ServiceHandle {
  Subprocess Proc;
  std::string Socket;
};

ServiceHandle startService(const ServiceOptions &O) {
  ServiceHandle H;
  H.Socket = O.SocketPath;
  std::string Error;
  ServiceOptions Copy = O;
  EXPECT_TRUE(Subprocess::forkChild(
      [Copy] { return ScanService(Copy).run(); }, H.Proc, &Error))
      << Error;
  return H;
}

/// Graceful end: `shutdown` op, then the daemon must exit 0.
void shutdownService(ServiceHandle &H) {
  std::string Resp;
  ScanService::request(H.Socket, "{\"op\":\"shutdown\"}", Resp);
  WaitStatus WS = H.Proc.wait();
  EXPECT_TRUE(WS.exitedWith(0)) << WS.str();
}

std::string scanRequest(const std::string &Name, const std::string &File,
                        double DeadlineSeconds = 0,
                        const std::string &Fault = "") {
  json::Object O;
  O["op"] = json::Value("scan");
  O["name"] = json::Value(Name);
  O["files"] = json::Value(json::Array{json::Value(File)});
  if (DeadlineSeconds > 0)
    O["deadline_s"] = json::Value(DeadlineSeconds);
  if (!Fault.empty())
    O["fault"] = json::Value(Fault);
  return json::Value(std::move(O)).str();
}

/// Parses a daemon response line; fails the test on malformed JSON.
json::Object parseResponse(const std::string &Line) {
  json::Value V;
  EXPECT_TRUE(json::parse(Line, V) && V.isObject()) << Line;
  return V.isObject() ? V.asObject() : json::Object();
}

bool responseOk(const json::Object &O) {
  auto It = O.find("ok");
  return It != O.end() && It->second.isBool() && It->second.asBool();
}

std::string responseError(const json::Object &O) {
  auto It = O.find("error");
  return It != O.end() && It->second.isString() ? It->second.asString() : "";
}

/// The scan outcome spliced into an ok response, parsed back through the
/// journal-line reader.
driver::BatchOutcome responseOutcome(const json::Object &O) {
  driver::BatchOutcome Out;
  auto It = O.find("result");
  EXPECT_NE(It, O.end());
  if (It != O.end()) {
    EXPECT_TRUE(driver::BatchDriver::parseJournalLine(It->second.str(), Out));
  }
  return Out;
}

double statusNumber(const std::string &Socket, const char *Key) {
  std::string Resp;
  if (!ScanService::request(Socket, "{\"op\":\"status\"}", Resp, nullptr,
                            10.0))
    return -1;
  json::Object O = parseResponse(Resp);
  auto It = O.find(Key);
  return It != O.end() && It->second.isNumber() ? It->second.asNumber() : -1;
}

/// Spins until \p Pred holds or \p Seconds elapse.
bool waitUntil(double Seconds, const std::function<bool()> &Pred) {
  auto Start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
             .count() < Seconds) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Pred();
}

/// A raw NDJSON connection the test keeps open — for parking requests in
/// the daemon's queue without blocking on their responses.
struct RawClient {
  int FD = -1;
  std::string Buf;

  bool connect(const std::string &Path, double TimeoutSeconds = 10.0) {
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    auto Start = std::chrono::steady_clock::now();
    for (;;) {
      FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (FD < 0)
        return false;
      if (::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
          0)
        return true;
      ::close(FD);
      FD = -1;
      if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count() > TimeoutSeconds)
        return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }

  bool sendLine(std::string Line) {
    Line.push_back('\n');
    size_t Off = 0;
    while (Off < Line.size()) {
      ssize_t N =
          ::send(FD, Line.data() + Off, Line.size() - Off, MSG_NOSIGNAL);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  /// One response line, or "" on timeout/EOF.
  std::string recvLine(double TimeoutSeconds) {
    auto Start = std::chrono::steady_clock::now();
    char Tmp[4096];
    for (;;) {
      size_t Pos = Buf.find('\n');
      if (Pos != std::string::npos) {
        std::string Line = Buf.substr(0, Pos);
        Buf.erase(0, Pos + 1);
        return Line;
      }
      if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count() > TimeoutSeconds)
        return "";
      pollfd P{FD, POLLIN, 0};
      int R = ::poll(&P, 1, 100);
      if (R <= 0)
        continue;
      ssize_t N = ::recv(FD, Tmp, sizeof(Tmp), 0);
      if (N <= 0)
        return "";
      Buf.append(Tmp, static_cast<size_t>(N));
    }
  }

  ~RawClient() {
    if (FD >= 0)
      ::close(FD);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(WorkerProtocolTest, FrameRoundTripsOverSocketpair) {
  int SV[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SV), 0);
  std::string Payload = "{\"hello\":\"frames\"}";
  ASSERT_TRUE(driver::writeFrame(SV[0], Payload));
  std::string Back;
  ASSERT_TRUE(driver::readFrame(SV[1], Back));
  EXPECT_EQ(Back, Payload);

  // Empty frames are legal.
  ASSERT_TRUE(driver::writeFrame(SV[0], ""));
  ASSERT_TRUE(driver::readFrame(SV[1], Back));
  EXPECT_EQ(Back, "");

  // Peer hangup is EOF, not success.
  ::close(SV[0]);
  EXPECT_FALSE(driver::readFrame(SV[1], Back));
  ::close(SV[1]);
}

TEST(WorkerProtocolTest, FrameReaderReassemblesPartialWrites) {
  int SV[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SV), 0);
  ::fcntl(SV[1], F_SETFL, ::fcntl(SV[1], F_GETFL, 0) | O_NONBLOCK);

  std::string Payload = "{\"job\":7,\"line\":\"x\"}";
  char Hdr[4] = {static_cast<char>(Payload.size() & 0xff), 0, 0, 0};

  FrameReader R;
  // Header only: pump succeeds, no complete frame yet.
  ASSERT_EQ(::send(SV[0], Hdr, 2, 0), 2);
  EXPECT_TRUE(R.pump(SV[1]));
  std::string Out;
  EXPECT_FALSE(R.next(Out));
  ASSERT_EQ(::send(SV[0], Hdr + 2, 2, 0), 2);
  // Half the payload.
  ASSERT_EQ(::send(SV[0], Payload.data(), 5, 0), 5);
  EXPECT_TRUE(R.pump(SV[1]));
  EXPECT_FALSE(R.next(Out));
  // The rest, plus a second complete frame in the same burst.
  ASSERT_EQ(static_cast<size_t>(::send(SV[0], Payload.data() + 5,
                                       Payload.size() - 5, 0)),
            Payload.size() - 5);
  ASSERT_TRUE(driver::writeFrame(SV[0], "second"));
  EXPECT_TRUE(R.pump(SV[1]));
  ASSERT_TRUE(R.next(Out));
  EXPECT_EQ(Out, Payload);
  ASSERT_TRUE(R.next(Out));
  EXPECT_EQ(Out, "second");
  EXPECT_FALSE(R.next(Out));

  // EOF parks the reader in dead(); already-buffered frames would remain.
  ::close(SV[0]);
  EXPECT_FALSE(R.pump(SV[1]));
  EXPECT_TRUE(R.dead());
  ::close(SV[1]);
}

TEST(WorkerProtocolTest, OversizedLengthPrefixKillsTheReader) {
  int SV[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SV), 0);
  ::fcntl(SV[1], F_SETFL, ::fcntl(SV[1], F_GETFL, 0) | O_NONBLOCK);
  char Hdr[4] = {'\xff', '\xff', '\xff', '\xff'}; // ~4GB "frame".
  ASSERT_EQ(::send(SV[0], Hdr, 4, 0), 4);
  FrameReader R;
  EXPECT_TRUE(R.pump(SV[1]));
  std::string Out;
  EXPECT_FALSE(R.next(Out));
  EXPECT_TRUE(R.dead());
  ::close(SV[0]);
  ::close(SV[1]);
}

TEST(WorkerProtocolTest, RequestCodecRoundTrips) {
  WorkerRequest Req;
  Req.Kind = WorkerRequest::Op::Scan;
  Req.JobId = 42;
  Req.HasPlanIndex = true;
  Req.PlanIndex = 7;
  Req.IsRetry = true;
  Req.Name = "left-pad";
  Req.Paths = {"a.js", "b.js"};
  Req.DeadlineSeconds = 1.5;
  Req.FaultSpec = "build:crash:0";

  WorkerRequest Back;
  ASSERT_TRUE(WorkerRequest::decode(Req.encode(), Back));
  EXPECT_EQ(Back.Kind, WorkerRequest::Op::Scan);
  EXPECT_EQ(Back.JobId, 42u);
  EXPECT_TRUE(Back.HasPlanIndex);
  EXPECT_EQ(Back.PlanIndex, 7u);
  EXPECT_TRUE(Back.IsRetry);
  EXPECT_EQ(Back.Name, "left-pad");
  EXPECT_EQ(Back.Paths, (std::vector<std::string>{"a.js", "b.js"}));
  EXPECT_DOUBLE_EQ(Back.DeadlineSeconds, 1.5);
  EXPECT_EQ(Back.FaultSpec, "build:crash:0");

  WorkerRequest Ping;
  Ping.Kind = WorkerRequest::Op::Ping;
  Ping.JobId = 9;
  ASSERT_TRUE(WorkerRequest::decode(Ping.encode(), Back));
  EXPECT_EQ(Back.Kind, WorkerRequest::Op::Ping);
  EXPECT_FALSE(Back.HasPlanIndex);

  EXPECT_FALSE(WorkerRequest::decode("not json", Back));
  EXPECT_FALSE(WorkerRequest::decode("{\"op\":\"reboot\"}", Back));
  EXPECT_FALSE(WorkerRequest::decode("{\"job\":1}", Back));
}

TEST(WorkerProtocolTest, ResponseCodecRoundTrips) {
  WorkerResponse Resp;
  Resp.JobId = 13;
  Resp.Line = "{\"package\":\"p\"}";
  Resp.Recycle = true;

  WorkerResponse Back;
  ASSERT_TRUE(WorkerResponse::decode(Resp.encode(), Back));
  EXPECT_EQ(Back.JobId, 13u);
  EXPECT_EQ(Back.Line, "{\"package\":\"p\"}");
  EXPECT_TRUE(Back.Recycle);
  EXPECT_FALSE(Back.Pong);

  WorkerResponse Pong;
  Pong.JobId = 4;
  Pong.Pong = true;
  ASSERT_TRUE(WorkerResponse::decode(Pong.encode(), Back));
  EXPECT_TRUE(Back.Pong);
  EXPECT_TRUE(Back.Line.empty());

  EXPECT_FALSE(WorkerResponse::decode("{}", Back)); // A job id is required.
}

TEST(WorkerProtocolTest, TelemetryRidesTheResponseFrame) {
  WorkerResponse Resp;
  Resp.JobId = 21;
  Resp.Line = "{\"package\":\"p\"}";
  Resp.CounterDelta = {{"lex.tokens", 84}, {"query.rows", 6}};
  obs::HistogramSnapshot H;
  H.Unit = "us";
  H.Sum = 1234;
  H.Buckets = {{3, 2}, {17, 1}};
  Resp.HistDelta["scan.latency_us"] = H;
  obs::SpanRecord Root;
  Root.Name = "package";
  Root.StartUs = 100.5;
  Root.DurUs = 900.25;
  Root.Depth = 0;
  Root.Parent = obs::SpanRecord::npos;
  Root.Args = {{"files", "1"}};
  obs::SpanRecord Child;
  Child.Name = "parse";
  Child.StartUs = 110.0;
  Child.DurUs = 200.0;
  Child.Depth = 1;
  Child.Parent = 0;
  Resp.Spans = {Root, Child};
  ASSERT_TRUE(Resp.hasTelemetry());

  WorkerResponse Back;
  ASSERT_TRUE(WorkerResponse::decode(Resp.encode(), Back));
  EXPECT_EQ(Back.Line, Resp.Line);
  ASSERT_TRUE(Back.hasTelemetry());
  EXPECT_EQ(Back.CounterDelta.at("lex.tokens"), 84u);
  EXPECT_EQ(Back.CounterDelta.at("query.rows"), 6u);
  ASSERT_TRUE(Back.HistDelta.count("scan.latency_us"));
  const obs::HistogramSnapshot &HB = Back.HistDelta.at("scan.latency_us");
  EXPECT_EQ(HB.Unit, "us");
  EXPECT_EQ(HB.Sum, 1234u);
  ASSERT_EQ(HB.Buckets.size(), 2u);
  EXPECT_EQ(HB.Buckets[0], (std::pair<unsigned, uint64_t>{3, 2}));
  EXPECT_EQ(HB.count(), 3u);
  ASSERT_EQ(Back.Spans.size(), 2u);
  EXPECT_EQ(Back.Spans[0].Name, "package");
  EXPECT_DOUBLE_EQ(Back.Spans[0].StartUs, 100.5);
  EXPECT_EQ(Back.Spans[0].Parent, obs::SpanRecord::npos);
  ASSERT_EQ(Back.Spans[0].Args.size(), 1u);
  EXPECT_EQ(Back.Spans[0].Args[0].first, "files");
  EXPECT_EQ(Back.Spans[1].Parent, 0u);
  EXPECT_EQ(Back.Spans[1].Depth, 1u);

  // A plain response has no telemetry, and the codec stays tolerant of
  // frames from workers that did not collect any.
  WorkerResponse Plain;
  Plain.JobId = 1;
  Plain.Line = "x";
  EXPECT_FALSE(Plain.hasTelemetry());
  ASSERT_TRUE(WorkerResponse::decode(Plain.encode(), Back));
  EXPECT_FALSE(Back.hasTelemetry());
}

TEST(WorkerProtocolTest, TraceRequestFlagsRoundTrip) {
  WorkerRequest Req;
  Req.Kind = WorkerRequest::Op::Scan;
  Req.JobId = 3;
  Req.Name = "pkg";
  Req.WantTrace = true;
  Req.TraceEpochUs = 123456789012ull;
  WorkerRequest Back;
  ASSERT_TRUE(WorkerRequest::decode(Req.encode(), Back));
  EXPECT_TRUE(Back.WantTrace);
  EXPECT_EQ(Back.TraceEpochUs, 123456789012ull);

  Req.WantTrace = false;
  ASSERT_TRUE(WorkerRequest::decode(Req.encode(), Back));
  EXPECT_FALSE(Back.WantTrace);
}

TEST(WorkerProtocolTest, RebasedSpansShiftOntoTheSupervisorEpoch) {
  obs::TraceRecorder Worker;
  { obs::Span S(&Worker, "package"); }
  // A supervisor whose epoch predates the worker's by construction order.
  uint64_t SupEpoch = Worker.epochUs() > 5000 ? Worker.epochUs() - 5000 : 0;
  std::vector<obs::SpanRecord> Out = driver::rebasedSpans(Worker, SupEpoch);
  ASSERT_EQ(Out.size(), 1u);
  double Expect = Worker.spans()[0].StartUs +
                  (double(Worker.epochUs()) - double(SupEpoch));
  EXPECT_NEAR(Out[0].StartUs, Expect, 1e-6);
  EXPECT_GE(Out[0].StartUs, Worker.spans()[0].StartUs);
  EXPECT_GE(Out[0].DurUs, 0.0);
}

//===----------------------------------------------------------------------===//
// The daemon, end to end
//===----------------------------------------------------------------------===//

TEST(ScanServiceTest, ScanStatusAndShutdownRoundTrip) {
  Scratch S("roundtrip");
  std::string JS = S.writeJS("vuln.js", VulnSource);

  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 2;
  O.Quiet = true;
  ServiceHandle H = startService(O);

  std::string Resp, Error;
  ASSERT_TRUE(
      ScanService::request(O.SocketPath, scanRequest("vuln", JS), Resp, &Error))
      << Error;
  json::Object RO = parseResponse(Resp);
  EXPECT_TRUE(responseOk(RO)) << Resp;
  driver::BatchOutcome Out = responseOutcome(RO);
  EXPECT_EQ(Out.Package, "vuln");
  EXPECT_EQ(Out.Status, driver::BatchStatus::Ok);
  EXPECT_FALSE(Out.Result.Reports.empty()); // The CWE-78 must be found.

  EXPECT_EQ(statusNumber(O.SocketPath, "completed"), 1);
  EXPECT_EQ(statusNumber(O.SocketPath, "accepted"), 1);
  EXPECT_EQ(statusNumber(O.SocketPath, "rejected"), 0);
  EXPECT_EQ(statusNumber(O.SocketPath, "queued"), 0);

  shutdownService(H);
  // The socket file is unlinked on the way out.
  EXPECT_FALSE(std::filesystem::exists(O.SocketPath));
}

TEST(ScanServiceTest, ScanOfUnreadableFileDegradesNotCrashes) {
  Scratch S("unread");
  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.Quiet = true;
  ServiceHandle H = startService(O);

  std::string Resp;
  ASSERT_TRUE(ScanService::request(
      O.SocketPath, scanRequest("ghost", S.path("missing.js")), Resp));
  json::Object RO = parseResponse(Resp);
  EXPECT_TRUE(responseOk(RO)) << Resp;
  driver::BatchOutcome Out = responseOutcome(RO);
  EXPECT_EQ(Out.Package, "ghost");
  EXPECT_NE(Out.Status, driver::BatchStatus::Ok);

  shutdownService(H);
}

TEST(ScanServiceTest, BadRequestsAreRejectedNotFatal) {
  Scratch S("badreq");
  std::string JS = S.writeJS("ok.js", VulnSource);
  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.Quiet = true;
  ServiceHandle H = startService(O);

  std::string Resp;
  ASSERT_TRUE(ScanService::request(O.SocketPath, "not json at all", Resp));
  EXPECT_EQ(responseError(parseResponse(Resp)), "bad-request");
  ASSERT_TRUE(ScanService::request(O.SocketPath, "{\"op\":\"reboot\"}", Resp));
  EXPECT_EQ(responseError(parseResponse(Resp)), "bad-request");
  ASSERT_TRUE(
      ScanService::request(O.SocketPath, "{\"op\":\"scan\"}", Resp));
  EXPECT_EQ(responseError(parseResponse(Resp)), "bad-request");

  // The daemon is still healthy afterwards.
  ASSERT_TRUE(
      ScanService::request(O.SocketPath, scanRequest("ok", JS), Resp));
  EXPECT_TRUE(responseOk(parseResponse(Resp))) << Resp;

  shutdownService(H);
}

TEST(ScanServiceTest, WorkerCrashIsAttributedAndReForked) {
  Scratch S("crash");
  std::string JS = S.writeJS("pkg.js", VulnSource);
  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.Quiet = true;
  ServiceHandle H = startService(O);

  // The injected crash kills the worker mid-job: the response still
  // arrives, ok:true with a failed outcome attributed "crashed".
  std::string Resp;
  ASSERT_TRUE(ScanService::request(
      O.SocketPath, scanRequest("boom", JS, 0, "build:crash"), Resp));
  json::Object RO = parseResponse(Resp);
  EXPECT_TRUE(responseOk(RO)) << Resp;
  driver::BatchOutcome Out = responseOutcome(RO);
  EXPECT_EQ(Out.Status, driver::BatchStatus::Failed);
  ASSERT_FALSE(Out.Result.Errors.empty());
  EXPECT_EQ(Out.Result.Errors[0].Kind, scanner::ScanErrorKind::Crashed);

  // A fresh worker serves the next scan.
  ASSERT_TRUE(
      ScanService::request(O.SocketPath, scanRequest("after", JS), Resp));
  RO = parseResponse(Resp);
  EXPECT_TRUE(responseOk(RO)) << Resp;
  EXPECT_EQ(responseOutcome(RO).Status, driver::BatchStatus::Ok);

  shutdownService(H);
}

TEST(ScanServiceTest, OverloadedRejectionAndRecoveryAfterDrain) {
  Scratch S("overload");
  std::string JS = S.writeJS("pkg.js", VulnSource);
  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.QueueMax = 1;
  O.KillAfterSeconds = 1.0; // The hang below dies at 1s.
  O.Quiet = true;
  ServiceHandle H = startService(O);

  // Wedge the single worker.
  RawClient Hanging;
  ASSERT_TRUE(Hanging.connect(O.SocketPath));
  ASSERT_TRUE(Hanging.sendLine(scanRequest("hang", JS, 0, "build:hang")));
  ASSERT_TRUE(waitUntil(
      10.0, [&] { return statusNumber(O.SocketPath, "inflight") == 1; }));

  // Fill the one queue slot.
  RawClient Queued;
  ASSERT_TRUE(Queued.connect(O.SocketPath));
  ASSERT_TRUE(Queued.sendLine(scanRequest("queued", JS)));
  ASSERT_TRUE(waitUntil(
      10.0, [&] { return statusNumber(O.SocketPath, "queued") == 1; }));

  // The next scan must bounce with explicit backpressure.
  std::string Resp;
  ASSERT_TRUE(
      ScanService::request(O.SocketPath, scanRequest("extra", JS), Resp));
  json::Object RO = parseResponse(Resp);
  EXPECT_FALSE(responseOk(RO));
  EXPECT_EQ(responseError(RO), "overloaded");
  EXPECT_GE(statusNumber(O.SocketPath, "rejected"), 1);

  // The kill ladder fires, the wedged job fails deadline-killed, the
  // queued job lands on the replacement worker and completes.
  json::Object HangResp = parseResponse(Hanging.recvLine(20.0));
  EXPECT_TRUE(responseOk(HangResp));
  driver::BatchOutcome HangOut = responseOutcome(HangResp);
  EXPECT_EQ(HangOut.Status, driver::BatchStatus::Failed);
  ASSERT_FALSE(HangOut.Result.Errors.empty());
  EXPECT_EQ(HangOut.Result.Errors[0].Kind,
            scanner::ScanErrorKind::KilledDeadline);

  json::Object QueuedResp = parseResponse(Queued.recvLine(20.0));
  EXPECT_TRUE(responseOk(QueuedResp));
  EXPECT_EQ(responseOutcome(QueuedResp).Status, driver::BatchStatus::Ok);

  // Recovered: admissions work again.
  ASSERT_TRUE(
      ScanService::request(O.SocketPath, scanRequest("after", JS), Resp));
  EXPECT_TRUE(responseOk(parseResponse(Resp))) << Resp;

  shutdownService(H);
}

TEST(ScanServiceTest, DrainStopsAdmissionThenShutdownExitsClean) {
  Scratch S("drain");
  std::string JS = S.writeJS("pkg.js", VulnSource);
  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.Quiet = true;
  ServiceHandle H = startService(O);

  std::string Resp;
  ASSERT_TRUE(
      ScanService::request(O.SocketPath, scanRequest("before", JS), Resp));
  EXPECT_TRUE(responseOk(parseResponse(Resp)));

  ASSERT_TRUE(ScanService::request(O.SocketPath, "{\"op\":\"drain\"}", Resp));
  EXPECT_TRUE(responseOk(parseResponse(Resp)));

  ASSERT_TRUE(
      ScanService::request(O.SocketPath, scanRequest("after", JS), Resp));
  json::Object RO = parseResponse(Resp);
  EXPECT_FALSE(responseOk(RO));
  EXPECT_EQ(responseError(RO), "draining");

  shutdownService(H);
}

TEST(ScanServiceTest, SigtermDrainsAndExitsClean) {
  Scratch S("sigterm");
  std::string JS = S.writeJS("pkg.js", VulnSource);
  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.Quiet = true;
  ServiceHandle H = startService(O);

  std::string Resp;
  ASSERT_TRUE(
      ScanService::request(O.SocketPath, scanRequest("one", JS), Resp));
  EXPECT_TRUE(responseOk(parseResponse(Resp)));

  ASSERT_TRUE(H.Proc.kill(SIGTERM));
  WaitStatus WS = H.Proc.wait();
  EXPECT_TRUE(WS.exitedWith(0)) << WS.str();
  EXPECT_FALSE(std::filesystem::exists(O.SocketPath));
}

TEST(ScanServiceTest, JournalAppendsAcrossRestarts) {
  Scratch S("journal");
  std::string JS = S.writeJS("pkg.js", VulnSource);
  std::string Journal = S.path("serve.jsonl");

  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.JournalPath = Journal;
  O.Quiet = true;

  ServiceHandle H1 = startService(O);
  std::string Resp;
  ASSERT_TRUE(ScanService::request(O.SocketPath, scanRequest("a", JS), Resp));
  ASSERT_TRUE(ScanService::request(O.SocketPath, scanRequest("b", JS), Resp));
  shutdownService(H1);

  // A restarted daemon extends the history, never clobbers it.
  ServiceHandle H2 = startService(O);
  ASSERT_TRUE(ScanService::request(O.SocketPath, scanRequest("c", JS), Resp));
  shutdownService(H2);

  std::vector<std::string> Names;
  std::ifstream In(Journal);
  std::string Line;
  while (std::getline(In, Line)) {
    driver::BatchOutcome Out;
    ASSERT_TRUE(driver::BatchDriver::parseJournalLine(Line, Out)) << Line;
    Names.push_back(Out.Package);
  }
  EXPECT_EQ(Names, (std::vector<std::string>{"a", "b", "c"}));
}

//===----------------------------------------------------------------------===//
// The metrics surface
//===----------------------------------------------------------------------===//

TEST(ScanServiceTest, StatusReportsVerdictCountsGenerationsAndUptime) {
  Scratch S("statplus");
  std::string JS = S.writeJS("pkg.js", VulnSource);
  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.Quiet = true;
  ServiceHandle H = startService(O);

  std::string Resp;
  ASSERT_TRUE(ScanService::request(O.SocketPath, scanRequest("ok1", JS), Resp));
  ASSERT_TRUE(ScanService::request(
      O.SocketPath, scanRequest("boom", JS, 0, "build:crash"), Resp));

  EXPECT_EQ(statusNumber(O.SocketPath, "completed"), 2);
  EXPECT_EQ(statusNumber(O.SocketPath, "completed_ok"), 1);
  EXPECT_EQ(statusNumber(O.SocketPath, "completed_failed"), 1);
  EXPECT_EQ(statusNumber(O.SocketPath, "completed_degraded"), 0);
  // One initial fork plus the re-fork after the crash.
  EXPECT_GE(statusNumber(O.SocketPath, "generations"), 2);
  EXPECT_GT(statusNumber(O.SocketPath, "uptime_s"), 0);

  shutdownService(H);
}

TEST(ScanServiceTest, MetricsOpReportsMergedTelemetry) {
  Scratch S("metrics");
  std::string JS = S.writeJS("pkg.js", VulnSource);
  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.Quiet = true;
  ServiceHandle H = startService(O);

  std::string Resp;
  ASSERT_TRUE(ScanService::request(O.SocketPath, scanRequest("a", JS), Resp));
  ASSERT_TRUE(ScanService::request(O.SocketPath, scanRequest("b", JS), Resp));

  ASSERT_TRUE(ScanService::request(O.SocketPath, "{\"op\":\"metrics\"}", Resp));
  json::Object M = parseResponse(Resp);
  EXPECT_TRUE(responseOk(M)) << Resp;

  // Gauges.
  ASSERT_TRUE(M.count("serve.uptime_s"));
  EXPECT_GT(M.at("serve.uptime_s").asNumber(), 0);
  ASSERT_TRUE(M.count("serve.queue_depth"));
  EXPECT_EQ(M.at("serve.queue_depth").asNumber(), 0);
  ASSERT_TRUE(M.count("serve.workers"));
  EXPECT_EQ(M.at("serve.workers").asNumber(), 1);

  // Counters merged up from worker processes: the scan pipeline ran in a
  // child, so nonzero lex.tokens here proves cross-process stitching.
  ASSERT_TRUE(M.count("counters") && M.at("counters").isObject()) << Resp;
  const json::Object &C = M.at("counters").asObject();
  ASSERT_TRUE(C.count("scan.attempts"));
  EXPECT_GE(C.at("scan.attempts").asNumber(), 2);
  ASSERT_TRUE(C.count("lex.tokens"));
  EXPECT_GT(C.at("lex.tokens").asNumber(), 0);

  // Histograms: scan latency has one sample per scan and non-degenerate
  // percentile structure (the acceptance bar for the metrics surface).
  ASSERT_TRUE(M.count("histograms") && M.at("histograms").isObject()) << Resp;
  const json::Object &Hs = M.at("histograms").asObject();
  ASSERT_TRUE(Hs.count("scan.latency_us")) << Resp;
  const json::Object &Lat = Hs.at("scan.latency_us").asObject();
  EXPECT_EQ(Lat.at("count").asNumber(), 2);
  EXPECT_GT(Lat.at("p50").asNumber(), 0);
  EXPECT_GT(Lat.at("p99").asNumber(), 0);
  EXPECT_LE(Lat.at("p50").asNumber(), Lat.at("p99").asNumber());
  EXPECT_GT(Lat.at("sum").asNumber(), 0);
  // Worker-side phase histograms made it across the pipe too.
  EXPECT_TRUE(Hs.count("phase.parse_us")) << Resp;
  // Supervisor-side queue/turnaround clocks.
  EXPECT_TRUE(Hs.count("queue.wait_us")) << Resp;
  EXPECT_TRUE(Hs.count("worker.job_us")) << Resp;

  shutdownService(H);
}

TEST(ScanServiceTest, MetricsOutWritesPrometheusSnapshotAtDrain) {
  Scratch S("promout");
  std::string JS = S.writeJS("pkg.js", VulnSource);
  std::string Prom = S.path("m.prom");
  ServiceOptions O;
  O.SocketPath = S.path("d.sock");
  O.Jobs = 1;
  O.Quiet = true;
  O.MetricsPath = Prom;
  ServiceHandle H = startService(O);

  std::string Resp;
  ASSERT_TRUE(ScanService::request(O.SocketPath, scanRequest("a", JS), Resp));
  shutdownService(H); // The drain path writes a final snapshot.

  std::ifstream In(Prom);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Page = SS.str();
  EXPECT_NE(Page.find("# TYPE graphjs_scan_attempts counter"),
            std::string::npos)
      << Page;
  EXPECT_NE(Page.find("# TYPE graphjs_scan_latency_us summary"),
            std::string::npos)
      << Page;
  EXPECT_NE(Page.find("graphjs_scan_latency_us_count 1"), std::string::npos);
  EXPECT_NE(Page.find("# TYPE graphjs_serve_uptime_s gauge"),
            std::string::npos);
}
