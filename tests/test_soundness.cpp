//===- tests/test_soundness.cpp - Theorem 3.2 property tests --------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Executable soundness (Theorem 3.2, "Soundness with Full Knowledge"):
// run the instrumented concrete semantics on random programs with random
// inputs, build the abstract MDG of the same program, map every concrete
// location to its abstract counterpart through the allocation-table
// abstraction function α, and check Definition 3.1:
//
//   (1) l1 →D l2 ∈ g     ⟹  α(l1) →D α(l2) ∈ ĝ
//   (2) l1 →P(p) l2 ∈ g  ⟹  α(l1) →P(p)/P(*) α(l2) ∈ ĝ
//   (3) l1 →V(p) l2 ∈ g  ⟹  α(l1) →V(p)/V(*) α(l2) ∈ ĝ
//
//===----------------------------------------------------------------------===//

#include "analysis/ConcreteInterp.h"
#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::analysis;
using namespace gjs::mdg;

namespace {

/// Maps a concrete location to its abstract node via its tag. Returns
/// InvalidNode for untracked locations (which never carry edges).
NodeId alpha(const LocTag &Tag, const AllocationTables &A,
             const BuildResult &Abs) {
  auto Find = [](const auto &Map, const auto &Key) -> NodeId {
    auto It = Map.find(Key);
    return It == Map.end() ? InvalidNode : It->second;
  };
  switch (Tag.K) {
  case LocTag::Kind::None:
    return InvalidNode;
  case LocTag::Kind::Site:
    return Find(A.Site, Tag.Site);
  case LocTag::Kind::Version:
    return Find(A.Version, Tag.Site);
  case LocTag::Kind::Value:
    return Find(A.Value, Tag.Site);
  case LocTag::Kind::Call:
    return Find(A.Call, Tag.Site);
  case LocTag::Kind::Ret:
    return Find(A.Ret, Tag.Site);
  case LocTag::Kind::Global:
    return Find(A.Global, Tag.Name);
  case LocTag::Kind::Param:
    return Find(A.Param, Tag.Name);
  case LocTag::Kind::LazyProp: {
    Symbol P = 0;
    if (!Abs.Props.find(Tag.Name, P))
      return InvalidNode;
    return Find(A.Prop, std::make_pair(Tag.Site, P));
  }
  case LocTag::Kind::UnknownProp:
    return Find(A.UnknownProp, Tag.Site);
  }
  return InvalidNode;
}

/// Checks Definition 3.1 for one concrete run against an abstract build.
/// Returns a description of the first violation, or "" when sound.
std::string checkOverApproximation(const ConcreteResult &Conc,
                                   const BuildResult &Abs) {
  const Graph &CG = Conc.Graph;
  const Graph &AG = Abs.Graph;
  for (NodeId N : CG.nodeIds()) {
    for (const Edge &E : CG.out(N)) {
      NodeId AF = alpha(Conc.Tags[E.From], Abs.Alloc, Abs);
      NodeId AT = alpha(Conc.Tags[E.To], Abs.Alloc, Abs);
      auto TagStr = [](const LocTag &T) {
        static const char *Kinds[] = {"None",   "Site",  "Version",
                                      "Value",  "Call",  "Ret",
                                      "Global", "Param", "LazyProp",
                                      "UnknownProp"};
        return std::string(Kinds[static_cast<int>(T.K)]) + "(" +
               std::to_string(T.Site) + "," + T.Name + ")";
      };
      if (AF == InvalidNode || AT == InvalidNode) {
        return "concrete edge endpoint has no abstract image: o" +
               std::to_string(E.From) + " " + TagStr(Conc.Tags[E.From]) +
               " -" + edgeKindLabel(E.Kind) + "-> o" + std::to_string(E.To) +
               " " + TagStr(Conc.Tags[E.To]);
      }
      bool Ok = false;
      switch (E.Kind) {
      case EdgeKind::Dep:
        Ok = AG.hasEdge(AF, AT, EdgeKind::Dep);
        break;
      case EdgeKind::Prop:
      case EdgeKind::PropUnknown: {
        Symbol AbsProp = 0;
        bool Known = Abs.Props.find(Conc.Props.str(E.Prop), AbsProp);
        Ok = AG.hasEdge(AF, AT, EdgeKind::PropUnknown) ||
             (Known && AG.hasEdge(AF, AT, EdgeKind::Prop, AbsProp));
        break;
      }
      case EdgeKind::Version:
      case EdgeKind::VersionUnknown: {
        Symbol AbsProp = 0;
        bool Known = Abs.Props.find(Conc.Props.str(E.Prop), AbsProp);
        Ok = AG.hasEdge(AF, AT, EdgeKind::VersionUnknown) ||
             (Known && AG.hasEdge(AF, AT, EdgeKind::Version, AbsProp)) ||
             // Same-site re-updates fold onto one abstract node: the
             // concrete chain element maps to the node itself.
             AF == AT;
        break;
      }
      }
      if (!Ok) {
        return "missing abstract counterpart for concrete edge o" +
               std::to_string(E.From) + " " + TagStr(Conc.Tags[E.From]) +
               " -" + edgeKindLabel(E.Kind) + "(" +
               Conc.Props.str(E.Prop) + ")-> o" + std::to_string(E.To) +
               " " + TagStr(Conc.Tags[E.To]) + " (abstract o" +
               std::to_string(AF) + " -> o" + std::to_string(AT) + ")";
      }
    }
  }
  return "";
}

/// Runs the full concrete-vs-abstract comparison on a source string.
void expectSound(const std::string &Source,
                 const std::vector<ValueSpec> &Args) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_FALSE(Prog->Exports.empty()) << "test program must export";
  std::string Entry = Prog->Exports[0].FunctionName;
  ASSERT_FALSE(Entry.empty());

  BuilderOptions BO;
  BuildResult Abs = buildMDG(*Prog, BO);
  ASSERT_FALSE(Abs.TimedOut);

  InterpOptions IO;
  IO.MaxCallDepth = BO.MaxInlineDepth;
  ConcreteInterp CI(IO);
  ConcreteResult Conc = CI.run(*Prog, Entry, Args);

  std::string Violation = checkOverApproximation(Conc, Abs);
  EXPECT_EQ(Violation, "") << "source:\n" << Source;
}

//===----------------------------------------------------------------------===//
// Random program generation
//===----------------------------------------------------------------------===//

/// Generates random JavaScript functions exercising the Core JS constructs:
/// literals, binops, object creation, static/dynamic reads and writes,
/// if/while, helper calls, and unknown calls.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Vars = {"p0", "p1", "p2"};
    std::string Body = block(3 + R.below(5), 0);
    std::string Helper =
        "function helper(h0, h1) {\n"
        "  var hr = {};\n"
        "  hr.out = h0;\n"
        "  return hr;\n"
        "}\n";
    return Helper + "function entry(p0, p1, p2) {\n" + Body +
           "  return p0;\n}\nmodule.exports = entry;\n";
  }

private:
  RNG R;
  std::vector<std::string> Vars;
  int NextVar = 0;

  std::string freshVar() { return "v" + std::to_string(NextVar++); }
  const std::string &anyVar() { return Vars[R.below(Vars.size())]; }

  std::string literal() {
    switch (R.below(3)) {
    case 0:
      return std::to_string(R.below(100));
    case 1:
      return "'s" + std::to_string(R.below(10)) + "'";
    default:
      return R.chance(0.5) ? "true" : "false";
    }
  }

  std::string expr() {
    switch (R.below(4)) {
    case 0:
      return literal();
    case 1:
      return anyVar();
    case 2:
      return anyVar() + " + " + anyVar();
    default:
      return anyVar() + " + " + literal();
    }
  }

  std::string stmt(int Depth) {
    std::string Ind(static_cast<size_t>(2 * (Depth + 1)), ' ');
    switch (R.below(10)) {
    case 0: { // New variable from expression.
      std::string V = freshVar();
      std::string S = Ind + "var " + V + " = " + expr() + ";\n";
      Vars.push_back(V);
      return S;
    }
    case 1: { // New object.
      std::string V = freshVar();
      std::string S =
          Ind + "var " + V + " = {a: " + anyVar() + ", b: 1};\n";
      Vars.push_back(V);
      return S;
    }
    case 2: // Static write.
      return Ind + anyVar() + ".f" + std::to_string(R.below(3)) + " = " +
             expr() + ";\n";
    case 3: // Dynamic write.
      return Ind + anyVar() + "[" + anyVar() + "] = " + expr() + ";\n";
    case 4: { // Static read.
      std::string V = freshVar();
      std::string S = Ind + "var " + V + " = " + anyVar() + ".f" +
                      std::to_string(R.below(3)) + ";\n";
      Vars.push_back(V);
      return S;
    }
    case 5: { // Dynamic read.
      std::string V = freshVar();
      std::string S =
          Ind + "var " + V + " = " + anyVar() + "[" + anyVar() + "];\n";
      Vars.push_back(V);
      return S;
    }
    case 6: // If statement.
      if (Depth < 2)
        return Ind + "if (" + anyVar() + ") {\n" + block(2, Depth + 1) +
               Ind + "} else {\n" + block(1, Depth + 1) + Ind + "}\n";
      return Ind + ";\n";
    case 7: // While loop.
      if (Depth < 2) {
        std::string V = freshVar();
        Vars.push_back(V);
        return Ind + "var " + V + " = 0;\n" + Ind + "while (" + V +
               " < 2) {\n" + block(2, Depth + 1) + Ind + "  " + V + " = " +
               V + " + 1;\n" + Ind + "}\n";
      }
      return Ind + ";\n";
    case 8: { // Helper call.
      std::string V = freshVar();
      std::string S = Ind + "var " + V + " = helper(" + anyVar() + ", " +
                      anyVar() + ");\n";
      Vars.push_back(V);
      return S;
    }
    default: { // Unknown call.
      std::string V = freshVar();
      std::string S =
          Ind + "var " + V + " = extern(" + anyVar() + ");\n";
      Vars.push_back(V);
      return S;
    }
    }
  }

  std::string block(unsigned N, int Depth) {
    std::string Out;
    for (unsigned I = 0; I < N; ++I)
      Out += stmt(Depth);
    return Out;
  }
};

std::vector<ValueSpec> randomArgs(RNG &R) {
  std::vector<ValueSpec> Args;
  for (int I = 0; I < 3; ++I) {
    switch (R.below(3)) {
    case 0:
      Args.push_back(ValueSpec::string("t" + std::to_string(R.below(5))));
      break;
    case 1:
      Args.push_back(ValueSpec::number(static_cast<double>(R.below(50))));
      break;
    default:
      Args.push_back(ValueSpec::object(
          {{"f0", ValueSpec::string("x")},
           {"f1", ValueSpec::object({{"g", ValueSpec::number(7)}})}}));
    }
  }
  return Args;
}

} // namespace

//===----------------------------------------------------------------------===//
// Directed soundness cases
//===----------------------------------------------------------------------===//

TEST(SoundnessTest, StraightLineDataflow) {
  expectSound("function f(a, b) { var c = a + b; var d = c + 1; sink(d); }\n"
              "module.exports = f;\n",
              {ValueSpec::string("x"), ValueSpec::number(3)});
}

TEST(SoundnessTest, ObjectCreationAndStaticProps) {
  expectSound("function f(a) { var o = {x: a}; o.y = 5; var r = o.x; "
              "sink(r); }\nmodule.exports = f;\n",
              {ValueSpec::string("v")});
}

TEST(SoundnessTest, DynamicPropertyReadWrite) {
  expectSound("function f(a, k) { var o = {}; o[k] = a; var r = o[k]; "
              "sink(r); }\nmodule.exports = f;\n",
              {ValueSpec::string("payload"), ValueSpec::string("key")});
}

TEST(SoundnessTest, VersioningOverwrite) {
  expectSound("function f(a) { var o = {}; o.x = a; o.x = 'safe'; o.y = o.x;"
              " }\nmodule.exports = f;\n",
              {ValueSpec::string("v")});
}

TEST(SoundnessTest, Figure1ConcreteRun) {
  expectSound(
      "const { exec } = require('child_process');\n"
      "function git_reset(config, op, branch_name, url) {\n"
      "  var options = config[op];\n"
      "  options[branch_name] = url;\n"
      "  options.cmd = 'git reset';\n"
      "  exec(options.cmd + ' HEAD~' + options.commit);\n"
      "}\n"
      "module.exports = git_reset;\n",
      {ValueSpec::object(
           {{"reset", ValueSpec::object({{"commit", ValueSpec::number(1)}})}}),
       ValueSpec::string("reset"), ValueSpec::string("main"),
       ValueSpec::string("origin/main")});
}

TEST(SoundnessTest, LoopWithUpdates) {
  expectSound(
      "function f(o, k, v) {\n"
      "  var i = 0;\n"
      "  while (i < 3) { o[k] = v; i = i + 1; }\n"
      "  return o;\n"
      "}\nmodule.exports = f;\n",
      {ValueSpec::object(), ValueSpec::string("kk"), ValueSpec::string("vv")});
}

TEST(SoundnessTest, SetValueCaseStudyConcrete) {
  expectSound(
      "function set_value(target, prop, value) {\n"
      "  var obj = target;\n"
      "  var i = 0;\n"
      "  while (i < 2) {\n"
      "    if (i === 1) { obj[prop] = value; }\n"
      "    obj = obj[prop];\n"
      "    i = i + 1;\n"
      "  }\n"
      "  return target;\n"
      "}\nmodule.exports = set_value;\n",
      {ValueSpec::object({{"__proto__", ValueSpec::object()}}),
       ValueSpec::string("__proto__"), ValueSpec::string("polluted")});
}

TEST(SoundnessTest, InterproceduralCall) {
  expectSound("function id(x) { return x; }\n"
              "function f(a) { var r = id(a); sink(r); }\n"
              "module.exports = f;\n",
              {ValueSpec::string("v")});
}

TEST(SoundnessTest, BranchesJoin) {
  expectSound("function f(a, b, c) {\n"
              "  var x;\n"
              "  if (c) { x = a; } else { x = b; }\n"
              "  sink(x);\n"
              "}\nmodule.exports = f;\n",
              {ValueSpec::string("l"), ValueSpec::string("r"),
               ValueSpec::number(1)});
  expectSound("function f(a, b, c) {\n"
              "  var x;\n"
              "  if (c) { x = a; } else { x = b; }\n"
              "  sink(x);\n"
              "}\nmodule.exports = f;\n",
              {ValueSpec::string("l"), ValueSpec::string("r"),
               ValueSpec::number(0)});
}

//===----------------------------------------------------------------------===//
// Randomized property sweep
//===----------------------------------------------------------------------===//

class SoundnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundnessSweep, RandomProgramIsOverApproximated) {
  uint64_t Seed = GetParam();
  ProgramGenerator Gen(Seed);
  std::string Source = Gen.generate();

  RNG ArgRNG(Seed ^ 0xABCDEF);
  // Three random input vectors per program.
  for (int Round = 0; Round < 3; ++Round) {
    SCOPED_TRACE("seed=" + std::to_string(Seed) +
                 " round=" + std::to_string(Round));
    expectSound(Source, randomArgs(ArgRNG));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessSweep,
                         ::testing::Range<uint64_t>(1, 41));
