//===- tests/test_support.cpp - Unit tests for gjs_support ----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/JSON.h"
#include "support/RNG.h"
#include "support/StringInterner.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace gjs;

TEST(SourceLocationTest, OrderingAndValidity) {
  SourceLocation A(1, 5), B(2, 1), C(1, 9);
  EXPECT_TRUE(A < B);
  EXPECT_TRUE(A < C);
  EXPECT_FALSE(B < A);
  EXPECT_TRUE(A.isValid());
  EXPECT_FALSE(SourceLocation().isValid());
  EXPECT_EQ(A.str(), "1:5");
}

TEST(DiagnosticsTest, CountsErrorsOnly) {
  DiagnosticEngine D;
  D.warning(SourceLocation(1, 1), "w");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLocation(2, 2), "e");
  D.note(SourceLocation(3, 3), "n");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
  EXPECT_NE(D.str().find("2:2: error: e"), std::string::npos);
}

TEST(StringInternerTest, StableIdsAndRoundTrip) {
  StringInterner SI;
  Symbol A = SI.intern("cmd");
  Symbol B = SI.intern("commit");
  Symbol A2 = SI.intern("cmd");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.str(A), "cmd");
  EXPECT_EQ(SI.str(B), "commit");
  EXPECT_EQ(SI.intern(""), 0u);
}

TEST(JSONTest, WritesScalarsAndNesting) {
  json::Object O;
  O["name"] = json::Value("graph.js");
  O["count"] = json::Value(42);
  O["nested"] = json::Value(json::Array{json::Value(true), json::Value(nullptr)});
  json::Value V(std::move(O));
  EXPECT_EQ(V.str(),
            "{\"count\":42,\"name\":\"graph.js\",\"nested\":[true,null]}");
}

TEST(JSONTest, EscapesControlCharacters) {
  json::Value V(std::string("a\"b\\c\nd"));
  EXPECT_EQ(V.str(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JSONTest, ParsesRoundTrip) {
  const char *Text = R"({"sinks": [{"name": "exec", "args": [0]}], "n": 1.5})";
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(Text, V, &Error)) << Error;
  ASSERT_TRUE(V.isObject());
  const json::Value &Sinks = V.asObject().at("sinks");
  ASSERT_TRUE(Sinks.isArray());
  EXPECT_EQ(Sinks.asArray()[0].asObject().at("name").asString(), "exec");
  EXPECT_DOUBLE_EQ(V.asObject().at("n").asNumber(), 1.5);
}

TEST(JSONTest, RejectsMalformedInput) {
  json::Value V;
  std::string Error;
  EXPECT_FALSE(json::parse("{\"a\": }", V, &Error));
  EXPECT_FALSE(json::parse("[1, 2", V, &Error));
  EXPECT_FALSE(json::parse("42 43", V, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(JSONTest, ParsesStringEscapes) {
  json::Value V;
  ASSERT_TRUE(json::parse(R"("a\nbA")", V));
  EXPECT_EQ(V.asString(), "a\nbA");
}

TEST(RNGTest, DeterministicAcrossInstances) {
  RNG A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGTest, BoundsRespected) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.below(10);
    EXPECT_LT(V, 10u);
    int64_t W = R.range(-5, 5);
    EXPECT_GE(W, -5);
    EXPECT_LE(W, 5);
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RNGTest, PickCoversAllElements) {
  RNG R(99);
  std::vector<int> Items = {1, 2, 3};
  bool Seen[4] = {false, false, false, false};
  for (int I = 0; I < 200; ++I)
    Seen[R.pick(Items)] = true;
  EXPECT_TRUE(Seen[1] && Seen[2] && Seen[3]);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"CWE", "TP"});
  T.addRow({"CWE-78", "160"});
  T.addRow({"CWE-1321", "126"});
  std::string S = T.str();
  EXPECT_NE(S.find("| CWE      | TP  |"), std::string::npos);
  EXPECT_NE(S.find("| CWE-78   | 160 |"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::fmt(1.234, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmtRatio(1.63), "1.63x");
  EXPECT_EQ(TablePrinter::fmtPercent(0.821), "82.1%");
}
