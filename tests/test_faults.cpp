//===- tests/test_faults.cpp - Fault-tolerant scan runtime tests -----------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The robustness surface: the shared Deadline token, the structured
// ScanError taxonomy, deterministic fault injection into every pipeline
// phase, the degradation ladder, and the resumable batch driver (library
// and `graphjs batch` CLI round trips).
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"
#include "odgen/ODGenAnalyzer.h"
#include "scanner/Scanner.h"
#include "support/Deadline.h"
#include "support/JSON.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace gjs;
using scanner::FaultPlan;
using scanner::ScanError;
using scanner::ScanErrorKind;
using scanner::ScanPhase;
using scanner::ScanResult;

namespace {

/// A small package with one clear CWE-78: tainted exported parameter
/// flowing into child_process.exec.
const char *VulnSource =
    "var cp = require('child_process');\n"
    "function run(cmd, cb) {\n"
    "  var prefixed = 'git ' + cmd;\n"
    "  cp.exec(prefixed, cb);\n"
    "}\n"
    "module.exports = run;\n";

bool hasCommandInjection(const ScanResult &R) {
  for (const queries::VulnReport &Rep : R.Reports)
    if (Rep.Type == queries::VulnType::CommandInjection)
      return true;
  return false;
}

std::vector<std::string> readLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

/// Parses one JSONL journal line (must succeed).
json::Object parseLine(const std::string &Line) {
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Line, V, &Error)) << Error << "\n" << Line;
  EXPECT_TRUE(V.isObject());
  return V.asObject();
}

driver::BatchInput makeInput(const std::string &Name, const char *Source) {
  return {Name, {{Name + ".js", Source}}};
}

} // namespace

//===----------------------------------------------------------------------===//
// Deadline
//===----------------------------------------------------------------------===//

TEST(DeadlineTest, WorkBudgetExpiresStickyWithReason) {
  Deadline D = Deadline::afterWork(3);
  EXPECT_TRUE(D.active());
  EXPECT_FALSE(D.checkpoint());
  EXPECT_FALSE(D.checkpoint(2));
  EXPECT_TRUE(D.checkpoint()); // 4 > 3.
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.reason(), Deadline::Reason::Work);
  EXPECT_TRUE(D.checkpoint()) << "expiry must be sticky";
  EXPECT_EQ(D.workDone(), 4u);
}

TEST(DeadlineTest, UnlimitedNeverExpiresButCounts) {
  Deadline D;
  EXPECT_FALSE(D.active());
  for (int I = 0; I < 1000; ++I)
    EXPECT_FALSE(D.checkpoint());
  EXPECT_EQ(D.workDone(), 1000u);
  EXPECT_EQ(D.reason(), Deadline::Reason::None);
}

TEST(DeadlineTest, ExpireNowModelsAStall) {
  Deadline D = Deadline::afterWork(1000000);
  EXPECT_FALSE(D.checkpoint());
  D.expireNow();
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.reason(), Deadline::Reason::Forced);
}

TEST(DeadlineTest, WallClockExpires) {
  Deadline D = Deadline::afterSeconds(1e-9);
  EXPECT_TRUE(D.active());
  // The first checkpoint polls the clock (NextClockCheck starts at 1).
  EXPECT_TRUE(D.checkpoint());
  EXPECT_EQ(D.reason(), Deadline::Reason::WallClock);
}

//===----------------------------------------------------------------------===//
// ScanError taxonomy
//===----------------------------------------------------------------------===//

TEST(ScanErrorTest, NamesRoundTrip) {
  for (ScanPhase P : {ScanPhase::Parse, ScanPhase::Normalize, ScanPhase::Build,
                      ScanPhase::Import, ScanPhase::Query, ScanPhase::Driver}) {
    ScanPhase Back;
    ASSERT_TRUE(scanner::scanPhaseFromName(scanner::scanPhaseName(P), Back));
    EXPECT_EQ(Back, P);
  }
  ScanPhase Ignored;
  EXPECT_FALSE(scanner::scanPhaseFromName("bogus", Ignored));
}

TEST(ScanErrorTest, RenderingAndClassification) {
  ScanError E{ScanPhase::Build, ScanErrorKind::Budget, "work exhausted",
              "lib.js"};
  EXPECT_NE(E.str().find("build"), std::string::npos);
  EXPECT_NE(E.str().find("budget"), std::string::npos);
  EXPECT_NE(E.str().find("lib.js"), std::string::npos);
  EXPECT_TRUE(E.isTimeout());
  ScanError PE{ScanPhase::Parse, ScanErrorKind::ParseError, "", ""};
  EXPECT_FALSE(PE.isTimeout());
  EXPECT_EQ(scanner::kindOfDeadline(Deadline::Reason::Work),
            ScanErrorKind::Budget);
  EXPECT_EQ(scanner::kindOfDeadline(Deadline::Reason::WallClock),
            ScanErrorKind::Deadline);
  EXPECT_EQ(scanner::kindOfDeadline(Deadline::Reason::Forced),
            ScanErrorKind::Deadline);
}

TEST(FaultPlanTest, SpecParsing) {
  FaultPlan P;
  EXPECT_TRUE(FaultPlan::parse("build:fail", P));
  EXPECT_EQ(P.Phase, ScanPhase::Build);
  EXPECT_EQ(P.Kind, FaultPlan::Action::Fail);
  EXPECT_EQ(P.Package, 0u);

  EXPECT_TRUE(FaultPlan::parse("query:stall:3", P));
  EXPECT_EQ(P.Phase, ScanPhase::Query);
  EXPECT_EQ(P.Kind, FaultPlan::Action::Stall);
  EXPECT_EQ(P.Package, 3u);

  std::string Error;
  EXPECT_FALSE(FaultPlan::parse("bogus:fail", P, &Error));
  EXPECT_NE(Error.find("bogus"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse("build:explode", P));
  EXPECT_FALSE(FaultPlan::parse("build", P));
  EXPECT_FALSE(FaultPlan::parse("build:fail:x", P));
}

//===----------------------------------------------------------------------===//
// Fault injection: per-phase containment and ladder recovery
//===----------------------------------------------------------------------===//

TEST(FaultInjectionTest, FailFaultIsContainedInEveryPhase) {
  for (ScanPhase P : {ScanPhase::Parse, ScanPhase::Normalize, ScanPhase::Build,
                      ScanPhase::Import, ScanPhase::Query}) {
    scanner::ScanOptions O;
    O.MaxDegradation = 0; // Observe the raw failure.
    O.Fault = FaultPlan{P, FaultPlan::Action::Fail, 0};
    scanner::Scanner S(O);
    ScanResult R = S.scanSource(VulnSource);
    EXPECT_TRUE(R.faulted()) << scanner::scanPhaseName(P);
    ASSERT_FALSE(R.Errors.empty()) << scanner::scanPhaseName(P);
    EXPECT_EQ(R.Errors[0].Phase, P);
    EXPECT_EQ(R.Errors[0].Kind, ScanErrorKind::InjectedFault);
    EXPECT_EQ(R.Attempts, 1u);
    EXPECT_EQ(R.Degradation, 0u);
  }
}

TEST(FaultInjectionTest, LadderRecoversFromTransientFaultInEveryPhase) {
  for (ScanPhase P : {ScanPhase::Parse, ScanPhase::Normalize, ScanPhase::Build,
                      ScanPhase::Import, ScanPhase::Query}) {
    scanner::ScanOptions O;
    O.Fault = FaultPlan{P, FaultPlan::Action::Fail, 0};
    scanner::Scanner S(O);
    ScanResult R = S.scanSource(VulnSource);
    // The fault fired (still recorded) but the one-shot retry succeeded.
    EXPECT_TRUE(R.faulted()) << scanner::scanPhaseName(P);
    EXPECT_GE(R.Attempts, 2u) << scanner::scanPhaseName(P);
    EXPECT_GE(R.Degradation, 1u) << scanner::scanPhaseName(P);
    EXPECT_TRUE(hasCommandInjection(R)) << scanner::scanPhaseName(P);
  }
}

TEST(FaultInjectionTest, StallFaultBecomesAttributedDeadline) {
  scanner::ScanOptions O;
  O.MaxDegradation = 0;
  O.Fault = FaultPlan{ScanPhase::Build, FaultPlan::Action::Stall, 0};
  scanner::Scanner S(O);
  ScanResult R = S.scanSource(VulnSource);
  EXPECT_TRUE(R.timedOut());
  EXPECT_TRUE(R.timedOutIn(ScanPhase::Build));
  const ScanError *T = R.firstTimeout();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Kind, ScanErrorKind::Deadline)
      << "a forced (stall) expiry is a deadline, not a work budget";
}

TEST(FaultInjectionTest, LadderRecoversFromStall) {
  scanner::ScanOptions O;
  O.Fault = FaultPlan{ScanPhase::Query, FaultPlan::Action::Stall, 0};
  scanner::Scanner S(O);
  ScanResult R = S.scanSource(VulnSource);
  EXPECT_TRUE(R.timedOut());
  EXPECT_GE(R.Degradation, 1u);
  EXPECT_TRUE(hasCommandInjection(R));
}

TEST(FaultInjectionTest, FaultTargetsTheNthPackageAndIsOneShot) {
  scanner::ScanOptions O;
  O.MaxDegradation = 0;
  O.Fault = FaultPlan{ScanPhase::Build, FaultPlan::Action::Fail, 1};
  scanner::Scanner S(O);
  ScanResult R0 = S.scanSource(VulnSource);
  EXPECT_FALSE(R0.faulted());
  EXPECT_TRUE(hasCommandInjection(R0));
  ScanResult R1 = S.scanSource(VulnSource);
  EXPECT_TRUE(R1.faulted());
  ScanResult R2 = S.scanSource(VulnSource);
  EXPECT_FALSE(R2.faulted()) << "the fault is one-shot";
  EXPECT_TRUE(hasCommandInjection(R2));
}

//===----------------------------------------------------------------------===//
// Deadline expiry mid-pipeline: deterministic per-phase attribution
//===----------------------------------------------------------------------===//

TEST(DeadlineAttributionTest, MidBuildExpiryIsAttributedToBuild) {
  // Pass 1 (no deadline) measures the deterministic unit sequence: total
  // units T and builder units B. Pass 2 sets the budget to land inside the
  // build phase (T - B/2). Native backend keeps query units at zero, so
  // the build phase is the tail of the sequence.
  scanner::ScanOptions Measure;
  Measure.Backend = scanner::QueryBackend::Native;
  Measure.MaxDegradation = 0;
  ScanResult M = scanner::Scanner(Measure).scanSource(VulnSource);
  ASSERT_TRUE(M.Errors.empty());
  ASSERT_GE(M.BuildWork, 4u);
  ASSERT_GT(M.DeadlineWork, M.BuildWork);

  scanner::ScanOptions O = Measure;
  O.Deadline.WorkUnits = M.DeadlineWork - M.BuildWork / 2;
  ScanResult R = scanner::Scanner(O).scanSource(VulnSource);
  EXPECT_TRUE(R.timedOut());
  EXPECT_TRUE(R.timedOutIn(ScanPhase::Build));
  EXPECT_FALSE(R.timedOutIn(ScanPhase::Parse));
  const ScanError *T = R.firstTimeout();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Kind, ScanErrorKind::Budget);
}

TEST(DeadlineAttributionTest, MidQueryExpiryIsAttributedToQuery) {
  // Same two-pass trick on the GraphDB backend: query-engine matcher steps
  // are the tail of the unit sequence, so a budget of T - Q/2 expires
  // mid-query — and must be reported as a Query timeout, not Build.
  scanner::ScanOptions Measure;
  Measure.MaxDegradation = 0;
  ScanResult M = scanner::Scanner(Measure).scanSource(VulnSource);
  ASSERT_TRUE(M.Errors.empty());
  ASSERT_GE(M.QueryWork, 4u);
  ASSERT_GT(M.DeadlineWork, M.QueryWork);

  scanner::ScanOptions O = Measure;
  O.Deadline.WorkUnits = M.DeadlineWork - M.QueryWork / 2;
  ScanResult R = scanner::Scanner(O).scanSource(VulnSource);
  EXPECT_TRUE(R.timedOut());
  EXPECT_TRUE(R.timedOutIn(ScanPhase::Query));
  EXPECT_FALSE(R.timedOutIn(ScanPhase::Build));
  EXPECT_FALSE(R.timedOutIn(ScanPhase::Import));
}

TEST(DeadlineAttributionTest, LadderTurnsMidQueryTimeoutIntoResults) {
  scanner::ScanOptions Measure;
  Measure.MaxDegradation = 0;
  ScanResult M = scanner::Scanner(Measure).scanSource(VulnSource);
  ASSERT_GE(M.QueryWork, 4u);

  scanner::ScanOptions O;
  O.Deadline.WorkUnits = M.DeadlineWork - M.QueryWork / 2;
  ScanResult R = scanner::Scanner(O).scanSource(VulnSource);
  // Level 1 (native traversals) fits in the same budget: the DB import
  // and matcher steps are gone.
  EXPECT_TRUE(R.timedOut());
  EXPECT_GE(R.Degradation, 1u);
  EXPECT_TRUE(hasCommandInjection(R));
}

TEST(DeadlineAttributionTest, WallClockDeadlineExpiresInParse) {
  scanner::ScanOptions O;
  O.MaxDegradation = 0;
  O.Deadline.WallSeconds = 1e-9;
  ScanResult R = scanner::Scanner(O).scanSource(VulnSource);
  EXPECT_TRUE(R.timedOut());
  EXPECT_TRUE(R.timedOutIn(ScanPhase::Parse));
  const ScanError *T = R.firstTimeout();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Kind, ScanErrorKind::Deadline);
}

TEST(DeadlineAttributionTest, EngineStepBudgetIsAQueryBudgetError) {
  // The query engine's own step budget (satellite of the unified-deadline
  // work): exhausting it must surface as Query/Budget, distinct from a
  // graph-construction timeout.
  scanner::ScanOptions O;
  O.MaxDegradation = 0;
  O.Engine.WorkBudget = 5;
  ScanResult R = scanner::Scanner(O).scanSource(VulnSource);
  EXPECT_TRUE(R.timedOut());
  EXPECT_TRUE(R.timedOutIn(ScanPhase::Query));
  EXPECT_FALSE(R.timedOutIn(ScanPhase::Build));
  const ScanError *T = R.firstTimeout();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Kind, ScanErrorKind::Budget);
  EXPECT_NE(T->Detail.find("query step budget"), std::string::npos);
}

TEST(DeadlineAttributionTest, BuilderBudgetIsABuildBudgetError) {
  scanner::ScanOptions O;
  O.MaxDegradation = 0;
  O.Builder.WorkBudget = 3;
  ScanResult R = scanner::Scanner(O).scanSource(VulnSource);
  EXPECT_TRUE(R.timedOutIn(ScanPhase::Build));
  EXPECT_FALSE(R.timedOutIn(ScanPhase::Query));
}

//===----------------------------------------------------------------------===//
// Per-file parse containment (the scanPackage regression)
//===----------------------------------------------------------------------===//

TEST(ParseContainmentTest, OneBadFileDoesNotDropThePackage) {
  scanner::Scanner S;
  ScanResult R = S.scanPackage({{"broken.js", "function ( { ]"},
                                {"good.js", VulnSource}});
  EXPECT_TRUE(R.parseFailed());
  // The failure is attributed to the file, not the package.
  bool Attributed = false;
  for (const ScanError &E : R.Errors)
    Attributed |= E.Kind == ScanErrorKind::ParseError && E.File == "broken.js";
  EXPECT_TRUE(Attributed);
  // The good file was still scanned: its finding survives.
  EXPECT_TRUE(hasCommandInjection(R));
  // Parse errors are deterministic: no ladder retry.
  EXPECT_EQ(R.Attempts, 1u);
}

TEST(ParseContainmentTest, AllFilesBadYieldsOnlyParseErrors) {
  scanner::Scanner S;
  ScanResult R = S.scanPackage({{"a.js", "function ( {"},
                                {"b.js", "var = = ;"}});
  EXPECT_TRUE(R.parseFailed());
  EXPECT_TRUE(R.Reports.empty());
  EXPECT_EQ(R.MDGNodes, 0u);
}

//===----------------------------------------------------------------------===//
// ODGen under the shared deadline (all-or-nothing contrast)
//===----------------------------------------------------------------------===//

TEST(ODGenDeadlineTest, DeadlineAbortsAndClearsReports) {
  odgen::ODGenOptions OO;
  Deadline D = Deadline::afterWork(3);
  OO.ScanDeadline = &D;
  odgen::ODGenAnalyzer A(OO);
  odgen::ODGenResult R = A.analyze(VulnSource);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_TRUE(R.Reports.empty()) << "ODGen is all-or-nothing under timeout";
}

//===----------------------------------------------------------------------===//
// Batch driver: journal, fault containment, resume
//===----------------------------------------------------------------------===//

TEST(BatchDriverTest, FaultedPackageIsJournaledAndBatchCompletes) {
  std::string Journal = ::testing::TempDir() + "gjs_batch_fault.jsonl";
  std::remove(Journal.c_str());

  driver::BatchOptions BO;
  BO.Scan.Backend = scanner::QueryBackend::Native;
  BO.Scan.Fault = FaultPlan{ScanPhase::Build, FaultPlan::Action::Fail, 1};
  BO.JournalPath = Journal;
  driver::BatchDriver Driver(BO);

  driver::BatchSummary S = Driver.run({makeInput("alpha", VulnSource),
                                       makeInput("beta", VulnSource),
                                       makeInput("gamma", VulnSource)});
  EXPECT_EQ(S.Scanned, 3u);
  EXPECT_EQ(S.Failed, 0u);
  EXPECT_EQ(S.Ok, 2u);
  EXPECT_EQ(S.Degraded, 1u);
  EXPECT_EQ(S.TotalReports, 3u) << "the faulted package recovered via the "
                                   "ladder and still reported";
  ASSERT_EQ(S.Outcomes.size(), 3u);
  EXPECT_TRUE(S.Outcomes[1].Result.faulted());
  EXPECT_GE(S.Outcomes[1].Result.Degradation, 1u);

  std::vector<std::string> Lines = readLines(Journal);
  ASSERT_EQ(Lines.size(), 3u);
  json::Object Beta = parseLine(Lines[1]);
  EXPECT_EQ(Beta.at("package").asString(), "beta");
  EXPECT_EQ(Beta.at("status").asString(), "degraded");
  EXPECT_GE(Beta.at("degradation").asNumber(), 1.0);
  ASSERT_TRUE(Beta.at("errors").isArray());
  ASSERT_FALSE(Beta.at("errors").asArray().empty());
  const json::Object &E = Beta.at("errors").asArray()[0].asObject();
  EXPECT_EQ(E.at("phase").asString(), "build");
  EXPECT_EQ(E.at("kind").asString(), "injected-fault");
  ASSERT_TRUE(Beta.at("reports").isArray());
  EXPECT_FALSE(Beta.at("reports").asArray().empty());

  json::Object Alpha = parseLine(Lines[0]);
  EXPECT_EQ(Alpha.at("status").asString(), "ok");
  EXPECT_TRUE(Alpha.at("errors").asArray().empty());
}

TEST(BatchDriverTest, ResumeSkipsJournaledPackages) {
  std::string Journal = ::testing::TempDir() + "gjs_batch_resume.jsonl";
  std::remove(Journal.c_str());

  std::vector<driver::BatchInput> Inputs = {makeInput("one", VulnSource),
                                            makeInput("two", VulnSource),
                                            makeInput("three", VulnSource)};

  // First run "dies" after two packages (MaxPackages simulates the kill).
  driver::BatchOptions BO;
  BO.Scan.Backend = scanner::QueryBackend::Native;
  BO.JournalPath = Journal;
  BO.MaxPackages = 2;
  driver::BatchSummary First = driver::BatchDriver(BO).run(Inputs);
  EXPECT_EQ(First.Scanned, 2u);
  EXPECT_EQ(driver::BatchDriver::journaledPackages(Journal).size(), 2u);

  // Resume: only the unjournaled package is scanned; the journal grows to
  // cover everything, with no duplicates.
  driver::BatchOptions RO = BO;
  RO.MaxPackages = 0;
  RO.Resume = true;
  driver::BatchSummary Second = driver::BatchDriver(RO).run(Inputs);
  EXPECT_EQ(Second.Scanned, 1u);
  EXPECT_EQ(Second.SkippedResumed, 2u);
  ASSERT_EQ(Second.Outcomes.size(), 3u);
  EXPECT_TRUE(Second.Outcomes[0].Skipped);
  EXPECT_TRUE(Second.Outcomes[1].Skipped);
  EXPECT_FALSE(Second.Outcomes[2].Skipped);

  std::vector<std::string> Lines = readLines(Journal);
  ASSERT_EQ(Lines.size(), 3u);
  std::set<std::string> Names;
  for (const std::string &L : Lines)
    Names.insert(parseLine(L).at("package").asString());
  EXPECT_EQ(Names, (std::set<std::string>{"one", "two", "three"}));
}

TEST(BatchDriverTest, TruncatedJournalLineIsIgnoredOnResume) {
  std::string Journal = ::testing::TempDir() + "gjs_batch_trunc.jsonl";
  {
    std::ofstream Out(Journal, std::ios::trunc);
    Out << R"({"package": "whole", "status": "ok"})" << "\n";
    Out << R"({"package": "torn", "stat)"; // Killed mid-write.
  }
  std::set<std::string> Done =
      driver::BatchDriver::journaledPackages(Journal);
  EXPECT_EQ(Done, std::set<std::string>{"whole"});
}

TEST(BatchDriverTest, ParseErrorsDegradeButDoNotFailTheBatch) {
  driver::BatchOptions BO;
  BO.Scan.Backend = scanner::QueryBackend::Native;
  driver::BatchSummary S = driver::BatchDriver(BO).run(
      {makeInput("bad", "function ( { ]"), makeInput("good", VulnSource)});
  EXPECT_EQ(S.Scanned, 2u);
  EXPECT_EQ(S.Degraded, 1u);
  EXPECT_EQ(S.Ok, 1u);
  EXPECT_EQ(S.Failed, 0u);
  EXPECT_EQ(S.TotalReports, 1u);
}

//===----------------------------------------------------------------------===//
// `graphjs batch` CLI round trips (the end-to-end robustness demo)
//===----------------------------------------------------------------------===//

#if defined(GRAPHJS_BIN) && defined(GJS_EXAMPLES_JS_DIR)

TEST(BatchCLITest, InjectedFaultBatchCompletesRemainingPackages) {
  std::string Journal = ::testing::TempDir() + "gjs_cli_fault.jsonl";
  std::remove(Journal.c_str());
  std::string Cmd = std::string(GRAPHJS_BIN) +
                    " batch --native --max-degradation 0" +
                    " --inject-fault build:fail:0 --journal " + Journal +
                    " " + GJS_EXAMPLES_JS_DIR + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(Cmd.c_str()), 0)
      << "a contained fault must not fail the batch";

  // All four example packages are journaled; the first (alphabetically
  // clean_utils.js) carries the injected-fault error, the rest are clean.
  std::vector<std::string> Lines = readLines(Journal);
  ASSERT_EQ(Lines.size(), 4u);
  json::Object First = parseLine(Lines[0]);
  EXPECT_EQ(First.at("package").asString(), "clean_utils.js");
  EXPECT_EQ(First.at("status").asString(), "degraded");
  const json::Object &E = First.at("errors").asArray().at(0).asObject();
  EXPECT_EQ(E.at("phase").asString(), "build");
  EXPECT_EQ(E.at("kind").asString(), "injected-fault");
  for (size_t I = 1; I < Lines.size(); ++I)
    EXPECT_EQ(parseLine(Lines[I]).at("status").asString(), "ok");
  // figure1.js must still produce its findings despite the earlier fault.
  json::Object Fig1 = parseLine(Lines[1]);
  EXPECT_EQ(Fig1.at("package").asString(), "figure1.js");
  EXPECT_FALSE(Fig1.at("reports").asArray().empty());
}

TEST(BatchCLITest, ResumeAfterKillRescansOnlyUnjournaled) {
  std::string Journal = ::testing::TempDir() + "gjs_cli_resume.jsonl";
  std::remove(Journal.c_str());
  std::string Base = std::string(GRAPHJS_BIN) + " batch --native --journal " +
                     Journal + " ";
  std::string Dir = GJS_EXAMPLES_JS_DIR;

  // "Killed" run: stops after one package.
  EXPECT_EQ(std::system((Base + "--max 1 " + Dir + " > /dev/null 2>&1")
                            .c_str()),
            0);
  EXPECT_EQ(driver::BatchDriver::journaledPackages(Journal).size(), 1u);

  // Resume: the journal ends up covering all four packages exactly once —
  // four lines total proves the journaled package was not re-scanned.
  EXPECT_EQ(std::system((Base + "--resume " + Dir + " > /dev/null 2>&1")
                            .c_str()),
            0);
  std::vector<std::string> Lines = readLines(Journal);
  ASSERT_EQ(Lines.size(), 4u);
  std::set<std::string> Names;
  for (const std::string &L : Lines)
    Names.insert(parseLine(L).at("package").asString());
  EXPECT_EQ(Names.size(), 4u);
}

#endif // GRAPHJS_BIN && GJS_EXAMPLES_JS_DIR
