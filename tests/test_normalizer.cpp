//===- tests/test_normalizer.cpp - Unit tests for AST→Core lowering -------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Normalizer.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::core;

namespace {

std::unique_ptr<Program> normOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto P = normalizeJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return P;
}

/// Collects the statement kinds of a block, recursively flattened.
void flatten(const std::vector<StmtPtr> &Block, std::vector<const Stmt *> &Out) {
  for (const StmtPtr &S : Block) {
    Out.push_back(S.get());
    flatten(S->Then, Out);
    flatten(S->Else, Out);
    flatten(S->Body, Out);
    if (S->K == StmtKind::FuncDef && S->Func)
      flatten(S->Func->Body, Out);
  }
}

std::vector<const Stmt *> allStmts(const Program &P) {
  std::vector<const Stmt *> Out;
  flatten(P.TopLevel, Out);
  return Out;
}

bool hasKind(const Program &P, StmtKind K) {
  for (const Stmt *S : allStmts(P))
    if (S->K == K)
      return true;
  return false;
}

const Stmt *firstOf(const Program &P, StmtKind K) {
  for (const Stmt *S : allStmts(P))
    if (S->K == K)
      return S;
  return nullptr;
}

} // namespace

TEST(NormalizerTest, SimpleAssignment) {
  auto P = normOk("var x = 1; var y = x;");
  ASSERT_EQ(P->TopLevel.size(), 2u);
  EXPECT_EQ(P->TopLevel[0]->K, StmtKind::Assign);
  EXPECT_EQ(P->TopLevel[0]->Target, "x");
  EXPECT_EQ(P->TopLevel[1]->Value.Name, "x");
}

TEST(NormalizerTest, BinOpProducesTemp) {
  auto P = normOk("var z = a + b * c;");
  // b * c first, then a + t.
  ASSERT_GE(P->TopLevel.size(), 3u);
  EXPECT_EQ(P->TopLevel[0]->K, StmtKind::BinOp);
  EXPECT_EQ(P->TopLevel[0]->Op, "*");
  EXPECT_EQ(P->TopLevel[1]->K, StmtKind::BinOp);
  EXPECT_EQ(P->TopLevel[1]->Op, "+");
  EXPECT_EQ(P->TopLevel[2]->K, StmtKind::Assign);
  EXPECT_EQ(P->TopLevel[2]->Target, "z");
}

TEST(NormalizerTest, MemberChainsBecomeLookups) {
  auto P = normOk("var v = o.a.b;");
  auto Stmts = allStmts(*P);
  int Lookups = 0;
  for (const Stmt *S : Stmts)
    if (S->K == StmtKind::StaticLookup)
      ++Lookups;
  EXPECT_EQ(Lookups, 2);
}

TEST(NormalizerTest, DynamicLookupAndUpdate) {
  auto P = normOk("var v = o[k]; o[k2] = 5;");
  EXPECT_TRUE(hasKind(*P, StmtKind::DynamicLookup));
  EXPECT_TRUE(hasKind(*P, StmtKind::DynamicUpdate));
  const Stmt *U = firstOf(*P, StmtKind::DynamicUpdate);
  EXPECT_EQ(U->PropOperand.Name, "k2");
}

TEST(NormalizerTest, ObjectLiteralLowersToNewPlusUpdates) {
  auto P = normOk("var o = {a: 1, b: x};");
  EXPECT_TRUE(hasKind(*P, StmtKind::NewObject));
  auto Stmts = allStmts(*P);
  int Updates = 0;
  for (const Stmt *S : Stmts)
    if (S->K == StmtKind::StaticUpdate)
      ++Updates;
  EXPECT_EQ(Updates, 2);
}

TEST(NormalizerTest, ArrayLiteralUsesIndexProps) {
  auto P = normOk("var a = [x, y];");
  auto Stmts = allStmts(*P);
  std::vector<std::string> Props;
  for (const Stmt *S : Stmts)
    if (S->K == StmtKind::StaticUpdate)
      Props.push_back(S->Prop);
  ASSERT_EQ(Props.size(), 2u);
  EXPECT_EQ(Props[0], "0");
  EXPECT_EQ(Props[1], "1");
}

TEST(NormalizerTest, FunctionsAreRegisteredAndBound) {
  auto P = normOk("function run(a, b) { return a; }");
  ASSERT_EQ(P->Functions.size(), 1u);
  const auto &Fn = P->Functions.begin()->second;
  EXPECT_EQ(Fn->OriginalName, "run");
  ASSERT_EQ(Fn->Params.size(), 2u);
  EXPECT_EQ(Fn->Params[0], "a");
  // The body contains a Return.
  bool HasReturn = false;
  for (const StmtPtr &S : Fn->Body)
    if (S->K == StmtKind::Return)
      HasReturn = true;
  EXPECT_TRUE(HasReturn);
}

TEST(NormalizerTest, ArrowExprBodyGetsReturn) {
  auto P = normOk("var f = x => x + 1;");
  ASSERT_EQ(P->Functions.size(), 1u);
  const auto &Fn = P->Functions.begin()->second;
  bool HasReturn = false;
  for (const StmtPtr &S : Fn->Body)
    if (S->K == StmtKind::Return)
      HasReturn = true;
  EXPECT_TRUE(HasReturn);
}

TEST(NormalizerTest, CallRecordsCalleeNameAndPath) {
  auto P = normOk("var cp = require('child_process');\n"
                  "cp.exec('ls');\n");
  const Stmt *Call = nullptr;
  for (const Stmt *S : allStmts(*P))
    if (S->K == StmtKind::Call)
      Call = S;
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->CalleeName, "exec");
  EXPECT_EQ(Call->CalleePath, "child_process.exec");
  ASSERT_EQ(Call->Args.size(), 1u);
}

TEST(NormalizerTest, DestructuredRequireAliases) {
  auto P = normOk("const { exec } = require('child_process'); exec(c);");
  EXPECT_EQ(P->RequireAliases.at("exec"), "child_process.exec");
  const Stmt *Call = firstOf(*P, StmtKind::Call);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->CalleePath, "child_process.exec");
}

TEST(NormalizerTest, ModuleExportsFunction) {
  auto P = normOk("function f(x) { return x; } module.exports = f;");
  ASSERT_EQ(P->Exports.size(), 1u);
  EXPECT_EQ(P->Exports[0].ExportName, "default");
  EXPECT_FALSE(P->Exports[0].FunctionName.empty());
}

TEST(NormalizerTest, ExportsNamedFunction) {
  auto P = normOk("exports.run = function(x) { return x; };");
  ASSERT_EQ(P->Exports.size(), 1u);
  EXPECT_EQ(P->Exports[0].ExportName, "run");
}

TEST(NormalizerTest, ModuleExportsObjectLiteral) {
  auto P = normOk("function a(x) {} function b(y) {}\n"
                  "module.exports = {a: a, bee: b};");
  ASSERT_EQ(P->Exports.size(), 2u);
}

TEST(NormalizerTest, ModuleExportsDotName) {
  auto P = normOk("module.exports.go = function(x) { return x; };");
  ASSERT_EQ(P->Exports.size(), 1u);
  EXPECT_EQ(P->Exports[0].ExportName, "go");
}

TEST(NormalizerTest, ForLoopBecomesWhile) {
  auto P = normOk("for (var i = 0; i < 10; i++) { f(i); }");
  const Stmt *W = firstOf(*P, StmtKind::While);
  ASSERT_NE(W, nullptr);
  // Body contains the call, the update, and the re-evaluated condition.
  bool HasCall = false;
  for (const StmtPtr &S : W->Body)
    if (S->K == StmtKind::Call)
      HasCall = true;
  EXPECT_TRUE(HasCall);
}

TEST(NormalizerTest, ForInDependsOnObject) {
  auto P = normOk("for (var k in obj) { use(k); }");
  const Stmt *W = firstOf(*P, StmtKind::While);
  ASSERT_NE(W, nullptr);
  // First stmt in body binds k with a dependency on obj.
  ASSERT_FALSE(W->Body.empty());
  EXPECT_EQ(W->Body[0]->K, StmtKind::UnOp);
  EXPECT_EQ(W->Body[0]->Target, "k");
  EXPECT_EQ(W->Body[0]->Value.Name, "obj");
}

TEST(NormalizerTest, ForOfIsUnknownPropertyLookup) {
  auto P = normOk("for (const v of list) { use(v); }");
  const Stmt *W = firstOf(*P, StmtKind::While);
  ASSERT_NE(W, nullptr);
  ASSERT_FALSE(W->Body.empty());
  EXPECT_EQ(W->Body[0]->K, StmtKind::DynamicLookup);
  EXPECT_EQ(W->Body[0]->Target, "v");
}

TEST(NormalizerTest, ConditionalBecomesIfJoin) {
  auto P = normOk("var x = c ? a : b;");
  const Stmt *I = firstOf(*P, StmtKind::If);
  ASSERT_NE(I, nullptr);
  ASSERT_FALSE(I->Then.empty());
  ASSERT_FALSE(I->Else.empty());
  // Both branches assign the same temp.
  EXPECT_EQ(I->Then.back()->Target, I->Else.back()->Target);
}

TEST(NormalizerTest, TemplateLowersToConcat) {
  auto P = normOk("var s = `git reset HEAD~${n}`;");
  const Stmt *B = firstOf(*P, StmtKind::BinOp);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Op, "+");
  EXPECT_EQ(B->LHS.Name, "git reset HEAD~");
  EXPECT_EQ(B->RHS.Name, "n");
}

TEST(NormalizerTest, DestructuringDeclaration) {
  auto P = normOk("var {a, b: c} = src;");
  auto Stmts = allStmts(*P);
  std::vector<std::pair<std::string, std::string>> Bindings;
  for (const Stmt *S : Stmts)
    if (S->K == StmtKind::StaticLookup)
      Bindings.push_back({S->Target, S->Prop});
  ASSERT_EQ(Bindings.size(), 2u);
  EXPECT_EQ(Bindings[0].first, "a");
  EXPECT_EQ(Bindings[0].second, "a");
  EXPECT_EQ(Bindings[1].first, "c");
  EXPECT_EQ(Bindings[1].second, "b");
}

TEST(NormalizerTest, TryCatchLowersSequentially) {
  auto P = normOk("try { f(); } catch (e) { g(e); }");
  auto Stmts = allStmts(*P);
  int Calls = 0;
  bool CatchParamBound = false;
  for (const Stmt *S : Stmts) {
    if (S->K == StmtKind::Call)
      ++Calls;
    if (S->K == StmtKind::NewObject && S->Target == "e")
      CatchParamBound = true;
  }
  EXPECT_EQ(Calls, 2);
  EXPECT_TRUE(CatchParamBound);
}

TEST(NormalizerTest, ClassLowersToConstructorAndPrototype) {
  auto P = normOk("class A { constructor(x) { this.x = x; } m(y) { return y; } }");
  EXPECT_EQ(P->Functions.size(), 2u);
  bool HasProtoUpdate = false;
  for (const Stmt *S : allStmts(*P))
    if (S->K == StmtKind::StaticUpdate && S->Prop == "prototype")
      HasProtoUpdate = true;
  EXPECT_TRUE(HasProtoUpdate);
}

TEST(NormalizerTest, ExportedClassExportsMethods) {
  auto P = normOk("class A { constructor() {} run(x) { return x; } }\n"
                  "module.exports = A;");
  // Constructor + run exported.
  EXPECT_GE(P->Exports.size(), 2u);
}

TEST(NormalizerTest, StatementIndicesAreUnique) {
  auto P = normOk("var a = {x: 1}; var b = {y: 2}; f(a, b);");
  std::set<StmtIndex> Seen;
  for (const Stmt *S : allStmts(*P)) {
    EXPECT_TRUE(Seen.insert(S->Index).second)
        << "duplicate index " << S->Index;
  }
}

TEST(NormalizerTest, Figure1LowersCompletely) {
  auto P = normOk(
      "const { exec } = require('child_process');\n"
      "function git_reset(config, op, branch_name, url) {\n"
      "  var options = config[op];\n"
      "  options[branch_name] = url;\n"
      "  options.cmd = 'git reset';\n"
      "  exec(options.cmd + ' HEAD~' + options.commit);\n"
      "}\n"
      "module.exports = git_reset;\n");
  ASSERT_EQ(P->Exports.size(), 1u);
  const auto &Fn = *P->Functions.at(P->Exports[0].FunctionName);
  EXPECT_EQ(Fn.Params.size(), 4u);
  // Body has the dynamic lookup, dynamic update, static update, and call.
  std::vector<const Stmt *> Out;
  flatten(Fn.Body, Out);
  bool DL = false, DU = false, SU = false, Call = false;
  for (const Stmt *S : Out) {
    DL |= S->K == StmtKind::DynamicLookup;
    DU |= S->K == StmtKind::DynamicUpdate;
    SU |= S->K == StmtKind::StaticUpdate;
    Call |= S->K == StmtKind::Call && S->CalleeName == "exec";
  }
  EXPECT_TRUE(DL && DU && SU && Call);
}

TEST(NormalizerTest, DumpIsReadable) {
  auto P = normOk("var x = a.b;");
  std::string D = dump(*P);
  EXPECT_NE(D.find(":="), std::string::npos);
  EXPECT_NE(D.find(".b"), std::string::npos);
}
