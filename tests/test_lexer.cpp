//===- tests/test_lexer.cpp - Unit tests for the JavaScript lexer ---------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace gjs;

namespace {

std::vector<Token> lex(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::string &Source) {
  std::vector<TokenKind> Ks;
  for (const Token &T : lex(Source))
    Ks.push_back(T.Kind);
  return Ks;
}

} // namespace

TEST(LexerTest, Identifiers) {
  auto Ts = lex("foo _bar $baz qux1");
  ASSERT_EQ(Ts.size(), 5u);
  EXPECT_EQ(Ts[0].Text, "foo");
  EXPECT_EQ(Ts[1].Text, "_bar");
  EXPECT_EQ(Ts[2].Text, "$baz");
  EXPECT_EQ(Ts[3].Text, "qux1");
  EXPECT_EQ(Ts[4].Kind, TokenKind::EndOfFile);
}

TEST(LexerTest, KeywordsAreDistinguished) {
  auto Ks = kinds("var let const function if while return");
  EXPECT_EQ(Ks[0], TokenKind::KwVar);
  EXPECT_EQ(Ks[1], TokenKind::KwLet);
  EXPECT_EQ(Ks[2], TokenKind::KwConst);
  EXPECT_EQ(Ks[3], TokenKind::KwFunction);
  EXPECT_EQ(Ks[4], TokenKind::KwIf);
  EXPECT_EQ(Ks[5], TokenKind::KwWhile);
  EXPECT_EQ(Ks[6], TokenKind::KwReturn);
}

TEST(LexerTest, Numbers) {
  auto Ts = lex("42 3.14 0x1f 1e3 0b101 0o17 1_000");
  EXPECT_DOUBLE_EQ(Ts[0].NumberValue, 42);
  EXPECT_DOUBLE_EQ(Ts[1].NumberValue, 3.14);
  EXPECT_DOUBLE_EQ(Ts[2].NumberValue, 31);
  EXPECT_DOUBLE_EQ(Ts[3].NumberValue, 1000);
  EXPECT_DOUBLE_EQ(Ts[4].NumberValue, 5);
  EXPECT_DOUBLE_EQ(Ts[5].NumberValue, 15);
  EXPECT_DOUBLE_EQ(Ts[6].NumberValue, 1000);
}

TEST(LexerTest, Strings) {
  auto Ts = lex(R"('hello' "wor\"ld" 'a\nb')");
  EXPECT_EQ(Ts[0].Text, "hello");
  EXPECT_EQ(Ts[1].Text, "wor\"ld");
  EXPECT_EQ(Ts[2].Text, "a\nb");
}

TEST(LexerTest, UnicodeEscapes) {
  auto Ts = lex(R"('A\x42')");
  EXPECT_EQ(Ts[0].Text, "AB");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Ts = lex("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(Ts.size(), 4u);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[1].Text, "b");
  EXPECT_TRUE(Ts[1].NewlineBefore);
  EXPECT_EQ(Ts[2].Text, "c");
  EXPECT_TRUE(Ts[2].NewlineBefore);
}

TEST(LexerTest, MultiCharOperators) {
  auto Ks = kinds("=== !== => ... ?. ?? ** >>> <<= &&= ||= ?\?=");
  EXPECT_EQ(Ks[0], TokenKind::StrictEqual);
  EXPECT_EQ(Ks[1], TokenKind::StrictNotEqual);
  EXPECT_EQ(Ks[2], TokenKind::Arrow);
  EXPECT_EQ(Ks[3], TokenKind::DotDotDot);
  EXPECT_EQ(Ks[4], TokenKind::QuestionDot);
  EXPECT_EQ(Ks[5], TokenKind::QuestionQuestion);
  EXPECT_EQ(Ks[6], TokenKind::StarStar);
  EXPECT_EQ(Ks[7], TokenKind::URShift);
  EXPECT_EQ(Ks[8], TokenKind::LShiftAssign);
  EXPECT_EQ(Ks[9], TokenKind::AmpAmpAssign);
  EXPECT_EQ(Ks[10], TokenKind::PipePipeAssign);
  EXPECT_EQ(Ks[11], TokenKind::QuestionQuestionAssign);
}

TEST(LexerTest, RegExpVsDivision) {
  // After an identifier, '/' is division; after '=', it starts a regexp.
  auto Ts1 = lex("a / b");
  EXPECT_EQ(Ts1[1].Kind, TokenKind::Slash);
  auto Ts2 = lex("x = /ab+c/gi");
  EXPECT_EQ(Ts2[2].Kind, TokenKind::RegExpLiteral);
  EXPECT_EQ(Ts2[2].Text, "/ab+c/gi");
  auto Ts3 = lex("f(/x/)");
  EXPECT_EQ(Ts3[2].Kind, TokenKind::RegExpLiteral);
}

TEST(LexerTest, RegExpWithCharacterClassSlash) {
  auto Ts = lex("x = /[/]/");
  EXPECT_EQ(Ts[2].Kind, TokenKind::RegExpLiteral);
  EXPECT_EQ(Ts[2].Text, "/[/]/");
}

TEST(LexerTest, SimpleTemplate) {
  auto Ts = lex("`hello`");
  EXPECT_EQ(Ts[0].Kind, TokenKind::TemplateString);
  EXPECT_EQ(Ts[0].Text, "hello");
}

TEST(LexerTest, TemplateWithSubstitutions) {
  auto Ts = lex("`a${x}b${y}c`");
  ASSERT_GE(Ts.size(), 6u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::TemplateHead);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Ts[2].Kind, TokenKind::TemplateMiddle);
  EXPECT_EQ(Ts[2].Text, "b");
  EXPECT_EQ(Ts[3].Kind, TokenKind::Identifier);
  EXPECT_EQ(Ts[4].Kind, TokenKind::TemplateTail);
  EXPECT_EQ(Ts[4].Text, "c");
}

TEST(LexerTest, TemplateWithNestedBraces) {
  // The object literal's braces inside the substitution must not terminate
  // the template.
  auto Ts = lex("`v${ {a: 1}.a }w`");
  EXPECT_EQ(Ts[0].Kind, TokenKind::TemplateHead);
  EXPECT_EQ(Ts.back().Kind, TokenKind::EndOfFile);
  bool SawTail = false;
  for (const Token &T : Ts)
    if (T.Kind == TokenKind::TemplateTail) {
      SawTail = true;
      EXPECT_EQ(T.Text, "w");
    }
  EXPECT_TRUE(SawTail);
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  auto Ts = lex("a\n  b");
  EXPECT_EQ(Ts[0].Loc, SourceLocation(1, 1));
  EXPECT_EQ(Ts[1].Loc, SourceLocation(2, 3));
}

TEST(LexerTest, NewlineBeforeFlagForASI) {
  auto Ts = lex("return\nx");
  EXPECT_FALSE(Ts[0].NewlineBefore);
  EXPECT_TRUE(Ts[1].NewlineBefore);
}

TEST(LexerTest, ShebangIsSkipped) {
  auto Ts = lex("#!/usr/bin/env node\nvar x");
  EXPECT_EQ(Ts[0].Kind, TokenKind::KwVar);
}

TEST(LexerTest, UnterminatedStringReportsError) {
  DiagnosticEngine Diags;
  Lexer L("'abc", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}
