//===- tests/test_parser.cpp - Unit tests for the JavaScript parser -------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::ast;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto P = parseJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << "source:\n" << Source << "\ndiags:\n"
                                  << Diags.str();
  return P;
}

/// Parses and returns the dump; convenient for structure assertions.
std::string parseDump(const std::string &Source) {
  auto P = parseOk(Source);
  return dump(*P);
}

} // namespace

TEST(ParserTest, VariableDeclarations) {
  std::string D = parseDump("var a = 1; let b = 'x'; const c = a;");
  EXPECT_NE(D.find("VarDecl var"), std::string::npos);
  EXPECT_NE(D.find("VarDecl let"), std::string::npos);
  EXPECT_NE(D.find("VarDecl const"), std::string::npos);
  EXPECT_NE(D.find("Declarator a"), std::string::npos);
}

TEST(ParserTest, OperatorPrecedence) {
  // a + b * c parses as a + (b * c).
  auto P = parseOk("x = a + b * c;");
  auto *ES = cast<ExpressionStatement>(P->Body[0].get());
  auto *Assign = cast<AssignmentExpr>(ES->Expression.get());
  auto *Add = cast<BinaryExpr>(Assign->Value.get());
  EXPECT_EQ(Add->Op, BinaryOperator::Add);
  auto *Mul = cast<BinaryExpr>(Add->RHS.get());
  EXPECT_EQ(Mul->Op, BinaryOperator::Mul);
}

TEST(ParserTest, ExponentIsRightAssociative) {
  auto P = parseOk("x = a ** b ** c;");
  auto *ES = cast<ExpressionStatement>(P->Body[0].get());
  auto *Assign = cast<AssignmentExpr>(ES->Expression.get());
  auto *Outer = cast<BinaryExpr>(Assign->Value.get());
  EXPECT_EQ(Outer->Op, BinaryOperator::Pow);
  EXPECT_TRUE(isa<Identifier>(Outer->LHS.get()));
  EXPECT_TRUE(isa<BinaryExpr>(Outer->RHS.get()));
}

TEST(ParserTest, MemberAccessChains) {
  auto P = parseOk("a.b.c[d].e;");
  auto *ES = cast<ExpressionStatement>(P->Body[0].get());
  auto *E = cast<MemberExpr>(ES->Expression.get());
  EXPECT_FALSE(E->Computed);
  EXPECT_EQ(E->Name, "e");
  auto *Computed = cast<MemberExpr>(E->Object.get());
  EXPECT_TRUE(Computed->Computed);
}

TEST(ParserTest, CallsWithArguments) {
  auto P = parseOk("exec(cmd, {shell: true}, cb);");
  auto *ES = cast<ExpressionStatement>(P->Body[0].get());
  auto *C = cast<CallExpr>(ES->Expression.get());
  EXPECT_EQ(C->Arguments.size(), 3u);
  EXPECT_TRUE(isa<ObjectLiteral>(C->Arguments[1].get()));
}

TEST(ParserTest, FunctionDeclarationAndParams) {
  auto P = parseOk("function f(a, b = 1, ...rest) { return a; }");
  auto *FD = cast<FunctionDeclaration>(P->Body[0].get());
  auto *F = cast<FunctionExpr>(FD->Function.get());
  EXPECT_EQ(F->Name, "f");
  ASSERT_EQ(F->Params.size(), 3u);
  EXPECT_EQ(F->Params[0].Name, "a");
  EXPECT_NE(F->Params[1].Default, nullptr);
  EXPECT_TRUE(F->Params[2].Rest);
}

TEST(ParserTest, ArrowFunctions) {
  auto P = parseOk("var f = x => x + 1; var g = (a, b) => { return a; };");
  auto *V1 = cast<VariableDeclaration>(P->Body[0].get());
  EXPECT_TRUE(isa<ArrowFunctionExpr>(V1->Declarators[0].Init.get()));
  auto *V2 = cast<VariableDeclaration>(P->Body[1].get());
  auto *G = cast<ArrowFunctionExpr>(V2->Declarators[0].Init.get());
  EXPECT_EQ(G->Params.size(), 2u);
  EXPECT_NE(G->Body, nullptr);
}

TEST(ParserTest, ParenthesizedExpressionIsNotArrow) {
  auto P = parseOk("var y = (a + b) * c;");
  auto *V = cast<VariableDeclaration>(P->Body[0].get());
  EXPECT_TRUE(isa<BinaryExpr>(V->Declarators[0].Init.get()));
}

TEST(ParserTest, ObjectLiteralForms) {
  auto P = parseOk(
      "var o = {a: 1, 'b-c': 2, [k]: 3, shorthand, method() { return 0; }};");
  auto *V = cast<VariableDeclaration>(P->Body[0].get());
  auto *O = cast<ObjectLiteral>(V->Declarators[0].Init.get());
  ASSERT_EQ(O->Properties.size(), 5u);
  EXPECT_EQ(O->Properties[0].Name, "a");
  EXPECT_EQ(O->Properties[1].Name, "b-c");
  EXPECT_TRUE(O->Properties[2].Computed);
  EXPECT_EQ(O->Properties[3].Name, "shorthand");
  EXPECT_TRUE(isa<Identifier>(O->Properties[3].Value.get()));
  EXPECT_TRUE(isa<FunctionExpr>(O->Properties[4].Value.get()));
}

TEST(ParserTest, ArrayLiteralWithHolesAndSpread) {
  auto P = parseOk("var a = [1, , 2, ...rest];");
  auto *V = cast<VariableDeclaration>(P->Body[0].get());
  auto *A = cast<ArrayLiteral>(V->Declarators[0].Init.get());
  ASSERT_EQ(A->Elements.size(), 4u);
  EXPECT_EQ(A->Elements[1], nullptr);
  EXPECT_TRUE(isa<SpreadElement>(A->Elements[3].get()));
}

TEST(ParserTest, ControlFlowStatements) {
  std::string D = parseDump(
      "if (x) { y(); } else z();"
      "while (a) b();"
      "do { c(); } while (d);"
      "for (var i = 0; i < 10; i++) f(i);"
      "switch (v) { case 1: g(); break; default: h(); }");
  EXPECT_NE(D.find("If"), std::string::npos);
  EXPECT_NE(D.find("While"), std::string::npos);
  EXPECT_NE(D.find("DoWhile"), std::string::npos);
  EXPECT_NE(D.find("For"), std::string::npos);
  EXPECT_NE(D.find("Switch"), std::string::npos);
}

TEST(ParserTest, ForInAndForOf) {
  auto P = parseOk("for (var k in obj) use(k); for (const v of list) use(v);");
  auto *FI = cast<ForInOfStatement>(P->Body[0].get());
  EXPECT_EQ(FI->kind(), Stmt::Kind::ForIn);
  EXPECT_EQ(FI->Variable, "k");
  EXPECT_TRUE(FI->Declares);
  auto *FO = cast<ForInOfStatement>(P->Body[1].get());
  EXPECT_EQ(FO->kind(), Stmt::Kind::ForOf);
  EXPECT_EQ(FO->Variable, "v");
}

TEST(ParserTest, ForOfWithDestructuringHead) {
  auto P = parseOk("for (const [k, v] of Object.entries(o)) use(k, v);");
  auto *F = cast<ForInOfStatement>(P->Body[0].get());
  EXPECT_TRUE(F->Variable.empty());
  ASSERT_NE(F->Pattern, nullptr);
  EXPECT_TRUE(isa<ArrayLiteral>(F->Pattern.get()));
}

TEST(ParserTest, TryCatchFinally) {
  auto P = parseOk("try { f(); } catch (e) { g(e); } finally { h(); }");
  auto *T = cast<TryStatement>(P->Body[0].get());
  EXPECT_EQ(T->CatchParam, "e");
  EXPECT_NE(T->Handler, nullptr);
  EXPECT_NE(T->Finalizer, nullptr);
}

TEST(ParserTest, OptionalCatchBinding) {
  auto P = parseOk("try { f(); } catch { g(); }");
  auto *T = cast<TryStatement>(P->Body[0].get());
  EXPECT_TRUE(T->CatchParam.empty());
  EXPECT_NE(T->Handler, nullptr);
}

TEST(ParserTest, TemplateLiterals) {
  auto P = parseOk("var s = `git reset HEAD~${commit}`;");
  auto *V = cast<VariableDeclaration>(P->Body[0].get());
  auto *T = cast<TemplateLiteral>(V->Declarators[0].Init.get());
  ASSERT_EQ(T->Quasis.size(), 2u);
  EXPECT_EQ(T->Quasis[0], "git reset HEAD~");
  ASSERT_EQ(T->Substitutions.size(), 1u);
  EXPECT_TRUE(isa<Identifier>(T->Substitutions[0].get()));
}

TEST(ParserTest, NewExpressions) {
  auto P = parseOk("var x = new Foo(1); var y = new Bar; var z = new a.B();");
  auto *V1 = cast<VariableDeclaration>(P->Body[0].get());
  auto *N1 = cast<NewExpr>(V1->Declarators[0].Init.get());
  EXPECT_EQ(N1->Arguments.size(), 1u);
  auto *V2 = cast<VariableDeclaration>(P->Body[1].get());
  EXPECT_TRUE(isa<NewExpr>(V2->Declarators[0].Init.get()));
  auto *V3 = cast<VariableDeclaration>(P->Body[2].get());
  auto *N3 = cast<NewExpr>(V3->Declarators[0].Init.get());
  EXPECT_TRUE(isa<MemberExpr>(N3->Callee.get()));
}

TEST(ParserTest, ClassesWithMethods) {
  auto P = parseOk("class A extends B { constructor(x) { this.x = x; } "
                   "run() { return this.x; } static make() { return new A(1); } }");
  auto *CD = cast<ClassDeclaration>(P->Body[0].get());
  auto *C = cast<ClassExpr>(CD->Class.get());
  EXPECT_EQ(C->Name, "A");
  ASSERT_EQ(C->Members.size(), 3u);
  EXPECT_TRUE(C->Members[0].IsConstructor);
  EXPECT_TRUE(C->Members[2].IsStatic);
}

TEST(ParserTest, AutomaticSemicolonInsertion) {
  auto P = parseOk("var a = 1\nvar b = 2\nf()\n");
  EXPECT_EQ(P->Body.size(), 3u);
}

TEST(ParserTest, ReturnWithNewlineReturnsUndefined) {
  auto P = parseOk("function f() { return\n1; }");
  auto *FD = cast<FunctionDeclaration>(P->Body[0].get());
  auto *F = cast<FunctionExpr>(FD->Function.get());
  auto *B = cast<BlockStatement>(F->Body.get());
  auto *R = cast<ReturnStatement>(B->Body[0].get());
  EXPECT_EQ(R->Argument, nullptr);
}

TEST(ParserTest, LogicalAndConditional) {
  auto P = parseOk("var x = a && b || c ?? d; var y = p ? q : r;");
  auto *V1 = cast<VariableDeclaration>(P->Body[0].get());
  EXPECT_TRUE(isa<LogicalExpr>(V1->Declarators[0].Init.get()));
  auto *V2 = cast<VariableDeclaration>(P->Body[1].get());
  EXPECT_TRUE(isa<ConditionalExpr>(V2->Declarators[0].Init.get()));
}

TEST(ParserTest, CompoundAndLogicalAssignment) {
  auto P = parseOk("a += 2; b ||= c;");
  auto *A1 = cast<AssignmentExpr>(
      cast<ExpressionStatement>(P->Body[0].get())->Expression.get());
  EXPECT_TRUE(A1->IsCompound);
  EXPECT_EQ(A1->CompoundOp, BinaryOperator::Add);
  auto *A2 = cast<AssignmentExpr>(
      cast<ExpressionStatement>(P->Body[1].get())->Expression.get());
  EXPECT_TRUE(A2->IsLogical);
  EXPECT_EQ(A2->LogicalOp, LogicalOperator::Or);
}

TEST(ParserTest, DestructuringDeclarations) {
  auto P = parseOk("var {a, b: c} = o; var [x, y] = arr;");
  auto *V1 = cast<VariableDeclaration>(P->Body[0].get());
  EXPECT_TRUE(V1->Declarators[0].Name.empty());
  EXPECT_TRUE(isa<ObjectLiteral>(V1->Declarators[0].Pattern.get()));
  auto *V2 = cast<VariableDeclaration>(P->Body[1].get());
  EXPECT_TRUE(isa<ArrayLiteral>(V2->Declarators[0].Pattern.get()));
}

TEST(ParserTest, RequireAndModuleExports) {
  // The idiomatic npm package skeleton must parse exactly.
  auto P = parseOk("var cp = require('child_process');\n"
                   "function run(cmd) { cp.exec(cmd); }\n"
                   "module.exports = run;\n"
                   "module.exports.other = function(x) { return x; };\n");
  EXPECT_EQ(P->Body.size(), 4u);
}

TEST(ParserTest, MotivatingExampleFromFigure1) {
  // Figure 1a of the paper.
  auto P = parseOk(
      "const { exec } = require('child_process');\n"
      "function git_reset(config, op, branch_name, url) {\n"
      "  var options = config[op];\n"
      "  options[branch_name] = url;\n"
      "  options.cmd = 'git reset';\n"
      "  exec(options.cmd + ' HEAD~' + options.commit);\n"
      "}\n"
      "module.exports = git_reset;\n");
  EXPECT_EQ(P->Body.size(), 3u);
}

TEST(ParserTest, AsyncAwait) {
  auto P = parseOk("async function f(u) { var r = await fetch(u); return r; }"
                   "var g = async (x) => { await x; };");
  auto *FD = cast<FunctionDeclaration>(P->Body[0].get());
  EXPECT_TRUE(cast<FunctionExpr>(FD->Function.get())->IsAsync);
}

TEST(ParserTest, KeywordsAsPropertyNames) {
  auto P = parseOk("o.delete(); o.in = 1; var p = {if: 1, for: 2};");
  EXPECT_EQ(P->Body.size(), 3u);
}

TEST(ParserTest, LabeledStatementAndBreak) {
  auto P = parseOk("outer: for (;;) { break outer; }");
  EXPECT_TRUE(isa<LabeledStatement>(P->Body[0].get()));
}

TEST(ParserTest, SequenceExpression) {
  auto P = parseOk("x = (a, b, c);");
  auto *A = cast<AssignmentExpr>(
      cast<ExpressionStatement>(P->Body[0].get())->Expression.get());
  EXPECT_TRUE(isa<SequenceExpr>(A->Value.get()));
}

TEST(ParserTest, ErrorRecoveryProducesDiagnosticsNotCrashes) {
  DiagnosticEngine Diags;
  auto P = parseJS("var = ; function ( { ]", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(P, nullptr);
}

TEST(ParserTest, SetValueCaseStudyFromFigure8) {
  // Figure 8 of the paper (set-value v3.0.0, CVE-2021-23440).
  auto P = parseOk(
      "function set_value(target, prop, value) {\n"
      "  const path = prop.split('.');\n"
      "  const len = path.length;\n"
      "  var obj = target;\n"
      "  for (var i = 0; i < len; i++) {\n"
      "    const p = path[i];\n"
      "    if (i === len - 1) {\n"
      "      obj[p] = value;\n"
      "    }\n"
      "    obj = obj[p];\n"
      "  }\n"
      "  return target;\n"
      "}\n"
      "module.exports = set_value;\n");
  EXPECT_EQ(P->Body.size(), 2u);
}

TEST(ParserTest, NodeCountIsPositive) {
  auto P = parseOk("function f(a) { return a + 1; }");
  EXPECT_GT(countNodes(*P), 5u);
}

//===----------------------------------------------------------------------===//
// Additional edge cases
//===----------------------------------------------------------------------===//

TEST(ParserTest, GetterSetterInObjectLiteral) {
  auto P = parseOk("var o = {get size() { return 1; }, "
                   "set size(v) { this.v = v; }};");
  auto *V = cast<VariableDeclaration>(P->Body[0].get());
  auto *O = cast<ObjectLiteral>(V->Declarators[0].Init.get());
  EXPECT_EQ(O->Properties.size(), 2u);
  EXPECT_TRUE(isa<FunctionExpr>(O->Properties[0].Value.get()));
}

TEST(ParserTest, GetAndSetAsPlainNames) {
  auto P = parseOk("var get = 1; var set = 2; o.get = get; f(set);");
  EXPECT_EQ(P->Body.size(), 4u);
}

TEST(ParserTest, RegExpAfterKeywordAndComma) {
  auto P = parseOk("var a = [/x/, /y/g]; if (s.match(/z/)) { f(); }\n"
                   "return0 = typeof /q/;");
  EXPECT_GE(P->Body.size(), 3u);
}

TEST(ParserTest, NestedTemplatesAndBraces) {
  auto P = parseOk("var s = `a${ `b${x}c` }d${ {k: 1}.k }e`;");
  auto *V = cast<VariableDeclaration>(P->Body[0].get());
  auto *T = cast<TemplateLiteral>(V->Declarators[0].Init.get());
  EXPECT_EQ(T->Substitutions.size(), 2u);
  EXPECT_TRUE(isa<TemplateLiteral>(T->Substitutions[0].get()));
}

TEST(ParserTest, CommaInForHeadAndCalls) {
  auto P = parseOk("for (var i = 0, n = a.length; i < n; i++, j--) f(i);");
  EXPECT_TRUE(isa<ForStatement>(P->Body[0].get()));
}

TEST(ParserTest, ChainedOptionalAccess) {
  auto P = parseOk("var v = a?.b?.[k]?.(x);");
  auto *V = cast<VariableDeclaration>(P->Body[0].get());
  auto *C = cast<CallExpr>(V->Declarators[0].Init.get());
  EXPECT_TRUE(C->Optional);
}

TEST(ParserTest, IIFEAndParenthesizedFunction) {
  auto P = parseOk("(function() { init(); })();\n"
                   "(function named(x) { return x; })(1);");
  EXPECT_EQ(P->Body.size(), 2u);
}

TEST(ParserTest, DoubleNewAndMemberNew) {
  auto P = parseOk("var a = new new Factory()(); var b = new ns.T[k](1);");
  EXPECT_EQ(P->Body.size(), 2u);
}

TEST(ParserTest, ThrowNewError) {
  auto P = parseOk("function f(x) { if (!x) { throw new Error('bad ' + x); } "
                   "return x; }");
  EXPECT_EQ(P->Body.size(), 1u);
}

TEST(ParserTest, DeeplyNestedDestructuring) {
  auto P = parseOk("var {a: {b: {c}}, d: [e, {f}]} = src;");
  auto *V = cast<VariableDeclaration>(P->Body[0].get());
  EXPECT_TRUE(isa<ObjectLiteral>(V->Declarators[0].Pattern.get()));
}

TEST(ParserTest, HexFloatsAndEdgsNumbers) {
  auto P = parseOk("var a = 0xFF + .5 + 1e-3 + 0b11;");
  EXPECT_EQ(P->Body.size(), 1u);
}

TEST(ParserTest, KeywordPropertyShorthandMethods) {
  auto P = parseOk("var api = {delete(id) { return id; }, "
                   "new: 1, in: 2, class: 3};");
  auto *V = cast<VariableDeclaration>(P->Body[0].get());
  auto *O = cast<ObjectLiteral>(V->Declarators[0].Init.get());
  EXPECT_EQ(O->Properties.size(), 4u);
}

TEST(ParserTest, GeneratorsAndYield) {
  auto P = parseOk("function* gen(a) { yield a; yield* other(); "
                   "var v = yield; return v; }");
  auto *FD = cast<FunctionDeclaration>(P->Body[0].get());
  EXPECT_TRUE(cast<FunctionExpr>(FD->Function.get())->IsGenerator);
}

TEST(ParserTest, ExportDefaultBecomesModuleExports) {
  auto P = parseOk("export default function run(x) { return x; }");
  // Lowered to module.exports = <fn>.
  auto *ES = cast<ExpressionStatement>(P->Body[0].get());
  auto *A = cast<AssignmentExpr>(ES->Expression.get());
  auto *M = cast<MemberExpr>(A->Target.get());
  EXPECT_EQ(M->Name, "exports");
}
