#!/bin/sh
# Smoke test for crash-safe distributed draining: two `graphjs batch
# --shared` supervisors share one on-disk ledger over the examples corpus;
# the first SIGKILLs itself mid-drain (--chaos-kill-after), the second
# steals the orphaned lease and converges. The merged corpus journal must
# carry exactly one terminal record per package.
set -e

BIN="$1"
CORPUS="$2"
LEDGER="/tmp/gjs_chaos_smoke_$$"
rm -rf "$LEDGER"
trap 'rm -rf "$LEDGER"' EXIT

# Supervisor 1 dies by its own hand right after its second start record:
# a SIGKILL exit (137) is the expected outcome, not a failure.
set +e
"$BIN" batch --quiet --shared "$LEDGER" --shard-size 1 \
  --lease-expiry-ms 300 --chaos-kill-after 1 --supervisor-id victim \
  "$CORPUS" > /dev/null 2>&1
RC=$?
set -e
[ "$RC" -ne 0 ] || { echo "chaos supervisor was not killed"; exit 1; }
[ ! -f "$LEDGER/corpus.jsonl" ] || { echo "premature merge"; exit 1; }

# Supervisor 2 steals the expired lease and drains the rest.
"$BIN" batch --quiet --shared "$LEDGER" --shard-size 1 \
  --lease-expiry-ms 300 --supervisor-id medic --stats "$CORPUS" \
  | grep -q "^ledger:"

# Exactly one terminal per package: line count matches the corpus, and
# every package name appears exactly once.
N_PKGS=$(ls "$CORPUS"/*.js | wc -l)
N_LINES=$(wc -l < "$LEDGER/corpus.jsonl")
[ "$N_LINES" -eq "$N_PKGS" ] || {
  echo "corpus.jsonl has $N_LINES lines, want $N_PKGS"; exit 1; }
for f in "$CORPUS"/*.js; do
  name=$(basename "$f")
  n=$(grep -c "\"package\":\"$name\"" "$LEDGER/corpus.jsonl")
  [ "$n" -eq 1 ] || { echo "$name has $n terminal records"; exit 1; }
done

# The steal is visible in the ledger: some shard reached fencing token 2.
ls "$LEDGER"/shards/*.tok.2 > /dev/null 2>&1 || {
  echo "no lease was stolen"; exit 1; }
