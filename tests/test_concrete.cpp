//===- tests/test_concrete.cpp - Concrete interpreter tests ---------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Unit tests for the instrumented concrete semantics (§3.3) as an
// interpreter: value semantics, control flow, calls, and the concrete
// MDG's structure on known programs.
//
//===----------------------------------------------------------------------===//

#include "analysis/ConcreteInterp.h"
#include "core/Normalizer.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::analysis;

namespace {

ConcreteResult run(const std::string &Source,
                   const std::vector<ValueSpec> &Args,
                   InterpOptions O = {}) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_FALSE(Prog->Exports.empty());
  ConcreteInterp CI(O);
  return CI.run(*Prog, Prog->Exports[0].FunctionName, Args);
}

size_t countEdges(const mdg::Graph &G, mdg::EdgeKind K) {
  size_t N = 0;
  for (mdg::NodeId Id : G.nodeIds())
    for (const mdg::Edge &E : G.out(Id))
      N += E.Kind == K;
  return N;
}

} // namespace

TEST(ConcreteValueTest, Truthiness) {
  ConcreteValue V;
  EXPECT_FALSE(V.truthy()); // undefined
  V.K = ConcreteValue::Kind::Number;
  V.Num = 0;
  EXPECT_FALSE(V.truthy());
  V.Num = 3;
  EXPECT_TRUE(V.truthy());
  V.K = ConcreteValue::Kind::String;
  V.Str = "";
  EXPECT_FALSE(V.truthy());
  V.Str = "x";
  EXPECT_TRUE(V.truthy());
  V.K = ConcreteValue::Kind::Object;
  EXPECT_TRUE(V.truthy());
  V.K = ConcreteValue::Kind::Null;
  EXPECT_FALSE(V.truthy());
}

TEST(ConcreteValueTest, DisplayStrings) {
  ConcreteValue V;
  EXPECT_EQ(V.toDisplayString(), "undefined");
  V.K = ConcreteValue::Kind::String;
  V.Str = "abc";
  EXPECT_EQ(V.toDisplayString(), "abc");
  V.K = ConcreteValue::Kind::Boolean;
  V.Bool = true;
  EXPECT_EQ(V.toDisplayString(), "true");
}

TEST(ConcreteInterpTest, BinOpsComputeValues) {
  // The concatenated command string must drive the D edges into the call.
  ConcreteResult R = run(
      "function f(a) { var s = 'git ' + a; var n = 2 + 3; sink(s, n); }\n"
      "module.exports = f;\n",
      {ValueSpec::string("reset")});
  EXPECT_FALSE(R.Diverged);
  // One call node with an incoming D edge from the concat result.
  bool SawDepIntoCall = false;
  for (mdg::NodeId Id : R.Graph.nodeIds())
    for (const mdg::Edge &E : R.Graph.out(Id))
      if (E.Kind == mdg::EdgeKind::Dep &&
          R.Tags[E.To].K == LocTag::Kind::Call)
        SawDepIntoCall = true;
  EXPECT_TRUE(SawDepIntoCall);
}

TEST(ConcreteInterpTest, BranchTakenDependsOnInput) {
  const char *Source = "function f(c, a, b) {\n"
                       "  var x;\n"
                       "  if (c) { x = a; } else { x = b; }\n"
                       "  sink(x);\n"
                       "}\nmodule.exports = f;\n";
  // Only the taken branch executes concretely: compare edge counts with a
  // truthy vs falsy condition — the graphs match in shape either way.
  ConcreteResult RTrue = run(Source, {ValueSpec::number(1),
                                      ValueSpec::string("l"),
                                      ValueSpec::string("r")});
  ConcreteResult RFalse = run(Source, {ValueSpec::number(0),
                                       ValueSpec::string("l"),
                                       ValueSpec::string("r")});
  EXPECT_EQ(countEdges(RTrue.Graph, mdg::EdgeKind::Dep),
            countEdges(RFalse.Graph, mdg::EdgeKind::Dep));
}

TEST(ConcreteInterpTest, UpdatesCreateVersions) {
  ConcreteResult R = run("function f(a) { var o = {}; o.x = a; o.y = 5; }\n"
                         "module.exports = f;\n",
                         {ValueSpec::string("v")});
  EXPECT_EQ(countEdges(R.Graph, mdg::EdgeKind::Version), 2u);
  // Concrete graphs carry only known property names.
  EXPECT_EQ(countEdges(R.Graph, mdg::EdgeKind::PropUnknown), 0u);
  EXPECT_EQ(countEdges(R.Graph, mdg::EdgeKind::VersionUnknown), 0u);
}

TEST(ConcreteInterpTest, DynamicNamesResolveToActualStrings) {
  ConcreteResult R = run(
      "function f(o, k, v) { o[k] = v; return o[k]; }\n"
      "module.exports = f;\n",
      {ValueSpec::object(), ValueSpec::string("door"),
       ValueSpec::string("open")});
  // The version edge carries the actual name "door".
  bool SawDoor = false;
  for (mdg::NodeId Id : R.Graph.nodeIds())
    for (const mdg::Edge &E : R.Graph.out(Id))
      if (E.Kind == mdg::EdgeKind::Version &&
          R.Props.str(E.Prop) == "door")
        SawDoor = true;
  EXPECT_TRUE(SawDoor);
}

TEST(ConcreteInterpTest, LoopsIterateConcretely) {
  ConcreteResult R = run(
      "function f(a) {\n"
      "  var s = 0;\n"
      "  var i = 0;\n"
      "  while (i < 3) { s = s + a; i = i + 1; }\n"
      "  sink(s);\n"
      "}\nmodule.exports = f;\n",
      {ValueSpec::number(10)});
  EXPECT_FALSE(R.Diverged);
  // Three concrete iterations each allocate fresh binop-result locations
  // (s + a and i + 1), all tagged with their statement sites.
  size_t SiteNodes = 0;
  for (const LocTag &T : R.Tags)
    SiteNodes += T.K == LocTag::Kind::Site;
  EXPECT_GE(SiteNodes, 6u);
}

TEST(ConcreteInterpTest, LoopCapPreventsRunaway) {
  InterpOptions O;
  O.MaxLoopIters = 5;
  ConcreteResult R = run("function f(a) { while (true) { a = a + 1; } }\n"
                         "module.exports = f;\n",
                         {ValueSpec::number(0)}, O);
  EXPECT_FALSE(R.Diverged) << "loop cap is normal termination";
}

TEST(ConcreteInterpTest, StepBudgetSetsDiverged) {
  InterpOptions O;
  O.MaxSteps = 10;
  O.MaxLoopIters = 1000000;
  ConcreteResult R = run("function f(a) { while (true) { a = a + 1; } }\n"
                         "module.exports = f;\n",
                         {ValueSpec::number(0)}, O);
  EXPECT_TRUE(R.Diverged);
}

TEST(ConcreteInterpTest, FunctionCallsReturnValues) {
  ConcreteResult R = run(
      "function inc(x) { return x + 1; }\n"
      "function f(a) { var r = inc(inc(a)); sink(r); }\n"
      "module.exports = f;\n",
      {ValueSpec::number(5)});
  EXPECT_FALSE(R.Diverged);
  // Taint path: param -> binop -> binop -> call D edges all present.
  ASSERT_EQ(R.ParamNodes.size(), 1u);
  EXPECT_FALSE(R.Graph.out(R.ParamNodes[0]).empty());
}

TEST(ConcreteInterpTest, RecursionDepthCapped) {
  InterpOptions O;
  O.MaxCallDepth = 8;
  ConcreteResult R = run("function f(n) { return f(n + 1); }\n"
                         "module.exports = f;\n",
                         {ValueSpec::number(0)}, O);
  EXPECT_FALSE(R.Diverged) << "depth cap ends recursion cleanly";
}

TEST(ConcreteInterpTest, NestedArgumentObjectsMaterialize) {
  ConcreteResult R = run(
      "function f(config) { return config.reset.commit; }\n"
      "module.exports = f;\n",
      {ValueSpec::object(
          {{"reset", ValueSpec::object({{"commit", ValueSpec::number(1)}})}})});
  EXPECT_FALSE(R.Diverged);
  // The nested reads retag the field locations with the lookup sites.
  bool SawLazy = false;
  for (const LocTag &T : R.Tags)
    SawLazy |= T.K == LocTag::Kind::LazyProp;
  EXPECT_TRUE(SawLazy);
}

TEST(ConcreteInterpTest, ParamNodesAreTracked) {
  ConcreteResult R = run("function f(a, b) { return a; }\n"
                         "module.exports = f;\n",
                         {ValueSpec::string("x"), ValueSpec::number(1)});
  ASSERT_EQ(R.ParamNodes.size(), 2u);
  for (mdg::NodeId N : R.ParamNodes)
    EXPECT_EQ(R.Tags[N].K, LocTag::Kind::Param);
}
