//===- tests/test_graphdb.cpp - Property graph + query engine tests -------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "graphdb/MDGImport.h"
#include "graphdb/QueryEngine.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::graphdb;

namespace {

/// A tiny fixture graph:
///   (a:Object {taint:'true'}) -D-> (b:Object) -D-> (c:Call {name:'exec'})
///   (a) -P {name:'x'}-> (d:Object)
PropertyGraph makeFixture() {
  PropertyGraph G;
  NodeHandle A = G.addNode("Object", {{"taint", "true"}, {"label", "a"}});
  NodeHandle B = G.addNode("Object", {{"taint", "false"}, {"label", "b"}});
  NodeHandle C = G.addNode("Call", {{"name", "exec"}});
  NodeHandle D = G.addNode("Object", {{"label", "d"}});
  G.addRel(A, B, "D");
  G.addRel(B, C, "D");
  G.addRel(A, D, "P", {{"name", "x"}});
  return G;
}

} // namespace

TEST(PropertyGraphTest, StoresNodesAndRels) {
  PropertyGraph G = makeFixture();
  EXPECT_EQ(G.numNodes(), 4u);
  EXPECT_EQ(G.numRels(), 3u);
  EXPECT_EQ(G.prop(0, "label"), "a");
  EXPECT_EQ(G.prop(0, "missing"), "");
  EXPECT_EQ(G.nodesByLabel("Object").size(), 3u);
  EXPECT_EQ(G.nodesByLabel("Call").size(), 1u);
  EXPECT_EQ(G.nodesByLabel("").size(), 4u);
  EXPECT_EQ(G.out(0).size(), 2u);
  EXPECT_EQ(G.in(2).size(), 1u);
  EXPECT_EQ(G.relProp(2, "name"), "x");
}

TEST(QueryParserTest, ParsesBasicMatch) {
  Query Q;
  std::string Error;
  ASSERT_TRUE(parseQuery("MATCH (a:Object)-[:D]->(b:Call) RETURN a, b.name",
                         Q, &Error))
      << Error;
  ASSERT_EQ(Q.Matches.size(), 1u);
  EXPECT_EQ(Q.Matches[0].Nodes.size(), 2u);
  EXPECT_EQ(Q.Matches[0].Nodes[0].Var, "a");
  EXPECT_EQ(Q.Matches[0].Nodes[1].Label, "Call");
  ASSERT_EQ(Q.Returns.size(), 2u);
  EXPECT_EQ(Q.Returns[1].Key, "name");
}

TEST(QueryParserTest, ParsesVarLengthAndAlternation) {
  Query Q;
  std::string Error;
  ASSERT_TRUE(parseQuery(
      "MATCH p = (s:Object {taint: 'true'})-[:D|P|PU|V|VU*0..]->(t:Call) "
      "WHERE NOT untainted(p) RETURN t LIMIT 5",
      Q, &Error))
      << Error;
  const RelPattern &R = Q.Matches[0].Rels[0];
  EXPECT_TRUE(R.VarLength);
  EXPECT_EQ(R.MinHops, 0u);
  EXPECT_TRUE(R.Unbounded);
  EXPECT_EQ(R.Types.size(), 5u);
  EXPECT_EQ(Q.Matches[0].PathVar, "p");
  ASSERT_EQ(Q.Where.size(), 1u);
  EXPECT_TRUE(Q.Where[0].Negated);
  EXPECT_EQ(Q.Where[0].PredName, "untainted");
  EXPECT_EQ(Q.Limit, 5u);
}

TEST(QueryParserTest, ParsesBoundedHops) {
  Query Q;
  ASSERT_TRUE(parseQuery("MATCH (a)-[*2..4]->(b) RETURN b", Q, nullptr));
  const RelPattern &R = Q.Matches[0].Rels[0];
  EXPECT_EQ(R.MinHops, 2u);
  EXPECT_EQ(R.MaxHops, 4u);
  EXPECT_FALSE(R.Unbounded);
}

TEST(QueryParserTest, RejectsMalformed) {
  Query Q;
  std::string Error;
  EXPECT_FALSE(parseQuery("MATCH (a RETURN a", Q, &Error));
  EXPECT_FALSE(parseQuery("MATCH (a) WHERE RETURN a", Q, &Error));
  EXPECT_FALSE(parseQuery("RETURN a", Q, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(QueryParserTest, UnclosedNodePatternReportsOffset) {
  Query Q;
  std::string Error;
  EXPECT_FALSE(parseQuery("MATCH (a:Object RETURN a", Q, &Error));
  EXPECT_NE(Error.find("offset"), std::string::npos) << Error;
}

TEST(QueryParserTest, BadHopRangeReportsOffset) {
  Query Q;
  std::string Error;
  // A single '.' is not a range separator ('..' required).
  EXPECT_FALSE(parseQuery("MATCH (a)-[:D*2.5]->(b) RETURN b", Q, &Error));
  EXPECT_NE(Error.find("offset"), std::string::npos) << Error;
}

TEST(QueryParserTest, StrayTrailingTokensRejected) {
  Query Q;
  std::string Error;
  EXPECT_FALSE(parseQuery("MATCH (a) RETURN a bogus trailing", Q, &Error));
  EXPECT_NE(Error.find("offset"), std::string::npos) << Error;
}

TEST(QueryEngineTest, SimpleMatchAndProjection) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  ResultSet R = E.run("MATCH (a:Object)-[:D]->(b:Object) RETURN a.label, "
                      "b.label");
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0].Values[0], "a");
  EXPECT_EQ(R.Rows[0].Values[1], "b");
}

TEST(QueryEngineTest, PropertyFilterInPattern) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  ResultSet R =
      E.run("MATCH (a:Object {taint: 'true'}) RETURN a.label");
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0].Values[0], "a");
}

TEST(QueryEngineTest, WhereComparisons) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  ResultSet R1 = E.run("MATCH (c:Call) WHERE c.name = 'exec' RETURN c");
  EXPECT_EQ(R1.Rows.size(), 1u);
  ResultSet R2 = E.run("MATCH (c:Call) WHERE c.name <> 'exec' RETURN c");
  EXPECT_EQ(R2.Rows.size(), 0u);
}

TEST(QueryEngineTest, VariableLengthReachability) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  ResultSet R = E.run(
      "MATCH (a:Object {taint: 'true'})-[:D*1..]->(c:Call) RETURN c.name");
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0].Values[0], "exec");
}

TEST(QueryEngineTest, ZeroHopMatchesSelf) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  ResultSet R =
      E.run("MATCH (a:Object {taint: 'true'})-[:D*0..]->(x:Object) RETURN "
            "x.label");
  // a itself (0 hops) and b (1 hop).
  EXPECT_EQ(R.Rows.size(), 2u);
}

TEST(QueryEngineTest, PathPredicateFiltering) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  E.registerPathPredicate("longerThanOne",
                          [](const Path &P, const PropertyGraph &) {
                            return P.Rels.size() > 1;
                          });
  ResultSet R = E.run("MATCH p = (a:Object {taint: 'true'})-[:D*1..]->(x) "
                      "WHERE longerThanOne(p) RETURN x");
  ASSERT_EQ(R.Rows.size(), 1u);
  // Only the 2-hop path to the call survives.
  EXPECT_EQ(G.node(R.Rows[0].NodeBindings.at("x")).Label, "Call");
}

TEST(QueryEngineTest, MultiMatchJoin) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  // Same variable in two match items joins on the same node.
  ResultSet R = E.run("MATCH (a:Object {taint: 'true'})-[:D]->(b), "
                      "(a)-[:P]->(d) RETURN b.label, d.label");
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0].Values[0], "b");
  EXPECT_EQ(R.Rows[0].Values[1], "d");
}

TEST(QueryEngineTest, CyclesDoNotHang) {
  PropertyGraph G;
  NodeHandle A = G.addNode("Object", {{"label", "a"}});
  NodeHandle B = G.addNode("Object", {{"label", "b"}});
  G.addRel(A, B, "D");
  G.addRel(B, A, "D");
  QueryEngine E(G);
  ResultSet R = E.run("MATCH (x:Object)-[:D*1..]->(y:Object) RETURN x, y");
  // a->b, a->b->a, b->a, b->a->b: 4 rows, finite.
  EXPECT_EQ(R.Rows.size(), 4u);
}

TEST(QueryEngineTest, WorkBudgetTimesOut) {
  // A dense graph with an unbounded query must hit the budget.
  PropertyGraph G;
  std::vector<NodeHandle> Ns;
  for (int I = 0; I < 12; ++I)
    Ns.push_back(G.addNode("Object"));
  for (NodeHandle X : Ns)
    for (NodeHandle Y : Ns)
      if (X != Y)
        G.addRel(X, Y, "D");
  EngineOptions O;
  O.WorkBudget = 500;
  QueryEngine E(G, O);
  ResultSet R = E.run("MATCH (a)-[:D*1..]->(b) RETURN a, b");
  EXPECT_TRUE(R.TimedOut);
}

TEST(QueryEngineTest, LimitStopsEarly) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  ResultSet R = E.run("MATCH (x:Object) RETURN x LIMIT 2");
  EXPECT_EQ(R.Rows.size(), 2u);
}

TEST(MDGImportTest, SchemaRoundTrip) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(
      "function f(a, k) { var o = {}; o[k] = a; g(o[k]); }\n"
      "module.exports = f;\n",
      Diags);
  auto Built = analysis::buildMDG(*Prog);
  ImportedMDG Imported = importMDG(Built.Graph, Built.Props);
  EXPECT_EQ(Imported.Graph.numNodes(), Built.Graph.numNodes());
  EXPECT_EQ(Imported.Graph.numRels(), Built.Graph.numEdges());

  QueryEngine E(Imported.Graph);
  // Taint sources present.
  ResultSet Sources =
      E.run("MATCH (s:Object {taint: 'true'}) RETURN s.label");
  EXPECT_EQ(Sources.Rows.size(), 2u);
  // The call node is reachable from the tainted param through the MDG.
  ResultSet R = E.run(
      "MATCH (s:Object {taint: 'true'})-[:D|P|PU|V|VU*1..]->(c:Call) "
      "RETURN c.name LIMIT 1");
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0].Values[0], "g");
}

//===----------------------------------------------------------------------===//
// Query-language extensions
//===----------------------------------------------------------------------===//

TEST(QueryEngineTest, RelationshipPropertyFilter) {
  PropertyGraph G;
  NodeHandle A = G.addNode("Object", {{"label", "a"}});
  NodeHandle X = G.addNode("Object", {{"label", "x"}});
  NodeHandle Y = G.addNode("Object", {{"label", "y"}});
  G.addRel(A, X, "P", {{"name", "cmd"}});
  G.addRel(A, Y, "P", {{"name", "commit"}});
  QueryEngine E(G);
  ResultSet R =
      E.run("MATCH (a)-[:P {name: 'cmd'}]->(v) RETURN v.label");
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0].Values[0], "x");
}

TEST(QueryEngineTest, ReverseDirectionPattern) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  // Who flows *into* the call? Walk D edges backwards from it.
  ResultSet R =
      E.run("MATCH (c:Call)<-[:D]-(arg:Object) RETURN arg.label");
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0].Values[0], "b");
}

TEST(QueryEngineTest, ReverseVariableLength) {
  PropertyGraph G = makeFixture();
  QueryEngine E(G);
  ResultSet R = E.run(
      "MATCH (c:Call)<-[:D*1..]-(src:Object {taint: 'true'}) RETURN src");
  EXPECT_EQ(R.Rows.size(), 1u);
}

TEST(QueryEngineTest, ReturnDistinctDeduplicates) {
  PropertyGraph G;
  NodeHandle A = G.addNode("Object", {{"label", "a"}});
  NodeHandle B1 = G.addNode("Object", {{"label", "same"}});
  NodeHandle B2 = G.addNode("Object", {{"label", "same"}});
  G.addRel(A, B1, "D");
  G.addRel(A, B2, "D");
  QueryEngine E(G);
  ResultSet Plain = E.run("MATCH (a)-[:D]->(b) RETURN b.label");
  EXPECT_EQ(Plain.Rows.size(), 2u);
  ResultSet Distinct = E.run("MATCH (a)-[:D]->(b) RETURN DISTINCT b.label");
  EXPECT_EQ(Distinct.Rows.size(), 1u);
}

TEST(QueryParserTest, ParsesReverseAndRelProps) {
  Query Q;
  std::string Error;
  ASSERT_TRUE(parseQuery(
      "MATCH (a)<-[:V {name: 'x'}]-(b) RETURN DISTINCT a", Q, &Error))
      << Error;
  EXPECT_TRUE(Q.Matches[0].Rels[0].Reverse);
  EXPECT_EQ(Q.Matches[0].Rels[0].Props.at("name"), "x");
  EXPECT_TRUE(Q.Distinct);
}
