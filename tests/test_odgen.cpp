//===- tests/test_odgen.cpp - ODGen baseline tests ------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Verifies the baseline reproduces the behaviors the paper's evaluation
// leans on: detection of simple flows, `arguments` support, object
// explosion under unrolling, state-forking timeouts on dynamic-property
// loops (§5.5), the web-server precondition for CWE-22, and no-versioning
// over-tainting.
//
//===----------------------------------------------------------------------===//

#include "odgen/ODGenAnalyzer.h"

#include <gtest/gtest.h>

using namespace gjs;
using namespace gjs::odgen;
using namespace gjs::queries;

namespace {

bool hasType(const std::vector<VulnReport> &Reports, VulnType T) {
  for (const VulnReport &R : Reports)
    if (R.Type == T)
      return true;
  return false;
}

} // namespace

TEST(ODGenTest, DetectsDirectCommandInjection) {
  ODGenAnalyzer A;
  ODGenResult R = A.analyze(
      "var cp = require('child_process');\n"
      "function run(cmd, cb) { cp.exec('git ' + cmd, cb); }\n"
      "module.exports = run;\n");
  EXPECT_FALSE(R.TimedOut);
  EXPECT_TRUE(hasType(R.Reports, VulnType::CommandInjection));
}

TEST(ODGenTest, DetectsArgumentsBasedFlow) {
  // The `arguments` keyword is an ODGen advantage (Graph.js FN, §5.2).
  ODGenAnalyzer A;
  ODGenResult R = A.analyze(
      "var cp = require('child_process');\n"
      "function run() { var c = arguments[0]; cp.exec('ls ' + c); }\n"
      "module.exports = run;\n");
  EXPECT_TRUE(hasType(R.Reports, VulnType::CommandInjection));
}

TEST(ODGenTest, PathTraversalNeedsServerContext) {
  const char *Vulnerable =
      "var fs = require('fs');\n"
      "function read(n, cb) { fs.readFile('./d/' + n, cb); }\n"
      "module.exports = read;\n";
  ODGenAnalyzer A;
  ODGenResult NoCtx = A.analyze(Vulnerable);
  EXPECT_FALSE(hasType(NoCtx.Reports, VulnType::PathTraversal));

  std::string WithCtx = std::string("var http = require('http');\n"
                                    "exports.serve = function(h) { return "
                                    "http.createServer(h); };\n") +
                        Vulnerable;
  ODGenResult Ctx = A.analyze(WithCtx);
  EXPECT_TRUE(hasType(Ctx.Reports, VulnType::PathTraversal));
}

TEST(ODGenTest, DetectsDirectPrototypePollution) {
  ODGenAnalyzer A;
  ODGenResult R = A.analyze(
      "function setPath(obj, k1, k2, v) { var c = obj[k1]; c[k2] = v; }\n"
      "module.exports = setPath;\n");
  EXPECT_FALSE(R.TimedOut);
  EXPECT_TRUE(hasType(R.Reports, VulnType::PrototypePollution));
}

TEST(ODGenTest, TimesOutOnSetValueLoop) {
  // §5.5: "Graph.js's version edges and summary fixed-pointed
  // representation for loops enable a speedy detection, whereas ODGen
  // times out."
  ODGenAnalyzer A;
  ODGenResult R = A.analyze(
      "function setValue(target, prop, value) {\n"
      "  var path = prop.split('.');\n"
      "  var obj = target;\n"
      "  for (var i = 0; i < path.length; i++) {\n"
      "    var p = path[i];\n"
      "    if (i === path.length - 1) { obj[p] = value; }\n"
      "    obj = obj[p];\n"
      "  }\n"
      "  return target;\n"
      "}\n"
      "module.exports = setValue;\n");
  EXPECT_TRUE(R.TimedOut);
  EXPECT_TRUE(R.Reports.empty()) << "timeouts must yield no findings";
}

TEST(ODGenTest, TimesOutOnRecursiveMerge) {
  ODGenAnalyzer A;
  ODGenResult R = A.analyze(
      "function merge(target, source) {\n"
      "  for (var key in source) {\n"
      "    var val = source[key];\n"
      "    if (typeof val === 'object') {\n"
      "      merge(target[key], val);\n"
      "    } else {\n"
      "      target[key] = val;\n"
      "    }\n"
      "  }\n"
      "  return target;\n"
      "}\n"
      "module.exports = merge;\n");
  EXPECT_TRUE(R.TimedOut);
}

TEST(ODGenTest, ObjectExplosionUnderUnrolling) {
  // The same loop body, unrolled with fresh allocations: the ODG grows
  // with the unroll limit while the MDG would not.
  const char *Source = "function f(n) {\n"
                       "  var acc = 0;\n"
                       "  for (var i = 0; i < n; i++) {\n"
                       "    var o = {v: i};\n"
                       "    acc = acc + o.v;\n"
                       "  }\n"
                       "  return acc;\n"
                       "}\n"
                       "module.exports = f;\n";
  ODGenOptions Small;
  Small.UnrollLimit = 1;
  ODGenOptions Large;
  Large.UnrollLimit = 8;
  ODGenResult RS = ODGenAnalyzer(Small).analyze(Source);
  ODGenResult RL = ODGenAnalyzer(Large).analyze(Source);
  EXPECT_GT(RL.NumNodes, RS.NumNodes + 10);
}

TEST(ODGenTest, OverwritesDoNotUntaint) {
  // No version edges: once tainted, an object stays tainted, so the
  // sanitized pattern is still (wrongly) reported — a TFP source for the
  // baseline that Graph.js's UntaintedPath avoids.
  ODGenAnalyzer A;
  ODGenResult R = A.analyze(
      "var cp = require('child_process');\n"
      "function f(c, cb) {\n"
      "  var opts = {};\n"
      "  opts.c = c;\n"
      "  opts.c = 'git status';\n"
      "  cp.exec(opts.c, cb);\n"
      "}\n"
      "module.exports = f;\n");
  EXPECT_TRUE(hasType(R.Reports, VulnType::CommandInjection));
}

TEST(ODGenTest, GraphContainsCPGAndODGParts) {
  ODGenAnalyzer A;
  ODGenResult R = A.analyze("function f(x) { var o = {a: x}; return o.a; }\n"
                            "module.exports = f;\n");
  // The CPG skeleton alone guarantees several nodes per statement.
  EXPECT_GT(R.NumNodes, 20u);
  EXPECT_GT(R.NumEdges, 20u);
}

TEST(ODGenTest, ParseFailureReported) {
  ODGenAnalyzer A;
  ODGenResult R = A.analyze("function ( {");
  EXPECT_TRUE(R.ParseFailed);
}

TEST(ODGenTest, BenignCodeIsClean) {
  ODGenAnalyzer A;
  ODGenResult R = A.analyze(
      "function clamp(v, lo, hi) { if (v < lo) { return lo; } return v; }\n"
      "module.exports = clamp;\n");
  EXPECT_TRUE(R.Reports.empty());
  EXPECT_FALSE(R.TimedOut);
}
