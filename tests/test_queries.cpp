//===- tests/test_queries.cpp - Vulnerability query tests -----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Exercises Table 1 traversals and Table 2 detectors on the paper's
// examples, and cross-validates the graph-database backend against the
// native traversals.
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "queries/QueryRunner.h"
#include "scanner/Scanner.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace gjs;
using namespace gjs::queries;

namespace {

analysis::BuildResult buildFrom(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return analysis::buildMDG(*Prog);
}

bool hasType(const std::vector<VulnReport> &Reports, VulnType T) {
  return std::any_of(Reports.begin(), Reports.end(),
                     [&](const VulnReport &R) { return R.Type == T; });
}

const char *Figure1Source =
    "const { exec } = require('child_process');\n"
    "function git_reset(config, op, branch_name, url) {\n"
    "  var options = config[op];\n"
    "  options[branch_name] = url;\n"
    "  options.cmd = 'git reset';\n"
    "  exec(options.cmd + ' HEAD~' + options.commit);\n"
    "}\n"
    "module.exports = git_reset;\n";

} // namespace

//===----------------------------------------------------------------------===//
// Sink configuration
//===----------------------------------------------------------------------===//

TEST(SinkConfigTest, DefaultsCoverPaperSinks) {
  SinkConfig C = SinkConfig::defaults();
  auto Has = [&](VulnType T, const std::string &Name) {
    for (const SinkSpec &S : C.sinks(T))
      if (S.Name == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(Has(VulnType::CommandInjection, "exec"));
  EXPECT_TRUE(Has(VulnType::CommandInjection, "child_process.spawn"));
  EXPECT_TRUE(Has(VulnType::CodeInjection, "eval"));
  EXPECT_TRUE(Has(VulnType::CodeInjection, "require"));
  EXPECT_TRUE(Has(VulnType::PathTraversal, "fs.readFile"));
}

TEST(SinkConfigTest, LoadsFromJSON) {
  SinkConfig C;
  std::string Error;
  ASSERT_TRUE(SinkConfig::fromJSON(
      R"({"command-injection": [{"name": "mylib.run", "args": [1]}]})", C,
      &Error))
      << Error;
  ASSERT_EQ(C.sinks(VulnType::CommandInjection).size(), 1u);
  const SinkSpec &S = C.sinks(VulnType::CommandInjection)[0];
  EXPECT_EQ(S.Name, "mylib.run");
  EXPECT_TRUE(S.isPath());
  EXPECT_FALSE(SinkConfig::argIsSensitive(S, 0));
  EXPECT_TRUE(SinkConfig::argIsSensitive(S, 1));
}

TEST(SinkConfigTest, RejectsBadJSON) {
  SinkConfig C;
  std::string Error;
  EXPECT_FALSE(SinkConfig::fromJSON("[1,2]", C, &Error));
  EXPECT_FALSE(SinkConfig::fromJSON(R"({"nope": []})", C, &Error));
  EXPECT_FALSE(
      SinkConfig::fromJSON(R"({"command-injection": [{}]})", C, &Error));
}

//===----------------------------------------------------------------------===//
// Native traversals (Table 1)
//===----------------------------------------------------------------------===//

TEST(TraversalsTest, TaintPathRespectsOverwrite) {
  // o.x = tainted; o.x = 'safe'; read o.x  — the classic UntaintedPath.
  auto Build = buildFrom(
      "function f(a) { var o = {}; o.x = a; o.x = 'safe'; g(o.x); }\n"
      "module.exports = f;\n");
  Traversals T(Build.Graph);
  ASSERT_EQ(Build.TaintSources.size(), 1u);
  mdg::NodeId Src = Build.TaintSources[0];
  // The call argument must NOT be taint-reachable.
  mdg::NodeId Call = mdg::InvalidNode;
  for (mdg::NodeId C : Build.CallNodes)
    if (Build.Graph.node(C).CallName == "g")
      Call = C;
  ASSERT_NE(Call, mdg::InvalidNode);
  std::set<mdg::NodeId> Reach = T.taintReachable(Src);
  const mdg::Node &CN = Build.Graph.node(Call);
  ASSERT_EQ(CN.Args.size(), 1u);
  for (mdg::NodeId A : CN.Args[0])
    EXPECT_FALSE(Reach.count(A))
        << "overwritten property still tainted (UntaintedPath violated)";
}

TEST(TraversalsTest, BasicPathExistsWhereTaintPathExcluded) {
  // When the tainted *object* has a property overwritten with a safe
  // literal, the path src -V(x)-> v -P(x)-> safe exists as a BasicPath but
  // matches UntaintedPath, so TaintPath must exclude it (Table 1).
  auto Build = buildFrom("function f(a) { a.x = 'safe'; g(a.x); }\n"
                         "module.exports = f;\n");
  Traversals T(Build.Graph);
  ASSERT_EQ(Build.TaintSources.size(), 1u);
  mdg::NodeId Src = Build.TaintSources[0];
  mdg::NodeId Call = Build.CallNodes.back();
  const mdg::Node &CN = Build.Graph.node(Call);
  ASSERT_EQ(CN.Args.size(), 1u);
  std::set<mdg::NodeId> Reach = T.taintReachable(Src);
  bool AnyBasic = false, AnyTaint = false;
  for (mdg::NodeId A : CN.Args[0]) {
    AnyBasic |= T.basicPathExists(Src, A);
    AnyTaint |= Reach.count(A) != 0;
  }
  EXPECT_TRUE(AnyBasic) << "BasicPath through the version chain must exist";
  EXPECT_FALSE(AnyTaint) << "TaintPath must exclude the overwritten read";
}

TEST(TraversalsTest, TaintSurvivesDifferentPropertyOverwrite) {
  auto Build = buildFrom(
      "function f(a) { var o = {}; o.x = a; o.y = 'safe'; g(o.x); }\n"
      "module.exports = f;\n");
  Traversals T(Build.Graph);
  std::set<mdg::NodeId> Reach = T.taintReachable(Build.TaintSources[0]);
  mdg::NodeId Call = Build.CallNodes.back();
  const mdg::Node &CN = Build.Graph.node(Call);
  bool Tainted = false;
  for (mdg::NodeId A : CN.Args[0])
    Tainted |= Reach.count(A) != 0;
  EXPECT_TRUE(Tainted);
}

TEST(TraversalsTest, ObjLookupAndAssignmentStar) {
  auto Build = buildFrom(
      "function merge(obj, k1, k2, v) { var c = obj[k1]; c[k2] = v; }\n"
      "module.exports = merge;\n");
  Traversals T(Build.Graph);
  auto Lookups = T.objLookupStar();
  ASSERT_FALSE(Lookups.empty());
  bool FoundAssignment = false;
  for (auto [Obj, Sub] : Lookups) {
    (void)Obj;
    if (!T.objAssignmentStar(Sub).empty())
      FoundAssignment = true;
  }
  EXPECT_TRUE(FoundAssignment);
}

//===----------------------------------------------------------------------===//
// Table 2 detectors — paper examples
//===----------------------------------------------------------------------===//

TEST(DetectorTest, Figure1CommandInjection) {
  auto Build = buildFrom(Figure1Source);
  SinkConfig C = SinkConfig::defaults();

  std::vector<VulnReport> Native = detectNative(Build, C);
  EXPECT_TRUE(hasType(Native, VulnType::CommandInjection));

  GraphDBRunner Runner(Build);
  std::vector<VulnReport> Db = Runner.detect(C);
  EXPECT_TRUE(hasType(Db, VulnType::CommandInjection));

  // The sink line must point at the exec call (line 6).
  for (const VulnReport &R : Db)
    if (R.Type == VulnType::CommandInjection)
      EXPECT_EQ(R.SinkLoc.Line, 6u);
}

TEST(DetectorTest, Figure1PrototypePollution) {
  auto Build = buildFrom(Figure1Source);
  SinkConfig C = SinkConfig::defaults();
  std::vector<VulnReport> Native = detectNative(Build, C);
  EXPECT_TRUE(hasType(Native, VulnType::PrototypePollution));
  GraphDBRunner Runner(Build);
  EXPECT_TRUE(hasType(Runner.detect(C), VulnType::PrototypePollution));
}

TEST(DetectorTest, SetValueCaseStudyPollution) {
  auto Build = buildFrom(
      "function set_value(target, prop, value) {\n"
      "  const path = prop.split('.');\n"
      "  const len = path.length;\n"
      "  var obj = target;\n"
      "  for (var i = 0; i < len; i++) {\n"
      "    const p = path[i];\n"
      "    if (i === len - 1) {\n"
      "      obj[p] = value;\n"
      "    }\n"
      "    obj = obj[p];\n"
      "  }\n"
      "  return target;\n"
      "}\n"
      "module.exports = set_value;\n");
  SinkConfig C = SinkConfig::defaults();
  EXPECT_TRUE(hasType(detectNative(Build, C), VulnType::PrototypePollution));
  GraphDBRunner Runner(Build);
  EXPECT_TRUE(hasType(Runner.detect(C), VulnType::PrototypePollution));
}

TEST(DetectorTest, CodeInjectionThroughEval) {
  auto Build = buildFrom("function run(code) { eval('(' + code + ')'); }\n"
                         "module.exports = run;\n");
  SinkConfig C = SinkConfig::defaults();
  EXPECT_TRUE(hasType(detectNative(Build, C), VulnType::CodeInjection));
  GraphDBRunner Runner(Build);
  EXPECT_TRUE(hasType(Runner.detect(C), VulnType::CodeInjection));
}

TEST(DetectorTest, PathTraversalThroughFsReadFile) {
  auto Build = buildFrom(
      "var fs = require('fs');\n"
      "function read(name, cb) { fs.readFile('/data/' + name, cb); }\n"
      "module.exports = read;\n");
  SinkConfig C = SinkConfig::defaults();
  EXPECT_TRUE(hasType(detectNative(Build, C), VulnType::PathTraversal));
  GraphDBRunner Runner(Build);
  EXPECT_TRUE(hasType(Runner.detect(C), VulnType::PathTraversal));
}

TEST(DetectorTest, BenignCodeProducesNoReports) {
  auto Build = buildFrom(
      "var cp = require('child_process');\n"
      "function ok(x) { var n = 1 + 2; cp.exec('git status'); return x; }\n"
      "module.exports = ok;\n");
  SinkConfig C = SinkConfig::defaults();
  EXPECT_TRUE(detectNative(Build, C).empty());
  GraphDBRunner Runner(Build);
  EXPECT_TRUE(Runner.detect(C).empty());
}

TEST(DetectorTest, SanitizedByOverwriteIsNotReported) {
  auto Build = buildFrom(
      "var cp = require('child_process');\n"
      "function f(a) {\n"
      "  var o = {};\n"
      "  o.cmd = a;\n"
      "  o.cmd = 'git status';\n"
      "  cp.exec(o.cmd);\n"
      "}\n"
      "module.exports = f;\n");
  SinkConfig C = SinkConfig::defaults();
  EXPECT_FALSE(hasType(detectNative(Build, C), VulnType::CommandInjection));
  GraphDBRunner Runner(Build);
  EXPECT_FALSE(hasType(Runner.detect(C), VulnType::CommandInjection));
}

TEST(DetectorTest, NonSensitiveArgumentIsNotReported) {
  // Only argument 0 of exec is sensitive; a tainted callback (arg 1) is
  // not a command injection.
  auto Build = buildFrom(
      "var cp = require('child_process');\n"
      "function f(cb) { cp.exec('ls', cb); }\n"
      "module.exports = f;\n");
  SinkConfig C = SinkConfig::defaults();
  EXPECT_FALSE(hasType(detectNative(Build, C), VulnType::CommandInjection));
  GraphDBRunner Runner(Build);
  EXPECT_FALSE(hasType(Runner.detect(C), VulnType::CommandInjection));
}

//===----------------------------------------------------------------------===//
// Backend cross-validation
//===----------------------------------------------------------------------===//

class BackendAgreement : public ::testing::TestWithParam<const char *> {};

TEST_P(BackendAgreement, NativeAndGraphDBAgree) {
  auto Build = buildFrom(GetParam());
  SinkConfig C = SinkConfig::defaults();
  std::vector<VulnReport> Native = detectNative(Build, C);
  GraphDBRunner Runner(Build);
  std::vector<VulnReport> Db = Runner.detect(C);
  std::sort(Native.begin(), Native.end());
  std::sort(Db.begin(), Db.end());
  EXPECT_EQ(Native, Db) << "backends disagree on:\n" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BackendAgreement,
    ::testing::Values(
        "const { exec } = require('child_process');\n"
        "function f(c) { exec(c); }\nmodule.exports = f;\n",
        "function f(a) { var o = {}; o.x = a; eval(o.x); }\n"
        "module.exports = f;\n",
        "function merge(o, k1, k2, v) { var c = o[k1]; c[k2] = v; }\n"
        "module.exports = merge;\n",
        "var fs = require('fs');\n"
        "function f(p) { fs.readFileSync(p); }\nmodule.exports = f;\n",
        "function safe(x) { return x + 1; }\nmodule.exports = safe;\n",
        "function f(a) { var o = {}; o.c = a; o.c = 'x'; "
        "require('child_process').exec(o.c); }\nmodule.exports = f;\n"));

//===----------------------------------------------------------------------===//
// Scanner pipeline
//===----------------------------------------------------------------------===//

TEST(ScannerTest, EndToEndFigure1) {
  scanner::Scanner S;
  scanner::ScanResult R = S.scanSource(Figure1Source);
  EXPECT_FALSE(R.parseFailed());
  EXPECT_FALSE(R.timedOut());
  EXPECT_TRUE(R.Errors.empty());
  EXPECT_TRUE(hasType(R.Reports, VulnType::CommandInjection));
  EXPECT_TRUE(hasType(R.Reports, VulnType::PrototypePollution));
  EXPECT_GT(R.MDGNodes, 0u);
  EXPECT_GT(R.MDGEdges, 0u);
  EXPECT_GT(R.ASTNodes, 0u);
  EXPECT_GE(R.Times.total(), 0.0);
}

TEST(ScannerTest, ParseFailureIsReported) {
  scanner::Scanner S;
  scanner::ScanResult R = S.scanSource("function ( { ]");
  EXPECT_TRUE(R.parseFailed());
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_EQ(R.Errors[0].Phase, scanner::ScanPhase::Parse);
  EXPECT_EQ(R.Errors[0].Kind, scanner::ScanErrorKind::ParseError);
  EXPECT_TRUE(R.Reports.empty());
}

TEST(ScannerTest, MultiFilePackageMergesReports) {
  scanner::Scanner S;
  scanner::ScanResult R = S.scanPackage(
      {{"a.js", "function f(c) { eval(c); }\nmodule.exports = f;\n"},
       {"b.js", "var cp = require('child_process');\n"
                "function g(c) { cp.exec(c); }\nmodule.exports = g;\n"}});
  EXPECT_TRUE(hasType(R.Reports, VulnType::CodeInjection));
  EXPECT_TRUE(hasType(R.Reports, VulnType::CommandInjection));
}

TEST(ScannerTest, NativeBackendOption) {
  scanner::ScanOptions O;
  O.Backend = scanner::QueryBackend::Native;
  scanner::Scanner S(O);
  scanner::ScanResult R = S.scanSource(Figure1Source);
  EXPECT_TRUE(hasType(R.Reports, VulnType::CommandInjection));
}

TEST(ScannerTest, ReportsSerializeToJSON) {
  scanner::Scanner S;
  scanner::ScanResult R = S.scanSource(Figure1Source);
  std::string J = scanner::reportsToJSON(R.Reports);
  EXPECT_NE(J.find("CWE-78"), std::string::npos);
  EXPECT_NE(J.find("\"line\""), std::string::npos);
}

TEST(ScannerTest, WorkBudgetProducesTimeout) {
  scanner::ScanOptions O;
  O.Builder.WorkBudget = 3;
  scanner::Scanner S(O);
  scanner::ScanResult R = S.scanSource(Figure1Source);
  EXPECT_TRUE(R.timedOut());
  EXPECT_TRUE(R.timedOutIn(scanner::ScanPhase::Build));
  const scanner::ScanError *First = R.firstTimeout();
  ASSERT_NE(First, nullptr);
  EXPECT_EQ(First->Kind, scanner::ScanErrorKind::Budget);
}

//===----------------------------------------------------------------------===//
// Sanitizer configuration (§6)
//===----------------------------------------------------------------------===//

TEST(SanitizerTest, ConfiguredSanitizerBreaksTaint) {
  const char *Source =
      "var cp = require('child_process');\n"
      "function f(c, cb) {\n"
      "  var safe = escapeShell(c);\n"
      "  cp.exec('git ' + safe, cb);\n"
      "}\n"
      "module.exports = f;\n";

  // Without the sanitizer declared: reported.
  scanner::Scanner Plain;
  scanner::ScanResult R1 = Plain.scanSource(Source);
  EXPECT_TRUE(hasType(R1.Reports, VulnType::CommandInjection));

  // With it declared: the barrier stops the flow.
  scanner::ScanOptions O;
  O.Sinks.addSanitizer("escapeShell");
  scanner::Scanner S(O);
  scanner::ScanResult R2 = S.scanSource(Source);
  EXPECT_FALSE(hasType(R2.Reports, VulnType::CommandInjection));
}

TEST(SanitizerTest, DottedSanitizerPathMatches) {
  const char *Source =
      "var sh = require('shell-escape');\n"
      "function f(c, cb) {\n"
      "  var safe = sh.quote(c);\n"
      "  require('child_process').exec(safe, cb);\n"
      "}\n"
      "module.exports = f;\n";
  scanner::ScanOptions O;
  O.Sinks.addSanitizer("shell-escape.quote");
  scanner::Scanner S(O);
  scanner::ScanResult R = S.scanSource(Source);
  EXPECT_FALSE(hasType(R.Reports, VulnType::CommandInjection));
}

TEST(SanitizerTest, SanitizersLoadFromJSON) {
  SinkConfig C;
  std::string Error;
  ASSERT_TRUE(SinkConfig::fromJSON(
      R"({"sanitizers": ["escapeShell", "lib.clean"],
          "command-injection": [{"name": "run", "args": [0]}]})",
      C, &Error))
      << Error;
  ASSERT_EQ(C.sanitizers().size(), 2u);
  EXPECT_EQ(C.sanitizers()[0], "escapeShell");
  EXPECT_EQ(C.sinks(VulnType::CommandInjection).size(), 1u);
}

TEST(SanitizerTest, OtherFlowsStayReported) {
  // Sanitizing one flow must not hide an unrelated one.
  const char *Source =
      "var cp = require('child_process');\n"
      "function f(a, b, cb) {\n"
      "  cp.exec('ls ' + escapeShell(a), cb);\n"
      "  cp.exec('rm ' + b, cb);\n"
      "}\n"
      "module.exports = f;\n";
  scanner::ScanOptions O;
  O.Sinks.addSanitizer("escapeShell");
  scanner::Scanner S(O);
  scanner::ScanResult R = S.scanSource(Source);
  ASSERT_EQ(R.Reports.size(), 1u);
  EXPECT_EQ(R.Reports[0].SinkLoc.Line, 4u);
}
