#!/bin/sh
# Smoke test for the metrics surface: daemon up with --metrics-out, two
# scans through the --client one-shot path, the `metrics` NDJSON op via
# the `graphjs metrics` client, graceful shutdown, then the Prometheus
# snapshot written at drain must be well-formed and non-empty.
set -e

BIN="$1"
EXAMPLE="$2"
SOCK="/tmp/gjs_metrics_smoke_$$.sock"
PROM="/tmp/gjs_metrics_smoke_$$.prom"

"$BIN" serve --socket "$SOCK" --jobs 1 --metrics-out "$PROM" --quiet &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true; rm -f "$SOCK" "$PROM"' EXIT

# Two scans so the latency histogram has a distribution, not a point.
for NAME in one two; do
  "$BIN" serve --socket "$SOCK" --client \
    "{\"op\":\"scan\",\"name\":\"$NAME\",\"files\":[\"$EXAMPLE\"]}" \
    | grep -q '"ok":true'
done

# The one-shot metrics client: counters, percentiles, and gauges in one
# JSON object.
METRICS=$("$BIN" metrics --socket "$SOCK")
echo "$METRICS" | grep -q '"ok":true'
echo "$METRICS" | grep -q '"scan.latency_us"'
echo "$METRICS" | grep -q '"p99"'
echo "$METRICS" | grep -q '"serve.uptime_s"'

"$BIN" serve --socket "$SOCK" --client '{"op":"shutdown"}' \
  | grep -q '"ok":true'
wait "$PID"

# The drain-time Prometheus snapshot: typed counter and summary series
# with the full quantile ladder.
grep -q '^# TYPE graphjs_scan_attempts counter$' "$PROM"
grep -q '^# TYPE graphjs_scan_latency_us summary$' "$PROM"
grep -q 'graphjs_scan_latency_us{quantile="0.99"}' "$PROM"
grep -q '^graphjs_scan_latency_us_count 2$' "$PROM"
grep -q '^# TYPE graphjs_serve_uptime_s gauge$' "$PROM"
