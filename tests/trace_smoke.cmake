# trace_smoke: run `graphjs scan --trace-out` on an example input and
# validate that the emitted Chrome trace is well-formed JSON whose
# traceEvents cover the pipeline phases. Driven by ctest (see
# tests/CMakeLists.txt); requires GRAPHJS_BIN, EXAMPLE, TRACE_OUT.

cmake_minimum_required(VERSION 3.19) # string(JSON), IN_LIST

# --no-prune: a clean example would otherwise prune every class and skip
# the import/query phases this test asserts spans for.
execute_process(
  COMMAND ${GRAPHJS_BIN} scan --no-prune --trace-out ${TRACE_OUT} ${EXAMPLE}
  RESULT_VARIABLE SCAN_RESULT
  OUTPUT_QUIET)
if(NOT SCAN_RESULT EQUAL 0)
  message(FATAL_ERROR "graphjs scan --trace-out exited with ${SCAN_RESULT}")
endif()

file(READ ${TRACE_OUT} TRACE_JSON)

# string(JSON) fatally errors on malformed JSON, which is the point.
string(JSON EVENT_COUNT LENGTH "${TRACE_JSON}" traceEvents)
if(EVENT_COUNT LESS 1)
  message(FATAL_ERROR "trace has no traceEvents")
endif()

# Every pipeline phase must appear as a span name.
set(WANT_PHASES lex parse normalize build import query)
set(SEEN_PHASES "")
math(EXPR LAST "${EVENT_COUNT} - 1")
foreach(I RANGE 0 ${LAST})
  string(JSON NAME GET "${TRACE_JSON}" traceEvents ${I} name)
  string(JSON PH GET "${TRACE_JSON}" traceEvents ${I} ph)
  if(NOT PH STREQUAL "X")
    message(FATAL_ERROR "event ${I} (${NAME}) is not a complete event")
  endif()
  list(APPEND SEEN_PHASES ${NAME})
endforeach()
foreach(PHASE ${WANT_PHASES})
  if(NOT PHASE IN_LIST SEEN_PHASES)
    message(FATAL_ERROR "pipeline phase '${PHASE}' missing from trace")
  endif()
endforeach()

message(STATUS "trace_smoke: ${EVENT_COUNT} events, all phases present")
