//===- tests/test_obs.cpp - Observability layer tests ----------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The observability surface: RAII span tracing (nesting, annotations,
// Chrome trace_event export), the process-wide counter registry
// (enable/disable gate, snapshots, per-package deltas), the query
// profiler (EXPLAIN plans, PROFILE step metrics), per-attempt timing
// attribution under the degradation ladder, and the `graphjs scan
// --trace-out` / `graphjs query --explain/--profile` CLI round trips.
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "eval/Metrics.h"
#include "graphdb/QueryEngine.h"
#include "obs/Counters.h"
#include "obs/Histogram.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "queries/QueryRunner.h"
#include "scanner/Scanner.h"
#include "support/JSON.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

using namespace gjs;
using obs::Span;
using obs::SpanRecord;
using obs::TraceRecorder;

namespace {

/// A small package with one clear CWE-78 (tainted exported parameter into
/// child_process.exec) — enough to drive every pipeline phase.
const char *VulnSource =
    "var cp = require('child_process');\n"
    "function run(cmd, cb) {\n"
    "  var prefixed = 'git ' + cmd;\n"
    "  cp.exec(prefixed, cb);\n"
    "}\n"
    "module.exports = run;\n";

/// RAII guard: forces the global counter gate for one test and restores
/// the previous state afterwards (tests must not leak gate changes).
class CounterGate {
public:
  explicit CounterGate(bool On) : Prev(obs::setCountersEnabled(On)) {}
  ~CounterGate() { obs::setCountersEnabled(Prev); }

private:
  bool Prev;
};

std::set<std::string> spanNames(const TraceRecorder &TR) {
  std::set<std::string> Names;
  for (const SpanRecord &S : TR.spans())
    Names.insert(S.Name);
  return Names;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Span tracing
//===----------------------------------------------------------------------===//

TEST(TraceTest, SpansNestInPreOrderWithDepthsAndParents) {
  TraceRecorder TR;
  {
    Span Root(&TR, "package");
    {
      Span Parse(&TR, "parse");
      { Span File(&TR, "file"); }
    }
    { Span Query(&TR, "query"); }
  }
  const auto &S = TR.spans();
  ASSERT_EQ(S.size(), 4u);
  // Stored in begin order == pre-order of the tree.
  EXPECT_EQ(S[0].Name, "package");
  EXPECT_EQ(S[1].Name, "parse");
  EXPECT_EQ(S[2].Name, "file");
  EXPECT_EQ(S[3].Name, "query");
  EXPECT_EQ(S[0].Depth, 0u);
  EXPECT_EQ(S[1].Depth, 1u);
  EXPECT_EQ(S[2].Depth, 2u);
  EXPECT_EQ(S[3].Depth, 1u);
  EXPECT_EQ(S[0].Parent, SpanRecord::npos);
  EXPECT_EQ(S[1].Parent, 0u);
  EXPECT_EQ(S[2].Parent, 1u);
  EXPECT_EQ(S[3].Parent, 0u);
  for (const SpanRecord &R : S) {
    EXPECT_FALSE(R.open()) << R.Name;
    EXPECT_GE(R.DurUs, 0.0) << R.Name;
  }
  // A child cannot start before or end after its parent.
  EXPECT_GE(S[1].StartUs, S[0].StartUs);
  EXPECT_LE(S[1].StartUs + S[1].DurUs, S[0].StartUs + S[0].DurUs + 1e-6);
}

TEST(TraceTest, AnnotationsAttachToTheirSpan) {
  TraceRecorder TR;
  {
    Span S(&TR, "build");
    S.arg("mdg_nodes", uint64_t(42));
    S.arg("backend", std::string("graphdb"));
  }
  ASSERT_EQ(TR.spans().size(), 1u);
  const auto &Args = TR.spans()[0].Args;
  ASSERT_EQ(Args.size(), 2u);
  EXPECT_EQ(Args[0].first, "mdg_nodes");
  EXPECT_EQ(Args[0].second, "42");
  EXPECT_EQ(Args[1].first, "backend");
  EXPECT_EQ(Args[1].second, "graphdb");
}

TEST(TraceTest, NullRecorderMakesSpansNoOps) {
  Span S(nullptr, "anything");
  S.arg("k", std::string("v"));
  S.arg("n", uint64_t(7));
  S.close();
  // Nothing to assert beyond "does not crash": the branch-on-null contract.
}

TEST(TraceTest, EndClosesAbandonedChildrenDefensively) {
  TraceRecorder TR;
  size_t Outer = TR.begin("outer");
  TR.begin("inner-never-closed");
  TR.end(Outer);
  ASSERT_EQ(TR.spans().size(), 2u);
  EXPECT_FALSE(TR.spans()[0].open());
  EXPECT_FALSE(TR.spans()[1].open()) << "ending a span must close children";
}

TEST(TraceTest, ChromeJSONIsWellFormedCompleteEvents) {
  TraceRecorder TR;
  {
    Span Root(&TR, "package");
    Span Child(&TR, "parse");
    Child.arg("files", uint64_t(1));
  }
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(TR.toChromeJSON(), V, &Error)) << Error;
  ASSERT_TRUE(V.isObject());
  const json::Object &Root = V.asObject();
  ASSERT_TRUE(Root.count("traceEvents"));
  const json::Array &Events = Root.at("traceEvents").asArray();
  ASSERT_EQ(Events.size(), 2u);
  std::set<std::string> Names;
  for (const json::Value &E : Events) {
    const json::Object &O = E.asObject();
    EXPECT_EQ(O.at("ph").asString(), "X");
    EXPECT_TRUE(O.count("name"));
    EXPECT_TRUE(O.count("ts"));
    EXPECT_TRUE(O.count("dur"));
    Names.insert(O.at("name").asString());
  }
  EXPECT_TRUE(Names.count("package"));
  EXPECT_TRUE(Names.count("parse"));
}

TEST(TraceTest, TextTreeIndentsChildrenUnderParents) {
  TraceRecorder TR;
  {
    Span Root(&TR, "package");
    Span Child(&TR, "build");
  }
  std::string Text = TR.toText();
  size_t PackageAt = Text.find("package");
  size_t BuildAt = Text.find("build");
  ASSERT_NE(PackageAt, std::string::npos);
  ASSERT_NE(BuildAt, std::string::npos);
  EXPECT_LT(PackageAt, BuildAt) << "pre-order rendering";
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

TEST(CounterTest, DisabledAddsAreDropped) {
  CounterGate Gate(false);
  uint64_t Before = obs::counters::LexTokens.value();
  obs::counters::LexTokens.add(100);
  EXPECT_EQ(obs::counters::LexTokens.value(), Before);
}

TEST(CounterTest, EnabledAddsAccumulateAndResetClears) {
  CounterGate Gate(true);
  obs::resetCounters();
  obs::counters::MdgNodes.add(3);
  obs::counters::MdgNodes.add();
  EXPECT_EQ(obs::counters::MdgNodes.value(), 4u);
  obs::resetCounters();
  EXPECT_EQ(obs::counters::MdgNodes.value(), 0u);
}

TEST(CounterTest, SnapshotCoversTheWiredCatalog) {
  obs::CounterSnapshot Snap = obs::snapshotCounters();
  for (const char *Name :
       {"lex.tokens", "parse.ast_nodes", "normalize.core_stmts",
        "build.mdg_nodes", "import.nodes", "query.steps", "query.rows",
        "deadline.units", "scan.attempts", "scan.retries"})
    EXPECT_TRUE(Snap.count(Name)) << Name;
}

TEST(CounterTest, AggregateCountersSumsAcrossOutcomes) {
  eval::PackageOutcome A, B;
  A.Counters = {{"query.steps", 10}, {"build.mdg_nodes", 3}};
  B.Counters = {{"query.steps", 5}};
  obs::CounterSnapshot Total = eval::aggregateCounters({A, B});
  EXPECT_EQ(Total.at("query.steps"), 15u);
  EXPECT_EQ(Total.at("build.mdg_nodes"), 3u);
}

TEST(CounterTest, DeltaDropsZeroAndReportsChanges) {
  CounterGate Gate(true);
  obs::resetCounters();
  obs::CounterSnapshot Before = obs::snapshotCounters();
  obs::counters::QueryRows.add(5);
  obs::CounterSnapshot Delta =
      obs::counterDelta(Before, obs::snapshotCounters());
  ASSERT_EQ(Delta.size(), 1u);
  EXPECT_EQ(Delta.at("query.rows"), 5u);
}

// The zero-overhead-when-disabled contract: a disabled add must cost no
// more than a relaxed load plus a branch. The guard is deliberately
// generous (slow CI, sanitizers) — it exists to catch the gate being
// accidentally removed (e.g. an unconditional fetch_add), which is an
// order-of-magnitude regression, not a few percent.
TEST(CounterTest, DisabledAddsHaveNegligibleCost) {
  constexpr int N = 2000000;
  using Clock = std::chrono::steady_clock;

  CounterGate Gate(false);
  auto T0 = Clock::now();
  for (int I = 0; I < N; ++I)
    obs::counters::DeadlineUnits.add();
  double DisabledMs =
      std::chrono::duration<double, std::milli>(Clock::now() - T0).count();

  obs::setCountersEnabled(true);
  T0 = Clock::now();
  for (int I = 0; I < N; ++I)
    obs::counters::DeadlineUnits.add();
  double EnabledMs =
      std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
  obs::counters::DeadlineUnits.reset();

  // Disabled must not be substantially slower than enabled, and must be
  // fast in absolute terms (~1ns/add expected; allow 100x headroom).
  EXPECT_LT(DisabledMs, EnabledMs * 3 + 50.0);
  EXPECT_LT(DisabledMs, 200.0);
}

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketsAreContiguousMonotoneAndSelfConsistent) {
  using obs::Histogram;
  // Small values get exact unit buckets.
  for (uint64_t V = 0; V < (1u << obs::HistogramSubBits); ++V) {
    EXPECT_EQ(Histogram::bucketFor(V), V);
    EXPECT_EQ(Histogram::bucketLo(V), V);
    EXPECT_EQ(Histogram::bucketHi(V), V + 1);
  }
  // Every reachable bucket's bounds round-trip through bucketFor, and
  // the buckets tile the value space without gaps or overlaps. Buckets
  // past bucketFor(~0) are array padding no uint64 sample can land in.
  const unsigned LastReachable = Histogram::bucketFor(~0ull);
  ASSERT_LT(LastReachable, obs::HistogramBucketCount);
  for (unsigned B = 0; B + 1 <= LastReachable; ++B) {
    uint64_t Lo = Histogram::bucketLo(B);
    uint64_t Hi = Histogram::bucketHi(B);
    EXPECT_LT(Lo, Hi) << "bucket " << B;
    EXPECT_EQ(Histogram::bucketFor(Lo), B) << "bucket " << B;
    EXPECT_EQ(Histogram::bucketFor(Hi - 1), B) << "bucket " << B;
    EXPECT_EQ(Histogram::bucketHi(B), Histogram::bucketLo(B + 1))
        << "gap/overlap at bucket " << B;
  }
  // bucketFor is monotone across octave boundaries.
  unsigned Prev = 0;
  for (uint64_t V : {0ull, 1ull, 3ull, 4ull, 5ull, 7ull, 8ull, 100ull,
                     1000ull, 1000000ull, (1ull << 40), ~0ull}) {
    unsigned B = Histogram::bucketFor(V);
    EXPECT_GE(B, Prev) << "value " << V;
    EXPECT_LT(B, obs::HistogramBucketCount) << "value " << V;
    Prev = B;
  }
  // Log-bucket relative error bound: lo and hi-1 of any bucket differ by
  // at most a factor of (1 + 1/2^SubBits) — the advertised resolution.
  for (unsigned B = 8; B + 1 <= LastReachable; ++B) {
    double Lo = double(Histogram::bucketLo(B));
    double Hi = double(Histogram::bucketHi(B));
    if (Lo > 0 && Hi > Lo)
      EXPECT_LE(Hi / Lo, 1.0 + 1.0 / (1u << obs::HistogramSubBits) + 1e-9)
          << "bucket " << B;
  }
}

TEST(HistogramTest, RecordSnapshotAndPercentiles) {
  static obs::Histogram H("test.hist.record_us");
  CounterGate Gate(true);
  H.reset();
  // 100 samples: 1..100us. p50 ~ 50, p99 ~ 99 (within one log bucket).
  for (uint64_t V = 1; V <= 100; ++V)
    H.record(V);
  obs::HistogramSnapshot Snap = obs::snapshotHistograms().at("test.hist.record_us");
  EXPECT_EQ(Snap.Unit, "us");
  EXPECT_EQ(Snap.count(), 100u);
  EXPECT_EQ(Snap.Sum, 5050u);
  EXPECT_NEAR(Snap.mean(), 50.5, 1e-9);
  // Log-bucket error is <= 25% at SubBits=2; allow one bucket of slack.
  EXPECT_GE(Snap.percentile(0.5), 32.0);
  EXPECT_LE(Snap.percentile(0.5), 72.0);
  EXPECT_GE(Snap.percentile(0.99), 72.0);
  EXPECT_LE(Snap.percentile(0.99), 128.0);
  EXPECT_LE(Snap.percentile(0.5), Snap.percentile(0.95));
  EXPECT_LE(Snap.percentile(0.95), Snap.percentile(0.99));
  H.reset();
  EXPECT_TRUE(obs::snapshotHistograms().at("test.hist.record_us").empty());
}

TEST(HistogramTest, TwoSamplesGiveNonDegeneratePercentiles) {
  // The acceptance bar for the serve `metrics` op: after two scans of
  // different cost, p50 and p99 must not collapse to the same sample.
  static obs::Histogram H("test.hist.two_us");
  CounterGate Gate(true);
  H.reset();
  H.record(100);
  H.record(10000);
  obs::HistogramSnapshot Snap = obs::snapshotHistograms().at("test.hist.two_us");
  EXPECT_EQ(Snap.count(), 2u);
  EXPECT_LT(Snap.percentile(0.5), 200.0);
  EXPECT_GT(Snap.percentile(0.99), 5000.0);
}

TEST(HistogramTest, DisabledRecordsAreDropped) {
  static obs::Histogram H("test.hist.gated_us");
  CounterGate Gate(false);
  H.reset();
  H.record(42);
  H.recordSeconds(1.0);
  obs::HistogramSnapshot Snap = obs::snapshotHistograms().at("test.hist.gated_us");
  EXPECT_TRUE(Snap.empty());
  EXPECT_EQ(Snap.Sum, 0u);
}

TEST(HistogramTest, RecordSecondsConvertsAndClampsNegatives) {
  static obs::Histogram H("test.hist.seconds_us");
  CounterGate Gate(true);
  H.reset();
  H.recordSeconds(0.001); // 1000us
  H.recordSeconds(-5.0);  // clamps to 0
  obs::HistogramSnapshot Snap =
      obs::snapshotHistograms().at("test.hist.seconds_us");
  EXPECT_EQ(Snap.count(), 2u);
  EXPECT_EQ(Snap.Sum, 1000u);
}

TEST(HistogramTest, DeltaSubtractsBaselineAndDropsEmpty) {
  static obs::Histogram H("test.hist.delta_us");
  CounterGate Gate(true);
  H.reset();
  H.record(7);
  obs::HistogramSnapshotMap Before = obs::snapshotHistograms();
  obs::HistogramSnapshotMap NoChange = obs::histogramDelta(Before, Before);
  EXPECT_FALSE(NoChange.count("test.hist.delta_us"));
  H.record(7);
  H.record(9000);
  obs::HistogramSnapshotMap Delta =
      obs::histogramDelta(Before, obs::snapshotHistograms());
  ASSERT_TRUE(Delta.count("test.hist.delta_us"));
  EXPECT_EQ(Delta.at("test.hist.delta_us").count(), 2u);
  EXPECT_EQ(Delta.at("test.hist.delta_us").Sum, 9007u);
}

TEST(HistogramTest, MergeIsAssociativeAndOrderIndependent) {
  obs::HistogramSnapshot A, B, C;
  A.Sum = 10;
  A.Buckets = {{1, 2}, {5, 1}};
  B.Sum = 100;
  B.Buckets = {{5, 3}, {9, 4}};
  C.Sum = 7;
  C.Buckets = {{1, 1}};

  obs::HistogramSnapshot AB = A;
  AB.merge(B);
  obs::HistogramSnapshot ABC1 = AB;
  ABC1.merge(C);

  obs::HistogramSnapshot BC = B;
  BC.merge(C);
  obs::HistogramSnapshot ABC2 = A;
  ABC2.merge(BC);

  EXPECT_EQ(ABC1.Sum, ABC2.Sum);
  ASSERT_EQ(ABC1.Buckets.size(), ABC2.Buckets.size());
  for (size_t I = 0; I < ABC1.Buckets.size(); ++I) {
    EXPECT_EQ(ABC1.Buckets[I].first, ABC2.Buckets[I].first);
    EXPECT_EQ(ABC1.Buckets[I].second, ABC2.Buckets[I].second);
  }
  EXPECT_EQ(ABC1.count(), A.count() + B.count() + C.count());
}

TEST(HistogramTest, MergeHistogramsFoldsWorkerDeltasIntoRegistry) {
  static obs::Histogram H("test.hist.stitch_us");
  CounterGate Gate(true);
  H.reset();
  H.record(50); // the supervisor's own sample
  // A "worker delta" as it arrives off the wire.
  obs::HistogramSnapshot WorkerDelta;
  WorkerDelta.Unit = "us";
  WorkerDelta.Sum = 300;
  WorkerDelta.Buckets = {{obs::Histogram::bucketFor(100), 2},
                         {obs::Histogram::bucketFor(100000), 1}};
  obs::HistogramSnapshotMap Deltas;
  Deltas["test.hist.stitch_us"] = WorkerDelta;
  Deltas["no.such.histogram"] = WorkerDelta; // unknown names are ignored
  obs::mergeHistograms(Deltas);
  obs::HistogramSnapshot Snap =
      obs::snapshotHistograms().at("test.hist.stitch_us");
  EXPECT_EQ(Snap.count(), 4u);
  EXPECT_EQ(Snap.Sum, 350u);
  H.reset();
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  static obs::Histogram H("test.hist.mt_us");
  CounterGate Gate(true);
  H.reset();
  constexpr int Threads = 4, PerThread = 50000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([T] {
      for (int I = 0; I < PerThread; ++I)
        H.record(uint64_t(T * PerThread + I) % 1000);
    });
  for (std::thread &T : Pool)
    T.join();
  obs::HistogramSnapshot Snap = obs::snapshotHistograms().at("test.hist.mt_us");
  EXPECT_EQ(Snap.count(), uint64_t(Threads) * PerThread);
  H.reset();
}

// Mirror of CounterTest.DisabledAddsHaveNegligibleCost: the histogram
// record() gate shares the counters' zero-overhead-when-disabled contract.
TEST(HistogramTest, DisabledRecordsHaveNegligibleCost) {
  static obs::Histogram H("test.hist.bench_us");
  constexpr int N = 2000000;
  using Clock = std::chrono::steady_clock;

  CounterGate Gate(false);
  auto T0 = Clock::now();
  for (int I = 0; I < N; ++I)
    H.record(uint64_t(I));
  double DisabledMs =
      std::chrono::duration<double, std::milli>(Clock::now() - T0).count();

  obs::setCountersEnabled(true);
  T0 = Clock::now();
  for (int I = 0; I < N; ++I)
    H.record(uint64_t(I));
  double EnabledMs =
      std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
  H.reset();

  EXPECT_LT(DisabledMs, EnabledMs * 3 + 50.0);
  EXPECT_LT(DisabledMs, 200.0);
}

TEST(HistogramTest, WiredCatalogIsRegistered) {
  obs::HistogramSnapshotMap Snap = obs::snapshotHistograms();
  for (const char *Name :
       {"scan.latency_us", "phase.parse_us", "phase.build_us",
        "phase.import_us", "phase.query_us", "queue.wait_us", "worker.job_us",
        "proto.frame_bytes"})
    EXPECT_TRUE(Snap.count(Name)) << Name;
}

//===----------------------------------------------------------------------===//
// Prometheus rendering
//===----------------------------------------------------------------------===//

TEST(MetricsTest, RenderPrometheusEmitsCountersSummariesAndGauges) {
  obs::CounterSnapshot Counters;
  Counters["scan.attempts"] = 12;
  Counters["query.rows"] = 0; // zero counters are dropped
  obs::HistogramSnapshot H;
  H.Unit = "us";
  for (uint64_t V : {100ull, 200ull, 400ull, 10000ull}) {
    H.Buckets.push_back({obs::Histogram::bucketFor(V), 1});
    H.Sum += V;
  }
  std::sort(H.Buckets.begin(), H.Buckets.end());
  obs::HistogramSnapshotMap Hists;
  Hists["scan.latency_us"] = H;
  Hists["phase.parse_us"] = {}; // empty histograms are dropped
  obs::GaugeList Gauges = {{"serve.uptime_s", 3.5}, {"serve.queue_depth", 0}};

  std::string Page = obs::renderPrometheus(Counters, Hists, Gauges);
  EXPECT_NE(Page.find("# TYPE graphjs_scan_attempts counter"),
            std::string::npos);
  EXPECT_NE(Page.find("graphjs_scan_attempts 12"), std::string::npos);
  EXPECT_EQ(Page.find("graphjs_query_rows"), std::string::npos)
      << "zero counter must be dropped";
  EXPECT_NE(Page.find("# TYPE graphjs_scan_latency_us summary"),
            std::string::npos);
  for (const char *Q : {"quantile=\"0.5\"", "quantile=\"0.9\"",
                        "quantile=\"0.95\"", "quantile=\"0.99\""})
    EXPECT_NE(Page.find(Q), std::string::npos) << Q;
  EXPECT_NE(Page.find("graphjs_scan_latency_us_sum 10700"), std::string::npos);
  EXPECT_NE(Page.find("graphjs_scan_latency_us_count 4"), std::string::npos);
  EXPECT_EQ(Page.find("graphjs_phase_parse_us"), std::string::npos)
      << "empty histogram must be dropped";
  EXPECT_NE(Page.find("# TYPE graphjs_serve_uptime_s gauge"),
            std::string::npos);
  EXPECT_NE(Page.find("graphjs_serve_queue_depth 0"), std::string::npos);
}

TEST(MetricsTest, WritePrometheusFileIsAtomicAndReadable) {
  std::string Path = ::testing::TempDir() + "gjs_metrics_test.prom";
  std::remove(Path.c_str());
  obs::CounterSnapshot Counters;
  Counters["scan.attempts"] = 1;
  ASSERT_TRUE(obs::writePrometheusFile(Path, Counters, {}, {}));
  std::string Page = slurp(Path);
  EXPECT_NE(Page.find("graphjs_scan_attempts 1"), std::string::npos);
  EXPECT_EQ(slurp(Path + ".tmp"), "") << "temp file must not linger";
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Cross-process trace stitching primitives
//===----------------------------------------------------------------------===//

TEST(TraceStitchTest, ForeignSpansKeepTreeShapeAndGainPidLane) {
  TraceRecorder Worker;
  {
    Span Root(&Worker, "package");
    Span Child(&Worker, "parse");
  }
  TraceRecorder Sup;
  { Span Own(&Sup, "supervisor-setup"); }
  Sup.addForeignSpans(Worker.spans(), 4242);
  ASSERT_EQ(Sup.spans().size(), 3u);
  const SpanRecord &Pkg = Sup.spans()[1];
  const SpanRecord &Parse = Sup.spans()[2];
  EXPECT_EQ(Pkg.Name, "package");
  EXPECT_EQ(Pkg.Pid, 4242);
  EXPECT_EQ(Pkg.Parent, SpanRecord::npos);
  EXPECT_EQ(Parse.Parent, 1u) << "parent index rebased past existing spans";
  EXPECT_EQ(Sup.spans()[0].Pid, 0) << "own spans keep the default lane";
}

TEST(TraceStitchTest, CompletedSpansBackfillSchedulingWindows) {
  TraceRecorder TR;
  double Start = TR.nowUs();
  TR.addCompletedSpan("job:left-pad", Start, 1500.0);
  TR.addCompletedSpan("job:negative-dur", Start, -3.0);
  ASSERT_EQ(TR.spans().size(), 2u);
  EXPECT_EQ(TR.spans()[0].Name, "job:left-pad");
  EXPECT_NEAR(TR.spans()[0].StartUs, Start, 1e-9);
  EXPECT_NEAR(TR.spans()[0].DurUs, 1500.0, 1e-9);
  EXPECT_EQ(TR.spans()[1].DurUs, 0.0) << "negative durations clamp";
}

TEST(TraceStitchTest, ChromeJSONLabelsPidLanes) {
  TraceRecorder TR;
  TR.setDefaultPid(1000);
  TR.labelPid(1000, "supervisor");
  TR.labelPid(2000, "worker 2000");
  { Span Own(&TR, "schedule"); }
  TraceRecorder Worker;
  { Span Pkg(&Worker, "package"); }
  TR.addForeignSpans(Worker.spans(), 2000);

  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(TR.toChromeJSON(), V, &Error)) << Error;
  const json::Array &Events = V.asObject().at("traceEvents").asArray();
  std::set<int> Pids;
  size_t Metadata = 0;
  for (const json::Value &E : Events) {
    const json::Object &O = E.asObject();
    if (O.at("ph").asString() == "M") {
      ++Metadata;
      EXPECT_EQ(O.at("name").asString(), "process_name");
      continue;
    }
    Pids.insert(int(O.at("pid").asNumber()));
  }
  EXPECT_EQ(Metadata, 2u) << "one process_name record per labelled lane";
  EXPECT_TRUE(Pids.count(1000)) << "own spans on the default lane";
  EXPECT_TRUE(Pids.count(2000)) << "foreign spans on the worker lane";
}

//===----------------------------------------------------------------------===//
// Pipeline integration: spans + per-package counters from a real scan
//===----------------------------------------------------------------------===//

TEST(ScanObsTest, ScanPackageCoversEveryPipelinePhase) {
  TraceRecorder TR;
  scanner::ScanOptions O;
  O.Trace = &TR;
  scanner::Scanner S(O);
  scanner::ScanResult R = S.scanPackage({{"index.js", VulnSource}});
  ASSERT_FALSE(R.Reports.empty());

  std::set<std::string> Names = spanNames(TR);
  for (const char *Phase : {"package", "attempt", "parse", "file", "lex",
                            "ast", "normalize", "build", "import", "query"})
    EXPECT_TRUE(Names.count(Phase)) << "missing span: " << Phase;

  // The package span is the root and encloses everything else.
  const auto &Spans = TR.spans();
  ASSERT_FALSE(Spans.empty());
  EXPECT_EQ(Spans[0].Name, "package");
  EXPECT_EQ(Spans[0].Depth, 0u);
  for (size_t I = 1; I < Spans.size(); ++I)
    EXPECT_GT(Spans[I].Depth, 0u) << Spans[I].Name;
}

TEST(ScanObsTest, NativeBackendTracesNativeQuerySpan) {
  TraceRecorder TR;
  scanner::ScanOptions O;
  O.Trace = &TR;
  O.Backend = scanner::QueryBackend::Native;
  scanner::Scanner S(O);
  S.scanPackage({{"index.js", VulnSource}});
  EXPECT_TRUE(spanNames(TR).count("native-query"));
  EXPECT_FALSE(spanNames(TR).count("import"))
      << "native backend must skip the graph-database import";
}

TEST(ScanObsTest, ScanResultCarriesPerPackageCounterDeltas) {
  CounterGate Gate(true);
  scanner::Scanner S;
  scanner::ScanResult R = S.scanPackage({{"index.js", VulnSource}});
  ASSERT_FALSE(R.Counters.empty());
  EXPECT_GT(R.Counters.at("lex.tokens"), 0u);
  EXPECT_GT(R.Counters.at("build.mdg_nodes"), 0u);
  EXPECT_GT(R.Counters.at("import.nodes"), 0u);
  EXPECT_GT(R.Counters.at("query.steps"), 0u);
  EXPECT_EQ(R.Counters.at("scan.attempts"), 1u);

  // A second package must report its own deltas, not the running totals.
  scanner::ScanResult R2 = S.scanPackage({{"index.js", VulnSource}});
  EXPECT_EQ(R2.Counters.at("lex.tokens"), R.Counters.at("lex.tokens"));
}

TEST(ScanObsTest, CountersDisabledLeavesResultEmpty) {
  CounterGate Gate(false);
  scanner::Scanner S;
  scanner::ScanResult R = S.scanPackage({{"index.js", VulnSource}});
  EXPECT_TRUE(R.Counters.empty());
}

//===----------------------------------------------------------------------===//
// Per-attempt timing attribution under the degradation ladder
//===----------------------------------------------------------------------===//

TEST(AttemptLogTest, RetriedPackageAccountsEveryAttempt) {
  scanner::ScanOptions O;
  scanner::FaultPlan Fault;
  ASSERT_TRUE(scanner::FaultPlan::parse("build:fail:0", Fault));
  O.Fault = Fault;
  scanner::Scanner S(O);
  scanner::ScanResult R = S.scanPackage({{"index.js", VulnSource}});

  // The one-shot fault fails attempt 0 and the ladder retries with
  // cheaper settings; every attempt must be in the log, in level order.
  EXPECT_GE(R.Attempts, 2u);
  EXPECT_EQ(R.Retries, R.Attempts - 1);
  ASSERT_EQ(R.AttemptLog.size(), R.Attempts);
  for (size_t I = 0; I < R.AttemptLog.size(); ++I)
    EXPECT_EQ(R.AttemptLog[I].Level, I);
  EXPECT_FALSE(R.Reports.empty()) << "the retry must still find the vuln";

  // CumulativeTimes sums every attempt; Times is the final attempt only.
  double LogTotal = 0;
  for (const scanner::AttemptRecord &A : R.AttemptLog)
    LogTotal += A.Times.total();
  EXPECT_NEAR(R.CumulativeTimes.total(), LogTotal, 1e-9);
  EXPECT_GE(R.CumulativeTimes.total(), R.Times.total());
}

TEST(AttemptLogTest, SingleAttemptLogMatchesFinalTimes) {
  scanner::Scanner S;
  scanner::ScanResult R = S.scanPackage({{"index.js", VulnSource}});
  EXPECT_EQ(R.Attempts, 1u);
  EXPECT_EQ(R.Retries, 0u);
  ASSERT_EQ(R.AttemptLog.size(), 1u);
  EXPECT_NEAR(R.CumulativeTimes.total(), R.Times.total(), 1e-9);
}

//===----------------------------------------------------------------------===//
// Query profiler: EXPLAIN and PROFILE
//===----------------------------------------------------------------------===//

namespace {

analysis::BuildResult buildFromSource(const char *Source) {
  DiagnosticEngine Diags;
  auto Program = core::normalizeJS(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  return analysis::buildMDG(*Program);
}

} // namespace

TEST(ProfilerTest, ExplainRendersEveryPlanStepWithoutExecuting) {
  auto Builtins =
      queries::GraphDBRunner::builtinQueries(queries::SinkConfig::defaults());
  ASSERT_GE(Builtins.size(), 4u);
  for (const auto &[Name, Text] : Builtins) {
    graphdb::Query Q;
    std::string Error;
    ASSERT_TRUE(graphdb::parseQuery(Text, Q, &Error)) << Name << ": " << Error;
    std::string Plan = graphdb::explainQuery(Q);
    EXPECT_NE(Plan.find("step 0: scan"), std::string::npos) << Name;
    EXPECT_NE(Plan.find("expand"), std::string::npos) << Name;
  }
}

TEST(ProfilerTest, ProfileAnnotatesStepsWithCandidatesMatchesAndTime) {
  analysis::BuildResult Build = buildFromSource(VulnSource);
  queries::GraphDBRunner Runner(Build);
  auto Profiles = Runner.profileBuiltins(queries::SinkConfig::defaults());
  ASSERT_GE(Profiles.size(), 4u);

  size_t QueriesWithRows = 0;
  for (const auto &[Name, P] : Profiles) {
    ASSERT_FALSE(P.Steps.empty()) << Name;
    EXPECT_EQ(P.Steps[0].Pos, 0u) << Name << ": plan starts with a scan";
    for (const graphdb::StepProfile &Step : P.Steps) {
      EXPECT_GE(Step.Candidates, Step.Matches) << Name << " " << Step.Desc;
      EXPECT_GE(Step.Seconds, 0.0) << Name;
      EXPECT_FALSE(Step.Desc.empty()) << Name;
    }
    EXPECT_GE(P.TotalSeconds, 0.0);
    QueriesWithRows += P.Rows > 0;
  }
  EXPECT_GE(QueriesWithRows, 1u) << "the CWE-78 fixture must match something";
}

TEST(ProfilerTest, ProfiledRunReturnsSameRowsAsUnprofiled) {
  analysis::BuildResult Build = buildFromSource(VulnSource);
  queries::GraphDBRunner Runner(Build);
  auto Builtins =
      queries::GraphDBRunner::builtinQueries(queries::SinkConfig::defaults());
  for (const auto &[Name, Text] : Builtins) {
    std::string Error;
    graphdb::QueryProfile P;
    graphdb::ResultSet Plain = Runner.runQuery(Text, &Error);
    ASSERT_TRUE(Error.empty()) << Name << ": " << Error;
    graphdb::ResultSet Profiled = Runner.runQuery(Text, &Error, &P);
    ASSERT_TRUE(Error.empty()) << Name << ": " << Error;
    EXPECT_EQ(Plain.Rows.size(), Profiled.Rows.size()) << Name;
    EXPECT_EQ(P.Rows, Profiled.Rows.size()) << Name;
    EXPECT_EQ(P.Work, Profiled.Work) << Name;
  }
}

TEST(ProfilerTest, RenderProfileListsStepsAndTotals) {
  analysis::BuildResult Build = buildFromSource(VulnSource);
  queries::GraphDBRunner Runner(Build);
  auto Profiles = Runner.profileBuiltins(queries::SinkConfig::defaults());
  ASSERT_FALSE(Profiles.empty());
  std::string Text = graphdb::renderProfile(Profiles[0].second);
  EXPECT_NE(Text.find("candidates="), std::string::npos);
  EXPECT_NE(Text.find("matches="), std::string::npos);
  EXPECT_NE(Text.find("total:"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// CLI round trips
//===----------------------------------------------------------------------===//

#if defined(GRAPHJS_BIN) && defined(GJS_EXAMPLES_JS_DIR)

TEST(ObsCLITest, ScanTraceOutWritesChromeLoadableJSON) {
  std::string TracePath = ::testing::TempDir() + "gjs_obs_trace.json";
  std::remove(TracePath.c_str());
  // --no-prune: the clean example would otherwise prune all four classes
  // and skip the import/query phases this test asserts spans for.
  std::string Cmd = std::string(GRAPHJS_BIN) + " scan --no-prune --trace-out " +
                    TracePath + " " + GJS_EXAMPLES_JS_DIR +
                    "/clean_utils.js > /dev/null 2>&1";
  EXPECT_EQ(std::system(Cmd.c_str()), 0);

  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(slurp(TracePath), V, &Error)) << Error;
  const json::Array &Events = V.asObject().at("traceEvents").asArray();
  std::set<std::string> Names;
  for (const json::Value &E : Events)
    Names.insert(E.asObject().at("name").asString());
  for (const char *Phase :
       {"lex", "parse", "normalize", "build", "import", "query"})
    EXPECT_TRUE(Names.count(Phase)) << "missing phase in trace: " << Phase;
}

TEST(ObsCLITest, QueryExplainPrintsBuiltinPlans) {
  std::string Out = ::testing::TempDir() + "gjs_obs_explain.txt";
  std::string Cmd = std::string(GRAPHJS_BIN) + " query --explain > " + Out +
                    " 2>/dev/null";
  EXPECT_EQ(std::system(Cmd.c_str()), 0);
  std::string Text = slurp(Out);
  EXPECT_NE(Text.find("step 0: scan"), std::string::npos);
  EXPECT_NE(Text.find("command-injection"), std::string::npos);
  EXPECT_NE(Text.find("prototype-pollution"), std::string::npos);
}

TEST(ObsCLITest, QueryProfileReportsStepMetricsOnExample) {
  std::string Out = ::testing::TempDir() + "gjs_obs_profile.txt";
  std::string Cmd = std::string(GRAPHJS_BIN) + " query --profile " +
                    GJS_EXAMPLES_JS_DIR + "/figure1.js > " + Out +
                    " 2>/dev/null";
  EXPECT_EQ(std::system(Cmd.c_str()), 0);
  std::string Text = slurp(Out);
  EXPECT_NE(Text.find("candidates="), std::string::npos);
  EXPECT_NE(Text.find("matches="), std::string::npos);
  // All four vulnerability classes are profiled.
  for (const char *Class : {"command-injection", "code-injection",
                            "path-traversal", "prototype-pollution"})
    EXPECT_NE(Text.find(Class), std::string::npos) << Class;
}

#endif // GRAPHJS_BIN && GJS_EXAMPLES_JS_DIR
