//===- tools/graphjs_cli.cpp - The graphjs command-line scanner -----------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// The Graph.js user experience as a CLI:
//
//   graphjs scan  [options] <file.js>...     scan for vulnerabilities
//   graphjs query <query> <file.js>...       run a raw graph query
//   graphjs lint  [options] <file.js>...     validate pipeline artifacts
//   graphjs batch [options] <dir|list.txt>   resumable batch scan
//   graphjs serve --socket p [options]       long-lived scan daemon
//   graphjs metrics --socket p               one-shot daemon metrics client
//   graphjs callgraph [options] <file.js>... static call graph + summaries
//
// Batch options:
//   --journal <out.jsonl>   incremental per-package outcome journal
//   --resume                skip packages already in the journal
//   --deadline-ms <n>       per-package wall-clock budget
//   --work <n>              per-package abstract work budget
//   --max <n>               stop after scanning n packages (sharding)
//   --max-degradation <n>   degradation-ladder depth (default 2)
//   --inject-fault <spec>   deterministic fault (repeatable with --jobs):
//                           <phase>:<fail|stall|crash|hang|oom>[:<n>]
//   --jobs <n>              supervised worker pool: fork one process per
//                           package, n at a time (OS-level containment)
//   --mem-limit-mb <n>      per-worker RLIMIT_AS cap (needs --jobs)
//   --kill-after-ms <n>     supervisor SIGKILLs workers past this wall
//                           budget (needs --jobs; default 2*deadline+1s)
//   --retry-crashed         retry a crashed/killed package once at half
//                           budget (needs --jobs)
//   --persistent            keep workers alive across packages (needs
//                           --jobs): a pipe-fed job queue instead of one
//                           fork per package — same kill ladder, same
//                           journal bytes, amortized fork cost
//   --recycle-after <n>     retire a persistent worker after n packages
//                           (needs --persistent)
//   --recycle-mem-mb <n>    retire a persistent worker whose RSS exceeds
//                           n MiB after a job (needs --persistent)
//   --quiet                 suppress the stderr progress line
//   --trace-out <t.json>    Chrome trace of the run; with --jobs the
//                           supervisor stitches worker span trees onto
//                           per-process pid lanes beside its own
//                           scheduling spans
//   --metrics-out <m.prom>  periodically rewritten Prometheus text
//                           snapshot (counters + latency percentiles)
//   --shared <dir>          crash-safe distributed draining: coordinate
//                           with any number of concurrent supervisors
//                           through an on-disk work ledger (lease-based
//                           work stealing, CRC-framed shard journals,
//                           poison-package quarantine; docs/ROBUSTNESS.md)
//   --shard-size <n>        packages per lease granule (default 4)
//   --lease-expiry-ms <n>   steal leases idle past this (default 10000)
//   --quarantine-after <n>  kill-class strikes before a package is
//                           quarantined corpus-wide (default 3)
//   --supervisor-id <id>    stable id in lease records (default pid-hex)
//   --chaos-kill-after <n>  test harness: SIGKILL this supervisor right
//                           after its (n+1)-th start record
//   --native / --summary / --sinks also apply
//
// Serve options (graphjs serve):
//   --socket <path>         Unix-domain socket to bind (required)
//   --jobs <n>              warm persistent workers (default 2)
//   --queue-max <n>         admission bound: scans beyond this many queued
//                           are rejected "overloaded" (default 64)
//   --journal <out.jsonl>   append-mode journal of completed scans
//   --deadline-ms <n>       default per-scan budget (requests override)
//   --kill-after-ms, --recycle-after, --recycle-mem-mb, --mem-limit-mb
//                           same worker policy knobs as batch --persistent
//   --heartbeat-ms <n>      idle-worker ping cadence (default 5000; 0 off)
//   --metrics-out <m.prom>  periodically rewritten Prometheus text
//                           snapshot (counters, percentiles, gauges)
//   --client '<json>'       one-shot client: send one NDJSON request line
//                           to the daemon, print the response, exit 0 iff
//                           the response says ok ('{"op":"metrics"}' has
//                           the shorthand `graphjs metrics --socket p`)
//   --retry-budget-ms <n>   client paths only: retry "overloaded"
//                           rejections with exponential backoff + jitter
//                           until this much wall time is spent (default 0,
//                           one attempt; also on `graphjs metrics`)
//
// Scan options:
//   --sinks <config.json>   custom sink configuration (§4)
//   --native                use native traversals instead of the graph DB
//   --confirm               confirm findings by concrete witness replay
//   --dump-core             print the Core JavaScript lowering
//   --dump-mdg              print the MDG
//   --dot                   print the MDG as GraphViz dot
//   --summary               human-readable output (default: JSON)
//   --package               scan all inputs as one linked package
//   --with-deps             treat the input as a dependency-tree root
//                           directory: discover its package graph
//                           (graphjs.deps.json or package.json +
//                           node_modules/) and scan the whole tree linked
//   --emit-summaries <dir>  with --with-deps: write per-package taint
//                           summary JSON files into <dir>
//   --self-check            run the MDG well-formedness checker too
//   --no-prune              disable summary-based pre-query pruning
//
// Callgraph options:
//   --dot                   GraphViz dot instead of text
//   --summaries             also print per-function taint summaries and
//                           the pruning decision
//   --packages              treat the input as a dependency-tree root
//                           directory and print the package DAG, link
//                           order, and the cross-package call graph
//
// Lint options:
//   --summary               human-readable output (default: JSON)
//   --query '<text>'        also schema-lint an ad-hoc query (repeatable)
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/MDGBuilder.h"
#include "analysis/PackageGraph.h"
#include "analysis/TaintSummary.h"
#include "cfg/CFG.h"
#include "core/AsyncLower.h"
#include "core/Normalizer.h"
#include "driver/BatchDriver.h"
#include "driver/ProcessPool.h"
#include "driver/ScanService.h"
#include "driver/WorkLedger.h"
#include "frontend/Parser.h"
#include "graphdb/QueryEngine.h"
#include "graphdb/SchemaLint.h"
#include "lint/PassManager.h"
#include "obs/Counters.h"
#include "obs/Histogram.h"
#include "obs/Trace.h"
#include "queries/QueryRunner.h"
#include "scanner/Scanner.h"
#include "scanner/WitnessReplay.h"
#include "support/JSON.h"
#include "support/Timer.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace gjs;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: graphjs scan [--sinks cfg.json] [--native] [--confirm]\n"
      "                    [--dump-core] [--dump-mdg] [--summary]\n"
      "                    [--self-check] [--no-prune] [--no-async-lower]\n"
      "                    [--trace] [--trace-out t.json] [--package]\n"
      "                    <file.js>...\n"
      "       graphjs scan --with-deps [--emit-summaries dir] [options]\n"
      "                    <root-dir>\n"
      "       graphjs query [--explain] [--profile] [--builtin]\n"
      "                     ['<MATCH ... RETURN ...>'] <file.js>...\n"
      "       graphjs lint [--summary] [--query '<text>'] <file.js>...\n"
      "       graphjs batch [--journal out.jsonl] [--resume] [--stats]\n"
      "                     [--deadline-ms n] [--work n] [--max n]\n"
      "                     [--max-degradation n] [--inject-fault spec]\n"
      "                     [--jobs n] [--persistent] [--recycle-after n]\n"
      "                     [--recycle-mem-mb n] [--mem-limit-mb n]\n"
      "                     [--kill-after-ms n] [--retry-crashed] [--quiet]\n"
      "                     [--trace-out t.json] [--metrics-out m.prom]\n"
      "                     [--shared dir] [--shard-size n]\n"
      "                     [--lease-expiry-ms n] [--quarantine-after n]\n"
      "                     [--supervisor-id id] [--chaos-kill-after n]\n"
      "                     [--native] [--summary] [--no-prune]\n"
      "                     [--no-async-lower] <dir|list.txt|file.js>...\n"
      "       graphjs serve --socket path [--jobs n] [--queue-max n]\n"
      "                     [--journal out.jsonl] [--deadline-ms n]\n"
      "                     [--kill-after-ms n] [--recycle-after n]\n"
      "                     [--recycle-mem-mb n] [--mem-limit-mb n]\n"
      "                     [--heartbeat-ms n] [--sinks cfg.json]\n"
      "                     [--metrics-out m.prom] [--native] [--no-prune]\n"
      "                     [--no-async-lower] [--quiet]\n"
      "                     [--client '<json-request>']\n"
      "                     [--retry-budget-ms n]\n"
      "       graphjs metrics --socket path [--retry-budget-ms n]\n"
      "       graphjs callgraph [--dot] [--summaries] [--sinks cfg.json]\n"
      "                         <file.js>... | --packages <root-dir>\n");
  return 2;
}

/// Prints the nonzero obs counters (the `--trace` counter dump).
void dumpCounters(FILE *To) {
  obs::CounterSnapshot Snap = obs::snapshotCounters();
  std::fprintf(To, "counters:\n");
  for (const auto &[Name, Value] : Snap)
    if (Value)
      std::fprintf(To, "  %-24s %llu\n", Name.c_str(),
                   static_cast<unsigned long long>(Value));
}

/// Writes the recorder's Chrome trace_event JSON to \p Path.
bool writeTrace(const obs::TraceRecorder &TR, const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write trace to %s\n", Path.c_str());
    return false;
  }
  Out << TR.toChromeJSON() << '\n';
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int runScan(const std::vector<std::string> &Files, bool Native, bool Confirm,
            bool DumpCore, bool DumpMDG, bool DumpDot, bool Summary,
            bool SelfCheck, bool Prune, bool AsyncLower,
            const std::string &SinksFile, obs::TraceRecorder *TR) {
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();
  if (!SinksFile.empty()) {
    std::string Text;
    if (!readFile(SinksFile, Text)) {
      std::fprintf(stderr, "error: cannot open sink config %s\n",
                   SinksFile.c_str());
      return 1;
    }
    queries::SinkConfig Custom;
    std::string Error;
    if (!queries::SinkConfig::fromJSON(Text, Custom, &Error)) {
      std::fprintf(stderr, "error: bad sink config: %s\n", Error.c_str());
      return 1;
    }
    Sinks = Custom;
  }

  // Fail fast: a malformed built-in query would otherwise just match
  // nothing and the scan would look vacuously clean.
  if (!Native) {
    std::string SchemaError;
    if (!queries::GraphDBRunner::validateBuiltinQueries(Sinks,
                                                        &SchemaError)) {
      std::fprintf(stderr, "error: %s\n", SchemaError.c_str());
      return 4;
    }
  }

  int ExitCode = 0;
  for (const std::string &Path : Files) {
    std::string Source;
    if (!readFile(Path, Source)) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return 1;
    }

    obs::Span FileSpan(TR, "file");
    FileSpan.arg("name", Path);

    // The pipeline phases are explicit here (rather than the normalizeJS
    // convenience wrapper) so each gets its own trace span.
    DiagnosticEngine Diags;
    obs::Span ParseSpan(TR, "parse");
    auto Module = parseJS(Source, Diags, nullptr, TR);
    ParseSpan.close();
    if (Diags.hasErrors()) {
      std::fprintf(stderr, "%s: parse errors:\n%s", Path.c_str(),
                   Diags.str().c_str());
      ExitCode = 1;
      continue;
    }
    obs::Span NormSpan(TR, "normalize");
    core::Normalizer Norm(Diags);
    auto Program = Norm.normalize(*Module);
    NormSpan.close();
    if (Diags.hasErrors()) {
      std::fprintf(stderr, "%s: parse errors:\n%s", Path.c_str(),
                   Diags.str().c_str());
      ExitCode = 1;
      continue;
    }
    if (AsyncLower) {
      obs::Span LowerSpan(TR, "lower");
      Timer LowerTimer;
      core::AsyncLowerStats AS = core::lowerAsync(*Program);
      obs::hists::PhaseLower.recordSeconds(LowerTimer.elapsedSeconds());
      obs::counters::AsyncAwaitsLowered.add(AS.AwaitsLowered);
      obs::counters::AsyncReactionsLinked.add(AS.ReactionsLinked);
      obs::counters::AsyncCallbacksUnresolved.add(AS.CallbacksUnresolved);
      LowerSpan.arg("awaits_lowered", AS.AwaitsLowered);
      LowerSpan.arg("reactions_linked", AS.ReactionsLinked);
      LowerSpan.arg("callbacks_unresolved", AS.CallbacksUnresolved);
    }
    if (DumpCore)
      std::printf("== %s: Core JavaScript ==\n%s\n", Path.c_str(),
                  core::dump(*Program).c_str());

    // Summary-based pre-query pruning (same stage the package scanner
    // runs): classes the exported API provably cannot reach are skipped.
    std::array<bool, queries::NumVulnTypes> Enabled;
    Enabled.fill(true);
    if (Prune) {
      obs::Span PruneSpan(TR, "prune");
      std::vector<const core::Program *> Mods{Program.get()};
      analysis::CallGraph CG = analysis::CallGraph::build(Mods, {""});
      analysis::SummarySet Sums =
          analysis::computeSummaries(CG, Mods, queries::toSinkTable(Sinks));
      analysis::PruneDecision PD = analysis::decidePruning(CG, Sums);
      for (int C = 0; C < queries::NumVulnTypes; ++C)
        Enabled[C] = !PD.Prunable[C];
      obs::counters::SummariesComputed.add(Sums.Summaries.size());
      obs::counters::CallGraphEdgesResolved.add(CG.numResolvedEdges());
      obs::counters::CallGraphEdgesUnresolved.add(CG.numUnresolvedSites());
      obs::counters::PruneQueriesSkipped.add(PD.numPruned());
      PruneSpan.arg("pruned", static_cast<uint64_t>(PD.numPruned()));
      PruneSpan.arg("decision", PD.str());
    }
    bool AllPruned = true;
    for (bool En : Enabled)
      AllPruned = AllPruned && !En;

    obs::Span BuildSpan(TR, "build");
    analysis::BuildResult Build = analysis::buildMDG(*Program);
    BuildSpan.arg("mdg_nodes", static_cast<uint64_t>(Build.Graph.numNodes()));
    BuildSpan.arg("mdg_edges", static_cast<uint64_t>(Build.Graph.numEdges()));
    BuildSpan.close();
    if (SelfCheck) {
      lint::PassManager PM;
      PM.addPass(lint::createMDGCheckPass());
      lint::LintContext Ctx;
      Ctx.Build = &Build;
      lint::LintResult LR = PM.run(Ctx);
      for (const lint::Finding &F : LR.findings())
        std::fprintf(stderr, "%s: self-check: %s\n", Path.c_str(),
                     F.str().c_str());
      if (LR.hasErrors())
        return 4;
    }
    if (DumpMDG)
      std::printf("== %s: MDG (%zu nodes, %zu edges) ==\n%s\n", Path.c_str(),
                  Build.Graph.numNodes(), Build.Graph.numEdges(),
                  Build.Graph.dump(Build.Props).c_str());
    if (DumpDot)
      std::printf("%s", Build.Graph.toDot(Build.Props).c_str());

    std::vector<queries::VulnReport> Reports;
    if (AllPruned) {
      // Every class pruned: the import and query phases are skipped.
      obs::counters::PruneImportsSkipped.add();
    } else if (Native) {
      obs::Span NativeSpan(TR, "native-query");
      Reports = queries::detectNative(Build, Sinks, Enabled);
      NativeSpan.arg("reports", static_cast<uint64_t>(Reports.size()));
    } else {
      graphdb::EngineOptions EO;
      EO.Trace = TR;
      obs::Span ImportSpan(TR, "import");
      queries::GraphDBRunner Runner(Build, EO);
      ImportSpan.close();
      obs::Span QuerySpan(TR, "query");
      Reports = Runner.detect(Sinks, nullptr, Enabled);
      QuerySpan.arg("reports", static_cast<uint64_t>(Reports.size()));
    }

    std::vector<std::string> Witnesses(Reports.size());
    std::vector<bool> Confirmed(Reports.size(), false);
    if (Confirm) {
      for (size_t I = 0; I < Reports.size(); ++I) {
        scanner::ReplayResult RR =
            scanner::replayFinding(*Program, Reports[I]);
        Confirmed[I] = RR.Confirmed;
        Witnesses[I] = RR.Witness;
      }
    }

    if (Summary) {
      std::printf("%s: %zu finding(s)\n", Path.c_str(), Reports.size());
      for (size_t I = 0; I < Reports.size(); ++I) {
        std::printf("  %s", Reports[I].str().c_str());
        if (Confirm)
          std::printf("  [%s]%s%s",
                      Confirmed[I] ? "confirmed" : "unconfirmed",
                      Witnesses[I].empty() ? "" : " witness: ",
                      Witnesses[I].c_str());
        std::printf("\n");
      }
    } else {
      json::Array Arr;
      for (size_t I = 0; I < Reports.size(); ++I) {
        json::Object O;
        O["file"] = json::Value(Path);
        O["cwe"] = json::Value(queries::cweOf(Reports[I].Type));
        O["type"] = json::Value(queries::vulnTypeName(Reports[I].Type));
        O["line"] =
            json::Value(static_cast<unsigned>(Reports[I].SinkLoc.Line));
        if (!Reports[I].SinkName.empty())
          O["sink"] = json::Value(Reports[I].SinkName);
        if (Confirm) {
          O["confirmed"] = json::Value(static_cast<bool>(Confirmed[I]));
          if (!Witnesses[I].empty())
            O["witness"] = json::Value(Witnesses[I]);
        }
        Arr.push_back(json::Value(std::move(O)));
      }
      std::printf("%s\n", json::Value(std::move(Arr)).str(2).c_str());
    }
    if (!Reports.empty())
      ExitCode = 3; // Findings present.
  }
  return ExitCode;
}

/// Linked multi-file scan: one MDG for all inputs (local requires
/// resolve across files).
int runPackageScan(const std::vector<std::string> &Files, bool Native,
                   bool Summary, bool SelfCheck, bool Prune, bool AsyncLower,
                   const std::string &SinksFile, obs::TraceRecorder *TR) {
  scanner::ScanOptions O;
  O.SelfCheck = SelfCheck;
  O.Prune = Prune;
  O.AsyncLower = AsyncLower;
  O.Trace = TR;
  if (!SinksFile.empty()) {
    std::string Text;
    queries::SinkConfig Custom;
    std::string Error;
    if (!readFile(SinksFile, Text) ||
        !queries::SinkConfig::fromJSON(Text, Custom, &Error)) {
      std::fprintf(stderr, "error: bad sink config %s: %s\n",
                   SinksFile.c_str(), Error.c_str());
      return 1;
    }
    O.Sinks = Custom;
  }
  if (Native)
    O.Backend = scanner::QueryBackend::Native;

  std::vector<scanner::SourceFile> Sources;
  for (const std::string &Path : Files) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return 1;
    }
    Sources.push_back({Path, Text});
  }
  scanner::Scanner S(O);
  scanner::ScanResult R = S.scanPackage(Sources);
  for (const scanner::ScanError &E : R.Errors)
    std::fprintf(stderr, "warning: %s\n", E.str().c_str());
  for (const lint::Finding &F : R.SelfCheckFindings)
    std::fprintf(stderr, "self-check: %s\n", F.str().c_str());
  if (!R.SchemaError.empty()) {
    std::fprintf(stderr, "error: %s\n", R.SchemaError.c_str());
    return 4;
  }
  if (Summary) {
    std::printf("package (%zu files): %zu finding(s)\n", Sources.size(),
                R.Reports.size());
    if (R.PrunedQueries)
      std::printf("  pruned %u quer%s%s (%s)\n", R.PrunedQueries,
                  R.PrunedQueries == 1 ? "y" : "ies",
                  R.PruneSkippedImport ? " + import" : "",
                  R.PruneReason.c_str());
    for (const queries::VulnReport &Rep : R.Reports)
      std::printf("  %s\n", Rep.str().c_str());
  } else {
    std::printf("%s\n", scanner::reportsToJSON(R.Reports).c_str());
  }
  return R.Reports.empty() ? 0 : 3;
}

/// Parses and normalizes a flattened dependency tree with the same
/// per-module `<pkg>$<stem>$` name prefixing the scanner uses, and builds
/// the ModuleLinkInfo (main-module map + unresolved-name valve) for it.
/// Modules that fail to parse route their package and stem into
/// ForceUnresolved instead of aborting.
struct LinkedTree {
  analysis::PackageGraph::FlatPlan Plan;
  std::vector<std::unique_ptr<core::Program>> Programs; ///< parsed only
  std::vector<const core::Program *> Mods;
  std::vector<std::string> Stems;
  analysis::ModuleLinkInfo Link;
};

bool buildLinkedTree(const analysis::PackageGraph &G, LinkedTree &B) {
  B.Plan = G.flatten();
  for (const std::string &W : B.Plan.Warnings)
    std::fprintf(stderr, "warning: %s\n", W.c_str());
  B.Link.ForceUnresolved = B.Plan.MissingDeps;

  // Pass 1: parse + normalize; a failed module trips the valve for its
  // whole package (its exports are unknowable).
  std::vector<std::unique_ptr<core::Program>> Parsed(B.Plan.Modules.size());
  std::vector<std::string> AllStems(B.Plan.Modules.size());
  core::StmtIndex NextIndex = 1;
  for (size_t I = 0; I < B.Plan.Modules.size(); ++I) {
    const analysis::PackageGraph::FlatModule &M = B.Plan.Modules[I];
    AllStems[I] = std::filesystem::path(M.Path).stem().string();
    DiagnosticEngine Diags;
    auto Module = parseJS(*M.Contents, Diags);
    if (!Diags.hasErrors()) {
      core::Normalizer Norm(Diags, M.Pkg + "$" + AllStems[I] + "$",
                            NextIndex);
      Parsed[I] = Norm.normalize(*Module);
      core::lowerAsync(*Parsed[I], M.Pkg + "$" + AllStems[I] + "$");
      NextIndex = Parsed[I]->NumIndices + 1;
    }
    if (Diags.hasErrors()) {
      std::fprintf(stderr,
                   "warning: %s: parse errors; package '%s' linked as "
                   "unresolved\n",
                   M.Path.c_str(), M.Pkg.c_str());
      B.Link.ForceUnresolved.insert(M.Pkg);
      B.Link.ForceUnresolved.insert(AllStems[I]);
      Parsed[I] = nullptr;
    }
  }

  // Pass 2: the link tables, indexed parallel to the surviving modules.
  for (size_t I = 0; I < B.Plan.Modules.size(); ++I) {
    if (!Parsed[I])
      continue;
    const analysis::PackageGraph::FlatModule &M = B.Plan.Modules[I];
    B.Link.PkgOf.push_back(M.Pkg);
    if (M.IsMain && !B.Link.ForceUnresolved.count(M.Pkg))
      B.Link.MainModuleOf.emplace(M.Pkg, B.Mods.size());
    B.Programs.push_back(std::move(Parsed[I]));
    B.Mods.push_back(B.Programs.back().get());
    B.Stems.push_back(AllStems[I]);
  }
  if (B.Mods.empty()) {
    std::fprintf(stderr, "error: no analyzable modules in the tree\n");
    return false;
  }
  return true;
}

/// `--with-deps --emit-summaries <dir>`: recomputes the linked call graph
/// and taint summaries over the tree, slices them per package, and writes
/// one `<pkg>.summary.json` per analyzable package.
bool emitPackageSummaries(const analysis::PackageGraph &G,
                          const queries::SinkConfig &Sinks,
                          const std::string &Dir) {
  LinkedTree B;
  if (!buildLinkedTree(G, B))
    return false;
  analysis::CallGraph CG =
      analysis::CallGraph::build(B.Mods, B.Stems, true, &B.Link);
  analysis::SummarySet Sums =
      analysis::computeSummaries(CG, B.Mods, queries::toSinkTable(Sinks));
  std::vector<analysis::PackageSummaries> Slices =
      analysis::slicePackageSummaries(G, CG, Sums, B.Link);

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  for (const analysis::PackageSummaries &PS : Slices) {
    // Scoped names ("@scope/pkg") must not become subdirectories.
    std::string Base = PS.Package;
    std::replace(Base.begin(), Base.end(), '/', '_');
    std::filesystem::path Out =
        std::filesystem::path(Dir) / (Base + ".summary.json");
    std::ofstream OS(Out);
    if (!OS) {
      std::fprintf(stderr, "error: cannot write %s\n", Out.string().c_str());
      return false;
    }
    OS << analysis::packageSummaryToJSON(PS) << '\n';
  }
  std::fprintf(stderr, "wrote %zu package summar%s to %s\n", Slices.size(),
               Slices.size() == 1 ? "y" : "ies", Dir.c_str());
  return true;
}

/// `graphjs scan --with-deps <root-dir>`: discovers the root's dependency
/// tree and scans it as one linked unit — taint flows that cross package
/// boundaries (a sink buried levels deep in node_modules) are visible,
/// unlike an isolated per-package scan.
int runDepsScan(const std::string &RootDir, bool Native, bool Summary,
                bool SelfCheck, bool Prune, bool AsyncLower,
                const std::string &SinksFile,
                const std::string &EmitSummariesDir, obs::TraceRecorder *TR) {
  analysis::PackageGraph G;
  std::string Error;
  if (!analysis::PackageGraph::discover(RootDir, G, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  scanner::ScanOptions O;
  O.SelfCheck = SelfCheck;
  O.Prune = Prune;
  O.AsyncLower = AsyncLower;
  O.Trace = TR;
  if (!SinksFile.empty()) {
    std::string Text;
    queries::SinkConfig Custom;
    std::string SinkError;
    if (!readFile(SinksFile, Text) ||
        !queries::SinkConfig::fromJSON(Text, Custom, &SinkError)) {
      std::fprintf(stderr, "error: bad sink config %s: %s\n",
                   SinksFile.c_str(), SinkError.c_str());
      return 1;
    }
    O.Sinks = Custom;
  }
  if (Native)
    O.Backend = scanner::QueryBackend::Native;

  scanner::Scanner S(O);
  scanner::ScanResult R = S.scanDependencyTree(G);
  for (const scanner::ScanError &E : R.Errors)
    std::fprintf(stderr, "warning: %s\n", E.str().c_str());
  for (const lint::Finding &F : R.SelfCheckFindings)
    std::fprintf(stderr, "self-check: %s\n", F.str().c_str());
  if (!R.SchemaError.empty()) {
    std::fprintf(stderr, "error: %s\n", R.SchemaError.c_str());
    return 4;
  }

  if (!EmitSummariesDir.empty() &&
      !emitPackageSummaries(G, O.Sinks, EmitSummariesDir))
    return 1;

  if (Summary) {
    std::printf("dependency tree (%zu packages, %u linked): %zu finding(s)\n",
                G.packages().size(), R.LinkedPackages, R.Reports.size());
    if (!R.MissingDeps.empty()) {
      std::printf("  unresolved dependencies:");
      for (const std::string &Dep : R.MissingDeps)
        std::printf(" %s", Dep.c_str());
      std::printf("\n");
    }
    if (R.PrunedQueries)
      std::printf("  pruned %u quer%s%s (%s)\n", R.PrunedQueries,
                  R.PrunedQueries == 1 ? "y" : "ies",
                  R.PruneSkippedImport ? " + import" : "",
                  R.PruneReason.c_str());
    for (const queries::VulnReport &Rep : R.Reports)
      std::printf("  %s\n", Rep.str().c_str());
  } else {
    std::printf("%s\n", scanner::reportsToJSON(R.Reports).c_str());
  }
  return R.Reports.empty() ? 0 : 3;
}

/// `graphjs callgraph --packages <root-dir>`: the package DAG, the SCC
/// link order, and the cross-package call graph of the linked tree.
int runPackagesCallGraph(const std::string &RootDir, bool Dot, bool Summaries,
                         const std::string &SinksFile) {
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();
  if (!SinksFile.empty()) {
    std::string Text;
    queries::SinkConfig Custom;
    std::string Error;
    if (!readFile(SinksFile, Text) ||
        !queries::SinkConfig::fromJSON(Text, Custom, &Error)) {
      std::fprintf(stderr, "error: bad sink config %s: %s\n",
                   SinksFile.c_str(), Error.c_str());
      return 1;
    }
    Sinks = Custom;
  }

  analysis::PackageGraph G;
  std::string Error;
  if (!analysis::PackageGraph::discover(RootDir, G, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (!Dot) {
    std::printf("package graph (%zu packages, root %s):\n",
                G.packages().size(),
                G.packages()[G.rootIndex()].Name.c_str());
    for (size_t I = 0; I < G.packages().size(); ++I) {
      const analysis::PackageInfo &P = G.packages()[I];
      std::printf("  %s%s%s ->", P.Name.c_str(),
                  P.Version.empty() ? "" : "@",
                  P.Version.c_str());
      if (G.depEdges()[I].empty())
        std::printf(" (leaf)");
      for (size_t Dep : G.depEdges()[I])
        std::printf(" %s", G.packages()[Dep].Name.c_str());
      if (!P.analyzable())
        std::printf("  [%s]", P.Missing ? "missing" : "unparseable");
      std::printf("\n");
    }
    std::printf("link order (dependencies first):\n");
    for (const std::vector<size_t> &SCC : G.linkOrder()) {
      std::printf(" ");
      for (size_t I : SCC)
        std::printf(" %s", G.packages()[I].Name.c_str());
      if (SCC.size() > 1)
        std::printf("  [cycle: linked as one group]");
      std::printf("\n");
    }
  }

  LinkedTree B;
  if (!buildLinkedTree(G, B))
    return 1;
  analysis::CallGraph CG =
      analysis::CallGraph::build(B.Mods, B.Stems, true, &B.Link);

  if (Dot)
    std::printf("%s", CG.toDot().c_str());
  else
    std::printf("%s", CG.dumpText().c_str());

  if (Summaries) {
    analysis::SummarySet Sums =
        analysis::computeSummaries(CG, B.Mods, queries::toSinkTable(Sinks));
    std::printf("%s", analysis::dumpText(Sums, CG).c_str());
  }
  return 0;
}

/// `graphjs callgraph`: prints the static call graph (text or dot) and,
/// with --summaries, the per-function taint summaries and the pruning
/// decision for the inputs linked as one package.
int runCallGraph(const std::vector<std::string> &Files, bool Dot,
                 bool Summaries, const std::string &SinksFile) {
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();
  if (!SinksFile.empty()) {
    std::string Text;
    queries::SinkConfig Custom;
    std::string Error;
    if (!readFile(SinksFile, Text) ||
        !queries::SinkConfig::fromJSON(Text, Custom, &Error)) {
      std::fprintf(stderr, "error: bad sink config %s: %s\n",
                   SinksFile.c_str(), Error.c_str());
      return 1;
    }
    Sinks = Custom;
  }

  // Same per-module name prefixing as the package scanner, so the graph
  // matches what the pruning stage sees.
  bool SingleFile = Files.size() == 1;
  core::StmtIndex NextIndex = 1;
  std::vector<std::unique_ptr<core::Program>> Programs;
  std::vector<std::string> Stems;
  for (const std::string &Path : Files) {
    std::string Source;
    if (!readFile(Path, Source)) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return 1;
    }
    DiagnosticEngine Diags;
    auto Module = parseJS(Source, Diags);
    if (Diags.hasErrors()) {
      std::fprintf(stderr, "%s: parse errors:\n%s", Path.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    std::string Stem = std::filesystem::path(Path).stem().string();
    std::string Prefix = SingleFile ? "" : Stem + "$";
    core::Normalizer Norm(Diags, Prefix, NextIndex);
    Programs.push_back(Norm.normalize(*Module));
    core::lowerAsync(*Programs.back(), Prefix);
    NextIndex = Programs.back()->NumIndices + 1;
    Stems.push_back(std::move(Stem));
  }

  std::vector<const core::Program *> Mods;
  for (const auto &P : Programs)
    Mods.push_back(P.get());
  analysis::CallGraph CG = analysis::CallGraph::build(Mods, Stems);

  if (Dot)
    std::printf("%s", CG.toDot().c_str());
  else
    std::printf("%s", CG.dumpText().c_str());

  if (Summaries) {
    analysis::SummarySet Sums =
        analysis::computeSummaries(CG, Mods, queries::toSinkTable(Sinks));
    // dumpText ends with the "prune decision:" line.
    std::printf("%s", analysis::dumpText(Sums, CG).c_str());
  }
  return 0;
}

/// Collects batch packages from a CLI input: a directory (each contained
/// .js file is a single-file package; each subdirectory with .js files is
/// one linked package), a .txt list of paths (one per line), or a .js file.
bool collectBatchInputs(const std::string &Arg,
                        std::vector<driver::BatchInput> &Out) {
  namespace fs = std::filesystem;

  auto AddFilePackage = [&](const fs::path &P) -> bool {
    std::string Text;
    if (!readFile(P.string(), Text)) {
      std::fprintf(stderr, "error: cannot open %s\n", P.string().c_str());
      return false;
    }
    Out.push_back({P.filename().string(), {{P.string(), std::move(Text)}}});
    return true;
  };

  auto AddDirPackage = [&](const fs::path &Dir) -> bool {
    driver::BatchInput Pkg;
    Pkg.Name = Dir.filename().string();
    std::vector<fs::path> JS;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.is_regular_file() && E.path().extension() == ".js")
        JS.push_back(E.path());
    std::sort(JS.begin(), JS.end());
    for (const fs::path &P : JS) {
      std::string Text;
      if (!readFile(P.string(), Text)) {
        std::fprintf(stderr, "error: cannot open %s\n", P.string().c_str());
        return false;
      }
      Pkg.Files.push_back({P.string(), std::move(Text)});
    }
    if (!Pkg.Files.empty())
      Out.push_back(std::move(Pkg));
    return true;
  };

  fs::path P(Arg);
  std::error_code EC;
  if (fs::is_directory(P, EC)) {
    // Deterministic order: sorted entries; files first as single-file
    // packages, then subdirectories as linked packages.
    std::vector<fs::path> Entries;
    for (const fs::directory_entry &E : fs::directory_iterator(P))
      Entries.push_back(E.path());
    std::sort(Entries.begin(), Entries.end());
    for (const fs::path &E : Entries) {
      if (fs::is_directory(E, EC)) {
        if (!AddDirPackage(E))
          return false;
      } else if (E.extension() == ".js") {
        if (!AddFilePackage(E))
          return false;
      }
    }
    return true;
  }
  if (P.extension() == ".txt") {
    std::ifstream In(Arg);
    if (!In) {
      std::fprintf(stderr, "error: cannot open list %s\n", Arg.c_str());
      return false;
    }
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.empty() || Line[0] == '#')
        continue;
      if (!collectBatchInputs(Line, Out))
        return false;
    }
    return true;
  }
  return AddFilePackage(P);
}

int runBatch(const std::vector<std::string> &Args, driver::PoolOptions O,
             unsigned Jobs, bool Summary, bool Stats,
             const std::string &TraceOut,
             driver::SharedBatchOptions *Shared = nullptr) {
  std::vector<driver::BatchInput> Inputs;
  for (const std::string &Arg : Args)
    if (!collectBatchInputs(Arg, Inputs))
      return 1;
  if (Inputs.empty()) {
    std::fprintf(stderr, "error: no packages to scan\n");
    return 1;
  }

  // One recorder spans the whole run. Under --jobs it stitches: the pool
  // hands its epoch to every worker and splices their span trees back on
  // per-process pid lanes next to its own scheduling spans. In-process it
  // simply rides along in the scan options, as in `graphjs scan`.
  obs::TraceRecorder Recorder;
  bool WantTrace = !TraceOut.empty();

  driver::BatchSummary S;
  bool SharedMerged = false;
  std::string SharedJournal;
  size_t SharedDrained = 0;
  if (Shared) {
    // Distributed drain: the ledger under Shared->Ledger.Dir coordinates
    // this supervisor with any concurrent ones; scan/pool settings carry
    // over per shard.
    Shared->Batch = O.Batch;
    Shared->Jobs = Jobs;
    Shared->Persistent = O.Persistent;
    Shared->RecycleAfter = O.RecycleAfter;
    Shared->RecycleRssMB = O.RecycleRssMB;
    Shared->MemLimitMB = O.MemLimitMB;
    Shared->KillAfterSeconds = O.KillAfterSeconds;
    Shared->RetryCrashed = O.RetryCrashed;
    Shared->Faults = O.Faults;
    if (WantTrace)
      Shared->Trace = &Recorder;
    driver::SharedBatchResult R = driver::runSharedBatch(*Shared, Inputs);
    S = std::move(R.Summary);
    SharedMerged = R.Merged;
    SharedJournal = R.MergedJournal;
    SharedDrained = R.ShardsDrained;
  } else if (Jobs > 0) {
    O.Jobs = Jobs;
    if (WantTrace)
      O.Trace = &Recorder;
    driver::ProcessPool Pool(std::move(O));
    S = Pool.run(Inputs);
  } else {
    // In-process driver: at most one (non-process-fatal) fault, carried in
    // the scan options.
    if (!O.Faults.empty())
      O.Batch.Scan.Fault = O.Faults.front();
    if (WantTrace)
      O.Batch.Scan.Trace = &Recorder;
    driver::BatchDriver Driver(std::move(O.Batch));
    S = Driver.run(Inputs);
  }
  if (WantTrace && !writeTrace(Recorder, TraceOut))
    return 1;

  if (Summary) {
    for (const driver::BatchOutcome &Outcome : S.Outcomes) {
      if (Outcome.Skipped) {
        std::printf("%-24s skipped (journaled)\n", Outcome.Package.c_str());
        continue;
      }
      std::printf("%-24s %-8s %zu finding(s)", Outcome.Package.c_str(),
                  driver::batchStatusName(Outcome.Status),
                  Outcome.Result.Reports.size());
      if (Outcome.Result.Degradation)
        std::printf("  degradation=%u attempts=%u", Outcome.Result.Degradation,
                    Outcome.Result.Attempts);
      if (!Outcome.Result.Errors.empty())
        std::printf("  [%s]", Outcome.Result.errorSummary().c_str());
      std::printf("\n");
    }
    std::printf("batch: %zu scanned, %zu ok, %zu degraded, %zu failed, "
                "%zu resumed, %zu report(s)\n",
                S.Scanned, S.Ok, S.Degraded, S.Failed, S.SkippedResumed,
                S.TotalReports);
    if (Shared)
      std::printf("shared: %zu shard(s) drained by this supervisor%s%s\n",
                  SharedDrained, SharedMerged ? ", corpus merged: " : "",
                  SharedMerged ? SharedJournal.c_str() : "");
  } else if (!Stats) {
    for (const driver::BatchOutcome &Outcome : S.Outcomes)
      if (!Outcome.Skipped)
        std::printf("%s\n", Outcome.RawJournalLine.empty()
                                ? driver::BatchDriver::journalLine(Outcome)
                                      .c_str()
                                : Outcome.RawJournalLine.c_str());
  }
  if (Stats) {
    std::printf("%s", driver::batchStatsText(S).c_str());
    if (Shared)
      std::printf("shared: %zu shard(s) drained by this supervisor%s%s\n",
                  SharedDrained, SharedMerged ? ", corpus merged: " : "",
                  SharedMerged ? SharedJournal.c_str() : "");
  }
  return S.Failed ? 1 : 0;
}

/// `graphjs lint`: runs the full pipeline front half on each input and the
/// standard validation passes over every artifact. Exit 0 iff no
/// error-severity finding.
int runLint(const std::vector<std::string> &Files, bool Summary,
            const std::vector<std::string> &ExtraQueries) {
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();
  int ExitCode = 0;
  for (const std::string &Path : Files) {
    std::string Source;
    if (!readFile(Path, Source)) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return 1;
    }
    DiagnosticEngine Diags;
    auto Module = parseJS(Source, Diags);
    if (Diags.hasErrors()) {
      std::fprintf(stderr, "%s: parse errors:\n%s", Path.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    cfg::ModuleCFG CFG = cfg::buildCFG(*Module);
    core::Normalizer Norm(Diags);
    auto Program = Norm.normalize(*Module);
    core::lowerAsync(*Program);
    analysis::BuildResult Build = analysis::buildMDG(*Program);

    lint::LintContext Ctx;
    Ctx.Program = Program.get();
    Ctx.CFG = &CFG;
    Ctx.Build = &Build;
    Ctx.Sinks = &Sinks;
    Ctx.ExtraQueries = ExtraQueries;
    lint::LintResult LR = lint::PassManager::standard().run(Ctx);

    if (Summary) {
      std::printf("== %s ==\n%s", Path.c_str(), LR.renderText().c_str());
    } else {
      std::printf("%s\n", LR.renderJSON().c_str());
    }
    if (LR.hasErrors())
      ExitCode = 4;
  }
  return ExitCode;
}

int runQuery(const std::string &QueryText, bool Builtin, bool Explain,
             bool Profile, const std::vector<std::string> &Files) {
  // The query set: the given text, or every built-in Table 2 query.
  std::vector<std::pair<std::string, std::string>> Queries;
  if (Builtin || QueryText.empty()) {
    Queries =
        queries::GraphDBRunner::builtinQueries(queries::SinkConfig::defaults());
  } else {
    Queries.emplace_back("query", QueryText);
  }

  // Pre-lint ad-hoc query text against the import schema: a typo'd label or
  // relationship type would otherwise just return zero rows. (Built-ins are
  // validated by their own tests and by `graphjs lint`.)
  if (!QueryText.empty()) {
    bool SchemaError = false;
    for (const graphdb::SchemaIssue &Issue :
         graphdb::lintQueryText(QueryText, graphdb::mdgSchema())) {
      std::fprintf(stderr, "query %s: %s\n",
                   Issue.Severity == DiagSeverity::Error ? "error" : "warning",
                   Issue.str().c_str());
      SchemaError |= Issue.Severity == DiagSeverity::Error;
    }
    if (SchemaError)
      return 2;
  }

  // EXPLAIN never executes: print the compiled plan and stop (no input
  // files required — the plan depends only on the query and the hop cap).
  if (Explain) {
    for (const auto &[Name, Text] : Queries) {
      graphdb::Query Q;
      std::string Error;
      if (!graphdb::parseQuery(Text, Q, &Error)) {
        std::fprintf(stderr, "query error (%s): %s\n", Name.c_str(),
                     Error.c_str());
        return 2;
      }
      std::printf("== %s ==\n%s", Name.c_str(),
                  graphdb::explainQuery(Q).c_str());
    }
    if (!Profile && Files.empty())
      return 0;
  }
  if (Files.empty()) {
    std::fprintf(stderr, "error: no input files\n");
    return usage();
  }

  for (const std::string &Path : Files) {
    std::string Source;
    if (!readFile(Path, Source)) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return 1;
    }
    DiagnosticEngine Diags;
    auto Program = core::normalizeJS(Source, Diags);
    if (Diags.hasErrors()) {
      std::fprintf(stderr, "%s: parse errors\n", Path.c_str());
      return 1;
    }
    analysis::BuildResult Build = analysis::buildMDG(*Program);
    // Through GraphDBRunner so the built-in path predicates (untainted)
    // and the planner fold are registered, exactly as in a scan.
    queries::GraphDBRunner Runner(Build);
    for (const auto &[Name, Text] : Queries) {
      std::string Error;
      graphdb::QueryProfile QP;
      graphdb::ResultSet RS =
          Runner.runQuery(Text, &Error, Profile ? &QP : nullptr);
      if (!Error.empty()) {
        std::fprintf(stderr, "query error (%s): %s\n", Name.c_str(),
                     Error.c_str());
        return 2;
      }
      std::printf("== %s: %s: %zu row(s) ==\n", Path.c_str(), Name.c_str(),
                  RS.Rows.size());
      if (Profile) {
        std::printf("%s", graphdb::renderProfile(QP).c_str());
        continue; // Profile mode reports step metrics, not rows.
      }
      for (const graphdb::ResultRow &Row : RS.Rows) {
        for (size_t I = 0; I < Row.Values.size(); ++I)
          std::printf("%s%s", I ? " | " : "  ", Row.Values[I].c_str());
        std::printf("\n");
      }
    }
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  std::string Mode = argv[1];

  if (Mode == "query") {
    bool Builtin = false, Explain = false, Profile = false;
    std::string QueryText;
    std::vector<std::string> Files;
    for (int I = 2; I < argc; ++I) {
      std::string Arg = argv[I];
      if (Arg == "--builtin")
        Builtin = true;
      else if (Arg == "--explain")
        Explain = true;
      else if (Arg == "--profile")
        Profile = true;
      else if (Arg.rfind("--", 0) == 0)
        return usage();
      else if (QueryText.empty() && Arg.find("MATCH") != std::string::npos)
        QueryText = Arg; // Query text, not a file path.
      else
        Files.push_back(Arg);
    }
    if (QueryText.empty() && !Builtin && !Explain && !Profile)
      return usage();
    return runQuery(QueryText, Builtin, Explain, Profile, Files);
  }

  if (Mode == "lint") {
    bool Summary = false;
    std::vector<std::string> ExtraQueries;
    std::vector<std::string> Files;
    for (int I = 2; I < argc; ++I) {
      std::string Arg = argv[I];
      if (Arg == "--summary")
        Summary = true;
      else if (Arg == "--query" && I + 1 < argc)
        ExtraQueries.push_back(argv[++I]);
      else if (Arg.rfind("--", 0) == 0)
        return usage();
      else
        Files.push_back(Arg);
    }
    if (Files.empty())
      return usage();
    return runLint(Files, Summary, ExtraQueries);
  }

  if (Mode == "callgraph") {
    bool Dot = false, Summaries = false, Packages = false;
    std::string SinksFile;
    std::vector<std::string> Files;
    for (int I = 2; I < argc; ++I) {
      std::string Arg = argv[I];
      if (Arg == "--dot")
        Dot = true;
      else if (Arg == "--summaries")
        Summaries = true;
      else if (Arg == "--packages")
        Packages = true;
      else if (Arg == "--sinks" && I + 1 < argc)
        SinksFile = argv[++I];
      else if (Arg.rfind("--", 0) == 0)
        return usage();
      else
        Files.push_back(Arg);
    }
    if (Files.empty())
      return usage();
    if (Packages) {
      if (Files.size() != 1) {
        std::fprintf(stderr,
                     "error: --packages takes one root directory\n");
        return usage();
      }
      return runPackagesCallGraph(Files[0], Dot, Summaries, SinksFile);
    }
    return runCallGraph(Files, Dot, Summaries, SinksFile);
  }

  if (Mode == "batch") {
    driver::PoolOptions O;
    unsigned Jobs = 0; // 0 = in-process BatchDriver; >=1 = worker pool.
    bool Summary = false, Stats = false, Quiet = false;
    std::string SinksFile, TraceOut;
    driver::SharedBatchOptions Shared; // Live iff Shared.Ledger.Dir set.
    const char *SharedOnlyFlag = nullptr;
    std::vector<std::string> Inputs;
    for (int I = 2; I < argc; ++I) {
      std::string Arg = argv[I];
      if (Arg == "--native")
        O.Batch.Scan.Backend = scanner::QueryBackend::Native;
      else if (Arg == "--no-prune")
        O.Batch.Scan.Prune = false;
      else if (Arg == "--no-async-lower")
        O.Batch.Scan.AsyncLower = false;
      else if (Arg == "--summary")
        Summary = true;
      else if (Arg == "--stats")
        Stats = true;
      else if (Arg == "--quiet")
        Quiet = true;
      else if (Arg == "--resume")
        O.Batch.Resume = true;
      else if (Arg == "--retry-crashed")
        O.RetryCrashed = true;
      else if (Arg == "--persistent")
        O.Persistent = true;
      else if (Arg == "--recycle-after" && I + 1 < argc)
        O.RecycleAfter = static_cast<unsigned>(std::stoul(argv[++I]));
      else if (Arg == "--recycle-mem-mb" && I + 1 < argc)
        O.RecycleRssMB = std::stoul(argv[++I]);
      else if (Arg == "--journal" && I + 1 < argc)
        O.Batch.JournalPath = argv[++I];
      else if (Arg == "--sinks" && I + 1 < argc)
        SinksFile = argv[++I];
      else if (Arg == "--deadline-ms" && I + 1 < argc)
        O.Batch.Scan.Deadline.WallSeconds = std::stod(argv[++I]) / 1000.0;
      else if (Arg == "--work" && I + 1 < argc)
        O.Batch.Scan.Deadline.WorkUnits = std::stoull(argv[++I]);
      else if (Arg == "--max" && I + 1 < argc)
        O.Batch.MaxPackages = std::stoul(argv[++I]);
      else if (Arg == "--max-degradation" && I + 1 < argc)
        O.Batch.Scan.MaxDegradation =
            static_cast<unsigned>(std::stoul(argv[++I]));
      else if (Arg == "--jobs" && I + 1 < argc)
        Jobs = static_cast<unsigned>(std::stoul(argv[++I]));
      else if (Arg == "--mem-limit-mb" && I + 1 < argc)
        O.MemLimitMB = std::stoul(argv[++I]);
      else if (Arg == "--kill-after-ms" && I + 1 < argc)
        O.KillAfterSeconds = std::stod(argv[++I]) / 1000.0;
      else if (Arg == "--trace-out" && I + 1 < argc)
        TraceOut = argv[++I];
      else if (Arg == "--metrics-out" && I + 1 < argc)
        O.Batch.MetricsPath = argv[++I];
      else if (Arg == "--shared" && I + 1 < argc)
        Shared.Ledger.Dir = argv[++I];
      else if (Arg == "--shard-size" && I + 1 < argc) {
        Shared.Ledger.ShardSize = std::stoul(argv[++I]);
        SharedOnlyFlag = "--shard-size";
      } else if (Arg == "--lease-expiry-ms" && I + 1 < argc) {
        Shared.Ledger.LeaseExpirySeconds = std::stod(argv[++I]) / 1000.0;
        SharedOnlyFlag = "--lease-expiry-ms";
      } else if (Arg == "--quarantine-after" && I + 1 < argc) {
        Shared.Ledger.QuarantineAfter =
            static_cast<unsigned>(std::stoul(argv[++I]));
        SharedOnlyFlag = "--quarantine-after";
      } else if (Arg == "--supervisor-id" && I + 1 < argc) {
        Shared.Ledger.SupervisorId = argv[++I];
        SharedOnlyFlag = "--supervisor-id";
      } else if (Arg == "--chaos-kill-after" && I + 1 < argc) {
        Shared.ChaosKillAfter = static_cast<unsigned>(std::stoul(argv[++I]));
        SharedOnlyFlag = "--chaos-kill-after";
      } else if (Arg == "--inject-fault" && I + 1 < argc) {
        scanner::FaultPlan Plan;
        std::string Error;
        if (!scanner::FaultPlan::parse(argv[++I], Plan, &Error)) {
          std::fprintf(stderr, "error: %s\n", Error.c_str());
          return 2;
        }
        O.Faults.push_back(Plan);
      } else if (Arg.rfind("--", 0) == 0)
        return usage();
      else
        Inputs.push_back(Arg);
    }
    if (Inputs.empty())
      return usage();
    bool IsShared = !Shared.Ledger.Dir.empty();
    if (!IsShared && SharedOnlyFlag) {
      std::fprintf(stderr, "error: %s requires --shared <dir>\n",
                   SharedOnlyFlag);
      return 2;
    }
    if (Jobs == 0) {
      // Pool-only options and faults only the pool can contain. Under
      // --shared the fault restrictions lift: process-fatal faults kill
      // this *supervisor*, which is exactly what the ledger's lease
      // stealing and quarantine breaker exist to absorb, and multiple
      // faults rebase onto different shards.
      const char *Needs = nullptr;
      if (O.MemLimitMB)
        Needs = "--mem-limit-mb";
      else if (O.KillAfterSeconds > 0)
        Needs = "--kill-after-ms";
      else if (O.RetryCrashed)
        Needs = "--retry-crashed";
      else if (O.Persistent)
        Needs = "--persistent";
      else if (!IsShared && O.Faults.size() > 1)
        Needs = "multiple --inject-fault";
      else if (!IsShared && !O.Faults.empty() &&
               O.Faults.front().processFatal())
        Needs = "a crash/hang/oom fault";
      if (Needs) {
        std::fprintf(stderr, "error: %s requires --jobs N\n", Needs);
        return 2;
      }
    }
    if (!O.Persistent && (O.RecycleAfter || O.RecycleRssMB)) {
      std::fprintf(stderr, "error: %s requires --persistent\n",
                   O.RecycleAfter ? "--recycle-after" : "--recycle-mem-mb");
      return 2;
    }
    // Cadences say how often progress prints; Quiet says the user asked
    // for silence. Both are always set so --quiet suppresses structurally
    // rather than by zeroing the cadence.
    O.Batch.Quiet = Quiet;
    O.Batch.ProgressEveryPackages = 25;
    O.Batch.ProgressEverySeconds = 2.0;
    if (!SinksFile.empty()) {
      std::string Text;
      queries::SinkConfig Custom;
      std::string Error;
      if (!readFile(SinksFile, Text) ||
          !queries::SinkConfig::fromJSON(Text, Custom, &Error)) {
        std::fprintf(stderr, "error: bad sink config %s: %s\n",
                     SinksFile.c_str(), Error.c_str());
        return 1;
      }
      O.Batch.Scan.Sinks = Custom;
    }
    return runBatch(Inputs, std::move(O), Jobs, Summary, Stats, TraceOut,
                    !Shared.Ledger.Dir.empty() ? &Shared : nullptr);
  }

  if (Mode == "serve") {
    driver::ServiceOptions O;
    std::string SinksFile, ClientLine;
    bool Client = false;
    double RetryBudgetMs = 0;
    for (int I = 2; I < argc; ++I) {
      std::string Arg = argv[I];
      if (Arg == "--socket" && I + 1 < argc)
        O.SocketPath = argv[++I];
      else if (Arg == "--jobs" && I + 1 < argc)
        O.Jobs = static_cast<unsigned>(std::stoul(argv[++I]));
      else if (Arg == "--queue-max" && I + 1 < argc)
        O.QueueMax = std::stoul(argv[++I]);
      else if (Arg == "--journal" && I + 1 < argc)
        O.JournalPath = argv[++I];
      else if (Arg == "--deadline-ms" && I + 1 < argc)
        O.Scan.Deadline.WallSeconds = std::stod(argv[++I]) / 1000.0;
      else if (Arg == "--kill-after-ms" && I + 1 < argc)
        O.KillAfterSeconds = std::stod(argv[++I]) / 1000.0;
      else if (Arg == "--recycle-after" && I + 1 < argc)
        O.RecycleAfter = static_cast<unsigned>(std::stoul(argv[++I]));
      else if (Arg == "--recycle-mem-mb" && I + 1 < argc)
        O.RecycleRssMB = std::stoul(argv[++I]);
      else if (Arg == "--mem-limit-mb" && I + 1 < argc)
        O.MemLimitMB = std::stoul(argv[++I]);
      else if (Arg == "--heartbeat-ms" && I + 1 < argc)
        O.HeartbeatSeconds = std::stod(argv[++I]) / 1000.0;
      else if (Arg == "--metrics-out" && I + 1 < argc)
        O.MetricsPath = argv[++I];
      else if (Arg == "--native")
        O.Scan.Backend = scanner::QueryBackend::Native;
      else if (Arg == "--no-prune")
        O.Scan.Prune = false;
      else if (Arg == "--no-async-lower")
        O.Scan.AsyncLower = false;
      else if (Arg == "--quiet")
        O.Quiet = true;
      else if (Arg == "--sinks" && I + 1 < argc)
        SinksFile = argv[++I];
      else if (Arg == "--client" && I + 1 < argc) {
        Client = true;
        ClientLine = argv[++I];
      } else if (Arg == "--retry-budget-ms" && I + 1 < argc)
        RetryBudgetMs = std::stod(argv[++I]);
      else
        return usage();
    }
    if (O.SocketPath.empty()) {
      std::fprintf(stderr, "error: serve requires --socket <path>\n");
      return 2;
    }
    if (Client) {
      std::string Response, Error;
      if (!driver::ScanService::requestWithRetry(O.SocketPath, ClientLine,
                                                 Response, &Error,
                                                 RetryBudgetMs)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      std::printf("%s\n", Response.c_str());
      // Rejections and bad requests exit nonzero so shell pipelines can
      // branch on admission without parsing JSON.
      return Response.find("\"ok\":true") != std::string::npos ? 0 : 1;
    }
    if (RetryBudgetMs > 0) {
      std::fprintf(stderr, "error: --retry-budget-ms requires --client\n");
      return 2;
    }
    if (!SinksFile.empty()) {
      std::string Text;
      queries::SinkConfig Custom;
      std::string Error;
      if (!readFile(SinksFile, Text) ||
          !queries::SinkConfig::fromJSON(Text, Custom, &Error)) {
        std::fprintf(stderr, "error: bad sink config %s: %s\n",
                     SinksFile.c_str(), Error.c_str());
        return 1;
      }
      O.Scan.Sinks = Custom;
    }
    return driver::ScanService(std::move(O)).run();
  }

  if (Mode == "metrics") {
    // One-shot metrics client: ask a running daemon for its counters and
    // latency percentiles. Sugar for serve --client '{"op":"metrics"}'.
    std::string SocketPath;
    double RetryBudgetMs = 0;
    for (int I = 2; I < argc; ++I) {
      std::string Arg = argv[I];
      if (Arg == "--socket" && I + 1 < argc)
        SocketPath = argv[++I];
      else if (Arg == "--retry-budget-ms" && I + 1 < argc)
        RetryBudgetMs = std::stod(argv[++I]);
      else
        return usage();
    }
    if (SocketPath.empty()) {
      std::fprintf(stderr, "error: metrics requires --socket <path>\n");
      return 2;
    }
    std::string Response, Error;
    if (!driver::ScanService::requestWithRetry(SocketPath,
                                               "{\"op\":\"metrics\"}",
                                               Response, &Error,
                                               RetryBudgetMs)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("%s\n", Response.c_str());
    return Response.find("\"ok\":true") != std::string::npos ? 0 : 1;
  }

  if (Mode != "scan")
    return usage();

  bool Native = false, Confirm = false, DumpCore = false, DumpMDG = false,
       DumpDot = false, Summary = false, AsPackage = false,
       WithDeps = false, SelfCheck = false, Trace = false, Prune = true,
       AsyncLower = true;
  std::string SinksFile, TraceOut, EmitSummariesDir;
  std::vector<std::string> Files;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--native")
      Native = true;
    else if (Arg == "--confirm")
      Confirm = true;
    else if (Arg == "--dump-core")
      DumpCore = true;
    else if (Arg == "--dump-mdg")
      DumpMDG = true;
    else if (Arg == "--dot")
      DumpDot = true;
    else if (Arg == "--summary")
      Summary = true;
    else if (Arg == "--package")
      AsPackage = true;
    else if (Arg == "--with-deps")
      WithDeps = true;
    else if (Arg == "--emit-summaries" && I + 1 < argc)
      EmitSummariesDir = argv[++I];
    else if (Arg == "--self-check")
      SelfCheck = true;
    else if (Arg == "--no-prune")
      Prune = false;
    else if (Arg == "--no-async-lower")
      AsyncLower = false;
    else if (Arg == "--trace")
      Trace = true;
    else if (Arg == "--trace-out" && I + 1 < argc)
      TraceOut = argv[++I];
    else if (Arg == "--sinks" && I + 1 < argc)
      SinksFile = argv[++I];
    else if (Arg.rfind("--", 0) == 0)
      return usage();
    else
      Files.push_back(Arg);
  }
  if (Files.empty())
    return usage();

  // Tracing: one recorder for the whole invocation, exported as a text
  // tree (--trace, stderr) and/or Chrome trace_event JSON (--trace-out).
  // Counters ride along: enabled while tracing, dumped next to the tree.
  obs::TraceRecorder Recorder;
  obs::TraceRecorder *TR = (Trace || !TraceOut.empty()) ? &Recorder : nullptr;
  if (TR)
    obs::setCountersEnabled(true);

  int Code;
  if (WithDeps) {
    if (Files.size() != 1) {
      std::fprintf(stderr, "error: --with-deps takes one root directory\n");
      return usage();
    }
    Code = runDepsScan(Files[0], Native, Summary, SelfCheck, Prune, AsyncLower,
                       SinksFile, EmitSummariesDir, TR);
  } else if (AsPackage) {
    Code = runPackageScan(Files, Native, Summary, SelfCheck, Prune, AsyncLower,
                          SinksFile, TR);
  } else {
    Code = runScan(Files, Native, Confirm, DumpCore, DumpMDG, DumpDot, Summary,
                   SelfCheck, Prune, AsyncLower, SinksFile, TR);
  }
  if (TR) {
    if (Trace) {
      std::fprintf(stderr, "%s", Recorder.toText().c_str());
      dumpCounters(stderr);
    }
    if (!TraceOut.empty() && !writeTrace(Recorder, TraceOut) && Code == 0)
      Code = 1;
  }
  return Code;
}
