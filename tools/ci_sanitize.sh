#!/usr/bin/env bash
# Sanitizer CI job: configure with GRAPHJS_SANITIZE=ON (ASan + UBSan,
# abort on first report), build, and run the full test suite.
#
# Usage: tools/ci_sanitize.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-asan}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGRAPHJS_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error: any sanitizer report fails the job.
export ASAN_OPTIONS="detect_leaks=0:halt_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

# The fault-tolerance suite first, verbosely: fault injection, deadline
# expiry, the degradation ladder, and batch journal/resume exercise the
# error paths sanitizers care about most (partial graphs, aborted phases,
# exception unwinding in the driver).
"$BUILD_DIR/tests/test_faults"

# The observability suite next: span tracing, the counter registry
# (relaxed atomics — TSan-adjacent patterns ASan/UBSan still vet), the
# query profiler, and the --trace/--explain/--profile CLI round trips.
"$BUILD_DIR/tests/test_obs"

# The pruning suite: call-graph + taint-summary bit manipulation (the
# origin-mask shifts UBSan vets) and the detection-neutrality sweep over
# both query backends.
"$BUILD_DIR/tests/test_summaries"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
