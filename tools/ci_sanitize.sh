#!/usr/bin/env bash
# Sanitizer CI job: configure with GRAPHJS_SANITIZE=ON (ASan + UBSan,
# abort on first report), build, and run the full test suite.
#
# Usage: tools/ci_sanitize.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-asan}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGRAPHJS_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error: any sanitizer report fails the job.
export ASAN_OPTIONS="detect_leaks=0:halt_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

# The fault-tolerance suite first, verbosely: fault injection, deadline
# expiry, the degradation ladder, and batch journal/resume exercise the
# error paths sanitizers care about most (partial graphs, aborted phases,
# exception unwinding in the driver).
"$BUILD_DIR/tests/test_faults"

# The multi-process fault suite: the fork-per-package worker pool under
# injected crash/hang/oom faults, the kill ladder, journal merge, resume
# across a SIGKILLed supervisor, and the cross-process telemetry merge
# (worker counter/histogram deltas and span stitching decode frames the
# supervisor received off a socket — prime sanitizer territory). ASan caveats the suite is built
# around: fork() from an ASan parent is supported (single-threaded
# here), but RLIMIT_AS is incompatible with ASan's shadow reservation —
# Subprocess skips the address-space cap under ASan, and the oom fault
# still works because the allocation storm self-bounds and exits with
# the OOM code on its own.
"$BUILD_DIR/tests/test_procpool"

# The distributed-draining chaos suite: CRC framing over torn byte
# prefixes, the O_EXCL lease ratchet and steal/fence races, quarantine
# marker IO, the merge's cross-journal dedup, and `graphjs batch
# --shared` supervisors SIGKILLed mid-drain — crash-recovery paths that
# re-read half-written state are exactly where use-after-free and
# uninitialized reads hide.
"$BUILD_DIR/tests/test_distributed"

# The scan-service suite: the length-prefixed wire protocol (incremental
# reassembly buffers are classic overflow territory), the telemetry
# codec riding the response frames, the `graphjs serve` daemon's poll
# loop over live sockets, the `metrics` op and --metrics-out snapshots,
# worker re-fork after induced crashes, and the bounded admission
# queue's rejection paths.
"$BUILD_DIR/tests/test_scanservice"

# The observability suite next: span tracing, the counter registry and
# the log-bucket histograms (relaxed atomics, concurrent recording —
# TSan-adjacent patterns ASan/UBSan still vet), Prometheus rendering,
# the query profiler, and the --trace/--explain/--profile CLI round
# trips.
"$BUILD_DIR/tests/test_obs"

# The pruning suite: call-graph + taint-summary bit manipulation (the
# origin-mask shifts UBSan vets) and the detection-neutrality sweep over
# both query backends.
"$BUILD_DIR/tests/test_summaries"

# The cross-package suite: package-graph discovery walks real directory
# trees (filesystem error paths), the summary linker composes masks
# across package boundaries, and the soundness-valve tests drive the
# missing/unparseable-dependency recovery paths end to end.
"$BUILD_DIR/tests/test_pkggraph"

# The async suite: the lowering pass rewrites statement blocks in place
# (move-heavy vector splicing ASan vets), the detection matrix re-runs
# the full pipeline with lowering on/off across both backends, and the
# lint-pass tests feed hand-built malformed IR through the checkers.
"$BUILD_DIR/tests/test_async"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
