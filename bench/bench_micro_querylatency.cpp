//===- bench/bench_micro_querylatency.cpp - Query-backend costs -----------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Microbenchmarks of the two query backends on the same MDG: the
// interpreted graph-database engine (the paper's Neo4j role) vs. the
// native Table 1 traversals (ODGen's in-process style). The measured gap
// is the mechanism behind Table 6's taint-phase contrast.
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "queries/QueryRunner.h"
#include "workload/Packages.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace gjs;

namespace {

analysis::BuildResult &buildFixture(size_t LoC) {
  static std::map<size_t, analysis::BuildResult> Cache;
  auto It = Cache.find(LoC);
  if (It != Cache.end())
    return It->second;
  workload::PackageGenerator Gen(13);
  workload::Package P =
      Gen.vulnerable(queries::VulnType::CommandInjection,
                     workload::Complexity::Wrapped,
                     workload::VariantKind::Plain, LoC);
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(P.Files[0].Contents, Diags);
  return Cache.emplace(LoC, analysis::buildMDG(*Prog)).first->second;
}

} // namespace

static void BM_TaintQuery_GraphDB(benchmark::State &State) {
  analysis::BuildResult &Build =
      buildFixture(static_cast<size_t>(State.range(0)));
  queries::GraphDBRunner Runner(Build);
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();
  size_t Found = 0;
  for (auto _ : State) {
    auto Rs = Runner.detectTaintStyle(queries::VulnType::CommandInjection,
                                      Sinks);
    Found = Rs.size();
    benchmark::DoNotOptimize(Rs);
  }
  State.counters["findings"] = static_cast<double>(Found);
}
BENCHMARK(BM_TaintQuery_GraphDB)->Arg(100)->Arg(400)->Arg(1600);

static void BM_TaintQuery_Native(benchmark::State &State) {
  analysis::BuildResult &Build =
      buildFixture(static_cast<size_t>(State.range(0)));
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();
  size_t Found = 0;
  for (auto _ : State) {
    auto Rs = queries::detectNative(Build, Sinks);
    Found = Rs.size();
    benchmark::DoNotOptimize(Rs);
  }
  State.counters["findings"] = static_cast<double>(Found);
}
BENCHMARK(BM_TaintQuery_Native)->Arg(100)->Arg(400)->Arg(1600);

static void BM_PollutionQuery_GraphDB(benchmark::State &State) {
  workload::PackageGenerator Gen(29);
  workload::Package P = Gen.vulnerable(
      queries::VulnType::PrototypePollution, workload::Complexity::Recursive,
      workload::VariantKind::Plain, static_cast<size_t>(State.range(0)));
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(P.Files[0].Contents, Diags);
  analysis::BuildResult Build = analysis::buildMDG(*Prog);
  queries::GraphDBRunner Runner(Build);
  for (auto _ : State) {
    auto Rs = Runner.detectPrototypePollution();
    benchmark::DoNotOptimize(Rs);
  }
}
BENCHMARK(BM_PollutionQuery_GraphDB)->Arg(100)->Arg(400);

static void BM_EndToEndScan(benchmark::State &State) {
  workload::PackageGenerator Gen(31);
  workload::Package P = Gen.vulnerable(
      queries::VulnType::CommandInjection, workload::Complexity::Direct,
      workload::VariantKind::Plain, static_cast<size_t>(State.range(0)));
  scanner::Scanner S;
  for (auto _ : State) {
    scanner::ScanResult R = S.scanPackage(P.Files);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_EndToEndScan)->Arg(100)->Arg(400)->Arg(1600);

// Custom main instead of BENCHMARK_MAIN(): write the results to
// BENCH_micro_querylatency.json (google-benchmark's JSON format) unless
// the caller already passed a --benchmark_out destination. The directory
// is overridable with GJS_BENCH_OUT, matching bench::Report.
int main(int argc, char **argv) {
  std::vector<char *> Args(argv, argv + argc);
  bool HasOut = false;
  for (int I = 1; I < argc; ++I)
    HasOut |= std::string(argv[I]).rfind("--benchmark_out", 0) == 0;
  const char *Env = std::getenv("GJS_BENCH_OUT");
  std::string Out = std::string("--benchmark_out=") + (Env ? Env : ".") +
                    "/BENCH_micro_querylatency.json";
  std::string Fmt = "--benchmark_out_format=json";
  if (!HasOut) {
    Args.push_back(Out.data());
    Args.push_back(Fmt.data());
  }
  int N = static_cast<int>(Args.size());
  benchmark::Initialize(&N, Args.data());
  if (benchmark::ReportUnrecognizedArguments(N, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
