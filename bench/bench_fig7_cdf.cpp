//===- bench/bench_fig7_cdf.cpp - Figure 7 --------------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Reproduces Figure 7: the CDF of per-package total analysis time for
// Graph.js and ODGen on the reference datasets. Shapes to reproduce:
//
//   - ODGen is *faster at the head* (native traversals, no DB import:
//     "by the 2-second mark, ODGen had already analyzed 39.5%");
//   - Graph.js *completes far more packages* overall (98.2% vs 71.5%);
//     timed-out packages never complete and form the missing tail.
//
// Absolute times differ from the paper's testbed; the series' crossing
// shape is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace gjs;
using namespace gjs::bench;
using namespace gjs::eval;

int main() {
  printHeader("Figure 7: CDF of total analysis time", "paper Figure 7");

  auto Packages = groundTruth();
  HarnessOptions O = HarnessOptions::defaults();
  auto GJ = runGraphJS(Packages, O.Scan);
  auto OD = runODGen(Packages, O.ODGen);

  // Completed-package times; timeouts are excluded (they cap the CDF).
  std::vector<double> GJTimes, ODTimes;
  size_t GJTimeouts = 0, ODTimeouts = 0;
  for (const PackageOutcome &R : GJ) {
    if (R.TimedOut)
      ++GJTimeouts;
    else
      GJTimes.push_back(R.Seconds);
  }
  for (const PackageOutcome &R : OD) {
    if (R.TimedOut)
      ++ODTimeouts;
    else
      ODTimes.push_back(R.Seconds);
  }

  const size_t N = Packages.size();
  std::vector<double> Marks = {0.0005, 0.001, 0.002, 0.005, 0.01,
                               0.02,   0.05,  0.1,   0.2,   0.5,
                               1.0,    2.0,   5.0};
  auto GJCdf = cdf(GJTimes, Marks);
  auto ODCdf = cdf(ODTimes, Marks);
  // Rescale to the full package population (timeouts never complete).
  for (double &V : GJCdf)
    V *= double(GJTimes.size()) / double(N);
  for (double &V : ODCdf)
    V *= double(ODTimes.size()) / double(N);

  std::printf("%s\n",
              renderCDF({"Graph.js", "ODGen"}, {GJCdf, ODCdf}, Marks)
                  .c_str());

  double GJDone = 100.0 * double(N - GJTimeouts) / double(N);
  double ODDone = 100.0 * double(N - ODTimeouts) / double(N);
  std::printf("completion: Graph.js %.1f%% (paper 98.2%%), ODGen %.1f%% "
              "(paper 71.5%%)\n",
              GJDone, ODDone);

  // The head-of-curve contrast: who has analyzed more at small budgets?
  size_t HeadIdx = 2; // Second-smallest mark.
  std::printf("head of curve (t = %.3gs): ODGen %.1f%% vs Graph.js %.1f%% "
              "(paper at 2s: 39.5%% vs 1.1%%)\n",
              Marks[HeadIdx], ODCdf[HeadIdx] * 100, GJCdf[HeadIdx] * 100);

  double GJAvg = 0, ODAvg = 0;
  for (double T : GJTimes)
    GJAvg += T;
  for (double T : ODTimes)
    ODAvg += T;
  if (!GJTimes.empty())
    GJAvg /= double(GJTimes.size());
  if (!ODTimes.empty())
    ODAvg /= double(ODTimes.size());
  std::printf("average completed-package time: Graph.js %.4fs, ODGen "
              "%.4fs (paper: 4.61s vs 5.41s on their testbed)\n",
              GJAvg, ODAvg);

  Report Rep("fig7_cdf");
  Rep.series("gj.total_seconds", GJTimes);
  Rep.series("od.total_seconds", ODTimes);
  Rep.scalar("gj.completion_percent", GJDone);
  Rep.scalar("od.completion_percent", ODDone);
  Rep.scalar("gj.timeouts", double(GJTimeouts));
  Rep.scalar("od.timeouts", double(ODTimeouts));
  Rep.write();
  return 0;
}
