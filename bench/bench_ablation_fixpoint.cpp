//===- bench/bench_ablation_fixpoint.cpp - Design-choice ablations --------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Ablates the design decisions DESIGN.md calls out:
//
//   A. single-version-node-per-site (the §5.5 cyclic representation)
//      vs. per-(site, old-version) allocation — graph size and build
//      work on loop-heavy code;
//   B. the UntaintedPath exclusion (Table 1) on vs. off — precision on
//      sanitized-overwrite decoys;
//   C. interprocedural inlining depth — pollution recall on recursive
//      merge patterns (why summaries for recursion matter).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Normalizer.h"
#include "queries/QueryRunner.h"
#include "support/TablePrinter.h"

using namespace gjs;
using namespace gjs::bench;
using queries::VulnType;

namespace {

std::unique_ptr<core::Program> normalize(const std::string &Source) {
  DiagnosticEngine Diags;
  return core::normalizeJS(Source, Diags);
}

bool hasPollution(const std::vector<queries::VulnReport> &Rs) {
  for (const queries::VulnReport &R : Rs)
    if (R.Type == VulnType::PrototypePollution)
      return true;
  return false;
}

} // namespace

int main() {
  printHeader("Ablations: fixpoint versioning, UntaintedPath, inlining",
              "DESIGN.md design-choice index");
  Report Rep("ablation_fixpoint");

  // -- A: allocation-site version reuse --------------------------------------
  std::printf("[A] version-node allocation on loop-heavy code "
              "(set-value + nested merge):\n");
  auto LoopHeavy = normalize(
      "function merge(target, source) {\n"
      "  for (var key in source) {\n"
      "    var val = source[key];\n"
      "    if (typeof val === 'object') { merge(target[key], val); }\n"
      "    else { target[key] = val; }\n"
      "  }\n"
      "  return target;\n"
      "}\n"
      "function setAll(target, props, values) {\n"
      "  for (var i = 0; i < props.length; i++) {\n"
      "    target[props[i]] = values[i];\n"
      "  }\n"
      "  return target;\n"
      "}\n"
      "module.exports = {merge: merge, setAll: setAll};\n");
  TablePrinter A({"allocator", "nodes", "edges", "build work"});
  for (bool Reuse : {true, false}) {
    analysis::BuilderOptions BO;
    BO.SiteVersionReuse = Reuse;
    BO.MaxFixpointIters = 16;
    analysis::BuildResult R = analysis::buildMDG(*LoopHeavy, BO);
    A.addRow({Reuse ? "per-site (paper)" : "per-(site,version) [ablated]",
              std::to_string(R.Graph.numNodes()),
              std::to_string(R.Graph.numEdges()),
              std::to_string(R.WorkDone)});
    std::string Key = Reuse ? "per_site" : "per_site_version";
    Rep.scalar("a.nodes." + Key, double(R.Graph.numNodes()));
    Rep.scalar("a.work." + Key, double(R.WorkDone));
  }
  std::printf("%s\n", A.str().c_str());

  // -- B: UntaintedPath exclusion --------------------------------------------
  // The tainted *object* has its property overwritten with a safe value:
  // the BasicPath src -V(cmd)-> v -P(cmd)-> safe exists in the graph, and
  // only the UntaintedPath exclusion keeps it from becoming a report.
  std::printf("[B] UntaintedPath exclusion on the sanitized-overwrite "
              "pattern:\n");
  auto Sanitized = normalize(
      "var cp = require('child_process');\n"
      "function f(opts, cb) {\n"
      "  opts.cmd = 'git status';\n"
      "  cp.exec(opts.cmd, cb);\n"
      "}\n"
      "module.exports = f;\n");
  analysis::BuildResult SB = analysis::buildMDG(*Sanitized);
  TablePrinter B({"TaintPath", "reports on sanitized code"});
  for (bool Exclusion : {true, false}) {
    queries::GraphDBRunner Runner(SB, {}, Exclusion);
    auto Rs = Runner.detect(queries::SinkConfig::defaults());
    size_t Cmd = 0;
    for (const queries::VulnReport &R : Rs)
      Cmd += R.Type == VulnType::CommandInjection;
    B.addRow({Exclusion ? "BasicPath \\ UntaintedPath (paper)"
                        : "BasicPath only [ablated]",
              std::to_string(Cmd)});
    Rep.scalar(Exclusion ? "b.sanitized_reports.with_exclusion"
                         : "b.sanitized_reports.without_exclusion",
               double(Cmd));
  }
  std::printf("%s", B.str().c_str());
  std::printf("(0 vs >0: the exclusion is what makes overwrites "
              "sanitize, Table 1)\n\n");

  // -- C: inlining depth on nested-wrapper pollution --------------------------
  // The polluting write sits three helper calls below the exported entry;
  // shallow inlining never reaches it. (Direct recursion is depth-free:
  // recursive calls only rebind parameters and the fixpoint does the rest.)
  std::printf("[C] interprocedural depth vs. wrapped-merge pollution "
              "detection:\n");
  auto Merge = normalize(
      "function merge(target, source) {\n"
      "  for (var key in source) {\n"
      "    var val = source[key];\n"
      "    if (typeof val === 'object') { merge(target[key], val); }\n"
      "    else { target[key] = val; }\n"
      "  }\n"
      "  return target;\n"
      "}\n"
      "function l1(t, s) { return merge(t, s); }\n"
      "function l2(t, s) { return l1(t, s); }\n"
      "function entry(t, s) { return l2(t, s); }\n"
      "module.exports = entry;\n");
  TablePrinter C({"MaxInlineDepth", "pollution detected", "build work"});
  for (unsigned Depth : {1u, 2u, 3u, 6u}) {
    analysis::BuilderOptions BO;
    BO.MaxInlineDepth = Depth;
    analysis::BuildResult R = analysis::buildMDG(*Merge, BO);
    queries::GraphDBRunner Runner(R);
    bool Found =
        hasPollution(Runner.detect(queries::SinkConfig::defaults()));
    C.addRow({std::to_string(Depth), Found ? "yes" : "no",
              std::to_string(R.WorkDone)});
    Rep.scalar("c.detected.depth" + std::to_string(Depth), Found ? 1 : 0);
  }
  std::printf("%s", C.str().c_str());
  std::printf("(the recursive self-call only rebinds parameters; the "
              "fixpoint then exposes the lookup-then-assign pattern)\n");
  Rep.write();
  return 0;
}
