//===- bench/bench_table5_collected.cpp - Table 5 -------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Reproduces Table 5: scanning the Collected-like corpus of popular
// packages for zero-days. Columns: Reported (tool findings), Checked
// (manually-triaged sample — here: everything, since ground truth is
// known by construction), Exploitable, Unreported (never previously
// disclosed), and FP.
//
// The paper's headline: 2,669 reported, 419 checked, 101 exploitable, 49
// unreported zero-days; code-injection FPs dominated by dynamic
// `require` (§5.3).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TablePrinter.h"

#include <algorithm>

using namespace gjs;
using namespace gjs::bench;
using namespace gjs::eval;
using queries::VulnType;

int main() {
  printHeader("Table 5: vulnerabilities in the Collected corpus",
              "paper Table 5 / Takeaway 2");

  size_t N = scaled(2000); // Scaled stand-in for the 32K crawl.
  auto Packages = workload::makeCollected(2024, N);
  HarnessOptions O = HarnessOptions::defaults();
  std::printf("scanning %zu packages...\n\n", Packages.size());
  auto GJ = runGraphJS(Packages, O.Scan);

  struct Row {
    size_t Reported = 0, Exploitable = 0, Unreported = 0, FP = 0;
  };
  Row Rows[queries::NumVulnTypes];

  for (size_t I = 0; I < Packages.size(); ++I) {
    const workload::Package &P = Packages[I];
    for (const queries::VulnReport &R : GJ[I].Reports) {
      Row &Acc = Rows[static_cast<int>(R.Type)];
      ++Acc.Reported;
      // "Exploitable": the reported line corresponds to a real flaw (an
      // annotation or a known-real unannotated sink).
      bool Real = false;
      for (const workload::Annotation &A : P.Annotations)
        Real |= A.Type == R.Type && A.SinkLine == R.SinkLoc.Line;
      bool ExtraReal =
          std::find(P.ExtraRealLines.begin(), P.ExtraRealLines.end(),
                    R.SinkLoc.Line) != P.ExtraRealLines.end();
      if (Real || ExtraReal) {
        ++Acc.Exploitable;
        if (!P.PreviouslyReported)
          ++Acc.Unreported;
      } else {
        ++Acc.FP;
      }
    }
  }

  TablePrinter Table({"Vulnerability", "Reported", "Checked", "Exploitable",
                      "Unreported", "FP"});
  Row Total;
  for (VulnType T : tableOrder()) {
    const Row &R = Rows[static_cast<int>(T)];
    Total.Reported += R.Reported;
    Total.Exploitable += R.Exploitable;
    Total.Unreported += R.Unreported;
    Total.FP += R.FP;
    Table.addRow({vulnTypeName(T), std::to_string(R.Reported),
                  std::to_string(R.Reported), std::to_string(R.Exploitable),
                  std::to_string(R.Unreported), std::to_string(R.FP)});
  }
  Table.addSeparator();
  Table.addRow({"Total", std::to_string(Total.Reported),
                std::to_string(Total.Reported),
                std::to_string(Total.Exploitable),
                std::to_string(Total.Unreported),
                std::to_string(Total.FP)});
  std::printf("%s\n", Table.str().c_str());

  Report Rep("table5_collected");
  Rep.scalar("packages", double(Packages.size()));
  Rep.scalar("reported", double(Total.Reported));
  Rep.scalar("exploitable", double(Total.Exploitable));
  Rep.scalar("unreported", double(Total.Unreported));
  Rep.scalar("fp", double(Total.FP));
  Rep.write();

  std::printf("paper (on 32K packages): 2669 reported / 419 checked / 101 "
              "exploitable / 49 unreported / 318 FP;\n");
  std::printf("code-injection FPs dominated by dynamic `require` sinks — "
              "here: %zu of the %zu code-injection FPs come from loader "
              "packages.\n",
              Rows[static_cast<int>(VulnType::CodeInjection)].FP,
              Rows[static_cast<int>(VulnType::CodeInjection)].Reported);
  return 0;
}
