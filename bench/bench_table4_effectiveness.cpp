//===- bench/bench_table4_effectiveness.cpp - Table 4 ---------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Reproduces Table 4: effectiveness and precision of Graph.js and the
// ODGen baseline on the combined VulcaN+SecBench ground truth — TP, FP,
// TFP, recall, precision, and F1 per CWE, plus the headline ratios of
// Takeaway 1 (recall x1.63, precision x1.23, F1 x1.42).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TablePrinter.h"

using namespace gjs;
using namespace gjs::bench;
using namespace gjs::eval;
using queries::VulnType;

int main() {
  printHeader("Table 4: effectiveness and precision vs. ODGen",
              "paper Table 4 / Takeaway 1");

  auto Packages = groundTruth();
  HarnessOptions O = HarnessOptions::defaults();
  std::printf("running Graph.js on %zu packages...\n", Packages.size());
  auto GJ = runGraphJS(Packages, O.Scan);
  std::printf("running ODGen baseline...\n\n");
  auto OD = runODGen(Packages, O.ODGen);

  ScorePolicy GJPolicy;
  ScorePolicy ODPolicy;
  ODPolicy.TypeOnlyMatch = true; // The paper's leniency for ODGen (§5.2).

  Report Rep("table4_effectiveness");
  TablePrinter Table({"CWE", "Total", "GJ TP", "GJ FP", "GJ TFP", "GJ R",
                      "GJ P", "GJ F1", "OD TP", "OD FP", "OD TFP", "OD R",
                      "OD P", "OD F1"});
  ClassStats GJTotal, ODTotal;
  for (VulnType T : tableOrder()) {
    ClassStats SG = scoreDataset(Packages, GJ, T, GJPolicy);
    ClassStats SO = scoreDataset(Packages, OD, T, ODPolicy);
    GJTotal += SG;
    ODTotal += SO;
    Rep.scalar(std::string("gj.f1.") + cweOf(T), SG.f1());
    Rep.scalar(std::string("od.f1.") + cweOf(T), SO.f1());
    Table.addRow({cweOf(T), std::to_string(SG.Total),
                  std::to_string(SG.TP), std::to_string(SG.FP),
                  std::to_string(SG.TFP), TablePrinter::fmt(SG.recall()),
                  TablePrinter::fmt(SG.precision()),
                  TablePrinter::fmt(SG.f1()), std::to_string(SO.TP),
                  std::to_string(SO.FP), std::to_string(SO.TFP),
                  TablePrinter::fmt(SO.recall()),
                  TablePrinter::fmt(SO.precision()),
                  TablePrinter::fmt(SO.f1())});
  }
  Table.addSeparator();
  Table.addRow({"Total", std::to_string(GJTotal.Total),
                std::to_string(GJTotal.TP), std::to_string(GJTotal.FP),
                std::to_string(GJTotal.TFP),
                TablePrinter::fmt(GJTotal.recall()),
                TablePrinter::fmt(GJTotal.precision()),
                TablePrinter::fmt(GJTotal.f1()), std::to_string(ODTotal.TP),
                std::to_string(ODTotal.FP), std::to_string(ODTotal.TFP),
                TablePrinter::fmt(ODTotal.recall()),
                TablePrinter::fmt(ODTotal.precision()),
                TablePrinter::fmt(ODTotal.f1())});
  std::printf("%s\n", Table.str().c_str());

  auto Ratio = [](double A, double B) { return B > 0 ? A / B : 0.0; };
  std::printf("Takeaway 1 ratios (Graph.js / ODGen):\n");
  std::printf("  detections: %s   (paper: 1.63x, 494 vs 304)\n",
              TablePrinter::fmtRatio(
                  Ratio(double(GJTotal.TP), double(ODTotal.TP)))
                  .c_str());
  std::printf("  precision : %s   (paper: 1.23x, 0.78 vs 0.64)\n",
              TablePrinter::fmtRatio(
                  Ratio(GJTotal.precision(), ODTotal.precision()))
                  .c_str());
  std::printf("  F1-score  : %s   (paper: 1.42x, 0.80 vs 0.56)\n",
              TablePrinter::fmtRatio(Ratio(GJTotal.f1(), ODTotal.f1()))
                  .c_str());
  std::printf("  paper recalls — GJ: 0.97/0.95/0.87/0.59 per CWE-22/78/94/"
              "1321, total 0.82 vs ODGen 0.50\n");

  Rep.scalar("gj.recall", GJTotal.recall());
  Rep.scalar("gj.precision", GJTotal.precision());
  Rep.scalar("gj.f1", GJTotal.f1());
  Rep.scalar("od.recall", ODTotal.recall());
  Rep.scalar("od.precision", ODTotal.precision());
  Rep.scalar("od.f1", ODTotal.f1());
  Rep.scalar("ratio.detections",
             Ratio(double(GJTotal.TP), double(ODTotal.TP)));
  Rep.scalar("ratio.precision",
             Ratio(GJTotal.precision(), ODTotal.precision()));
  Rep.scalar("ratio.f1", Ratio(GJTotal.f1(), ODTotal.f1()));
  Rep.write();
  return 0;
}
