//===- bench/bench_table3_datasets.cpp - Table 3 --------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Reproduces Table 3: "Summary of the reference datasets per vulnerability
// type" — package counts per CWE for the VulcaN-like and SecBench-like
// datasets, with the combined distribution.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TablePrinter.h"

using namespace gjs;
using namespace gjs::bench;
using queries::VulnType;

int main() {
  printHeader("Table 3: reference dataset summary", "paper Table 3");

  auto VulcaN = workload::makeVulcaN(2024);
  auto SecBench = workload::makeSecBench(2024);

  auto Count = [](const std::vector<workload::Package> &Ps, VulnType T) {
    size_t N = 0;
    for (const workload::Package &P : Ps)
      for (const workload::Annotation &A : P.Annotations)
        if (A.Type == T)
          ++N;
    return N;
  };

  size_t Total = 0;
  for (VulnType T : tableOrder())
    Total += Count(VulcaN, T) + Count(SecBench, T);

  TablePrinter Table({"Vulnerability Type", "CWE", "VulcaN", "SecBench",
                      "Total", "Distribution"});
  size_t TV = 0, TS = 0;
  for (VulnType T : tableOrder()) {
    size_t V = Count(VulcaN, T);
    size_t S = Count(SecBench, T);
    TV += V;
    TS += S;
    Table.addRow({vulnTypeName(T), cweOf(T), std::to_string(V),
                  std::to_string(S), std::to_string(V + S),
                  TablePrinter::fmtPercent(double(V + S) / double(Total))});
  }
  Table.addSeparator();
  Table.addRow({"Total", "", std::to_string(TV), std::to_string(TS),
                std::to_string(TV + TS), "100.0%"});
  std::printf("%s\n", Table.str().c_str());

  std::printf("paper: VulcaN 219 (5/87/33/94), SecBench 384 "
              "(161/82/21/120), total 603.\n");

  Report R("table3_datasets");
  R.scalar("vulcan_annotations", double(TV));
  R.scalar("secbench_annotations", double(TS));
  R.scalar("total_annotations", double(TV + TS));
  {
    std::vector<double> Loc;
    for (const workload::Package &P : VulcaN)
      Loc.push_back(double(P.LoC));
    for (const workload::Package &P : SecBench)
      Loc.push_back(double(P.LoC));
    R.series("package_loc", Loc);
  }
  R.write();
  return 0;
}
