//===- bench/bench_table6_phases.cpp - Table 6 ----------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Reproduces Table 6: average per-package time for each analysis phase
// (graph construction vs. query/traversal), per CWE and per tool, over
// packages that completed. Shapes to reproduce:
//
//   - Graph.js's query phase is comparatively expensive for taint-style
//     classes (the interpreted query engine vs. ODGen's native scans);
//   - for prototype pollution the situation reverses: ODGen's graph and
//     traversal work balloons (state forking + exploded ODG), while
//     Graph.js stays flat.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TablePrinter.h"

using namespace gjs;
using namespace gjs::bench;
using namespace gjs::eval;
using queries::VulnType;

int main() {
  printHeader("Table 6: average time per analysis phase", "paper Table 6");

  auto Packages = groundTruth();
  HarnessOptions O = HarnessOptions::defaults();
  auto GJ = runGraphJS(Packages, O.Scan);
  auto OD = runODGen(Packages, O.ODGen);

  Report R("table6_phases");
  {
    std::vector<double> GJGraph, GJQuery, ODGraph, ODQuery;
    for (const PackageOutcome &P : GJ)
      if (!P.TimedOut) {
        GJGraph.push_back(P.GraphSeconds);
        GJQuery.push_back(P.QuerySeconds);
      }
    for (const PackageOutcome &P : OD)
      if (!P.TimedOut) {
        ODGraph.push_back(P.GraphSeconds);
        ODQuery.push_back(P.QuerySeconds);
      }
    R.series("gj.graph_seconds", GJGraph);
    R.series("gj.query_seconds", GJQuery);
    R.series("od.graph_seconds", ODGraph);
    R.series("od.query_seconds", ODQuery);
  }

  // Aggregate effort counters next to the wall-clock phases: how many
  // matcher steps, MDG nodes, etc. the whole dataset cost Graph.js
  // (populated when the batch driver ran with counters enabled).
  for (const auto &[Name, Value] : aggregateCounters(GJ))
    R.scalar("counters." + Name, double(Value));

  struct Acc {
    double Graph = 0, Query = 0;
    size_t N = 0;
  };
  Acc GJAcc[queries::NumVulnTypes], ODAcc[queries::NumVulnTypes];
  size_t Counts[queries::NumVulnTypes] = {0, 0, 0, 0};

  for (size_t I = 0; I < Packages.size(); ++I) {
    VulnType T;
    if (!classOf(Packages[I], T))
      continue;
    ++Counts[static_cast<int>(T)];
    if (!GJ[I].TimedOut) {
      Acc &A = GJAcc[static_cast<int>(T)];
      A.Graph += GJ[I].GraphSeconds;
      A.Query += GJ[I].QuerySeconds;
      ++A.N;
    }
    if (!OD[I].TimedOut) {
      Acc &A = ODAcc[static_cast<int>(T)];
      A.Graph += OD[I].GraphSeconds;
      A.Query += OD[I].QuerySeconds;
      ++A.N;
    }
  }

  TablePrinter Table({"CWE", "#", "GJ Graph", "GJ Trav", "GJ Total",
                      "OD Graph", "OD Trav", "OD Total"});
  auto Ms = [](double S, size_t N) {
    return N ? TablePrinter::fmt(S / double(N) * 1000.0, 3) + "ms"
             : std::string("-");
  };
  Acc GJTot, ODTot;
  size_t CntTot = 0;
  for (VulnType T : tableOrder()) {
    int I = static_cast<int>(T);
    const Acc &A = GJAcc[I];
    const Acc &B = ODAcc[I];
    GJTot.Graph += A.Graph;
    GJTot.Query += A.Query;
    GJTot.N += A.N;
    ODTot.Graph += B.Graph;
    ODTot.Query += B.Query;
    ODTot.N += B.N;
    CntTot += Counts[I];
    Table.addRow({cweOf(T), std::to_string(Counts[I]), Ms(A.Graph, A.N),
                  Ms(A.Query, A.N), Ms(A.Graph + A.Query, A.N),
                  Ms(B.Graph, B.N), Ms(B.Query, B.N),
                  Ms(B.Graph + B.Query, B.N)});
  }
  Table.addSeparator();
  Table.addRow({"Total", std::to_string(CntTot), Ms(GJTot.Graph, GJTot.N),
                Ms(GJTot.Query, GJTot.N),
                Ms(GJTot.Graph + GJTot.Query, GJTot.N),
                Ms(ODTot.Graph, ODTot.N), Ms(ODTot.Query, ODTot.N),
                Ms(ODTot.Graph + ODTot.Query, ODTot.N)});
  std::printf("%s\n", Table.str().c_str());

  // The two phase-structure claims, computed.
  auto Avg = [](double S, size_t N) { return N ? S / double(N) : 0.0; };
  double GJTaintQ = 0, ODTaintQ = 0;
  size_t GJTaintN = 0, ODTaintN = 0;
  for (VulnType T : {VulnType::PathTraversal, VulnType::CommandInjection,
                     VulnType::CodeInjection}) {
    GJTaintQ += GJAcc[static_cast<int>(T)].Query;
    GJTaintN += GJAcc[static_cast<int>(T)].N;
    ODTaintQ += ODAcc[static_cast<int>(T)].Query;
    ODTaintN += ODAcc[static_cast<int>(T)].N;
  }
  double R1 = Avg(ODTaintQ, ODTaintN) > 0
                  ? Avg(GJTaintQ, GJTaintN) / Avg(ODTaintQ, ODTaintN)
                  : 0;
  std::printf("taint-style traversals: Graph.js %.1fx ODGen's cost "
              "(paper: up to 4.8x slower — the Neo4j-engine effect)\n",
              R1);
  int PP = static_cast<int>(VulnType::PrototypePollution);
  std::printf("prototype pollution totals: ODGen %.3fms vs Graph.js "
              "%.3fms per completed package (paper: 15.45s vs 5.47s — "
              "reversed in ODGen's disfavor)\n",
              Avg(ODAcc[PP].Graph + ODAcc[PP].Query, ODAcc[PP].N) * 1000,
              Avg(GJAcc[PP].Graph + GJAcc[PP].Query, GJAcc[PP].N) * 1000);

  R.scalar("taint_query_ratio_gj_over_od", R1);
  R.scalar("pp_total_ms_od",
           Avg(ODAcc[PP].Graph + ODAcc[PP].Query, ODAcc[PP].N) * 1000);
  R.scalar("pp_total_ms_gj",
           Avg(GJAcc[PP].Graph + GJAcc[PP].Query, GJAcc[PP].N) * 1000);
  R.write();
  return 0;
}
