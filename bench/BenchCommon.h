//===- bench/BenchCommon.h - Shared bench plumbing ---------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: dataset
/// scaling via the GJS_BENCH_SCALE environment variable (percent of the
/// paper's dataset sizes; default 100), per-class grouping, and the tool
/// pair runner.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_BENCH_BENCHCOMMON_H
#define GJS_BENCH_BENCHCOMMON_H

#include "eval/Harness.h"
#include "workload/Datasets.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace gjs {
namespace bench {

/// GJS_BENCH_SCALE: percentage of the paper's dataset sizes (default 100).
inline unsigned scalePercent() {
  const char *Env = std::getenv("GJS_BENCH_SCALE");
  if (!Env)
    return 100;
  int V = std::atoi(Env);
  return V < 1 ? 1 : (V > 100 ? 100 : static_cast<unsigned>(V));
}

inline size_t scaled(size_t N) {
  size_t S = (N * scalePercent() + 99) / 100;
  return S == 0 ? 1 : S;
}

/// The combined ground-truth datasets at the configured scale.
inline std::vector<workload::Package> groundTruth(uint64_t Seed = 2024) {
  unsigned P = scalePercent();
  if (P == 100)
    return workload::makeGroundTruth(Seed);
  auto Scale = [&](const workload::DatasetCounts &C) {
    workload::DatasetCounts Out;
    Out.PathTraversal = scaled(C.PathTraversal);
    Out.CommandInjection = scaled(C.CommandInjection);
    Out.CodeInjection = scaled(C.CodeInjection);
    Out.PrototypePollution = scaled(C.PrototypePollution);
    return Out;
  };
  auto A = workload::makeDataset(Seed ^ 0x56554C43, Scale(workload::VulcaNCounts));
  auto B = workload::makeDataset(Seed ^ 0x53454342,
                                 Scale(workload::SecBenchCounts));
  A.insert(A.end(), std::make_move_iterator(B.begin()),
           std::make_move_iterator(B.end()));
  return A;
}

/// The per-class ordering used by the paper's tables.
inline const std::vector<queries::VulnType> &tableOrder() {
  static const std::vector<queries::VulnType> Order = {
      queries::VulnType::PathTraversal, queries::VulnType::CommandInjection,
      queries::VulnType::CodeInjection,
      queries::VulnType::PrototypePollution};
  return Order;
}

/// Which class a package belongs to (by its first annotation; packages
/// without annotations return false).
inline bool classOf(const workload::Package &P, queries::VulnType &Out) {
  if (P.Annotations.empty())
    return false;
  Out = P.Annotations[0].Type;
  return true;
}

inline void printHeader(const char *Title, const char *PaperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s; GJS_BENCH_SCALE=%u%%)\n", Title, PaperRef,
              scalePercent());
  std::printf("================================================================\n\n");
}

} // namespace bench
} // namespace gjs

#endif // GJS_BENCH_BENCHCOMMON_H
