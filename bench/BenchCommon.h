//===- bench/BenchCommon.h - Shared bench plumbing ---------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: dataset
/// scaling via the GJS_BENCH_SCALE environment variable (percent of the
/// paper's dataset sizes; default 100), per-class grouping, the tool
/// pair runner, and the machine-readable bench report
/// (BENCH_<name>.json).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_BENCH_BENCHCOMMON_H
#define GJS_BENCH_BENCHCOMMON_H

#include "eval/Harness.h"
#include "support/JSON.h"
#include "workload/Datasets.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace gjs {
namespace bench {

/// GJS_BENCH_SCALE: percentage of the paper's dataset sizes (default 100).
inline unsigned scalePercent() {
  const char *Env = std::getenv("GJS_BENCH_SCALE");
  if (!Env)
    return 100;
  int V = std::atoi(Env);
  return V < 1 ? 1 : (V > 100 ? 100 : static_cast<unsigned>(V));
}

inline size_t scaled(size_t N) {
  size_t S = (N * scalePercent() + 99) / 100;
  return S == 0 ? 1 : S;
}

/// The combined ground-truth datasets at the configured scale.
inline std::vector<workload::Package> groundTruth(uint64_t Seed = 2024) {
  unsigned P = scalePercent();
  if (P == 100)
    return workload::makeGroundTruth(Seed);
  auto Scale = [&](const workload::DatasetCounts &C) {
    workload::DatasetCounts Out;
    Out.PathTraversal = scaled(C.PathTraversal);
    Out.CommandInjection = scaled(C.CommandInjection);
    Out.CodeInjection = scaled(C.CodeInjection);
    Out.PrototypePollution = scaled(C.PrototypePollution);
    return Out;
  };
  auto A = workload::makeDataset(Seed ^ 0x56554C43, Scale(workload::VulcaNCounts));
  auto B = workload::makeDataset(Seed ^ 0x53454342,
                                 Scale(workload::SecBenchCounts));
  A.insert(A.end(), std::make_move_iterator(B.begin()),
           std::make_move_iterator(B.end()));
  return A;
}

/// The per-class ordering used by the paper's tables.
inline const std::vector<queries::VulnType> &tableOrder() {
  static const std::vector<queries::VulnType> Order = {
      queries::VulnType::PathTraversal, queries::VulnType::CommandInjection,
      queries::VulnType::CodeInjection,
      queries::VulnType::PrototypePollution};
  return Order;
}

/// Which class a package belongs to (by its first annotation; packages
/// without annotations return false).
inline bool classOf(const workload::Package &P, queries::VulnType &Out) {
  if (P.Annotations.empty())
    return false;
  Out = P.Annotations[0].Type;
  return true;
}

/// Summary statistics over one measured sample series.
struct SeriesStats {
  size_t N = 0;
  double Mean = 0, P50 = 0, P95 = 0, Min = 0, Max = 0;
};

inline SeriesStats summarize(std::vector<double> Samples) {
  SeriesStats S;
  if (Samples.empty())
    return S;
  std::sort(Samples.begin(), Samples.end());
  S.N = Samples.size();
  S.Min = Samples.front();
  S.Max = Samples.back();
  double Sum = 0;
  for (double V : Samples)
    Sum += V;
  S.Mean = Sum / double(S.N);
  // Nearest-rank percentiles.
  auto Rank = [&](double Q) {
    size_t I = static_cast<size_t>(Q * double(S.N) + 0.999999);
    return Samples[std::min(I ? I - 1 : 0, S.N - 1)];
  };
  S.P50 = Rank(0.50);
  S.P95 = Rank(0.95);
  return S;
}

/// Machine-readable bench output: every bench binary writes a
/// BENCH_<name>.json file next to where it runs (override the directory
/// with GJS_BENCH_OUT) holding mean/p50/p95/min/max per sample series
/// plus free-form scalars. The eval tooling and CI diff these instead of
/// scraping the printed tables.
class Report {
public:
  explicit Report(std::string Name) : Name(std::move(Name)) {
    Root["bench"] = json::Value(this->Name);
    Root["scale_percent"] = json::Value(scalePercent());
  }

  void scalar(const std::string &Key, double Value) {
    Scalars[Key] = json::Value(Value);
  }

  /// Samples are kept in whatever unit the bench measured (document it in
  /// the key, e.g. "gj.graph_seconds").
  void series(const std::string &Key, const std::vector<double> &Samples) {
    SeriesStats S = summarize(Samples);
    json::Object O;
    O["n"] = json::Value(static_cast<unsigned long>(S.N));
    O["mean"] = json::Value(S.Mean);
    O["p50"] = json::Value(S.P50);
    O["p95"] = json::Value(S.P95);
    O["min"] = json::Value(S.Min);
    O["max"] = json::Value(S.Max);
    SeriesObj[Key] = json::Value(std::move(O));
  }

  /// Writes BENCH_<name>.json; prints the path on success.
  bool write() {
    Root["series"] = json::Value(std::move(SeriesObj));
    Root["scalars"] = json::Value(std::move(Scalars));
    std::string Dir = std::getenv("GJS_BENCH_OUT")
                          ? std::getenv("GJS_BENCH_OUT")
                          : std::string(".");
    std::string Path = Dir + "/BENCH_" + Name + ".json";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return false;
    }
    Out << json::Value(std::move(Root)).str(2) << '\n';
    std::printf("wrote %s\n", Path.c_str());
    return true;
  }

private:
  std::string Name;
  json::Object Root, SeriesObj, Scalars;
};

inline void printHeader(const char *Title, const char *PaperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s; GJS_BENCH_SCALE=%u%%)\n", Title, PaperRef,
              scalePercent());
  std::printf("================================================================\n\n");
}

} // namespace bench
} // namespace gjs

#endif // GJS_BENCH_BENCHCOMMON_H
