# Benchmark binaries — one per paper table/figure, plus microbenchmarks
# and ablations. All binaries land in ${CMAKE_BINARY_DIR}/bench so that
#   for b in build/bench/*; do $b; done
# runs the whole harness.

function(gjs_add_bench NAME)
  add_executable(${NAME} ${CMAKE_SOURCE_DIR}/bench/${NAME}.cpp)
  target_link_libraries(${NAME} PRIVATE
    gjs_eval gjs_workload gjs_odgen gjs_scanner gjs_queries gjs_graphdb
    gjs_analysis gjs_mdg gjs_coreir gjs_cfg gjs_frontend gjs_support)
  set_target_properties(${NAME} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

gjs_add_bench(bench_table3_datasets)
gjs_add_bench(bench_table4_effectiveness)
gjs_add_bench(bench_table5_collected)
gjs_add_bench(bench_table6_phases)
gjs_add_bench(bench_table7_graphsize)
gjs_add_bench(bench_fig6_venn)
gjs_add_bench(bench_fig7_cdf)
gjs_add_bench(bench_fig9_casestudy)
gjs_add_bench(bench_ablation_fixpoint)

gjs_add_bench(bench_pruning)
target_compile_definitions(bench_pruning PRIVATE
  GJS_EXAMPLES_JS_DIR="${CMAKE_SOURCE_DIR}/examples/js")

# jobs=1 in-process vs jobs=N worker-pool throughput (BENCH_batch.json).
gjs_add_bench(bench_batch)

function(gjs_add_gbench NAME)
  gjs_add_bench(${NAME})
  target_link_libraries(${NAME} PRIVATE benchmark::benchmark)
endfunction()

gjs_add_gbench(bench_micro_construction)
gjs_add_gbench(bench_micro_querylatency)
