//===- bench/bench_micro_construction.cpp - Pipeline microbenchmarks ------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Microbenchmarks of the MDG-generation pipeline phases (parse, lower,
// build) across program sizes, backing the Takeaway-4 claim that "MDGs
// grow linearly with the number of lines of code".
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "frontend/Parser.h"
#include "workload/Packages.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace gjs;

namespace {

/// A representative package source of roughly `LoC` lines.
std::string makeSource(size_t LoC) {
  workload::PackageGenerator Gen(7);
  workload::Package P =
      Gen.vulnerable(queries::VulnType::CommandInjection,
                     workload::Complexity::Loop,
                     workload::VariantKind::Plain, LoC);
  return P.Files[0].Contents;
}

} // namespace

static void BM_Parse(benchmark::State &State) {
  std::string Source = makeSource(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto P = parseJS(Source, Diags);
    benchmark::DoNotOptimize(P);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Parse)->Arg(50)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

static void BM_Normalize(benchmark::State &State) {
  std::string Source = makeSource(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto P = core::normalizeJS(Source, Diags);
    benchmark::DoNotOptimize(P);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Normalize)->Arg(50)->Arg(200)->Arg(800)->Arg(3200)
    ->Complexity();

static void BM_BuildMDG(benchmark::State &State) {
  std::string Source = makeSource(static_cast<size_t>(State.range(0)));
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  size_t Nodes = 0;
  for (auto _ : State) {
    analysis::BuildResult R = analysis::buildMDG(*Prog);
    Nodes = R.Graph.numNodes();
    benchmark::DoNotOptimize(R);
  }
  State.counters["mdg_nodes"] = static_cast<double>(Nodes);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BuildMDG)->Arg(50)->Arg(200)->Arg(800)->Arg(3200)
    ->Complexity();

static void BM_ImportToGraphDB(benchmark::State &State) {
  std::string Source = makeSource(static_cast<size_t>(State.range(0)));
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  analysis::BuildResult R = analysis::buildMDG(*Prog);
  for (auto _ : State) {
    auto Imported = graphdb::importMDG(R.Graph, R.Props);
    benchmark::DoNotOptimize(Imported);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ImportToGraphDB)->Arg(50)->Arg(200)->Arg(800)->Arg(3200)
    ->Complexity();

// Custom main instead of BENCHMARK_MAIN(): write the results to
// BENCH_micro_construction.json (google-benchmark's JSON format) unless
// the caller already passed a --benchmark_out destination. The directory
// is overridable with GJS_BENCH_OUT, matching bench::Report.
int main(int argc, char **argv) {
  std::vector<char *> Args(argv, argv + argc);
  bool HasOut = false;
  for (int I = 1; I < argc; ++I)
    HasOut |= std::string(argv[I]).rfind("--benchmark_out", 0) == 0;
  const char *Env = std::getenv("GJS_BENCH_OUT");
  std::string Out = std::string("--benchmark_out=") + (Env ? Env : ".") +
                    "/BENCH_micro_construction.json";
  std::string Fmt = "--benchmark_out_format=json";
  if (!HasOut) {
    Args.push_back(Out.data());
    Args.push_back(Fmt.data());
  }
  int N = static_cast<int>(Args.size());
  benchmark::Initialize(&N, Args.data());
  if (benchmark::ReportUnrecognizedArguments(N, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
