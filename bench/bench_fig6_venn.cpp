//===- bench/bench_fig6_venn.cpp - Figure 6 -------------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Reproduces Figure 6: the Venn decomposition of vulnerabilities detected
// by Graph.js and ODGen. The paper's key observation: Graph.js largely
// subsumes ODGen ("Apart from 17 vulnerabilities detected exclusively by
// ODGen, Graph.js identifies all other vulnerabilities that ODGen
// detects, i.e., 94%").
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace gjs;
using namespace gjs::bench;
using namespace gjs::eval;

int main() {
  printHeader("Figure 6: detection overlap (Venn)", "paper Figure 6");

  auto Packages = groundTruth();
  HarnessOptions O = HarnessOptions::defaults();
  auto GJ = runGraphJS(Packages, O.Scan);
  auto OD = runODGen(Packages, O.ODGen);

  ScorePolicy GJPolicy;
  ScorePolicy ODPolicy;
  ODPolicy.TypeOnlyMatch = true;
  std::vector<bool> A = detectedFlags(Packages, GJ, GJPolicy);
  std::vector<bool> B = detectedFlags(Packages, OD, ODPolicy);
  VennCounts V = venn(A, B);

  size_t GJOnly = V.OnlyA, ODOnly = V.OnlyB, Both = V.Both;
  std::printf("          Graph.js            ODGen\n");
  std::printf("       .-----------.      .-----------.\n");
  std::printf("      |   %5zu     |     |            |\n", GJOnly);
  std::printf("      |        .---+-----+---.        |\n");
  std::printf("      |       |    %5zu    |   %4zu  |\n", Both, ODOnly);
  std::printf("      |        '---+-----+---'        |\n");
  std::printf("       '-----------'      '-----------'\n");
  std::printf("      (neither tool: %zu)\n\n", V.Neither);

  size_t ODTotal = Both + ODOnly;
  double Subsumed = ODTotal ? double(Both) / double(ODTotal) : 0;
  std::printf("Graph.js finds %.0f%% of what ODGen finds "
              "(paper: 94%%, with 17 ODGen-exclusive).\n",
              Subsumed * 100);
  std::printf("Graph.js-exclusive: %zu, ODGen-exclusive: %zu.\n", GJOnly,
              ODOnly);

  Report Rep("fig6_venn");
  Rep.scalar("gj_only", double(GJOnly));
  Rep.scalar("od_only", double(ODOnly));
  Rep.scalar("both", double(Both));
  Rep.scalar("neither", double(V.Neither));
  Rep.scalar("od_subsumed_fraction", Subsumed);
  Rep.write();
  return 0;
}
