//===- bench/bench_table7_graphsize.cpp - Table 7 -------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Reproduces Table 7: graph sizes (nodes/edges) of Graph.js's MDGs vs the
// ODGen baseline's CPG+ODG, grouped by package LoC, counting only the
// graphs each tool managed to build before timing out. Shapes:
//
//   - MDGs are much smaller (paper: 0.14x nodes, 0.42x edges on average,
//     smaller in 99% of cases);
//   - MDGs grow linearly with LoC (allocation-site abstraction), while
//     the baseline's graphs balloon with loops/dynamic code.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TablePrinter.h"

using namespace gjs;
using namespace gjs::bench;
using namespace gjs::eval;

int main() {
  printHeader("Table 7: graph complexity by package size", "paper Table 7");

  auto Packages = groundTruth();
  HarnessOptions O = HarnessOptions::defaults();
  auto GJ = runGraphJS(Packages, O.Scan);
  auto OD = runODGen(Packages, O.ODGen);

  struct Acc {
    size_t N = 0, GJGraphs = 0, ODGraphs = 0;
    double GJNodes = 0, GJEdges = 0, ODNodes = 0, ODEdges = 0;
  };
  Acc Buckets[4];

  size_t SmallerNodes = 0, Comparable = 0;
  for (size_t I = 0; I < Packages.size(); ++I) {
    Acc &B = Buckets[bucketOf(Packages[I].LoC)];
    ++B.N;
    if (GJ[I].GraphBuilt && !GJ[I].TimedOut) {
      ++B.GJGraphs;
      B.GJNodes += double(GJ[I].GraphNodes);
      B.GJEdges += double(GJ[I].GraphEdges);
    }
    if (OD[I].GraphBuilt) {
      ++B.ODGraphs;
      B.ODNodes += double(OD[I].GraphNodes);
      B.ODEdges += double(OD[I].GraphEdges);
    }
    if (GJ[I].GraphBuilt && OD[I].GraphBuilt) {
      ++Comparable;
      if (GJ[I].GraphNodes < OD[I].GraphNodes)
        ++SmallerNodes;
    }
  }

  TablePrinter Table({"LoC", "#", "GJ graphs", "GJ nodes", "GJ edges",
                      "OD graphs", "OD nodes", "OD edges", "node ratio",
                      "edge ratio"});
  double TGN = 0, TGE = 0, TON = 0, TOE = 0;
  size_t TGG = 0, TOG = 0, TN = 0;
  for (int I = 0; I < 4; ++I) {
    const Acc &B = Buckets[I];
    TN += B.N;
    TGG += B.GJGraphs;
    TOG += B.ODGraphs;
    TGN += B.GJNodes;
    TGE += B.GJEdges;
    TON += B.ODNodes;
    TOE += B.ODEdges;
    auto AvgStr = [](double Sum, size_t N) {
      return N ? TablePrinter::fmt(Sum / double(N), 0) : std::string("-");
    };
    double NR = B.ODNodes > 0 && B.ODGraphs && B.GJGraphs
                    ? (B.GJNodes / double(B.GJGraphs)) /
                          (B.ODNodes / double(B.ODGraphs))
                    : 0;
    double ER = B.ODEdges > 0 && B.ODGraphs && B.GJGraphs
                    ? (B.GJEdges / double(B.GJGraphs)) /
                          (B.ODEdges / double(B.ODGraphs))
                    : 0;
    Table.addRow({Table7Buckets[I].Label, std::to_string(B.N),
                  std::to_string(B.GJGraphs), AvgStr(B.GJNodes, B.GJGraphs),
                  AvgStr(B.GJEdges, B.GJGraphs), std::to_string(B.ODGraphs),
                  AvgStr(B.ODNodes, B.ODGraphs),
                  AvgStr(B.ODEdges, B.ODGraphs),
                  TablePrinter::fmtRatio(NR), TablePrinter::fmtRatio(ER)});
  }
  Table.addSeparator();
  double TotalNR = TON > 0 && TOG && TGG
                       ? (TGN / double(TGG)) / (TON / double(TOG))
                       : 0;
  double TotalER = TOE > 0 && TOG && TGG
                       ? (TGE / double(TGG)) / (TOE / double(TOG))
                       : 0;
  Table.addRow({"Total", std::to_string(TN), std::to_string(TGG),
                TablePrinter::fmt(TGN / std::max<size_t>(TGG, 1), 0),
                TablePrinter::fmt(TGE / std::max<size_t>(TGG, 1), 0),
                std::to_string(TOG),
                TablePrinter::fmt(TON / std::max<size_t>(TOG, 1), 0),
                TablePrinter::fmt(TOE / std::max<size_t>(TOG, 1), 0),
                TablePrinter::fmtRatio(TotalNR),
                TablePrinter::fmtRatio(TotalER)});
  std::printf("%s\n", Table.str().c_str());

  std::printf("MDG smaller (nodes) in %.1f%% of comparable packages "
              "(paper Takeaway 4: 99%%).\n",
              Comparable ? 100.0 * double(SmallerNodes) / double(Comparable)
                         : 0.0);
  std::printf("paper average ratios: 0.14x nodes (1/7.2), 0.42x edges "
              "(1/2.3).\n");

  Report Rep("table7_graphsize");
  {
    std::vector<double> GJNodes, GJEdges, ODNodes, ODEdges;
    for (size_t I = 0; I < Packages.size(); ++I) {
      if (GJ[I].GraphBuilt && !GJ[I].TimedOut) {
        GJNodes.push_back(double(GJ[I].GraphNodes));
        GJEdges.push_back(double(GJ[I].GraphEdges));
      }
      if (OD[I].GraphBuilt) {
        ODNodes.push_back(double(OD[I].GraphNodes));
        ODEdges.push_back(double(OD[I].GraphEdges));
      }
    }
    Rep.series("gj.nodes", GJNodes);
    Rep.series("gj.edges", GJEdges);
    Rep.series("od.nodes", ODNodes);
    Rep.series("od.edges", ODEdges);
  }
  Rep.scalar("node_ratio", TotalNR);
  Rep.scalar("edge_ratio", TotalER);
  Rep.scalar("smaller_nodes_percent",
             Comparable ? 100.0 * double(SmallerNodes) / double(Comparable)
                        : 0.0);
  Rep.write();
  return 0;
}
