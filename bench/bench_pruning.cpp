//===- bench/bench_pruning.cpp - Summary-based pruning speedup ------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Measures what the call-graph + taint-summary pruning stage
// (docs/CALLGRAPH.md) buys: full scans with and without pruning over
//
//   A. the examples/js inputs,
//   B. a benign-heavy workload corpus (the realistic npm mix: most
//      packages never route input to a sink), and
//   C. synthetic deep-call-chain packages — a benign chain whose scan
//      collapses to the summary stage, and a vulnerable twin paying the
//      summary overhead on top of the full pipeline (the worst case).
//
// Detection neutrality is asserted inline: any corpus where the pruned
// and unpruned report multisets differ fails the binary.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "scanner/Scanner.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace gjs;
using namespace gjs::bench;

namespace {

struct Corpus {
  std::string Name;
  std::vector<std::vector<scanner::SourceFile>> Packages;
};

std::vector<scanner::SourceFile> loadFile(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return {{P.filename().string(), SS.str()}};
}

/// A call chain of Depth helper functions; the innermost either reaches
/// a command-injection sink or is pure.
std::vector<scanner::SourceFile> deepChain(int Depth, bool Vulnerable) {
  std::string S = "var cp = require('child_process');\n";
  S += Vulnerable ? "function f0(a) { cp.exec(a); return a; }\n"
                  : "function f0(a) { var x = a + 1; return x; }\n";
  for (int I = 1; I < Depth; ++I)
    S += "function f" + std::to_string(I) + "(a) { return f" +
         std::to_string(I - 1) + "(a); }\n";
  S += "module.exports = f" + std::to_string(Depth - 1) + ";\n";
  return {{Vulnerable ? "chain_vuln.js" : "chain_benign.js", std::move(S)}};
}

struct Measured {
  std::vector<double> Seconds;
  size_t Reports = 0;
  size_t PrunedQueries = 0;
  size_t SkippedImports = 0;
};

Measured scanAll(const Corpus &C, bool Prune) {
  Measured M;
  scanner::ScanOptions O;
  O.Prune = Prune;
  scanner::Scanner S(O);
  for (const auto &Files : C.Packages) {
    Timer T;
    scanner::ScanResult R = S.scanPackage(Files);
    M.Seconds.push_back(T.elapsedSeconds());
    M.Reports += R.Reports.size();
    M.PrunedQueries += R.PrunedQueries;
    M.SkippedImports += R.PruneSkippedImport ? 1 : 0;
  }
  return M;
}

double sum(const std::vector<double> &V) {
  double S = 0;
  for (double X : V)
    S += X;
  return S;
}

} // namespace

int main() {
  printHeader("Summary-based query pruning: cost and payoff",
              "docs/CALLGRAPH.md");

  std::vector<Corpus> Corpora;

  // A: the checked-in examples (when run from anywhere inside the repo).
  Corpus Examples{"examples", {}};
  std::error_code EC;
  for (const auto &E :
       std::filesystem::directory_iterator(GJS_EXAMPLES_JS_DIR, EC))
    if (E.path().extension() == ".js")
      Examples.Packages.push_back(loadFile(E.path()));
  if (!Examples.Packages.empty())
    Corpora.push_back(std::move(Examples));

  // B: benign-heavy mix — per 10 packages: 6 benign, 2 with safe sinks,
  // 1 dynamic-require, 1 genuinely vulnerable.
  Corpus Mix{"benign_heavy", {}};
  workload::PackageGenerator Gen(2024);
  for (size_t I = 0; I < scaled(40); ++I) {
    workload::Package P;
    switch (I % 10) {
    case 6:
    case 7:
      P = Gen.benignWithSafeSinks(40);
      break;
    case 8:
      P = Gen.dynamicRequire(40);
      break;
    case 9:
      P = Gen.vulnerable(queries::VulnType::CommandInjection,
                         workload::Complexity::Wrapped,
                         workload::VariantKind::Plain);
      break;
    default:
      P = Gen.benign(40);
    }
    Mix.Packages.push_back(std::move(P.Files));
  }
  Corpora.push_back(std::move(Mix));

  // C: deep call chains, benign and vulnerable twins.
  Corpus Chains{"deep_chains", {}};
  for (int Depth : {20, 60, 120}) {
    Chains.Packages.push_back(deepChain(Depth, /*Vulnerable=*/false));
    Chains.Packages.push_back(deepChain(Depth, /*Vulnerable=*/true));
  }
  Corpora.push_back(std::move(Chains));

  Report Rep("pruning");
  TablePrinter Table({"corpus", "#pkg", "pruned", "full", "speedup",
                      "q skipped", "imports skipped"});
  bool Neutral = true;

  for (const Corpus &C : Corpora) {
    Measured With = scanAll(C, /*Prune=*/true);
    Measured Without = scanAll(C, /*Prune=*/false);
    if (With.Reports != Without.Reports) {
      std::fprintf(stderr,
                   "FAIL: %s: pruning changed the report count (%zu vs %zu)\n",
                   C.Name.c_str(), With.Reports, Without.Reports);
      Neutral = false;
    }
    double TW = sum(With.Seconds), TO = sum(Without.Seconds);
    Rep.series(C.Name + ".pruned_seconds", With.Seconds);
    Rep.series(C.Name + ".full_seconds", Without.Seconds);
    Rep.scalar(C.Name + ".speedup", TW > 0 ? TO / TW : 0);
    Rep.scalar(C.Name + ".queries_skipped", double(With.PrunedQueries));
    Rep.scalar(C.Name + ".imports_skipped", double(With.SkippedImports));
    Rep.scalar(C.Name + ".reports", double(With.Reports));
    Table.addRow({C.Name, std::to_string(C.Packages.size()),
                  TablePrinter::fmt(TW * 1000.0, 2) + "ms",
                  TablePrinter::fmt(TO * 1000.0, 2) + "ms",
                  TablePrinter::fmtRatio(TW > 0 ? TO / TW : 0),
                  std::to_string(With.PrunedQueries),
                  std::to_string(With.SkippedImports)});
  }
  std::printf("%s\n", Table.str().c_str());
  Rep.scalar("neutral", Neutral ? 1 : 0);
  Rep.write();
  return Neutral ? 0 : 1;
}
