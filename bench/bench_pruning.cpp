//===- bench/bench_pruning.cpp - Summary-based pruning speedup ------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Measures what the call-graph + taint-summary pruning stage
// (docs/CALLGRAPH.md) buys: full scans with and without pruning over
//
//   A. the examples/js inputs,
//   B. a benign-heavy workload corpus (the realistic npm mix: most
//      packages never route input to a sink), and
//   C. synthetic deep-call-chain packages — a benign chain whose scan
//      collapses to the summary stage, and a vulnerable twin paying the
//      summary overhead on top of the full pipeline (the worst case),
//
// plus a cross-package section (docs/DEPENDENCIES.md): dependency trees
// with the sink buried 1–4 levels below the scan root, scanned linked
// (scanDependencyTree) vs isolated (root package only — what per-package
// batch scanning sees). The detection delta is the payoff of the linker
// and is asserted: the linked scan must find every buried sink, the
// isolated scan must find none of them.
//
// An async section (docs/ASYNC.md) does the same for the async lowering:
// the promise-carried workload shapes scanned with lowering on vs off.
// The asserted detection delta — every promise-carried sink found only
// with lowering — plus async prune neutrality land in BENCH_pruning.json.
//
// Detection neutrality is asserted inline: any corpus where the pruned
// and unpruned report multisets differ (including the linked tree and
// async scans) fails the binary.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "scanner/Scanner.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "workload/DepTrees.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace gjs;
using namespace gjs::bench;

namespace {

struct Corpus {
  std::string Name;
  std::vector<std::vector<scanner::SourceFile>> Packages;
};

std::vector<scanner::SourceFile> loadFile(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return {{P.filename().string(), SS.str()}};
}

/// A call chain of Depth helper functions; the innermost either reaches
/// a command-injection sink or is pure.
std::vector<scanner::SourceFile> deepChain(int Depth, bool Vulnerable) {
  std::string S = "var cp = require('child_process');\n";
  S += Vulnerable ? "function f0(a) { cp.exec(a); return a; }\n"
                  : "function f0(a) { var x = a + 1; return x; }\n";
  for (int I = 1; I < Depth; ++I)
    S += "function f" + std::to_string(I) + "(a) { return f" +
         std::to_string(I - 1) + "(a); }\n";
  S += "module.exports = f" + std::to_string(Depth - 1) + ";\n";
  return {{Vulnerable ? "chain_vuln.js" : "chain_benign.js", std::move(S)}};
}

struct Measured {
  std::vector<double> Seconds;
  size_t Reports = 0;
  size_t PrunedQueries = 0;
  size_t SkippedImports = 0;
};

Measured scanAll(const Corpus &C, bool Prune) {
  Measured M;
  scanner::ScanOptions O;
  O.Prune = Prune;
  scanner::Scanner S(O);
  for (const auto &Files : C.Packages) {
    Timer T;
    scanner::ScanResult R = S.scanPackage(Files);
    M.Seconds.push_back(T.elapsedSeconds());
    M.Reports += R.Reports.size();
    M.PrunedQueries += R.PrunedQueries;
    M.SkippedImports += R.PruneSkippedImport ? 1 : 0;
  }
  return M;
}

double sum(const std::vector<double> &V) {
  double S = 0;
  for (double X : V)
    S += X;
  return S;
}

} // namespace

int main() {
  printHeader("Summary-based query pruning: cost and payoff",
              "docs/CALLGRAPH.md");

  std::vector<Corpus> Corpora;

  // A: the checked-in examples (when run from anywhere inside the repo).
  Corpus Examples{"examples", {}};
  std::error_code EC;
  for (const auto &E :
       std::filesystem::directory_iterator(GJS_EXAMPLES_JS_DIR, EC))
    if (E.path().extension() == ".js")
      Examples.Packages.push_back(loadFile(E.path()));
  if (!Examples.Packages.empty())
    Corpora.push_back(std::move(Examples));

  // B: benign-heavy mix — per 10 packages: 6 benign, 2 with safe sinks,
  // 1 dynamic-require, 1 genuinely vulnerable.
  Corpus Mix{"benign_heavy", {}};
  workload::PackageGenerator Gen(2024);
  for (size_t I = 0; I < scaled(40); ++I) {
    workload::Package P;
    switch (I % 10) {
    case 6:
    case 7:
      P = Gen.benignWithSafeSinks(40);
      break;
    case 8:
      P = Gen.dynamicRequire(40);
      break;
    case 9:
      P = Gen.vulnerable(queries::VulnType::CommandInjection,
                         workload::Complexity::Wrapped,
                         workload::VariantKind::Plain);
      break;
    default:
      P = Gen.benign(40);
    }
    Mix.Packages.push_back(std::move(P.Files));
  }
  Corpora.push_back(std::move(Mix));

  // C: deep call chains, benign and vulnerable twins.
  Corpus Chains{"deep_chains", {}};
  for (int Depth : {20, 60, 120}) {
    Chains.Packages.push_back(deepChain(Depth, /*Vulnerable=*/false));
    Chains.Packages.push_back(deepChain(Depth, /*Vulnerable=*/true));
  }
  Corpora.push_back(std::move(Chains));

  Report Rep("pruning");
  TablePrinter Table({"corpus", "#pkg", "pruned", "full", "speedup",
                      "q skipped", "imports skipped"});
  bool Neutral = true;

  for (const Corpus &C : Corpora) {
    Measured With = scanAll(C, /*Prune=*/true);
    Measured Without = scanAll(C, /*Prune=*/false);
    if (With.Reports != Without.Reports) {
      std::fprintf(stderr,
                   "FAIL: %s: pruning changed the report count (%zu vs %zu)\n",
                   C.Name.c_str(), With.Reports, Without.Reports);
      Neutral = false;
    }
    double TW = sum(With.Seconds), TO = sum(Without.Seconds);
    Rep.series(C.Name + ".pruned_seconds", With.Seconds);
    Rep.series(C.Name + ".full_seconds", Without.Seconds);
    Rep.scalar(C.Name + ".speedup", TW > 0 ? TO / TW : 0);
    Rep.scalar(C.Name + ".queries_skipped", double(With.PrunedQueries));
    Rep.scalar(C.Name + ".imports_skipped", double(With.SkippedImports));
    Rep.scalar(C.Name + ".reports", double(With.Reports));
    Table.addRow({C.Name, std::to_string(C.Packages.size()),
                  TablePrinter::fmt(TW * 1000.0, 2) + "ms",
                  TablePrinter::fmt(TO * 1000.0, 2) + "ms",
                  TablePrinter::fmtRatio(TW > 0 ? TO / TW : 0),
                  std::to_string(With.PrunedQueries),
                  std::to_string(With.SkippedImports)});
  }
  std::printf("%s\n", Table.str().c_str());

  // Cross-package: linked dependency-tree scans vs the isolated baseline.
  workload::DepTreeGenerator TreeGen(77);
  std::vector<workload::DepTree> Trees;
  for (unsigned Depth = 1; Depth <= 4; ++Depth) {
    Trees.push_back(TreeGen.chain(queries::VulnType::CommandInjection, Depth,
                                  /*Vulnerable=*/true));
    Trees.push_back(TreeGen.chain(queries::VulnType::CodeInjection, Depth,
                                  /*Vulnerable=*/false));
  }
  Trees.push_back(
      TreeGen.cyclic(queries::VulnType::CommandInjection, /*Vulnerable=*/true));

  TablePrinter XTable(
      {"tree", "depth", "linked", "isolated", "linked hits", "isolated hits"});
  std::vector<double> LinkedSecs, IsolatedSecs;
  size_t LinkedHits = 0, IsolatedHits = 0, Buried = 0, Missed = 0;
  bool DeltaOk = true;

  for (const workload::DepTree &T : Trees) {
    scanner::Scanner Linked{scanner::ScanOptions{}};
    Timer TL;
    scanner::ScanResult RL = Linked.scanDependencyTree(T.Graph);
    LinkedSecs.push_back(TL.elapsedSeconds());

    scanner::ScanOptions NP;
    NP.Prune = false;
    scanner::Scanner Unpruned(NP);
    scanner::ScanResult RU = Unpruned.scanDependencyTree(T.Graph);
    if (RL.Reports.size() != RU.Reports.size()) {
      std::fprintf(stderr,
                   "FAIL: linked tree scan: pruning changed the report "
                   "count (%zu vs %zu)\n",
                   RL.Reports.size(), RU.Reports.size());
      Neutral = false;
    }

    std::vector<scanner::SourceFile> RootFiles;
    for (const analysis::PackageFile &F :
         T.Graph.packages()[T.Graph.rootIndex()].Files)
      RootFiles.push_back({F.Path, F.Contents});
    scanner::Scanner Isolated{scanner::ScanOptions{}};
    Timer TI;
    scanner::ScanResult RI = Isolated.scanPackage(RootFiles);
    IsolatedSecs.push_back(TI.elapsedSeconds());

    LinkedHits += RL.Reports.size();
    IsolatedHits += RI.Reports.size();
    if (T.Vulnerable) {
      ++Buried;
      if (RL.Reports.empty()) {
        std::fprintf(stderr,
                     "FAIL: linked scan missed the depth-%u buried sink\n",
                     T.Depth);
        DeltaOk = false;
      }
      if (RI.Reports.empty())
        ++Missed;
      else {
        std::fprintf(stderr,
                     "FAIL: isolated root scan saw a sink %u levels deep\n",
                     T.Depth);
        DeltaOk = false;
      }
    }
    XTable.addRow({(T.Cyclic ? "cyclic" : T.Vulnerable ? "vuln" : "benign"),
                   std::to_string(T.Depth),
                   TablePrinter::fmt(LinkedSecs.back() * 1000.0, 2) + "ms",
                   TablePrinter::fmt(IsolatedSecs.back() * 1000.0, 2) + "ms",
                   std::to_string(RL.Reports.size()),
                   std::to_string(RI.Reports.size())});
  }
  std::printf("%s\n", XTable.str().c_str());
  std::printf("cross-package detection delta: %zu/%zu buried sinks found "
              "only by the linked scan\n\n",
              Missed, Buried);

  Rep.series("crosspkg.linked_seconds", LinkedSecs);
  Rep.series("crosspkg.isolated_seconds", IsolatedSecs);
  Rep.scalar("crosspkg.trees", double(Trees.size()));
  Rep.scalar("crosspkg.linked_reports", double(LinkedHits));
  Rep.scalar("crosspkg.isolated_reports", double(IsolatedHits));
  Rep.scalar("crosspkg.detection_delta", double(LinkedHits - IsolatedHits));
  Rep.scalar("crosspkg.delta_ok", DeltaOk ? 1 : 0);

  // Async: the promise-carried workload shapes (taint crossing an await,
  // a .then() chain, or a promise executor) scanned with the lowering on
  // vs off. The detection delta is the lowering's payoff; pruning must
  // stay neutral over the lowered corpus.
  workload::PackageGenerator AsyncGen(4242);
  const workload::AsyncForm AsyncForms[] = {workload::AsyncForm::Await,
                                            workload::AsyncForm::ThenChain,
                                            workload::AsyncForm::PromiseExecutor};
  TablePrinter ATable({"form", "lowered", "no-lower", "lowered hits",
                       "no-lower hits"});
  std::vector<double> LoweredSecs, UnloweredSecs;
  size_t LoweredHits = 0, UnloweredHits = 0;
  bool AsyncOk = true;

  for (workload::AsyncForm F : AsyncForms) {
    workload::Package VP = AsyncGen.asyncVulnerable(F, 20);
    workload::Package BP = AsyncGen.asyncBenign(F, 20);

    scanner::Scanner Lowered{scanner::ScanOptions{}};
    Timer TA;
    scanner::ScanResult RV = Lowered.scanPackage(VP.Files);
    scanner::ScanResult RB = Lowered.scanPackage(BP.Files);
    LoweredSecs.push_back(TA.elapsedSeconds());

    scanner::ScanOptions NoLower;
    NoLower.AsyncLower = false;
    scanner::Scanner Unlowered(NoLower);
    Timer TU;
    scanner::ScanResult UV = Unlowered.scanPackage(VP.Files);
    scanner::ScanResult UB = Unlowered.scanPackage(BP.Files);
    UnloweredSecs.push_back(TU.elapsedSeconds());

    if (RV.Reports.empty()) {
      std::fprintf(stderr, "FAIL: lowered scan missed the %s flow\n",
                   workload::asyncFormName(F));
      AsyncOk = false;
    }
    if (!UV.Reports.empty()) {
      std::fprintf(stderr,
                   "FAIL: %s flow detected without lowering — the delta "
                   "is not the lowering's doing\n",
                   workload::asyncFormName(F));
      AsyncOk = false;
    }
    if (!RB.Reports.empty() || !UB.Reports.empty()) {
      std::fprintf(stderr, "FAIL: benign %s twin reported\n",
                   workload::asyncFormName(F));
      AsyncOk = false;
    }

    // Prune neutrality over the lowered async packages.
    scanner::ScanOptions NP;
    NP.Prune = false;
    scanner::Scanner Unpruned(NP);
    if (Unpruned.scanPackage(VP.Files).Reports.size() != RV.Reports.size() ||
        Unpruned.scanPackage(BP.Files).Reports.size() != RB.Reports.size()) {
      std::fprintf(stderr,
                   "FAIL: pruning changed reports on the async %s corpus\n",
                   workload::asyncFormName(F));
      Neutral = false;
    }

    LoweredHits += RV.Reports.size();
    UnloweredHits += UV.Reports.size();
    ATable.addRow({workload::asyncFormName(F),
                   TablePrinter::fmt(LoweredSecs.back() * 1000.0, 2) + "ms",
                   TablePrinter::fmt(UnloweredSecs.back() * 1000.0, 2) + "ms",
                   std::to_string(RV.Reports.size()),
                   std::to_string(UV.Reports.size())});
  }
  std::printf("%s\n", ATable.str().c_str());
  std::printf("async detection delta: %zu/%zu promise-carried sinks found "
              "only with the lowering\n\n",
              LoweredHits - UnloweredHits, size_t(3));

  Rep.series("async.lowered_seconds", LoweredSecs);
  Rep.series("async.unlowered_seconds", UnloweredSecs);
  Rep.scalar("async.lowered_reports", double(LoweredHits));
  Rep.scalar("async.unlowered_reports", double(UnloweredHits));
  Rep.scalar("async.detection_delta", double(LoweredHits - UnloweredHits));
  Rep.scalar("async.delta_ok", AsyncOk ? 1 : 0);

  Rep.scalar("neutral", Neutral ? 1 : 0);
  Rep.write();
  return Neutral && DeltaOk && AsyncOk ? 0 : 1;
}
