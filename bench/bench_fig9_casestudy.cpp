//===- bench/bench_fig9_casestudy.cpp - Figures 8 & 9 ---------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Reproduces the §5.5 case study: the set-value v3.0.0 prototype pollution
// (CVE-2021-23440, Figure 8) and its loop-fixpoint MDG (Figure 9). The
// bench prints the MDG edge list grouped by kind (the Figure 9 structure),
// demonstrates that the graph is loop-stable (more loop iterations do not
// add nodes), and contrasts the two tools' outcomes and costs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/MDGBuilder.h"
#include "core/Normalizer.h"
#include "odgen/ODGenAnalyzer.h"
#include "queries/QueryRunner.h"
#include "support/Timer.h"

#include <cstdio>

using namespace gjs;

static const char *SetValue =
    "function set_value(target, prop, value) {\n"
    "  const path = prop.split('.');\n"
    "  const len = path.length;\n"
    "  var obj = target;\n"
    "  for (var i = 0; i < len; i++) {\n"
    "    const p = path[i];\n"
    "    if (i === len - 1) {\n"
    "      obj[p] = value;\n"
    "    }\n"
    "    obj = obj[p];\n"
    "  }\n"
    "  return target;\n"
    "}\n"
    "module.exports = set_value;\n";

int main() {
  std::printf("\n================================================================\n");
  std::printf("Case study: set-value v3.0.0 / CVE-2021-23440\n"
              "(reproduces paper §5.5, Figures 8 and 9)\n");
  std::printf("================================================================\n\n");

  DiagnosticEngine Diags;
  auto Program = core::normalizeJS(SetValue, Diags);
  if (Diags.hasErrors())
    return 1;

  Timer T;
  analysis::BuildResult Build = analysis::buildMDG(*Program);
  double BuildSeconds = T.elapsedSeconds();

  // Figure 9's structure: the edges by kind.
  size_t ByKind[5] = {0, 0, 0, 0, 0};
  for (mdg::NodeId N : Build.Graph.nodeIds())
    for (const mdg::Edge &E : Build.Graph.out(N))
      ++ByKind[static_cast<int>(E.Kind)];
  std::printf("MDG: %zu nodes, %zu edges in %.3fms\n",
              Build.Graph.numNodes(), Build.Graph.numEdges(),
              BuildSeconds * 1000);
  std::printf("  D: %zu   P(p): %zu   P(*): %zu   V(p): %zu   V(*): %zu\n\n",
              ByKind[0], ByKind[1], ByKind[2], ByKind[3], ByKind[4]);

  // Loop-stability: the fixpoint cap does not change the result — the
  // cyclic representation converges (the alternative would be a graph
  // that grows with every extra permitted iteration).
  std::printf("fixpoint stability (MaxFixpointIters -> nodes/edges):\n");
  for (unsigned Iters : {2u, 4u, 16u, 64u}) {
    analysis::BuilderOptions BO;
    BO.MaxFixpointIters = Iters;
    analysis::BuildResult R = analysis::buildMDG(*Program, BO);
    std::printf("  %3u iters: %zu nodes, %zu edges\n", Iters,
                R.Graph.numNodes(), R.Graph.numEdges());
  }

  // Detection: Graph.js finds the pollution pattern.
  queries::GraphDBRunner Runner(Build);
  T.reset();
  std::vector<queries::VulnReport> Reports =
      Runner.detect(queries::SinkConfig::defaults());
  double QuerySeconds = T.elapsedSeconds();
  std::printf("\nGraph.js query phase: %.3fms, findings:\n",
              QuerySeconds * 1000);
  for (const queries::VulnReport &R : Reports)
    std::printf("  %s\n", R.str().c_str());

  // The baseline: state forking on the dynamic property chain.
  std::printf("\nODGen baseline under growing work budgets:\n");
  for (uint64_t Budget : {5000ull, 50000ull, 500000ull, 5000000ull}) {
    odgen::ODGenOptions OO;
    OO.WorkBudget = Budget;
    odgen::ODGenResult R = odgen::ODGenAnalyzer(OO).analyze(SetValue);
    std::printf("  budget %8llu: %s (graph: %zu nodes, work: %llu)\n",
                static_cast<unsigned long long>(Budget),
                R.TimedOut ? "TIMEOUT" : "completed", R.NumNodes,
                static_cast<unsigned long long>(R.Work));
  }
  std::printf("\npaper: \"Graph.js's version edges and summary "
              "fixed-pointed representation for loops enable a speedy "
              "detection, whereas ODGen times out.\"\n");

  bench::Report Rep("fig9_casestudy");
  Rep.scalar("mdg_nodes", double(Build.Graph.numNodes()));
  Rep.scalar("mdg_edges", double(Build.Graph.numEdges()));
  Rep.scalar("build_ms", BuildSeconds * 1000);
  Rep.scalar("query_ms", QuerySeconds * 1000);
  Rep.scalar("findings", double(Reports.size()));
  Rep.write();
  return 0;
}
