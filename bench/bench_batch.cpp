//===- bench/bench_batch.cpp - Multi-process batch scanning throughput ----==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Measures what the supervised worker pool (docs/ROBUSTNESS.md) buys and
// costs: the same generated workload corpus scanned
//
//   - in-process (`graphjs batch`, jobs=1 — the baseline), and
//   - through the fork-per-package pool at jobs=2 and jobs=4.
//
// Reported per mode: wall-clock, summed per-package CPU, wall-clock
// throughput, and speedup over in-process. Detection neutrality is
// asserted inline: any mode whose per-package verdicts or report counts
// differ from the in-process run fails the binary — process isolation
// must be free in findings, only paid in fork/merge overhead.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "driver/BatchDriver.h"
#include "driver/ProcessPool.h"
#include "support/TablePrinter.h"

using namespace gjs;
using namespace gjs::bench;

namespace {

struct Mode {
  std::string Name;
  unsigned Jobs; // 0 = in-process BatchDriver.
};

struct Measured {
  driver::BatchSummary Summary;
  std::vector<double> PerPackageSeconds;
};

Measured runMode(const Mode &M, const std::vector<driver::BatchInput> &Inputs) {
  Measured Out;
  driver::BatchOptions BO;
  if (M.Jobs == 0) {
    Out.Summary = driver::BatchDriver(BO).run(Inputs);
  } else {
    driver::PoolOptions PO;
    PO.Batch = BO;
    PO.Jobs = M.Jobs;
    Out.Summary = driver::ProcessPool(PO).run(Inputs);
  }
  for (const driver::BatchOutcome &O : Out.Summary.Outcomes)
    Out.PerPackageSeconds.push_back(O.Seconds);
  return Out;
}

} // namespace

int main() {
  printHeader("Multi-process batch scanning: pool overhead and speedup",
              "docs/ROBUSTNESS.md");

  // A benign-heavy npm-like mix with enough filler that a package scan is
  // work worth shipping to a worker process.
  std::vector<driver::BatchInput> Inputs;
  workload::PackageGenerator Gen(2024);
  for (size_t I = 0; I < scaled(32); ++I) {
    workload::Package P =
        I % 4 ? Gen.benign(200)
              : Gen.vulnerable(queries::VulnType::CommandInjection,
                               workload::Complexity::Wrapped,
                               workload::VariantKind::Plain, 200);
    Inputs.push_back({"pkg" + std::to_string(I), std::move(P.Files)});
  }

  const std::vector<Mode> Modes = {
      {"inproc_jobs1", 0}, {"pool_jobs2", 2}, {"pool_jobs4", 4}};

  Report Rep("batch");
  TablePrinter Table(
      {"mode", "#pkg", "wall", "cpu", "pkg/s", "speedup", "reports"});
  bool Neutral = true;
  double BaselineWall = 0;
  size_t BaselineReports = 0;
  std::vector<driver::BatchStatus> BaselineStatus;

  for (const Mode &M : Modes) {
    Measured R = runMode(M, Inputs);
    const driver::BatchSummary &S = R.Summary;
    double Wall = S.WallSeconds > 0 ? S.WallSeconds : S.TotalSeconds;

    if (M.Jobs == 0) {
      BaselineWall = Wall;
      BaselineReports = S.TotalReports;
      for (const driver::BatchOutcome &O : S.Outcomes)
        BaselineStatus.push_back(O.Status);
    } else {
      // Detection neutrality: same verdict per package, same report total.
      if (S.TotalReports != BaselineReports) {
        std::fprintf(stderr, "FAIL: %s: report total %zu vs in-process %zu\n",
                     M.Name.c_str(), S.TotalReports, BaselineReports);
        Neutral = false;
      }
      for (size_t I = 0; I < S.Outcomes.size(); ++I)
        if (S.Outcomes[I].Status != BaselineStatus[I]) {
          std::fprintf(stderr, "FAIL: %s: %s verdict differs\n",
                       M.Name.c_str(), S.Outcomes[I].Package.c_str());
          Neutral = false;
        }
    }

    double Speedup = Wall > 0 ? BaselineWall / Wall : 0;
    Rep.series(M.Name + ".package_seconds", R.PerPackageSeconds);
    Rep.scalar(M.Name + ".wall_seconds", Wall);
    Rep.scalar(M.Name + ".cpu_seconds", S.TotalSeconds);
    Rep.scalar(M.Name + ".packages_per_second",
               Wall > 0 ? double(S.Scanned) / Wall : 0);
    Rep.scalar(M.Name + ".speedup", Speedup);
    Rep.scalar(M.Name + ".reports", double(S.TotalReports));
    Table.addRow({M.Name, std::to_string(S.Scanned),
                  TablePrinter::fmt(Wall * 1000.0, 2) + "ms",
                  TablePrinter::fmt(S.TotalSeconds * 1000.0, 2) + "ms",
                  TablePrinter::fmt(Wall > 0 ? double(S.Scanned) / Wall : 0, 2),
                  TablePrinter::fmtRatio(Speedup),
                  std::to_string(S.TotalReports)});
  }

  std::printf("%s\n", Table.str().c_str());
  Rep.scalar("neutral", Neutral ? 1 : 0);
  Rep.write();
  return Neutral ? 0 : 1;
}
