//===- bench/bench_batch.cpp - Multi-process batch scanning throughput ----==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Measures what the supervised worker pool (docs/ROBUSTNESS.md) buys and
// costs: the same generated workload corpus scanned
//
//   - in-process (`graphjs batch`, jobs=1 — the baseline),
//   - through the fork-per-package pool at jobs=1/2/4, and
//   - through the persistent worker pool (--persistent) at jobs=1/2/4,
//     where each worker drains a pipe-fed job queue and the fork cost is
//     paid per worker, not per package.
//
// Reported per mode: best-of-N wall-clock (N runs per mode; the minimum
// is the least-disturbed run on a shared host), summed per-package CPU,
// wall-clock throughput, speedup over in-process, and — for persistent
// modes — speedup over the fork-per-package pool at the same job count,
// which is the ratio the persistent design actually controls and the one
// that holds regardless of host core count. Speedup over *in-process*
// additionally needs real hardware parallelism: on a 1-core host every
// multi-process mode is capped at ~1.0x by physics (same total CPU, plus
// fork and IPC), so the JSON records host_cores alongside the numbers.
//
// Detection neutrality is asserted inline on every run: any mode whose
// per-package verdicts or report counts differ from the in-process run
// fails the binary — process isolation must be free in findings, only
// paid in fork/merge overhead.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "driver/BatchDriver.h"
#include "driver/ProcessPool.h"
#include "driver/WorkLedger.h"
#include "obs/Histogram.h"
#include "support/Subprocess.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <filesystem>
#include <fstream>
#include <map>

#include <unistd.h>

using namespace gjs;
using namespace gjs::bench;

namespace {

struct Mode {
  std::string Name;
  unsigned Jobs; // 0 = in-process BatchDriver.
  bool Persistent = false;
};

struct Measured {
  driver::BatchSummary Summary;
  std::vector<double> PerPackageSeconds;
};

Measured runMode(const Mode &M, const std::vector<driver::BatchInput> &Inputs) {
  Measured Out;
  driver::BatchOptions BO;
  if (M.Jobs == 0) {
    Out.Summary = driver::BatchDriver(BO).run(Inputs);
  } else {
    driver::PoolOptions PO;
    PO.Batch = BO;
    PO.Jobs = M.Jobs;
    PO.Persistent = M.Persistent;
    Out.Summary = driver::ProcessPool(PO).run(Inputs);
  }
  for (const driver::BatchOutcome &O : Out.Summary.Outcomes)
    Out.PerPackageSeconds.push_back(O.Seconds);
  return Out;
}

} // namespace

int main() {
  printHeader("Multi-process batch scanning: pool overhead and speedup",
              "docs/ROBUSTNESS.md");

  // A benign-heavy npm-like mix of *small* packages — the regime the
  // persistent pool exists for: scans of a few milliseconds, where a
  // per-package fork is a large fraction of the work it ships.
  std::vector<driver::BatchInput> Inputs;
  workload::PackageGenerator Gen(2024);
  for (size_t I = 0; I < scaled(32); ++I) {
    workload::Package P =
        I % 4 ? Gen.benign(40)
              : Gen.vulnerable(queries::VulnType::CommandInjection,
                               workload::Complexity::Wrapped,
                               workload::VariantKind::Plain, 40);
    Inputs.push_back({"pkg" + std::to_string(I), std::move(P.Files)});
  }

  const std::vector<Mode> Modes = {
      {"inproc_jobs1", 0},          {"pool_jobs1", 1},
      {"pool_jobs2", 2},            {"pool_jobs4", 4},
      {"persistent_jobs1", 1, true}, {"persistent_jobs2", 2, true},
      {"persistent_jobs4", 4, true}};

  Report Rep("batch");
  TablePrinter Table({"mode", "#pkg", "wall", "cpu", "pkg/s", "speedup",
                      "vs_pool", "p50", "p95", "p99", "reports"});
  bool Neutral = true;
  double BaselineWall = 0;
  size_t BaselineReports = 0;
  std::vector<driver::BatchStatus> BaselineStatus;
  // Fork-per-package wall at the same job count, for the persistent-mode
  // "what did residency buy" ratio.
  std::map<unsigned, double> PoolWallByJobs;

  const int Repeats = 3;
  std::map<std::string, double> SpeedupByMode;
  for (const Mode &M : Modes) {
    Measured R;
    double Wall = 0;
    // Per-package scan latency distribution over every repeat of this
    // mode, from the scan.latency_us histogram — recorded in-process by
    // the driver, merged from worker telemetry deltas by the pools.
    obs::HistogramSnapshotMap HistBefore = obs::snapshotHistograms();
    for (int It = 0; It < Repeats; ++It) {
      Measured Run = runMode(M, Inputs);
      const driver::BatchSummary &S = Run.Summary;
      double W = S.WallSeconds > 0 ? S.WallSeconds : S.TotalSeconds;

      // Detection neutrality is checked on every run, not just the kept
      // one: a verdict that flickers under load is exactly the bug the
      // assertion exists to catch.
      if (M.Jobs == 0 && It == 0) {
        BaselineReports = S.TotalReports;
        for (const driver::BatchOutcome &O : S.Outcomes)
          BaselineStatus.push_back(O.Status);
      } else {
        if (S.TotalReports != BaselineReports) {
          std::fprintf(stderr, "FAIL: %s: report total %zu vs in-process %zu\n",
                       M.Name.c_str(), S.TotalReports, BaselineReports);
          Neutral = false;
        }
        for (size_t I = 0; I < S.Outcomes.size(); ++I)
          if (S.Outcomes[I].Status != BaselineStatus[I]) {
            std::fprintf(stderr, "FAIL: %s: %s verdict differs\n",
                         M.Name.c_str(), S.Outcomes[I].Package.c_str());
            Neutral = false;
          }
      }

      if (It == 0 || W < Wall) {
        Wall = W;
        R = std::move(Run);
      }
    }
    const driver::BatchSummary &S = R.Summary;

    obs::HistogramSnapshotMap HistDelta =
        obs::histogramDelta(HistBefore, obs::snapshotHistograms());
    obs::HistogramSnapshot Lat;
    if (HistDelta.count("scan.latency_us"))
      Lat = HistDelta.at("scan.latency_us");
    double P50Ms = Lat.percentile(0.50) / 1000.0;
    double P95Ms = Lat.percentile(0.95) / 1000.0;
    double P99Ms = Lat.percentile(0.99) / 1000.0;

    if (M.Jobs == 0)
      BaselineWall = Wall;
    else if (!M.Persistent)
      PoolWallByJobs[M.Jobs] = Wall;

    double Speedup = Wall > 0 ? BaselineWall / Wall : 0;
    SpeedupByMode[M.Name] = Speedup;
    double VsPool = 0;
    if (M.Persistent && PoolWallByJobs.count(M.Jobs) && Wall > 0)
      VsPool = PoolWallByJobs[M.Jobs] / Wall;
    Rep.series(M.Name + ".package_seconds", R.PerPackageSeconds);
    Rep.scalar(M.Name + ".wall_seconds", Wall);
    Rep.scalar(M.Name + ".cpu_seconds", S.TotalSeconds);
    Rep.scalar(M.Name + ".packages_per_second",
               Wall > 0 ? double(S.Scanned) / Wall : 0);
    Rep.scalar(M.Name + ".speedup", Speedup);
    if (VsPool > 0)
      Rep.scalar(M.Name + ".speedup_vs_pool", VsPool);
    Rep.scalar(M.Name + ".scan_p50_ms", P50Ms);
    Rep.scalar(M.Name + ".scan_p95_ms", P95Ms);
    Rep.scalar(M.Name + ".scan_p99_ms", P99Ms);
    Rep.scalar(M.Name + ".scan_hist_samples", double(Lat.count()));
    Rep.scalar(M.Name + ".reports", double(S.TotalReports));
    Table.addRow({M.Name, std::to_string(S.Scanned),
                  TablePrinter::fmt(Wall * 1000.0, 2) + "ms",
                  TablePrinter::fmt(S.TotalSeconds * 1000.0, 2) + "ms",
                  TablePrinter::fmt(Wall > 0 ? double(S.Scanned) / Wall : 0, 2),
                  TablePrinter::fmtRatio(Speedup),
                  VsPool > 0 ? TablePrinter::fmtRatio(VsPool) : "-",
                  TablePrinter::fmt(P50Ms, 2) + "ms",
                  TablePrinter::fmt(P95Ms, 2) + "ms",
                  TablePrinter::fmt(P99Ms, 2) + "ms",
                  std::to_string(S.TotalReports)});
  }

  // Distributed ledger modes: the same corpus drained through the shared
  // on-disk work ledger (docs/ROBUSTNESS.md, "Distributed draining") by
  // one supervisor, then by two racing supervisors — what the
  // crash-safety machinery (O_EXCL claims, heartbeats, CRC-framed shard
  // journals, merge) costs when nothing crashes, and what a second
  // drainer buys.
  auto runLedger = [&](unsigned Supervisors) {
    struct {
      double Wall = 0;
      size_t Claims = 0, Steals = 0, Reports = 0;
      bool Neutral = true;
    } Out;
    std::string Dir = "/tmp/gjs_bench_ledger_" + std::to_string(::getpid()) +
                      "_" + std::to_string(Supervisors);
    std::filesystem::remove_all(Dir);
    driver::SharedBatchOptions SO;
    SO.Ledger.Dir = Dir;
    SO.Ledger.ShardSize = 4;
    SO.Ledger.SupervisorId = "bench-sup0";
    SO.Batch.Quiet = true;
    Timer T;
    Subprocess Second;
    if (Supervisors > 1) {
      driver::SharedBatchOptions CO = SO;
      CO.Ledger.SupervisorId = "bench-sup1";
      Subprocess::forkChild(
          [&CO, &Inputs] {
            return driver::runSharedBatch(CO, Inputs).Summary.Failed ? 1 : 0;
          },
          Second);
    }
    driver::SharedBatchResult R = driver::runSharedBatch(SO, Inputs);
    if (Second.valid())
      Second.wait();
    Out.Wall = T.elapsedSeconds();
    Out.Claims = R.Summary.LedgerClaims;
    Out.Steals = R.Summary.LedgerSteals;
    // Detection neutrality straight off the merged corpus journal: same
    // per-package verdicts and report total as the in-process baseline.
    std::ifstream In(Dir + "/corpus.jsonl");
    std::string Line;
    size_t Idx = 0;
    while (std::getline(In, Line)) {
      driver::BatchOutcome O;
      if (!driver::BatchDriver::parseJournalLine(Line, O)) {
        Out.Neutral = false;
        continue;
      }
      Out.Reports += O.Result.Reports.size();
      if (Idx >= BaselineStatus.size() || O.Status != BaselineStatus[Idx])
        Out.Neutral = false;
      ++Idx;
    }
    Out.Neutral &= Idx == Inputs.size() && Out.Reports == BaselineReports;
    std::filesystem::remove_all(Dir);
    return Out;
  };
  for (unsigned Supervisors : {1u, 2u}) {
    auto L = runLedger(Supervisors);
    Neutral &= L.Neutral;
    if (!L.Neutral)
      std::fprintf(stderr, "FAIL: ledger_%usup: merged corpus differs from "
                           "in-process baseline\n",
                   Supervisors);
    std::string Name = "ledger_" + std::to_string(Supervisors) + "sup";
    double Speedup = L.Wall > 0 ? BaselineWall / L.Wall : 0;
    Rep.scalar(Name + ".wall_seconds", L.Wall);
    Rep.scalar(Name + ".packages_per_second",
               L.Wall > 0 ? double(Inputs.size()) / L.Wall : 0);
    Rep.scalar(Name + ".speedup", Speedup);
    Rep.scalar(Name + ".supervisors", double(Supervisors));
    Rep.scalar(Name + ".claims", double(L.Claims));
    Rep.scalar(Name + ".steals", double(L.Steals));
    Rep.scalar(Name + ".reports", double(L.Reports));
    Table.addRow({Name, std::to_string(Inputs.size()),
                  TablePrinter::fmt(L.Wall * 1000.0, 2) + "ms", "-",
                  TablePrinter::fmt(
                      L.Wall > 0 ? double(Inputs.size()) / L.Wall : 0, 2),
                  TablePrinter::fmtRatio(Speedup), "-", "-", "-", "-",
                  std::to_string(L.Reports)});
  }

  std::printf("%s\n", Table.str().c_str());
  long Cores = ::sysconf(_SC_NPROCESSORS_ONLN);
  std::printf("host cores: %ld (speedup over in-process is capped near 1.0x "
              "without hardware parallelism)\n\n",
              Cores);

  // Speedup sanity assertions — gated on real hardware parallelism: a
  // 1-core host caps every multi-process mode near 1.0x by physics, so
  // asserting there would only measure the gate's absence. The floors are
  // deliberately loose (catastrophe detectors, not perf targets): a
  // healthy pool loses at most a constant factor to fork/IPC.
  bool SpeedupOk = true;
  if (Cores > 1) {
    auto Floor = [&](const char *ModeName, double Min) {
      if (SpeedupByMode.count(ModeName) && SpeedupByMode[ModeName] < Min) {
        std::fprintf(stderr, "FAIL: %s speedup %.2fx below floor %.2fx "
                             "(host_cores=%ld)\n",
                     ModeName, SpeedupByMode[ModeName], Min, Cores);
        SpeedupOk = false;
      }
    };
    Floor("pool_jobs4", 0.3);
    Floor("persistent_jobs4", 0.5);
  } else {
    std::printf("speedup assertions skipped: host_cores <= 1\n");
  }

  Rep.scalar("host_cores", double(Cores > 0 ? Cores : 1));
  Rep.scalar("repeats", double(Repeats));
  Rep.scalar("neutral", Neutral ? 1 : 0);
  Rep.scalar("speedup_asserted", Cores > 1 ? 1 : 0);
  Rep.write();
  return Neutral && SpeedupOk ? 0 : 1;
}
