//===- workload/Datasets.h - Reference dataset synthesis ---------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the three evaluation datasets with the paper's Table 3
/// distributions:
///
///   VulcaN   — 219 vulnerabilities: CWE-22:5, CWE-78:87, CWE-94:33,
///              CWE-1321:94
///   SecBench — 384 vulnerabilities: CWE-22:161, CWE-78:82, CWE-94:21,
///              CWE-1321:120
///   Collected— popular-package crawl stand-in: mostly benign, plus safe
///              sink users, dynamic-require loaders (the CWE-94 FP
///              driver), guarded decoys, and a small planted set of real
///              vulnerabilities (some never "reported" — the zero-days of
///              Table 5).
///
/// Complexity and variant mixes per CWE encode the paper's qualitative
/// findings: prototype-pollution packages skew towards loops/recursion
/// (ODGen's timeout class, §5.2/§5.5) and carry most of the
/// unsupported-feature variants (Graph.js's FN causes); taint-style
/// packages are mostly direct/wrapped flows.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_WORKLOAD_DATASETS_H
#define GJS_WORKLOAD_DATASETS_H

#include "workload/Packages.h"

#include <vector>

namespace gjs {
namespace workload {

/// Table 3 row: packages per CWE for one dataset.
struct DatasetCounts {
  size_t PathTraversal = 0;
  size_t CommandInjection = 0;
  size_t CodeInjection = 0;
  size_t PrototypePollution = 0;
  size_t total() const {
    return PathTraversal + CommandInjection + CodeInjection +
           PrototypePollution;
  }
};

constexpr DatasetCounts VulcaNCounts{5, 87, 33, 94};
constexpr DatasetCounts SecBenchCounts{161, 82, 21, 120};

/// The VulcaN-like dataset (219 annotated vulnerabilities).
std::vector<Package> makeVulcaN(uint64_t Seed);

/// The SecBench-like dataset (384 annotated vulnerabilities).
std::vector<Package> makeSecBench(uint64_t Seed);

/// Both reference datasets combined (the Table 4 ground truth).
std::vector<Package> makeGroundTruth(uint64_t Seed);

/// The Collected-like corpus of \p N popular packages.
std::vector<Package> makeCollected(uint64_t Seed, size_t N);

/// Generates one dataset with explicit per-CWE counts (scaled runs).
std::vector<Package> makeDataset(uint64_t Seed, const DatasetCounts &Counts);

} // namespace workload
} // namespace gjs

#endif // GJS_WORKLOAD_DATASETS_H
