//===- workload/Datasets.cpp - Reference dataset synthesis -----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/Datasets.h"

using namespace gjs;
using namespace gjs::workload;
using queries::VulnType;

namespace {

/// Per-CWE complexity and variant mixes (weights sum to 1). These encode
/// the code-pattern population the paper's findings rest on; see the file
/// header of Datasets.h.
struct Mix {
  // Complexity weights: Direct, Wrapped, Loop, Recursive, Deep.
  double Complexity[5];
  // Variant weights: Plain, ArgumentsBased, IndirectCall, ExtraSink,
  // Guarded, Sanitized.
  double Variant[6];
};

Mix mixFor(VulnType T) {
  switch (T) {
  case VulnType::PathTraversal:
    return {{0.45, 0.30, 0.15, 0.07, 0.03},
            {0.55, 0.02, 0.01, 0.12, 0.10, 0.20}};
  case VulnType::CommandInjection:
    return {{0.28, 0.30, 0.15, 0.10, 0.17},
            {0.40, 0.03, 0.02, 0.30, 0.06, 0.19}};
  case VulnType::CodeInjection:
    return {{0.20, 0.12, 0.10, 0.10, 0.48},
            {0.52, 0.06, 0.07, 0.15, 0.06, 0.14}};
  case VulnType::PrototypePollution:
    return {{0.14, 0.10, 0.28, 0.33, 0.15},
            {0.40, 0.13, 0.22, 0.13, 0.08, 0.04}};
  }
  return {{1, 0, 0, 0, 0}, {1, 0, 0, 0, 0, 0}};
}

template <typename E, size_t N>
E pickWeighted(RNG &R, const double (&Weights)[N]) {
  double X = R.unit();
  double Acc = 0;
  for (size_t I = 0; I < N; ++I) {
    Acc += Weights[I];
    if (X < Acc)
      return static_cast<E>(I);
  }
  return static_cast<E>(N - 1);
}

/// Filler size following the Table 7 LoC bucket distribution.
size_t pickFiller(RNG &R) {
  double X = R.unit();
  if (X < 0.35)
    return R.below(70);                   // < 100 LoC
  if (X < 0.75)
    return 80 + R.below(380);             // 100 - 500
  if (X < 0.92)
    return 480 + R.below(480);            // 500 - 1000
  return 980 + R.below(1400);             // > 1000
}

} // namespace

std::vector<Package> workload::makeDataset(uint64_t Seed,
                                           const DatasetCounts &Counts) {
  PackageGenerator Gen(Seed);
  RNG &R = Gen.rng();
  std::vector<Package> Out;
  Out.reserve(Counts.total());

  auto Generate = [&](VulnType T, size_t N) {
    Mix M = mixFor(T);
    for (size_t I = 0; I < N; ++I) {
      Complexity C = pickWeighted<Complexity>(R, M.Complexity);
      VariantKind V = pickWeighted<VariantKind>(R, M.Variant);
      Out.push_back(Gen.vulnerable(T, C, V, pickFiller(R)));
    }
  };

  Generate(VulnType::PathTraversal, Counts.PathTraversal);
  Generate(VulnType::CommandInjection, Counts.CommandInjection);
  Generate(VulnType::CodeInjection, Counts.CodeInjection);
  Generate(VulnType::PrototypePollution, Counts.PrototypePollution);
  return Out;
}

std::vector<Package> workload::makeVulcaN(uint64_t Seed) {
  return makeDataset(Seed ^ 0x56554C43, VulcaNCounts); // "VULC"
}

std::vector<Package> workload::makeSecBench(uint64_t Seed) {
  return makeDataset(Seed ^ 0x53454342, SecBenchCounts); // "SECB"
}

std::vector<Package> workload::makeGroundTruth(uint64_t Seed) {
  std::vector<Package> All = makeVulcaN(Seed);
  std::vector<Package> SB = makeSecBench(Seed);
  All.insert(All.end(), std::make_move_iterator(SB.begin()),
             std::make_move_iterator(SB.end()));
  return All;
}

std::vector<Package> workload::makeCollected(uint64_t Seed, size_t N) {
  PackageGenerator Gen(Seed ^ 0x434F4C4C); // "COLL"
  RNG &R = Gen.rng();
  std::vector<Package> Out;
  Out.reserve(N);

  static const VulnType Types[] = {
      VulnType::PathTraversal, VulnType::CommandInjection,
      VulnType::CodeInjection, VulnType::PrototypePollution};
  // Vulnerability-class weights for planted vulns, roughly matching the
  // Table 5 "Exploitable" column profile (command injection dominates).
  static const double TypeWeights[4] = {0.10, 0.55, 0.15, 0.20};

  for (size_t I = 0; I < N; ++I) {
    double X = R.unit();
    if (X < 0.72) {
      Out.push_back(Gen.benign(pickFiller(R)));
    } else if (X < 0.80) {
      Out.push_back(Gen.benignWithSafeSinks(pickFiller(R)));
    } else if (X < 0.86) {
      // Dynamic-require plugin loaders: the CWE-94 TFP driver (§5.3).
      Out.push_back(Gen.dynamicRequire(pickFiller(R)));
    } else if (X < 0.93) {
      // Guarded decoys on otherwise benign code: reported, unexploitable.
      VulnType T = pickWeighted<VulnType>(R, TypeWeights);
      Package P = Gen.vulnerable(T, Complexity::Direct, VariantKind::Guarded,
                                 pickFiller(R));
      // Strip the main annotated flow's annotation: in the wild nothing
      // here is a known CVE; the *main* flow stays exploitable though.
      P.ExtraRealLines.push_back(P.Annotations[0].SinkLine);
      P.Annotations.clear();
      P.PreviouslyReported = false;
      Out.push_back(std::move(P));
    } else {
      // Genuinely vulnerable packages; about half never reported before.
      VulnType T = pickWeighted<VulnType>(R, TypeWeights);
      Mix M = mixFor(T);
      Complexity C = pickWeighted<Complexity>(R, M.Complexity);
      Package P = Gen.vulnerable(T, C, VariantKind::Plain, pickFiller(R));
      P.PreviouslyReported = R.chance(0.5);
      Out.push_back(std::move(P));
    }
  }
  return Out;
}
