//===- workload/CodeWriter.h - Line-tracking JS emitter ----------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds JavaScript source line by line while tracking line numbers, so
/// the dataset generator can record exact sink-line annotations — the
/// ground truth the evaluation's TP matching compares reports against
/// (§5.2: "the vulnerability type and sink line number reported by the
/// tools match the dataset annotations").
///
//===----------------------------------------------------------------------===//

#ifndef GJS_WORKLOAD_CODEWRITER_H
#define GJS_WORKLOAD_CODEWRITER_H

#include <cstdint>
#include <string>

namespace gjs {
namespace workload {

/// Accumulates source text; line() returns the line number the next
/// emitted line will occupy (1-based).
class CodeWriter {
public:
  /// Emits one line of code and returns its line number.
  uint32_t emit(const std::string &Line) {
    Source += Line;
    Source += '\n';
    return CurrentLine++;
  }

  uint32_t line() const { return CurrentLine; }
  const std::string &str() const { return Source; }
  size_t loc() const { return static_cast<size_t>(CurrentLine) - 1; }

private:
  std::string Source;
  uint32_t CurrentLine = 1;
};

} // namespace workload
} // namespace gjs

#endif // GJS_WORKLOAD_CODEWRITER_H
