//===- workload/DepTrees.cpp - Synthetic dependency trees ------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/DepTrees.h"

#include "support/JSON.h"
#include "workload/CodeWriter.h"

#include <filesystem>
#include <fstream>

using namespace gjs;
using namespace gjs::workload;
using analysis::PackageFile;
using analysis::PackageGraph;
using analysis::PackageInfo;
using queries::VulnType;

namespace {

/// Emits the sink package's `process` entry: tainted first parameter into
/// the class's sink (vulnerable) or a constant-argument sink (benign).
/// Returns the sink line for vulnerable emissions, 0 otherwise.
uint32_t emitSinkModule(CodeWriter &W, VulnType Type, bool Vulnerable) {
  uint32_t Sink = 0;
  switch (Type) {
  case VulnType::CommandInjection:
    W.emit("var cp = require('child_process');");
    W.emit("function process(x, cb) {");
    if (Vulnerable) {
      W.emit("  var full = 'run ' + x;");
      Sink = W.emit("  cp.exec(full, cb);");
    } else {
      W.emit("  var n = x.length;");
      W.emit("  cp.exec('ls -la', cb);");
    }
    W.emit("}");
    break;
  case VulnType::CodeInjection:
    W.emit("function process(x, cb) {");
    if (Vulnerable) {
      W.emit("  var code = 'v = ' + x;");
      Sink = W.emit("  return eval(code);");
    } else {
      W.emit("  var n = x.length;");
      W.emit("  return eval('1 + 1');");
    }
    W.emit("}");
    break;
  case VulnType::PathTraversal:
    W.emit("var fs = require('fs');");
    W.emit("function process(x, cb) {");
    if (Vulnerable) {
      W.emit("  var p = './data/' + x;");
      Sink = W.emit("  fs.readFile(p, cb);");
    } else {
      W.emit("  var n = x.length;");
      W.emit("  fs.readFile('./data/fixed.txt', cb);");
    }
    W.emit("}");
    break;
  case VulnType::PrototypePollution:
    // The two-level write shape (set-value CVE-2021-23440): t[s.key] can
    // be Object.prototype when s.key is "__proto__".
    W.emit("function process(t, s) {");
    if (Vulnerable) {
      W.emit("  var child = t[s.key];");
      Sink = W.emit("  child[s.sub] = s.value;");
    } else {
      W.emit("  var child = t.fixed;");
      W.emit("  child.safe = s.value;");
    }
    W.emit("  return t;");
    W.emit("}");
    break;
  }
  W.emit("exports.process = process;");
  return Sink;
}

/// Emits a forwarding middle package: requires \p Next and passes its own
/// parameters one level down (lightly transformed for the taint classes,
/// so the flow is a real dataflow, not a syntactic alias).
std::string forwardingModule(VulnType Type, const std::string &Next) {
  CodeWriter W;
  W.emit("var d = require('" + Next + "');");
  if (Type == VulnType::PrototypePollution) {
    W.emit("function process(t, s) {");
    W.emit("  return d.process(t, s);");
    W.emit("}");
  } else {
    W.emit("function process(x, cb) {");
    W.emit("  var v = 'p' + x;");
    W.emit("  return d.process(v, cb);");
    W.emit("}");
  }
  W.emit("exports.process = process;");
  return W.str();
}

/// Emits the scan root: the exported API whose parameters are the taint
/// sources, forwarding straight into the first dependency.
std::string rootModule(const std::string &FirstDep) {
  CodeWriter W;
  W.emit("var d = require('" + FirstDep + "');");
  W.emit("function run(a, b) {");
  W.emit("  return d.process(a, b);");
  W.emit("}");
  W.emit("module.exports = run;");
  return W.str();
}

PackageInfo makePackage(const std::string &Name, const std::string &Version,
                        std::string MainContents,
                        std::vector<std::string> Deps) {
  PackageInfo P;
  P.Name = Name;
  P.Version = Version;
  P.Main = "index.js";
  P.Files.push_back({"index.js", std::move(MainContents)});
  P.Deps = std::move(Deps);
  return P;
}

} // namespace

DepTree DepTreeGenerator::chain(VulnType Type, unsigned Depth,
                                bool Vulnerable) {
  unsigned Id = NextId++;
  if (Depth < 1)
    Depth = 1;
  std::string Ver = "1.0." + std::to_string(Id);
  auto DepName = [&](unsigned Level) {
    return "tree" + std::to_string(Id) + "-dep" + std::to_string(Level);
  };

  DepTree T;
  T.Depth = Depth;
  T.Vulnerable = Vulnerable;
  std::string RootName = "tree" + std::to_string(Id) + "-root";
  T.Graph.addPackage(
      makePackage(RootName, Ver, rootModule(DepName(1)), {DepName(1)}));
  for (unsigned L = 1; L < Depth; ++L)
    T.Graph.addPackage(makePackage(DepName(L), Ver,
                                   forwardingModule(Type, DepName(L + 1)),
                                   {DepName(L + 1)}));
  CodeWriter W;
  uint32_t Sink = emitSinkModule(W, Type, Vulnerable);
  T.Graph.addPackage(makePackage(DepName(Depth), Ver, W.str(), {}));
  if (Vulnerable) {
    T.SinkPackage = DepName(Depth);
    T.Annotations.push_back({Type, Sink});
  }
  T.Graph.setRoot(0);
  T.Graph.finalize();
  return T;
}

DepTree DepTreeGenerator::cyclic(VulnType Type, bool Vulnerable) {
  unsigned Id = NextId++;
  std::string Ver = "1.0." + std::to_string(Id);
  std::string RootName = "tree" + std::to_string(Id) + "-root";
  std::string A = "tree" + std::to_string(Id) + "-cyca";
  std::string B = "tree" + std::to_string(Id) + "-cycb";

  DepTree T;
  T.Depth = 2;
  T.Cyclic = true;
  T.Vulnerable = Vulnerable;
  T.Graph.addPackage(makePackage(RootName, Ver, rootModule(A), {A}));

  // A forwards into B, which calls back into A's second export — the taint
  // crosses the package cycle before reaching the sink in A.
  CodeWriter WA;
  WA.emit("var b = require('" + B + "');");
  uint32_t Sink = 0;
  if (Type == VulnType::PrototypePollution) {
    WA.emit("function process(t, s) {");
    WA.emit("  return b.step(t, s);");
    WA.emit("}");
    WA.emit("function landing(t, s) {");
    if (Vulnerable) {
      WA.emit("  var child = t[s.key];");
      Sink = WA.emit("  child[s.sub] = s.value;");
    } else {
      WA.emit("  var child = t.fixed;");
      WA.emit("  child.safe = s.value;");
    }
    WA.emit("  return t;");
    WA.emit("}");
  } else {
    WA.emit("function process(x, cb) {");
    WA.emit("  return b.step('a' + x, cb);");
    WA.emit("}");
    WA.emit("function landing(y, cb) {");
    switch (Type) {
    case VulnType::CommandInjection:
      WA.emit("  var cp = require('child_process');");
      Sink = Vulnerable ? WA.emit("  cp.exec('run ' + y, cb);")
                        : (WA.emit("  cp.exec('ls', cb);"), 0);
      break;
    case VulnType::CodeInjection:
      Sink = Vulnerable ? WA.emit("  return eval(y);")
                        : (WA.emit("  return eval('1 + 1');"), 0);
      break;
    case VulnType::PathTraversal:
      WA.emit("  var fs = require('fs');");
      Sink = Vulnerable ? WA.emit("  fs.readFile(y, cb);")
                        : (WA.emit("  fs.readFile('./fixed', cb);"), 0);
      break;
    case VulnType::PrototypePollution:
      break;
    }
    WA.emit("}");
  }
  WA.emit("exports.process = process;");
  WA.emit("exports.landing = landing;");
  T.Graph.addPackage(makePackage(A, Ver, WA.str(), {B}));

  CodeWriter WB;
  WB.emit("var a = require('" + A + "');");
  if (Type == VulnType::PrototypePollution) {
    WB.emit("function step(t, s) {");
    WB.emit("  return a.landing(t, s);");
    WB.emit("}");
  } else {
    WB.emit("function step(x, cb) {");
    WB.emit("  return a.landing('b' + x, cb);");
    WB.emit("}");
  }
  WB.emit("exports.step = step;");
  T.Graph.addPackage(makePackage(B, Ver, WB.str(), {A}));

  if (Vulnerable) {
    T.SinkPackage = A;
    T.Annotations.push_back({Type, Sink});
  }
  T.Graph.setRoot(0);
  T.Graph.finalize();
  return T;
}

DepTree DepTreeGenerator::missingDep(VulnType Type, unsigned Depth) {
  // A vulnerable-shaped chain whose deepest level was never published:
  // finalize() synthesizes the Missing package from the dangling name.
  unsigned Id = NextId++;
  if (Depth < 1)
    Depth = 1;
  std::string Ver = "1.0." + std::to_string(Id);
  auto DepName = [&](unsigned Level) {
    return "tree" + std::to_string(Id) + "-dep" + std::to_string(Level);
  };

  DepTree T;
  T.Depth = Depth;
  std::string RootName = "tree" + std::to_string(Id) + "-root";
  T.Graph.addPackage(
      makePackage(RootName, Ver, rootModule(DepName(1)), {DepName(1)}));
  for (unsigned L = 1; L < Depth; ++L)
    T.Graph.addPackage(makePackage(DepName(L), Ver,
                                   forwardingModule(Type, DepName(L + 1)),
                                   {DepName(L + 1)}));
  T.Graph.setRoot(0);
  T.Graph.finalize();
  return T;
}

DepTree DepTreeGenerator::brokenDep(VulnType Type, unsigned Depth) {
  // Same chain, but the deepest dependency exists and does not parse.
  unsigned Id = NextId++;
  if (Depth < 1)
    Depth = 1;
  std::string Ver = "1.0." + std::to_string(Id);
  auto DepName = [&](unsigned Level) {
    return "tree" + std::to_string(Id) + "-dep" + std::to_string(Level);
  };

  DepTree T;
  T.Depth = Depth;
  std::string RootName = "tree" + std::to_string(Id) + "-root";
  T.Graph.addPackage(
      makePackage(RootName, Ver, rootModule(DepName(1)), {DepName(1)}));
  for (unsigned L = 1; L < Depth; ++L)
    T.Graph.addPackage(makePackage(DepName(L), Ver,
                                   forwardingModule(Type, DepName(L + 1)),
                                   {DepName(L + 1)}));
  T.Graph.addPackage(makePackage(DepName(Depth), Ver,
                                 "function process( {{{ not javascript\n",
                                 {}));
  T.Graph.setRoot(0);
  T.Graph.finalize();
  return T;
}

//===----------------------------------------------------------------------===//
// Manifest serialization / on-disk materialization
//===----------------------------------------------------------------------===//

std::string workload::manifestJSON(const PackageGraph &G) {
  json::Array Pkgs;
  for (const PackageInfo &P : G.packages()) {
    json::Object O;
    O["name"] = json::Value(P.Name);
    if (!P.Version.empty())
      O["version"] = json::Value(P.Version);
    if (P.Missing) {
      O["missing"] = json::Value(true);
    } else {
      O["main"] = json::Value(P.Main);
      O["dir"] = json::Value(P.Name);
      json::Array Files;
      for (const PackageFile &F : P.Files)
        Files.push_back(json::Value(F.Path));
      O["files"] = json::Value(std::move(Files));
    }
    json::Array Deps;
    for (const std::string &D : P.Deps)
      Deps.push_back(json::Value(D));
    O["deps"] = json::Value(std::move(Deps));
    Pkgs.push_back(json::Value(std::move(O)));
  }
  json::Object Top;
  Top["schema"] = json::Value(1);
  Top["root"] = json::Value(G.packages()[G.rootIndex()].Name);
  Top["packages"] = json::Value(std::move(Pkgs));
  return json::Value(std::move(Top)).str(2);
}

bool workload::materialize(const DepTree &Tree, const std::string &Dir,
                           std::string *Error) {
  namespace fs = std::filesystem;
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return Fail("cannot create " + Dir + ": " + EC.message());
  for (const PackageInfo &P : Tree.Graph.packages()) {
    if (P.Missing)
      continue;
    for (const PackageFile &F : P.Files) {
      fs::path Full = fs::path(Dir) / P.Name / F.Path;
      fs::create_directories(Full.parent_path(), EC);
      std::ofstream Out(Full, std::ios::binary);
      if (!Out)
        return Fail("cannot write " + Full.string());
      Out << F.Contents;
    }
  }
  std::ofstream M(fs::path(Dir) / "graphjs.deps.json", std::ios::binary);
  if (!M)
    return Fail("cannot write manifest under " + Dir);
  M << manifestJSON(Tree.Graph);
  return true;
}
