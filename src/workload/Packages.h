//===- workload/Packages.h - Synthetic npm packages --------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic npm-package generation. Real CVE datasets (VulcaN, SecBench)
/// and the 32K-package Collected crawl are not available offline; this
/// generator emits the *code patterns* the paper identifies as driving its
/// results (see DESIGN.md substitution table):
///
///   - direct / helper-wrapped / loop-carried / recursive taint flows;
///   - set-value-style loop pollution and deep-merge recursion (§5.5);
///   - sanitizer patterns (property overwrites — Graph.js's UntaintedPath);
///   - guard-condition decoys (reported but unexploitable: the TFP class);
///   - `arguments`-based flows (Graph.js's documented false negatives,
///     detectable by ODGen);
///   - dynamic `require` (the Collected dataset's CWE-94 FP driver);
///   - web-server context markers (ODGen's CWE-22 precondition).
///
/// Every vulnerable package carries ground-truth sink-line annotations.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_WORKLOAD_PACKAGES_H
#define GJS_WORKLOAD_PACKAGES_H

#include "queries/VulnTypes.h"
#include "scanner/Scanner.h"
#include "support/RNG.h"

#include <string>
#include <vector>

namespace gjs {
namespace workload {

/// A ground-truth annotation: one known vulnerability with its sink line.
struct Annotation {
  queries::VulnType Type;
  uint32_t SinkLine;
};

/// How hard the package is to analyze — drives loop/recursion nesting and
/// therefore the baseline's timeout behavior.
enum class Complexity {
  Direct,    ///< Straight-line source-to-sink flow.
  Wrapped,   ///< Flow through helper functions.
  Loop,      ///< Flow through a loop (fixpoint needed).
  Recursive, ///< Recursive helper (deep-merge style).
  Deep,      ///< Nested loops + recursion (baseline-timeout bait).
};

/// How the package's flows are shaped. The first three choose the *main*
/// (annotated) flow; the last three add a decoy/extra flow on top of a
/// Plain main flow.
enum class VariantKind {
  Plain,           ///< Exploitable, annotated main flow.
  ArgumentsBased,  ///< Main flow uses `arguments[i]` — still annotated and
                   ///< exploitable, but a Graph.js FN (ODGen handles it).
  IndirectCall,    ///< Main flow reaches the sink via fn.call(...) — an
                   ///< annotated vulnerability both tools miss.
  ExtraSink,       ///< Plain + a second exploitable *unannotated* sink:
                   ///< reports on it are FPs by annotation, but not TFPs.
  Guarded,         ///< Plain + a guarded decoy sink — reported by the
                   ///< tools but unexploitable: the TFP class.
  Sanitized,       ///< Plain + a decoy whose tainted property is
                   ///< overwritten before the sink — a true negative that
                   ///< tests the UntaintedPath exclusion.
};

/// Which async construct carries the main flow of an async package (see
/// docs/ASYNC.md). The first three route the taint through the promise
/// settlement model that only exists after the async lowering
/// (core/AsyncLower.h): without `--no-async-lower` disabled lowering the
/// value dead-ends inside `resolve(x)` and the sink is missed. The
/// error-first callback form needs no lowering — the builder's
/// unknown-call callback rule already carries it — and pins down that the
/// lowering does not regress it.
enum class AsyncForm {
  Await,              ///< `await` on an executor-settled promise
  ThenChain,          ///< executor promise consumed via `.then(handler)`
  PromiseExecutor,    ///< `new Promise(executor)` + a two-stage then chain
  ErrorFirstCallback, ///< node-style `cb(err, data)` — no promises at all
};

const char *asyncFormName(AsyncForm F);

/// One generated package.
struct Package {
  std::string Name;
  std::vector<scanner::SourceFile> Files;
  std::vector<Annotation> Annotations; ///< Ground-truth vulnerabilities.
  /// Lines of *unannotated but genuinely exploitable* extra sinks:
  /// reports here count as FP but not TFP (§5.2's incomplete-dataset
  /// discussion).
  std::vector<uint32_t> ExtraRealLines;
  Complexity Complex = Complexity::Direct;
  VariantKind Variant = VariantKind::Plain;
  size_t LoC = 0;
  /// Collected-dataset bookkeeping: false for "zero-day" plants whose
  /// vulnerability has never been publicly reported (Table 5's
  /// "Unreported" column).
  bool PreviouslyReported = true;
};

/// Generates single-vulnerability packages in the style of the reference
/// datasets.
class PackageGenerator {
public:
  explicit PackageGenerator(uint64_t Seed) : R(Seed) {}

  /// A vulnerable package of the given class/shape.
  Package vulnerable(queries::VulnType Type, Complexity C, VariantKind V,
                     size_t FillerLoC = 0);

  /// A benign utility package (no sinks at all).
  Package benign(size_t FillerLoC = 0);

  /// A benign package that *uses* sinks safely (constant arguments).
  Package benignWithSafeSinks(size_t FillerLoC = 0);

  /// A plugin-loader package with a dynamic `require` — Graph.js reports
  /// it as CWE-94 but it is rarely exploitable (the §5.3 FP driver).
  Package dynamicRequire(size_t FillerLoC = 0);

  /// A command-injection package whose main flow crosses the given async
  /// construct. Annotated like `vulnerable`; the promise-backed forms are
  /// only detectable with the async lowering enabled.
  Package asyncVulnerable(AsyncForm F, size_t FillerLoC = 0);

  /// The benign twin: identical async structure, but the promise settles
  /// with a constant, so nothing attacker-controlled reaches the sink.
  /// Any report here is a lowering-induced false positive.
  Package asyncBenign(AsyncForm F, size_t FillerLoC = 0);

  RNG &rng() { return R; }

private:
  RNG R;
  unsigned NextId = 0;

  void emitFiller(class CodeWriter &W, size_t Lines);
  void emitServerContext(CodeWriter &W);

  Package commandInjection(Complexity C, VariantKind V, size_t Filler);
  Package codeInjection(Complexity C, VariantKind V, size_t Filler);
  Package pathTraversal(Complexity C, VariantKind V, size_t Filler);
  Package prototypePollution(Complexity C, VariantKind V, size_t Filler);
};

} // namespace workload
} // namespace gjs

#endif // GJS_WORKLOAD_PACKAGES_H
