//===- workload/Packages.cpp - Synthetic npm packages ----------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/Packages.h"

#include "workload/CodeWriter.h"

using namespace gjs;
using namespace gjs::workload;
using queries::VulnType;

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

void PackageGenerator::emitFiller(CodeWriter &W, size_t Lines) {
  size_t Emitted = 0;
  unsigned FillerId = 0;
  while (Emitted + 10 <= Lines) {
    std::string F = "u" + std::to_string(NextId) + "_" +
                    std::to_string(FillerId++);
    W.emit("function " + F + "(x, y) {");
    W.emit("  var a = x + " + std::to_string(R.below(100)) + ";");
    W.emit("  var o = {v: a, w: y};");
    W.emit("  var s = o.v + o.w;");
    W.emit("  for (var i = 0; i < 3; i++) {");
    W.emit("    s = s + o.v;");
    W.emit("  }");
    W.emit("  if (s > " + std::to_string(R.below(50)) + ") { s = s - 1; }");
    W.emit("  return s;");
    W.emit("}");
    W.emit("exports." + F + " = " + F + ";");
    Emitted += 11;
  }
}

/// Exports the entry either directly or through a wrapper that obscures
/// the flow: `arguments`-forwarding (ArgumentsBased, for non-Direct
/// complexities) or Function.prototype.call indirection (IndirectCall,
/// when requested with UseCallWrapper).
static void exportEntry(CodeWriter &W, VariantKind V, Complexity C,
                        const std::string &Fn, unsigned Arity,
                        bool UseCallWrapper = false) {
  if (V == VariantKind::ArgumentsBased && C != Complexity::Direct) {
    W.emit("function entry() {");
    std::string Fwd;
    for (unsigned I = 0; I < Arity; ++I) {
      if (I)
        Fwd += ", ";
      Fwd += "arguments[" + std::to_string(I) + "]";
    }
    W.emit("  return " + Fn + "(" + Fwd + ");");
    W.emit("}");
    W.emit("module.exports = entry;");
    return;
  }
  if (V == VariantKind::IndirectCall && UseCallWrapper) {
    std::string Params, Fwd;
    for (unsigned I = 0; I < Arity; ++I) {
      if (I) {
        Params += ", ";
        Fwd += ", ";
      }
      Params += "a" + std::to_string(I);
      Fwd += "a" + std::to_string(I);
    }
    W.emit("function entry(" + Params + ") {");
    W.emit("  return " + Fn + ".call(null, " + Fwd + ");");
    W.emit("}");
    W.emit("module.exports = entry;");
    return;
  }
  W.emit("module.exports = " + Fn + ";");
}

void PackageGenerator::emitServerContext(CodeWriter &W) {
  W.emit("var http = require('http');");
  W.emit("function serve(handler) {");
  W.emit("  return http.createServer(handler);");
  W.emit("}");
  W.emit("exports.serve = serve;");
}

//===----------------------------------------------------------------------===//
// Command injection (CWE-78)
//===----------------------------------------------------------------------===//

Package PackageGenerator::commandInjection(Complexity C, VariantKind V,
                                           size_t Filler) {
  Package P;
  P.Complex = C;
  P.Variant = V;
  std::string MultiFileHelper; // Non-empty => a lib.js module is emitted.
  CodeWriter W;
  W.emit("var cp = require('child_process');");

  // -- Main (annotated) flow -------------------------------------------------
  switch (C) {
  case Complexity::Direct:
    if (V == VariantKind::ArgumentsBased) {
      W.emit("function run() {");
      W.emit("  var cmd = arguments[0];");
      W.emit("  var cb = arguments[1];");
    } else {
      W.emit("function run(cmd, cb) {");
    }
    W.emit("  var full = 'git ' + cmd;");
    break;
  case Complexity::Wrapped:
    if (R.chance(0.5)) {
      // Multi-file form: the builder helper lives in its own module.
      // (Emitted into lib.js below; the entry requires it.)
      MultiFileHelper = "function build(part) {\n"
                        "  var pre = 'git ';\n"
                        "  return pre + part;\n"
                        "}\n"
                        "exports.build = build;\n";
      W.emit("var lib = require('./lib');");
      W.emit("function run(cmd, cb) {");
      W.emit("  var full = lib.build(cmd);");
    } else {
      W.emit("function build(part) {");
      W.emit("  var pre = 'git ';");
      W.emit("  return pre + part;");
      W.emit("}");
      W.emit("function run(cmd, cb) {");
      W.emit("  var full = build(cmd);");
    }
    break;
  case Complexity::Loop:
    W.emit("function run(parts, cb) {");
    W.emit("  var full = 'tar';");
    W.emit("  for (var i = 0; i < parts.length; i++) {");
    W.emit("    full = full + ' ' + parts[i];");
    W.emit("  }");
    break;
  case Complexity::Recursive:
    W.emit("function join(list, i) {");
    W.emit("  if (i >= list.length) { return ''; }");
    W.emit("  return list[i] + ' ' + join(list, i + 1);");
    W.emit("}");
    W.emit("function run(parts, cb) {");
    W.emit("  var full = 'zip ' + join(parts, 0);");
    break;
  case Complexity::Deep:
    W.emit("function expand(obj, depth) {");
    W.emit("  if (depth <= 0) { return obj; }");
    W.emit("  var out = {};");
    W.emit("  for (var k in obj) {");
    W.emit("    for (var j in obj) {");
    W.emit("      out[k] = expand(obj[j], depth - 1);");
    W.emit("    }");
    W.emit("  }");
    W.emit("  return out;");
    W.emit("}");
    W.emit("function run(opts, cb) {");
    W.emit("  var conf = expand(opts, 3);");
    W.emit("  var full = 'run ' + conf.cmd;");
    break;
  }

  if (V == VariantKind::IndirectCall) {
    W.emit("  doExec.call(null, full, cb);");
    W.emit("}");
    W.emit("function doExec(c, cb) {");
    uint32_t Sink = W.emit("  cp.exec(c, cb);");
    W.emit("}");
    P.Annotations.push_back({VulnType::CommandInjection, Sink});
  } else {
    uint32_t Sink = W.emit("  cp.exec(full, cb);");
    W.emit("}");
    P.Annotations.push_back({VulnType::CommandInjection, Sink});
  }
  exportEntry(W, V, C, "run", 2);

  // -- Add-on flows ----------------------------------------------------------
  if (V == VariantKind::ExtraSink) {
    W.emit("function runSync(c) {");
    uint32_t Extra = W.emit("  return cp.execSync('ls ' + c);");
    W.emit("}");
    W.emit("module.exports.sync = runSync;");
    P.ExtraRealLines.push_back(Extra);
  }
  if (V == VariantKind::Guarded) {
    W.emit("function runChecked(c, cb) {");
    W.emit("  var g = 'git ' + c;");
    W.emit("  if (g.length < 4 && g.indexOf(';') === -1) {");
    W.emit("    cp.exec(g, cb);");
    W.emit("  }");
    W.emit("}");
    W.emit("module.exports.checked = runChecked;");
  }
  if (V == VariantKind::Sanitized) {
    W.emit("function runFixed(c, cb) {");
    W.emit("  var opts = {};");
    W.emit("  opts.c = c;");
    W.emit("  opts.c = 'git status';");
    W.emit("  cp.exec(opts.c, cb);");
    W.emit("}");
    W.emit("module.exports.fixed = runFixed;");
  }

  emitFiller(W, Filler);
  P.Name = "cmd-" + std::to_string(NextId++);
  P.LoC = W.loc();
  P.Files.push_back({"index.js", W.str()});
  if (!MultiFileHelper.empty())
    P.Files.push_back({"lib.js", MultiFileHelper});
  return P;
}

//===----------------------------------------------------------------------===//
// Code injection (CWE-94)
//===----------------------------------------------------------------------===//

Package PackageGenerator::codeInjection(Complexity C, VariantKind V,
                                        size_t Filler) {
  Package P;
  P.Complex = C;
  P.Variant = V;
  CodeWriter W;

  switch (C) {
  case Complexity::Direct:
    if (V == VariantKind::ArgumentsBased) {
      W.emit("function calc() {");
      W.emit("  var expr = arguments[0];");
    } else {
      W.emit("function calc(expr) {");
    }
    W.emit("  var code = '(' + expr + ')';");
    break;
  case Complexity::Wrapped:
    W.emit("function wrap(e) {");
    W.emit("  return 'with (ctx) { ' + e + ' }';");
    W.emit("}");
    W.emit("function calc(expr) {");
    W.emit("  var code = wrap(expr);");
    break;
  case Complexity::Loop:
    W.emit("function calc(exprs) {");
    W.emit("  var code = '';");
    W.emit("  for (var i = 0; i < exprs.length; i++) {");
    W.emit("    code = code + exprs[i] + ';';");
    W.emit("  }");
    break;
  case Complexity::Recursive:
    W.emit("function glue(list, i) {");
    W.emit("  if (i >= list.length) { return ''; }");
    W.emit("  return list[i] + ';' + glue(list, i + 1);");
    W.emit("}");
    W.emit("function calc(exprs) {");
    W.emit("  var code = glue(exprs, 0);");
    break;
  case Complexity::Deep:
    W.emit("function collect(tree, acc) {");
    W.emit("  for (var k in tree) {");
    W.emit("    for (var j in tree) {");
    W.emit("      acc[k] = collect(tree[j], acc);");
    W.emit("      acc.code = acc.code + tree[k];");
    W.emit("    }");
    W.emit("  }");
    W.emit("  return acc.code;");
    W.emit("}");
    W.emit("function calc(tree) {");
    W.emit("  var code = collect(tree, {code: ''});");
    break;
  }

  if (V == VariantKind::IndirectCall) {
    W.emit("  doEval.call(null, code);");
    W.emit("}");
    W.emit("function doEval(c) {");
    uint32_t Sink = W.emit("  return eval(c);");
    W.emit("}");
    P.Annotations.push_back({VulnType::CodeInjection, Sink});
  } else {
    uint32_t Sink =
        R.chance(0.3)
            ? W.emit("  return new Function('return ' + code);")
            : W.emit("  return eval(code);");
    W.emit("}");
    P.Annotations.push_back({VulnType::CodeInjection, Sink});
  }
  exportEntry(W, V, C, "calc", 1);

  if (V == VariantKind::ExtraSink) {
    W.emit("function evalRaw(s) {");
    uint32_t Extra = W.emit("  return eval(s);");
    W.emit("}");
    W.emit("module.exports.raw = evalRaw;");
    P.ExtraRealLines.push_back(Extra);
  }
  if (V == VariantKind::Guarded) {
    W.emit("function calcChecked(e) {");
    W.emit("  if (e.length < 3 && e.indexOf('(') === -1) {");
    W.emit("    return eval(e);");
    W.emit("  }");
    W.emit("  return 0;");
    W.emit("}");
    W.emit("module.exports.checked = calcChecked;");
  }
  if (V == VariantKind::Sanitized) {
    W.emit("function calcFixed(e) {");
    W.emit("  var box = {};");
    W.emit("  box.e = e;");
    W.emit("  box.e = '1 + 1';");
    W.emit("  return eval(box.e);");
    W.emit("}");
    W.emit("module.exports.fixed = calcFixed;");
  }

  emitFiller(W, Filler);
  P.Name = "code-" + std::to_string(NextId++);
  P.LoC = W.loc();
  P.Files.push_back({"index.js", W.str()});
  return P;
}

//===----------------------------------------------------------------------===//
// Path traversal (CWE-22)
//===----------------------------------------------------------------------===//

Package PackageGenerator::pathTraversal(Complexity C, VariantKind V,
                                        size_t Filler) {
  Package P;
  P.Complex = C;
  P.Variant = V;
  CodeWriter W;
  W.emit("var fs = require('fs');");
  // ~65% of the dataset's path-traversal packages sit in a web-server
  // context — the precondition for ODGen's CWE-22 queries (§5.2).
  if (R.chance(0.65))
    emitServerContext(W);

  switch (C) {
  case Complexity::Direct:
    if (V == VariantKind::ArgumentsBased) {
      W.emit("function read() {");
      W.emit("  var name = arguments[0];");
      W.emit("  var cb = arguments[1];");
    } else {
      W.emit("function read(name, cb) {");
    }
    W.emit("  var target = './static/' + name;");
    break;
  case Complexity::Wrapped:
    W.emit("function resolve(n) {");
    W.emit("  return './static/' + n;");
    W.emit("}");
    W.emit("function read(name, cb) {");
    W.emit("  var target = resolve(name);");
    break;
  case Complexity::Loop:
    W.emit("function read(segments, cb) {");
    W.emit("  var target = './static';");
    W.emit("  for (var i = 0; i < segments.length; i++) {");
    W.emit("    target = target + '/' + segments[i];");
    W.emit("  }");
    break;
  case Complexity::Recursive:
    W.emit("function walk(list, i) {");
    W.emit("  if (i >= list.length) { return ''; }");
    W.emit("  return '/' + list[i] + walk(list, i + 1);");
    W.emit("}");
    W.emit("function read(segments, cb) {");
    W.emit("  var target = './static' + walk(segments, 0);");
    break;
  case Complexity::Deep:
    W.emit("function flatten(tree, acc) {");
    W.emit("  for (var k in tree) {");
    W.emit("    for (var j in tree) {");
    W.emit("      acc[k] = flatten(tree[j], acc);");
    W.emit("      acc.p = acc.p + '/' + tree[k];");
    W.emit("    }");
    W.emit("  }");
    W.emit("  return acc.p;");
    W.emit("}");
    W.emit("function read(tree, cb) {");
    W.emit("  var target = './static' + flatten(tree, {p: ''});");
    break;
  }

  if (V == VariantKind::IndirectCall) {
    W.emit("  doRead.call(null, target, cb);");
    W.emit("}");
    W.emit("function doRead(t, cb) {");
    uint32_t Sink = W.emit("  fs.readFile(t, cb);");
    W.emit("}");
    P.Annotations.push_back({VulnType::PathTraversal, Sink});
  } else {
    uint32_t Sink = R.chance(0.4)
                        ? W.emit("  return fs.readFileSync(target);")
                        : W.emit("  fs.readFile(target, cb);");
    W.emit("}");
    P.Annotations.push_back({VulnType::PathTraversal, Sink});
  }
  exportEntry(W, V, C, "read", 2);

  if (V == VariantKind::ExtraSink) {
    W.emit("function remove(n) {");
    uint32_t Extra = W.emit("  fs.unlinkSync('./static/' + n);");
    W.emit("}");
    W.emit("module.exports.remove = remove;");
    P.ExtraRealLines.push_back(Extra);
  }
  if (V == VariantKind::Guarded) {
    W.emit("function readChecked(n, cb) {");
    W.emit("  if (n.length < 4 && n.indexOf('..') === -1) {");
    W.emit("    fs.readFile('./static/' + n, cb);");
    W.emit("  }");
    W.emit("}");
    W.emit("module.exports.checked = readChecked;");
  }
  if (V == VariantKind::Sanitized) {
    W.emit("function readFixed(n, cb) {");
    W.emit("  var req = {};");
    W.emit("  req.p = n;");
    W.emit("  req.p = 'index.html';");
    W.emit("  fs.readFile('./static/' + req.p, cb);");
    W.emit("}");
    W.emit("module.exports.fixed = readFixed;");
  }

  emitFiller(W, Filler);
  P.Name = "path-" + std::to_string(NextId++);
  P.LoC = W.loc();
  P.Files.push_back({"index.js", W.str()});
  return P;
}

//===----------------------------------------------------------------------===//
// Prototype pollution (CWE-1321)
//===----------------------------------------------------------------------===//

Package PackageGenerator::prototypePollution(Complexity C, VariantKind V,
                                             size_t Filler) {
  Package P;
  P.Complex = C;
  P.Variant = V;
  CodeWriter W;
  uint32_t Sink = 0;

  switch (C) {
  case Complexity::Direct:
    if (V == VariantKind::ArgumentsBased) {
      W.emit("function setPath() {");
      W.emit("  var obj = arguments[0];");
      W.emit("  var key = arguments[1];");
      W.emit("  var subkey = arguments[2];");
      W.emit("  var value = arguments[3];");
    } else {
      W.emit("function setPath(obj, key, subkey, value) {");
    }
    W.emit("  var child = obj[key];");
    Sink = W.emit("  child[subkey] = value;");
    W.emit("  return obj;");
    W.emit("}");
    exportEntry(W, V, C, "setPath", 4, /*UseCallWrapper=*/true);
    break;

  case Complexity::Wrapped:
    W.emit("function assign(target, k, v) {");
    Sink = W.emit("  target[k] = v;");
    W.emit("  return target;");
    W.emit("}");
    W.emit("function setPath(obj, key, subkey, value) {");
    W.emit("  var child = obj[key];");
    W.emit("  return assign(child, subkey, value);");
    W.emit("}");
    exportEntry(W, V, C, "setPath", 4, /*UseCallWrapper=*/true);
    break;

  case Complexity::Loop:
    // The §5.5 set-value shape (CVE-2021-23440).
    W.emit("function setValue(target, prop, value) {");
    W.emit("  var path = prop.split('.');");
    W.emit("  var len = path.length;");
    W.emit("  var obj = target;");
    W.emit("  for (var i = 0; i < len; i++) {");
    W.emit("    var p = path[i];");
    W.emit("    if (i === len - 1) {");
    Sink = W.emit("      obj[p] = value;");
    W.emit("    }");
    W.emit("    obj = obj[p];");
    W.emit("  }");
    W.emit("  return target;");
    W.emit("}");
    exportEntry(W, V, C, "setValue", 3, /*UseCallWrapper=*/true);
    break;

  case Complexity::Recursive:
    // Deep-merge: the classic recursive pollution pattern.
    W.emit("function merge(target, source) {");
    W.emit("  for (var key in source) {");
    W.emit("    var val = source[key];");
    W.emit("    if (typeof val === 'object') {");
    W.emit("      if (!target[key]) { target[key] = {}; }");
    W.emit("      merge(target[key], val);");
    W.emit("    } else {");
    Sink = W.emit("      target[key] = val;");
    W.emit("    }");
    W.emit("  }");
    W.emit("  return target;");
    W.emit("}");
    exportEntry(W, V, C, "merge", 2, /*UseCallWrapper=*/true);
    break;

  case Complexity::Deep:
    // Nested iteration + recursion: the baseline-timeout shape.
    W.emit("function mergeAll(target, source, depth) {");
    W.emit("  for (var k in source) {");
    W.emit("    for (var j in source) {");
    W.emit("      var val = source[j];");
    W.emit("      var slot = target[k];");
    W.emit("      if (depth > 0 && typeof val === 'object') {");
    W.emit("        mergeAll(slot, val, depth - 1);");
    W.emit("      }");
    Sink = W.emit("      slot[j] = val;");
    W.emit("    }");
    W.emit("  }");
    W.emit("  return target;");
    W.emit("}");
    W.emit("function entry2(target, source) {");
    W.emit("  return mergeAll(target, source, 3);");
    W.emit("}");
    exportEntry(W, V, C, "entry2", 2, /*UseCallWrapper=*/true);
    break;
  }
  P.Annotations.push_back({VulnType::PrototypePollution, Sink});

  if (V == VariantKind::ExtraSink) {
    W.emit("function setShallow(o, k, k2, v) {");
    W.emit("  var c = o[k];");
    uint32_t Extra = W.emit("  c[k2] = v;");
    W.emit("}");
    W.emit("module.exports.shallow = setShallow;");
    P.ExtraRealLines.push_back(Extra);
  }
  if (V == VariantKind::Guarded) {
    W.emit("function setChecked(o, k, k2, v) {");
    W.emit("  var c = o[k];");
    W.emit("  if (k !== '__proto__' && k2 !== '__proto__') {");
    W.emit("    c[k2] = v;");
    W.emit("  }");
    W.emit("}");
    W.emit("module.exports.checked = setChecked;");
  }
  if (V == VariantKind::Sanitized) {
    W.emit("function setFixed(o, k, v) {");
    W.emit("  var c = o[k];");
    W.emit("  c['data'] = v;");
    W.emit("}");
    W.emit("module.exports.fixed = setFixed;");
  }

  emitFiller(W, Filler);
  P.Name = "proto-" + std::to_string(NextId++);
  P.LoC = W.loc();
  P.Files.push_back({"index.js", W.str()});
  return P;
}

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

Package PackageGenerator::vulnerable(VulnType Type, Complexity C,
                                     VariantKind V, size_t FillerLoC) {
  switch (Type) {
  case VulnType::CommandInjection:
    return commandInjection(C, V, FillerLoC);
  case VulnType::CodeInjection:
    return codeInjection(C, V, FillerLoC);
  case VulnType::PathTraversal:
    return pathTraversal(C, V, FillerLoC);
  case VulnType::PrototypePollution:
    return prototypePollution(C, V, FillerLoC);
  }
  return Package();
}

Package PackageGenerator::benign(size_t FillerLoC) {
  Package P;
  CodeWriter W;
  W.emit("function clamp(v, lo, hi) {");
  W.emit("  if (v < lo) { return lo; }");
  W.emit("  if (v > hi) { return hi; }");
  W.emit("  return v;");
  W.emit("}");
  W.emit("module.exports = clamp;");
  emitFiller(W, FillerLoC);
  P.Name = "util-" + std::to_string(NextId++);
  P.LoC = W.loc();
  P.Files.push_back({"index.js", W.str()});
  return P;
}

Package PackageGenerator::benignWithSafeSinks(size_t FillerLoC) {
  Package P;
  CodeWriter W;
  W.emit("var cp = require('child_process');");
  W.emit("var fs = require('fs');");
  W.emit("function status(cb) {");
  W.emit("  cp.exec('git status', cb);");
  W.emit("}");
  W.emit("function version() {");
  W.emit("  return fs.readFileSync('./VERSION');");
  W.emit("}");
  W.emit("module.exports = {status: status, version: version};");
  emitFiller(W, FillerLoC);
  P.Name = "safe-" + std::to_string(NextId++);
  P.LoC = W.loc();
  P.Files.push_back({"index.js", W.str()});
  return P;
}

//===----------------------------------------------------------------------===//
// Async flows (docs/ASYNC.md)
//===----------------------------------------------------------------------===//

const char *workload::asyncFormName(AsyncForm F) {
  switch (F) {
  case AsyncForm::Await:
    return "await";
  case AsyncForm::ThenChain:
    return "then-chain";
  case AsyncForm::PromiseExecutor:
    return "promise-executor";
  case AsyncForm::ErrorFirstCallback:
    return "error-first-callback";
  }
  return "?";
}

Package PackageGenerator::asyncVulnerable(AsyncForm F, size_t FillerLoC) {
  Package P;
  CodeWriter W;
  W.emit("var cp = require('child_process');");
  uint32_t Sink = 0;
  switch (F) {
  case AsyncForm::Await:
    // The tainted command only exists as the executor's resolve argument:
    // without the lowering's settlement model it dead-ends there and the
    // awaited value stays clean.
    W.emit("function load(cmd) {");
    W.emit("  return new Promise(function(res, rej) {");
    W.emit("    res('git ' + cmd);");
    W.emit("  });");
    W.emit("}");
    W.emit("async function run(cmd, cb) {");
    W.emit("  var full = await load(cmd);");
    Sink = W.emit("  cp.exec(full, cb);");
    W.emit("}");
    W.emit("module.exports = run;");
    break;
  case AsyncForm::ThenChain:
    W.emit("function load(cmd) {");
    W.emit("  return new Promise(function(res, rej) {");
    W.emit("    res('tar ' + cmd);");
    W.emit("  });");
    W.emit("}");
    W.emit("function run(cmd, cb) {");
    W.emit("  load(cmd).then(function(full) {");
    Sink = W.emit("    cp.exec(full, cb);");
    W.emit("  });");
    W.emit("}");
    W.emit("module.exports = run;");
    break;
  case AsyncForm::PromiseExecutor:
    // Two-stage chain: the first handler's return value settles the
    // chained promise the second handler consumes.
    W.emit("function run(cmd, cb) {");
    W.emit("  var p = new Promise(function(res, rej) {");
    W.emit("    res(cmd);");
    W.emit("  });");
    W.emit("  p.then(function(c) {");
    W.emit("    return 'zip ' + c;");
    W.emit("  }).then(function(full) {");
    Sink = W.emit("    cp.exec(full, cb);");
    W.emit("  });");
    W.emit("}");
    W.emit("module.exports = run;");
    break;
  case AsyncForm::ErrorFirstCallback:
    W.emit("var fs = require('fs');");
    W.emit("function run(path, cb) {");
    W.emit("  fs.readFile(path, function(err, data) {");
    Sink = W.emit("    cp.exec('cat ' + data, cb);");
    W.emit("  });");
    W.emit("}");
    W.emit("module.exports = run;");
    break;
  }
  P.Annotations.push_back({VulnType::CommandInjection, Sink});
  emitFiller(W, FillerLoC);
  P.Name = std::string("async-") + asyncFormName(F) + "-" +
           std::to_string(NextId++);
  P.LoC = W.loc();
  P.Files.push_back({"index.js", W.str()});
  return P;
}

Package PackageGenerator::asyncBenign(AsyncForm F, size_t FillerLoC) {
  Package P;
  CodeWriter W;
  W.emit("var cp = require('child_process');");
  switch (F) {
  case AsyncForm::Await:
    W.emit("function load() {");
    W.emit("  return new Promise(function(res, rej) {");
    W.emit("    res('git status');");
    W.emit("  });");
    W.emit("}");
    W.emit("async function run(cb) {");
    W.emit("  var full = await load();");
    W.emit("  cp.exec(full, cb);");
    W.emit("}");
    W.emit("module.exports = run;");
    break;
  case AsyncForm::ThenChain:
    W.emit("function load() {");
    W.emit("  return new Promise(function(res, rej) {");
    W.emit("    res('tar --list');");
    W.emit("  });");
    W.emit("}");
    W.emit("function run(cb) {");
    W.emit("  load().then(function(full) {");
    W.emit("    cp.exec(full, cb);");
    W.emit("  });");
    W.emit("}");
    W.emit("module.exports = run;");
    break;
  case AsyncForm::PromiseExecutor:
    W.emit("function run(cb) {");
    W.emit("  var p = new Promise(function(res, rej) {");
    W.emit("    res('zip');");
    W.emit("  });");
    W.emit("  p.then(function(c) {");
    W.emit("    return c + ' -r';");
    W.emit("  }).then(function(full) {");
    W.emit("    cp.exec(full, cb);");
    W.emit("  });");
    W.emit("}");
    W.emit("module.exports = run;");
    break;
  case AsyncForm::ErrorFirstCallback:
    W.emit("var fs = require('fs');");
    W.emit("function run(cb) {");
    W.emit("  fs.readFile('./VERSION', function(err, data) {");
    W.emit("    cp.exec('git describe', cb);");
    W.emit("  });");
    W.emit("}");
    W.emit("module.exports = run;");
    break;
  }
  emitFiller(W, FillerLoC);
  P.Name = std::string("async-safe-") + asyncFormName(F) + "-" +
           std::to_string(NextId++);
  P.LoC = W.loc();
  P.Files.push_back({"index.js", W.str()});
  return P;
}

Package PackageGenerator::dynamicRequire(size_t FillerLoC) {
  Package P;
  CodeWriter W;
  W.emit("function load(name) {");
  W.emit("  return require('./plugins/' + name);");
  W.emit("}");
  W.emit("module.exports = load;");
  emitFiller(W, FillerLoC);
  // Reported by Graph.js as CWE-94 but practically unexploitable: an
  // attacker controls the module name but not its exports (§5.3). No
  // annotation, no ExtraRealLines: any report here is a TFP.
  P.Name = "loader-" + std::to_string(NextId++);
  P.LoC = W.loc();
  P.Files.push_back({"index.js", W.str()});
  return P;
}
