//===- workload/DepTrees.h - Synthetic dependency trees ----------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependency-tree workload generation for the cross-package linker: trees
/// whose sink lives 1–4 dependency levels below the scan root, reached
/// only through a chain of inter-package requires. An isolated per-package
/// scan of the root cannot see these flows (the require of another package
/// is an external call); the linked scan (`graphjs scan --with-deps`)
/// must. Benign variants keep the same chain shape with a constant-
/// argument sink; cyclic variants make two dependencies require each
/// other (one package SCC); missing/broken variants exercise the
/// cross-package soundness valve.
///
/// Every vulnerable tree carries a ground-truth annotation: the sink line
/// *within the sink package's file* (per-file line numbering survives
/// flattening).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_WORKLOAD_DEPTREES_H
#define GJS_WORKLOAD_DEPTREES_H

#include "analysis/PackageGraph.h"
#include "workload/Packages.h"

#include <string>
#include <vector>

namespace gjs {
namespace workload {

/// One generated dependency tree.
struct DepTree {
  analysis::PackageGraph Graph;
  /// Ground truth: sink lines within SinkPackage's main file.
  std::vector<Annotation> Annotations;
  std::string SinkPackage; ///< package holding the sink ("" when none)
  unsigned Depth = 0;      ///< dependency levels below the root
  bool Vulnerable = false;
  bool Cyclic = false;
};

/// Generates dependency trees (deterministic per seed).
class DepTreeGenerator {
public:
  explicit DepTreeGenerator(uint64_t Seed) : R(Seed) {}

  /// A linear chain: root -> dep1 -> ... -> depN, with the sink in the
  /// deepest package and the tainted value forwarded through every level.
  /// \p Depth in [1, 4]. Benign trees use a constant-argument sink.
  DepTree chain(queries::VulnType Type, unsigned Depth, bool Vulnerable);

  /// Two mutually-requiring dependencies (one package SCC) below the
  /// root; the taint crosses the cycle before reaching the sink.
  DepTree cyclic(queries::VulnType Type, bool Vulnerable);

  /// A chain whose deepest dependency is declared but entirely absent:
  /// the forwarding call above it must classify as unresolved (the
  /// soundness valve), so no query on this tree may be pruned.
  DepTree missingDep(queries::VulnType Type, unsigned Depth = 2);

  /// A chain whose deepest dependency ships a file that does not parse:
  /// same valve, different failure path (parse error, not absence).
  DepTree brokenDep(queries::VulnType Type, unsigned Depth = 2);

  RNG &rng() { return R; }

private:
  RNG R;
  unsigned NextId = 0;
};

/// Serializes a package graph as a `graphjs.deps.json` manifest (file
/// contents are not embedded; pair with materialize()).
std::string manifestJSON(const analysis::PackageGraph &G);

/// Writes the tree to \p Dir: each package's files under `Dir/<name>/`
/// plus the `graphjs.deps.json` manifest, so `graphjs scan --with-deps
/// Dir` rediscovers exactly this tree.
bool materialize(const DepTree &Tree, const std::string &Dir,
                 std::string *Error = nullptr);

} // namespace workload
} // namespace gjs

#endif // GJS_WORKLOAD_DEPTREES_H
