//===- queries/Traversals.h - Table 1 base graph traversals ------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Native implementations of the paper's base graph traversals (Table 1):
///
///   BasicPath    — any D/P/V-edge path between two locations
///   UntaintedPath— a path containing V(p) ... P(p): the tainted property
///                  was overwritten, so taint does not flow through
///   TaintPath    — BasicPath \ UntaintedPath
///   Arg_{f,n}    — the n-th argument locations of a call node
///   ObjLookup*   — o1 -P(*)-> o2
///   ObjAssignment* — o2 -V(*)-> o3 -P(*)-> o4
///
/// TaintPath is computed with a path-sensitive DFS whose state carries the
/// set of properties overwritten so far (V(p) edges add to it, P(p) edges
/// with p in the set are pruned). States are memoized per node with
/// subset-subsumption, so the search stays polynomial on real MDGs.
///
/// These native traversals serve three roles: cross-validation oracle for
/// the query-engine results, the fast query backend, and the reference the
/// ODGen baseline's traversals are compared against.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_QUERIES_TRAVERSALS_H
#define GJS_QUERIES_TRAVERSALS_H

#include "mdg/MDG.h"
#include "support/StringInterner.h"

#include <set>
#include <vector>

namespace gjs {
namespace queries {

/// Table 1 traversals over one MDG.
class Traversals {
public:
  explicit Traversals(const mdg::Graph &G) : G(G) {}

  /// All nodes reachable from \p Src via a *tainted* path (TaintPath^s).
  std::set<mdg::NodeId> taintReachable(mdg::NodeId Src) const;

  /// TaintPath_{s,n}: is there a tainted path Src → Dst (including the
  /// trivial 0-length path when Src == Dst)?
  bool taintPathExists(mdg::NodeId Src, mdg::NodeId Dst) const;

  /// BasicPath reachability (no untainted-path exclusion).
  bool basicPathExists(mdg::NodeId Src, mdg::NodeId Dst) const;

  /// ObjLookup*: all (object, subObject) pairs linked by a P(*) edge.
  std::vector<std::pair<mdg::NodeId, mdg::NodeId>> objLookupStar() const;

  /// ObjAssignment* anchored at \p Sub: (version, value) pairs from
  /// Sub -V(*)-> version -P(*)-> value.
  std::vector<std::pair<mdg::NodeId, mdg::NodeId>>
  objAssignmentStar(mdg::NodeId Sub) const;

private:
  const mdg::Graph &G;
};

} // namespace queries
} // namespace gjs

#endif // GJS_QUERIES_TRAVERSALS_H
