//===- queries/Traversals.cpp - Table 1 base graph traversals --------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "queries/Traversals.h"

#include <algorithm>

using namespace gjs;
using namespace gjs::mdg;
using namespace gjs::queries;

namespace {

/// One DFS state: a node plus the set of properties overwritten by the
/// V(p) edges traversed so far.
struct TaintState {
  NodeId N;
  std::set<Symbol> Overwritten;
};

} // namespace

std::set<NodeId> Traversals::taintReachable(NodeId Src) const {
  std::set<NodeId> Reached;
  // Memo: per node, the antichain of overwritten-sets we already explored.
  // A new state is redundant if a previously explored set is a subset of
  // its set (fewer exclusions = strictly more permissive exploration).
  std::vector<std::vector<std::set<Symbol>>> Seen(G.numNodes());

  std::vector<TaintState> Work;
  Work.push_back({Src, {}});

  auto Explore = [&](NodeId N, const std::set<Symbol> &S) {
    for (const std::set<Symbol> &Prev : Seen[N])
      if (std::includes(S.begin(), S.end(), Prev.begin(), Prev.end()))
        return false;
    // Keep the antichain small: drop supersets of S.
    auto &Sets = Seen[N];
    Sets.erase(std::remove_if(Sets.begin(), Sets.end(),
                              [&](const std::set<Symbol> &Prev) {
                                return std::includes(Prev.begin(), Prev.end(),
                                                     S.begin(), S.end());
                              }),
               Sets.end());
    Sets.push_back(S);
    return true;
  };

  while (!Work.empty()) {
    TaintState St = std::move(Work.back());
    Work.pop_back();
    if (!Explore(St.N, St.Overwritten))
      continue;
    Reached.insert(St.N);

    for (const Edge &E : G.out(St.N)) {
      switch (E.Kind) {
      case EdgeKind::Dep:
      case EdgeKind::PropUnknown:
      case EdgeKind::VersionUnknown:
        Work.push_back({E.To, St.Overwritten});
        break;
      case EdgeKind::Version: {
        TaintState Next{E.To, St.Overwritten};
        Next.Overwritten.insert(E.Prop);
        Work.push_back(std::move(Next));
        break;
      }
      case EdgeKind::Prop:
        // The UntaintedPath exclusion: a known property that was
        // overwritten along this path no longer carries the taint.
        if (!St.Overwritten.count(E.Prop))
          Work.push_back({E.To, St.Overwritten});
        break;
      }
    }
  }
  return Reached;
}

bool Traversals::taintPathExists(NodeId Src, NodeId Dst) const {
  if (Src == Dst)
    return true;
  return taintReachable(Src).count(Dst) != 0;
}

bool Traversals::basicPathExists(NodeId Src, NodeId Dst) const {
  if (Src == Dst)
    return true;
  std::vector<bool> Seen(G.numNodes(), false);
  std::vector<NodeId> Work{Src};
  Seen[Src] = true;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    if (N == Dst)
      return true;
    for (const Edge &E : G.out(N))
      if (!Seen[E.To]) {
        Seen[E.To] = true;
        Work.push_back(E.To);
      }
  }
  return false;
}

std::vector<std::pair<NodeId, NodeId>> Traversals::objLookupStar() const {
  std::vector<std::pair<NodeId, NodeId>> Out;
  for (NodeId N : G.nodeIds())
    for (const Edge &E : G.out(N))
      if (E.Kind == EdgeKind::PropUnknown)
        Out.push_back({N, E.To});
  return Out;
}

std::vector<std::pair<NodeId, NodeId>>
Traversals::objAssignmentStar(NodeId Sub) const {
  std::vector<std::pair<NodeId, NodeId>> Out;
  for (const Edge &E1 : G.out(Sub)) {
    if (E1.Kind != EdgeKind::VersionUnknown)
      continue;
    for (const Edge &E2 : G.out(E1.To))
      if (E2.Kind == EdgeKind::PropUnknown)
        Out.push_back({E1.To, E2.To});
  }
  return Out;
}
