//===- queries/QueryRunner.cpp - Table 2 vulnerability queries -------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "queries/QueryRunner.h"

#include "graphdb/SchemaLint.h"
#include "obs/Trace.h"

#include <algorithm>
#include <set>

using namespace gjs;
using namespace gjs::queries;
using namespace gjs::mdg;
using graphdb::Path;
using graphdb::PropertyGraph;
using graphdb::QueryEngine;
using graphdb::ResultRow;
using graphdb::ResultSet;

GraphDBRunner::GraphDBRunner(const analysis::BuildResult &Build,
                             graphdb::EngineOptions Engine,
                             bool UntaintedExclusion)
    : Build(Build), Imported(graphdb::importMDG(Build.Graph, Build.Props,
                                                Engine.ScanDeadline)),
      EngineOpts(Engine), UntaintedExclusion(UntaintedExclusion) {}

void GraphDBRunner::registerPredicates(QueryEngine &E) const {
  if (!UntaintedExclusion) {
    // Ablated mode: `untainted(p)` is constant-false (TaintPath becomes
    // BasicPath) and no pruning fold is installed.
    E.registerPathPredicate(
        "untainted",
        [](const Path &, const PropertyGraph &) { return false; });
    // A coarse reachability fold still prunes revisits (state 0 always).
    E.setPathFold(
        [](int64_t, const graphdb::StoredRel &) -> int64_t { return 0; });
    return;
  }
  // UntaintedPath (Table 1): the path contains V(p) followed, anywhere
  // later, by P(p) on the same property: the tainted value was overwritten.
  E.registerPathPredicate(
      "untainted", [](const Path &P, const PropertyGraph &G) {
        std::set<std::string> Overwritten;
        for (graphdb::RelHandle RH : P.Rels) {
          const graphdb::StoredRel &R = G.rel(RH);
          if (R.Type == "V") {
            auto It = R.Props.find("name");
            if (It != R.Props.end())
              Overwritten.insert(It->second);
          } else if (R.Type == "P") {
            auto It = R.Props.find("name");
            if (It != R.Props.end() && Overwritten.count(It->second))
              return true;
          }
        }
        return false;
      });

  // Path-state fold for planner-style pruning: the state is the interned
  // set of overwritten properties, and untainted extensions (reading a
  // property after its overwrite) are pruned outright. Consistent with the
  // `untainted` predicate: every surviving path satisfies NOT untainted.
  auto States = std::make_shared<std::vector<std::set<std::string>>>();
  auto Index = std::make_shared<std::map<std::set<std::string>, int64_t>>();
  States->push_back({});
  (*Index)[{}] = 0;
  E.setPathFold([States, Index](int64_t S,
                                const graphdb::StoredRel &R) -> int64_t {
    const std::set<std::string> &Cur = (*States)[static_cast<size_t>(S)];
    auto NameIt = R.Props.find("name");
    if (R.Type == "V" && NameIt != R.Props.end()) {
      std::set<std::string> Next = Cur;
      Next.insert(NameIt->second);
      auto It = Index->find(Next);
      if (It != Index->end())
        return It->second;
      int64_t Id = static_cast<int64_t>(States->size());
      States->push_back(Next);
      (*Index)[std::move(Next)] = Id;
      return Id;
    }
    if (R.Type == "P" && NameIt != R.Props.end() &&
        Cur.count(NameIt->second))
      return -1; // Overwritten property: prune the untainted extension.
    return S;
  });
}

static const char *TaintQueryTemplateName =
    "MATCH p = (src:Object {taint: 'true'})-[:D|P|PU|V|VU*0..]->(arg)"
    "-[:D]->(call:Call {name: '%'})\n"
    "WHERE NOT untainted(p)\n"
    "RETURN src, arg, call";

static const char *TaintQueryTemplatePath =
    "MATCH p = (src:Object {taint: 'true'})-[:D|P|PU|V|VU*0..]->(arg)"
    "-[:D]->(call:Call {path: '%'})\n"
    "WHERE NOT untainted(p)\n"
    "RETURN src, arg, call";

/// Substitutes the sink name into a query template (single '%' hole).
static std::string instantiate(const char *Template, const std::string &Name) {
  std::string Out(Template);
  size_t Hole = Out.find('%');
  Out.replace(Hole, 1, Name);
  return Out;
}

std::vector<VulnReport>
GraphDBRunner::detectTaintStyle(VulnType T, const SinkConfig &Config,
                                DetectStats *Stats) {
  QueryEngine E(Imported.Graph, EngineOpts);
  registerPredicates(E);

  std::vector<VulnReport> Reports;
  std::set<VulnReport> Dedup;

  for (const SinkSpec &Spec : Config.sinks(T)) {
    std::string QueryText = instantiate(
        Spec.isPath() ? TaintQueryTemplatePath : TaintQueryTemplateName,
        Spec.Name);
    obs::Span QSpan(EngineOpts.Trace, std::string(vulnTypeName(T)) + "/" +
                                          Spec.Name);
    ResultSet R = E.run(QueryText);
    QSpan.arg("rows", static_cast<uint64_t>(R.Rows.size()));
    QSpan.arg("work", R.Work);
    if (Stats) {
      Stats->QueryWork += R.Work;
      Stats->TimedOut |= R.TimedOut;
    }
    for (const ResultRow &Row : R.Rows) {
      NodeId Call = Row.NodeBindings.at("call");
      NodeId Arg = Row.NodeBindings.at("arg");
      // Host-side Arg_{f,n} filter: the matched arg must be one of the
      // sink's sensitive argument positions.
      const Node &CN = Build.Graph.node(Call);
      bool Sensitive = false;
      for (unsigned I = 0; I < CN.Args.size() && !Sensitive; ++I) {
        if (!SinkConfig::argIsSensitive(Spec, I))
          continue;
        Sensitive = std::find(CN.Args[I].begin(), CN.Args[I].end(), Arg) !=
                    CN.Args[I].end();
      }
      if (!Sensitive)
        continue;
      VulnReport Rep;
      Rep.Type = T;
      Rep.SinkLoc = CN.Loc;
      Rep.SinkName = CN.CallName;
      Rep.SinkPath = CN.CallPath;
      if (Dedup.insert(Rep).second)
        Reports.push_back(std::move(Rep));
    }
  }
  return Reports;
}

// The taint-source endpoints of p1..p3 are anonymous: naming them would
// bind variables the query never reads (the schema linter flags that).
static const char *PollutionQuery =
    "MATCH (obj:Object)-[:PU]->(sub:Object)-[:VU]->(ver:Object)"
    "-[:PU]->(val:Object),\n"
    "  p1 = (:Object {taint: 'true'})-[:D|P|PU|V|VU*0..]->(sub),\n"
    "  p2 = (:Object {taint: 'true'})-[:D|P|PU|V|VU*0..]->(ver),\n"
    "  p3 = (:Object {taint: 'true'})-[:D|P|PU|V|VU*0..]->(val)\n"
    "WHERE NOT untainted(p1) AND NOT untainted(p2) AND NOT untainted(p3)\n"
    "RETURN obj, sub, ver, val";

std::vector<std::pair<std::string, std::string>>
GraphDBRunner::builtinQueries(const SinkConfig &Config) {
  std::vector<std::pair<std::string, std::string>> Out;
  for (VulnType T : {VulnType::CommandInjection, VulnType::CodeInjection,
                     VulnType::PathTraversal}) {
    for (const SinkSpec &Spec : Config.sinks(T)) {
      std::string Name = std::string(vulnTypeName(T)) + "/" + Spec.Name;
      Out.emplace_back(std::move(Name),
                       instantiate(Spec.isPath() ? TaintQueryTemplatePath
                                                 : TaintQueryTemplateName,
                                   Spec.Name));
    }
  }
  Out.emplace_back("prototype-pollution", PollutionQuery);
  return Out;
}

bool GraphDBRunner::validateBuiltinQueries(const SinkConfig &Config,
                                           std::string *Error) {
  const graphdb::GraphSchema &Schema = graphdb::mdgSchema();
  for (const auto &[Name, Text] : builtinQueries(Config)) {
    for (const graphdb::SchemaIssue &Issue :
         graphdb::lintQueryText(Text, Schema)) {
      if (Issue.Severity != DiagSeverity::Error)
        continue;
      if (Error)
        *Error = "built-in query '" + Name + "': " + Issue.str();
      return false;
    }
  }
  return true;
}

std::vector<VulnReport>
GraphDBRunner::detectPrototypePollution(DetectStats *Stats) {
  QueryEngine E(Imported.Graph, EngineOpts);
  registerPredicates(E);

  obs::Span QSpan(EngineOpts.Trace, "prototype-pollution");
  ResultSet R = E.run(PollutionQuery);
  QSpan.arg("rows", static_cast<uint64_t>(R.Rows.size()));
  QSpan.arg("work", R.Work);
  QSpan.close();
  if (Stats) {
    Stats->QueryWork += R.Work;
    Stats->TimedOut |= R.TimedOut;
  }

  std::vector<VulnReport> Reports;
  std::set<VulnReport> Dedup;
  for (const ResultRow &Row : R.Rows) {
    NodeId Ver = Row.NodeBindings.at("ver");
    VulnReport Rep;
    Rep.Type = VulnType::PrototypePollution;
    Rep.SinkLoc = Build.Graph.node(Ver).Loc;
    if (Dedup.insert(Rep).second)
      Reports.push_back(std::move(Rep));
  }
  return Reports;
}

graphdb::ResultSet GraphDBRunner::runQuery(const std::string &Text,
                                           std::string *Error,
                                           graphdb::QueryProfile *Profile) {
  QueryEngine E(Imported.Graph, EngineOpts);
  registerPredicates(E);
  return E.run(Text, Error, Profile);
}

std::vector<std::pair<std::string, graphdb::QueryProfile>>
GraphDBRunner::profileBuiltins(const SinkConfig &Config) {
  std::vector<std::pair<std::string, graphdb::QueryProfile>> Out;
  for (const auto &[Name, Text] : builtinQueries(Config)) {
    graphdb::QueryProfile P;
    std::string Error;
    runQuery(Text, &Error, &P);
    Out.emplace_back(Name, std::move(P));
  }
  return Out;
}

std::vector<VulnReport> GraphDBRunner::detect(const SinkConfig &Config,
                                              DetectStats *Stats) {
  std::array<bool, NumVulnTypes> All;
  All.fill(true);
  return detect(Config, Stats, All);
}

std::vector<VulnReport>
GraphDBRunner::detect(const SinkConfig &Config, DetectStats *Stats,
                      const std::array<bool, NumVulnTypes> &Enabled) {
  std::vector<VulnReport> All;
  for (VulnType T : {VulnType::CommandInjection, VulnType::CodeInjection,
                     VulnType::PathTraversal}) {
    if (!Enabled[static_cast<int>(T)])
      continue;
    std::vector<VulnReport> R = detectTaintStyle(T, Config, Stats);
    All.insert(All.end(), R.begin(), R.end());
  }
  if (Enabled[static_cast<int>(VulnType::PrototypePollution)]) {
    std::vector<VulnReport> PP = detectPrototypePollution(Stats);
    All.insert(All.end(), PP.begin(), PP.end());
  }
  return All;
}

//===----------------------------------------------------------------------===//
// Native backend
//===----------------------------------------------------------------------===//

std::vector<VulnReport> queries::detectNative(
    const analysis::BuildResult &Build, const SinkConfig &Config) {
  std::array<bool, NumVulnTypes> All;
  All.fill(true);
  return detectNative(Build, Config, All);
}

std::vector<VulnReport> queries::detectNative(
    const analysis::BuildResult &Build, const SinkConfig &Config,
    const std::array<bool, NumVulnTypes> &Enabled) {
  const Graph &G = Build.Graph;
  Traversals T(G);

  // Precompute the taint closure of every source once.
  std::set<NodeId> Tainted;
  for (NodeId S : Build.TaintSources) {
    std::set<NodeId> R = T.taintReachable(S);
    Tainted.insert(R.begin(), R.end());
  }

  std::vector<VulnReport> Reports;
  std::set<VulnReport> Dedup;

  // Taint-style classes: tainted value reaches a sensitive sink argument.
  for (VulnType VT : {VulnType::CommandInjection, VulnType::CodeInjection,
                      VulnType::PathTraversal}) {
    if (!Enabled[static_cast<int>(VT)])
      continue;
    for (const SinkSpec &Spec : Config.sinks(VT)) {
      for (NodeId C : Build.CallNodes) {
        const Node &CN = G.node(C);
        if (!SinkConfig::matchesCall(Spec, CN.CallName, CN.CallPath))
          continue;
        bool Hit = false;
        for (unsigned I = 0; I < CN.Args.size() && !Hit; ++I) {
          if (!SinkConfig::argIsSensitive(Spec, I))
            continue;
          for (NodeId A : CN.Args[I])
            if (Tainted.count(A)) {
              Hit = true;
              break;
            }
        }
        if (!Hit)
          continue;
        VulnReport Rep;
        Rep.Type = VT;
        Rep.SinkLoc = CN.Loc;
        Rep.SinkName = CN.CallName;
        Rep.SinkPath = CN.CallPath;
        if (Dedup.insert(Rep).second)
          Reports.push_back(std::move(Rep));
      }
    }
  }

  // Prototype pollution: ObjLookup* ∘ ObjAssignment* with all three
  // controlled positions tainted (Table 2, last row).
  if (!Enabled[static_cast<int>(VulnType::PrototypePollution)])
    return Reports;
  for (auto [Obj, Sub] : T.objLookupStar()) {
    (void)Obj;
    if (!Tainted.count(Sub))
      continue;
    for (auto [Ver, Val] : T.objAssignmentStar(Sub)) {
      if (!Tainted.count(Ver) || !Tainted.count(Val))
        continue;
      VulnReport Rep;
      Rep.Type = VulnType::PrototypePollution;
      Rep.SinkLoc = G.node(Ver).Loc;
      if (Dedup.insert(Rep).second)
        Reports.push_back(std::move(Rep));
    }
  }
  return Reports;
}
