//===- queries/SinkConfig.cpp - Source/sink configuration ------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "queries/SinkConfig.h"

#include "support/JSON.h"

using namespace gjs;
using namespace gjs::queries;

const char *queries::cweOf(VulnType T) {
  switch (T) {
  case VulnType::CommandInjection:
    return "CWE-78";
  case VulnType::CodeInjection:
    return "CWE-94";
  case VulnType::PathTraversal:
    return "CWE-22";
  case VulnType::PrototypePollution:
    return "CWE-1321";
  }
  return "CWE-???";
}

const char *queries::vulnTypeName(VulnType T) {
  switch (T) {
  case VulnType::CommandInjection:
    return "command-injection";
  case VulnType::CodeInjection:
    return "code-injection";
  case VulnType::PathTraversal:
    return "path-traversal";
  case VulnType::PrototypePollution:
    return "prototype-pollution";
  }
  return "unknown";
}

bool queries::vulnTypeFromName(const std::string &Name, VulnType &Out) {
  for (VulnType T : {VulnType::CommandInjection, VulnType::CodeInjection,
                     VulnType::PathTraversal, VulnType::PrototypePollution}) {
    if (Name == vulnTypeName(T)) {
      Out = T;
      return true;
    }
  }
  return false;
}

std::string VulnReport::str() const {
  std::string Out = std::string(cweOf(Type)) + " (" + vulnTypeName(Type) +
                    ") at line " + std::to_string(SinkLoc.Line);
  if (!SinkName.empty())
    Out += " sink=" + (SinkPath.empty() ? SinkName : SinkPath);
  return Out;
}

SinkConfig SinkConfig::defaults() {
  SinkConfig C;
  // OS command injection (CWE-78): child_process APIs (§4).
  for (const char *Name : {"exec", "execSync", "spawn", "spawnSync",
                           "execFile", "execFileSync", "fork"}) {
    C.addSink(VulnType::CommandInjection, {Name, {0}});
    C.addSink(VulnType::CommandInjection,
              {std::string("child_process.") + Name, {0}});
  }

  // Code injection (CWE-94): eval-like sinks; `require` with a dynamic
  // module name is included, as in the paper's evaluation (§5.3).
  C.addSink(VulnType::CodeInjection, {"eval", {0}});
  C.addSink(VulnType::CodeInjection, {"Function", {}});
  C.addSink(VulnType::CodeInjection, {"require", {0}});
  C.addSink(VulnType::CodeInjection, {"vm.runInContext", {0}});
  C.addSink(VulnType::CodeInjection, {"vm.runInNewContext", {0}});
  C.addSink(VulnType::CodeInjection, {"vm.runInThisContext", {0}});
  C.addSink(VulnType::CodeInjection, {"setTimeout", {0}});
  C.addSink(VulnType::CodeInjection, {"setInterval", {0}});

  // Path traversal (CWE-22): fs read/write entry points (§4).
  for (const char *Name :
       {"readFile", "readFileSync", "writeFile", "writeFileSync",
        "createReadStream", "createWriteStream", "open", "openSync",
        "unlink", "unlinkSync", "readdir", "readdirSync", "rmdir",
        "mkdir", "appendFile", "appendFileSync"}) {
    C.addSink(VulnType::PathTraversal, {std::string("fs.") + Name, {0}});
  }
  return C;
}

bool SinkConfig::matchesCall(const SinkSpec &Spec, const std::string &CallName,
                             const std::string &CallPath) {
  if (Spec.isPath())
    return CallPath == Spec.Name;
  return CallName == Spec.Name;
}

bool SinkConfig::fromJSON(const std::string &Text, SinkConfig &Out,
                          std::string *Error) {
  json::Value V;
  if (!json::parse(Text, V, Error))
    return false;
  if (!V.isObject()) {
    if (Error)
      *Error = "sink config must be a JSON object";
    return false;
  }
  auto TypeOf = [](const std::string &Key, VulnType &T) {
    if (Key == "command-injection")
      T = VulnType::CommandInjection;
    else if (Key == "code-injection")
      T = VulnType::CodeInjection;
    else if (Key == "path-traversal")
      T = VulnType::PathTraversal;
    else if (Key == "prototype-pollution")
      T = VulnType::PrototypePollution;
    else
      return false;
    return true;
  };
  for (const auto &[Key, List] : V.asObject()) {
    if (Key == "sanitizers") {
      if (!List.isArray()) {
        if (Error)
          *Error = "'sanitizers' must be an array of names";
        return false;
      }
      for (const json::Value &Name : List.asArray())
        Out.addSanitizer(Name.asString());
      continue;
    }
    VulnType T;
    if (!TypeOf(Key, T)) {
      if (Error)
        *Error = "unknown vulnerability class '" + Key + "'";
      return false;
    }
    if (!List.isArray()) {
      if (Error)
        *Error = "sink list for '" + Key + "' must be an array";
      return false;
    }
    for (const json::Value &Entry : List.asArray()) {
      if (!Entry.isObject() || !Entry.asObject().count("name")) {
        if (Error)
          *Error = "each sink needs a 'name'";
        return false;
      }
      SinkSpec S;
      S.Name = Entry.asObject().at("name").asString();
      if (Entry.asObject().count("args"))
        for (const json::Value &A : Entry.asObject().at("args").asArray())
          S.SensitiveArgs.push_back(static_cast<unsigned>(A.asNumber()));
      Out.addSink(T, std::move(S));
    }
  }
  return true;
}

analysis::SinkTable queries::toSinkTable(const SinkConfig &Config) {
  analysis::SinkTable Table;
  for (int C = 0; C < NumVulnTypes; ++C) {
    for (const SinkSpec &S : Config.sinks(static_cast<VulnType>(C))) {
      analysis::SinkTableEntry E;
      E.Name = S.Name;
      E.IsPath = S.isPath();
      E.SensitiveArgs = S.SensitiveArgs;
      Table.Classes[C].push_back(std::move(E));
    }
  }
  for (const std::string &S : Config.sanitizers())
    Table.Sanitizers.insert(S);
  return Table;
}
