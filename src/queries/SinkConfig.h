//===- queries/SinkConfig.h - Source/sink configuration ----------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The configurable sink list of §4: "The list of Sinks considered by
/// Graph.js can be set dynamically via a configuration file, where each
/// sink is defined by a JavaScript native function or a function imported
/// from an external package f, and the sensitive argument(s) n."
///
/// The defaults mirror the paper's sink classes, including `require` as a
/// code-injection sink (the §5.3 discussion attributes most CWE-94 false
/// positives to exactly this choice — our Table 5 bench reproduces that).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_QUERIES_SINKCONFIG_H
#define GJS_QUERIES_SINKCONFIG_H

#include "analysis/TaintSummary.h"
#include "queries/VulnTypes.h"

#include <string>
#include <vector>

namespace gjs {
namespace queries {

/// One sink function: a bare name ("exec"), or a dotted path
/// ("child_process.exec", "fs.readFile"), plus its sensitive arguments.
struct SinkSpec {
  std::string Name;
  std::vector<unsigned> SensitiveArgs; // Empty = every argument.
  bool isPath() const { return Name.find('.') != std::string::npos; }
};

/// Sinks per vulnerability class.
class SinkConfig {
public:
  /// The built-in sink table (paper §4 + §5.3).
  static SinkConfig defaults();

  /// Loads a JSON config:
  ///   {"command-injection": [{"name": "exec", "args": [0]}, ...], ...}
  static bool fromJSON(const std::string &Text, SinkConfig &Out,
                       std::string *Error);

  const std::vector<SinkSpec> &sinks(VulnType T) const {
    return Sinks[static_cast<int>(T)];
  }
  void addSink(VulnType T, SinkSpec S) {
    Sinks[static_cast<int>(T)].push_back(std::move(S));
  }

  /// Program-specific sanitizer functions (§6: "The query can also be
  /// extended to not report program-specific sanitization functions").
  /// A call to a sanitizer is a taint barrier: its result carries no
  /// dependency on the call. Names match like sinks (bare or dotted).
  const std::vector<std::string> &sanitizers() const { return Sanitizers_; }
  void addSanitizer(std::string Name) {
    Sanitizers_.push_back(std::move(Name));
  }

  /// True when a call with the given syntactic name/path matches \p Spec.
  static bool matchesCall(const SinkSpec &Spec, const std::string &CallName,
                          const std::string &CallPath);

  /// True when argument index \p Arg is sensitive for \p Spec.
  static bool argIsSensitive(const SinkSpec &Spec, unsigned Arg) {
    if (Spec.SensitiveArgs.empty())
      return true;
    for (unsigned A : Spec.SensitiveArgs)
      if (A == Arg)
        return true;
    return false;
  }

private:
  std::vector<SinkSpec> Sinks[NumVulnTypes];
  std::vector<std::string> Sanitizers_;
};

/// Converts a sink configuration into the analysis layer's plain
/// SinkTable (the summary pass cannot depend on this library, so the
/// bridge lives here; class indices mirror VulnType order).
analysis::SinkTable toSinkTable(const SinkConfig &Config);

} // namespace queries
} // namespace gjs

#endif // GJS_QUERIES_SINKCONFIG_H
