//===- queries/QueryRunner.h - Table 2 vulnerability queries -----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 2 vulnerability detectors, in both of the paper's flavors:
///
///  - **GraphDBRunner** — the Graph.js architecture: the MDG is imported
///    into the graph database and interrogated with the Cypher-like query
///    language (two query families: taint-style and prototype pollution),
///    plus a thin host-side layer for argument-index filtering and report
///    deduplication (the paper's "500 lines of Python").
///
///  - **detectNative** — the same detectors implemented directly with the
///    Table 1 traversals. Used as a cross-validation oracle in tests and
///    as a fast backend; its relative speed vs. the query engine is the
///    Table 6 phenomenon ("ODGen's queries [are] natively implemented ...
///    whereas Graph.js relies on Neo4j's query engine, which is slower").
///
//===----------------------------------------------------------------------===//

#ifndef GJS_QUERIES_QUERYRUNNER_H
#define GJS_QUERIES_QUERYRUNNER_H

#include "analysis/MDGBuilder.h"
#include "graphdb/MDGImport.h"
#include "graphdb/QueryEngine.h"
#include "queries/SinkConfig.h"
#include "queries/Traversals.h"
#include "queries/VulnTypes.h"

#include <array>
#include <vector>

namespace gjs {
namespace queries {

/// Detector statistics (for the Table 6 phase breakdown).
struct DetectStats {
  uint64_t QueryWork = 0; ///< Query-engine matcher steps.
  bool TimedOut = false;
};

/// Runs Table 2 through the graph database (the paper's default pipeline).
class GraphDBRunner {
public:
  GraphDBRunner(const analysis::BuildResult &Build,
                graphdb::EngineOptions Engine = {},
                bool UntaintedExclusion = true);

  /// Detects all four vulnerability classes.
  std::vector<VulnReport> detect(const SinkConfig &Config,
                                 DetectStats *Stats = nullptr);

  /// Detects only the classes whose Enabled[int(VulnType)] flag is true
  /// (the scanner's pre-query pruning mask).
  std::vector<VulnReport> detect(const SinkConfig &Config, DetectStats *Stats,
                                 const std::array<bool, NumVulnTypes> &Enabled);

  /// Runs one taint-style class only.
  std::vector<VulnReport> detectTaintStyle(VulnType T,
                                           const SinkConfig &Config,
                                           DetectStats *Stats = nullptr);
  /// Runs the prototype pollution query only.
  std::vector<VulnReport> detectPrototypePollution(DetectStats *Stats =
                                                       nullptr);

  /// Runs arbitrary query text against the imported MDG with the built-in
  /// path predicates registered (what `graphjs query` executes). With
  /// \p Profile, per-step PROFILE metrics are collected.
  graphdb::ResultSet runQuery(const std::string &Text,
                              std::string *Error = nullptr,
                              graphdb::QueryProfile *Profile = nullptr);

  /// Profiles every built-in Table 2 query (`graphjs query --profile`
  /// without an explicit query): (display name, profile) in the
  /// builtinQueries order.
  std::vector<std::pair<std::string, graphdb::QueryProfile>>
  profileBuiltins(const SinkConfig &Config);

  /// Access to the imported database (examples / custom queries).
  const graphdb::PropertyGraph &database() const { return Imported.Graph; }

  /// True when the scan deadline expired mid-import (partial database).
  bool importTruncated() const { return Imported.Truncated; }

  /// The built-in Table 2 query texts as instantiated for \p Config, as
  /// (display name, query text) pairs — what the schema linter validates.
  static std::vector<std::pair<std::string, std::string>>
  builtinQueries(const SinkConfig &Config);

  /// Parses and schema-lints every built-in query against the MDG import
  /// schema (graphdb::mdgSchema). Returns false and sets \p Error on the
  /// first error-severity issue — a typo'd edge label or property key in a
  /// built-in query must fail fast instead of silently matching nothing.
  static bool validateBuiltinQueries(const SinkConfig &Config,
                                     std::string *Error);

private:
  const analysis::BuildResult &Build;
  graphdb::ImportedMDG Imported;
  graphdb::EngineOptions EngineOpts;
  /// When false, TaintPath degrades to BasicPath (ablation of the
  /// UntaintedPath exclusion — Table 1's key precision mechanism).
  bool UntaintedExclusion;

  void registerPredicates(graphdb::QueryEngine &E) const;
};

/// The same Table 2 detectors via native Table 1 traversals.
std::vector<VulnReport> detectNative(const analysis::BuildResult &Build,
                                     const SinkConfig &Config);

/// Class-masked native detection (pre-query pruning mask).
std::vector<VulnReport>
detectNative(const analysis::BuildResult &Build, const SinkConfig &Config,
             const std::array<bool, NumVulnTypes> &Enabled);

} // namespace queries
} // namespace gjs

#endif // GJS_QUERIES_QUERYRUNNER_H
