//===- queries/VulnTypes.h - Vulnerability taxonomy --------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four vulnerability classes Graph.js detects (§2.2): OS command
/// injection (CWE-78), code injection (CWE-94), path traversal (CWE-22),
/// and prototype pollution (CWE-1321), plus the report record every
/// detector emits (type + sink line, which is what the evaluation's
/// true-positive matching compares against dataset annotations, §5.2).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_QUERIES_VULNTYPES_H
#define GJS_QUERIES_VULNTYPES_H

#include "support/SourceLocation.h"

#include <string>

namespace gjs {
namespace queries {

enum class VulnType {
  CommandInjection,   // CWE-78
  CodeInjection,      // CWE-94
  PathTraversal,      // CWE-22
  PrototypePollution, // CWE-1321
};

constexpr int NumVulnTypes = 4;

/// "CWE-78" etc.
const char *cweOf(VulnType T);
/// "command-injection" etc.
const char *vulnTypeName(VulnType T);
/// Parses vulnTypeName() back (journal-line parsing); false on unknown.
bool vulnTypeFromName(const std::string &Name, VulnType &Out);

/// One reported finding.
struct VulnReport {
  VulnType Type = VulnType::CommandInjection;
  /// Line of the unsafe sink (taint-style) or of the polluting assignment.
  SourceLocation SinkLoc;
  /// Sink function name ("exec") or "" for prototype pollution.
  std::string SinkName;
  /// Resolved dotted path ("child_process.exec") when known.
  std::string SinkPath;

  bool operator==(const VulnReport &O) const {
    return Type == O.Type && SinkLoc == O.SinkLoc && SinkName == O.SinkName;
  }
  bool operator<(const VulnReport &O) const {
    if (Type != O.Type)
      return static_cast<int>(Type) < static_cast<int>(O.Type);
    if (!(SinkLoc == O.SinkLoc))
      return SinkLoc < O.SinkLoc;
    return SinkName < O.SinkName;
  }

  std::string str() const;
};

} // namespace queries
} // namespace gjs

#endif // GJS_QUERIES_VULNTYPES_H
