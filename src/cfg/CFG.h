//===- cfg/CFG.h - Control-flow graphs over the AST --------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow-graph construction over the JavaScript AST — the CFG
/// component of a classic Code Property Graph (Yamaguchi et al.), which
/// the paper's §4 notes Graph.js generates "in line with the original
/// CPGs" before building the MDG, and which the ODGen baseline keeps in
/// its combined graph.
///
/// Each function (and the top level) gets its own CFG of basic blocks.
/// Statements are AST statement pointers; edges carry an optional branch
/// label (true/false for conditions).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_CFG_CFG_H
#define GJS_CFG_CFG_H

#include "frontend/AST.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gjs {
namespace cfg {

using BlockId = uint32_t;
constexpr BlockId InvalidBlock = static_cast<BlockId>(-1);

enum class EdgeLabel : uint8_t { Unconditional, True, False };

struct BlockEdge {
  BlockId To = InvalidBlock;
  EdgeLabel Label = EdgeLabel::Unconditional;
};

/// One basic block: a maximal straight-line statement sequence.
struct BasicBlock {
  std::vector<const ast::Stmt *> Statements;
  std::vector<BlockEdge> Successors;
  std::vector<BlockId> Predecessors;
  std::string Note; // "entry", "exit", "loop-header", ...
};

/// The CFG of one function (or the module top level).
class FunctionCFG {
public:
  BlockId entry() const { return Entry; }
  BlockId exit() const { return Exit; }
  size_t numBlocks() const { return Blocks.size(); }
  const BasicBlock &block(BlockId Id) const { return Blocks[Id]; }

  /// Total statements across blocks.
  size_t numStatements() const;
  /// Total edges.
  size_t numEdges() const;

  /// Blocks with no path from entry (dead code), excluding entry/exit.
  std::vector<BlockId> unreachableBlocks() const;

  /// Renders a readable adjacency dump.
  std::string dump() const;

  //===--------------------------------------------------------------------===//
  // Construction interface (used by buildCFG's builder).
  //===--------------------------------------------------------------------===//

  BlockId newBlock(std::string Note = "");
  void addEdge(BlockId From, BlockId To,
               EdgeLabel Label = EdgeLabel::Unconditional);
  BasicBlock &blockMutable(BlockId Id) { return Blocks[Id]; }
  void setEntry(BlockId Id) { Entry = Id; }
  void setExit(BlockId Id) { Exit = Id; }

private:
  std::vector<BasicBlock> Blocks;
  BlockId Entry = InvalidBlock;
  BlockId Exit = InvalidBlock;
};

/// The CFGs of a whole module: the top level plus one per function
/// (including nested ones), keyed by a display name.
struct ModuleCFG {
  FunctionCFG TopLevel;
  std::map<std::string, FunctionCFG> Functions;

  size_t totalBlocks() const;
  size_t totalEdges() const;
};

/// Builds CFGs for a parsed module.
ModuleCFG buildCFG(const ast::Program &Module);

} // namespace cfg
} // namespace gjs

#endif // GJS_CFG_CFG_H
