//===- cfg/CFG.cpp - Control-flow graphs over the AST ----------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"

#include "obs/Counters.h"

#include <deque>
#include <sstream>

using namespace gjs;
using namespace gjs::ast;
using namespace gjs::cfg;

BlockId FunctionCFG::newBlock(std::string Note) {
  BlockId Id = static_cast<BlockId>(Blocks.size());
  obs::counters::CfgBlocks.add();
  BasicBlock B;
  B.Note = std::move(Note);
  Blocks.push_back(std::move(B));
  return Id;
}

void FunctionCFG::addEdge(BlockId From, BlockId To, EdgeLabel Label) {
  Blocks[From].Successors.push_back({To, Label});
  Blocks[To].Predecessors.push_back(From);
}

size_t FunctionCFG::numStatements() const {
  size_t N = 0;
  for (const BasicBlock &B : Blocks)
    N += B.Statements.size();
  return N;
}

size_t FunctionCFG::numEdges() const {
  size_t N = 0;
  for (const BasicBlock &B : Blocks)
    N += B.Successors.size();
  return N;
}

std::vector<BlockId> FunctionCFG::unreachableBlocks() const {
  std::vector<bool> Seen(Blocks.size(), false);
  std::deque<BlockId> Work{Entry};
  Seen[Entry] = true;
  while (!Work.empty()) {
    BlockId B = Work.front();
    Work.pop_front();
    for (const BlockEdge &E : Blocks[B].Successors)
      if (!Seen[E.To]) {
        Seen[E.To] = true;
        Work.push_back(E.To);
      }
  }
  std::vector<BlockId> Out;
  for (size_t I = 0; I < Blocks.size(); ++I)
    if (!Seen[I] && I != Entry && I != Exit)
      Out.push_back(static_cast<BlockId>(I));
  return Out;
}

std::string FunctionCFG::dump() const {
  std::ostringstream OS;
  for (size_t I = 0; I < Blocks.size(); ++I) {
    const BasicBlock &B = Blocks[I];
    OS << "B" << I;
    if (!B.Note.empty())
      OS << " (" << B.Note << ")";
    OS << " [" << B.Statements.size() << " stmts] ->";
    for (const BlockEdge &E : B.Successors) {
      OS << " B" << E.To;
      if (E.Label == EdgeLabel::True)
        OS << ":T";
      else if (E.Label == EdgeLabel::False)
        OS << ":F";
    }
    OS << '\n';
  }
  return OS.str();
}

namespace {

/// Builds one function's CFG with structured control flow; collects nested
/// functions for separate CFGs.
class Builder {
public:
  Builder(FunctionCFG &G, std::vector<const FunctionExpr *> &NestedFns,
          std::vector<const ArrowFunctionExpr *> &NestedArrows)
      : G(G), NestedFns(NestedFns), NestedArrows(NestedArrows) {}

  void build(const std::vector<StmtPtr> &Body) {
    G.setEntry(G.newBlock("entry"));
    G.setExit(G.newBlock("exit"));
    Current = G.newBlock();
    G.addEdge(G.entry(), Current);
    for (const StmtPtr &S : Body)
      visitStmt(S.get());
    if (Current != InvalidBlock)
      G.addEdge(Current, G.exit());
  }

private:
  FunctionCFG &G;
  std::vector<const FunctionExpr *> &NestedFns;
  std::vector<const ArrowFunctionExpr *> &NestedArrows;
  BlockId Current = InvalidBlock;
  std::vector<BlockId> BreakTargets;
  std::vector<BlockId> ContinueTargets;

  /// Appends a statement to the current block (starting one if needed).
  void append(const ast::Stmt *S) {
    if (Current == InvalidBlock) {
      // Dead code after return/break: still gets a block.
      Current = G.newBlock("dead");
    }
    G.blockMutable(Current).Statements.push_back(S);
  }

  void collectFunctions(const Expr *E);

  void visitStmt(const ast::Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case ast::Stmt::Kind::Block:
      for (const StmtPtr &C : cast<BlockStatement>(S)->Body)
        visitStmt(C.get());
      return;
    case ast::Stmt::Kind::If: {
      const auto *I = cast<IfStatement>(S);
      append(S);
      collectFunctions(I->Cond.get());
      BlockId CondBlock = Current;
      BlockId Join = G.newBlock("join");

      Current = G.newBlock("then");
      G.addEdge(CondBlock, Current, EdgeLabel::True);
      visitStmt(I->Then.get());
      if (Current != InvalidBlock)
        G.addEdge(Current, Join);

      if (I->Else) {
        Current = G.newBlock("else");
        G.addEdge(CondBlock, Current, EdgeLabel::False);
        visitStmt(I->Else.get());
        if (Current != InvalidBlock)
          G.addEdge(Current, Join);
      } else {
        G.addEdge(CondBlock, Join, EdgeLabel::False);
      }
      Current = Join;
      return;
    }
    case ast::Stmt::Kind::While: {
      const auto *W = cast<WhileStatement>(S);
      BlockId Header = G.newBlock("loop-header");
      G.blockMutable(Header).Statements.push_back(S);
      collectFunctions(W->Cond.get());
      if (Current != InvalidBlock)
        G.addEdge(Current, Header);
      BlockId After = G.newBlock("after-loop");
      G.addEdge(Header, After, EdgeLabel::False);

      BreakTargets.push_back(After);
      ContinueTargets.push_back(Header);
      Current = G.newBlock("loop-body");
      G.addEdge(Header, Current, EdgeLabel::True);
      visitStmt(W->Body.get());
      if (Current != InvalidBlock)
        G.addEdge(Current, Header);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Current = After;
      return;
    }
    case ast::Stmt::Kind::DoWhile: {
      const auto *D = cast<DoWhileStatement>(S);
      BlockId Body = G.newBlock("do-body");
      if (Current != InvalidBlock)
        G.addEdge(Current, Body);
      BlockId After = G.newBlock("after-loop");
      BreakTargets.push_back(After);
      ContinueTargets.push_back(Body);
      Current = Body;
      G.blockMutable(Body).Statements.push_back(S);
      visitStmt(D->Body.get());
      collectFunctions(D->Cond.get());
      if (Current != InvalidBlock) {
        G.addEdge(Current, Body, EdgeLabel::True);
        G.addEdge(Current, After, EdgeLabel::False);
      }
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Current = After;
      return;
    }
    case ast::Stmt::Kind::For: {
      const auto *F = cast<ForStatement>(S);
      if (F->Init)
        visitStmt(F->Init.get());
      BlockId Header = G.newBlock("loop-header");
      G.blockMutable(Header).Statements.push_back(S);
      if (F->Cond)
        collectFunctions(F->Cond.get());
      if (F->Update)
        collectFunctions(F->Update.get());
      if (Current != InvalidBlock)
        G.addEdge(Current, Header);
      BlockId After = G.newBlock("after-loop");
      G.addEdge(Header, After, EdgeLabel::False);
      BreakTargets.push_back(After);
      ContinueTargets.push_back(Header);
      Current = G.newBlock("loop-body");
      G.addEdge(Header, Current, EdgeLabel::True);
      visitStmt(F->Body.get());
      if (Current != InvalidBlock)
        G.addEdge(Current, Header);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Current = After;
      return;
    }
    case ast::Stmt::Kind::ForIn:
    case ast::Stmt::Kind::ForOf: {
      const auto *F = cast<ForInOfStatement>(S);
      BlockId Header = G.newBlock("loop-header");
      G.blockMutable(Header).Statements.push_back(S);
      collectFunctions(F->Object.get());
      if (Current != InvalidBlock)
        G.addEdge(Current, Header);
      BlockId After = G.newBlock("after-loop");
      G.addEdge(Header, After, EdgeLabel::False);
      BreakTargets.push_back(After);
      ContinueTargets.push_back(Header);
      Current = G.newBlock("loop-body");
      G.addEdge(Header, Current, EdgeLabel::True);
      visitStmt(F->Body.get());
      if (Current != InvalidBlock)
        G.addEdge(Current, Header);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Current = After;
      return;
    }
    case ast::Stmt::Kind::Return:
      append(S);
      if (const auto *R = cast<ReturnStatement>(S); R->Argument)
        collectFunctions(R->Argument.get());
      if (Current != InvalidBlock)
        G.addEdge(Current, G.exit());
      Current = InvalidBlock;
      return;
    case ast::Stmt::Kind::Break:
      append(S);
      if (!BreakTargets.empty() && Current != InvalidBlock)
        G.addEdge(Current, BreakTargets.back());
      Current = InvalidBlock;
      return;
    case ast::Stmt::Kind::Continue:
      append(S);
      if (!ContinueTargets.empty() && Current != InvalidBlock)
        G.addEdge(Current, ContinueTargets.back());
      Current = InvalidBlock;
      return;
    case ast::Stmt::Kind::Try: {
      const auto *T = cast<TryStatement>(S);
      append(S);
      // The handler may run after any point in the block: approximate
      // with an edge from the block's end and from its start.
      BlockId Before = Current;
      visitStmt(T->Block.get());
      if (T->Handler) {
        BlockId Handler = G.newBlock("catch");
        G.addEdge(Before, Handler);
        if (Current != InvalidBlock)
          G.addEdge(Current, Handler);
        BlockId AfterTry = Current;
        Current = Handler;
        visitStmt(T->Handler.get());
        BlockId Join = G.newBlock("join");
        if (Current != InvalidBlock)
          G.addEdge(Current, Join);
        if (AfterTry != InvalidBlock)
          G.addEdge(AfterTry, Join);
        Current = Join;
      }
      if (T->Finalizer)
        visitStmt(T->Finalizer.get());
      return;
    }
    case ast::Stmt::Kind::Switch: {
      const auto *W = cast<SwitchStatement>(S);
      append(S);
      collectFunctions(W->Discriminant.get());
      BlockId Disc = Current;
      BlockId After = G.newBlock("after-switch");
      BreakTargets.push_back(After);
      BlockId PrevCase = InvalidBlock;
      for (const SwitchCase &C : W->Cases) {
        BlockId CaseBlock = G.newBlock(C.Test ? "case" : "default");
        G.addEdge(Disc, CaseBlock);
        if (PrevCase != InvalidBlock)
          G.addEdge(PrevCase, CaseBlock); // Fall-through.
        Current = CaseBlock;
        for (const StmtPtr &B : C.Body)
          visitStmt(B.get());
        PrevCase = Current;
      }
      if (PrevCase != InvalidBlock)
        G.addEdge(PrevCase, After);
      BreakTargets.pop_back();
      G.addEdge(Disc, After); // No case taken.
      Current = After;
      return;
    }
    case ast::Stmt::Kind::Labeled:
      visitStmt(cast<LabeledStatement>(S)->Body.get());
      return;
    case ast::Stmt::Kind::FunctionDecl: {
      append(S);
      const auto *FD = cast<FunctionDeclaration>(S);
      if (const auto *F = dyn_cast<FunctionExpr>(FD->Function.get()))
        NestedFns.push_back(F);
      return;
    }
    case ast::Stmt::Kind::ExprStmt:
      append(S);
      collectFunctions(cast<ExpressionStatement>(S)->Expression.get());
      return;
    case ast::Stmt::Kind::VarDecl: {
      append(S);
      for (const VarDeclarator &D :
           cast<VariableDeclaration>(S)->Declarators)
        if (D.Init)
          collectFunctions(D.Init.get());
      return;
    }
    case ast::Stmt::Kind::Throw:
      append(S);
      collectFunctions(cast<ThrowStatement>(S)->Argument.get());
      if (Current != InvalidBlock)
        G.addEdge(Current, G.exit());
      Current = InvalidBlock;
      return;
    default:
      append(S);
      return;
    }
  }
};

void Builder::collectFunctions(const Expr *E) {
  if (!E)
    return;
  switch (E->kind()) {
  case Expr::Kind::Function:
    NestedFns.push_back(cast<FunctionExpr>(E));
    return;
  case Expr::Kind::Arrow:
    NestedArrows.push_back(cast<ArrowFunctionExpr>(E));
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collectFunctions(B->LHS.get());
    collectFunctions(B->RHS.get());
    return;
  }
  case Expr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(E);
    collectFunctions(L->LHS.get());
    collectFunctions(L->RHS.get());
    return;
  }
  case Expr::Kind::Assignment: {
    const auto *A = cast<AssignmentExpr>(E);
    collectFunctions(A->Target.get());
    collectFunctions(A->Value.get());
    return;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    collectFunctions(C->Callee.get());
    for (const ExprPtr &A : C->Arguments)
      collectFunctions(A.get());
    return;
  }
  case Expr::Kind::New: {
    const auto *N = cast<NewExpr>(E);
    collectFunctions(N->Callee.get());
    for (const ExprPtr &A : N->Arguments)
      collectFunctions(A.get());
    return;
  }
  case Expr::Kind::Member: {
    const auto *M = cast<MemberExpr>(E);
    collectFunctions(M->Object.get());
    if (M->Computed)
      collectFunctions(M->Index.get());
    return;
  }
  case Expr::Kind::Object: {
    for (const ObjectProperty &P : cast<ObjectLiteral>(E)->Properties) {
      if (P.KeyExpr)
        collectFunctions(P.KeyExpr.get());
      if (P.Value)
        collectFunctions(P.Value.get());
    }
    return;
  }
  case Expr::Kind::Array: {
    for (const ExprPtr &El : cast<ArrayLiteral>(E)->Elements)
      collectFunctions(El.get());
    return;
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    collectFunctions(C->Cond.get());
    collectFunctions(C->Then.get());
    collectFunctions(C->Else.get());
    return;
  }
  case Expr::Kind::Unary:
    collectFunctions(cast<UnaryExpr>(E)->Operand.get());
    return;
  case Expr::Kind::Sequence:
    for (const ExprPtr &P : cast<SequenceExpr>(E)->Expressions)
      collectFunctions(P.get());
    return;
  case Expr::Kind::Template:
    for (const ExprPtr &Sub : cast<TemplateLiteral>(E)->Substitutions)
      collectFunctions(Sub.get());
    return;
  default:
    return;
  }
}

} // namespace

size_t ModuleCFG::totalBlocks() const {
  size_t N = TopLevel.numBlocks();
  for (const auto &[Name, F] : Functions)
    N += F.numBlocks();
  return N;
}

size_t ModuleCFG::totalEdges() const {
  size_t N = TopLevel.numEdges();
  for (const auto &[Name, F] : Functions)
    N += F.numEdges();
  return N;
}

ModuleCFG cfg::buildCFG(const ast::Program &Module) {
  ModuleCFG Out;
  std::vector<const FunctionExpr *> Fns;
  std::vector<const ArrowFunctionExpr *> Arrows;

  {
    Builder B(Out.TopLevel, Fns, Arrows);
    B.build(Module.Body);
  }

  unsigned AnonId = 0;
  // Functions may nest: process the worklist until exhausted.
  size_t FnIdx = 0, ArrowIdx = 0;
  while (FnIdx < Fns.size() || ArrowIdx < Arrows.size()) {
    if (FnIdx < Fns.size()) {
      const FunctionExpr *F = Fns[FnIdx++];
      std::string Name = F->Name.empty()
                             ? "<anon" + std::to_string(AnonId++) + ">"
                             : F->Name;
      while (Out.Functions.count(Name))
        Name += "'";
      FunctionCFG &G = Out.Functions[Name];
      Builder B(G, Fns, Arrows);
      if (const auto *Body = dyn_cast<BlockStatement>(F->Body.get()))
        B.build(Body->Body);
    } else {
      const ArrowFunctionExpr *A = Arrows[ArrowIdx++];
      std::string Name = "<arrow" + std::to_string(AnonId++) + ">";
      FunctionCFG &G = Out.Functions[Name];
      Builder B(G, Fns, Arrows);
      if (A->Body) {
        if (const auto *Body = dyn_cast<BlockStatement>(A->Body.get()))
          B.build(Body->Body);
      } else {
        B.build({});
      }
    }
  }
  return Out;
}
