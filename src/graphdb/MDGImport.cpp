//===- graphdb/MDGImport.cpp - MDG to property-graph import ----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "graphdb/MDGImport.h"

#include "obs/Counters.h"
#include "support/Deadline.h"

using namespace gjs;
using namespace gjs::graphdb;
using namespace gjs::mdg;

ImportedMDG graphdb::importMDG(const Graph &MDG, const StringInterner &Props,
                               Deadline *ScanDeadline) {
  ImportedMDG Out;
  Out.NodeOf.reserve(MDG.numNodes());

  for (NodeId N : MDG.nodeIds()) {
    // Cooperative cancellation: one checkpoint per imported node. On
    // expiry, stop — queries run over the partial store.
    if (ScanDeadline && ScanDeadline->checkpoint()) {
      Out.Truncated = true;
      return Out;
    }
    const Node &Src = MDG.node(N);
    std::map<std::string, std::string> P;
    P["label"] = Src.Label;
    P["site"] = std::to_string(Src.Site);
    P["line"] = std::to_string(Src.Loc.Line);
    if (Src.Kind == NodeKind::Call) {
      P["name"] = Src.CallName;
      P["path"] = Src.CallPath;
      Out.NodeOf.push_back(Out.Graph.addNode("Call", std::move(P)));
    } else {
      P["taint"] = Src.IsTaintSource ? "true" : "false";
      Out.NodeOf.push_back(Out.Graph.addNode("Object", std::move(P)));
    }
    obs::counters::ImportNodes.add();
  }

  for (NodeId N : MDG.nodeIds()) {
    for (const Edge &E : MDG.out(N)) {
      // One checkpoint per imported relationship.
      if (ScanDeadline && ScanDeadline->checkpoint()) {
        Out.Truncated = true;
        return Out;
      }
      std::map<std::string, std::string> P;
      const char *Type = "D";
      switch (E.Kind) {
      case EdgeKind::Dep:
        Type = "D";
        break;
      case EdgeKind::Prop:
        Type = "P";
        P["name"] = Props.str(E.Prop);
        break;
      case EdgeKind::PropUnknown:
        Type = "PU";
        break;
      case EdgeKind::Version:
        Type = "V";
        P["name"] = Props.str(E.Prop);
        break;
      case EdgeKind::VersionUnknown:
        Type = "VU";
        break;
      }
      Out.Graph.addRel(Out.NodeOf[E.From], Out.NodeOf[E.To], Type,
                       std::move(P));
      obs::counters::ImportRels.add();
    }
  }
  return Out;
}
