//===- graphdb/QueryEngine.cpp - Query evaluation --------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "graphdb/QueryEngine.h"

#include "obs/Counters.h"
#include "support/Deadline.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <set>

using namespace gjs;
using namespace gjs::graphdb;

//===----------------------------------------------------------------------===//
// Plan rendering (EXPLAIN) and the step profiler (PROFILE)
//===----------------------------------------------------------------------===//

/// Renders a node pattern like `(src:Object {taint: 'true'})`.
static std::string renderNode(const NodePattern &N) {
  std::string Out = "(" + N.Var;
  if (!N.Label.empty())
    Out += ":" + N.Label;
  if (!N.Props.empty()) {
    Out += " {";
    bool First = true;
    for (const auto &[Key, Value] : N.Props) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Key + ": '" + Value + "'";
    }
    Out += "}";
  }
  return Out + ")";
}

/// Renders a relationship pattern with its *effective* hop bounds under the
/// engine options (`-[:D|P*0..24]->`): EXPLAIN shows the plan the engine
/// will actually execute, unbounded segments included.
static std::string renderRel(const RelPattern &R, const EngineOptions &O) {
  std::string Mid = "[";
  Mid += R.Var;
  if (!R.Types.empty()) {
    Mid += ":";
    for (size_t I = 0; I < R.Types.size(); ++I) {
      if (I)
        Mid += "|";
      Mid += R.Types[I];
    }
  }
  if (!R.Props.empty()) {
    Mid += " {";
    bool First = true;
    for (const auto &[Key, Value] : R.Props) {
      if (!First)
        Mid += ", ";
      First = false;
      Mid += Key + ": '" + Value + "'";
    }
    Mid += "}";
  }
  if (R.VarLength) {
    uint32_t Max = R.Unbounded ? O.MaxHops : R.MaxHops;
    Mid += "*" + std::to_string(R.MinHops) + ".." + std::to_string(Max);
  }
  Mid += "]";
  return R.Reverse ? "<-" + Mid + "-" : "-" + Mid + "->";
}

std::vector<StepProfile> graphdb::planSteps(const Query &Q,
                                            const EngineOptions &O) {
  std::vector<StepProfile> Steps;
  for (size_t I = 0; I < Q.Matches.size(); ++I) {
    const MatchItem &M = Q.Matches[I];
    StepProfile Scan;
    Scan.Item = I;
    Scan.Pos = 0;
    Scan.Desc = "scan " + renderNode(M.Nodes[0]);
    if (!M.PathVar.empty())
      Scan.Desc += " [path " + M.PathVar + "]";
    Steps.push_back(std::move(Scan));
    for (size_t R = 0; R < M.Rels.size(); ++R) {
      StepProfile Exp;
      Exp.Item = I;
      Exp.Pos = R + 1;
      Exp.Desc = "expand " + renderRel(M.Rels[R], O) +
                 renderNode(M.Nodes[R + 1]);
      Steps.push_back(std::move(Exp));
    }
  }
  return Steps;
}

std::string graphdb::explainQuery(const Query &Q, const EngineOptions &O) {
  std::string Out;
  std::vector<StepProfile> Steps = planSteps(Q, O);
  size_t Idx = 0;
  for (const StepProfile &S : Steps) {
    if (S.Pos == 0 && S.Item > 0)
      Out += "\n";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "  step %zu: ", Idx++);
    Out += Buf + S.Desc + "\n";
  }
  if (!Q.Where.empty())
    Out += "  filter: " + std::to_string(Q.Where.size()) +
           " WHERE condition(s) applied per candidate row\n";
  if (Q.Distinct)
    Out += "  distinct: projected rows deduplicated\n";
  if (Q.Limit)
    Out += "  limit: " + std::to_string(Q.Limit) + "\n";
  return Out;
}

std::string graphdb::renderProfile(const QueryProfile &P) {
  std::string Out;
  for (size_t I = 0; I < P.Steps.size(); ++I) {
    const StepProfile &S = P.Steps[I];
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "  step %zu: %-58s candidates=%llu matches=%llu %.3fms\n",
                  I, S.Desc.c_str(),
                  static_cast<unsigned long long>(S.Candidates),
                  static_cast<unsigned long long>(S.Matches),
                  S.Seconds * 1e3);
    Out += Buf;
  }
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "  total: rows=%llu steps=%llu backtracks=%llu %.3fms%s\n",
                static_cast<unsigned long long>(P.Rows),
                static_cast<unsigned long long>(P.Work),
                static_cast<unsigned long long>(P.Backtracks),
                P.TotalSeconds * 1e3, P.TimedOut ? " (timed out)" : "");
  Out += Buf;
  return Out;
}

/// Per-run profiling context. Exclusive per-step time uses the classic
/// profiler scheme: a stack of active steps, and every enter/exit attributes
/// the wall-clock elapsed since the previous transition to the step that
/// was running.
struct QueryEngine::Profiler {
  QueryProfile *Out = nullptr;
  std::vector<size_t> ItemBase; ///< First step index of each MATCH item.
  std::vector<size_t> Stack;
  std::chrono::steady_clock::time_point Last;

  void start(QueryProfile *Profile, const Query &Q, const EngineOptions &O) {
    Out = Profile;
    Out->Steps = planSteps(Q, O);
    ItemBase.clear();
    size_t Base = 0;
    for (const MatchItem &M : Q.Matches) {
      ItemBase.push_back(Base);
      Base += 1 + M.Rels.size();
    }
    Last = std::chrono::steady_clock::now();
  }

  size_t step(size_t Item, size_t Pos) const { return ItemBase[Item] + Pos; }

  void mark() {
    auto Now = std::chrono::steady_clock::now();
    if (!Stack.empty())
      Out->Steps[Stack.back()].Seconds +=
          std::chrono::duration<double>(Now - Last).count();
    Last = Now;
  }

  void enter(size_t StepIdx) {
    mark();
    Stack.push_back(StepIdx);
  }

  void exit() {
    mark();
    Stack.pop_back();
  }

  void candidate(size_t StepIdx) { ++Out->Steps[StepIdx].Candidates; }
  void match(size_t StepIdx) { ++Out->Steps[StepIdx].Matches; }

  /// RAII enter/exit of one plan step (no-op without a profiler).
  struct Scope {
    Profiler *P;
    Scope(Profiler *P, size_t Item, size_t Pos) : P(P) {
      if (P)
        P->enter(P->step(Item, Pos));
    }
    ~Scope() {
      if (P)
        P->exit();
    }
  };
};

QueryEngine::QueryEngine(const PropertyGraph &Graph, EngineOptions O)
    : G(Graph), Options(O) {}

void QueryEngine::registerPathPredicate(const std::string &Name,
                                        PathPredicate Pred) {
  Predicates[Name] = std::move(Pred);
}

/// Mutable matcher state threaded through the backtracking search.
struct QueryEngine::MatchState {
  std::map<std::string, NodeHandle> NodeBindings;
  std::map<std::string, Path> PathBindings;
  /// Path accumulated for the current MatchItem.
  Path CurrentPath;
  /// Projected rows already emitted (RETURN DISTINCT).
  std::set<std::vector<std::string>> SeenRows;
  uint64_t Work = 0;
  uint64_t Bindings = 0;   ///< Candidate variable binds (obs counter).
  uint64_t Backtracks = 0; ///< Path-element pops during segment walks.
  bool Aborted = false;
  bool RowLimitHit = false;
  /// Non-null in PROFILE mode only.
  Profiler *Prof = nullptr;
};

bool QueryEngine::nodeMatches(NodeHandle H, const NodePattern &Pat) const {
  const StoredNode &N = G.node(H);
  if (!Pat.Label.empty() && N.Label != Pat.Label)
    return false;
  for (const auto &[Key, Value] : Pat.Props) {
    auto It = N.Props.find(Key);
    if (It == N.Props.end() || It->second != Value)
      return false;
  }
  return true;
}

bool QueryEngine::relTypeMatches(RelHandle H, const RelPattern &Pat) const {
  const StoredRel &R = G.rel(H);
  if (!Pat.Types.empty() &&
      std::find(Pat.Types.begin(), Pat.Types.end(), R.Type) ==
          Pat.Types.end())
    return false;
  for (const auto &[Key, Value] : Pat.Props) {
    auto It = R.Props.find(Key);
    if (It == R.Props.end() || It->second != Value)
      return false;
  }
  return true;
}

bool QueryEngine::evalWhere(const Query &Q, const MatchState &State) const {
  for (const Condition &C : Q.Where) {
    bool Holds = false;
    if (C.K == Condition::Kind::Compare) {
      auto LIt = State.NodeBindings.find(C.LHSVar);
      if (LIt == State.NodeBindings.end())
        return false;
      const std::string &LHS = G.prop(LIt->second, C.LHSKey);
      std::string RHS;
      if (C.RHSIsLiteral) {
        RHS = C.RHSLiteral;
      } else {
        auto RIt = State.NodeBindings.find(C.RHSVar);
        if (RIt == State.NodeBindings.end())
          return false;
        RHS = G.prop(RIt->second, C.RHSKey);
      }
      Holds = C.NotEqual ? LHS != RHS : LHS == RHS;
    } else {
      auto PIt = Predicates.find(C.PredName);
      auto AIt = State.PathBindings.find(C.PredArg);
      if (PIt == Predicates.end() || AIt == State.PathBindings.end())
        return false;
      Holds = PIt->second(AIt->second, G);
    }
    if (C.Negated)
      Holds = !Holds;
    if (!Holds)
      return false;
  }
  return true;
}

void QueryEngine::emitRow(const Query &Q, MatchState &State, ResultSet &Out) {
  if (!evalWhere(Q, State))
    return;
  ResultRow Row;
  Row.NodeBindings = State.NodeBindings;
  Row.PathBindings = State.PathBindings;
  for (const ReturnItem &R : Q.Returns) {
    auto NIt = State.NodeBindings.find(R.Var);
    if (NIt != State.NodeBindings.end()) {
      Row.Values.push_back(R.Key.empty() ? std::to_string(NIt->second)
                                         : G.prop(NIt->second, R.Key));
      continue;
    }
    auto PIt = State.PathBindings.find(R.Var);
    if (PIt != State.PathBindings.end()) {
      Row.Values.push_back("path[" + std::to_string(PIt->second.Rels.size()) +
                           "]");
      continue;
    }
    Row.Values.push_back("");
  }
  if (Q.Distinct && !State.SeenRows.insert(Row.Values).second)
    return;
  Out.Rows.push_back(std::move(Row));
  if (Options.MaxRows != 0 && Out.Rows.size() >= Options.MaxRows)
    State.RowLimitHit = true;
  if (Q.Limit != 0 && Out.Rows.size() >= Q.Limit)
    State.RowLimitHit = true;
}

void QueryEngine::matchItem(const Query &Q, size_t ItemIdx, MatchState &State,
                            ResultSet &Out) {
  if (State.Aborted || State.RowLimitHit)
    return;
  if (ItemIdx == Q.Matches.size()) {
    emitRow(Q, State, Out);
    return;
  }
  const MatchItem &M = Q.Matches[ItemIdx];
  const NodePattern &First = M.Nodes[0];
  Profiler::Scope Step(State.Prof, ItemIdx, 0);
  const size_t StepIdx = State.Prof ? State.Prof->step(ItemIdx, 0) : 0;

  auto StartWith = [&](NodeHandle H) {
    if (State.Prof)
      State.Prof->candidate(StepIdx);
    if (!nodeMatches(H, First))
      return;
    if (State.Prof)
      State.Prof->match(StepIdx);
    bool Bound = false;
    if (!First.Var.empty() && !State.NodeBindings.count(First.Var)) {
      State.NodeBindings[First.Var] = H;
      Bound = true;
      ++State.Bindings;
    }
    Path SavedPath = State.CurrentPath;
    State.CurrentPath = Path{{H}, {}};
    matchChain(Q, ItemIdx, 0, State, Out);
    State.CurrentPath = SavedPath;
    if (Bound)
      State.NodeBindings.erase(First.Var);
  };

  // Already-bound variable joins with the previous matches.
  if (!First.Var.empty() && State.NodeBindings.count(First.Var)) {
    StartWith(State.NodeBindings.at(First.Var));
    return;
  }
  for (NodeHandle H : G.nodesByLabel(First.Label)) {
    if (State.Aborted || State.RowLimitHit)
      return;
    ++State.Work;
    if (Options.WorkBudget != 0 && State.Work > Options.WorkBudget) {
      State.Aborted = true;
      return;
    }
    // The scan-level deadline bounds the whole pipeline; one checkpoint
    // per matcher step, aborting with the rows found so far.
    if (Options.ScanDeadline && Options.ScanDeadline->checkpoint()) {
      State.Aborted = true;
      return;
    }
    StartWith(H);
  }
}

void QueryEngine::matchChain(const Query &Q, size_t ItemIdx, size_t NodeIdx,
                             MatchState &State, ResultSet &Out) {
  if (State.Aborted || State.RowLimitHit)
    return;
  const MatchItem &M = Q.Matches[ItemIdx];
  if (NodeIdx == M.Rels.size()) {
    // Chain complete: bind the path variable and move to the next item.
    bool BoundPath = false;
    if (!M.PathVar.empty() && !State.PathBindings.count(M.PathVar)) {
      State.PathBindings[M.PathVar] = State.CurrentPath;
      BoundPath = true;
    }
    matchItem(Q, ItemIdx + 1, State, Out);
    if (BoundPath)
      State.PathBindings.erase(M.PathVar);
    return;
  }

  const RelPattern &R = M.Rels[NodeIdx];
  const NodePattern &NextPat = M.Nodes[NodeIdx + 1];
  NodeHandle From = State.CurrentPath.Nodes.back();
  Profiler::Scope Step(State.Prof, ItemIdx, NodeIdx + 1);
  const size_t StepIdx = State.Prof ? State.Prof->step(ItemIdx, NodeIdx + 1) : 0;

  uint32_t MinHops = R.VarLength ? R.MinHops : 1;
  uint32_t MaxHops =
      R.VarLength ? (R.Unbounded ? Options.MaxHops : R.MaxHops) : 1;

  // DFS over hop sequences of length [MinHops, MaxHops]; relationships may
  // not repeat within one segment (Cypher's relationship isomorphism).
  // With a registered path fold, (node, foldState) pairs are visited once
  // per segment walk — the planner-style pruning that keeps variable-
  // length matching polynomial.
  std::map<std::pair<NodeHandle, int64_t>, bool> Visited;

  std::function<void(NodeHandle, uint32_t, int64_t)> Walk =
      [&](NodeHandle Cur, uint32_t Hops, int64_t FoldState) {
    if (State.Aborted || State.RowLimitHit)
      return;
    ++State.Work;
    if (Options.WorkBudget != 0 && State.Work > Options.WorkBudget) {
      State.Aborted = true;
      return;
    }
    if (Options.ScanDeadline && Options.ScanDeadline->checkpoint()) {
      State.Aborted = true;
      return;
    }
    // Every walked endpoint is one candidate for this step (a `*0..`
    // segment can accept its start node with no extension at all, so
    // counting attempted extensions instead would undercount).
    if (State.Prof)
      State.Prof->candidate(StepIdx);
    if (Hops >= MinHops && nodeMatches(Cur, NextPat)) {
      // Accept this endpoint; bind the next node pattern variable.
      if (State.Prof)
        State.Prof->match(StepIdx);
      bool Bound = false;
      bool Compatible = true;
      if (!NextPat.Var.empty()) {
        auto It = State.NodeBindings.find(NextPat.Var);
        if (It != State.NodeBindings.end()) {
          Compatible = It->second == Cur;
        } else {
          State.NodeBindings[NextPat.Var] = Cur;
          Bound = true;
          ++State.Bindings;
        }
      }
      if (Compatible)
        matchChain(Q, ItemIdx, NodeIdx + 1, State, Out);
      if (Bound)
        State.NodeBindings.erase(NextPat.Var);
    }
    if (Hops >= MaxHops)
      return;
    // `<-[...]-` walks against edge direction: candidate relationships
    // come from the in-adjacency and continue at their From endpoint.
    const std::vector<RelHandle> &Adjacent =
        R.Reverse ? G.in(Cur) : G.out(Cur);
    for (RelHandle RH : Adjacent) {
      if (!relTypeMatches(RH, R))
        continue;
      if (std::find(State.CurrentPath.Rels.begin(),
                    State.CurrentPath.Rels.end(),
                    RH) != State.CurrentPath.Rels.end())
        continue; // No repeated relationships within a path.
      NodeHandle Next = R.Reverse ? G.rel(RH).From : G.rel(RH).To;
      int64_t NextState = 0;
      if (R.VarLength && Fold_) {
        NextState = Fold_(FoldState, G.rel(RH));
        if (NextState < 0)
          continue; // Fold pruned this extension.
        auto Key = std::make_pair(Next, NextState);
        if (Visited.count(Key))
          continue;
        Visited[Key] = true;
      }
      State.CurrentPath.Rels.push_back(RH);
      State.CurrentPath.Nodes.push_back(Next);
      Walk(Next, Hops + 1, NextState);
      State.CurrentPath.Nodes.pop_back();
      State.CurrentPath.Rels.pop_back();
      ++State.Backtracks;
    }
  };

  Walk(From, 0, 0);
}

ResultSet QueryEngine::run(const Query &Q, QueryProfile *Profile) {
  ResultSet Out;
  MatchState State;
  Profiler Prof;
  if (Profile) {
    *Profile = QueryProfile();
    Prof.start(Profile, Q, Options);
    State.Prof = &Prof;
  }
  auto Start = std::chrono::steady_clock::now();
  matchItem(Q, 0, State, Out);
  Out.TimedOut = State.Aborted;
  Out.Work = State.Work;
  if (Profile) {
    Prof.mark();
    Profile->TotalSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count();
    Profile->Work = State.Work;
    Profile->Backtracks = State.Backtracks;
    Profile->Rows = Out.Rows.size();
    Profile->TimedOut = Out.TimedOut;
  }
  obs::counters::QuerySteps.add(State.Work);
  obs::counters::QueryBindings.add(State.Bindings);
  obs::counters::QueryBacktracks.add(State.Backtracks);
  obs::counters::QueryRows.add(Out.Rows.size());
  return Out;
}

ResultSet QueryEngine::run(const std::string &QueryText, std::string *Error,
                           QueryProfile *Profile) {
  Query Q;
  if (!parseQuery(QueryText, Q, Error))
    return ResultSet();
  return run(Q, Profile);
}
