//===- graphdb/QueryEngine.cpp - Query evaluation --------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "graphdb/QueryEngine.h"

#include "support/Deadline.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace gjs;
using namespace gjs::graphdb;

QueryEngine::QueryEngine(const PropertyGraph &Graph, EngineOptions O)
    : G(Graph), Options(O) {}

void QueryEngine::registerPathPredicate(const std::string &Name,
                                        PathPredicate Pred) {
  Predicates[Name] = std::move(Pred);
}

/// Mutable matcher state threaded through the backtracking search.
struct QueryEngine::MatchState {
  std::map<std::string, NodeHandle> NodeBindings;
  std::map<std::string, Path> PathBindings;
  /// Path accumulated for the current MatchItem.
  Path CurrentPath;
  /// Projected rows already emitted (RETURN DISTINCT).
  std::set<std::vector<std::string>> SeenRows;
  uint64_t Work = 0;
  bool Aborted = false;
  bool RowLimitHit = false;
};

bool QueryEngine::nodeMatches(NodeHandle H, const NodePattern &Pat) const {
  const StoredNode &N = G.node(H);
  if (!Pat.Label.empty() && N.Label != Pat.Label)
    return false;
  for (const auto &[Key, Value] : Pat.Props) {
    auto It = N.Props.find(Key);
    if (It == N.Props.end() || It->second != Value)
      return false;
  }
  return true;
}

bool QueryEngine::relTypeMatches(RelHandle H, const RelPattern &Pat) const {
  const StoredRel &R = G.rel(H);
  if (!Pat.Types.empty() &&
      std::find(Pat.Types.begin(), Pat.Types.end(), R.Type) ==
          Pat.Types.end())
    return false;
  for (const auto &[Key, Value] : Pat.Props) {
    auto It = R.Props.find(Key);
    if (It == R.Props.end() || It->second != Value)
      return false;
  }
  return true;
}

bool QueryEngine::evalWhere(const Query &Q, const MatchState &State) const {
  for (const Condition &C : Q.Where) {
    bool Holds = false;
    if (C.K == Condition::Kind::Compare) {
      auto LIt = State.NodeBindings.find(C.LHSVar);
      if (LIt == State.NodeBindings.end())
        return false;
      const std::string &LHS = G.prop(LIt->second, C.LHSKey);
      std::string RHS;
      if (C.RHSIsLiteral) {
        RHS = C.RHSLiteral;
      } else {
        auto RIt = State.NodeBindings.find(C.RHSVar);
        if (RIt == State.NodeBindings.end())
          return false;
        RHS = G.prop(RIt->second, C.RHSKey);
      }
      Holds = C.NotEqual ? LHS != RHS : LHS == RHS;
    } else {
      auto PIt = Predicates.find(C.PredName);
      auto AIt = State.PathBindings.find(C.PredArg);
      if (PIt == Predicates.end() || AIt == State.PathBindings.end())
        return false;
      Holds = PIt->second(AIt->second, G);
    }
    if (C.Negated)
      Holds = !Holds;
    if (!Holds)
      return false;
  }
  return true;
}

void QueryEngine::emitRow(const Query &Q, MatchState &State, ResultSet &Out) {
  if (!evalWhere(Q, State))
    return;
  ResultRow Row;
  Row.NodeBindings = State.NodeBindings;
  Row.PathBindings = State.PathBindings;
  for (const ReturnItem &R : Q.Returns) {
    auto NIt = State.NodeBindings.find(R.Var);
    if (NIt != State.NodeBindings.end()) {
      Row.Values.push_back(R.Key.empty() ? std::to_string(NIt->second)
                                         : G.prop(NIt->second, R.Key));
      continue;
    }
    auto PIt = State.PathBindings.find(R.Var);
    if (PIt != State.PathBindings.end()) {
      Row.Values.push_back("path[" + std::to_string(PIt->second.Rels.size()) +
                           "]");
      continue;
    }
    Row.Values.push_back("");
  }
  if (Q.Distinct && !State.SeenRows.insert(Row.Values).second)
    return;
  Out.Rows.push_back(std::move(Row));
  if (Options.MaxRows != 0 && Out.Rows.size() >= Options.MaxRows)
    State.RowLimitHit = true;
  if (Q.Limit != 0 && Out.Rows.size() >= Q.Limit)
    State.RowLimitHit = true;
}

void QueryEngine::matchItem(const Query &Q, size_t ItemIdx, MatchState &State,
                            ResultSet &Out) {
  if (State.Aborted || State.RowLimitHit)
    return;
  if (ItemIdx == Q.Matches.size()) {
    emitRow(Q, State, Out);
    return;
  }
  const MatchItem &M = Q.Matches[ItemIdx];
  const NodePattern &First = M.Nodes[0];

  auto StartWith = [&](NodeHandle H) {
    if (!nodeMatches(H, First))
      return;
    bool Bound = false;
    if (!First.Var.empty() && !State.NodeBindings.count(First.Var)) {
      State.NodeBindings[First.Var] = H;
      Bound = true;
    }
    Path SavedPath = State.CurrentPath;
    State.CurrentPath = Path{{H}, {}};
    matchChain(Q, ItemIdx, 0, State, Out);
    State.CurrentPath = SavedPath;
    if (Bound)
      State.NodeBindings.erase(First.Var);
  };

  // Already-bound variable joins with the previous matches.
  if (!First.Var.empty() && State.NodeBindings.count(First.Var)) {
    StartWith(State.NodeBindings.at(First.Var));
    return;
  }
  for (NodeHandle H : G.nodesByLabel(First.Label)) {
    if (State.Aborted || State.RowLimitHit)
      return;
    ++State.Work;
    if (Options.WorkBudget != 0 && State.Work > Options.WorkBudget) {
      State.Aborted = true;
      return;
    }
    // The scan-level deadline bounds the whole pipeline; one checkpoint
    // per matcher step, aborting with the rows found so far.
    if (Options.ScanDeadline && Options.ScanDeadline->checkpoint()) {
      State.Aborted = true;
      return;
    }
    StartWith(H);
  }
}

void QueryEngine::matchChain(const Query &Q, size_t ItemIdx, size_t NodeIdx,
                             MatchState &State, ResultSet &Out) {
  if (State.Aborted || State.RowLimitHit)
    return;
  const MatchItem &M = Q.Matches[ItemIdx];
  if (NodeIdx == M.Rels.size()) {
    // Chain complete: bind the path variable and move to the next item.
    bool BoundPath = false;
    if (!M.PathVar.empty() && !State.PathBindings.count(M.PathVar)) {
      State.PathBindings[M.PathVar] = State.CurrentPath;
      BoundPath = true;
    }
    matchItem(Q, ItemIdx + 1, State, Out);
    if (BoundPath)
      State.PathBindings.erase(M.PathVar);
    return;
  }

  const RelPattern &R = M.Rels[NodeIdx];
  const NodePattern &NextPat = M.Nodes[NodeIdx + 1];
  NodeHandle From = State.CurrentPath.Nodes.back();

  uint32_t MinHops = R.VarLength ? R.MinHops : 1;
  uint32_t MaxHops =
      R.VarLength ? (R.Unbounded ? Options.MaxHops : R.MaxHops) : 1;

  // DFS over hop sequences of length [MinHops, MaxHops]; relationships may
  // not repeat within one segment (Cypher's relationship isomorphism).
  // With a registered path fold, (node, foldState) pairs are visited once
  // per segment walk — the planner-style pruning that keeps variable-
  // length matching polynomial.
  std::map<std::pair<NodeHandle, int64_t>, bool> Visited;

  std::function<void(NodeHandle, uint32_t, int64_t)> Walk =
      [&](NodeHandle Cur, uint32_t Hops, int64_t FoldState) {
    if (State.Aborted || State.RowLimitHit)
      return;
    ++State.Work;
    if (Options.WorkBudget != 0 && State.Work > Options.WorkBudget) {
      State.Aborted = true;
      return;
    }
    if (Options.ScanDeadline && Options.ScanDeadline->checkpoint()) {
      State.Aborted = true;
      return;
    }
    if (Hops >= MinHops && nodeMatches(Cur, NextPat)) {
      // Accept this endpoint; bind the next node pattern variable.
      bool Bound = false;
      bool Compatible = true;
      if (!NextPat.Var.empty()) {
        auto It = State.NodeBindings.find(NextPat.Var);
        if (It != State.NodeBindings.end()) {
          Compatible = It->second == Cur;
        } else {
          State.NodeBindings[NextPat.Var] = Cur;
          Bound = true;
        }
      }
      if (Compatible)
        matchChain(Q, ItemIdx, NodeIdx + 1, State, Out);
      if (Bound)
        State.NodeBindings.erase(NextPat.Var);
    }
    if (Hops >= MaxHops)
      return;
    // `<-[...]-` walks against edge direction: candidate relationships
    // come from the in-adjacency and continue at their From endpoint.
    const std::vector<RelHandle> &Adjacent =
        R.Reverse ? G.in(Cur) : G.out(Cur);
    for (RelHandle RH : Adjacent) {
      if (!relTypeMatches(RH, R))
        continue;
      if (std::find(State.CurrentPath.Rels.begin(),
                    State.CurrentPath.Rels.end(),
                    RH) != State.CurrentPath.Rels.end())
        continue; // No repeated relationships within a path.
      NodeHandle Next = R.Reverse ? G.rel(RH).From : G.rel(RH).To;
      int64_t NextState = 0;
      if (R.VarLength && Fold_) {
        NextState = Fold_(FoldState, G.rel(RH));
        if (NextState < 0)
          continue; // Fold pruned this extension.
        auto Key = std::make_pair(Next, NextState);
        if (Visited.count(Key))
          continue;
        Visited[Key] = true;
      }
      State.CurrentPath.Rels.push_back(RH);
      State.CurrentPath.Nodes.push_back(Next);
      Walk(Next, Hops + 1, NextState);
      State.CurrentPath.Nodes.pop_back();
      State.CurrentPath.Rels.pop_back();
    }
  };

  Walk(From, 0, 0);
}

ResultSet QueryEngine::run(const Query &Q) {
  ResultSet Out;
  MatchState State;
  matchItem(Q, 0, State, Out);
  Out.TimedOut = State.Aborted;
  Out.Work = State.Work;
  return Out;
}

ResultSet QueryEngine::run(const std::string &QueryText, std::string *Error) {
  Query Q;
  if (!parseQuery(QueryText, Q, Error))
    return ResultSet();
  return run(Q);
}
