//===- graphdb/PropertyGraph.cpp - Labeled property graph ------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "graphdb/PropertyGraph.h"

#include <cassert>

using namespace gjs;
using namespace gjs::graphdb;

NodeHandle PropertyGraph::addNode(std::string Label,
                                  std::map<std::string, std::string> Props) {
  NodeHandle H = static_cast<NodeHandle>(Nodes.size());
  Nodes.push_back({std::move(Label), std::move(Props)});
  Out.emplace_back();
  In.emplace_back();
  return H;
}

RelHandle PropertyGraph::addRel(NodeHandle From, NodeHandle To,
                                std::string Type,
                                std::map<std::string, std::string> Props) {
  if (From >= Nodes.size() || To >= Nodes.size())
    return InvalidHandle; // Reject bad endpoints instead of corrupting.
  RelHandle H = static_cast<RelHandle>(Rels.size());
  Rels.push_back({From, To, std::move(Type), std::move(Props)});
  Out[From].push_back(H);
  In[To].push_back(H);
  return H;
}

std::vector<NodeHandle>
PropertyGraph::nodesByLabel(const std::string &Label) const {
  std::vector<NodeHandle> Result;
  for (size_t I = 0; I < Nodes.size(); ++I)
    if (Label.empty() || Nodes[I].Label == Label)
      Result.push_back(static_cast<NodeHandle>(I));
  return Result;
}

const std::string &PropertyGraph::prop(NodeHandle H,
                                       const std::string &Key) const {
  static const std::string Empty;
  const auto &P = Nodes[H].Props;
  auto It = P.find(Key);
  return It == P.end() ? Empty : It->second;
}

const std::string &PropertyGraph::relProp(RelHandle H,
                                          const std::string &Key) const {
  static const std::string Empty;
  const auto &P = Rels[H].Props;
  auto It = P.find(Key);
  return It == P.end() ? Empty : It->second;
}
