//===- graphdb/SchemaLint.h - MDG import schema + query linting --*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable schema of MDGs as stored by `graphdb::importMDG`,
/// and a static linter that checks parsed queries against it.
///
/// A query with a typo'd edge type or property key is syntactically valid
/// and silently matches zero paths — for a vulnerability scanner, that is
/// the worst possible failure mode (it reports "no vulnerabilities"). The
/// linter turns those typos into diagnostics: unknown node labels, unknown
/// relationship types, property keys the importer never emits,
/// unsatisfiable hop bounds, unused MATCH bindings, and RETURN/WHERE items
/// referencing unbound variables.
///
/// The schema table in docs/QUERY_LANGUAGE.md is the human-readable view
/// of `mdgSchema()`; `importMDG` and the schema are kept in sync by the
/// import round-trip tests.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_GRAPHDB_SCHEMALINT_H
#define GJS_GRAPHDB_SCHEMALINT_H

#include "graphdb/Query.h"
#include "support/Diagnostics.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gjs {
namespace graphdb {

/// The property-graph schema one importer emits: which node labels and
/// relationship types exist, and which property keys each carries.
struct GraphSchema {
  /// Node label -> property keys emitted for nodes of that label.
  std::map<std::string, std::set<std::string>> NodeProps;
  /// Relationship type -> property keys emitted for rels of that type.
  std::map<std::string, std::set<std::string>> RelProps;

  bool hasNodeLabel(const std::string &Label) const {
    return NodeProps.count(Label) != 0;
  }
  bool hasRelType(const std::string &Type) const {
    return RelProps.count(Type) != 0;
  }
  /// True when some node label (any, or \p Label when nonempty) emits
  /// property \p Key.
  bool nodeHasProp(const std::string &Label, const std::string &Key) const;
  /// True when some relationship type in \p Types (all types when empty)
  /// emits property \p Key.
  bool relHasProp(const std::vector<std::string> &Types,
                  const std::string &Key) const;
};

/// The schema `importMDG` (MDGImport.cpp) writes. This is the single
/// machine-readable description every query — built-in or ad-hoc — is
/// linted against.
const GraphSchema &mdgSchema();

/// One schema-lint issue. Reuses the diagnostic severity scale; `Code`
/// is a stable check identifier like "query.unknown-rel-type".
struct SchemaIssue {
  DiagSeverity Severity = DiagSeverity::Error;
  std::string Code;
  std::string Message;

  std::string str() const;
};

/// Lints a parsed query against \p Schema. Returns all issues found
/// (empty = clean). Error-severity issues mean the query can never match
/// anything the importer stores (or references variables it never binds).
std::vector<SchemaIssue> lintQuery(const Query &Q, const GraphSchema &Schema);

/// Parses and lints query text in one step. A parse failure is reported
/// as a single error-severity issue with code "query.parse-error".
std::vector<SchemaIssue> lintQueryText(const std::string &Text,
                                       const GraphSchema &Schema);

/// True when \p Issues contains an error-severity issue.
bool hasSchemaError(const std::vector<SchemaIssue> &Issues);

} // namespace graphdb
} // namespace gjs

#endif // GJS_GRAPHDB_SCHEMALINT_H
