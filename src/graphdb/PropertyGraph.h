//===- graphdb/PropertyGraph.h - Labeled property graph ----------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory labeled property graph — the storage model of the graph
/// database that stands in for Neo4j (§4: "Graph.js ... stores [the MDG]
/// in a Neo4j graph database" and queries it with Cypher).
///
/// Nodes carry one label (e.g. "Object", "Call") and string properties;
/// relationships carry a type (e.g. "D", "P", "V") and string properties.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_GRAPHDB_PROPERTYGRAPH_H
#define GJS_GRAPHDB_PROPERTYGRAPH_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gjs {
namespace graphdb {

using NodeHandle = uint32_t;
using RelHandle = uint32_t;
constexpr NodeHandle InvalidHandle = static_cast<NodeHandle>(-1);

/// One stored node.
struct StoredNode {
  std::string Label;
  std::map<std::string, std::string> Props;
};

/// One stored relationship (directed).
struct StoredRel {
  NodeHandle From = InvalidHandle;
  NodeHandle To = InvalidHandle;
  std::string Type;
  std::map<std::string, std::string> Props;
};

/// The graph store. Append-only, like the analysis pipeline needs.
class PropertyGraph {
public:
  NodeHandle addNode(std::string Label,
                     std::map<std::string, std::string> Props = {});
  /// Adds a relationship; returns InvalidHandle when an endpoint is out of
  /// range (the caller imported a malformed graph).
  RelHandle addRel(NodeHandle From, NodeHandle To, std::string Type,
                   std::map<std::string, std::string> Props = {});

  size_t numNodes() const { return Nodes.size(); }
  size_t numRels() const { return Rels.size(); }

  const StoredNode &node(NodeHandle H) const { return Nodes[H]; }
  StoredNode &node(NodeHandle H) { return Nodes[H]; }
  const StoredRel &rel(RelHandle H) const { return Rels[H]; }

  /// Outgoing / incoming relationship handles of a node.
  const std::vector<RelHandle> &out(NodeHandle H) const { return Out[H]; }
  const std::vector<RelHandle> &in(NodeHandle H) const { return In[H]; }

  /// All node handles with the given label ("" = all nodes).
  std::vector<NodeHandle> nodesByLabel(const std::string &Label) const;

  /// Property access with "" default.
  const std::string &prop(NodeHandle H, const std::string &Key) const;
  const std::string &relProp(RelHandle H, const std::string &Key) const;

private:
  std::vector<StoredNode> Nodes;
  std::vector<StoredRel> Rels;
  std::vector<std::vector<RelHandle>> Out;
  std::vector<std::vector<RelHandle>> In;
};

} // namespace graphdb
} // namespace gjs

#endif // GJS_GRAPHDB_PROPERTYGRAPH_H
