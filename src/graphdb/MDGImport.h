//===- graphdb/MDGImport.h - MDG to property-graph import --------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imports a Multiversion Dependency Graph into the property-graph store —
/// the counterpart of Graph.js's "importing the MDG into a graph database"
/// step (§4). Node labels, relationship types, and property names form the
/// schema the vulnerability queries are written against:
///
///   Nodes:  (:Object {taint, label, line, site})
///           (:Call   {name, path, line})
///   Rels:   [:D]  [:P {name}]  [:PU]  [:V {name}]  [:VU]
///
//===----------------------------------------------------------------------===//

#ifndef GJS_GRAPHDB_MDGIMPORT_H
#define GJS_GRAPHDB_MDGIMPORT_H

#include "graphdb/PropertyGraph.h"
#include "mdg/MDG.h"
#include "support/StringInterner.h"

#include <vector>

namespace gjs {

class Deadline;

namespace graphdb {

/// Result of an import: the store plus the MDG→store node mapping.
struct ImportedMDG {
  PropertyGraph Graph;
  /// mdg::NodeId → NodeHandle (ids coincide by construction, but callers
  /// should not rely on it).
  std::vector<NodeHandle> NodeOf;
  /// True when a scan deadline expired mid-import: the store holds a
  /// partial graph (all nodes imported so far; possibly missing edges).
  /// Queries over it are sound-but-incomplete — the paper's partial-results
  /// behavior under the per-package timeout.
  bool Truncated = false;
};

/// Imports \p MDG (with property names from \p Props) into a fresh store.
/// A scan-level \p ScanDeadline is checkpointed per node and edge; on
/// expiry the import stops, returning the partial store with Truncated set.
ImportedMDG importMDG(const mdg::Graph &MDG, const StringInterner &Props,
                      Deadline *ScanDeadline = nullptr);

} // namespace graphdb
} // namespace gjs

#endif // GJS_GRAPHDB_MDGIMPORT_H
