//===- graphdb/QueryParser.cpp - Query language parser ---------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "graphdb/Query.h"

#include <cctype>

using namespace gjs;
using namespace gjs::graphdb;

namespace {

/// Hand-rolled tokenizer + recursive-descent parser for the query grammar.
class QueryParser {
public:
  explicit QueryParser(const std::string &Text) : Text(Text) {}

  bool parse(Query &Out, std::string *Error) {
    bool Ok = parseQueryBody(Out);
    if (!Ok && Error)
      *Error = Err.empty() ? "malformed query" : Err;
    return Ok;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  std::string Err;

  bool fail(const std::string &Message) {
    if (Err.empty())
      Err = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWS() {
    while (Pos < Text.size() &&
           (std::isspace(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '\n'))
      ++Pos;
    // Line comments: // ... end of line.
    if (Pos + 1 < Text.size() && Text[Pos] == '/' && Text[Pos + 1] == '/') {
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
      skipWS();
    }
  }

  char peek() {
    skipWS();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool consume(char C) {
    if (peek() != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool tryConsume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }

  /// Case-insensitive keyword lookahead.
  bool peekKeyword(const char *KW) {
    skipWS();
    size_t Len = std::char_traits<char>::length(KW);
    if (Pos + Len > Text.size())
      return false;
    for (size_t I = 0; I < Len; ++I)
      if (std::toupper(static_cast<unsigned char>(Text[Pos + I])) != KW[I])
        return false;
    // Must not continue as identifier.
    if (Pos + Len < Text.size() &&
        (std::isalnum(static_cast<unsigned char>(Text[Pos + Len])) ||
         Text[Pos + Len] == '_'))
      return false;
    return true;
  }

  bool consumeKeyword(const char *KW) {
    if (!peekKeyword(KW))
      return fail(std::string("expected keyword ") + KW);
    Pos += std::char_traits<char>::length(KW);
    return true;
  }

  std::string ident() {
    skipWS();
    std::string Out;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '$'))
      Out += Text[Pos++];
    return Out;
  }

  bool stringLiteral(std::string &Out) {
    skipWS();
    char Quote = peek();
    if (Quote != '\'' && Quote != '"')
      return fail("expected string literal");
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != Quote) {
      if (Text[Pos] == '\\' && Pos + 1 < Text.size())
        ++Pos;
      Out += Text[Pos++];
    }
    if (Pos >= Text.size())
      return fail("unterminated string literal");
    ++Pos;
    return true;
  }

  bool number(uint64_t &Out) {
    skipWS();
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected number");
    Out = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      Out = Out * 10 + static_cast<uint64_t>(Text[Pos++] - '0');
    return true;
  }

  bool parseProps(std::map<std::string, std::string> &Props) {
    if (!tryConsume('{'))
      return true;
    while (true) {
      std::string Key = ident();
      if (Key.empty())
        return fail("expected property key");
      if (!consume(':'))
        return false;
      std::string Value;
      if (!stringLiteral(Value))
        return false;
      Props[Key] = Value;
      if (tryConsume(','))
        continue;
      break;
    }
    return consume('}');
  }

  bool parseNodePattern(NodePattern &N) {
    if (!consume('('))
      return false;
    if (peek() != ':' && peek() != ')' && peek() != '{')
      N.Var = ident();
    if (tryConsume(':'))
      N.Label = ident();
    if (!parseProps(N.Props))
      return false;
    return consume(')');
  }

  bool parseRelPattern(RelPattern &R) {
    // `<-[...]-` reverse form or `-[...]->` forward form.
    if (peek() == '<') {
      ++Pos;
      R.Reverse = true;
    }
    if (!consume('-') || !consume('['))
      return false;
    if (peek() != ':' && peek() != '*' && peek() != ']' && peek() != '{')
      R.Var = ident();
    if (tryConsume(':')) {
      R.Types.push_back(ident());
      while (tryConsume('|'))
        R.Types.push_back(ident());
    }
    if (peek() == '{' && !parseProps(R.Props))
      return false;
    if (tryConsume('*')) {
      R.VarLength = true;
      R.MinHops = 0;
      R.Unbounded = true;
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        uint64_t N = 0;
        if (!number(N))
          return false;
        R.MinHops = static_cast<uint32_t>(N);
        R.MaxHops = R.MinHops;
        R.Unbounded = false;
      }
      if (tryConsume('.')) {
        if (!consume('.'))
          return false;
        R.Unbounded = true;
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
          uint64_t N = 0;
          if (!number(N))
            return false;
          R.MaxHops = static_cast<uint32_t>(N);
          R.Unbounded = false;
        }
      }
    }
    if (peek() == '{' && !parseProps(R.Props))
      return false;
    if (!consume(']') || !consume('-'))
      return false;
    if (R.Reverse)
      return true; // `<-[...]-` has no trailing '>'.
    return consume('>');
  }

  bool parseMatchItem(MatchItem &M) {
    // Optional `p = (...)` path binding.
    size_t Save = Pos;
    std::string MaybeVar = ident();
    if (!MaybeVar.empty() && peek() == '=') {
      ++Pos; // '='
      M.PathVar = MaybeVar;
    } else {
      Pos = Save;
    }
    NodePattern First;
    if (!parseNodePattern(First))
      return false;
    M.Nodes.push_back(std::move(First));
    while (peek() == '-' || peek() == '<') {
      RelPattern R;
      if (!parseRelPattern(R))
        return false;
      NodePattern N;
      if (!parseNodePattern(N))
        return false;
      M.Rels.push_back(std::move(R));
      M.Nodes.push_back(std::move(N));
    }
    return true;
  }

  bool parseCondition(Condition &C) {
    if (peekKeyword("NOT")) {
      consumeKeyword("NOT");
      C.Negated = true;
    }
    size_t Save = Pos;
    std::string Name = ident();
    if (Name.empty())
      return fail("expected condition");
    if (peek() == '(') {
      // Path predicate: pred(p).
      ++Pos;
      C.K = Condition::Kind::PathPredicate;
      C.PredName = Name;
      C.PredArg = ident();
      return consume(')');
    }
    Pos = Save;
    C.K = Condition::Kind::Compare;
    C.LHSVar = ident();
    if (!consume('.'))
      return false;
    C.LHSKey = ident();
    skipWS();
    if (tryConsume('=')) {
      C.NotEqual = false;
    } else if (peek() == '<') {
      ++Pos;
      if (!consume('>'))
        return false;
      C.NotEqual = true;
    } else {
      return fail("expected '=' or '<>'");
    }
    skipWS();
    if (peek() == '\'' || peek() == '"') {
      C.RHSIsLiteral = true;
      return stringLiteral(C.RHSLiteral);
    }
    C.RHSIsLiteral = false;
    C.RHSVar = ident();
    if (!consume('.'))
      return false;
    C.RHSKey = ident();
    return true;
  }

  bool parseQueryBody(Query &Q) {
    if (!consumeKeyword("MATCH"))
      return false;
    while (true) {
      MatchItem M;
      if (!parseMatchItem(M))
        return false;
      Q.Matches.push_back(std::move(M));
      if (tryConsume(','))
        continue;
      break;
    }
    if (peekKeyword("WHERE")) {
      consumeKeyword("WHERE");
      while (true) {
        Condition C;
        if (!parseCondition(C))
          return false;
        Q.Where.push_back(std::move(C));
        if (peekKeyword("AND")) {
          consumeKeyword("AND");
          continue;
        }
        break;
      }
    }
    if (!consumeKeyword("RETURN"))
      return false;
    if (peekKeyword("DISTINCT")) {
      consumeKeyword("DISTINCT");
      Q.Distinct = true;
    }
    while (true) {
      ReturnItem R;
      R.Var = ident();
      if (R.Var.empty())
        return fail("expected return item");
      if (tryConsume('.'))
        R.Key = ident();
      Q.Returns.push_back(std::move(R));
      if (tryConsume(','))
        continue;
      break;
    }
    if (peekKeyword("LIMIT")) {
      consumeKeyword("LIMIT");
      if (!number(Q.Limit))
        return false;
    }
    skipWS();
    if (Pos != Text.size())
      return fail("trailing input after query");
    return true;
  }
};

} // namespace

bool graphdb::parseQuery(const std::string &Text, Query &Out,
                         std::string *Error) {
  return QueryParser(Text).parse(Out, Error);
}
