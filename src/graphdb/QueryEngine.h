//===- graphdb/QueryEngine.h - Query evaluation ------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backtracking evaluator for the Cypher-like query language over a
/// PropertyGraph. This is the interpreted engine standing in for Neo4j:
/// per §5.4 the paper attributes Graph.js's slower taint traversals to
/// "Neo4j's query engine, which is slower" than ODGen's native Python
/// traversals — our benchmarks reproduce exactly that cost structure by
/// routing the scanner's queries through this evaluator.
///
/// Host code can register named *path predicates* callable from WHERE
/// (e.g. `WHERE untainted(p)`), which is how the UntaintedPath filter of
/// Table 1 is expressed without exploding the query grammar.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_GRAPHDB_QUERYENGINE_H
#define GJS_GRAPHDB_QUERYENGINE_H

#include "graphdb/PropertyGraph.h"
#include "graphdb/Query.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace gjs {

class Deadline;

namespace obs {
class TraceRecorder;
}

namespace graphdb {

/// A matched path through the graph.
struct Path {
  std::vector<NodeHandle> Nodes;
  std::vector<RelHandle> Rels;
};

/// One result row: projected strings plus the raw bindings.
struct ResultRow {
  std::vector<std::string> Values;
  std::map<std::string, NodeHandle> NodeBindings;
  std::map<std::string, Path> PathBindings;
};

/// Query results.
struct ResultSet {
  std::vector<ResultRow> Rows;
  bool TimedOut = false;
  uint64_t Work = 0; ///< Matcher steps taken (the engine's cost metric).
};

/// One step of the compiled pattern plan: either the initial label scan of
/// a MATCH item (Pos == 0) or the expansion of relationship segment
/// Pos - 1. This is the unit EXPLAIN prints and PROFILE annotates.
struct StepProfile {
  size_t Item = 0; ///< MATCH item index.
  size_t Pos = 0;  ///< 0 = node scan; k = k-th relationship segment.
  std::string Desc; ///< Rendered pattern, e.g. "-[:D|P*0..24]->(arg)".
  uint64_t Candidates = 0; ///< Nodes scanned / extensions attempted.
  uint64_t Matches = 0;    ///< Candidates that satisfied the pattern.
  double Seconds = 0;      ///< Exclusive time spent in this step.
};

/// A profiled query run (`graphjs query --profile`): the §5.4 interpreted-
/// engine cost model as data — which plan step the matcher steps and the
/// wall-clock went to.
struct QueryProfile {
  std::vector<StepProfile> Steps; ///< Plan order (item-major).
  double TotalSeconds = 0;
  uint64_t Work = 0;       ///< Total matcher steps.
  uint64_t Backtracks = 0; ///< Path-element pops during segment walks.
  uint64_t Rows = 0;
  bool TimedOut = false;
};

/// Renders a profile as an indented text table (one line per step).
std::string renderProfile(const QueryProfile &P);

/// Evaluator options.
struct EngineOptions {
  /// Hop cap for unbounded `*..` segments.
  uint32_t MaxHops = 24;
  /// Row cap (0 = unlimited).
  uint64_t MaxRows = 0;
  /// Matcher step budget (0 = unlimited) — models query timeouts.
  uint64_t WorkBudget = 0;
  /// Optional scan-level cancellation token (non-owning): the per-package
  /// deadline shared by every pipeline phase. Checkpointed per matcher
  /// step; on expiry matching aborts with the rows found so far
  /// (ResultSet::TimedOut is set, as for WorkBudget exhaustion).
  Deadline *ScanDeadline = nullptr;
  /// Optional span recorder (non-owning, branch-on-null): query-layer
  /// callers open one span per query under it (see queries::GraphDBRunner).
  obs::TraceRecorder *Trace = nullptr;
};

/// Renders the compiled pattern plan of \p Q without executing it
/// (`graphjs query --explain`): step order, label/property filters, and
/// variable-length segments with their effective hop bounds under \p O.
std::string explainQuery(const Query &Q, const EngineOptions &O = {});

/// The plan steps of \p Q in execution order, with rendered descriptors
/// and zeroed metrics (shared by explain and profile).
std::vector<StepProfile> planSteps(const Query &Q, const EngineOptions &O);

/// The query engine bound to one graph.
class QueryEngine {
public:
  using PathPredicate =
      std::function<bool(const Path &, const PropertyGraph &)>;

  explicit QueryEngine(const PropertyGraph &Graph, EngineOptions O = {});

  /// Registers a predicate callable from WHERE clauses as `name(pathVar)`.
  void registerPathPredicate(const std::string &Name, PathPredicate Pred);

  /// A fold over path relationships used to prune equivalent partial paths
  /// during variable-length matching (what a production graph database's
  /// planner does). The fold maps (state, next relationship) to the next
  /// state, or -1 to prune the extension entirely; walking revisits a node
  /// only under a previously unseen state. State 0 is the initial state.
  /// Registered folds must be consistent with the path predicates: two
  /// paths with equal fold states must be indistinguishable to them.
  using PathFold = std::function<int64_t(int64_t, const StoredRel &)>;
  void setPathFold(PathFold Fold) { Fold_ = std::move(Fold); }

  /// Parses and runs query text. On parse error, returns an empty set and
  /// fills \p Error. With \p Profile, per-step match counts and times are
  /// collected (the PROFILE mode — adds per-candidate bookkeeping, so
  /// leave it null on production scans).
  ResultSet run(const std::string &QueryText, std::string *Error = nullptr,
                QueryProfile *Profile = nullptr);

  /// Runs an already-parsed query, optionally profiled.
  ResultSet run(const Query &Q, QueryProfile *Profile = nullptr);

private:
  const PropertyGraph &G;
  EngineOptions Options;
  std::map<std::string, PathPredicate> Predicates;
  PathFold Fold_;

  struct MatchState;
  struct Profiler;
  void matchItem(const Query &Q, size_t ItemIdx, MatchState &State,
                 ResultSet &Out);
  void matchChain(const Query &Q, size_t ItemIdx, size_t NodeIdx,
                  MatchState &State, ResultSet &Out);
  void emitRow(const Query &Q, MatchState &State, ResultSet &Out);
  bool nodeMatches(NodeHandle H, const NodePattern &Pat) const;
  bool relTypeMatches(RelHandle H, const RelPattern &Pat) const;
  bool evalWhere(const Query &Q, const MatchState &State) const;
};

} // namespace graphdb
} // namespace gjs

#endif // GJS_GRAPHDB_QUERYENGINE_H
