//===- graphdb/SchemaLint.cpp - MDG import schema + query linting ----------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "graphdb/SchemaLint.h"

#include <sstream>

using namespace gjs;
using namespace gjs::graphdb;

bool GraphSchema::nodeHasProp(const std::string &Label,
                              const std::string &Key) const {
  if (!Label.empty()) {
    auto It = NodeProps.find(Label);
    return It != NodeProps.end() && It->second.count(Key) != 0;
  }
  for (const auto &[L, Keys] : NodeProps)
    if (Keys.count(Key))
      return true;
  return false;
}

bool GraphSchema::relHasProp(const std::vector<std::string> &Types,
                             const std::string &Key) const {
  if (Types.empty()) {
    for (const auto &[T, Keys] : RelProps)
      if (Keys.count(Key))
        return true;
    return false;
  }
  for (const std::string &T : Types) {
    auto It = RelProps.find(T);
    if (It != RelProps.end() && It->second.count(Key))
      return true;
  }
  return false;
}

const GraphSchema &graphdb::mdgSchema() {
  // Mirrors exactly what importMDG emits (see MDGImport.cpp); the
  // MDGImportTest round-trip tests keep the two in sync.
  static const GraphSchema S = [] {
    GraphSchema Schema;
    Schema.NodeProps["Object"] = {"label", "site", "line", "taint"};
    Schema.NodeProps["Call"] = {"label", "site", "line", "name", "path"};
    Schema.RelProps["D"] = {};
    Schema.RelProps["P"] = {"name"};
    Schema.RelProps["PU"] = {};
    Schema.RelProps["V"] = {"name"};
    Schema.RelProps["VU"] = {};
    return Schema;
  }();
  return S;
}

std::string SchemaIssue::str() const {
  std::ostringstream OS;
  OS << severityName(Severity) << ": " << Message;
  if (!Code.empty())
    OS << " [" << Code << "]";
  return OS.str();
}

bool graphdb::hasSchemaError(const std::vector<SchemaIssue> &Issues) {
  for (const SchemaIssue &I : Issues)
    if (I.Severity == DiagSeverity::Error)
      return true;
  return false;
}

namespace {

/// Joins known names for "did you mean one of ..." messages.
std::string knownList(const std::map<std::string, std::set<std::string>> &M) {
  std::string Out;
  for (const auto &[Name, Keys] : M) {
    if (!Out.empty())
      Out += ", ";
    Out += Name;
  }
  return Out;
}

class QueryLinter {
public:
  QueryLinter(const Query &Q, const GraphSchema &S) : Q(Q), S(S) {}

  std::vector<SchemaIssue> run() {
    collectBindings();
    checkPatterns();
    checkWhere();
    checkReturns();
    checkUnusedBindings();
    return std::move(Issues);
  }

private:
  const Query &Q;
  const GraphSchema &S;
  std::vector<SchemaIssue> Issues;

  // Variable kinds bound by MATCH.
  std::map<std::string, std::string> NodeLabelOf; // var -> label ("" any)
  std::map<std::string, std::vector<std::string>> RelTypesOf;
  std::set<std::string> PathVars;
  std::map<std::string, unsigned> MatchOccurrences;
  std::set<std::string> UsedOutsideMatch;

  void issue(DiagSeverity Sev, std::string Code, std::string Message) {
    Issues.push_back({Sev, std::move(Code), std::move(Message)});
  }

  bool isBound(const std::string &Var) const {
    return NodeLabelOf.count(Var) || RelTypesOf.count(Var) ||
           PathVars.count(Var);
  }

  void collectBindings() {
    for (const MatchItem &M : Q.Matches) {
      if (!M.PathVar.empty()) {
        PathVars.insert(M.PathVar);
        ++MatchOccurrences[M.PathVar];
      }
      for (const NodePattern &N : M.Nodes) {
        if (N.Var.empty())
          continue;
        ++MatchOccurrences[N.Var];
        auto [It, Fresh] = NodeLabelOf.emplace(N.Var, N.Label);
        if (Fresh)
          continue;
        // Rebinding: a label conflict makes the join unsatisfiable.
        if (It->second.empty())
          It->second = N.Label;
        else if (!N.Label.empty() && N.Label != It->second)
          issue(DiagSeverity::Error, "query.label-conflict",
                "variable '" + N.Var + "' is bound with conflicting labels ':" +
                    It->second + "' and ':" + N.Label + "'");
      }
      for (const RelPattern &R : M.Rels) {
        if (R.Var.empty())
          continue;
        ++MatchOccurrences[R.Var];
        RelTypesOf[R.Var] = R.Types;
      }
    }
  }

  void checkNodePattern(const NodePattern &N) {
    if (!N.Label.empty() && !S.hasNodeLabel(N.Label))
      issue(DiagSeverity::Error, "query.unknown-node-label",
            "unknown node label ':" + N.Label + "' (importer emits: " +
                knownList(S.NodeProps) + ")");
    for (const auto &[Key, Value] : N.Props) {
      (void)Value;
      // Only meaningful when the label itself is known (or absent).
      if (!N.Label.empty() && !S.hasNodeLabel(N.Label))
        continue;
      if (!S.nodeHasProp(N.Label, Key))
        issue(DiagSeverity::Error, "query.unknown-node-prop",
              "property key '" + Key + "' is never emitted for " +
                  (N.Label.empty() ? std::string("any node label")
                                   : "label ':" + N.Label + "'") +
                  "; the filter can never match");
    }
  }

  void checkRelPattern(const RelPattern &R) {
    std::vector<std::string> KnownTypes;
    for (const std::string &T : R.Types) {
      if (!S.hasRelType(T))
        issue(DiagSeverity::Error, "query.unknown-rel-type",
              "unknown relationship type ':" + T + "' (importer emits: " +
                  knownList(S.RelProps) + ")");
      else
        KnownTypes.push_back(T);
    }
    for (const auto &[Key, Value] : R.Props) {
      (void)Value;
      if (!R.Types.empty() && KnownTypes.empty())
        continue; // Already reported the unknown type(s).
      if (!S.relHasProp(R.Types.empty() ? R.Types : KnownTypes, Key))
        issue(DiagSeverity::Error, "query.unknown-rel-prop",
              "relationship property key '" + Key +
                  "' is never emitted for the matched type(s); the filter "
                  "can never match");
    }
    if (R.VarLength && !R.Unbounded && R.MinHops > R.MaxHops)
      issue(DiagSeverity::Error, "query.hop-bounds",
            "unsatisfiable hop bounds *" + std::to_string(R.MinHops) + ".." +
                std::to_string(R.MaxHops) + " (min exceeds max)");
  }

  void checkPatterns() {
    for (const MatchItem &M : Q.Matches) {
      for (const NodePattern &N : M.Nodes)
        checkNodePattern(N);
      for (const RelPattern &R : M.Rels)
        checkRelPattern(R);
    }
  }

  /// Checks a `var.key` reference from WHERE/RETURN. Key may be empty
  /// (whole-variable reference).
  void checkVarKey(const std::string &Var, const std::string &Key,
                   const char *Where) {
    if (!isBound(Var)) {
      issue(DiagSeverity::Error, "query.unbound-var",
            std::string(Where) + " references variable '" + Var +
                "' which is not bound in MATCH");
      return;
    }
    if (Key.empty())
      return;
    if (PathVars.count(Var)) {
      issue(DiagSeverity::Error, "query.path-prop",
            std::string(Where) + " accesses property '" + Key +
                "' of path variable '" + Var + "' (paths have no properties)");
      return;
    }
    auto RelIt = RelTypesOf.find(Var);
    if (RelIt != RelTypesOf.end()) {
      if (!S.relHasProp(RelIt->second, Key))
        issue(DiagSeverity::Warning, "query.unknown-prop-key",
              std::string(Where) + " reads relationship property '" + Key +
                  "' which the importer never emits for '" + Var + "'");
      return;
    }
    const std::string &Label = NodeLabelOf.at(Var);
    if ((Label.empty() || S.hasNodeLabel(Label)) &&
        !S.nodeHasProp(Label, Key))
      issue(DiagSeverity::Warning, "query.unknown-prop-key",
            std::string(Where) + " reads property '" + Key +
                "' which the importer never emits for '" + Var +
                (Label.empty() ? "'" : "' (label ':" + Label + "')"));
  }

  void checkWhere() {
    for (const Condition &C : Q.Where) {
      if (C.K == Condition::Kind::PathPredicate) {
        if (!isBound(C.PredArg))
          issue(DiagSeverity::Error, "query.unbound-var",
                "WHERE predicate '" + C.PredName +
                    "' references variable '" + C.PredArg +
                    "' which is not bound in MATCH");
        else if (!PathVars.count(C.PredArg))
          issue(DiagSeverity::Error, "query.pred-arg-not-path",
                "WHERE predicate '" + C.PredName + "' needs a path variable; '" +
                    C.PredArg + "' is not bound as `" + C.PredArg +
                    " = (...)`");
        UsedOutsideMatch.insert(C.PredArg);
        continue;
      }
      checkVarKey(C.LHSVar, C.LHSKey, "WHERE");
      UsedOutsideMatch.insert(C.LHSVar);
      if (!C.RHSIsLiteral) {
        checkVarKey(C.RHSVar, C.RHSKey, "WHERE");
        UsedOutsideMatch.insert(C.RHSVar);
      }
    }
  }

  void checkReturns() {
    for (const ReturnItem &R : Q.Returns) {
      checkVarKey(R.Var, R.Key, "RETURN");
      UsedOutsideMatch.insert(R.Var);
    }
  }

  void checkUnusedBindings() {
    for (const auto &[Var, Count] : MatchOccurrences) {
      if (Count > 1)
        continue; // Join: reuse across patterns is a use.
      if (UsedOutsideMatch.count(Var))
        continue;
      issue(DiagSeverity::Warning, "query.unused-binding",
            "variable '" + Var +
                "' is bound in MATCH but never used (WHERE/RETURN/join); "
                "use an anonymous pattern instead");
    }
  }
};

} // namespace

std::vector<SchemaIssue> graphdb::lintQuery(const Query &Q,
                                            const GraphSchema &Schema) {
  return QueryLinter(Q, Schema).run();
}

std::vector<SchemaIssue> graphdb::lintQueryText(const std::string &Text,
                                                const GraphSchema &Schema) {
  Query Q;
  std::string Error;
  if (!parseQuery(Text, Q, &Error))
    return {{DiagSeverity::Error, "query.parse-error", Error}};
  return lintQuery(Q, Schema);
}
