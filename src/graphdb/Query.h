//===- graphdb/Query.h - Query language AST ----------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the Cypher-like query language (the stand-in for the 80 lines of
/// Cypher the paper's Graph.js runs against Neo4j). Supported grammar:
///
///   query     := MATCH matchItem (',' matchItem)*
///                (WHERE cond (AND cond)*)?
///                RETURN item (',' item)* (LIMIT int)?
///   matchItem := (pathVar '=')? nodePat (relPat nodePat)*
///   nodePat   := '(' var? (':' Label)? ('{' key ':' str (',' ...)* '}')? ')'
///   relPat    := '-[' var? (':' Type ('|' Type)*)? ('*' int? '..' int?)? ']->'
///   cond      := operand ('=' | '<>') operand
///              | predName '(' var ')'          — registered path predicate
///              | NOT cond
///   operand   := var '.' key | string literal
///   item      := var | var '.' key
///
//===----------------------------------------------------------------------===//

#ifndef GJS_GRAPHDB_QUERY_H
#define GJS_GRAPHDB_QUERY_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gjs {
namespace graphdb {

/// A node pattern like `(src:Object {taint: 'true'})`.
struct NodePattern {
  std::string Var;   // "" for anonymous.
  std::string Label; // "" for any.
  std::map<std::string, std::string> Props;
};

/// A relationship pattern like `-[:D|P*0..]->`, `-[:P {name: 'cmd'}]->`,
/// or the reverse form `<-[:D]-`.
struct RelPattern {
  std::string Var;
  std::vector<std::string> Types; // Empty = any type.
  std::map<std::string, std::string> Props; // Relationship properties.
  bool VarLength = false;
  uint32_t MinHops = 1;
  uint32_t MaxHops = 1; // Ignored when Unbounded.
  bool Unbounded = false;
  bool Reverse = false; // `<-[...]-`: traverse against edge direction.
};

/// One MATCH chain: nodes and the relationships between them.
struct MatchItem {
  std::string PathVar; // "" when the path is not named.
  std::vector<NodePattern> Nodes;
  std::vector<RelPattern> Rels; // Rels.size() == Nodes.size() - 1.
};

/// A WHERE condition.
struct Condition {
  enum class Kind {
    Compare,       ///< lhsVar.lhsKey (=|<>) rhs (literal or var.key)
    PathPredicate, ///< name(pathVar)
  };
  Kind K = Kind::Compare;
  bool Negated = false;

  // Compare:
  std::string LHSVar, LHSKey;
  bool RHSIsLiteral = true;
  std::string RHSLiteral;
  std::string RHSVar, RHSKey;
  bool NotEqual = false;

  // PathPredicate:
  std::string PredName;
  std::string PredArg;
};

/// A RETURN item.
struct ReturnItem {
  std::string Var;
  std::string Key; // "" = the whole node/path (its id is returned).
};

/// A parsed query.
struct Query {
  std::vector<MatchItem> Matches;
  std::vector<Condition> Where;
  std::vector<ReturnItem> Returns;
  bool Distinct = false; // RETURN DISTINCT deduplicates projected rows.
  uint64_t Limit = 0;    // 0 = unlimited.
};

/// Parses query text. Returns false and sets \p Error on malformed input.
bool parseQuery(const std::string &Text, Query &Out, std::string *Error);

} // namespace graphdb
} // namespace gjs

#endif // GJS_GRAPHDB_QUERY_H
