//===- support/Diagnostics.h - Diagnostic collection ------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Library code never prints directly; it records
/// diagnostics here, and tools decide how to render them. This mirrors the
/// recoverable-error discipline from the LLVM coding standards: malformed
/// user input (a JS file we cannot parse) must not crash the scanner.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SUPPORT_DIAGNOSTICS_H
#define GJS_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace gjs {

enum class DiagSeverity { Note, Warning, Error };

/// One reported problem, with an optional source anchor. `Code` is an
/// optional machine-readable check identifier (e.g. "lint.mdg.edge-prop");
/// passes that emit many diagnostic kinds set it so tools can filter.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;
  std::string Code;

  std::string str() const;
};

/// Printable severity name ("note", "warning", "error").
const char *severityName(DiagSeverity S);

/// Collects diagnostics produced while processing one source file.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLocation Loc, std::string Message) {
    report({Severity, Loc, std::move(Message), {}});
  }

  void report(Diagnostic D) {
    if (D.Severity == DiagSeverity::Error)
      ++NumErrors;
    Diags.push_back(std::move(D));
  }

  void error(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Renders all diagnostics, one per line, for tool output.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace gjs

#endif // GJS_SUPPORT_DIAGNOSTICS_H
