//===- support/RNG.h - Deterministic random numbers -------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64). The workload generator and the
/// property-based tests must be reproducible across platforms, so we avoid
/// std::mt19937's distribution non-portability and seed everything from a
/// fixed value.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SUPPORT_RNG_H
#define GJS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace gjs {

/// SplitMix64: tiny, fast, and statistically adequate for workload synthesis.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9E3779B97F4A7C15ULL) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double unit() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli draw with probability \p P.
  bool chance(double P) { return unit() < P; }

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "cannot pick from an empty vector");
    return Items[below(Items.size())];
  }

private:
  uint64_t State;
};

} // namespace gjs

#endif // GJS_SUPPORT_RNG_H
