//===- support/Timer.h - Wall-clock timing -----------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers for the evaluation harness. The paper reports per-phase
/// times (graph construction vs. traversal, Table 6) and a CDF of total
/// analysis time (Figure 7); both are measured with these.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SUPPORT_TIMER_H
#define GJS_SUPPORT_TIMER_H

#include <chrono>

namespace gjs {

/// Measures elapsed wall-clock time since construction or the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double elapsedMilliseconds() const { return elapsedSeconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates time across multiple start/stop windows (per-phase totals).
class AccumulatingTimer {
public:
  void start() { Current.reset(); Running = true; }

  void stop() {
    if (!Running)
      return;
    Total += Current.elapsedSeconds();
    Running = false;
  }

  double totalSeconds() const { return Total; }
  void reset() { Total = 0; Running = false; }

private:
  Timer Current;
  double Total = 0;
  bool Running = false;
};

} // namespace gjs

#endif // GJS_SUPPORT_TIMER_H
