//===- support/Diagnostics.cpp - Diagnostic collection --------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace gjs;

const char *gjs::severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  if (Loc.isValid())
    OS << Loc.str() << ": ";
  OS << severityName(Severity) << ": " << Message;
  if (!Code.empty())
    OS << " [" << Code << "]";
  return OS.str();
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.str() << '\n';
  return OS.str();
}
