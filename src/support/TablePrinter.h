//===- support/TablePrinter.h - ASCII table rendering ------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders aligned ASCII tables. Every bench binary prints the same
/// rows/columns as the corresponding paper table through this class, so
/// outputs are easy to diff against EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SUPPORT_TABLEPRINTER_H
#define GJS_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace gjs {

/// Collects rows of string cells and renders them column-aligned.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  /// Adds a horizontal separator before the next row.
  void addSeparator() { Separators.push_back(Rows.size()); }

  /// Renders the table with a header rule and column padding.
  std::string str() const;

  /// Formats a double with \p Decimals digits after the point.
  static std::string fmt(double Value, int Decimals = 2);

  /// Formats a ratio like "1.63x".
  static std::string fmtRatio(double Value, int Decimals = 2);

  /// Formats a percentage like "82.0%".
  static std::string fmtPercent(double Fraction, int Decimals = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
  std::vector<size_t> Separators;
};

} // namespace gjs

#endif // GJS_SUPPORT_TABLEPRINTER_H
