//===- support/StringInterner.h - String interning --------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns identifier and property-name strings so the MDG and the abstract
/// store can compare names by integer id. Property edges P(p) are compared
/// millions of times during lookup resolution; interning keeps that cheap.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SUPPORT_STRINGINTERNER_H
#define GJS_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gjs {

/// An interned string id. Id 0 is reserved for the empty string.
using Symbol = uint32_t;

/// Maps strings to dense integer ids and back.
class StringInterner {
public:
  StringInterner() { intern(""); }

  Symbol intern(std::string_view S) {
    auto It = Index.find(std::string(S));
    if (It != Index.end())
      return It->second;
    Symbol Id = static_cast<Symbol>(Storage.size());
    Storage.emplace_back(S);
    Index.emplace(Storage.back(), Id);
    return Id;
  }

  const std::string &str(Symbol Id) const {
    assert(Id < Storage.size() && "symbol out of range");
    return Storage[Id];
  }

  bool contains(std::string_view S) const {
    return Index.count(std::string(S)) != 0;
  }

  /// Looks up an already-interned string without mutating the table.
  /// Returns false when \p S was never interned.
  bool find(std::string_view S, Symbol &Out) const {
    auto It = Index.find(std::string(S));
    if (It == Index.end())
      return false;
    Out = It->second;
    return true;
  }

  size_t size() const { return Storage.size(); }

private:
  std::vector<std::string> Storage;
  std::unordered_map<std::string, Symbol> Index;
};

} // namespace gjs

#endif // GJS_SUPPORT_STRINGINTERNER_H
