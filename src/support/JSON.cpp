//===- support/JSON.cpp - Minimal JSON value and writer -------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace gjs;
using namespace gjs::json;

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

static std::string formatNumber(double D) {
  // Integral values print without a trailing ".0" so reports stay tidy.
  if (D == std::floor(D) && std::abs(D) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", D);
    return Buf;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  return Buf;
}

static void writeValue(const Value &V, std::ostringstream &OS, unsigned Indent,
                       unsigned Depth) {
  auto NewLine = [&](unsigned D) {
    if (Indent == 0)
      return;
    OS << '\n';
    for (unsigned I = 0; I < Indent * D; ++I)
      OS << ' ';
  };

  if (V.isNull()) {
    OS << "null";
  } else if (V.isBool()) {
    OS << (V.asBool() ? "true" : "false");
  } else if (V.isNumber()) {
    OS << formatNumber(V.asNumber());
  } else if (V.isString()) {
    OS << '"' << escape(V.asString()) << '"';
  } else if (V.isArray()) {
    const Array &A = V.asArray();
    if (A.empty()) {
      OS << "[]";
      return;
    }
    OS << '[';
    bool First = true;
    for (const Value &E : A) {
      if (!First)
        OS << ',';
      First = false;
      NewLine(Depth + 1);
      writeValue(E, OS, Indent, Depth + 1);
    }
    NewLine(Depth);
    OS << ']';
  } else {
    const Object &O = V.asObject();
    if (O.empty()) {
      OS << "{}";
      return;
    }
    OS << '{';
    bool First = true;
    for (const auto &[Key, Val] : O) {
      if (!First)
        OS << ',';
      First = false;
      NewLine(Depth + 1);
      OS << '"' << escape(Key) << "\":";
      if (Indent)
        OS << ' ';
      writeValue(Val, OS, Indent, Depth + 1);
    }
    NewLine(Depth);
    OS << '}';
  }
}

std::string Value::str(unsigned Indent) const {
  std::ostringstream OS;
  writeValue(*this, OS, Indent, 0);
  return OS.str();
}

namespace {

/// Recursive-descent JSON parser over a string buffer.
class ParserImpl {
public:
  ParserImpl(const std::string &Text) : Text(Text) {}

  bool parse(Value &Out, std::string *Error) {
    skipWhitespace();
    if (!parseValue(Out)) {
      if (Error)
        *Error = Err.empty() ? "malformed JSON" : Err;
      return false;
    }
    skipWhitespace();
    if (Pos != Text.size()) {
      if (Error)
        *Error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  std::string Err;

  bool fail(const std::string &Message) {
    if (Err.empty())
      Err = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }

  void skipWhitespace() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    if (peek() != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool consumeKeyword(const char *KW) {
    size_t Len = std::char_traits<char>::length(KW);
    if (Text.compare(Pos, Len, KW) != 0)
      return fail(std::string("expected '") + KW + "'");
    Pos += Len;
    return true;
  }

  bool parseValue(Value &Out) {
    skipWhitespace();
    switch (peek()) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    case 't':
      if (!consumeKeyword("true"))
        return false;
      Out = Value(true);
      return true;
    case 'f':
      if (!consumeKeyword("false"))
        return false;
      Out = Value(false);
      return true;
    case 'n':
      if (!consumeKeyword("null"))
        return false;
      Out = Value(nullptr);
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out) {
    if (!consume('{'))
      return false;
    Object O;
    skipWhitespace();
    if (peek() == '}') {
      ++Pos;
      Out = Value(std::move(O));
      return true;
    }
    while (true) {
      skipWhitespace();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWhitespace();
      if (!consume(':'))
        return false;
      Value V;
      if (!parseValue(V))
        return false;
      O.emplace(std::move(Key), std::move(V));
      skipWhitespace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (!consume('}'))
      return false;
    Out = Value(std::move(O));
    return true;
  }

  bool parseArray(Value &Out) {
    if (!consume('['))
      return false;
    Array A;
    skipWhitespace();
    if (peek() == ']') {
      ++Pos;
      Out = Value(std::move(A));
      return true;
    }
    while (true) {
      Value V;
      if (!parseValue(V))
        return false;
      A.push_back(std::move(V));
      skipWhitespace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (!consume(']'))
      return false;
    Out = Value(std::move(A));
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= H - '0';
          else if (H >= 'a' && H <= 'f')
            Code |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code |= H - 'A' + 10;
          else
            return fail("bad hex digit in \\u escape");
        }
        // Encode as UTF-8 (no surrogate-pair handling; config files are
        // ASCII in practice).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
    return consume('"');
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.') {
      ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (Pos == Start)
      return fail("expected a JSON value");
    Out = Value(std::stod(Text.substr(Start, Pos - Start)));
    return true;
  }
};

} // namespace

bool json::parse(const std::string &Text, Value &Out, std::string *Error) {
  return ParserImpl(Text).parse(Out, Error);
}
