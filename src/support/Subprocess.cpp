//===- support/Subprocess.cpp - POSIX child-process management -------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace gjs;

// RLIMIT_AS is incompatible with AddressSanitizer's shadow reservation:
// applying it under an ASan build would kill every worker at startup.
#if defined(__SANITIZE_ADDRESS__)
#define GJS_ASAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GJS_ASAN_BUILD 1
#endif
#endif
#ifndef GJS_ASAN_BUILD
#define GJS_ASAN_BUILD 0
#endif

const char *gjs::signalName(int Signal) {
  switch (Signal) {
  case SIGHUP:
    return "SIGHUP";
  case SIGINT:
    return "SIGINT";
  case SIGQUIT:
    return "SIGQUIT";
  case SIGILL:
    return "SIGILL";
  case SIGABRT:
    return "SIGABRT";
  case SIGBUS:
    return "SIGBUS";
  case SIGFPE:
    return "SIGFPE";
  case SIGKILL:
    return "SIGKILL";
  case SIGSEGV:
    return "SIGSEGV";
  case SIGPIPE:
    return "SIGPIPE";
  case SIGTERM:
    return "SIGTERM";
  case SIGXCPU:
    return "SIGXCPU";
  case SIGXFSZ:
    return "SIGXFSZ";
  }
  return "SIG?";
}

WaitStatus WaitStatus::decode(int RawStatus) {
  WaitStatus S;
  if (WIFEXITED(RawStatus)) {
    S.K = Kind::Exited;
    S.ExitCode = WEXITSTATUS(RawStatus);
  } else if (WIFSIGNALED(RawStatus)) {
    S.K = Kind::Signaled;
    S.Signal = WTERMSIG(RawStatus);
  }
  return S;
}

std::string WaitStatus::str() const {
  switch (K) {
  case Kind::None:
    return "running";
  case Kind::Exited:
    return "exit " + std::to_string(ExitCode);
  case Kind::Signaled:
    return "signal " + std::to_string(Signal) + " (" + signalName(Signal) +
           ")";
  }
  return "unknown";
}

size_t gjs::currentRssMB() {
  std::ifstream In("/proc/self/statm");
  size_t SizePages = 0, RssPages = 0;
  if (!(In >> SizePages >> RssPages))
    return 0;
  long Page = ::sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    return 0;
  return RssPages * static_cast<size_t>(Page) / (1024 * 1024);
}

void gjs::installOomExitHandler() {
  std::set_new_handler([] { _exit(WorkerOomExit); });
}

ScopedSigpipeIgnore::ScopedSigpipeIgnore() : Old(new struct sigaction()) {
  struct sigaction SA {};
  SA.sa_handler = SIG_IGN;
  sigemptyset(&SA.sa_mask);
  ::sigaction(SIGPIPE, &SA, Old);
}

ScopedSigpipeIgnore::~ScopedSigpipeIgnore() {
  ::sigaction(SIGPIPE, Old, nullptr);
  delete Old;
}

namespace {

/// Applied in the child, post-fork: resource caps and default signal
/// dispositions (the child must die on the signals the supervisor's kill
/// ladder relies on, whatever handlers the parent had installed).
void setupChild(const SubprocessLimits &Limits) {
  for (int Sig : {SIGINT, SIGTERM, SIGXCPU, SIGPIPE})
    std::signal(Sig, SIG_DFL);
  if (Limits.MemLimitMB && !GJS_ASAN_BUILD) {
    rlimit RL;
    RL.rlim_cur = RL.rlim_max =
        static_cast<rlim_t>(Limits.MemLimitMB) * 1024 * 1024;
    setrlimit(RLIMIT_AS, &RL);
  }
  if (Limits.CpuSeconds) {
    rlimit RL;
    // Soft = the cap (SIGXCPU); hard one second later (SIGKILL backstop
    // should the child catch/ignore SIGXCPU).
    RL.rlim_cur = Limits.CpuSeconds;
    RL.rlim_max = static_cast<rlim_t>(Limits.CpuSeconds) + 1;
    setrlimit(RLIMIT_CPU, &RL);
  }
}

bool forkFailed(std::string *Error) {
  if (Error)
    *Error = std::string("fork failed: ") + std::strerror(errno);
  return false;
}

} // namespace

Subprocess::Subprocess(Subprocess &&O) noexcept
    : PID(O.PID), OutFD(O.OutFD), Status(O.Status) {
  O.PID = -1;
  O.OutFD = -1;
}

Subprocess &Subprocess::operator=(Subprocess &&O) noexcept {
  if (this != &O) {
    closeOut();
    PID = O.PID;
    OutFD = O.OutFD;
    Status = O.Status;
    O.PID = -1;
    O.OutFD = -1;
  }
  return *this;
}

Subprocess::~Subprocess() { closeOut(); }

void Subprocess::closeOut() {
  if (OutFD >= 0) {
    ::close(OutFD);
    OutFD = -1;
  }
}

bool Subprocess::spawn(const std::vector<std::string> &Argv, Subprocess &Out,
                       std::string *Error, bool CaptureStdout,
                       const SubprocessLimits &Limits) {
  if (Argv.empty()) {
    if (Error)
      *Error = "spawn: empty argv";
    return false;
  }
  int Pipe[2] = {-1, -1};
  if (CaptureStdout && ::pipe(Pipe) != 0) {
    if (Error)
      *Error = std::string("pipe failed: ") + std::strerror(errno);
    return false;
  }

  pid_t PID = ::fork();
  if (PID < 0) {
    if (CaptureStdout) {
      ::close(Pipe[0]);
      ::close(Pipe[1]);
    }
    return forkFailed(Error);
  }

  if (PID == 0) {
    // Child: wire stdout into the pipe, apply caps, exec.
    if (CaptureStdout) {
      ::close(Pipe[0]);
      ::dup2(Pipe[1], STDOUT_FILENO);
      ::close(Pipe[1]);
    }
    setupChild(Limits);
    std::vector<char *> CArgv;
    CArgv.reserve(Argv.size() + 1);
    for (const std::string &A : Argv)
      CArgv.push_back(const_cast<char *>(A.c_str()));
    CArgv.push_back(nullptr);
    ::execvp(CArgv[0], CArgv.data());
    _exit(127); // exec failed; the classic shell convention.
  }

  Out = Subprocess();
  Out.PID = PID;
  if (CaptureStdout) {
    ::close(Pipe[1]);
    Out.OutFD = Pipe[0];
  }
  return true;
}

bool Subprocess::forkChild(const std::function<int()> &Fn, Subprocess &Out,
                           std::string *Error,
                           const SubprocessLimits &Limits) {
  pid_t PID = ::fork();
  if (PID < 0)
    return forkFailed(Error);
  if (PID == 0) {
    setupChild(Limits);
    int RC = 125;
    try {
      RC = Fn();
    } catch (...) {
      RC = 125; // An exception escaping the worker body is a worker bug.
    }
    _exit(RC);
  }
  Out = Subprocess();
  Out.PID = PID;
  return true;
}

bool Subprocess::forkWorker(const std::function<int(int)> &Fn,
                            Subprocess &Out, std::string *Error,
                            const SubprocessLimits &Limits) {
  int SV[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, SV) != 0) {
    if (Error)
      *Error = std::string("socketpair failed: ") + std::strerror(errno);
    return false;
  }
  pid_t PID = ::fork();
  if (PID < 0) {
    ::close(SV[0]);
    ::close(SV[1]);
    return forkFailed(Error);
  }
  if (PID == 0) {
    ::close(SV[0]);
    setupChild(Limits);
    int RC = 125;
    try {
      RC = Fn(SV[1]);
    } catch (...) {
      RC = 125; // An exception escaping the worker body is a worker bug.
    }
    _exit(RC);
  }
  ::close(SV[1]);
  Out = Subprocess();
  Out.PID = PID;
  Out.OutFD = SV[0];
  return true;
}

bool Subprocess::poll(WaitStatus &Out) {
  if (Status.K != WaitStatus::Kind::None) {
    Out = Status;
    return true;
  }
  if (PID <= 0)
    return false;
  int Raw = 0;
  // EINTR-retried even under WNOHANG: a signal landing mid-syscall must
  // not make the supervisor misread "still running" out of an error
  // return and later misattribute the worker's verdict.
  pid_t R;
  while ((R = ::waitpid(PID, &Raw, WNOHANG)) < 0 && errno == EINTR) {
  }
  if (R == PID) {
    Status = WaitStatus::decode(Raw);
    Out = Status;
    return true;
  }
  return false;
}

WaitStatus Subprocess::wait() {
  if (Status.K != WaitStatus::Kind::None || PID <= 0)
    return Status;
  int Raw = 0;
  // Retry on EINTR: a SIGINT aimed at the supervisor must not lose the
  // child's status.
  while (::waitpid(PID, &Raw, 0) < 0 && errno == EINTR) {
  }
  Status = WaitStatus::decode(Raw);
  return Status;
}

bool Subprocess::kill(int Signal) {
  if (PID <= 0 || Status.K != WaitStatus::Kind::None)
    return false;
  return ::kill(PID, Signal) == 0;
}

std::string Subprocess::readAll() {
  std::string Out;
  if (OutFD < 0)
    return Out;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::read(OutFD, Buf, sizeof(Buf));
    if (N > 0) {
      Out.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    break; // EOF or error.
  }
  closeOut();
  return Out;
}
