//===- support/TablePrinter.cpp - ASCII table rendering -------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace gjs;

std::string TablePrinter::fmt(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string TablePrinter::fmtRatio(double Value, int Decimals) {
  return fmt(Value, Decimals) + "x";
}

std::string TablePrinter::fmtPercent(double Fraction, int Decimals) {
  return fmt(Fraction * 100.0, Decimals) + "%";
}

std::string TablePrinter::str() const {
  std::vector<size_t> Widths(Header.size(), 0);
  auto Grow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I >= Widths.size())
        Widths.resize(I + 1, 0);
      Widths[I] = std::max(Widths[I], Row[I].size());
    }
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  auto RenderRow = [&](const std::vector<std::string> &Row,
                       std::ostringstream &OS) {
    OS << "|";
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Row.size() ? Row[I] : "";
      OS << ' ' << Cell << std::string(Widths[I] - Cell.size(), ' ') << " |";
    }
    OS << '\n';
  };

  auto RenderRule = [&](std::ostringstream &OS) {
    OS << "+";
    for (size_t W : Widths)
      OS << std::string(W + 2, '-') << "+";
    OS << '\n';
  };

  std::ostringstream OS;
  RenderRule(OS);
  RenderRow(Header, OS);
  RenderRule(OS);
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (std::find(Separators.begin(), Separators.end(), I) != Separators.end())
      RenderRule(OS);
    RenderRow(Rows[I], OS);
  }
  RenderRule(OS);
  return OS.str();
}
