//===- support/JSON.h - Minimal JSON value and writer -----------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value tree with serialization. Used for vulnerability
/// reports (Graph.js emits machine-readable findings) and for the
/// sink/source configuration file (§4: "The list of Sinks considered by
/// Graph.js can be set dynamically via a configuration file").
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SUPPORT_JSON_H
#define GJS_SUPPORT_JSON_H

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace gjs {
namespace json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A JSON value: null, bool, number, string, array, or object.
class Value {
public:
  Value() : Data(nullptr) {}
  Value(std::nullptr_t) : Data(nullptr) {}
  Value(bool B) : Data(B) {}
  Value(int I) : Data(static_cast<double>(I)) {}
  Value(unsigned I) : Data(static_cast<double>(I)) {}
  Value(long I) : Data(static_cast<double>(I)) {}
  Value(unsigned long I) : Data(static_cast<double>(I)) {}
  Value(double D) : Data(D) {}
  Value(const char *S) : Data(std::string(S)) {}
  Value(std::string S) : Data(std::move(S)) {}
  Value(Array A) : Data(std::move(A)) {}
  Value(Object O) : Data(std::move(O)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(Data); }
  bool isBool() const { return std::holds_alternative<bool>(Data); }
  bool isNumber() const { return std::holds_alternative<double>(Data); }
  bool isString() const { return std::holds_alternative<std::string>(Data); }
  bool isArray() const { return std::holds_alternative<Array>(Data); }
  bool isObject() const { return std::holds_alternative<Object>(Data); }

  bool asBool() const { return std::get<bool>(Data); }
  double asNumber() const { return std::get<double>(Data); }
  const std::string &asString() const { return std::get<std::string>(Data); }
  const Array &asArray() const { return std::get<Array>(Data); }
  Array &asArray() { return std::get<Array>(Data); }
  const Object &asObject() const { return std::get<Object>(Data); }
  Object &asObject() { return std::get<Object>(Data); }

  /// Serializes this value. With \p Indent > 0, pretty-prints using that
  /// many spaces per nesting level.
  std::string str(unsigned Indent = 0) const;

private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> Data;
};

/// Escapes \p S for inclusion in a JSON string literal (without quotes).
std::string escape(const std::string &S);

/// Parses JSON text. Returns std::nullopt on malformed input. Supports the
/// full JSON grammar minus exotic number forms; sufficient for config files.
class Parser;
bool parse(const std::string &Text, Value &Out, std::string *Error = nullptr);

} // namespace json
} // namespace gjs

#endif // GJS_SUPPORT_JSON_H
