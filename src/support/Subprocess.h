//===- support/Subprocess.h - POSIX child-process management -----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin, explicit wrapper over fork/exec/pipe/waitpid/kill — the OS-level
/// crash-containment substrate the multi-process batch scanner is built on.
/// The in-process fault ladder (support/Deadline.h, the degradation ladder)
/// contains everything *cooperative*; a segfault, an abort(), an OOM kill,
/// or a runaway native loop needs a process boundary. The paper's 20k-npm
/// evaluation (§5.6) is exactly the workload where one pathological package
/// must never take down the run, and the scale literature (Scalable Call
/// Graph Constructor for Maven, arXiv:2103.15162) gets ecosystem-scale
/// throughput from the same independent-worker shape.
///
/// Two ways to start a child:
///  - spawn(argv): classic fork+exec with optional stdout capture (what
///    tests use to drive the graphjs binary and what a future distributed
///    runner would use);
///  - forkChild(fn): fork *without* exec — the child runs \p fn with the
///    parent's memory image and _exit()s with its return value. This is
///    how the worker pool ships a package scan into an expendable process
///    with zero serialization. Safe here because the codebase is
///    single-threaded (fork in a threaded process only preserves the
///    calling thread).
///
/// Children can run under setrlimit caps (address space, CPU seconds):
/// the OS-enforced backstop behind the cooperative Deadline. An
/// allocation that fails under RLIMIT_AS surfaces as the WorkerOomExit
/// exit code when the child installs oomExitNewHandler(), giving the
/// supervisor deterministic OOM attribution.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SUPPORT_SUBPROCESS_H
#define GJS_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

// The POSIX sigaction record, kept out of this header (it would drag in
// <signal.h>); ScopedSigpipeIgnore stores one behind a pointer.
struct sigaction;

namespace gjs {

/// Decoded waitpid() status.
struct WaitStatus {
  enum class Kind {
    None,     ///< Not reaped yet.
    Exited,   ///< Normal termination; ExitCode holds the code.
    Signaled, ///< Killed by a signal; Signal holds which.
  };
  Kind K = Kind::None;
  int ExitCode = 0;
  int Signal = 0;

  bool exited() const { return K == Kind::Exited; }
  bool exitedWith(int Code) const { return exited() && ExitCode == Code; }
  bool signaled() const { return K == Kind::Signaled; }

  /// "exit 0", "signal 11 (SIGSEGV)".
  std::string str() const;

  /// Decodes a raw waitpid status word.
  static WaitStatus decode(int RawStatus);
};

/// "SIGSEGV" for 11, "SIG<n>" for unknown numbers.
const char *signalName(int Signal);

/// Exit code a worker uses to report "my allocator ran dry" (an
/// out-of-memory condition contained before the kernel's OOM killer got
/// involved). Chosen clear of shell conventions (126/127) and sanitizer
/// defaults.
constexpr int WorkerOomExit = 86;

/// Resident-set size of the calling process in MiB, from /proc/self/statm
/// (0 where that interface does not exist — callers treating it as a
/// watermark then simply never trip, which degrades features, not
/// correctness). Workers use this for memory-based self-recycling.
size_t currentRssMB();

/// Installs a std::new_handler that _exit()s with WorkerOomExit, turning
/// an allocation failure (e.g. under RLIMIT_AS) into a deterministic,
/// attributable worker death instead of an exception unwind through
/// arbitrary pipeline state. Call in the child, never the supervisor.
void installOomExitHandler();

/// Ignores SIGPIPE for the lifetime of the guard, restoring the prior
/// disposition on destruction. A supervisor holding long-lived pipes to
/// workers must not die because a worker crashed mid-read: with SIGPIPE
/// ignored, a write to the dead worker fails with EPIPE (an error the
/// protocol layer attributes correctly) instead of killing the supervisor.
class ScopedSigpipeIgnore {
public:
  ScopedSigpipeIgnore();
  ~ScopedSigpipeIgnore();
  ScopedSigpipeIgnore(const ScopedSigpipeIgnore &) = delete;
  ScopedSigpipeIgnore &operator=(const ScopedSigpipeIgnore &) = delete;

private:
  struct sigaction *Old;
};

/// Resource caps applied in the child between fork and exec/fn.
struct SubprocessLimits {
  /// RLIMIT_AS in MiB (0 = unlimited). Ignored under AddressSanitizer,
  /// whose shadow mappings are incompatible with address-space caps.
  size_t MemLimitMB = 0;
  /// RLIMIT_CPU in seconds (0 = unlimited). The kernel sends SIGXCPU at
  /// the soft limit — the uninterruptible-spin backstop.
  unsigned CpuSeconds = 0;
};

/// One child process. Movable, not copyable; the destructor does NOT kill
/// or reap (an abandoned handle leaks a zombie until the caller exits) —
/// supervisors own the reaping policy explicitly.
class Subprocess {
public:
  Subprocess() = default;
  Subprocess(Subprocess &&O) noexcept;
  Subprocess &operator=(Subprocess &&O) noexcept;
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;
  ~Subprocess();

  /// fork+execvp. With \p CaptureStdout the child's stdout is redirected
  /// into a pipe readable via readAll()/stdoutFD(). Returns false (with
  /// \p Error) when the pipe or fork fails; exec failure surfaces as the
  /// child exiting 127.
  static bool spawn(const std::vector<std::string> &Argv, Subprocess &Out,
                    std::string *Error = nullptr, bool CaptureStdout = false,
                    const SubprocessLimits &Limits = {});

  /// fork without exec: the child applies \p Limits, runs \p Fn, and
  /// _exit()s with its return value (exceptions escaping Fn become exit
  /// 125). The child never returns into the caller's stack.
  static bool forkChild(const std::function<int()> &Fn, Subprocess &Out,
                        std::string *Error = nullptr,
                        const SubprocessLimits &Limits = {});

  /// fork without exec, connected by a socketpair: the child runs
  /// \p Fn(childFD) with one end; the parent keeps the other, readable and
  /// writable via commFD() (closed by the destructor). This is how a
  /// persistent worker receives its job stream (driver/WorkerProtocol.h).
  static bool forkWorker(const std::function<int(int)> &Fn, Subprocess &Out,
                         std::string *Error = nullptr,
                         const SubprocessLimits &Limits = {});

  bool valid() const { return PID > 0; }
  int pid() const { return PID; }

  /// Non-blocking reap (waitpid WNOHANG). Returns true once the child has
  /// terminated; Status is then final and the handle is reaped.
  bool poll(WaitStatus &Status);

  /// Blocking reap.
  WaitStatus wait();

  /// Sends \p Signal (default SIGKILL). False when the child is already
  /// reaped or the kill fails.
  bool kill(int Signal = 9);

  /// Drains the captured-stdout pipe to EOF (empty without capture).
  std::string readAll();

  /// The captured-stdout read end, -1 without capture.
  int stdoutFD() const { return OutFD; }

  /// The supervisor end of a forkWorker() socketpair, -1 otherwise.
  /// (Shares storage with the capture pipe: a child has one comm channel.)
  int commFD() const { return OutFD; }

  /// The final status (Kind::None until poll()/wait() reaped the child).
  const WaitStatus &status() const { return Status; }

private:
  int PID = -1;
  int OutFD = -1;
  WaitStatus Status;

  void closeOut();
};

} // namespace gjs

#endif // GJS_SUPPORT_SUBPROCESS_H
