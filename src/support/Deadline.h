//===- support/Deadline.h - Cooperative cancellation token ------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cancellation token unifying wall-clock time and abstract work, shared
/// by every phase of the scan pipeline. The paper's evaluation enforces a
/// hard 5-minute *per-package* timeout (§5.2): the budget covers parsing,
/// normalization, MDG construction, database import, and querying together,
/// not each phase separately. One Deadline is threaded through all of them;
/// each phase calls checkpoint() at its natural unit of progress (a parsed
/// statement, an abstract statement analyzed, an imported node, a matcher
/// step) and aborts cooperatively once the deadline expires.
///
/// Two limits compose:
///  - an abstract work budget (deterministic — what tests and reproducible
///    benchmarks use), and
///  - a wall-clock limit (what a production batch run uses), polled every
///    ClockStride checkpoints to keep the common path branch-cheap.
///
/// Expiry is sticky and remembers *why* it fired (work vs. wall clock vs.
/// forced), so the scanner can attribute the timeout to a ScanError kind.
/// expireNow() exists for fault injection: a "stall" fault models a phase
/// that hangs until the deadline kills it.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SUPPORT_DEADLINE_H
#define GJS_SUPPORT_DEADLINE_H

#include <chrono>
#include <cstdint>

namespace gjs {

/// Cooperative deadline: abstract work budget + wall-clock limit.
class Deadline {
public:
  /// Why the deadline expired (None = still live).
  enum class Reason { None, Work, WallClock, Forced };

  /// Unlimited: never expires (unless expireNow() is called).
  Deadline() = default;

  /// Wall-clock limit only.
  static Deadline afterSeconds(double Seconds) { return Deadline(Seconds, 0); }

  /// Abstract work budget only (deterministic).
  static Deadline afterWork(uint64_t Units) { return Deadline(0, Units); }

  /// Both limits; a zero disables that limit.
  static Deadline combined(double Seconds, uint64_t Units) {
    return Deadline(Seconds, Units);
  }

  /// True when any limit is set.
  bool active() const { return HasWall || WorkBudget != 0; }

  /// Registers \p Units of progress and returns expired(). Phases call this
  /// at every natural unit of work; the wall clock is only polled every
  /// ClockStride units.
  bool checkpoint(uint64_t Units = 1) {
    if (Why != Reason::None)
      return true;
    Done += Units;
    if (WorkBudget != 0 && Done > WorkBudget) {
      Why = Reason::Work;
      return true;
    }
    if (HasWall && Done >= NextClockCheck) {
      NextClockCheck = Done + ClockStride;
      if (Clock::now() >= End)
        Why = Reason::WallClock;
    }
    return Why != Reason::None;
  }

  /// Sticky: true once any limit has been hit.
  bool expired() const { return Why != Reason::None; }

  Reason reason() const { return Why; }

  /// Forces immediate expiry (fault injection: a stalled phase is modeled
  /// as the deadline killing it).
  void expireNow(Reason R = Reason::Forced) { Why = R; }

  /// Total units checkpointed so far (across all phases).
  uint64_t workDone() const { return Done; }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;

  Deadline(double Seconds, uint64_t Units) : WorkBudget(Units) {
    if (Seconds > 0) {
      HasWall = true;
      End = Start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(Seconds));
      NextClockCheck = 1; // Poll on the very first checkpoint.
    }
  }

  /// How often (in work units) the wall clock is polled.
  static constexpr uint64_t ClockStride = 256;

  Clock::time_point Start = Clock::now();
  Clock::time_point End{};
  bool HasWall = false;
  uint64_t WorkBudget = 0;
  uint64_t Done = 0;
  uint64_t NextClockCheck = ClockStride;
  Reason Why = Reason::None;
};

} // namespace gjs

#endif // GJS_SUPPORT_DEADLINE_H
