//===- support/SourceLocation.h - Source positions --------------*- C++ -*-==//
//
// Part of graphjs-cpp, a C++ reproduction of "Efficient Static Vulnerability
// Analysis for JavaScript with Multiversion Dependency Graphs" (PLDI 2024).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source positions shared by the lexer, parser, AST, Core IR,
/// and vulnerability reports (which must pinpoint the sink line, per §5.2).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SUPPORT_SOURCELOCATION_H
#define GJS_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace gjs {

/// A position in a source buffer. Line and column are 1-based; a zero line
/// denotes an invalid/unknown location.
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLocation() = default;
  constexpr SourceLocation(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLocation &O) const = default;
  bool operator<(const SourceLocation &O) const {
    return Line < O.Line || (Line == O.Line && Column < O.Column);
  }

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

/// A half-open range of source positions [Begin, End).
struct SourceRange {
  SourceLocation Begin;
  SourceLocation End;

  constexpr SourceRange() = default;
  constexpr SourceRange(SourceLocation Begin, SourceLocation End)
      : Begin(Begin), End(End) {}

  bool isValid() const { return Begin.isValid(); }
  bool operator==(const SourceRange &O) const = default;
};

} // namespace gjs

#endif // GJS_SUPPORT_SOURCELOCATION_H
