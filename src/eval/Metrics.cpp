//===- eval/Metrics.cpp - Evaluation metrics -------------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Metrics.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

using namespace gjs;
using namespace gjs::eval;
using namespace gjs::queries;
using workload::Package;

ClassStats eval::scorePackage(const Package &P,
                              const std::vector<VulnReport> &Reports,
                              VulnType Class, ScorePolicy Policy) {
  ClassStats S;
  std::vector<bool> AnnotationUsed(P.Annotations.size(), false);
  for (size_t I = 0; I < P.Annotations.size(); ++I)
    if (P.Annotations[I].Type == Class)
      ++S.Total;

  for (const VulnReport &R : Reports) {
    if (R.Type != Class)
      continue;
    // Exact (type, line) match first.
    bool Matched = false;
    for (size_t I = 0; I < P.Annotations.size(); ++I) {
      if (AnnotationUsed[I] || P.Annotations[I].Type != Class)
        continue;
      if (P.Annotations[I].SinkLine == R.SinkLoc.Line) {
        AnnotationUsed[I] = true;
        Matched = true;
        break;
      }
    }
    // Type-only leniency (ODGen policy).
    if (!Matched && Policy.TypeOnlyMatch) {
      for (size_t I = 0; I < P.Annotations.size(); ++I) {
        if (AnnotationUsed[I] || P.Annotations[I].Type != Class)
          continue;
        AnnotationUsed[I] = true;
        Matched = true;
        break;
      }
    }
    if (Matched) {
      ++S.TP;
      continue;
    }
    ++S.FP;
    // Reports on unannotated-but-real sinks are FPs by annotation yet not
    // true false positives — the dataset is incomplete (§5.2).
    bool Real = std::find(P.ExtraRealLines.begin(), P.ExtraRealLines.end(),
                          R.SinkLoc.Line) != P.ExtraRealLines.end();
    if (!Real)
      ++S.TFP;
  }
  return S;
}

obs::CounterSnapshot
eval::aggregateCounters(const std::vector<PackageOutcome> &Outcomes) {
  obs::CounterSnapshot Total;
  for (const PackageOutcome &O : Outcomes)
    for (const auto &[Name, Value] : O.Counters)
      Total[Name] += Value;
  return Total;
}

ClassStats eval::scoreDataset(const std::vector<Package> &Packages,
                              const std::vector<PackageOutcome> &Outcomes,
                              VulnType Class, ScorePolicy Policy) {
  assert(Packages.size() == Outcomes.size() && "size mismatch");
  ClassStats S;
  for (size_t I = 0; I < Packages.size(); ++I)
    S += scorePackage(Packages[I], Outcomes[I].Reports, Class, Policy);
  return S;
}

std::vector<bool> eval::detectedFlags(
    const std::vector<Package> &Packages,
    const std::vector<PackageOutcome> &Outcomes, ScorePolicy Policy) {
  std::vector<bool> Flags;
  for (size_t I = 0; I < Packages.size(); ++I) {
    const Package &P = Packages[I];
    const std::vector<VulnReport> &Reports = Outcomes[I].Reports;
    for (const workload::Annotation &A : P.Annotations) {
      bool Found = false;
      for (const VulnReport &R : Reports) {
        if (R.Type != A.Type)
          continue;
        if (R.SinkLoc.Line == A.SinkLine ||
            Policy.TypeOnlyMatch) {
          Found = true;
          break;
        }
      }
      Flags.push_back(Found);
    }
  }
  return Flags;
}

VennCounts eval::venn(const std::vector<bool> &A, const std::vector<bool> &B) {
  assert(A.size() == B.size() && "flag vectors must align");
  VennCounts V;
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I] && B[I])
      ++V.Both;
    else if (A[I])
      ++V.OnlyA;
    else if (B[I])
      ++V.OnlyB;
    else
      ++V.Neither;
  }
  return V;
}

std::vector<double> eval::cdf(std::vector<double> Samples,
                              const std::vector<double> &Marks) {
  std::sort(Samples.begin(), Samples.end());
  std::vector<double> Out;
  for (double M : Marks) {
    size_t N = std::upper_bound(Samples.begin(), Samples.end(), M) -
               Samples.begin();
    Out.push_back(Samples.empty() ? 0 : double(N) / double(Samples.size()));
  }
  return Out;
}

std::string eval::renderCDF(const std::vector<std::string> &Names,
                            const std::vector<std::vector<double>> &Series,
                            const std::vector<double> &Marks) {
  std::ostringstream OS;
  OS << "  time(s) |";
  for (const std::string &N : Names)
    OS << " " << N << " |";
  OS << '\n';
  for (size_t M = 0; M < Marks.size(); ++M) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%8.4f", Marks[M]);
    OS << Buf << " |";
    for (size_t S = 0; S < Series.size(); ++S) {
      std::snprintf(Buf, sizeof(Buf), " %5.1f%%", Series[S][M] * 100.0);
      OS << Buf;
      OS << std::string(Names[S].size() > 6 ? Names[S].size() - 6 : 1, ' ')
         << "|";
    }
    OS << '\n';
  }
  return OS.str();
}

const LoCBucket eval::Table7Buckets[4] = {
    {0, 99, "< 100"},
    {100, 499, "100 - 500"},
    {500, 999, "500 - 1000"},
    {1000, 0, "> 1000"},
};

int eval::bucketOf(size_t LoC) {
  for (int I = 0; I < 4; ++I) {
    if (Table7Buckets[I].MaxLoC == 0 || LoC <= Table7Buckets[I].MaxLoC)
      return I;
  }
  return 3;
}
