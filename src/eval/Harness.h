//===- eval/Harness.h - Two-tool evaluation harness --------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs Graph.js and the ODGen baseline over a package list, collecting
/// per-package outcomes (reports, timings, graph sizes, timeouts). Every
/// Table 4/5/6/7 and Figure 6/7 bench builds on this harness.
///
/// Work budgets model the evaluation's 5-minute per-package timeout
/// deterministically (so benches are reproducible across machines).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_EVAL_HARNESS_H
#define GJS_EVAL_HARNESS_H

#include "eval/Metrics.h"
#include "odgen/ODGenAnalyzer.h"
#include "scanner/Scanner.h"
#include "workload/Packages.h"

#include <vector>

namespace gjs {
namespace eval {

struct HarnessOptions {
  scanner::ScanOptions Scan;
  odgen::ODGenOptions ODGen;

  /// Defaults mirroring the evaluation setup: generous budgets for
  /// Graph.js (it rarely times out — 1.8% of packages) and the baseline's
  /// published behavior under state explosion.
  static HarnessOptions defaults();
};

/// Runs Graph.js on every package. With Jobs > 1 the scans go through the
/// supervised worker pool (driver::ProcessPool): one forked process per
/// package, OS-level crash containment, same outcome shape.
std::vector<PackageOutcome>
runGraphJS(const std::vector<workload::Package> &Packages,
           const scanner::ScanOptions &Options, unsigned Jobs = 1);

/// Runs the ODGen baseline on every package.
std::vector<PackageOutcome>
runODGen(const std::vector<workload::Package> &Packages,
         const odgen::ODGenOptions &Options);

} // namespace eval
} // namespace gjs

#endif // GJS_EVAL_HARNESS_H
