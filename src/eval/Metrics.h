//===- eval/Metrics.h - Evaluation metrics -----------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation's scoring machinery (§5.2):
///
///  - **TP**: a reported vulnerability whose type and sink line match a
///    dataset annotation. (ODGen gets the paper's leniency: a type-only
///    match also counts.)
///  - **FP**: a report with no matching annotation.
///  - **TFP** ("true false positive"): an FP that does not correspond to
///    any actually-exploitable sink (reports on unannotated-but-real
///    extra sinks are FPs but not TFPs — the datasets are incomplete).
///  - precision = TP/(TP+TFP), recall = TP/(TP+FN), F1 harmonic mean.
///
/// Plus the aggregation helpers behind Figure 7 (CDF of analysis time),
/// Figure 6 (Venn decomposition), and Table 7 (graph size per LoC bucket).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_EVAL_METRICS_H
#define GJS_EVAL_METRICS_H

#include "obs/Counters.h"
#include "queries/VulnTypes.h"
#include "workload/Packages.h"

#include <string>
#include <vector>

namespace gjs {
namespace eval {

/// One degradation-ladder attempt's timing (Graph.js only).
struct AttemptTiming {
  unsigned Level = 0;      ///< Ladder level (0 = full pipeline).
  double GraphSeconds = 0; ///< Parse + normalize + build + import.
  double QuerySeconds = 0;
  bool TimedOut = false; ///< This attempt hit a deadline/budget.
};

/// One tool's outcome on one package.
struct PackageOutcome {
  std::vector<queries::VulnReport> Reports;
  bool TimedOut = false;
  /// Per-phase timeout attribution (Graph.js only): whether the timeout hit
  /// during graph construction (parse/normalize/build/import) vs. during
  /// querying (a query-engine step-budget exhaustion is a distinct failure
  /// from a graph that never finished building).
  bool BuildTimedOut = false;
  bool QueryTimedOut = false;
  /// Degradation-ladder level the final (reported) attempt ran at
  /// (Graph.js only; 0 = full pipeline).
  unsigned Degradation = 0;
  /// Ladder retries taken (Graph.js only).
  unsigned Retries = 0;
  /// All timings below sum over *every* ladder attempt — a level-0 attempt
  /// that burned its whole deadline still shows up in the package's cost
  /// (the final attempt alone would under-report retried packages).
  double Seconds = 0;       ///< Total analysis wall-clock time.
  double GraphSeconds = 0;  ///< Graph-construction phase.
  double QuerySeconds = 0;  ///< Traversal/query phase.
  /// Per-attempt breakdown, in ladder order (Graph.js only).
  std::vector<AttemptTiming> Attempts;
  /// obs counter deltas over the package (empty unless counters enabled).
  obs::CounterSnapshot Counters;
  size_t GraphNodes = 0;
  size_t GraphEdges = 0;
  bool GraphBuilt = true;   ///< False when construction timed out.
  /// Pre-query pruning outcome (Graph.js only): vulnerability classes
  /// skipped by the summary stage and the per-class decision string.
  unsigned PrunedQueries = 0;
  std::string PruneReason;
};

/// Sums each counter across packages (the harness-level aggregate that
/// sits next to the Table 6 wall-clock phases).
obs::CounterSnapshot
aggregateCounters(const std::vector<PackageOutcome> &Outcomes);

/// Confusion counts for one vulnerability class.
struct ClassStats {
  size_t Total = 0; ///< Annotated vulnerabilities.
  size_t TP = 0;
  size_t FP = 0;
  size_t TFP = 0;

  double recall() const { return Total ? double(TP) / double(Total) : 0; }
  double precision() const {
    return TP + TFP ? double(TP) / double(TP + TFP) : 0;
  }
  double f1() const {
    double P = precision(), R = recall();
    return P + R > 0 ? 2 * P * R / (P + R) : 0;
  }

  ClassStats &operator+=(const ClassStats &O) {
    Total += O.Total;
    TP += O.TP;
    FP += O.FP;
    TFP += O.TFP;
    return *this;
  }
};

/// Matching policy.
struct ScorePolicy {
  /// Accept a report whose type matches an unmatched annotation even when
  /// the line differs (the paper grants ODGen this leniency, §5.2).
  bool TypeOnlyMatch = false;
};

/// Scores one package: matches reports against annotations.
ClassStats scorePackage(const workload::Package &P,
                        const std::vector<queries::VulnReport> &Reports,
                        queries::VulnType Class, ScorePolicy Policy = {});

/// Scores a whole dataset for one class.
ClassStats scoreDataset(const std::vector<workload::Package> &Packages,
                        const std::vector<PackageOutcome> &Outcomes,
                        queries::VulnType Class, ScorePolicy Policy = {});

/// Which annotated vulnerabilities a tool found (for the Venn diagram):
/// one bool per (package, annotation) pair, flattened in dataset order.
std::vector<bool> detectedFlags(
    const std::vector<workload::Package> &Packages,
    const std::vector<PackageOutcome> &Outcomes, ScorePolicy Policy = {});

/// Venn decomposition of two tools' detections.
struct VennCounts {
  size_t Both = 0;
  size_t OnlyA = 0;
  size_t OnlyB = 0;
  size_t Neither = 0;
};
VennCounts venn(const std::vector<bool> &A, const std::vector<bool> &B);

/// Fraction of samples with value <= X, for each X in Marks.
std::vector<double> cdf(std::vector<double> Samples,
                        const std::vector<double> &Marks);

/// Renders an ASCII CDF plot (one row per series).
std::string renderCDF(const std::vector<std::string> &Names,
                      const std::vector<std::vector<double>> &SeriesTimes,
                      const std::vector<double> &Marks);

/// Table 7 LoC buckets.
struct LoCBucket {
  size_t MinLoC, MaxLoC; ///< Inclusive range; MaxLoC==0 means unbounded.
  const char *Label;
};
extern const LoCBucket Table7Buckets[4];
int bucketOf(size_t LoC);

} // namespace eval
} // namespace gjs

#endif // GJS_EVAL_METRICS_H
