//===- eval/Harness.cpp - Two-tool evaluation harness ----------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Harness.h"

#include "driver/BatchDriver.h"
#include "driver/ProcessPool.h"

using namespace gjs;
using namespace gjs::eval;
using workload::Package;

HarnessOptions HarnessOptions::defaults() {
  HarnessOptions O;
  // Graph.js: the 5-minute timeout expressed as deterministic budgets.
  O.Scan.Builder.WorkBudget = 2000000;
  O.Scan.Engine.WorkBudget = 3000000;
  O.Scan.Engine.MaxHops = 24;
  // The baseline's published budget behavior (state forking, §5.2).
  O.ODGen.WorkBudget = 50000;
  return O;
}

std::vector<PackageOutcome>
eval::runGraphJS(const std::vector<Package> &Packages,
                 const scanner::ScanOptions &Options, unsigned Jobs) {
  // The harness is a thin layer over the batch driver (same isolation and
  // degradation behavior as `graphjs batch`, just without a journal) — or
  // over the worker pool when parallelism is requested.
  driver::BatchOptions BO;
  BO.Scan = Options;

  std::vector<driver::BatchInput> Inputs;
  Inputs.reserve(Packages.size());
  for (const Package &P : Packages)
    Inputs.push_back({P.Name, P.Files});

  driver::BatchSummary Summary;
  if (Jobs > 1) {
    driver::PoolOptions PO;
    PO.Batch = std::move(BO);
    PO.Jobs = Jobs;
    if (PO.Batch.Scan.Fault) {
      PO.Faults.push_back(*PO.Batch.Scan.Fault);
      PO.Batch.Scan.Fault.reset();
    }
    Summary = driver::ProcessPool(std::move(PO)).run(Inputs);
  } else {
    Summary = driver::BatchDriver(std::move(BO)).run(Inputs);
  }

  std::vector<PackageOutcome> Out;
  Out.reserve(Summary.Outcomes.size());
  for (driver::BatchOutcome &B : Summary.Outcomes) {
    scanner::ScanResult &R = B.Result;
    PackageOutcome O;
    // Graph.js keeps whatever the partial MDG yielded (§5.2's graceful
    // degradation) — timeouts no longer clear the report list.
    O.Reports = std::move(R.Reports);
    O.TimedOut = R.timedOut();
    O.BuildTimedOut = R.timedOutIn(scanner::ScanPhase::Parse) ||
                      R.timedOutIn(scanner::ScanPhase::Normalize) ||
                      R.timedOutIn(scanner::ScanPhase::Build) ||
                      R.timedOutIn(scanner::ScanPhase::Import);
    O.QueryTimedOut = R.timedOutIn(scanner::ScanPhase::Query);
    O.Degradation = R.Degradation;
    O.Retries = R.Retries;
    O.PrunedQueries = R.PrunedQueries;
    O.PruneReason = R.PruneReason;
    // Cumulative across the degradation ladder: a retried package's cost
    // includes the attempts that failed, not just the one that won.
    O.Seconds = R.CumulativeTimes.total();
    O.GraphSeconds = R.CumulativeTimes.Parse + R.CumulativeTimes.GraphBuild +
                     R.CumulativeTimes.DbImport;
    O.QuerySeconds = R.CumulativeTimes.Query;
    for (const scanner::AttemptRecord &A : R.AttemptLog)
      O.Attempts.push_back({A.Level,
                            A.Times.Parse + A.Times.GraphBuild +
                                A.Times.DbImport,
                            A.Times.Query, A.TimedOut});
    O.Counters = std::move(R.Counters);
    // The queried graph proper (the paper folds AST/CFG counts into both
    // sides; we report each tool's actual queried graph — see
    // EXPERIMENTS.md for the accounting note).
    O.GraphNodes = R.MDGNodes;
    O.GraphEdges = R.MDGEdges;
    O.GraphBuilt = !R.parseFailed();
    Out.push_back(std::move(O));
  }
  return Out;
}

std::vector<PackageOutcome>
eval::runODGen(const std::vector<Package> &Packages,
               const odgen::ODGenOptions &Options) {
  odgen::ODGenAnalyzer A(Options);
  std::vector<PackageOutcome> Out;
  Out.reserve(Packages.size());
  for (const Package &P : Packages) {
    PackageOutcome O;
    for (const scanner::SourceFile &F : P.Files) {
      odgen::ODGenResult R = A.analyze(F.Contents);
      O.Reports.insert(O.Reports.end(), R.Reports.begin(), R.Reports.end());
      O.TimedOut |= R.TimedOut;
      O.GraphSeconds += R.GraphSeconds;
      O.QuerySeconds += R.QuerySeconds;
      O.Seconds += R.GraphSeconds + R.QuerySeconds;
      O.GraphNodes += R.NumNodes;
      O.GraphEdges += R.NumEdges;
      O.GraphBuilt &= !R.TimedOut;
    }
    // ODGen stays all-or-nothing: a timed-out package yields no findings
    // (§5.2/§5.5 — the contrast the evaluation measures).
    if (O.TimedOut)
      O.Reports.clear();
    Out.push_back(std::move(O));
  }
  return Out;
}
