//===- eval/Harness.cpp - Two-tool evaluation harness ----------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Harness.h"

using namespace gjs;
using namespace gjs::eval;
using workload::Package;

HarnessOptions HarnessOptions::defaults() {
  HarnessOptions O;
  // Graph.js: the 5-minute timeout expressed as deterministic budgets.
  O.Scan.Builder.WorkBudget = 2000000;
  O.Scan.Engine.WorkBudget = 3000000;
  O.Scan.Engine.MaxHops = 24;
  // The baseline's published budget behavior (state forking, §5.2).
  O.ODGen.WorkBudget = 50000;
  return O;
}

std::vector<PackageOutcome>
eval::runGraphJS(const std::vector<Package> &Packages,
                 const scanner::ScanOptions &Options) {
  scanner::Scanner S(Options);
  std::vector<PackageOutcome> Out;
  Out.reserve(Packages.size());
  for (const Package &P : Packages) {
    scanner::ScanResult R = S.scanPackage(P.Files);
    PackageOutcome O;
    O.Reports = std::move(R.Reports);
    O.TimedOut = R.TimedOut;
    O.Seconds = R.Times.total();
    O.GraphSeconds = R.Times.Parse + R.Times.GraphBuild + R.Times.DbImport;
    O.QuerySeconds = R.Times.Query;
    // The queried graph proper (the paper folds AST/CFG counts into both
    // sides; we report each tool's actual queried graph — see
    // EXPERIMENTS.md for the accounting note).
    O.GraphNodes = R.MDGNodes;
    O.GraphEdges = R.MDGEdges;
    O.GraphBuilt = !R.ParseFailed;
    if (O.TimedOut)
      O.Reports.clear(); // A timed-out package yields no findings.
    Out.push_back(std::move(O));
  }
  return Out;
}

std::vector<PackageOutcome>
eval::runODGen(const std::vector<Package> &Packages,
               const odgen::ODGenOptions &Options) {
  odgen::ODGenAnalyzer A(Options);
  std::vector<PackageOutcome> Out;
  Out.reserve(Packages.size());
  for (const Package &P : Packages) {
    PackageOutcome O;
    for (const scanner::SourceFile &F : P.Files) {
      odgen::ODGenResult R = A.analyze(F.Contents);
      O.Reports.insert(O.Reports.end(), R.Reports.begin(), R.Reports.end());
      O.TimedOut |= R.TimedOut;
      O.GraphSeconds += R.GraphSeconds;
      O.QuerySeconds += R.QuerySeconds;
      O.Seconds += R.GraphSeconds + R.QuerySeconds;
      O.GraphNodes += R.NumNodes;
      O.GraphEdges += R.NumEdges;
      O.GraphBuilt &= !R.TimedOut;
    }
    if (O.TimedOut)
      O.Reports.clear();
    Out.push_back(std::move(O));
  }
  return Out;
}
