//===- driver/WorkLedger.cpp - Crash-only distributed corpus draining ------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/WorkLedger.h"

#include "obs/Counters.h"
#include "obs/Histogram.h"
#include "obs/Metrics.h"
#include "support/JSON.h"
#include "support/Timer.h"

#include <algorithm>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

using namespace gjs;
using namespace gjs::driver;

namespace fs = std::filesystem;

namespace {

/// Whole-file read; empty string when missing/unreadable.
std::string readFileAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return {};
  std::string S((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  return S;
}

/// Atomic create: O_CREAT|O_EXCL is the one filesystem primitive that
/// cannot race — exactly one contender ever sees success. The claim/steal
/// token ratchet is built entirely on it.
bool createExclusive(const std::string &Path, const std::string &Content) {
  int FD = ::open(Path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (FD < 0)
    return false;
  size_t Off = 0;
  while (Off < Content.size()) {
    ssize_t N = ::write(FD, Content.data() + Off, Content.size() - Off);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  ::close(FD);
  return true;
}

/// Write-temp-then-rename: readers see the old content or the new content,
/// never a torn half (heartbeat/owner files are rewritten while observers
/// poll them).
bool writeFileAtomic(const std::string &Path, const std::string &Content) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Content;
    if (!Out.flush())
      return false;
  }
  return ::rename(Tmp.c_str(), Path.c_str()) == 0;
}

double fileMtime(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return 0;
  return static_cast<double>(St.st_mtime);
}

/// Single-record framed file (owner/done/quarantine markers): unframe +
/// parse the first line, false on torn/corrupt content.
bool readFramedObject(const std::string &Path, json::Value &Out) {
  std::string Raw = readFileAll(Path);
  if (Raw.empty())
    return false;
  size_t NL = Raw.find('\n');
  if (NL != std::string::npos)
    Raw.resize(NL);
  std::string Payload;
  if (!unframeJournalLine(Raw, Payload))
    return false;
  return json::parse(Payload, Out) && Out.isObject();
}

std::string sanitizeName(const std::string &Name) {
  std::string Out;
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '.' ||
            C == '_' || C == '-')
               ? C
               : '_';
  if (Out.size() > 80)
    Out.resize(80);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// WorkLedger
//===----------------------------------------------------------------------===//

WorkLedger::WorkLedger(LedgerOptions O) : Options(std::move(O)) {
  if (Options.ShardSize == 0)
    Options.ShardSize = 1;
  if (Options.HeartbeatSeconds <= 0)
    Options.HeartbeatSeconds = Options.LeaseExpirySeconds / 3.0;
  if (Options.SupervisorId.empty()) {
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "%d-%llx", ::getpid(),
                  static_cast<unsigned long long>(nowUnixSeconds() * 1e6));
    Options.SupervisorId = Buf;
  }
}

double WorkLedger::nowUnixSeconds() {
  struct timeval TV;
  ::gettimeofday(&TV, nullptr);
  return static_cast<double>(TV.tv_sec) +
         static_cast<double>(TV.tv_usec) / 1e6;
}

bool WorkLedger::init(const std::vector<std::string> &PackageNames,
                      std::string *Error) {
  std::error_code EC;
  fs::create_directories(Options.Dir + "/shards", EC);
  fs::create_directories(Options.Dir + "/quarantine", EC);
  if (EC) {
    if (Error)
      *Error = "cannot create ledger directory " + Options.Dir + ": " +
               EC.message();
    return false;
  }

  Names = PackageNames;
  Shards.clear();
  for (size_t I = 0; I < Names.size(); I += Options.ShardSize) {
    std::vector<size_t> Shard;
    for (size_t J = I; J < std::min(I + Options.ShardSize, Names.size()); ++J)
      Shard.push_back(J);
    Shards.push_back(std::move(Shard));
  }

  json::Object M;
  M["version"] = json::Value(1u);
  M["shard_size"] = json::Value(static_cast<unsigned long>(Options.ShardSize));
  json::Array Pkgs;
  for (const std::string &N : Names)
    Pkgs.push_back(json::Value(N));
  M["packages"] = json::Value(std::move(Pkgs));
  std::string Manifest = frameJournalLine(json::Value(std::move(M)).str());

  std::string Path = Options.Dir + "/manifest.json";
  if (createExclusive(Path, Manifest + "\n"))
    return true;

  // A joiner: the manifest must describe the exact same corpus partition,
  // otherwise two different batches are fighting over one ledger.
  json::Value V;
  if (!readFramedObject(Path, V)) {
    if (Error)
      *Error = "ledger manifest at " + Path + " is torn or corrupt";
    return false;
  }
  std::string Theirs;
  {
    const json::Object &O = V.asObject();
    auto SIt = O.find("shard_size");
    auto PIt = O.find("packages");
    if (SIt == O.end() || !SIt->second.isNumber() || PIt == O.end() ||
        !PIt->second.isArray()) {
      if (Error)
        *Error = "ledger manifest at " + Path + " is malformed";
      return false;
    }
    if (static_cast<size_t>(SIt->second.asNumber()) != Options.ShardSize) {
      if (Error)
        *Error = "ledger at " + Options.Dir +
                 " was created with a different --shard-size";
      return false;
    }
    const json::Array &A = PIt->second.asArray();
    if (A.size() != Names.size()) {
      if (Error)
        *Error = "ledger at " + Options.Dir +
                 " was created for a different corpus (" +
                 std::to_string(A.size()) + " packages, got " +
                 std::to_string(Names.size()) + ")";
      return false;
    }
    for (size_t I = 0; I < A.size(); ++I) {
      if (!A[I].isString() || A[I].asString() != Names[I]) {
        if (Error)
          *Error = "ledger at " + Options.Dir +
                   " was created for a different corpus (package " +
                   std::to_string(I) + " mismatch)";
        return false;
      }
    }
  }
  (void)Theirs;
  return true;
}

std::string WorkLedger::shardPrefix(size_t Shard) const {
  return Options.Dir + "/shards/s" + std::to_string(Shard);
}

uint64_t WorkLedger::maxToken(size_t Shard) const {
  // Tokens are dense by construction: claims create tok.1, steals create
  // exactly max+1. Walking up from 1 is correct and cheap (steals are rare).
  uint64_t K = 0;
  while (fs::exists(shardPrefix(Shard) + ".tok." +
                    std::to_string(K + 1)))
    ++K;
  return K;
}

bool WorkLedger::writeOwnerFile(const LeaseInfo &Lease) {
  json::Object O;
  O["shard"] = json::Value(static_cast<unsigned long>(Lease.Shard));
  O["token"] = json::Value(static_cast<unsigned long>(Lease.Token));
  O["holder"] = json::Value(Lease.Holder);
  O["heartbeat"] = json::Value(Lease.HeartbeatUnix);
  std::string Path = shardPrefix(Lease.Shard) + ".owner.t" +
                     std::to_string(Lease.Token);
  return writeFileAtomic(Path,
                         frameJournalLine(json::Value(std::move(O)).str()) +
                             "\n");
}

std::optional<LeaseInfo> WorkLedger::claimFresh() {
  for (size_t S = 0; S < Shards.size(); ++S) {
    if (shardDone(S))
      continue;
    std::string Tok1 = shardPrefix(S) + ".tok.1";
    if (fs::exists(Tok1))
      continue;
    if (!createExclusive(Tok1, Options.SupervisorId + "\n"))
      continue; // Lost the race; move on.
    LeaseInfo L;
    L.Shard = S;
    L.Token = 1;
    L.Holder = Options.SupervisorId;
    L.HeartbeatUnix = nowUnixSeconds();
    writeOwnerFile(L);
    ++ClaimsN;
    obs::counters::LedgerClaims.merge(1);
    return L;
  }
  return std::nullopt;
}

std::optional<LeaseInfo> WorkLedger::owner(size_t Shard) const {
  uint64_t K = maxToken(Shard);
  if (K == 0)
    return std::nullopt;
  LeaseInfo L;
  L.Shard = Shard;
  L.Token = K;
  json::Value V;
  std::string OwnerPath = shardPrefix(Shard) + ".owner.t" + std::to_string(K);
  if (readFramedObject(OwnerPath, V)) {
    const json::Object &O = V.asObject();
    auto HIt = O.find("holder");
    if (HIt != O.end() && HIt->second.isString())
      L.Holder = HIt->second.asString();
    auto BIt = O.find("heartbeat");
    if (BIt != O.end() && BIt->second.isNumber())
      L.HeartbeatUnix = BIt->second.asNumber();
  } else {
    // Claimed (the token exists) but the owner record never landed — the
    // claimant died in the window between the two writes. The token file's
    // mtime stands in for the heartbeat so the lease still expires.
    L.HeartbeatUnix =
        fileMtime(shardPrefix(Shard) + ".tok." + std::to_string(K));
  }
  return L;
}

std::optional<LeaseInfo> WorkLedger::stealStale() {
  double Now = nowUnixSeconds();
  for (size_t S = 0; S < Shards.size(); ++S) {
    if (shardDone(S))
      continue;
    std::optional<LeaseInfo> Cur = owner(S);
    if (!Cur)
      continue; // Never claimed: claimFresh territory.
    if (Now - Cur->HeartbeatUnix <= Options.LeaseExpirySeconds)
      continue; // Holder is live.
    ++ExpiredN;
    obs::counters::LedgerExpired.merge(1);
    // Ratchet the fencing token: O_EXCL picks exactly one thief, and every
    // artifact the stale holder keeps writing stays under its old token —
    // the late writer loses structurally.
    std::string NextTok =
        shardPrefix(S) + ".tok." + std::to_string(Cur->Token + 1);
    if (!createExclusive(NextTok, Options.SupervisorId + "\n"))
      continue; // Someone else stole it first.
    LeaseInfo L;
    L.Shard = S;
    L.Token = Cur->Token + 1;
    L.Holder = Options.SupervisorId;
    L.HeartbeatUnix = nowUnixSeconds();
    writeOwnerFile(L);
    ++StealsN;
    obs::counters::LedgerSteals.merge(1);
    return L;
  }
  return std::nullopt;
}

bool WorkLedger::heartbeat(LeaseInfo &Lease) {
  if (maxToken(Lease.Shard) > Lease.Token)
    return false; // Fenced: someone stole this shard.
  Lease.HeartbeatUnix = nowUnixSeconds();
  writeOwnerFile(Lease);
  // Re-check after the write: a steal that raced the rewrite already owns
  // the shard regardless of what the old owner file now says.
  return maxToken(Lease.Shard) <= Lease.Token;
}

bool WorkLedger::shardDone(size_t Shard) const {
  uint64_t Max = maxToken(Shard);
  for (uint64_t K = 1; K <= Max; ++K)
    if (fs::exists(shardPrefix(Shard) + ".done.t" + std::to_string(K)))
      return true;
  return false;
}

bool WorkLedger::allDone() const {
  for (size_t S = 0; S < Shards.size(); ++S)
    if (!shardDone(S))
      return false;
  return true;
}

void WorkLedger::markDone(const LeaseInfo &Lease, size_t Terminals) {
  json::Object O;
  O["shard"] = json::Value(static_cast<unsigned long>(Lease.Shard));
  O["token"] = json::Value(static_cast<unsigned long>(Lease.Token));
  O["terminals"] = json::Value(static_cast<unsigned long>(Terminals));
  writeFileAtomic(shardPrefix(Lease.Shard) + ".done.t" +
                      std::to_string(Lease.Token),
                  frameJournalLine(json::Value(std::move(O)).str()) + "\n");
}

std::string WorkLedger::shardJournalPath(const LeaseInfo &Lease) const {
  return shardPrefix(Lease.Shard) + ".journal.t" +
         std::to_string(Lease.Token) + ".jsonl";
}

void WorkLedger::appendRecord(const LeaseInfo &Lease,
                              const std::string &Payload) {
  std::ofstream Out(shardJournalPath(Lease),
                    std::ios::out | std::ios::app);
  Out << frameJournalLine(Payload) << '\n';
  Out.flush();
}

WorkLedger::ShardHistory WorkLedger::readShardHistory(size_t Shard) const {
  ShardHistory H;
  std::map<std::string, unsigned> Starts, CleanTerms;
  uint64_t Max = maxToken(Shard);
  for (uint64_t K = 1; K <= Max; ++K) {
    LeaseInfo L;
    L.Shard = Shard;
    L.Token = K;
    std::ifstream In(shardJournalPath(L));
    if (!In)
      continue;
    std::set<std::string> SeenThisToken;
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.empty())
        continue;
      std::string Payload;
      json::Value V;
      if (!unframeJournalLine(Line, Payload) || !json::parse(Payload, V) ||
          !V.isObject()) {
        ++H.DroppedLines;
        continue;
      }
      const json::Object &O = V.asObject();
      auto SIt = O.find("start");
      if (SIt != O.end() && SIt->second.isString()) {
        ++Starts[SIt->second.asString()];
        continue;
      }
      auto PIt = O.find("package");
      if (PIt == O.end() || !PIt->second.isString())
        continue;
      const std::string &Pkg = PIt->second.asString();
      // Highest token wins, first record within a token: deterministic
      // under steal races, and the *fencing* semantics — when a stale
      // holder's late write races the thief's scan of the same package,
      // the thief (higher token, the legitimate owner) provides the
      // record of record. Tokens iterate ascending here, so a later
      // token's first record overwrites an earlier token's.
      if (!SeenThisToken.count(Pkg)) {
        SeenThisToken.insert(Pkg);
        H.Terminals[Pkg] = Payload;
      }
      // Strike accounting: kill-class failed terminals keep their start's
      // strike; every other terminal consumes it.
      bool KillClass = false;
      auto StIt = O.find("status");
      if (StIt != O.end() && StIt->second.isString() &&
          StIt->second.asString() == "failed") {
        auto EIt = O.find("errors");
        if (EIt != O.end() && EIt->second.isArray() &&
            !EIt->second.asArray().empty() &&
            EIt->second.asArray()[0].isObject()) {
          const json::Object &EO = EIt->second.asArray()[0].asObject();
          auto KIt = EO.find("kind");
          if (KIt != EO.end() && KIt->second.isString()) {
            const std::string &Kind = KIt->second.asString();
            KillClass = Kind == "crashed" || Kind == "killed-oom" ||
                        Kind == "killed-deadline";
          }
        }
      }
      if (!KillClass)
        ++CleanTerms[Pkg];
    }
  }
  if (H.DroppedLines)
    obs::counters::JournalDroppedLines.merge(H.DroppedLines);
  for (const auto &[Pkg, N] : Starts) {
    unsigned Clean = CleanTerms.count(Pkg) ? CleanTerms[Pkg] : 0;
    if (N > Clean)
      H.Strikes[Pkg] = N - Clean;
  }
  return H;
}

bool WorkLedger::isQuarantined(const std::string &Package) const {
  char Crc[16];
  std::snprintf(Crc, sizeof(Crc), "%08x", journalCrc32(Package));
  return fs::exists(Options.Dir + "/quarantine/" + sanitizeName(Package) +
                    "-" + Crc + ".json");
}

void WorkLedger::quarantine(const std::string &Package, unsigned Strikes) {
  json::Object O;
  O["package"] = json::Value(Package);
  O["strikes"] = json::Value(Strikes);
  O["supervisor"] = json::Value(Options.SupervisorId);
  O["time"] = json::Value(nowUnixSeconds());
  char Crc[16];
  std::snprintf(Crc, sizeof(Crc), "%08x", journalCrc32(Package));
  // O_EXCL: the first supervisor to trip the breaker records the history;
  // concurrent trippers are harmless no-ops.
  createExclusive(Options.Dir + "/quarantine/" + sanitizeName(Package) + "-" +
                      Crc + ".json",
                  frameJournalLine(json::Value(std::move(O)).str()) + "\n");
}

std::vector<std::string> WorkLedger::quarantinedPackages() const {
  std::vector<std::string> Out;
  std::error_code EC;
  for (const auto &E :
       fs::directory_iterator(Options.Dir + "/quarantine", EC)) {
    json::Value V;
    if (!readFramedObject(E.path().string(), V))
      continue;
    const json::Object &O = V.asObject();
    auto It = O.find("package");
    if (It != O.end() && It->second.isString())
      Out.push_back(It->second.asString());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string WorkLedger::corpusJournalPath() const {
  return Options.Dir + "/corpus.jsonl";
}

bool WorkLedger::merge(std::string *Error) {
  if (!allDone()) {
    if (Error)
      *Error = "corpus has open shards";
    return false;
  }
  std::string Out;
  for (size_t S = 0; S < Shards.size(); ++S) {
    ShardHistory H = readShardHistory(S);
    for (size_t Idx : Shards[S]) {
      const std::string &Pkg = Names[Idx];
      auto It = H.Terminals.find(Pkg);
      if (It != H.Terminals.end()) {
        Out += frameJournalLine(It->second) + "\n";
        continue;
      }
      if (isQuarantined(Pkg)) {
        // The breaker tripped but its holder died before the journal line
        // landed: synthesize the terminal from the marker.
        BatchOutcome Q;
        Q.Package = Pkg;
        Q.Status = BatchStatus::Quarantined;
        Q.Result.Errors.push_back(
            {scanner::ScanPhase::Driver, scanner::ScanErrorKind::Crashed,
             "quarantined by the poison-package circuit breaker", ""});
        Out += frameJournalLine(BatchDriver::journalLine(Q)) + "\n";
        continue;
      }
      if (Error)
        *Error = "shard " + std::to_string(S) + " is marked done but '" +
                 Pkg + "' has no terminal record";
      return false;
    }
  }
  if (!writeFileAtomic(corpusJournalPath(), Out)) {
    if (Error)
      *Error = "cannot write " + corpusJournalPath();
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// runSharedBatch
//===----------------------------------------------------------------------===//

namespace {

/// Builds the quarantined journal outcome for a poison package.
BatchOutcome quarantinedOutcome(const std::string &Pkg, unsigned Strikes) {
  BatchOutcome Q;
  Q.Package = Pkg;
  Q.Status = BatchStatus::Quarantined;
  Q.Result.Errors.push_back(
      {scanner::ScanPhase::Driver, scanner::ScanErrorKind::Crashed,
       "quarantined after " + std::to_string(Strikes) +
           " kill-class failures across supervisors",
       ""});
  return Q;
}

} // namespace

SharedBatchResult driver::runSharedBatch(const SharedBatchOptions &Options,
                                         const std::vector<BatchInput> &Inputs) {
  SharedBatchResult R;
  Timer Wall;

  WorkLedger Ledger(Options.Ledger);
  std::vector<std::string> Names;
  Names.reserve(Inputs.size());
  for (const BatchInput &In : Inputs)
    Names.push_back(In.Name);
  std::string Err;
  if (!Ledger.init(Names, &Err)) {
    std::fprintf(stderr, "batch: shared ledger: %s\n", Err.c_str());
    R.Summary.Failed = Inputs.size();
    return R;
  }

  // Chaos harness state: supervisor-global dispatch count, killed right
  // after the start record of dispatch ChaosKillAfter+1 hits disk — the
  // torn-state worst case (start without terminal).
  unsigned StartsSeen = 0;

  const double PollSeconds =
      std::min(0.1, std::max(0.02, Ledger.options().LeaseExpirySeconds / 5));
  Timer WaitClock;

  while (true) {
    std::optional<LeaseInfo> Lease = Ledger.claimFresh();
    if (!Lease)
      Lease = Ledger.stealStale();
    if (!Lease) {
      if (Ledger.allDone())
        break;
      // Some other supervisor holds the remaining shards and is live;
      // wait for it to finish or for its lease to expire.
      ::usleep(static_cast<useconds_t>(PollSeconds * 1e6));
      continue;
    }
    obs::hists::LeaseWait.recordSeconds(WaitClock.elapsedSeconds());

    // ----- Drain one shard under this lease -----
    LeaseInfo &L = *Lease;
    WorkLedger::ShardHistory History = Ledger.readShardHistory(L.Shard);
    std::set<std::string> DoneSet;
    for (const auto &[Pkg, Line] : History.Terminals)
      DoneSet.insert(Pkg);

    // Quarantine pass before any scan: a package with enough strikes (or
    // an existing marker) is journaled as quarantined, never dispatched.
    const auto &ShardIdx = Ledger.shards()[L.Shard];
    for (size_t Idx : ShardIdx) {
      const std::string &Pkg = Ledger.packageNames()[Idx];
      if (DoneSet.count(Pkg))
        continue;
      unsigned Strikes =
          History.Strikes.count(Pkg) ? History.Strikes[Pkg] : 0;
      if (!Ledger.isQuarantined(Pkg) &&
          Strikes < Ledger.options().QuarantineAfter)
        continue;
      Ledger.quarantine(Pkg, Strikes);
      BatchOutcome Q = quarantinedOutcome(Pkg, Strikes);
      Ledger.appendRecord(L, BatchDriver::journalLine(Q));
      obs::counters::QuarantinePackages.merge(1);
      ++R.Summary.Quarantined;
      R.Summary.Outcomes.push_back(std::move(Q));
      DoneSet.insert(Pkg);
    }

    std::vector<BatchInput> ShardInputs;
    std::vector<size_t> CorpusIndex; // ShardInputs position -> corpus index.
    for (size_t Idx : ShardIdx) {
      ShardInputs.push_back(Inputs[Idx]);
      CorpusIndex.push_back(Idx);
    }

    // Rebase corpus-global faults onto this shard's dispatch sequence (the
    // position among packages that will actually be scanned). Index faults
    // target the corpus *input* index in shared mode; name faults follow
    // the package.
    std::vector<scanner::FaultPlan> ShardFaults;
    {
      unsigned Seq = 0;
      for (size_t P = 0; P < ShardInputs.size(); ++P) {
        if (DoneSet.count(ShardInputs[P].Name))
          continue;
        for (const scanner::FaultPlan &F : Options.Faults) {
          bool Match = F.PackageName.empty()
                           ? F.Package == CorpusIndex[P]
                           : F.PackageName == ShardInputs[P].Name;
          if (Match) {
            scanner::FaultPlan FP = F;
            FP.Package = Seq;
            FP.PackageName.clear();
            ShardFaults.push_back(FP);
          }
        }
        ++Seq;
      }
    }

    BatchOptions BO = Options.Batch;
    BO.JournalPath = Ledger.shardJournalPath(L);
    BO.Resume = true; // Appends after the quarantine records above.
    BO.FramedJournal = true;
    BO.AlreadyDone = DoneSet;
    BO.MaxPackages = 0;

    bool Fenced = false;
    Timer HeartbeatClock;
    BO.OnTick = [&]() {
      if (Fenced)
        return false;
      if (HeartbeatClock.elapsedSeconds() >=
          Ledger.options().HeartbeatSeconds) {
        HeartbeatClock.reset();
        if (!Ledger.heartbeat(L)) {
          Fenced = true;
          return false;
        }
      }
      return true;
    };
    BO.OnPackageStart = [&](const std::string &Pkg) {
      json::Object S;
      S["start"] = json::Value(Pkg);
      S["token"] = json::Value(static_cast<unsigned long>(L.Token));
      S["supervisor"] = json::Value(Ledger.supervisorId());
      Ledger.appendRecord(L, json::Value(std::move(S)).str());
      if (Options.ChaosKillAfter && ++StartsSeen > Options.ChaosKillAfter)
        ::raise(SIGKILL);
    };

    BatchSummary Sub;
    if (Options.Jobs > 0) {
      PoolOptions PO;
      PO.Batch = BO;
      PO.Jobs = Options.Jobs;
      PO.Persistent = Options.Persistent;
      PO.RecycleAfter = static_cast<unsigned>(Options.RecycleAfter);
      PO.RecycleRssMB = Options.RecycleRssMB;
      PO.MemLimitMB = Options.MemLimitMB;
      PO.KillAfterSeconds = Options.KillAfterSeconds;
      PO.RetryCrashed = Options.RetryCrashed;
      PO.Faults = ShardFaults;
      PO.Trace = Options.Trace;
      Sub = ProcessPool(PO).run(ShardInputs);
    } else {
      // In-process drain: a process-fatal fault here kills this whole
      // supervisor after the start record — the crash loop the quarantine
      // breaker is built to end.
      if (!ShardFaults.empty())
        BO.Scan.Fault = ShardFaults.front();
      Sub = BatchDriver(BO).run(ShardInputs);
    }

    // Fold this shard's work into the supervisor-local summary (skips are
    // other tokens' terminals; don't re-report them as outcomes).
    R.Summary.Scanned += Sub.Scanned;
    R.Summary.SkippedResumed += Sub.SkippedResumed;
    R.Summary.Ok += Sub.Ok;
    R.Summary.Degraded += Sub.Degraded;
    R.Summary.Failed += Sub.Failed;
    R.Summary.Quarantined += Sub.Quarantined;
    R.Summary.TotalReports += Sub.TotalReports;
    R.Summary.TotalSeconds += Sub.TotalSeconds;
    R.Summary.Crashed += Sub.Crashed;
    R.Summary.OomKilled += Sub.OomKilled;
    R.Summary.DeadlineKilled += Sub.DeadlineKilled;
    R.Summary.Retried += Sub.Retried;
    R.Summary.Recycled += Sub.Recycled;
    std::set<std::string> ScannedNow;
    for (BatchOutcome &O : Sub.Outcomes) {
      if (O.Skipped)
        continue;
      ScannedNow.insert(O.Package);
      R.Summary.Outcomes.push_back(std::move(O));
    }

    // The shard is complete when every package has a terminal somewhere
    // (prior tokens, the quarantine pass, or this run). Anything less and
    // we were fenced or interrupted: leave the shard open for its new (or
    // next) owner and, on interrupt, stop taking work.
    bool Complete = true;
    for (size_t Idx : ShardIdx) {
      const std::string &Pkg = Ledger.packageNames()[Idx];
      if (!DoneSet.count(Pkg) && !ScannedNow.count(Pkg)) {
        Complete = false;
        break;
      }
    }
    if (Complete) {
      Ledger.markDone(L, ShardIdx.size());
      ++R.ShardsDrained;
    } else if (!Fenced) {
      // Not fenced and not complete: the drain was interrupted (SIGINT
      // drain, worker-launch collapse). Stop claiming; the lease expires
      // and another supervisor finishes the shard.
      break;
    }
    WaitClock.reset();
  }

  R.Summary.LedgerClaims = Ledger.claims();
  R.Summary.LedgerSteals = Ledger.steals();
  R.Summary.LedgerExpired = Ledger.expired();

  if (Ledger.allDone() && Ledger.merge(&Err)) {
    R.Merged = true;
    R.MergedJournal = Ledger.corpusJournalPath();
    // --journal in shared mode: a private copy of the merged corpus
    // journal, so downstream tooling keeps one well-known path.
    if (!Options.Batch.JournalPath.empty()) {
      std::error_code EC;
      fs::copy_file(Ledger.corpusJournalPath(), Options.Batch.JournalPath,
                    fs::copy_options::overwrite_existing, EC);
    }
  }

  R.Summary.WallSeconds = Wall.elapsedSeconds();
  if (!Options.Batch.MetricsPath.empty())
    obs::writePrometheusFile(Options.Batch.MetricsPath);
  return R;
}
