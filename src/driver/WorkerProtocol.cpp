//===- driver/WorkerProtocol.cpp - Supervisor<->worker framing -------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/WorkerProtocol.h"

#include "support/JSON.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

using namespace gjs;
using namespace gjs::driver;

namespace {

/// EINTR-retried full write. send(MSG_NOSIGNAL) keeps a dead peer from
/// raising SIGPIPE; falls back to write() for non-socket fds (tests run
/// frames over plain pipes too), where the caller is expected to hold
/// SIGPIPE ignored.
bool fullWrite(int FD, const char *Data, size_t Len, std::string *Error) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(FD, Data + Off, Len - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(FD, Data + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::string("write failed: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// EINTR-retried full read; false on EOF before \p Len bytes.
bool fullRead(int FD, char *Data, size_t Len, std::string *Error) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::read(FD, Data + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::string("read failed: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      if (Error)
        *Error = "peer closed";
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

void putU32LE(char *Out, uint32_t V) {
  Out[0] = static_cast<char>(V & 0xff);
  Out[1] = static_cast<char>((V >> 8) & 0xff);
  Out[2] = static_cast<char>((V >> 16) & 0xff);
  Out[3] = static_cast<char>((V >> 24) & 0xff);
}

uint32_t getU32LE(const char *In) {
  return static_cast<uint32_t>(static_cast<unsigned char>(In[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(In[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(In[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(In[3])) << 24;
}

} // namespace

bool driver::writeFrame(int FD, const std::string &Payload,
                        std::string *Error) {
  if (Payload.size() > MaxFrameBytes) {
    if (Error)
      *Error = "frame too large";
    return false;
  }
  // Each process records the frames it writes; the stitching merge folds
  // worker-side recordings into the supervisor, so the supervisor's
  // distribution covers both directions of every socketpair.
  obs::hists::FrameBytes.record(Payload.size());
  char Hdr[4];
  putU32LE(Hdr, static_cast<uint32_t>(Payload.size()));
  return fullWrite(FD, Hdr, sizeof(Hdr), Error) &&
         fullWrite(FD, Payload.data(), Payload.size(), Error);
}

bool driver::readFrame(int FD, std::string &Out, std::string *Error) {
  char Hdr[4];
  if (!fullRead(FD, Hdr, sizeof(Hdr), Error))
    return false;
  uint32_t Len = getU32LE(Hdr);
  if (Len > MaxFrameBytes) {
    if (Error)
      *Error = "frame too large";
    return false;
  }
  Out.assign(Len, '\0');
  return Len == 0 || fullRead(FD, Out.data(), Len, Error);
}

bool FrameReader::pump(int FD) {
  if (Dead)
    return false;
  char Buf4k[4096];
  for (;;) {
    ssize_t N = ::read(FD, Buf4k, sizeof(Buf4k));
    if (N > 0) {
      Buf.append(Buf4k, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true; // Drained everything currently available.
    Dead = true; // EOF or hard error.
    return false;
  }
}

bool FrameReader::next(std::string &Out) {
  if (Buf.size() < 4)
    return false;
  uint32_t Len = getU32LE(Buf.data());
  if (Len > MaxFrameBytes) {
    Dead = true; // Corrupt stream: nothing after this is trustworthy.
    return false;
  }
  if (Buf.size() < 4 + static_cast<size_t>(Len))
    return false;
  Out = Buf.substr(4, Len);
  Buf.erase(0, 4 + static_cast<size_t>(Len));
  return true;
}

std::string WorkerRequest::encode() const {
  json::Object O;
  switch (Kind) {
  case Op::Scan:
    O["op"] = json::Value("scan");
    break;
  case Op::Ping:
    O["op"] = json::Value("ping");
    break;
  case Op::Exit:
    O["op"] = json::Value("exit");
    break;
  }
  O["job"] = json::Value(static_cast<unsigned long>(JobId));
  if (HasPlanIndex)
    O["plan"] = json::Value(static_cast<unsigned long>(PlanIndex));
  if (IsRetry)
    O["retry"] = json::Value(true);
  if (!Name.empty())
    O["name"] = json::Value(Name);
  if (!Paths.empty()) {
    json::Array A;
    for (const std::string &P : Paths)
      A.push_back(json::Value(P));
    O["files"] = json::Value(std::move(A));
  }
  if (DeadlineSeconds > 0)
    O["deadline_s"] = json::Value(DeadlineSeconds);
  if (!FaultSpec.empty())
    O["fault"] = json::Value(FaultSpec);
  if (WantTrace)
    O["trace"] = json::Value(true);
  if (TraceEpochUs)
    O["epoch_us"] = json::Value(static_cast<double>(TraceEpochUs));
  return json::Value(std::move(O)).str();
}

bool WorkerRequest::decode(const std::string &Text, WorkerRequest &Out) {
  json::Value V;
  if (!json::parse(Text, V) || !V.isObject())
    return false;
  const json::Object &O = V.asObject();
  Out = WorkerRequest();

  auto It = O.find("op");
  if (It == O.end() || !It->second.isString())
    return false;
  const std::string &Op = It->second.asString();
  if (Op == "scan")
    Out.Kind = Op::Scan;
  else if (Op == "ping")
    Out.Kind = Op::Ping;
  else if (Op == "exit")
    Out.Kind = Op::Exit;
  else
    return false;

  if ((It = O.find("job")) != O.end() && It->second.isNumber())
    Out.JobId = static_cast<uint64_t>(It->second.asNumber());
  if ((It = O.find("plan")) != O.end() && It->second.isNumber()) {
    Out.HasPlanIndex = true;
    Out.PlanIndex = static_cast<size_t>(It->second.asNumber());
  }
  if ((It = O.find("retry")) != O.end() && It->second.isBool())
    Out.IsRetry = It->second.asBool();
  if ((It = O.find("name")) != O.end() && It->second.isString())
    Out.Name = It->second.asString();
  if ((It = O.find("files")) != O.end() && It->second.isArray())
    for (const json::Value &P : It->second.asArray())
      if (P.isString())
        Out.Paths.push_back(P.asString());
  if ((It = O.find("deadline_s")) != O.end() && It->second.isNumber())
    Out.DeadlineSeconds = It->second.asNumber();
  if ((It = O.find("fault")) != O.end() && It->second.isString())
    Out.FaultSpec = It->second.asString();
  if ((It = O.find("trace")) != O.end() && It->second.isBool())
    Out.WantTrace = It->second.asBool();
  if ((It = O.find("epoch_us")) != O.end() && It->second.isNumber())
    Out.TraceEpochUs = static_cast<uint64_t>(It->second.asNumber());
  return true;
}

std::vector<obs::SpanRecord>
driver::rebasedSpans(const obs::TraceRecorder &Recorder,
                     uint64_t SupervisorEpochUs) {
  // Both epochs sit on the shared CLOCK_MONOTONIC timeline, so the offset
  // between them is exact — no cross-process clock estimation needed.
  double OffsetUs = static_cast<double>(Recorder.epochUs()) -
                    static_cast<double>(SupervisorEpochUs);
  std::vector<obs::SpanRecord> Out = Recorder.spans();
  for (obs::SpanRecord &S : Out) {
    S.StartUs += OffsetUs;
    if (S.DurUs < 0)
      S.DurUs = 0; // Open at serialization: close it at zero width.
  }
  return Out;
}

std::string WorkerResponse::encode() const {
  json::Object O;
  O["job"] = json::Value(static_cast<unsigned long>(JobId));
  if (!Line.empty())
    O["line"] = json::Value(Line);
  if (Pong)
    O["pong"] = json::Value(true);
  if (Recycle)
    O["recycle"] = json::Value(true);
  if (!CounterDelta.empty()) {
    json::Object C;
    for (const auto &[Name, Value] : CounterDelta)
      C[Name] = json::Value(static_cast<unsigned long>(Value));
    O["ctr"] = json::Value(std::move(C));
  }
  if (!HistDelta.empty()) {
    json::Object H;
    for (const auto &[Name, Snap] : HistDelta) {
      json::Object S;
      S["u"] = json::Value(Snap.Unit);
      S["s"] = json::Value(static_cast<double>(Snap.Sum));
      json::Array B;
      for (const auto &[Bucket, Count] : Snap.Buckets) {
        json::Array Pair;
        Pair.push_back(json::Value(Bucket));
        Pair.push_back(json::Value(static_cast<unsigned long>(Count)));
        B.push_back(json::Value(std::move(Pair)));
      }
      S["b"] = json::Value(std::move(B));
      H[Name] = json::Value(std::move(S));
    }
    O["hist"] = json::Value(std::move(H));
  }
  if (!Spans.empty()) {
    json::Array A;
    for (const obs::SpanRecord &S : Spans) {
      json::Object SO;
      SO["n"] = json::Value(S.Name);
      SO["ts"] = json::Value(S.StartUs);
      SO["dur"] = json::Value(S.DurUs < 0 ? 0.0 : S.DurUs);
      SO["d"] = json::Value(S.Depth);
      if (S.Parent != obs::SpanRecord::npos)
        SO["p"] = json::Value(static_cast<unsigned long>(S.Parent));
      if (!S.Args.empty()) {
        json::Object AO;
        for (const auto &[Key, Value] : S.Args)
          AO[Key] = json::Value(Value);
        SO["a"] = json::Value(std::move(AO));
      }
      A.push_back(json::Value(std::move(SO)));
    }
    O["spans"] = json::Value(std::move(A));
  }
  return json::Value(std::move(O)).str();
}

bool WorkerResponse::decode(const std::string &Text, WorkerResponse &Out) {
  json::Value V;
  if (!json::parse(Text, V) || !V.isObject())
    return false;
  const json::Object &O = V.asObject();
  Out = WorkerResponse();
  auto It = O.find("job");
  if (It == O.end() || !It->second.isNumber())
    return false;
  Out.JobId = static_cast<uint64_t>(It->second.asNumber());
  if ((It = O.find("line")) != O.end() && It->second.isString())
    Out.Line = It->second.asString();
  if ((It = O.find("pong")) != O.end() && It->second.isBool())
    Out.Pong = It->second.asBool();
  if ((It = O.find("recycle")) != O.end() && It->second.isBool())
    Out.Recycle = It->second.asBool();
  if ((It = O.find("ctr")) != O.end() && It->second.isObject())
    for (const auto &[Name, Value] : It->second.asObject())
      if (Value.isNumber())
        Out.CounterDelta[Name] = static_cast<uint64_t>(Value.asNumber());
  if ((It = O.find("hist")) != O.end() && It->second.isObject()) {
    for (const auto &[Name, HV] : It->second.asObject()) {
      if (!HV.isObject())
        continue;
      const json::Object &HO = HV.asObject();
      obs::HistogramSnapshot Snap;
      auto UIt = HO.find("u");
      if (UIt != HO.end() && UIt->second.isString())
        Snap.Unit = UIt->second.asString();
      auto SIt = HO.find("s");
      if (SIt != HO.end() && SIt->second.isNumber())
        Snap.Sum = static_cast<uint64_t>(SIt->second.asNumber());
      auto BIt = HO.find("b");
      if (BIt != HO.end() && BIt->second.isArray())
        for (const json::Value &Pair : BIt->second.asArray()) {
          if (!Pair.isArray() || Pair.asArray().size() != 2 ||
              !Pair.asArray()[0].isNumber() || !Pair.asArray()[1].isNumber())
            continue;
          Snap.Buckets.emplace_back(
              static_cast<unsigned>(Pair.asArray()[0].asNumber()),
              static_cast<uint64_t>(Pair.asArray()[1].asNumber()));
        }
      if (!Snap.Buckets.empty())
        Out.HistDelta[Name] = std::move(Snap);
    }
  }
  if ((It = O.find("spans")) != O.end() && It->second.isArray()) {
    for (const json::Value &SV : It->second.asArray()) {
      if (!SV.isObject())
        continue;
      const json::Object &SO = SV.asObject();
      obs::SpanRecord S;
      auto NIt = SO.find("n");
      if (NIt == SO.end() || !NIt->second.isString())
        continue;
      S.Name = NIt->second.asString();
      auto TIt = SO.find("ts");
      if (TIt != SO.end() && TIt->second.isNumber())
        S.StartUs = TIt->second.asNumber();
      auto DIt = SO.find("dur");
      if (DIt != SO.end() && DIt->second.isNumber())
        S.DurUs = DIt->second.asNumber();
      auto DepIt = SO.find("d");
      if (DepIt != SO.end() && DepIt->second.isNumber())
        S.Depth = static_cast<unsigned>(DepIt->second.asNumber());
      auto PIt = SO.find("p");
      S.Parent = PIt != SO.end() && PIt->second.isNumber()
                     ? static_cast<size_t>(PIt->second.asNumber())
                     : obs::SpanRecord::npos;
      auto AIt = SO.find("a");
      if (AIt != SO.end() && AIt->second.isObject())
        for (const auto &[Key, Value] : AIt->second.asObject())
          if (Value.isString())
            S.Args.emplace_back(Key, Value.asString());
      Out.Spans.push_back(std::move(S));
    }
  }
  return true;
}
