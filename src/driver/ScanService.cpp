//===- driver/ScanService.cpp - Long-lived graphjs scan daemon -------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/ScanService.h"

#include "driver/BatchDriver.h"
#include "driver/WorkerProtocol.h"
#include "obs/Counters.h"
#include "obs/Histogram.h"
#include "obs/Metrics.h"
#include "support/JSON.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gjs;
using namespace gjs::driver;

namespace {

/// SIGINT/SIGTERM drain flag: the daemon stops admitting scans, finishes
/// in-flight requests, flushes the journal, and exits.
volatile std::sig_atomic_t ServeStopRequested = 0;

void serveStopHandler(int) { ServeStopRequested = 1; }

struct ServeSignalGuard {
  struct sigaction OldInt {};
  struct sigaction OldTerm {};
  ServeSignalGuard() {
    ServeStopRequested = 0;
    struct sigaction SA {};
    SA.sa_handler = serveStopHandler;
    sigemptyset(&SA.sa_mask);
    ::sigaction(SIGINT, &SA, &OldInt);
    ::sigaction(SIGTERM, &SA, &OldTerm);
  }
  ~ServeSignalGuard() {
    ::sigaction(SIGINT, &OldInt, nullptr);
    ::sigaction(SIGTERM, &OldTerm, nullptr);
  }
};

/// The serve-mode worker body: like the pool's persistent worker, but the
/// package spec (name + file paths) rides in on each request — jobs arrive
/// from the network after the worker was forked, so nothing can be
/// inherited through the memory image.
int serveWorkerMain(int FD, const scanner::ScanOptions &BaseScan,
                    unsigned RecycleAfter, size_t RecycleRssMB) {
  // Shed every inherited supervisor fd (listening socket, client
  // connections, journal): a worker holding the listen socket would keep
  // the address alive past daemon shutdown, and one holding a client fd
  // would mask that client's EOF.
  for (int I = 3; I < 1024; ++I)
    if (I != FD)
      ::close(I);
  installOomExitHandler();
  // Workers record their own scan telemetry; each response carries the
  // job's deltas so the daemon's registries (and its `metrics` op) cover
  // work done in worker processes, not just supervisor bookkeeping.
  obs::setCountersEnabled(true);
  obs::resetCounters();
  unsigned Done = 0;
  std::string Text;
  while (readFrame(FD, Text)) {
    WorkerRequest Req;
    if (!WorkerRequest::decode(Text, Req))
      return 121; // Protocol corruption: die visibly, never guess a job.
    if (Req.Kind == WorkerRequest::Op::Exit)
      return 0;
    if (Req.Kind == WorkerRequest::Op::Ping) {
      WorkerResponse Resp;
      Resp.JobId = Req.JobId;
      Resp.Pong = true;
      if (!writeFrame(FD, Resp.encode()))
        return 122;
      continue;
    }

    BatchInput In;
    In.Name = Req.Name;
    std::vector<std::string> Unreadable;
    for (const std::string &Path : Req.Paths) {
      std::ifstream F(Path, std::ios::binary);
      if (!F) {
        Unreadable.push_back(Path);
        continue;
      }
      std::ostringstream SS;
      SS << F.rdbuf();
      In.Files.push_back({Path, SS.str()});
    }

    scanner::ScanOptions Scan = BaseScan;
    if (Req.DeadlineSeconds > 0)
      Scan.Deadline.WallSeconds = Req.DeadlineSeconds;
    if (!Req.FaultSpec.empty()) {
      scanner::FaultPlan Plan;
      if (scanner::FaultPlan::parse(Req.FaultSpec, Plan)) {
        Plan.Package = 0; // Each request is this worker's package 0.
        Scan.Fault = Plan;
      }
    }

    obs::CounterSnapshot CtrBefore = obs::snapshotCounters();
    obs::HistogramSnapshotMap HistBefore = obs::snapshotHistograms();
    obs::TraceRecorder Recorder;
    if (Req.WantTrace)
      Scan.Trace = &Recorder;
    BatchOutcome Out = scanPackageIsolated(In, Scan);
    for (const std::string &Path : Unreadable)
      Out.Result.Errors.push_back({scanner::ScanPhase::Driver,
                                   scanner::ScanErrorKind::Internal,
                                   "unreadable file: " + Path, Path});
    if (!Unreadable.empty() && Out.Status == BatchStatus::Ok)
      Out.Status = BatchStatus::Degraded;

    WorkerResponse Resp;
    Resp.JobId = Req.JobId;
    Resp.Line = BatchDriver::journalLine(Out);
    Resp.CounterDelta = obs::counterDelta(CtrBefore, obs::snapshotCounters());
    Resp.HistDelta =
        obs::histogramDelta(HistBefore, obs::snapshotHistograms());
    if (Req.WantTrace)
      Resp.Spans = rebasedSpans(Recorder, Req.TraceEpochUs);
    ++Done;
    Resp.Recycle = (RecycleAfter && Done >= RecycleAfter) ||
                   (RecycleRssMB && currentRssMB() > RecycleRssMB);
    if (!writeFrame(FD, Resp.encode()))
      return 122;
    if (Resp.Recycle)
      return WorkerRecycleExit;
  }
  return 0; // Supervisor hung up: orderly drain.
}

/// One admitted scan request waiting for (or on) a worker.
struct PendingScan {
  uint64_t Id = 0;
  /// Where the response goes; -1 once the client disconnected (the scan
  /// still runs and is journaled — the work was admitted).
  int ClientFD = -1;
  WorkerRequest Req;
  /// Admission clock: a request that outwaits its own deadline in the
  /// queue is rejected instead of scanned.
  Timer Waited;
};

struct ServeWorker {
  Subprocess Proc;
  FrameReader Reader;
  bool Busy = false;
  bool Retiring = false;
  bool KillSent = false;
  double KillAfter = 0;
  std::optional<PendingScan> Job;
  Timer JobStarted;
  Timer IdleSince;
  bool PingSent = false;
  Timer PingStarted;
};

std::string errorLine(const char *Err, const std::string &Detail = "") {
  json::Object O;
  O["ok"] = json::Value(false);
  O["error"] = json::Value(Err);
  if (!Detail.empty())
    O["detail"] = json::Value(Detail);
  return json::Value(std::move(O)).str();
}

/// Full EINTR-retried send of one response line; a vanished client drops
/// the response (the daemon must outlive every client).
void sendLine(int FD, const std::string &Line) {
  if (FD < 0)
    return;
  std::string Out = Line;
  Out.push_back('\n');
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(FD, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return;
    Off += static_cast<size_t>(N);
  }
}

} // namespace

ScanService::ScanService(ServiceOptions Options) : Options(std::move(Options)) {}

int ScanService::run() {
  sockaddr_un Addr{};
  if (Options.SocketPath.empty() ||
      Options.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "serve: bad socket path\n");
    return 1;
  }
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Options.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::fprintf(stderr, "serve: socket failed: %s\n", std::strerror(errno));
    return 1;
  }
  ::unlink(Options.SocketPath.c_str()); // Replace a stale socket file.
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Listen, 64) != 0) {
    std::fprintf(stderr, "serve: bind/listen on %s failed: %s\n",
                 Options.SocketPath.c_str(), std::strerror(errno));
    ::close(Listen);
    return 1;
  }
  ::fcntl(Listen, F_SETFL, ::fcntl(Listen, F_GETFL, 0) | O_NONBLOCK);

  ScopedSigpipeIgnore NoSigpipe;
  ServeSignalGuard Signals;
  bool PrevCounters = obs::setCountersEnabled(true);

  std::ofstream Journal;
  if (!Options.JournalPath.empty())
    // Append: a restarted daemon extends the history, never clobbers it.
    Journal.open(Options.JournalPath, std::ios::out | std::ios::app);

  auto log = [&](const std::string &Msg) {
    if (!Options.Quiet) {
      std::fprintf(stderr, "serve: %s\n", Msg.c_str());
      std::fflush(stderr);
    }
  };

  SubprocessLimits Limits;
  Limits.MemLimitMB = Options.MemLimitMB;
  // RLIMIT_CPU counts a worker's whole lifetime; only meaningful when the
  // recycle quota bounds that lifetime (see ProcessPool persistent mode).
  if (Options.KillAfterSeconds > 0 && Options.RecycleAfter > 0)
    Limits.CpuSeconds = static_cast<unsigned>(Options.KillAfterSeconds *
                                              Options.RecycleAfter) +
                        2;

  std::deque<PendingScan> Queue;
  std::vector<ServeWorker> Workers;
  std::map<int, std::string> Clients; // fd -> partial-line input buffer
  uint64_t NextId = 1;
  size_t Accepted = 0, Rejected = 0, Completed = 0, Recycled = 0;
  // Per-verdict completion splits (status/metrics surface): Completed is
  // their sum, kept separate because it predates the split.
  size_t CompletedOk = 0, CompletedDegraded = 0, CompletedFailed = 0;
  // Total workers ever forked, including replacements after crashes and
  // recycles — Workers.size() only says how many are alive *now*.
  size_t Generations = 0;
  Timer Uptime;
  Timer MetricsClock;
  bool Draining = false, ShuttingDown = false;
  // Re-fork backoff: a worker dying before it ever accepts work must not
  // turn the daemon into a fork bomb. Reset by any completed job.
  unsigned ConsecutiveDeaths = 0;
  Timer LastDeath;

  auto killAfterFor = [&](const PendingScan &Job) {
    if (Options.KillAfterSeconds > 0)
      return Options.KillAfterSeconds;
    double D = Job.Req.DeadlineSeconds > 0 ? Job.Req.DeadlineSeconds
                                           : Options.Scan.Deadline.WallSeconds;
    return D > 0 ? 2 * D + 1.0 : 0.0;
  };

  auto synthLine = [&](const PendingScan &Job, scanner::ScanErrorKind Kind,
                       const std::string &Detail) {
    BatchOutcome Out;
    Out.Package = Job.Req.Name;
    Out.Status = BatchStatus::Failed;
    Out.Result.Errors.push_back(
        {scanner::ScanPhase::Driver, Kind, Detail, ""});
    return BatchDriver::journalLine(Out);
  };

  auto finishScan = [&](const PendingScan &Job, const std::string &Line,
                        BatchStatus Status) {
    if (Journal.is_open()) {
      Journal << Line << '\n';
      Journal.flush();
    }
    ++Completed;
    switch (Status) {
    case BatchStatus::Ok:
      ++CompletedOk;
      break;
    case BatchStatus::Degraded:
      ++CompletedDegraded;
      break;
    case BatchStatus::Failed:
    case BatchStatus::Quarantined: // not issued by the service; counted as
                                   // a failure if a journal replays one.
      ++CompletedFailed;
      break;
    }
    // The line is a compact JSON object; splice it in as the result.
    sendLine(Job.ClientFD, "{\"ok\":true,\"result\":" + Line + "}");
  };

  auto spawnAllowed = [&]() {
    if (ConsecutiveDeaths == 0)
      return true;
    double Delay = std::min(
        5.0, 0.1 * static_cast<double>(
                       1u << std::min(ConsecutiveDeaths - 1, 6u)));
    return LastDeath.elapsedSeconds() >= Delay;
  };

  auto spawnWorker = [&]() -> bool {
    Subprocess P;
    std::string Err;
    bool OK = Subprocess::forkWorker(
        [&](int FD) {
          return serveWorkerMain(FD, Options.Scan, Options.RecycleAfter,
                                 Options.RecycleRssMB);
        },
        P, &Err, Limits);
    if (!OK) {
      log("worker fork failed: " + Err);
      ++ConsecutiveDeaths;
      LastDeath = Timer();
      return false;
    }
    ::fcntl(P.commFD(), F_SETFL, ::fcntl(P.commFD(), F_GETFL, 0) | O_NONBLOCK);
    obs::counters::WorkerSpawned.add();
    ++Generations;
    ServeWorker W;
    W.Proc = std::move(P);
    Workers.push_back(std::move(W));
    return true;
  };

  auto assignJob = [&](ServeWorker &W) {
    PendingScan Job = std::move(Queue.front());
    Queue.pop_front();
    WorkerRequest Req = Job.Req;
    Req.Kind = WorkerRequest::Op::Scan;
    Req.JobId = Job.Id;
    if (!writeFrame(W.Proc.commFD(), Req.encode())) {
      // Worker died between jobs; the request never started and goes back
      // to the head of the line. Make the death certain for the reaper.
      W.Proc.kill(SIGKILL);
      Queue.push_front(std::move(Job));
      return;
    }
    obs::counters::ServeInflight.add();
    obs::hists::QueueWait.recordSeconds(Job.Waited.elapsedSeconds());
    W.Busy = true;
    W.KillSent = false;
    W.JobStarted = Timer();
    W.KillAfter = killAfterFor(Job);
    W.Job = std::move(Job);
  };

  auto handleWorkerFrame = [&](ServeWorker &W, const std::string &Text) {
    WorkerResponse Resp;
    if (!WorkerResponse::decode(Text, Resp))
      return; // Corrupt frame; the reap path attributes what follows.
    if (Resp.Pong) {
      W.PingSent = false;
      W.IdleSince = Timer();
      return;
    }
    if (!W.Busy || !W.Job || Resp.JobId != W.Job->Id)
      return; // Stale or duplicate: first verdict wins.
    ConsecutiveDeaths = 0;
    W.Busy = false;
    if (Resp.Recycle || W.KillSent)
      W.Retiring = true;
    // Stitch the worker's scan telemetry into the daemon's registries:
    // this is what makes the `metrics` op reflect scan-pipeline counters
    // and latency percentiles, not just supervisor bookkeeping.
    if (!Resp.CounterDelta.empty())
      obs::mergeCounters(Resp.CounterDelta);
    if (!Resp.HistDelta.empty())
      obs::mergeHistograms(Resp.HistDelta);
    obs::hists::WorkerJob.recordSeconds(W.JobStarted.elapsedSeconds());
    PendingScan Job = std::move(*W.Job);
    W.Job.reset();
    W.IdleSince = Timer();
    BatchOutcome Parsed;
    if (!Resp.Line.empty() &&
        BatchDriver::parseJournalLine(Resp.Line, Parsed))
      finishScan(Job, Resp.Line, Parsed.Status);
    else
      finishScan(Job,
                 synthLine(Job, scanner::ScanErrorKind::Crashed,
                           "worker sent an unparseable result"),
                 BatchStatus::Failed);
  };

  auto reapWorker = [&](ServeWorker &W, const WaitStatus &WS) {
    // A worker may flush its response and die before we read it: pump the
    // frames first so a completed scan keeps its own verdict.
    W.Reader.pump(W.Proc.commFD());
    std::string Text;
    while (W.Reader.next(Text))
      handleWorkerFrame(W, Text);

    if (WS.exitedWith(WorkerRecycleExit)) {
      obs::counters::WorkerRecycled.add();
      ++Recycled;
    }
    bool Planned =
        WS.exitedWith(0) || WS.exitedWith(WorkerRecycleExit) || W.Retiring;
    if (W.Busy && W.Job) {
      // The job died with the worker: wait-status attribution, same kill
      // ladder as the batch pool.
      scanner::ScanErrorKind Kind = scanner::ScanErrorKind::Crashed;
      std::string Detail;
      if (WS.exitedWith(WorkerOomExit)) {
        Kind = scanner::ScanErrorKind::KilledOom;
        Detail = "worker allocation failed under memory cap (" + WS.str() +
                 ")";
        obs::counters::WorkerOomKilled.add();
      } else if (W.KillSent) {
        Kind = scanner::ScanErrorKind::KilledDeadline;
        Detail = "supervisor killed worker after hard deadline (" +
                 WS.str() + ")";
        obs::counters::WorkerDeadlineKilled.add();
      } else if (WS.signaled() && WS.Signal == SIGXCPU) {
        Kind = scanner::ScanErrorKind::KilledDeadline;
        Detail = "worker hit RLIMIT_CPU (" + WS.str() + ")";
        obs::counters::WorkerDeadlineKilled.add();
      } else if (WS.signaled() && WS.Signal == SIGKILL) {
        Kind = scanner::ScanErrorKind::KilledOom;
        Detail = "worker got an unexplained SIGKILL (kernel OOM killer?)";
        obs::counters::WorkerOomKilled.add();
      } else if (WS.signaled()) {
        Detail = "worker died on " + WS.str();
        obs::counters::WorkerCrashed.add();
      } else {
        Detail = "worker produced no result (" + WS.str() + ")";
        obs::counters::WorkerCrashed.add();
      }
      PendingScan Job = std::move(*W.Job);
      W.Job.reset();
      W.Busy = false;
      finishScan(Job, synthLine(Job, Kind, Detail), BatchStatus::Failed);
      log("worker " + std::to_string(W.Proc.pid()) + " died mid-job (" +
          WS.str() + "), job " + Job.Req.Name + " failed");
    } else if (!Planned) {
      ++ConsecutiveDeaths;
      LastDeath = Timer();
      log("idle worker died (" + WS.str() + "), backoff re-fork");
    }
  };

  auto closeClient = [&](int FD) {
    // Scrub every reference before the fd number can be reused: queued
    // and in-flight jobs for this client keep running, answer nobody.
    for (PendingScan &P : Queue)
      if (P.ClientFD == FD)
        P.ClientFD = -1;
    for (ServeWorker &W : Workers)
      if (W.Job && W.Job->ClientFD == FD)
        W.Job->ClientFD = -1;
    ::close(FD);
    Clients.erase(FD);
  };

  auto statusLine = [&]() {
    size_t BusyCount = static_cast<size_t>(
        std::count_if(Workers.begin(), Workers.end(),
                      [](const ServeWorker &W) { return W.Busy; }));
    json::Object O;
    O["ok"] = json::Value(true);
    O["workers"] = json::Value(static_cast<unsigned long>(Workers.size()));
    O["idle"] =
        json::Value(static_cast<unsigned long>(Workers.size() - BusyCount));
    O["inflight"] = json::Value(static_cast<unsigned long>(BusyCount));
    O["queued"] = json::Value(static_cast<unsigned long>(Queue.size()));
    O["accepted"] = json::Value(static_cast<unsigned long>(Accepted));
    O["rejected"] = json::Value(static_cast<unsigned long>(Rejected));
    O["completed"] = json::Value(static_cast<unsigned long>(Completed));
    O["completed_ok"] = json::Value(static_cast<unsigned long>(CompletedOk));
    O["completed_degraded"] =
        json::Value(static_cast<unsigned long>(CompletedDegraded));
    O["completed_failed"] =
        json::Value(static_cast<unsigned long>(CompletedFailed));
    O["recycled"] = json::Value(static_cast<unsigned long>(Recycled));
    O["generations"] = json::Value(static_cast<unsigned long>(Generations));
    O["uptime_s"] = json::Value(Uptime.elapsedSeconds());
    O["draining"] = json::Value(Draining);
    return json::Value(std::move(O)).str();
  };

  auto gauges = [&]() {
    size_t BusyCount = static_cast<size_t>(
        std::count_if(Workers.begin(), Workers.end(),
                      [](const ServeWorker &W) { return W.Busy; }));
    return obs::GaugeList{
        {"serve.uptime_s", Uptime.elapsedSeconds()},
        {"serve.queue_depth", static_cast<double>(Queue.size())},
        {"serve.workers", static_cast<double>(Workers.size())},
        // "_now" keeps the gauge distinct from the cumulative
        // serve.inflight counter — one Prometheus name, one type.
        {"serve.inflight_now", static_cast<double>(BusyCount)},
    };
  };

  // The `metrics` NDJSON op: counters, per-histogram percentiles, and the
  // same gauges the Prometheus file carries — one line, machine-readable,
  // no scraper required.
  auto metricsLine = [&]() {
    json::Object O;
    O["ok"] = json::Value(true);
    for (const auto &[Name, Value] : gauges())
      O[Name] = json::Value(Value);
    json::Object C;
    for (const auto &[Name, Value] : obs::snapshotCounters())
      if (Value)
        C[Name] = json::Value(static_cast<unsigned long>(Value));
    O["counters"] = json::Value(std::move(C));
    json::Object H;
    for (const auto &[Name, Snap] : obs::snapshotHistograms()) {
      if (Snap.empty())
        continue;
      json::Object S;
      S["unit"] = json::Value(Snap.Unit);
      S["count"] = json::Value(static_cast<unsigned long>(Snap.count()));
      S["sum"] = json::Value(static_cast<double>(Snap.Sum));
      S["mean"] = json::Value(Snap.mean());
      S["p50"] = json::Value(Snap.percentile(0.5));
      S["p90"] = json::Value(Snap.percentile(0.9));
      S["p95"] = json::Value(Snap.percentile(0.95));
      S["p99"] = json::Value(Snap.percentile(0.99));
      H[Name] = json::Value(std::move(S));
    }
    O["histograms"] = json::Value(std::move(H));
    return json::Value(std::move(O)).str();
  };

  auto handleLine = [&](int FD, const std::string &Line) {
    json::Value V;
    if (!json::parse(Line, V) || !V.isObject()) {
      sendLine(FD, errorLine("bad-request", "not a JSON object"));
      return;
    }
    const json::Object &O = V.asObject();
    auto It = O.find("op");
    std::string Op =
        It != O.end() && It->second.isString() ? It->second.asString() : "";
    if (Op == "status") {
      sendLine(FD, statusLine());
      return;
    }
    if (Op == "metrics") {
      sendLine(FD, metricsLine());
      return;
    }
    if (Op == "drain") {
      Draining = true;
      sendLine(FD, "{\"draining\":true,\"ok\":true}");
      log("drain requested");
      return;
    }
    if (Op == "shutdown") {
      Draining = ShuttingDown = true;
      sendLine(FD, "{\"ok\":true,\"shutdown\":true}");
      log("shutdown requested");
      return;
    }
    if (Op != "scan") {
      sendLine(FD, errorLine("bad-request", "unknown op"));
      return;
    }
    WorkerRequest Req;
    if (!WorkerRequest::decode(Line, Req) || Req.Name.empty() ||
        Req.Paths.empty()) {
      sendLine(FD, errorLine("bad-request", "scan needs name and files"));
      return;
    }
    if (Draining) {
      obs::counters::ServeRejected.add();
      ++Rejected;
      sendLine(FD, errorLine("draining"));
      return;
    }
    if (Queue.size() >= Options.QueueMax) {
      obs::counters::ServeRejected.add();
      ++Rejected;
      sendLine(FD, errorLine("overloaded",
                             std::to_string(Queue.size()) +
                                 " requests already queued"));
      return;
    }
    obs::counters::ServeAccepted.add();
    ++Accepted;
    PendingScan P;
    P.Id = NextId++;
    P.ClientFD = FD;
    P.Req = std::move(Req);
    Queue.push_back(std::move(P));
  };

  log("listening on " + Options.SocketPath + ", " +
      std::to_string(Options.Jobs) + " workers");

  while (true) {
    if (ServeStopRequested && !ShuttingDown) {
      Draining = ShuttingDown = true;
      log("signal received, draining");
    }

    // Expire queued requests that outwaited their own deadline.
    for (auto It = Queue.begin(); It != Queue.end();) {
      if (It->Req.DeadlineSeconds > 0 &&
          It->Waited.elapsedSeconds() > It->Req.DeadlineSeconds) {
        obs::counters::ServeRejected.add();
        ++Rejected;
        sendLine(It->ClientFD,
                 errorLine("deadline", "request expired in queue"));
        It = Queue.erase(It);
      } else {
        ++It;
      }
    }

    // Maintain the warm pool (shrinking to the remaining work once
    // shutting down), under the re-fork backoff.
    size_t BusyCount = static_cast<size_t>(
        std::count_if(Workers.begin(), Workers.end(),
                      [](const ServeWorker &W) { return W.Busy; }));
    size_t Want = std::max<size_t>(1, Options.Jobs);
    if (ShuttingDown)
      Want = std::min(Want, Queue.size() + BusyCount);
    while (Workers.size() < Want && spawnAllowed()) {
      if (!spawnWorker())
        break;
    }

    for (ServeWorker &W : Workers) {
      if (Queue.empty())
        break;
      if (!W.Busy && !W.Retiring && !W.Reader.dead())
        assignJob(W);
    }
    BusyCount = static_cast<size_t>(
        std::count_if(Workers.begin(), Workers.end(),
                      [](const ServeWorker &W) { return W.Busy; }));

    if (ShuttingDown && Queue.empty() && BusyCount == 0)
      break;

    // Sleep until something is readable (or 50ms, for the timers).
    std::vector<pollfd> Fds;
    Fds.push_back({Listen, POLLIN, 0});
    for (const auto &[FD, Buf] : Clients)
      Fds.push_back({FD, POLLIN, 0});
    for (const ServeWorker &W : Workers)
      Fds.push_back({W.Proc.commFD(), POLLIN, 0});
    int PR = ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()), 50);
    if (PR < 0 && errno != EINTR && errno != EAGAIN)
      break; // poll() itself failing is unrecoverable.

    // Accept new connections (kept open across requests; reads below are
    // non-blocking).
    for (;;) {
      int C = ::accept(Listen, nullptr, nullptr);
      if (C < 0)
        break;
      Clients.emplace(C, std::string());
    }

    // Drain client input; a complete line is one request.
    std::vector<int> ToClose;
    for (auto &[FD, Buf] : Clients) {
      for (;;) {
        char Tmp[4096];
        ssize_t N = ::recv(FD, Tmp, sizeof(Tmp), MSG_DONTWAIT);
        if (N < 0 && errno == EINTR)
          continue;
        if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
          break;
        if (N <= 0) {
          ToClose.push_back(FD);
          break;
        }
        Buf.append(Tmp, static_cast<size_t>(N));
        if (Buf.size() > (1u << 20)) { // A request line is small; cap it.
          ToClose.push_back(FD);
          break;
        }
      }
      size_t Pos;
      while ((Pos = Buf.find('\n')) != std::string::npos) {
        std::string Line = Buf.substr(0, Pos);
        Buf.erase(0, Pos + 1);
        if (!Line.empty())
          handleLine(FD, Line);
      }
    }
    for (int FD : ToClose)
      closeClient(FD);

    // Workers: frames, deaths, the kill ladder, idle heartbeats.
    for (size_t I = 0; I < Workers.size();) {
      ServeWorker &W = Workers[I];
      if (!W.Reader.dead()) {
        W.Reader.pump(W.Proc.commFD());
        std::string Text;
        while (W.Reader.next(Text))
          handleWorkerFrame(W, Text);
      }
      WaitStatus WS;
      if (W.Proc.poll(WS)) {
        ServeWorker Dead = std::move(W);
        Workers.erase(Workers.begin() + static_cast<long>(I));
        reapWorker(Dead, WS);
        continue;
      }
      if (W.Busy && !W.KillSent && W.KillAfter > 0 &&
          W.JobStarted.elapsedSeconds() > W.KillAfter) {
        W.Proc.kill(SIGKILL);
        W.KillSent = true;
      }
      if (!W.Busy && !W.Retiring && Options.HeartbeatSeconds > 0) {
        if (W.PingSent &&
            W.PingStarted.elapsedSeconds() > Options.HeartbeatSeconds) {
          // Wedged while idle: no pong within a whole heartbeat period.
          W.Proc.kill(SIGKILL);
        } else if (!W.PingSent &&
                   W.IdleSince.elapsedSeconds() > Options.HeartbeatSeconds) {
          WorkerRequest Ping;
          Ping.Kind = WorkerRequest::Op::Ping;
          Ping.JobId = NextId++;
          if (writeFrame(W.Proc.commFD(), Ping.encode())) {
            W.PingSent = true;
            W.PingStarted = Timer();
          } else {
            W.Proc.kill(SIGKILL);
          }
        }
      }
      ++I;
    }

    // Periodic Prometheus snapshot, driven off the same 50ms poll tick as
    // the other timers.
    if (!Options.MetricsPath.empty() &&
        MetricsClock.elapsedSeconds() >= Options.MetricsEverySeconds) {
      obs::writePrometheusFile(Options.MetricsPath, gauges());
      MetricsClock.reset();
    }
  }

  // Drain the workers: ask politely, then reap (counting a recycle that
  // raced the shutdown).
  for (ServeWorker &W : Workers) {
    WaitStatus WS;
    if (W.Proc.poll(WS))
      continue;
    WorkerRequest Req;
    Req.Kind = WorkerRequest::Op::Exit;
    writeFrame(W.Proc.commFD(), Req.encode());
  }
  for (ServeWorker &W : Workers)
    reapWorker(W, W.Proc.wait());
  Workers.clear();

  for (auto &[FD, Buf] : Clients)
    ::close(FD);
  Clients.clear();
  ::close(Listen);
  ::unlink(Options.SocketPath.c_str());
  if (Journal.is_open())
    Journal.flush();
  // Final snapshot at drain, regardless of cadence.
  if (!Options.MetricsPath.empty())
    obs::writePrometheusFile(Options.MetricsPath, gauges());
  obs::setCountersEnabled(PrevCounters);
  log("drained, exiting (" + std::to_string(Completed) + " scans, " +
      std::to_string(Rejected) + " rejected)");
  return 0;
}

bool ScanService::request(const std::string &SocketPath,
                          const std::string &RequestLine,
                          std::string &Response, std::string *Error,
                          double TimeoutSeconds) {
  sockaddr_un Addr{};
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "bad socket path";
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);

  Timer T;
  int FD = -1;
  // Retry the connect while the daemon is still coming up: the caller's
  // timeout covers startup, not just the scan itself.
  for (;;) {
    FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (FD < 0) {
      if (Error)
        *Error = std::string("socket failed: ") + std::strerror(errno);
      return false;
    }
    if (::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      break;
    ::close(FD);
    FD = -1;
    if (T.elapsedSeconds() > TimeoutSeconds) {
      if (Error)
        *Error = "connect timed out";
      return false;
    }
    ::usleep(50000);
  }

  std::string Out = RequestLine;
  Out.push_back('\n');
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(FD, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      ::close(FD);
      if (Error)
        *Error = std::string("send failed: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }

  Response.clear();
  char Buf[4096];
  while (T.elapsedSeconds() <= TimeoutSeconds) {
    pollfd P{FD, POLLIN, 0};
    int R = ::poll(&P, 1, 100);
    if (R < 0 && errno != EINTR)
      break;
    if (R <= 0)
      continue;
    ssize_t N = ::recv(FD, Buf, sizeof(Buf), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break; // Daemon closed the connection without a full line.
    Response.append(Buf, static_cast<size_t>(N));
    size_t Pos = Response.find('\n');
    if (Pos != std::string::npos) {
      Response.resize(Pos);
      ::close(FD);
      return true;
    }
  }
  ::close(FD);
  if (Error)
    *Error = "no response before timeout";
  return false;
}

bool ScanService::requestWithRetry(const std::string &SocketPath,
                                   const std::string &RequestLine,
                                   std::string &Response, std::string *Error,
                                   double RetryBudgetMs, size_t *Retries,
                                   double TimeoutSeconds) {
  Timer Budget;
  size_t Attempt = 0;
  // Deterministic-enough jitter: a xorshift stream seeded per call so two
  // clients rejected in the same admission burst don't re-collide on every
  // subsequent retry.
  uint64_t Rng = static_cast<uint64_t>(::getpid()) * 2654435761u + 1;
  for (;;) {
    bool Ok = request(SocketPath, RequestLine, Response, Error, TimeoutSeconds);
    // Only admission rejections are retryable: transport errors and every
    // other error class (bad request, deadline, shutdown) are final.
    if (!Ok || Response.find("\"error\":\"overloaded\"") == std::string::npos) {
      if (Retries)
        *Retries = Attempt;
      return Ok;
    }
    double SpentMs = Budget.elapsedSeconds() * 1000.0;
    if (SpentMs >= RetryBudgetMs) {
      if (Retries)
        *Retries = Attempt;
      return true; // Budget exhausted: surface the overloaded response.
    }
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    double BaseMs = std::min(25.0 * static_cast<double>(1u << std::min<size_t>(Attempt, 5)), 1000.0);
    double SleepMs = BaseMs / 2 + static_cast<double>(Rng % 1000) / 1000.0 * BaseMs / 2;
    SleepMs = std::min(SleepMs, RetryBudgetMs - SpentMs);
    if (SleepMs > 0)
      ::usleep(static_cast<useconds_t>(SleepMs * 1000.0));
    ++Attempt;
    obs::counters::ServeClientRetries.merge(1);
  }
}
