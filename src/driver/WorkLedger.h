//===- driver/WorkLedger.h - Crash-only distributed corpus draining -*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared on-disk work ledger behind `graphjs batch --shared <dir>`:
/// any number of supervisor processes (on one host or a shared filesystem)
/// drain one corpus cooperatively, and any of them may be SIGKILLed at any
/// instant without losing or duplicating work. Registry-scale corpus scans
/// (the paper's §5.6 run is 20k packages; the npm studies in PAPERS.md
/// imply 10^5+) need exactly this crash-only shape — a single supervisor
/// owning a single journal is both a throughput and an availability
/// bottleneck.
///
/// Design, in one breath: the corpus is partitioned into fixed *shards*
/// (manifest written once, verified by every joiner); a shard is owned via
/// a *lease* — an `O_CREAT|O_EXCL` token file ratchet (`s<N>.tok.<k>`)
/// that hands out strictly increasing fencing tokens, plus a heartbeat
/// file (`s<N>.owner.t<k>`) the holder rewrites while it works. A
/// supervisor that stops heartbeating past the expiry gets its lease
/// *stolen*: the thief creates `tok.<k+1>`, and because every artifact the
/// holder writes is suffixed with its token, a stale holder's late writes
/// can never clobber the new owner's — the higher fencing token wins
/// structurally, not by politeness. Each holder journals into its own
/// `s<N>.journal.t<k>.jsonl` with every record CRC32+length framed
/// (`@<len>:<crc8>:<payload>`), so a SIGKILL-torn tail is detected and
/// dropped instead of poisoning resume. When every shard carries a done
/// marker, any supervisor merges the per-token journals — highest token
/// wins per package (fencing: the thief's record beats the stale
/// holder's late write), input order — into one deterministic
/// `corpus.jsonl`.
///
/// The *quarantine* circuit breaker stops poison packages from starving
/// the fleet: every dispatch appends a framed start record before the scan
/// begins, so a package whose scan kills its supervisor leaves a
/// start-without-terminal strike behind. Kill-class terminal verdicts
/// (crashed / killed-oom / killed-deadline) count as strikes too. Once a
/// package accumulates QuarantineAfter strikes across *any* set of
/// supervisors without ever producing a clean terminal, the next holder
/// journals it as `quarantined` (with its strike history), writes a marker
/// under `quarantine/`, and nobody ever scans it again.
///
/// See docs/ROBUSTNESS.md ("Distributed draining") for the on-disk format
/// and the full semantics.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_DRIVER_WORKLEDGER_H
#define GJS_DRIVER_WORKLEDGER_H

#include "driver/ProcessPool.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gjs {
namespace driver {

struct LedgerOptions {
  /// Ledger root directory (created if missing). Everything shared lives
  /// under it; supervisors coordinate through this directory only.
  std::string Dir;
  /// Packages per shard — the work-stealing granule. Small shards steal
  /// faster after a death; large shards amortize lease traffic.
  size_t ShardSize = 4;
  /// A lease whose heartbeat is older than this is up for stealing.
  double LeaseExpirySeconds = 10.0;
  /// Heartbeat cadence; 0 derives LeaseExpirySeconds / 3.
  double HeartbeatSeconds = 0;
  /// Quarantine circuit breaker: strikes before a package is written off.
  unsigned QuarantineAfter = 3;
  /// Stable id recorded in lease/owner records; auto "<pid>-<hex>" when
  /// empty.
  std::string SupervisorId;
};

/// One held (or observed) lease.
struct LeaseInfo {
  size_t Shard = 0;
  uint64_t Token = 0;      ///< Fencing token; strictly increases per steal.
  std::string Holder;      ///< Supervisor id.
  double HeartbeatUnix = 0; ///< Last heartbeat (unix seconds, sub-second).
};

/// The shared on-disk ledger. Every method is crash-safe: state changes go
/// through O_EXCL creates or write-temp-then-rename, and every record is
/// CRC-framed.
class WorkLedger {
public:
  explicit WorkLedger(LedgerOptions Options);

  /// Creates the directory layout and the shard manifest (first supervisor
  /// wins the O_EXCL create; joiners verify the package list matches).
  /// False with *Error set when the ledger belongs to a different corpus.
  bool init(const std::vector<std::string> &PackageNames, std::string *Error);

  size_t numShards() const { return Shards.size(); }
  /// Package indices (into the init() name list) per shard, input order.
  const std::vector<std::vector<size_t>> &shards() const { return Shards; }
  const std::vector<std::string> &packageNames() const { return Names; }
  const LedgerOptions &options() const { return Options; }
  const std::string &supervisorId() const { return Options.SupervisorId; }

  /// Claims a never-claimed shard (token 1). nullopt when none remain.
  std::optional<LeaseInfo> claimFresh();
  /// Steals a shard whose current holder stopped heartbeating past the
  /// expiry (token = current + 1). nullopt when nothing is stale.
  std::optional<LeaseInfo> stealStale();
  /// Rewrites the holder's heartbeat. False when the lease has been fenced
  /// (a higher token exists): the caller must stop taking new work from
  /// this shard immediately.
  bool heartbeat(LeaseInfo &Lease);
  /// The current owner (highest-token owner record) of a shard, if any.
  std::optional<LeaseInfo> owner(size_t Shard) const;

  bool shardDone(size_t Shard) const;
  bool allDone() const;
  /// Marks the holder's shard complete (done marker is token-suffixed and
  /// idempotent: a late stale holder's marker is simply redundant).
  void markDone(const LeaseInfo &Lease, size_t Terminals);

  /// The holder's own framed shard journal.
  std::string shardJournalPath(const LeaseInfo &Lease) const;
  /// Appends one framed record to the holder's shard journal, flushed —
  /// the start-record hook and the quarantine writer.
  void appendRecord(const LeaseInfo &Lease, const std::string &Payload);

  /// Everything prior (and current) tokens left behind in one shard.
  struct ShardHistory {
    /// Winning terminal journal payload per package: highest token wins
    /// (first record within a token) — deterministic under steal races,
    /// and a stale holder's late write loses to the fenced-in thief's.
    std::map<std::string, std::string> Terminals;
    /// Quarantine strikes per package: start records minus clean
    /// terminals, plus kill-class terminal verdicts.
    std::map<std::string, unsigned> Strikes;
    size_t DroppedLines = 0; ///< Torn/CRC-corrupt lines skipped.
  };
  ShardHistory readShardHistory(size_t Shard) const;

  /// Quarantine markers (shared across every supervisor, restart-proof).
  bool isQuarantined(const std::string &Package) const;
  void quarantine(const std::string &Package, unsigned Strikes);
  std::vector<std::string> quarantinedPackages() const;

  /// When every shard is done, merges the winning terminal per package —
  /// corpus input order, exactly one record each — into corpus.jsonl
  /// (write-temp-then-rename; idempotent, any finisher may run it). False
  /// when shards are still open or the merge found a package with no
  /// terminal record.
  bool merge(std::string *Error = nullptr);
  std::string corpusJournalPath() const;

  /// Unix seconds with sub-second precision (gettimeofday).
  static double nowUnixSeconds();

  /// This supervisor's lease traffic (feeds BatchSummary / --stats).
  size_t claims() const { return ClaimsN; }
  size_t steals() const { return StealsN; }
  size_t expired() const { return ExpiredN; }

private:
  std::string shardPrefix(size_t Shard) const;
  uint64_t maxToken(size_t Shard) const;
  bool writeOwnerFile(const LeaseInfo &Lease);

  LedgerOptions Options;
  std::vector<std::string> Names;
  std::vector<std::vector<size_t>> Shards;
  size_t ClaimsN = 0, StealsN = 0, ExpiredN = 0;
};

/// Options for one supervisor's shared-ledger drain.
struct SharedBatchOptions {
  LedgerOptions Ledger;
  /// Scan settings, progress cadence, metrics path. JournalPath, when set,
  /// receives a copy of the merged corpus journal after convergence;
  /// per-shard journaling always goes through the ledger.
  BatchOptions Batch;
  /// Per-shard scheduling: 0 drains shards in-process (BatchDriver), N > 0
  /// uses the worker pool.
  unsigned Jobs = 0;
  bool Persistent = false;
  size_t RecycleAfter = 0;
  size_t RecycleRssMB = 0;
  size_t MemLimitMB = 0;
  double KillAfterSeconds = 0;
  bool RetryCrashed = false;
  /// Corpus-global fault plans (index = corpus scan order, or `@name`);
  /// rebased per shard before dispatch. Process-fatal faults with Jobs == 0
  /// kill this supervisor — exactly the crash loop the quarantine breaker
  /// exists for.
  std::vector<scanner::FaultPlan> Faults;
  obs::TraceRecorder *Trace = nullptr;
  /// Chaos harness: when N > 0, raise(SIGKILL) immediately after appending
  /// the start record of the (N+1)-th package this supervisor dispatches.
  /// Deterministic supervisor-death injection for the distributed tests.
  unsigned ChaosKillAfter = 0;
};

/// One supervisor's view of a shared drain.
struct SharedBatchResult {
  /// This supervisor's own work (scans, skips, quarantine writes), plus
  /// the ledger traffic in the Ledger* / Quarantined fields.
  BatchSummary Summary;
  bool Merged = false;          ///< Corpus converged and corpus.jsonl exists.
  std::string MergedJournal;    ///< Path when Merged.
  size_t ShardsDrained = 0;     ///< Shards this supervisor completed.
};

/// Drains the corpus as one supervisor among possibly many: claim or steal
/// shards until none remain, heartbeating and honoring fencing, then merge
/// when the corpus converges. Safe to re-run after any crash.
SharedBatchResult runSharedBatch(const SharedBatchOptions &Options,
                                 const std::vector<BatchInput> &Inputs);

} // namespace driver
} // namespace gjs

#endif // GJS_DRIVER_WORKLEDGER_H
