//===- driver/WorkerProtocol.h - Supervisor<->worker framing -----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between a supervisor and its persistent workers: JSON
/// request/response messages in length-prefixed frames over a socketpair.
///
/// Fork-per-package workers (PR 5) needed no protocol — the package rode in
/// on the fork()ed memory image and the verdict rode out in a temp file plus
/// an exit code. A *persistent* worker drains many jobs over its lifetime,
/// so each job needs an explicit request (which package, retry or not,
/// per-request deadline) and an explicit response (the journal line, plus
/// whether the worker is about to recycle itself). The same messages serve
/// two supervisors:
///
///  - driver::ProcessPool in persistent mode, where a request names an
///    index into the in-memory work plan the worker inherited at fork; and
///  - driver::ScanService (`graphjs serve`), where a request carries the
///    package spec itself (name + file paths) because jobs arrive from the
///    network after the worker was forked.
///
/// Framing is a 4-byte little-endian length prefix followed by that many
/// payload bytes. All I/O here is EINTR-retried and SIGPIPE-free (writes
/// use MSG_NOSIGNAL): a signal aimed at the supervisor mid-syscall must
/// never corrupt a frame or misattribute a worker verdict.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_DRIVER_WORKERPROTOCOL_H
#define GJS_DRIVER_WORKERPROTOCOL_H

#include "obs/Counters.h"
#include "obs/Histogram.h"
#include "obs/Trace.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gjs {
namespace driver {

/// Exit code a persistent worker uses for a *planned* death: it finished
/// its recycle quota (or tripped the memory watermark), answered its last
/// job, and exited so the supervisor re-forks a fresh image. Distinct from
/// crash codes and from WorkerOomExit (86).
constexpr int WorkerRecycleExit = 88;

/// Frames larger than this are treated as protocol corruption (a journal
/// line is a few KB; nothing legitimate approaches this).
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Writes one length-prefixed frame. EINTR-retried full write; SIGPIPE is
/// suppressed (a dead peer surfaces as `false`, never a signal).
bool writeFrame(int FD, const std::string &Payload,
                std::string *Error = nullptr);

/// Blocking read of one full frame (the worker side of the pipe). Returns
/// false on EOF (supervisor gone) or a malformed length prefix.
bool readFrame(int FD, std::string &Out, std::string *Error = nullptr);

/// Supervisor-side incremental frame reassembly over a non-blocking fd.
/// pump() slurps whatever bytes are available; next() pops complete frames.
/// A closed or corrupt peer parks the reader in dead() — the supervisor
/// then falls back to the wait-status verdict for anything in flight.
class FrameReader {
public:
  /// Reads available bytes (non-blocking). Returns false once the peer is
  /// dead (EOF, error, or an oversized frame); buffered complete frames
  /// remain poppable via next().
  bool pump(int FD);

  /// Pops the next complete frame into \p Out. False when no full frame is
  /// buffered yet.
  bool next(std::string &Out);

  bool dead() const { return Dead; }

private:
  std::string Buf;
  bool Dead = false;
};

/// One job request, supervisor -> worker.
struct WorkerRequest {
  enum class Op {
    Scan, ///< Scan one package and respond with its journal line.
    Ping, ///< Liveness probe; the worker answers with Pong.
    Exit, ///< Drain request: the worker exits 0 without answering.
  };
  Op Kind = Op::Scan;
  /// Correlation id echoed back in the response.
  uint64_t JobId = 0;
  /// Pool mode: index into the work plan the worker inherited at fork.
  /// Unset (HasPlanIndex=false) in serve mode.
  bool HasPlanIndex = false;
  size_t PlanIndex = 0;
  /// Retry of a crashed/killed job: the worker drops the injected fault
  /// and halves the wall-clock budget (the transient-failure model).
  bool IsRetry = false;
  /// Serve mode: the package spec itself.
  std::string Name;
  std::vector<std::string> Paths;
  /// Per-request wall-clock budget override in seconds (0 = use the
  /// worker's configured default).
  double DeadlineSeconds = 0;
  /// Deterministic fault injection ("<phase>:<action>[:n]", tests only).
  std::string FaultSpec;
  /// Capture a span tree for this job and return it in the response.
  bool WantTrace = false;
  /// The supervisor recorder's epoch, microseconds on the shared
  /// steady-clock (CLOCK_MONOTONIC) timeline. The worker rebases its span
  /// timestamps onto it before responding, so stitched traces share one
  /// clock instead of interleaving per-process origins.
  uint64_t TraceEpochUs = 0;

  std::string encode() const;
  static bool decode(const std::string &Text, WorkerRequest &Out);
};

/// One job response, worker -> supervisor.
struct WorkerResponse {
  uint64_t JobId = 0;
  /// The completed package's JSONL journal line (empty for Pong).
  std::string Line;
  /// Answer to Op::Ping.
  bool Pong = false;
  /// The worker recycles (exits WorkerRecycleExit) right after this
  /// response: the supervisor must not assign it further work.
  bool Recycle = false;
  /// Worker-side telemetry for this job, merged by the supervisor into its
  /// own registries (the cross-process stitching payload; all optional —
  /// empty when the worker ran without counters/tracing):
  /// counter deltas captured around the scan…
  obs::CounterSnapshot CounterDelta;
  /// …histogram bucket deltas captured around the scan…
  obs::HistogramSnapshotMap HistDelta;
  /// …and the job's span tree, timestamps already rebased onto the
  /// supervisor epoch from the request.
  std::vector<obs::SpanRecord> Spans;

  bool hasTelemetry() const {
    return !CounterDelta.empty() || !HistDelta.empty() || !Spans.empty();
  }

  std::string encode() const;
  static bool decode(const std::string &Text, WorkerResponse &Out);
};

/// Extracts a worker recorder's spans rebased onto the supervisor's epoch
/// (StartUs += own epoch - supervisor epoch), ready for
/// WorkerResponse::Spans. Spans still open serialize with zero duration.
std::vector<obs::SpanRecord>
rebasedSpans(const obs::TraceRecorder &Recorder, uint64_t SupervisorEpochUs);

} // namespace driver
} // namespace gjs

#endif // GJS_DRIVER_WORKERPROTOCOL_H
