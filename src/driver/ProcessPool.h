//===- driver/ProcessPool.h - Supervised multi-process batch scan *- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process batch scanner: a supervisor that forks worker
/// processes and reaps whatever happens to them. The in-process BatchDriver
/// contains everything *cooperative* — exceptions, deadlines, work budgets
/// — but a segfault in native code, an abort(), a kernel OOM kill, or an
/// uninterruptible loop takes the whole process down, journal and all. At
/// the paper's 20k-npm corpus scale (§5.6) that single-package blast radius
/// is unacceptable; the pool reduces it to one worker.
///
/// Two scheduling modes share the same contract:
///
///  - **Fork-per-package** (the PR 5 default): one expendable fork() per
///    package. Maximum isolation, but the fork dominates sub-10ms scans —
///    BENCH_batch measured ~0.84x vs in-process on small packages.
///  - **Persistent workers** (PoolOptions::Persistent): each forked worker
///    drains a pipe-fed queue of jobs (length-prefixed frames over a
///    socketpair, driver/WorkerProtocol.h), amortizing the fork. A worker
///    is re-forked only after a crash, a kill, or a *recycle* — a planned
///    exit after RecycleAfter packages or when its resident set passes the
///    RecycleRssMB watermark, bounding leak/fragmentation accumulation.
///
/// Both modes preserve:
///
///  - **Crash containment**: a worker that dies on a signal or exits
///    without a result fails only the package it was scanning (Crashed /
///    KilledOom / KilledDeadline, attributed from the wait status and the
///    kill ladder); in persistent mode the replacement worker drains the
///    rest of the queue. Accounting is per *job*, not per process —
///    exactly-once per package regardless of how many workers died.
///  - **Kill ladder**: cooperative Deadline inside the worker, then the
///    supervisor's per-job wall-clock kill (SIGKILL), then RLIMIT_CPU as
///    the backstop (sized per worker lifetime in persistent mode).
///  - **Deterministic journal**: per-worker lines merge into the main
///    journal in *input order* regardless of completion order, and healthy
///    packages' lines are the worker's bytes verbatim.
///  - **Resume / graceful drain**: already-journaled packages are skipped;
///    SIGINT/SIGTERM stops assigning and drains in-flight jobs, leaving a
///    valid resumable journal prefix — as does SIGKILLing the supervisor
///    itself (the merge cursor only writes completed prefixes).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_DRIVER_PROCESSPOOL_H
#define GJS_DRIVER_PROCESSPOOL_H

#include "driver/BatchDriver.h"
#include "obs/Trace.h"

namespace gjs {
namespace driver {

struct PoolOptions {
  /// The underlying batch options (scan settings, journal, resume,
  /// MaxPackages, progress cadence). BatchOptions::Scan::Fault is ignored
  /// here — the pool takes its (possibly multiple) faults via Faults.
  BatchOptions Batch;
  /// Concurrent worker processes. 1 still forks (containment without
  /// parallelism); the CLI routes jobs<=1 without faults to BatchDriver.
  unsigned Jobs = 2;
  /// Persistent workers: each worker drains a queue of jobs over a
  /// socketpair instead of dying after one package, and is re-forked only
  /// on crash, kill, or recycle. False = fork-per-package (PR 5).
  bool Persistent = false;
  /// Persistent mode: planned worker recycle after this many scanned
  /// packages (0 = unlimited). The worker answers its last job, exits
  /// WorkerRecycleExit, and the supervisor re-forks a fresh image.
  unsigned RecycleAfter = 0;
  /// Persistent mode: recycle a worker whose resident set exceeds this
  /// many MiB after a job (0 = off; measured from /proc/self/statm, a
  /// no-op on systems without it).
  size_t RecycleRssMB = 0;
  /// RLIMIT_AS per worker in MiB (0 = uncapped; ignored under ASan).
  size_t MemLimitMB = 0;
  /// Supervisor kill-on-deadline: SIGKILL a worker whose *current job* has
  /// run longer than this many wall-clock seconds. 0 derives a default
  /// from the scan deadline (2*wall + 1s) when one is set, else disables
  /// the killer.
  double KillAfterSeconds = 0;
  /// Retry a crashed/oom/deadline-killed package once, without its
  /// injected fault and at half the wall-clock budget (the transient-
  /// failure model the one-shot FaultPlan semantics encode).
  bool RetryCrashed = false;
  /// Deterministic faults, each targeting the Nth *scanned* package of
  /// the run (same sequence a single in-process Scanner would count).
  /// Unlike BatchOptions::Scan::Fault this is a list: one run can crash
  /// package 1 and hang package 3.
  std::vector<scanner::FaultPlan> Faults;
  /// Cross-process trace stitching (`graphjs batch --trace-out`): when set,
  /// every job request asks its worker for a span tree rebased onto this
  /// recorder's epoch, and the supervisor splices worker spans (one Chrome
  /// pid lane per worker process) next to its own retroactive scheduling
  /// spans. Null disables worker-side tracing entirely.
  obs::TraceRecorder *Trace = nullptr;
};

/// The supervised worker pool. Same contract as BatchDriver::run — same
/// inputs, same journal format, same summary — plus OS-level containment.
class ProcessPool {
public:
  explicit ProcessPool(PoolOptions Options);

  BatchSummary run(const std::vector<BatchInput> &Inputs);

  const PoolOptions &options() const { return Options; }

  /// The wall-clock seconds after which the supervisor SIGKILLs a worker
  /// (resolving the KillAfterSeconds=0 default); 0 = killer disabled.
  static double effectiveKillAfter(const PoolOptions &Options);

private:
  PoolOptions Options;
};

} // namespace driver
} // namespace gjs

#endif // GJS_DRIVER_PROCESSPOOL_H
