//===- driver/ProcessPool.h - Supervised multi-process batch scan *- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process batch scanner: a supervisor that forks one expendable
/// worker process per package and reaps whatever happens to it. The
/// in-process BatchDriver contains everything *cooperative* — exceptions,
/// deadlines, work budgets — but a segfault in native code, an abort(), a
/// kernel OOM kill, or an uninterruptible loop takes the whole process
/// down, journal and all. At the paper's 20k-npm corpus scale (§5.6) that
/// single-package blast radius is unacceptable; the pool reduces it to one
/// worker.
///
/// Supervisor state machine, per package:
///
///   queued → running → reaped → journaled
///                 \-> killed (deadline exceeded) -> reaped (Signaled)
///
///  - **Workers are fork()s, not execs**: the child inherits the scanner
///    and input in memory, runs the scan, writes its journal line to a
///    private file, and _exit()s. Zero serialization on the way in.
///  - **Crash containment**: a worker that dies on a signal or exits
///    without a result is journaled as Failed with ScanErrorKind::Crashed
///    (or KilledOom / KilledDeadline, attributed from the wait status and
///    the kill ladder) and the batch moves on.
///  - **Kill ladder**: cooperative Deadline inside the worker, then
///    RLIMIT_CPU (kernel SIGXCPU), then the supervisor's wall-clock
///    kill-on-deadline (SIGKILL). RLIMIT_AS caps worker memory;
///    WorkerOomExit attributes allocation failure deterministically.
///  - **Deterministic journal**: per-worker lines merge into the main
///    journal in *input order* regardless of completion order, and healthy
///    packages' lines are the worker's bytes verbatim — `--jobs N` and
///    `--jobs 1` journals are byte-identical for packages that succeed.
///  - **Resume / graceful drain**: already-journaled packages are skipped;
///    SIGINT/SIGTERM stops launching and drains in-flight workers, leaving
///    a valid resumable journal prefix — as does SIGKILLing the supervisor
///    itself (the merge cursor only writes completed prefixes).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_DRIVER_PROCESSPOOL_H
#define GJS_DRIVER_PROCESSPOOL_H

#include "driver/BatchDriver.h"

namespace gjs {
namespace driver {

struct PoolOptions {
  /// The underlying batch options (scan settings, journal, resume,
  /// MaxPackages, progress cadence). BatchOptions::Scan::Fault is ignored
  /// here — the pool takes its (possibly multiple) faults via Faults.
  BatchOptions Batch;
  /// Concurrent worker processes. 1 still forks (containment without
  /// parallelism); the CLI routes jobs<=1 without faults to BatchDriver.
  unsigned Jobs = 2;
  /// RLIMIT_AS per worker in MiB (0 = uncapped; ignored under ASan).
  size_t MemLimitMB = 0;
  /// Supervisor kill-on-deadline: SIGKILL a worker running longer than
  /// this many wall-clock seconds. 0 derives a default from the scan
  /// deadline (2*wall + 1s) when one is set, else disables the killer.
  double KillAfterSeconds = 0;
  /// Retry a crashed/oom/deadline-killed package once, without its
  /// injected fault and at half the wall-clock budget (the transient-
  /// failure model the one-shot FaultPlan semantics encode).
  bool RetryCrashed = false;
  /// Deterministic faults, each targeting the Nth *scanned* package of
  /// the run (same sequence a single in-process Scanner would count).
  /// Unlike BatchOptions::Scan::Fault this is a list: one run can crash
  /// package 1 and hang package 3.
  std::vector<scanner::FaultPlan> Faults;
};

/// The supervised worker pool. Same contract as BatchDriver::run — same
/// inputs, same journal format, same summary — plus OS-level containment.
class ProcessPool {
public:
  explicit ProcessPool(PoolOptions Options);

  BatchSummary run(const std::vector<BatchInput> &Inputs);

  const PoolOptions &options() const { return Options; }

  /// The wall-clock seconds after which the supervisor SIGKILLs a worker
  /// (resolving the KillAfterSeconds=0 default); 0 = killer disabled.
  static double effectiveKillAfter(const PoolOptions &Options);

private:
  PoolOptions Options;
};

} // namespace driver
} // namespace gjs

#endif // GJS_DRIVER_PROCESSPOOL_H
