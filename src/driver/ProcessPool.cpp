//===- driver/ProcessPool.cpp - Supervised multi-process batch scan --------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/ProcessPool.h"

#include "driver/WorkerProtocol.h"
#include "obs/Counters.h"
#include "obs/Histogram.h"
#include "obs/Metrics.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <fstream>
#include <optional>
#include <set>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

using namespace gjs;
using namespace gjs::driver;

namespace {

/// SIGINT/SIGTERM drain flag: the supervisor stops launching and waits for
/// in-flight workers, leaving a valid resumable journal prefix.
volatile std::sig_atomic_t PoolStopRequested = 0;

void poolStopHandler(int) { PoolStopRequested = 1; }

/// Installs the drain handlers for the duration of a run, restoring the
/// prior dispositions on exit (tests run pools back to back).
struct DrainSignalGuard {
  struct sigaction OldInt {};
  struct sigaction OldTerm {};
  DrainSignalGuard() {
    PoolStopRequested = 0;
    struct sigaction SA {};
    SA.sa_handler = poolStopHandler;
    sigemptyset(&SA.sa_mask);
    ::sigaction(SIGINT, &SA, &OldInt);
    ::sigaction(SIGTERM, &SA, &OldTerm);
  }
  ~DrainSignalGuard() {
    ::sigaction(SIGINT, &OldInt, nullptr);
    ::sigaction(SIGTERM, &OldTerm, nullptr);
  }
};

/// One planned (non-skipped) package scan.
struct WorkItem {
  size_t InputIndex = 0;
  size_t SlotIndex = 0;
  /// Fault targeting this package, already rebased to Package=0 for the
  /// worker's single-package Scanner.
  std::optional<scanner::FaultPlan> Fault;
};

/// One outcome slot, in input order. The merge cursor flushes the longest
/// complete prefix to the journal.
struct Slot {
  BatchOutcome Outcome;
  bool Complete = false;
};

/// One live fork-per-package worker process.
struct LiveWorker {
  Subprocess Proc;
  size_t WorkIdx = 0;
  Timer Started;
  bool KillSent = false;
  bool IsRetry = false;
  std::string LinePath;
  /// Telemetry frame reassembly off the (otherwise idle) socketpair. The
  /// supervisor pumps this on *live* workers too: a worker blocked on a
  /// full socket buffer mid-frame would otherwise never exit, while the
  /// supervisor's poll() spins hot on the readable fd.
  FrameReader Reader;
  /// The worker's decoded telemetry frame, stashed until reap merges it.
  WorkerResponse Telemetry;
  bool HasTelemetry = false;
  /// Supervisor-recorder timestamp at launch (scheduling span start).
  double TraceStartUs = 0;
};

/// One live persistent worker: a forked image draining job frames off its
/// socketpair until crash, kill, or recycle.
struct PersistentWorker {
  Subprocess Proc;
  FrameReader Reader;
  /// A job is in flight; its verdict is either a response frame or, if the
  /// worker dies first, a wait-status attribution — never both (per-job
  /// exactly-once).
  bool Busy = false;
  /// The worker's next exit is planned (announced recycle, or a job that
  /// completed after the kill ladder fired): don't assign it work and
  /// don't count its death as a launch failure.
  bool Retiring = false;
  size_t WorkIdx = 0;
  bool IsRetry = false;
  uint64_t JobId = 0;
  Timer JobStarted;
  bool KillSent = false;
  /// Supervisor-recorder timestamp at assignment (scheduling span start).
  double TraceStartUs = 0;
};

/// The fork-per-package worker body: scan one package, write the journal
/// line to a private file, and report success purely through the exit code.
/// The socketpair (FD), unused for the verdict, carries one optional
/// telemetry frame back: counter/histogram deltas and (on request) the
/// job's span tree rebased onto the supervisor's trace epoch.
int scanInWorker(const driver::BatchInput &Input, scanner::ScanOptions Scan,
                 bool EnableCounters, const std::string &LinePath, int FD,
                 bool WantTrace, uint64_t TraceEpochUs) {
  installOomExitHandler();
  if (EnableCounters) {
    obs::setCountersEnabled(true);
    obs::resetCounters();
  }
  obs::CounterSnapshot CtrBefore = obs::snapshotCounters();
  obs::HistogramSnapshotMap HistBefore = obs::snapshotHistograms();
  obs::TraceRecorder Recorder;
  if (WantTrace)
    Scan.Trace = &Recorder;
  BatchOutcome Out = scanPackageIsolated(Input, Scan);
  if (EnableCounters || WantTrace) {
    WorkerResponse Telemetry;
    if (EnableCounters) {
      Telemetry.CounterDelta =
          obs::counterDelta(CtrBefore, obs::snapshotCounters());
      Telemetry.HistDelta =
          obs::histogramDelta(HistBefore, obs::snapshotHistograms());
    }
    if (WantTrace)
      Telemetry.Spans = rebasedSpans(Recorder, TraceEpochUs);
    // Best-effort: a hung-up supervisor costs the telemetry, never the
    // verdict (which travels via LinePath + exit code).
    writeFrame(FD, Telemetry.encode());
  }
  std::ofstream F(LinePath, std::ios::out | std::ios::trunc);
  if (!F)
    return 120; // No way to report a result; the supervisor sees Crashed.
  F << BatchDriver::journalLine(Out) << '\n';
  F.flush();
  return F.good() ? 0 : 120;
}

/// Sleeps until one of the workers' comm channels stirs — a response frame,
/// or the EOF hang-up its death leaves behind — or \p TimeoutMs passes.
/// Replaces timer polling: the supervisor contributes zero CPU while the
/// workers scan (which matters on small hosts, where a spinning supervisor
/// competes with its own workers for cores) and wakes the instant a result
/// is ready instead of up to a tick later. The bounded timeout keeps the
/// wall-clock kill ladder firing for workers that are alive but silent —
/// a hang, by definition, writes nothing.
void waitForWorkerActivity(const std::vector<int> &FDs, int TimeoutMs) {
  std::vector<struct pollfd> PFDs;
  PFDs.reserve(FDs.size());
  for (int FD : FDs)
    if (FD >= 0)
      PFDs.push_back({FD, POLLIN, 0});
  if (PFDs.empty())
    ::usleep(static_cast<unsigned>(TimeoutMs) * 1000);
  else
    ::poll(PFDs.data(), PFDs.size(), TimeoutMs); // EINTR = a signal; fine.
}

/// Reads the single journal line a worker left behind ("" when the worker
/// died before writing it).
std::string readWorkerLine(const std::string &Path) {
  std::ifstream In(Path);
  std::string Line;
  if (In)
    std::getline(In, Line);
  return Line;
}

/// The persistent worker body: drain job frames until the supervisor says
/// exit (or hangs up), answering each with the package's journal line.
/// Exits WorkerRecycleExit after announcing a recycle in its final
/// response; any other death is the supervisor's to attribute.
int persistentWorkerMain(int FD, const std::vector<driver::BatchInput> &Inputs,
                         const std::vector<WorkItem> &Plan,
                         const scanner::ScanOptions &BaseScan,
                         bool EnableCounters, unsigned RecycleAfter,
                         size_t RecycleRssMB) {
  installOomExitHandler();
  if (EnableCounters) {
    obs::setCountersEnabled(true);
    obs::resetCounters();
  }
  unsigned Done = 0;
  std::string Text;
  while (readFrame(FD, Text)) {
    WorkerRequest Req;
    if (!WorkerRequest::decode(Text, Req))
      return 121; // Protocol corruption: die visibly, never guess a job.
    if (Req.Kind == WorkerRequest::Op::Exit)
      return 0;
    if (Req.Kind == WorkerRequest::Op::Ping) {
      WorkerResponse Resp;
      Resp.JobId = Req.JobId;
      Resp.Pong = true;
      if (!writeFrame(FD, Resp.encode()))
        return 122;
      continue;
    }
    if (!Req.HasPlanIndex || Req.PlanIndex >= Plan.size())
      return 121;
    const WorkItem &W = Plan[Req.PlanIndex];
    scanner::ScanOptions Scan = BaseScan;
    Scan.Fault = Req.IsRetry ? std::nullopt : W.Fault;
    if (Req.IsRetry && Scan.Deadline.WallSeconds > 0)
      Scan.Deadline.WallSeconds /= 2; // Retry at reduced budget.
    // Per-job telemetry: deltas bracket exactly this scan, so the
    // supervisor can merge them without double-counting earlier jobs.
    obs::CounterSnapshot CtrBefore;
    obs::HistogramSnapshotMap HistBefore;
    if (EnableCounters) {
      CtrBefore = obs::snapshotCounters();
      HistBefore = obs::snapshotHistograms();
    }
    obs::TraceRecorder Recorder;
    if (Req.WantTrace)
      Scan.Trace = &Recorder;
    WorkerResponse Resp;
    Resp.JobId = Req.JobId;
    Resp.Line = BatchDriver::journalLine(
        scanPackageIsolated(Inputs[W.InputIndex], Scan));
    if (EnableCounters) {
      Resp.CounterDelta = obs::counterDelta(CtrBefore, obs::snapshotCounters());
      Resp.HistDelta =
          obs::histogramDelta(HistBefore, obs::snapshotHistograms());
    }
    if (Req.WantTrace)
      Resp.Spans = rebasedSpans(Recorder, Req.TraceEpochUs);
    ++Done;
    // A recycle is announced in the response *before* exiting, so the
    // supervisor never mistakes the planned death for a crash and never
    // assigns this worker another job it would silently drop.
    Resp.Recycle = (RecycleAfter && Done >= RecycleAfter) ||
                   (RecycleRssMB && currentRssMB() > RecycleRssMB);
    if (!writeFrame(FD, Resp.encode()))
      return 122;
    if (Resp.Recycle)
      return WorkerRecycleExit;
  }
  return 0; // Supervisor hung up: orderly drain.
}

} // namespace

ProcessPool::ProcessPool(PoolOptions Options) : Options(std::move(Options)) {}

double ProcessPool::effectiveKillAfter(const PoolOptions &Options) {
  if (Options.KillAfterSeconds > 0)
    return Options.KillAfterSeconds;
  double Wall = Options.Batch.Scan.Deadline.WallSeconds;
  // Twice the cooperative budget plus slack: the worker gets every chance
  // to degrade gracefully before the supervisor shoots it.
  return Wall > 0 ? 2 * Wall + 1.0 : 0;
}

BatchSummary ProcessPool::run(const std::vector<BatchInput> &Inputs) {
  BatchSummary Summary;
  Timer Wall;
  const BatchOptions &Batch = Options.Batch;

  std::set<std::string> Done;
  if (Batch.Resume && !Batch.JournalPath.empty())
    Done = BatchDriver::journaledPackages(Batch.JournalPath);

  // Per-worker journal-line files (fork-per-package mode) live in a private
  // temp dir; the merge deletes them as it goes. If we cannot get one, fall
  // back to the in-process driver (containment lost, batch still runs).
  std::string TmpDir;
  {
    const char *T = std::getenv("TMPDIR");
    std::string Tmpl =
        std::string(T && *T ? T : "/tmp") + "/gjs-pool-XXXXXX";
    std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
    Buf.push_back('\0');
    if (::mkdtemp(Buf.data()))
      TmpDir = Buf.data();
  }
  if (TmpDir.empty())
    return BatchDriver(Batch).run(Inputs);

  // Plan: input order, resume skips prefilled complete, scanned packages
  // numbered by the same sequence a single in-process Scanner would count
  // (what FaultPlan::Package targets).
  std::vector<Slot> Slots;
  std::vector<WorkItem> Plan;
  unsigned Seq = 0;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (Done.count(Inputs[I].Name) || Batch.AlreadyDone.count(Inputs[I].Name)) {
      Slot S;
      S.Outcome.Package = Inputs[I].Name;
      S.Outcome.Skipped = true;
      S.Complete = true;
      Slots.push_back(std::move(S));
      continue;
    }
    if (Batch.MaxPackages && Seq >= Batch.MaxPackages)
      break;
    Slot S;
    S.Outcome.Package = Inputs[I].Name;
    Slots.push_back(std::move(S));
    WorkItem W;
    W.InputIndex = I;
    W.SlotIndex = Slots.size() - 1;
    for (const scanner::FaultPlan &F : Options.Faults) {
      // A name-targeted fault (`...@pkg`) follows its package wherever it
      // lands in a shard; an index fault targets the scan sequence.
      bool Match = F.PackageName.empty() ? F.Package == Seq
                                         : F.PackageName == Inputs[I].Name;
      if (Match) {
        W.Fault = F;
        W.Fault->Package = 0; // Worker scans exactly one package.
        W.Fault->PackageName.clear();
        break;
      }
    }
    Plan.push_back(std::move(W));
    ++Seq;
  }

  std::ofstream Journal;
  if (!Batch.JournalPath.empty())
    Journal.open(Batch.JournalPath, Batch.Resume
                                        ? std::ios::out | std::ios::app
                                        : std::ios::out | std::ios::trunc);

  bool PrevCounters = obs::countersEnabled();
  if (Batch.EnableCounters)
    obs::setCountersEnabled(true);

  ProgressMeter Progress(Inputs.size(), Batch.ProgressEveryPackages,
                         Batch.ProgressEverySeconds, Batch.Quiet);
  DrainSignalGuard Signals;

  // Cross-process stitching: the supervisor claims its own pid lane and
  // every job request carries the shared trace epoch, so worker spans come
  // back pre-rebased onto one timeline.
  const bool WantTrace = Options.Trace != nullptr;
  const uint64_t TraceEpochUs = WantTrace ? Options.Trace->epochUs() : 0;
  if (WantTrace) {
    Options.Trace->setDefaultPid(::getpid());
    Options.Trace->labelPid(::getpid(), "supervisor");
  }

  // Merges one worker's telemetry frame into the supervisor's registries:
  // counter deltas (the undercount fix for `batch --stats` under --jobs N),
  // histogram buckets, and the worker's span tree on its own pid lane.
  auto mergeTelemetry = [&](const WorkerResponse &T, int Pid) {
    if (!T.CounterDelta.empty())
      obs::mergeCounters(T.CounterDelta);
    if (!T.HistDelta.empty())
      obs::mergeHistograms(T.HistDelta);
    if (WantTrace && !T.Spans.empty()) {
      Options.Trace->labelPid(Pid, "worker " + std::to_string(Pid));
      Options.Trace->addForeignSpans(T.Spans, Pid);
    }
  };

  Timer MetricsClock;
  auto maybeWriteMetrics = [&]() {
    if (Batch.MetricsPath.empty() ||
        MetricsClock.elapsedSeconds() < Batch.MetricsEverySeconds)
      return;
    obs::writePrometheusFile(Batch.MetricsPath);
    MetricsClock.reset();
  };

  const double KillAfter = effectiveKillAfter(Options);
  SubprocessLimits Limits;
  Limits.MemLimitMB = Options.MemLimitMB;
  if (KillAfter > 0)
    // CPU rlimit backstop above the supervisor's wall-clock killer: it only
    // matters if the supervisor itself dies with a spinning worker behind.
    Limits.CpuSeconds = static_cast<unsigned>(KillAfter) + 2;

  size_t MergeCursor = 0;

  // Completing a slot out of order is fine; only the longest complete
  // prefix is journaled, so a SIGKILLed supervisor always leaves a valid
  // resumable journal.
  auto flushCursor = [&]() {
    while (MergeCursor < Slots.size() && Slots[MergeCursor].Complete) {
      Slot &S = Slots[MergeCursor];
      if (S.Outcome.Skipped) {
        ++Summary.SkippedResumed;
      } else {
        ++Summary.Scanned;
        Summary.TotalSeconds += S.Outcome.Seconds;
        Summary.TotalReports += S.Outcome.Result.Reports.size();
        switch (S.Outcome.Status) {
        case BatchStatus::Ok:
          ++Summary.Ok;
          break;
        case BatchStatus::Degraded:
          ++Summary.Degraded;
          break;
        case BatchStatus::Failed:
          ++Summary.Failed;
          break;
        case BatchStatus::Quarantined:
          ++Summary.Quarantined;
          break;
        }
        if (Journal.is_open()) {
          // Healthy packages: the worker's bytes verbatim, so --jobs N and
          // --jobs 1 journals are byte-identical where both succeed. The
          // shared ledger frames every line it persists (workers always
          // emit bare lines).
          std::string Line = S.Outcome.RawJournalLine.empty()
                                 ? BatchDriver::journalLine(S.Outcome)
                                 : S.Outcome.RawJournalLine;
          if (Options.Batch.FramedJournal)
            Line = frameJournalLine(Line);
          Journal << Line << '\n';
          Journal.flush();
        }
      }
      Summary.Outcomes.push_back(std::move(S.Outcome));
      ++MergeCursor;
    }
  };

  auto completeSlot = [&](size_t SlotIdx, BatchOutcome Out) {
    Slots[SlotIdx].Outcome = std::move(Out);
    Slots[SlotIdx].Complete = true;
    Progress.completed(Slots[SlotIdx].Outcome.Status == BatchStatus::Failed);
    flushCursor();
  };

  auto synthFailure = [&](const WorkItem &W, scanner::ScanErrorKind Kind,
                          std::string Detail, double Seconds) {
    BatchOutcome Out;
    Out.Package = Inputs[W.InputIndex].Name;
    Out.Status = BatchStatus::Failed;
    Out.Seconds = Seconds;
    Out.Result.Errors.push_back(
        {scanner::ScanPhase::Driver, Kind, std::move(Detail), ""});
    Out.RawJournalLine = BatchDriver::journalLine(Out);
    return Out;
  };

  /// Maps a dead worker's wait status onto an outcome via the kill ladder:
  /// OOM exit code, supervisor kill, RLIMIT_CPU, unexplained SIGKILL
  /// (kernel OOM killer), any other signal, then "exited without a result".
  /// Shared by both scheduling modes so attribution is identical.
  auto ladderVerdict = [&](const WorkItem &W, const WaitStatus &WS,
                           bool KillSent, double Seconds) {
    if (WS.exitedWith(WorkerOomExit)) {
      obs::counters::WorkerOomKilled.add();
      ++Summary.OomKilled;
      return synthFailure(W, scanner::ScanErrorKind::KilledOom,
                          "worker allocation failed under memory cap (" +
                              WS.str() + ")",
                          Seconds);
    }
    if (KillSent) {
      obs::counters::WorkerDeadlineKilled.add();
      ++Summary.DeadlineKilled;
      return synthFailure(W, scanner::ScanErrorKind::KilledDeadline,
                          "supervisor killed worker after hard deadline (" +
                              WS.str() + ")",
                          Seconds);
    }
    if (WS.signaled() && WS.Signal == SIGXCPU) {
      obs::counters::WorkerDeadlineKilled.add();
      ++Summary.DeadlineKilled;
      return synthFailure(W, scanner::ScanErrorKind::KilledDeadline,
                          "worker hit RLIMIT_CPU (" + WS.str() + ")",
                          Seconds);
    }
    if (WS.signaled() && WS.Signal == SIGKILL) {
      // We did not send it: the kernel OOM killer is the usual suspect.
      obs::counters::WorkerOomKilled.add();
      ++Summary.OomKilled;
      return synthFailure(W, scanner::ScanErrorKind::KilledOom,
                          "worker got an unexplained SIGKILL (kernel OOM "
                          "killer?)",
                          Seconds);
    }
    if (WS.signaled()) {
      obs::counters::WorkerCrashed.add();
      ++Summary.Crashed;
      return synthFailure(W, scanner::ScanErrorKind::Crashed,
                          "worker died on " + WS.str(), Seconds);
    }
    obs::counters::WorkerCrashed.add();
    ++Summary.Crashed;
    return synthFailure(W, scanner::ScanErrorKind::Crashed,
                        "worker produced no result (" + WS.str() + ")",
                        Seconds);
  };

  if (!Options.Persistent) {
    // ----- Fork-per-package scheduling (PR 5) -----
    std::vector<LiveWorker> Live;
    size_t NextLaunch = 0;

    std::function<void(size_t, bool)> launch = [&](size_t PlanIdx,
                                                   bool IsRetry) {
      const WorkItem &W = Plan[PlanIdx];
      const BatchInput &In = Inputs[W.InputIndex];
      // Every dispatch attempt (retries included) is announced before the
      // fork: the shared ledger's start record must hit disk before any
      // work that could kill the supervisor begins.
      if (Batch.OnPackageStart)
        Batch.OnPackageStart(In.Name);
      scanner::ScanOptions Scan = Batch.Scan;
      Scan.Fault = IsRetry ? std::nullopt : W.Fault;
      if (IsRetry && Scan.Deadline.WallSeconds > 0)
        Scan.Deadline.WallSeconds /= 2; // Retry at reduced budget.
      std::string LinePath =
          TmpDir + "/" + std::to_string(PlanIdx) + ".jsonl";
      bool EnableCounters = Batch.EnableCounters;
      Subprocess P;
      std::string Err;
      // Stamp the scheduling-span start before the fork: the child can be
      // scheduled (and open its own spans) before the parent resumes, and
      // the job: span must enclose the worker's rebased spans.
      double StartUs = WantTrace ? Options.Trace->nowUs() : 0;
      // The socketpair pulls double duty: its EOF on worker death wakes
      // the supervisor's poll(), and the worker sends one telemetry frame
      // over it before writing its line file.
      bool OK = Subprocess::forkWorker(
          [&](int FD) {
            return scanInWorker(In, Scan, EnableCounters, LinePath, FD,
                                WantTrace, TraceEpochUs);
          },
          P, &Err, Limits);
      if (!OK) {
        completeSlot(W.SlotIndex,
                     synthFailure(W, scanner::ScanErrorKind::Crashed,
                                  "worker launch failed: " + Err, 0));
        return;
      }
      // FrameReader::pump must never block the supervisor.
      ::fcntl(P.commFD(), F_SETFL,
              ::fcntl(P.commFD(), F_GETFL, 0) | O_NONBLOCK);
      obs::counters::WorkerSpawned.add();
      LiveWorker L;
      L.Proc = std::move(P);
      L.WorkIdx = PlanIdx;
      L.IsRetry = IsRetry;
      L.LinePath = std::move(LinePath);
      L.TraceStartUs = StartUs;
      Live.push_back(std::move(L));
    };

    // Decodes and stashes whatever telemetry frames a worker has flushed
    // so far (the last decodable frame wins; workers send exactly one).
    auto pumpTelemetry = [&](LiveWorker &L) {
      if (L.Reader.dead())
        return;
      L.Reader.pump(L.Proc.commFD());
      std::string Text;
      while (L.Reader.next(Text)) {
        WorkerResponse T;
        if (WorkerResponse::decode(Text, T) && T.hasTelemetry()) {
          L.Telemetry = std::move(T);
          L.HasTelemetry = true;
        }
      }
    };

    // Maps a reaped worker onto an outcome. Exit 0 + a parseable line is
    // the worker's own verdict; anything else gets a supervisor verdict
    // from the wait status and the kill ladder.
    auto reap = [&](LiveWorker &L, const WaitStatus &WS) {
      const WorkItem &W = Plan[L.WorkIdx];
      double Seconds = L.Started.elapsedSeconds();
      // Last telemetry drain: frames the worker flushed before dying are
      // still in the socket buffer.
      pumpTelemetry(L);
      if (L.HasTelemetry)
        mergeTelemetry(L.Telemetry, L.Proc.pid());
      obs::hists::WorkerJob.recordSeconds(Seconds);
      if (WantTrace)
        Options.Trace->addCompletedSpan(
            "job:" + Inputs[W.InputIndex].Name, L.TraceStartUs,
            Options.Trace->nowUs() - L.TraceStartUs);
      std::string Line = readWorkerLine(L.LinePath);
      ::unlink(L.LinePath.c_str());

      BatchOutcome Out;
      bool WorkerDied = true;
      if (WS.exitedWith(0) && !Line.empty() &&
          BatchDriver::parseJournalLine(Line, Out)) {
        Out.RawJournalLine = Line;
        WorkerDied = false;
      } else {
        Out = ladderVerdict(W, WS, L.KillSent, Seconds);
      }

      if (WorkerDied && Options.RetryCrashed && !L.IsRetry) {
        obs::counters::WorkerRetried.add();
        ++Summary.Retried;
        launch(L.WorkIdx, /*IsRetry=*/true);
        return;
      }
      completeSlot(W.SlotIndex, std::move(Out));
    };

    while (true) {
      // The tick hook (lease heartbeat in shared-ledger mode) demotes a
      // fenced supervisor to the same drain path as SIGINT: finish what is
      // in flight, assign nothing new.
      if (Batch.OnTick && !Batch.OnTick())
        PoolStopRequested = 1;
      while (!PoolStopRequested && Live.size() < Options.Jobs &&
             NextLaunch < Plan.size())
        launch(NextLaunch++, /*IsRetry=*/false);

      if (Live.empty() && (NextLaunch >= Plan.size() || PoolStopRequested))
        break;

      bool Reaped = false;
      for (size_t I = 0; I < Live.size();) {
        WaitStatus WS;
        if (Live[I].Proc.poll(WS)) {
          // reap() may relaunch (retry), appending to Live; erase by index
          // stays valid.
          LiveWorker L = std::move(Live[I]);
          Live.erase(Live.begin() + static_cast<long>(I));
          reap(L, WS);
          Reaped = true;
        } else {
          // Pump live workers too: a telemetry frame bigger than the
          // socket buffer would otherwise wedge the worker mid-write
          // while the supervisor's poll() spins hot on the readable fd.
          pumpTelemetry(Live[I]);
          if (KillAfter > 0 && !Live[I].KillSent &&
              Live[I].Started.elapsedSeconds() > KillAfter) {
            Live[I].Proc.kill(SIGKILL);
            Live[I].KillSent = true;
          }
          ++I;
        }
      }
      maybeWriteMetrics();
      if (!Reaped) {
        std::vector<int> FDs;
        FDs.reserve(Live.size());
        for (const LiveWorker &L : Live)
          // A consumed EOF would report POLLIN forever; let Proc.poll()
          // reap the death on the next sweep instead of spinning on it.
          FDs.push_back(L.Reader.dead() ? -1 : L.Proc.commFD());
        waitForWorkerActivity(FDs, 50);
      }
    }
  } else {
    // ----- Persistent-worker scheduling -----
    // Supervisor writes to workers that may die at any moment: EPIPE must
    // be an error return on the write, never a fatal SIGPIPE.
    ScopedSigpipeIgnore NoSigpipe;

    SubprocessLimits PLimits = Limits;
    // RLIMIT_CPU counts the worker's whole lifetime, not one job. With a
    // recycle quota the lifetime is bounded and the backstop scales with
    // it; without one there is no meaningful per-process cap, and the
    // supervisor's per-job wall-clock killer is the whole ladder.
    if (KillAfter > 0 && Options.RecycleAfter > 0)
      PLimits.CpuSeconds =
          static_cast<unsigned>(KillAfter * Options.RecycleAfter) + 2;
    else
      PLimits.CpuSeconds = 0;

    // {plan index, is-retry}; retries go to the front so a replacement
    // worker re-attempts the afflicted package before draining the rest.
    std::deque<std::pair<size_t, bool>> Queue;
    for (size_t I = 0; I < Plan.size(); ++I)
      Queue.emplace_back(I, false);

    std::vector<PersistentWorker> Workers;
    uint64_t NextJobId = 1;
    // Consecutive worker deaths without a job in hand (e.g. dying before
    // the first frame): backstop against a fork/requeue livelock when the
    // environment is broken.
    unsigned IdleDeaths = 0;

    auto spawnWorker = [&]() -> bool {
      Subprocess P;
      std::string Err;
      bool OK = Subprocess::forkWorker(
          [&](int FD) {
            return persistentWorkerMain(FD, Inputs, Plan, Batch.Scan,
                                        Batch.EnableCounters,
                                        Options.RecycleAfter,
                                        Options.RecycleRssMB);
          },
          P, &Err, PLimits);
      if (!OK)
        return false;
      // The supervisor multiplexes many workers; reads must never block.
      ::fcntl(P.commFD(), F_SETFL, ::fcntl(P.commFD(), F_GETFL, 0) | O_NONBLOCK);
      obs::counters::WorkerSpawned.add();
      PersistentWorker W;
      W.Proc = std::move(P);
      Workers.push_back(std::move(W));
      return true;
    };

    auto assignJob = [&](PersistentWorker &W) {
      auto [PlanIdx, IsRetry] = Queue.front();
      if (Batch.OnPackageStart)
        Batch.OnPackageStart(Inputs[Plan[PlanIdx].InputIndex].Name);
      WorkerRequest Req;
      Req.Kind = WorkerRequest::Op::Scan;
      Req.JobId = NextJobId++;
      Req.HasPlanIndex = true;
      Req.PlanIndex = PlanIdx;
      Req.IsRetry = IsRetry;
      Req.WantTrace = WantTrace;
      Req.TraceEpochUs = TraceEpochUs;
      // Stamped before the frame goes out: the worker may pick the job up
      // before the parent returns from write().
      if (WantTrace)
        W.TraceStartUs = Options.Trace->nowUs();
      if (!writeFrame(W.Proc.commFD(), Req.encode())) {
        // The worker died between jobs; the job never started and stays
        // queued. Make the death certain and let the reap pass handle it.
        W.Proc.kill(SIGKILL);
        return;
      }
      Queue.pop_front();
      W.Busy = true;
      W.WorkIdx = PlanIdx;
      W.IsRetry = IsRetry;
      W.JobId = Req.JobId;
      W.JobStarted = Timer();
      W.KillSent = false;
    };

    auto handleFrame = [&](PersistentWorker &W, const std::string &Text) {
      WorkerResponse Resp;
      if (!WorkerResponse::decode(Text, Resp))
        return; // Corrupt frame; the ladder attributes whatever follows.
      if (Resp.Pong)
        return;
      if (!W.Busy || Resp.JobId != W.JobId)
        return; // Stale or duplicate response: first verdict wins.
      IdleDeaths = 0;
      W.Busy = false;
      // A response that raced the kill ladder still counts — the job DID
      // complete — but the worker is dying; treat the exit as planned.
      if (Resp.Recycle || W.KillSent)
        W.Retiring = true;
      mergeTelemetry(Resp, W.Proc.pid());
      obs::hists::WorkerJob.recordSeconds(W.JobStarted.elapsedSeconds());
      const WorkItem &Wk = Plan[W.WorkIdx];
      if (WantTrace)
        Options.Trace->addCompletedSpan(
            "job:" + Inputs[Wk.InputIndex].Name, W.TraceStartUs,
            Options.Trace->nowUs() - W.TraceStartUs);
      BatchOutcome Out;
      if (!Resp.Line.empty() &&
          BatchDriver::parseJournalLine(Resp.Line, Out)) {
        Out.RawJournalLine = Resp.Line;
        completeSlot(Wk.SlotIndex, std::move(Out));
      } else {
        obs::counters::WorkerCrashed.add();
        ++Summary.Crashed;
        completeSlot(Wk.SlotIndex,
                     synthFailure(Wk, scanner::ScanErrorKind::Crashed,
                                  "worker sent an unparseable result",
                                  W.JobStarted.elapsedSeconds()));
      }
    };

    auto reapWorker = [&](PersistentWorker &W, const WaitStatus &WS) {
      // Drain frames the worker flushed before dying: a completed response
      // beats a racing kill or crash (the scan finished; use its verdict).
      W.Reader.pump(W.Proc.commFD());
      std::string Text;
      while (W.Reader.next(Text))
        handleFrame(W, Text);

      if (WS.exitedWith(WorkerRecycleExit)) {
        obs::counters::WorkerRecycled.add();
        ++Summary.Recycled;
      }
      if (!W.Busy) {
        // No job in hand: nothing to attribute. An unplanned idle death
        // still counts against the livelock backstop.
        bool Planned =
            WS.exitedWith(0) || WS.exitedWith(WorkerRecycleExit) || W.Retiring;
        if (!Planned)
          ++IdleDeaths;
        return;
      }
      // Job in hand and no response: the wait status is the verdict.
      const WorkItem &Wk = Plan[W.WorkIdx];
      BatchOutcome Out =
          ladderVerdict(Wk, WS, W.KillSent, W.JobStarted.elapsedSeconds());
      if (Options.RetryCrashed && !W.IsRetry) {
        obs::counters::WorkerRetried.add();
        ++Summary.Retried;
        Queue.emplace_front(W.WorkIdx, /*IsRetry=*/true);
        return;
      }
      completeSlot(Wk.SlotIndex, std::move(Out));
    };

    while (true) {
      if (Batch.OnTick && !Batch.OnTick())
        PoolStopRequested = 1;
      size_t BusyCount = static_cast<size_t>(
          std::count_if(Workers.begin(), Workers.end(),
                        [](const PersistentWorker &W) { return W.Busy; }));

      if (!PoolStopRequested) {
        // Keep just enough workers alive for the outstanding work.
        size_t Want = std::min<size_t>(std::max(1u, Options.Jobs),
                                       Queue.size() + BusyCount);
        while (Workers.size() < Want) {
          if (spawnWorker())
            continue;
          if (Workers.empty()) {
            // Nothing can run: fail the whole queue rather than spin.
            while (!Queue.empty()) {
              const WorkItem &Wk = Plan[Queue.front().first];
              Queue.pop_front();
              obs::counters::WorkerCrashed.add();
              ++Summary.Crashed;
              completeSlot(Wk.SlotIndex,
                           synthFailure(Wk, scanner::ScanErrorKind::Crashed,
                                        "worker launch failed", 0));
            }
          }
          break;
        }
        if (IdleDeaths >= 3 && !Queue.empty()) {
          // Workers keep dying before accepting work; fail one job per
          // strike-out so the run always makes forward progress.
          const WorkItem &Wk = Plan[Queue.front().first];
          Queue.pop_front();
          obs::counters::WorkerCrashed.add();
          ++Summary.Crashed;
          completeSlot(Wk.SlotIndex,
                       synthFailure(Wk, scanner::ScanErrorKind::Crashed,
                                    "worker died repeatedly before accepting "
                                    "work",
                                    0));
          IdleDeaths = 0;
        }
        for (PersistentWorker &W : Workers) {
          if (Queue.empty())
            break;
          if (!W.Busy && !W.Retiring && !W.Reader.dead())
            assignJob(W);
        }
        BusyCount = static_cast<size_t>(
            std::count_if(Workers.begin(), Workers.end(),
                          [](const PersistentWorker &W) { return W.Busy; }));
      }

      if (BusyCount == 0 && (Queue.empty() || PoolStopRequested))
        break;

      bool Activity = false;
      for (size_t I = 0; I < Workers.size();) {
        PersistentWorker &W = Workers[I];
        if (!W.Reader.dead()) {
          W.Reader.pump(W.Proc.commFD());
          std::string Text;
          while (W.Reader.next(Text)) {
            handleFrame(W, Text);
            Activity = true;
          }
        }
        WaitStatus WS;
        if (W.Proc.poll(WS)) {
          PersistentWorker Dead = std::move(W);
          Workers.erase(Workers.begin() + static_cast<long>(I));
          reapWorker(Dead, WS);
          Activity = true;
          continue;
        }
        if (W.Busy && !W.KillSent && KillAfter > 0 &&
            W.JobStarted.elapsedSeconds() > KillAfter) {
          W.Proc.kill(SIGKILL);
          W.KillSent = true;
        }
        ++I;
      }
      maybeWriteMetrics();
      if (!Activity) {
        std::vector<int> FDs;
        FDs.reserve(Workers.size());
        for (const PersistentWorker &W : Workers)
          // A dead reader's fd may have pending bytes we will never read;
          // polling it would spin hot. The kill ladder owns that worker.
          FDs.push_back(W.Reader.dead() ? -1 : W.Proc.commFD());
        waitForWorkerActivity(FDs, 50);
      }
    }

    // Orderly drain: ask every surviving worker to exit, then reap them
    // all (a worker blocked in readFrame gets the Exit frame; a recycle
    // that raced the shutdown is still counted by reapWorker).
    for (PersistentWorker &W : Workers) {
      WaitStatus WS;
      if (W.Proc.poll(WS))
        continue;
      WorkerRequest Req;
      Req.Kind = WorkerRequest::Op::Exit;
      writeFrame(W.Proc.commFD(), Req.encode());
    }
    for (PersistentWorker &W : Workers)
      reapWorker(W, W.Proc.wait());
  }

  flushCursor();
  Progress.finish();
  ::rmdir(TmpDir.c_str());
  // Final snapshot regardless of cadence; the supervisor registries are
  // cumulative here (workers reset their own, the supervisor never does).
  if (!Batch.MetricsPath.empty())
    obs::writePrometheusFile(Batch.MetricsPath);
  if (Batch.EnableCounters)
    obs::setCountersEnabled(PrevCounters);
  Summary.WallSeconds = Wall.elapsedSeconds();
  return Summary;
}
