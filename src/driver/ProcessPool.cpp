//===- driver/ProcessPool.cpp - Supervised multi-process batch scan --------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/ProcessPool.h"

#include "obs/Counters.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <optional>
#include <set>

#include <unistd.h>

using namespace gjs;
using namespace gjs::driver;

namespace {

/// SIGINT/SIGTERM drain flag: the supervisor stops launching and waits for
/// in-flight workers, leaving a valid resumable journal prefix.
volatile std::sig_atomic_t PoolStopRequested = 0;

void poolStopHandler(int) { PoolStopRequested = 1; }

/// Installs the drain handlers for the duration of a run, restoring the
/// prior dispositions on exit (tests run pools back to back).
struct DrainSignalGuard {
  struct sigaction OldInt {};
  struct sigaction OldTerm {};
  DrainSignalGuard() {
    PoolStopRequested = 0;
    struct sigaction SA {};
    SA.sa_handler = poolStopHandler;
    sigemptyset(&SA.sa_mask);
    ::sigaction(SIGINT, &SA, &OldInt);
    ::sigaction(SIGTERM, &SA, &OldTerm);
  }
  ~DrainSignalGuard() {
    ::sigaction(SIGINT, &OldInt, nullptr);
    ::sigaction(SIGTERM, &OldTerm, nullptr);
  }
};

/// One planned (non-skipped) package scan.
struct WorkItem {
  size_t InputIndex = 0;
  size_t SlotIndex = 0;
  /// Fault targeting this package, already rebased to Package=0 for the
  /// worker's single-package Scanner.
  std::optional<scanner::FaultPlan> Fault;
};

/// One outcome slot, in input order. The merge cursor flushes the longest
/// complete prefix to the journal.
struct Slot {
  BatchOutcome Outcome;
  bool Complete = false;
};

/// One live worker process.
struct LiveWorker {
  Subprocess Proc;
  size_t WorkIdx = 0;
  Timer Started;
  bool KillSent = false;
  bool IsRetry = false;
  std::string LinePath;
};

/// The worker body, run on the child side of fork(): scan one package with
/// the in-process catch-all, write the journal line to a private file, and
/// report success purely through the exit code.
int scanInWorker(const driver::BatchInput &Input,
                 const scanner::ScanOptions &Scan, bool EnableCounters,
                 const std::string &LinePath) {
  installOomExitHandler();
  if (EnableCounters) {
    obs::setCountersEnabled(true);
    obs::resetCounters();
  }
  BatchOutcome Out;
  Out.Package = Input.Name;
  Timer T;
  try {
    scanner::Scanner Scanner(Scan);
    Out.Result = Scanner.scanPackage(Input.Files);
    Out.Status = Out.Result.Errors.empty() ? BatchStatus::Ok
                                           : BatchStatus::Degraded;
  } catch (const std::exception &E) {
    Out.Status = BatchStatus::Failed;
    Out.Result.Errors.push_back({scanner::ScanPhase::Driver,
                                 scanner::ScanErrorKind::Internal,
                                 std::string("scan threw: ") + E.what(), ""});
  } catch (...) {
    Out.Status = BatchStatus::Failed;
    Out.Result.Errors.push_back({scanner::ScanPhase::Driver,
                                 scanner::ScanErrorKind::Internal,
                                 "scan threw a non-standard exception", ""});
  }
  Out.Seconds = T.elapsedSeconds();
  std::ofstream F(LinePath, std::ios::out | std::ios::trunc);
  if (!F)
    return 120; // No way to report a result; the supervisor sees Crashed.
  F << BatchDriver::journalLine(Out) << '\n';
  F.flush();
  return F.good() ? 0 : 120;
}

/// Reads the single journal line a worker left behind ("" when the worker
/// died before writing it).
std::string readWorkerLine(const std::string &Path) {
  std::ifstream In(Path);
  std::string Line;
  if (In)
    std::getline(In, Line);
  return Line;
}

} // namespace

ProcessPool::ProcessPool(PoolOptions Options) : Options(std::move(Options)) {}

double ProcessPool::effectiveKillAfter(const PoolOptions &Options) {
  if (Options.KillAfterSeconds > 0)
    return Options.KillAfterSeconds;
  double Wall = Options.Batch.Scan.Deadline.WallSeconds;
  // Twice the cooperative budget plus slack: the worker gets every chance
  // to degrade gracefully before the supervisor shoots it.
  return Wall > 0 ? 2 * Wall + 1.0 : 0;
}

BatchSummary ProcessPool::run(const std::vector<BatchInput> &Inputs) {
  BatchSummary Summary;
  Timer Wall;
  const BatchOptions &Batch = Options.Batch;

  std::set<std::string> Done;
  if (Batch.Resume && !Batch.JournalPath.empty())
    Done = BatchDriver::journaledPackages(Batch.JournalPath);

  // Per-worker journal-line files live in a private temp dir; the merge
  // deletes them as it goes. If we cannot get one, fall back to the
  // in-process driver (containment lost, batch still runs).
  std::string TmpDir;
  {
    const char *T = std::getenv("TMPDIR");
    std::string Tmpl =
        std::string(T && *T ? T : "/tmp") + "/gjs-pool-XXXXXX";
    std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
    Buf.push_back('\0');
    if (::mkdtemp(Buf.data()))
      TmpDir = Buf.data();
  }
  if (TmpDir.empty())
    return BatchDriver(Batch).run(Inputs);

  // Plan: input order, resume skips prefilled complete, scanned packages
  // numbered by the same sequence a single in-process Scanner would count
  // (what FaultPlan::Package targets).
  std::vector<Slot> Slots;
  std::vector<WorkItem> Plan;
  unsigned Seq = 0;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (Done.count(Inputs[I].Name)) {
      Slot S;
      S.Outcome.Package = Inputs[I].Name;
      S.Outcome.Skipped = true;
      S.Complete = true;
      Slots.push_back(std::move(S));
      continue;
    }
    if (Batch.MaxPackages && Seq >= Batch.MaxPackages)
      break;
    Slot S;
    S.Outcome.Package = Inputs[I].Name;
    Slots.push_back(std::move(S));
    WorkItem W;
    W.InputIndex = I;
    W.SlotIndex = Slots.size() - 1;
    for (const scanner::FaultPlan &F : Options.Faults) {
      if (F.Package == Seq) {
        W.Fault = F;
        W.Fault->Package = 0;
        break;
      }
    }
    Plan.push_back(std::move(W));
    ++Seq;
  }

  std::ofstream Journal;
  if (!Batch.JournalPath.empty())
    Journal.open(Batch.JournalPath, Batch.Resume
                                        ? std::ios::out | std::ios::app
                                        : std::ios::out | std::ios::trunc);

  bool PrevCounters = obs::countersEnabled();
  if (Batch.EnableCounters)
    obs::setCountersEnabled(true);

  ProgressMeter Progress(Inputs.size(), Batch.ProgressEveryPackages,
                         Batch.ProgressEverySeconds);
  DrainSignalGuard Signals;

  const double KillAfter = effectiveKillAfter(Options);
  SubprocessLimits Limits;
  Limits.MemLimitMB = Options.MemLimitMB;
  if (KillAfter > 0)
    // CPU rlimit backstop above the supervisor's wall-clock killer: it only
    // matters if the supervisor itself dies with a spinning worker behind.
    Limits.CpuSeconds = static_cast<unsigned>(KillAfter) + 2;

  std::vector<LiveWorker> Live;
  size_t NextLaunch = 0;
  size_t MergeCursor = 0;

  // Completing a slot out of order is fine; only the longest complete
  // prefix is journaled, so a SIGKILLed supervisor always leaves a valid
  // resumable journal.
  auto flushCursor = [&]() {
    while (MergeCursor < Slots.size() && Slots[MergeCursor].Complete) {
      Slot &S = Slots[MergeCursor];
      if (S.Outcome.Skipped) {
        ++Summary.SkippedResumed;
      } else {
        ++Summary.Scanned;
        Summary.TotalSeconds += S.Outcome.Seconds;
        Summary.TotalReports += S.Outcome.Result.Reports.size();
        switch (S.Outcome.Status) {
        case BatchStatus::Ok:
          ++Summary.Ok;
          break;
        case BatchStatus::Degraded:
          ++Summary.Degraded;
          break;
        case BatchStatus::Failed:
          ++Summary.Failed;
          break;
        }
        if (Journal.is_open()) {
          // Healthy packages: the worker's bytes verbatim, so --jobs N and
          // --jobs 1 journals are byte-identical where both succeed.
          Journal << (S.Outcome.RawJournalLine.empty()
                          ? BatchDriver::journalLine(S.Outcome)
                          : S.Outcome.RawJournalLine)
                  << '\n';
          Journal.flush();
        }
      }
      Summary.Outcomes.push_back(std::move(S.Outcome));
      ++MergeCursor;
    }
  };

  auto completeSlot = [&](size_t SlotIdx, BatchOutcome Out) {
    Slots[SlotIdx].Outcome = std::move(Out);
    Slots[SlotIdx].Complete = true;
    Progress.completed(Slots[SlotIdx].Outcome.Status == BatchStatus::Failed);
    flushCursor();
  };

  auto synthFailure = [&](const WorkItem &W, scanner::ScanErrorKind Kind,
                          std::string Detail, double Seconds) {
    BatchOutcome Out;
    Out.Package = Inputs[W.InputIndex].Name;
    Out.Status = BatchStatus::Failed;
    Out.Seconds = Seconds;
    Out.Result.Errors.push_back(
        {scanner::ScanPhase::Driver, Kind, std::move(Detail), ""});
    Out.RawJournalLine = BatchDriver::journalLine(Out);
    return Out;
  };

  auto launch = [&](size_t PlanIdx, bool IsRetry) {
    const WorkItem &W = Plan[PlanIdx];
    const BatchInput &In = Inputs[W.InputIndex];
    scanner::ScanOptions Scan = Batch.Scan;
    Scan.Fault = IsRetry ? std::nullopt : W.Fault;
    if (IsRetry && Scan.Deadline.WallSeconds > 0)
      Scan.Deadline.WallSeconds /= 2; // Retry at reduced budget.
    std::string LinePath =
        TmpDir + "/" + std::to_string(PlanIdx) + ".jsonl";
    bool EnableCounters = Batch.EnableCounters;
    Subprocess P;
    std::string Err;
    bool OK = Subprocess::forkChild(
        [&]() { return scanInWorker(In, Scan, EnableCounters, LinePath); },
        P, &Err, Limits);
    if (!OK) {
      completeSlot(W.SlotIndex,
                   synthFailure(W, scanner::ScanErrorKind::Crashed,
                                "worker launch failed: " + Err, 0));
      return;
    }
    obs::counters::WorkerSpawned.add();
    LiveWorker L;
    L.Proc = std::move(P);
    L.WorkIdx = PlanIdx;
    L.IsRetry = IsRetry;
    L.LinePath = std::move(LinePath);
    Live.push_back(std::move(L));
  };

  // Maps a reaped worker onto an outcome. Exit 0 + a parseable line is the
  // worker's own verdict; anything else gets a supervisor verdict from the
  // wait status and the kill ladder.
  auto reap = [&](LiveWorker &L, const WaitStatus &WS) {
    const WorkItem &W = Plan[L.WorkIdx];
    double Seconds = L.Started.elapsedSeconds();
    std::string Line = readWorkerLine(L.LinePath);
    ::unlink(L.LinePath.c_str());

    BatchOutcome Out;
    bool WorkerDied = true;
    if (WS.exitedWith(0) && !Line.empty() &&
        BatchDriver::parseJournalLine(Line, Out)) {
      Out.RawJournalLine = Line;
      WorkerDied = false;
    } else if (WS.exitedWith(WorkerOomExit)) {
      obs::counters::WorkerOomKilled.add();
      ++Summary.OomKilled;
      Out = synthFailure(W, scanner::ScanErrorKind::KilledOom,
                         "worker allocation failed under memory cap (" +
                             WS.str() + ")",
                         Seconds);
    } else if (L.KillSent) {
      obs::counters::WorkerDeadlineKilled.add();
      ++Summary.DeadlineKilled;
      Out = synthFailure(W, scanner::ScanErrorKind::KilledDeadline,
                         "supervisor killed worker after hard deadline (" +
                             WS.str() + ")",
                         Seconds);
    } else if (WS.signaled() && WS.Signal == SIGXCPU) {
      obs::counters::WorkerDeadlineKilled.add();
      ++Summary.DeadlineKilled;
      Out = synthFailure(W, scanner::ScanErrorKind::KilledDeadline,
                         "worker hit RLIMIT_CPU (" + WS.str() + ")",
                         Seconds);
    } else if (WS.signaled() && WS.Signal == SIGKILL) {
      // We did not send it: the kernel OOM killer is the usual suspect.
      obs::counters::WorkerOomKilled.add();
      ++Summary.OomKilled;
      Out = synthFailure(W, scanner::ScanErrorKind::KilledOom,
                         "worker got an unexplained SIGKILL (kernel OOM "
                         "killer?)",
                         Seconds);
    } else if (WS.signaled()) {
      obs::counters::WorkerCrashed.add();
      ++Summary.Crashed;
      Out = synthFailure(W, scanner::ScanErrorKind::Crashed,
                         "worker died on " + WS.str(), Seconds);
    } else {
      obs::counters::WorkerCrashed.add();
      ++Summary.Crashed;
      Out = synthFailure(W, scanner::ScanErrorKind::Crashed,
                         "worker produced no result (" + WS.str() + ")",
                         Seconds);
    }

    if (WorkerDied && Options.RetryCrashed && !L.IsRetry) {
      obs::counters::WorkerRetried.add();
      ++Summary.Retried;
      launch(L.WorkIdx, /*IsRetry=*/true);
      return;
    }
    completeSlot(W.SlotIndex, std::move(Out));
  };

  while (true) {
    while (!PoolStopRequested && Live.size() < Options.Jobs &&
           NextLaunch < Plan.size())
      launch(NextLaunch++, /*IsRetry=*/false);

    if (Live.empty() && (NextLaunch >= Plan.size() || PoolStopRequested))
      break;

    bool Reaped = false;
    for (size_t I = 0; I < Live.size();) {
      WaitStatus WS;
      if (Live[I].Proc.poll(WS)) {
        // reap() may relaunch (retry), appending to Live; erase by index
        // stays valid.
        LiveWorker L = std::move(Live[I]);
        Live.erase(Live.begin() + static_cast<long>(I));
        reap(L, WS);
        Reaped = true;
      } else {
        if (KillAfter > 0 && !Live[I].KillSent &&
            Live[I].Started.elapsedSeconds() > KillAfter) {
          Live[I].Proc.kill(SIGKILL);
          Live[I].KillSent = true;
        }
        ++I;
      }
    }
    if (!Reaped)
      ::usleep(5000);
  }

  flushCursor();
  Progress.finish();
  ::rmdir(TmpDir.c_str());
  if (Batch.EnableCounters)
    obs::setCountersEnabled(PrevCounters);
  Summary.WallSeconds = Wall.elapsedSeconds();
  return Summary;
}
