//===- driver/BatchDriver.cpp - Resumable batch scan driver ----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include "obs/Counters.h"
#include "obs/Histogram.h"
#include "obs/Metrics.h"
#include "support/JSON.h"
#include "support/Timer.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <exception>
#include <fstream>

using namespace gjs;
using namespace gjs::driver;

const char *driver::batchStatusName(BatchStatus S) {
  switch (S) {
  case BatchStatus::Ok:
    return "ok";
  case BatchStatus::Degraded:
    return "degraded";
  case BatchStatus::Failed:
    return "failed";
  case BatchStatus::Quarantined:
    return "quarantined";
  }
  return "unknown";
}

bool driver::batchStatusFromName(const std::string &Name, BatchStatus &Out) {
  for (BatchStatus S : {BatchStatus::Ok, BatchStatus::Degraded,
                        BatchStatus::Failed, BatchStatus::Quarantined}) {
    if (Name == batchStatusName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

BatchDriver::BatchDriver(BatchOptions Options) : Options(std::move(Options)) {}

//===----------------------------------------------------------------------===//
// CRC32 + length framing
//===----------------------------------------------------------------------===//

uint32_t driver::journalCrc32(const std::string &Data) {
  // IEEE 802.3 / zlib polynomial, table built on first use. Journal lines
  // are short; a 256-entry byte-at-a-time table is plenty.
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  for (unsigned char B : Data)
    C = Table[(C ^ B) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

std::string driver::frameJournalLine(const std::string &Payload) {
  char Head[32];
  std::snprintf(Head, sizeof(Head), "@%zu:%08x:", Payload.size(),
                journalCrc32(Payload));
  return Head + Payload;
}

bool driver::unframeJournalLine(const std::string &Line, std::string &Payload,
                                bool *WasFramed) {
  if (Line.empty() || Line[0] != '@') {
    // Bare line: pass through. Callers that need JSON still validate it.
    Payload = Line;
    if (WasFramed)
      *WasFramed = false;
    return true;
  }
  if (WasFramed)
    *WasFramed = true;
  size_t LenEnd = Line.find(':', 1);
  if (LenEnd == std::string::npos || LenEnd == 1)
    return false;
  size_t Len = 0;
  for (size_t I = 1; I < LenEnd; ++I) {
    if (Line[I] < '0' || Line[I] > '9')
      return false;
    Len = Len * 10 + static_cast<size_t>(Line[I] - '0');
  }
  // 8 hex CRC digits + the second ':' separator.
  size_t CrcEnd = LenEnd + 9;
  if (CrcEnd >= Line.size() || Line[CrcEnd] != ':')
    return false;
  uint32_t Crc = 0;
  for (size_t I = LenEnd + 1; I < CrcEnd; ++I) {
    char C = Line[I];
    uint32_t Nibble;
    if (C >= '0' && C <= '9')
      Nibble = static_cast<uint32_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Nibble = static_cast<uint32_t>(C - 'a') + 10;
    else
      return false;
    Crc = (Crc << 4) | Nibble;
  }
  // A SIGKILL mid-write leaves a short payload; anything but an exact
  // length + CRC match is a torn/corrupt record.
  std::string Body = Line.substr(CrcEnd + 1);
  if (Body.size() != Len || journalCrc32(Body) != Crc)
    return false;
  Payload = std::move(Body);
  return true;
}

ProgressMeter::ProgressMeter(size_t Total, size_t EveryPackages,
                             double EverySeconds, bool Quiet)
    : Total(Total), EveryPackages(EveryPackages), EverySeconds(EverySeconds),
      Quiet(Quiet) {}

void ProgressMeter::completed(bool DidFail) {
  ++Done;
  if (DidFail)
    ++Failed;
  if (!enabled())
    return;
  double Now = Clock.elapsedSeconds();
  bool OnCount = EveryPackages && Done - LastEmitDone >= EveryPackages;
  bool OnTime = EverySeconds > 0 && Now - LastEmitSeconds >= EverySeconds;
  if (OnCount || OnTime)
    emit();
}

void ProgressMeter::finish() {
  if (EmittedAny && Done != LastEmitDone)
    emit();
}

void ProgressMeter::emit() {
  // Every ratio is guarded: a flush before any package has completed
  // (Done == 0, possible when a resume run journals only skips) or a
  // sub-microsecond first package (Now == 0) must print a zero rate and no
  // ETA, never NaN/inf.
  auto safeDiv = [](double Num, double Den) {
    return Den > 0 ? Num / Den : 0.0;
  };
  double Now = Clock.elapsedSeconds();
  double Rate = safeDiv(static_cast<double>(Done), Now);
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "progress: %zu/%zu done, %zu failed, %.2f pkg/s", Done, Total,
                Failed, Rate);
  std::string Line = Buf;
  if (Rate > 0 && Total > Done) {
    std::snprintf(Buf, sizeof(Buf), ", eta %.1fs",
                  safeDiv(static_cast<double>(Total - Done), Rate));
    Line += Buf;
  }
  // Stderr, one line per emit: visible under `--journal`/piped stdout and
  // trivially filtered from captured tool output.
  std::fprintf(stderr, "%s\n", Line.c_str());
  std::fflush(stderr);
  LastEmitDone = Done;
  LastEmitSeconds = Now;
  EmittedAny = true;
}

std::string BatchDriver::journalLine(const BatchOutcome &Outcome) {
  json::Object O;
  O["package"] = json::Value(Outcome.Package);
  O["status"] = json::Value(batchStatusName(Outcome.Status));
  O["degradation"] = json::Value(Outcome.Result.Degradation);
  O["attempts"] = json::Value(Outcome.Result.Attempts);
  O["retries"] = json::Value(Outcome.Result.Retries);
  O["seconds"] = json::Value(Outcome.Seconds);
  // Cumulative over every ladder attempt (not just the final one): the
  // package's true phase-time attribution.
  const scanner::PhaseTimes &CT = Outcome.Result.CumulativeTimes;
  O["graph_seconds"] = json::Value(CT.Parse + CT.GraphBuild + CT.DbImport);
  O["query_seconds"] = json::Value(CT.Query);
  O["nodes"] = json::Value(static_cast<unsigned long>(Outcome.Result.MDGNodes));
  O["edges"] = json::Value(static_cast<unsigned long>(Outcome.Result.MDGEdges));
  O["pruned_queries"] = json::Value(Outcome.Result.PrunedQueries);
  if (!Outcome.Result.PruneReason.empty())
    O["prune_reason"] = json::Value(Outcome.Result.PruneReason);
  if (Outcome.Result.PruneSkippedImport)
    O["prune_skipped_import"] = json::Value(true);
  if (Outcome.Result.LinkedPackages)
    O["linked_packages"] = json::Value(Outcome.Result.LinkedPackages);
  if (!Outcome.Result.MissingDeps.empty()) {
    json::Array Deps;
    for (const std::string &Dep : Outcome.Result.MissingDeps)
      Deps.push_back(json::Value(Dep));
    O["missing_deps"] = json::Value(std::move(Deps));
  }

  if (!Outcome.Result.AttemptLog.empty()) {
    json::Array Attempts;
    for (const scanner::AttemptRecord &A : Outcome.Result.AttemptLog) {
      json::Object AO;
      AO["level"] = json::Value(A.Level);
      AO["graph_seconds"] =
          json::Value(A.Times.Parse + A.Times.GraphBuild + A.Times.DbImport);
      AO["query_seconds"] = json::Value(A.Times.Query);
      AO["deadline_work"] =
          json::Value(static_cast<unsigned long>(A.DeadlineWork));
      AO["timed_out"] = json::Value(A.TimedOut);
      Attempts.push_back(json::Value(std::move(AO)));
    }
    O["attempt_log"] = json::Value(std::move(Attempts));
  }

  if (!Outcome.Result.Counters.empty()) {
    json::Object Counters;
    for (const auto &[Name, Value] : Outcome.Result.Counters)
      Counters[Name] = json::Value(static_cast<unsigned long>(Value));
    O["counters"] = json::Value(std::move(Counters));
  }

  json::Array Errors;
  for (const scanner::ScanError &E : Outcome.Result.Errors) {
    json::Object EO;
    EO["phase"] = json::Value(scanner::scanPhaseName(E.Phase));
    EO["kind"] = json::Value(scanner::scanErrorKindName(E.Kind));
    if (!E.Detail.empty())
      EO["detail"] = json::Value(E.Detail);
    if (!E.File.empty())
      EO["file"] = json::Value(E.File);
    Errors.push_back(json::Value(std::move(EO)));
  }
  O["errors"] = json::Value(std::move(Errors));

  json::Array Reports;
  for (const queries::VulnReport &R : Outcome.Result.Reports) {
    json::Object RO;
    RO["cwe"] = json::Value(queries::cweOf(R.Type));
    RO["type"] = json::Value(queries::vulnTypeName(R.Type));
    RO["line"] = json::Value(static_cast<unsigned>(R.SinkLoc.Line));
    if (!R.SinkName.empty())
      RO["sink"] = json::Value(R.SinkName);
    Reports.push_back(json::Value(std::move(RO)));
  }
  O["reports"] = json::Value(std::move(Reports));

  // Compact (indent 0): exactly one line per package.
  return json::Value(std::move(O)).str();
}

bool BatchDriver::parseJournalLine(const std::string &Line, BatchOutcome &Out) {
  // Accept both framed (`@len:crc:payload`, the shared-ledger format) and
  // bare journal lines; a framed line with a bad length/CRC is malformed.
  std::string Payload;
  if (!unframeJournalLine(Line, Payload))
    return false;
  json::Value V;
  if (!json::parse(Payload, V) || !V.isObject())
    return false;
  const json::Object &O = V.asObject();

  auto Str = [&](const char *Key, std::string &Dst) {
    auto It = O.find(Key);
    if (It == O.end() || !It->second.isString())
      return false;
    Dst = It->second.asString();
    return true;
  };
  auto Num = [&](const char *Key, double &Dst) {
    auto It = O.find(Key);
    if (It == O.end() || !It->second.isNumber())
      return false;
    Dst = It->second.asNumber();
    return true;
  };

  Out = BatchOutcome();
  std::string Status;
  if (!Str("package", Out.Package) || !Str("status", Status) ||
      !batchStatusFromName(Status, Out.Status))
    return false;

  double D = 0;
  if (Num("seconds", D))
    Out.Seconds = D;
  if (Num("degradation", D))
    Out.Result.Degradation = static_cast<unsigned>(D);
  if (Num("attempts", D))
    Out.Result.Attempts = static_cast<unsigned>(D);
  if (Num("retries", D))
    Out.Result.Retries = static_cast<unsigned>(D);
  // graph_seconds folds parse+build+import together in the journal; claim
  // it all for GraphBuild so PhaseTimes::total() round-trips.
  if (Num("graph_seconds", D))
    Out.Result.CumulativeTimes.GraphBuild = D;
  if (Num("query_seconds", D))
    Out.Result.CumulativeTimes.Query = D;
  Out.Result.Times = Out.Result.CumulativeTimes;
  if (Num("nodes", D))
    Out.Result.MDGNodes = static_cast<size_t>(D);
  if (Num("edges", D))
    Out.Result.MDGEdges = static_cast<size_t>(D);
  if (Num("pruned_queries", D))
    Out.Result.PrunedQueries = static_cast<unsigned>(D);
  Str("prune_reason", Out.Result.PruneReason);
  {
    auto It = O.find("prune_skipped_import");
    if (It != O.end() && It->second.isBool())
      Out.Result.PruneSkippedImport = It->second.asBool();
  }
  if (Num("linked_packages", D))
    Out.Result.LinkedPackages = static_cast<unsigned>(D);
  {
    auto It = O.find("missing_deps");
    if (It != O.end() && It->second.isArray())
      for (const json::Value &DV : It->second.asArray())
        if (DV.isString())
          Out.Result.MissingDeps.push_back(DV.asString());
  }

  {
    auto It = O.find("counters");
    if (It != O.end() && It->second.isObject())
      for (const auto &[Name, Value] : It->second.asObject())
        if (Value.isNumber())
          Out.Result.Counters[Name] =
              static_cast<uint64_t>(Value.asNumber());
  }

  auto It = O.find("errors");
  if (It != O.end() && It->second.isArray()) {
    for (const json::Value &EV : It->second.asArray()) {
      if (!EV.isObject())
        return false;
      const json::Object &EO = EV.asObject();
      scanner::ScanError E;
      auto PIt = EO.find("phase");
      auto KIt = EO.find("kind");
      if (PIt == EO.end() || !PIt->second.isString() ||
          !scanner::scanPhaseFromName(PIt->second.asString(), E.Phase))
        return false;
      if (KIt == EO.end() || !KIt->second.isString() ||
          !scanner::scanErrorKindFromName(KIt->second.asString(), E.Kind))
        return false;
      auto DIt = EO.find("detail");
      if (DIt != EO.end() && DIt->second.isString())
        E.Detail = DIt->second.asString();
      auto FIt = EO.find("file");
      if (FIt != EO.end() && FIt->second.isString())
        E.File = FIt->second.asString();
      Out.Result.Errors.push_back(std::move(E));
    }
  }

  It = O.find("reports");
  if (It != O.end() && It->second.isArray()) {
    for (const json::Value &RV : It->second.asArray()) {
      if (!RV.isObject())
        return false;
      const json::Object &RO = RV.asObject();
      queries::VulnReport R;
      auto TIt = RO.find("type");
      if (TIt == RO.end() || !TIt->second.isString() ||
          !queries::vulnTypeFromName(TIt->second.asString(), R.Type))
        return false;
      auto LIt = RO.find("line");
      if (LIt != RO.end() && LIt->second.isNumber())
        R.SinkLoc.Line = static_cast<uint32_t>(LIt->second.asNumber());
      auto SIt = RO.find("sink");
      if (SIt != RO.end() && SIt->second.isString())
        R.SinkName = SIt->second.asString();
      Out.Result.Reports.push_back(std::move(R));
    }
  }
  return true;
}

std::set<std::string> BatchDriver::journaledPackages(const std::string &Path,
                                                     size_t *DroppedLines) {
  std::set<std::string> Done;
  size_t Dropped = 0;
  std::ifstream In(Path);
  if (!In) {
    if (DroppedLines)
      *DroppedLines = 0;
    return Done;
  }
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    // A killed run can leave a truncated final line (or, framed, a CRC
    // mismatch); skip-and-count anything unparseable rather than poisoning
    // the resume set or failing the whole resume.
    std::string Payload;
    json::Value V;
    if (!unframeJournalLine(Line, Payload) || !json::parse(Payload, V) ||
        !V.isObject()) {
      ++Dropped;
      continue;
    }
    const json::Object &O = V.asObject();
    auto It = O.find("package");
    if (It != O.end() && It->second.isString())
      Done.insert(It->second.asString());
  }
  if (Dropped) {
    // merge(), not add(): dropped resume lines must be visible in metrics
    // even before the run flips the counter gate on.
    obs::counters::JournalDroppedLines.merge(Dropped);
    std::fprintf(stderr,
                 "batch: journal %s: skipped %zu torn/corrupt line(s)\n",
                 Path.c_str(), Dropped);
  }
  if (DroppedLines)
    *DroppedLines = Dropped;
  return Done;
}

BatchOutcome driver::scanPackageIsolated(const BatchInput &Input,
                                         const scanner::ScanOptions &Scan) {
  BatchOutcome Out;
  Out.Package = Input.Name;
  Timer T;
  try {
    scanner::Scanner Scanner(Scan);
    Out.Result = Scanner.scanPackage(Input.Files);
    Out.Status = Out.Result.Errors.empty() ? BatchStatus::Ok
                                           : BatchStatus::Degraded;
  } catch (const std::exception &E) {
    Out.Status = BatchStatus::Failed;
    Out.Result.Errors.push_back({scanner::ScanPhase::Driver,
                                 scanner::ScanErrorKind::Internal,
                                 std::string("scan threw: ") + E.what(), ""});
  } catch (...) {
    Out.Status = BatchStatus::Failed;
    Out.Result.Errors.push_back({scanner::ScanPhase::Driver,
                                 scanner::ScanErrorKind::Internal,
                                 "scan threw a non-standard exception", ""});
  }
  Out.Seconds = T.elapsedSeconds();
  obs::hists::ScanLatency.recordSeconds(Out.Seconds);
  return Out;
}

BatchOutcome BatchDriver::scanOne(scanner::Scanner &Scanner,
                                  const BatchInput &Input) {
  BatchOutcome Out;
  Out.Package = Input.Name;
  Timer T;
  try {
    Out.Result = Scanner.scanPackage(Input.Files);
    Out.Status = Out.Result.Errors.empty() ? BatchStatus::Ok
                                           : BatchStatus::Degraded;
  } catch (const std::exception &E) {
    Out.Status = BatchStatus::Failed;
    Out.Result.Errors.push_back({scanner::ScanPhase::Driver,
                                 scanner::ScanErrorKind::Internal,
                                 std::string("scan threw: ") + E.what(), ""});
  } catch (...) {
    Out.Status = BatchStatus::Failed;
    Out.Result.Errors.push_back({scanner::ScanPhase::Driver,
                                 scanner::ScanErrorKind::Internal,
                                 "scan threw a non-standard exception", ""});
  }
  Out.Seconds = T.elapsedSeconds();
  obs::hists::ScanLatency.recordSeconds(Out.Seconds);
  return Out;
}

BatchSummary BatchDriver::run(const std::vector<BatchInput> &Inputs) {
  BatchSummary Summary;
  Timer Wall;

  std::set<std::string> Done;
  if (Options.Resume && !Options.JournalPath.empty())
    Done = journaledPackages(Options.JournalPath);

  std::ofstream Journal;
  if (!Options.JournalPath.empty()) {
    // Resume appends to the existing journal; a fresh run truncates it.
    Journal.open(Options.JournalPath, Options.Resume
                                          ? std::ios::out | std::ios::app
                                          : std::ios::out | std::ios::trunc);
  }

  // One Scanner for the whole batch: its scan sequence number is what a
  // FaultPlan targets ("fail the build of the 3rd package").
  scanner::Scanner Scanner(Options.Scan);

  // Counter lifecycle: on for the run, reset per package so each journal
  // line carries exactly that package's telemetry, prior state restored on
  // exit.
  bool PrevCounters = obs::countersEnabled();
  if (Options.EnableCounters)
    obs::setCountersEnabled(true);

  ProgressMeter Progress(Inputs.size(), Options.ProgressEveryPackages,
                         Options.ProgressEverySeconds, Options.Quiet);

  // The live counter registry is reset per package (journal attribution),
  // so metrics snapshots render these accumulated run totals instead.
  obs::CounterSnapshot RunCounters;
  Timer MetricsClock;
  for (const BatchInput &Input : Inputs) {
    if (Done.count(Input.Name) || Options.AlreadyDone.count(Input.Name)) {
      BatchOutcome Skip;
      Skip.Package = Input.Name;
      Skip.Skipped = true;
      Summary.Outcomes.push_back(std::move(Skip));
      ++Summary.SkippedResumed;
      continue;
    }
    if (Options.MaxPackages && Summary.Scanned >= Options.MaxPackages)
      break;
    if (Options.OnTick && !Options.OnTick())
      break;

    if (Options.EnableCounters)
      obs::resetCounters();
    if (Options.OnPackageStart)
      Options.OnPackageStart(Input.Name);
    BatchOutcome Outcome = scanOne(Scanner, Input);
    ++Summary.Scanned;
    Summary.TotalSeconds += Outcome.Seconds;
    switch (Outcome.Status) {
    case BatchStatus::Ok:
      ++Summary.Ok;
      break;
    case BatchStatus::Degraded:
      ++Summary.Degraded;
      break;
    case BatchStatus::Failed:
      ++Summary.Failed;
      break;
    case BatchStatus::Quarantined:
      // The in-process scanner never issues this verdict itself (the
      // shared-ledger driver journals quarantined packages before the scan
      // loop), but the accounting stays total over the enum.
      ++Summary.Quarantined;
      break;
    }
    Summary.TotalReports += Outcome.Result.Reports.size();

    // Journal incrementally: the line is flushed before the next package
    // starts, so a kill at any point leaves a valid resumable prefix.
    if (Journal.is_open()) {
      std::string Line = journalLine(Outcome);
      if (Options.FramedJournal)
        Line = frameJournalLine(Line);
      Journal << Line << '\n';
      Journal.flush();
    }
    Progress.completed(Outcome.Status == BatchStatus::Failed);
    Summary.Outcomes.push_back(std::move(Outcome));

    if (!Options.MetricsPath.empty()) {
      for (const auto &[Name, Value] :
           Summary.Outcomes.back().Result.Counters)
        RunCounters[Name] += Value;
      if (MetricsClock.elapsedSeconds() >= Options.MetricsEverySeconds) {
        obs::writePrometheusFile(Options.MetricsPath, RunCounters,
                                 obs::snapshotHistograms());
        MetricsClock.reset();
      }
    }
  }

  Progress.finish();
  if (Options.EnableCounters)
    obs::setCountersEnabled(PrevCounters);
  Summary.WallSeconds = Wall.elapsedSeconds();
  // Final snapshot regardless of cadence: a scraper (or the smoke test)
  // always sees the completed run's totals.
  if (!Options.MetricsPath.empty())
    obs::writePrometheusFile(Options.MetricsPath, RunCounters,
                             obs::snapshotHistograms());
  return Summary;
}

std::string driver::batchStatsText(const BatchSummary &Summary) {
  std::string Out;
  char Buf[160];
  // Every ratio below goes through safeDiv/safePct: an empty corpus, a
  // resume-only run (everything skipped), or a zero-query scan must print
  // zeros, never NaN or inf.
  auto safeDiv = [](double Num, double Den) {
    return Den > 0 ? Num / Den : 0.0;
  };
  auto safePct = [&safeDiv](double Num, double Den) {
    return 100.0 * safeDiv(Num, Den);
  };
  // Throughput is measured on wall-clock; TotalSeconds is the summed
  // per-package scan time (aggregate CPU under --jobs N, where it exceeds
  // the wall by up to the parallelism factor).
  double Wall =
      Summary.WallSeconds > 0 ? Summary.WallSeconds : Summary.TotalSeconds;
  double Rate = safeDiv(static_cast<double>(Summary.Scanned), Wall);
  std::snprintf(Buf, sizeof(Buf),
                "packages: %zu scanned, %zu resumed-skip (%zu ok, %zu "
                "degraded, %zu failed)\n",
                Summary.Scanned, Summary.SkippedResumed, Summary.Ok,
                Summary.Degraded, Summary.Failed);
  Out += Buf;
  if (Summary.Quarantined || Summary.LedgerClaims || Summary.LedgerSteals ||
      Summary.LedgerExpired) {
    std::snprintf(Buf, sizeof(Buf),
                  "ledger: %zu claims, %zu steals, %zu expired leases, %zu "
                  "quarantined\n",
                  Summary.LedgerClaims, Summary.LedgerSteals,
                  Summary.LedgerExpired, Summary.Quarantined);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "throughput: %.2f packages/sec (wall %.3fs, cpu %.3fs, avg "
                "%.3fs/package)\n",
                Rate, Wall, Summary.TotalSeconds,
                safeDiv(Summary.TotalSeconds,
                        static_cast<double>(Summary.Scanned)));
  Out += Buf;
  if (Summary.Crashed || Summary.OomKilled || Summary.DeadlineKilled ||
      Summary.Retried || Summary.Recycled) {
    std::snprintf(Buf, sizeof(Buf),
                  "workers: %zu crashed, %zu oom-killed, %zu "
                  "deadline-killed, %zu retried, %zu recycled\n",
                  Summary.Crashed, Summary.OomKilled, Summary.DeadlineKilled,
                  Summary.Retried, Summary.Recycled);
    Out += Buf;
  }

  size_t TimedOut = 0;
  std::vector<const BatchOutcome *> Scanned;
  for (const BatchOutcome &O : Summary.Outcomes) {
    if (O.Skipped)
      continue;
    Scanned.push_back(&O);
    if (O.Result.timedOut())
      ++TimedOut;
  }
  std::snprintf(Buf, sizeof(Buf), "timeouts: %zu (%.1f%%)\n", TimedOut,
                safePct(static_cast<double>(TimedOut),
                        static_cast<double>(Scanned.size())));
  Out += Buf;

  size_t PrunedPackages = 0, PrunedQueries = 0, SkippedImports = 0;
  size_t LinkedScans = 0, MissingDeps = 0;
  for (const BatchOutcome *O : Scanned) {
    if (O->Result.PrunedQueries) {
      ++PrunedPackages;
      PrunedQueries += O->Result.PrunedQueries;
    }
    if (O->Result.PruneSkippedImport)
      ++SkippedImports;
    if (O->Result.LinkedPackages)
      ++LinkedScans;
    MissingDeps += O->Result.MissingDeps.size();
  }
  std::snprintf(Buf, sizeof(Buf),
                "pruning: %zu packages (%.1f%%), %zu queries skipped, %zu "
                "imports skipped\n",
                PrunedPackages,
                safePct(static_cast<double>(PrunedPackages),
                        static_cast<double>(Scanned.size())),
                PrunedQueries, SkippedImports);
  Out += Buf;
  if (LinkedScans || MissingDeps) {
    std::snprintf(Buf, sizeof(Buf),
                  "linking: %zu dependency-tree scans, %zu missing deps\n",
                  LinkedScans, MissingDeps);
    Out += Buf;
  }

  std::sort(Scanned.begin(), Scanned.end(),
            [](const BatchOutcome *A, const BatchOutcome *B) {
              return A->Seconds > B->Seconds;
            });
  size_t N = std::min<size_t>(3, Scanned.size());
  if (N) {
    Out += "slowest:\n";
    for (size_t I = 0; I < N; ++I) {
      std::snprintf(Buf, sizeof(Buf), "  %zu. %s %.3fs (%s)\n", I + 1,
                    Scanned[I]->Package.c_str(), Scanned[I]->Seconds,
                    batchStatusName(Scanned[I]->Status));
      Out += Buf;
    }
  }
  return Out;
}
