//===- driver/BatchDriver.cpp - Resumable batch scan driver ----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include "support/JSON.h"
#include "support/Timer.h"

#include <exception>
#include <fstream>

using namespace gjs;
using namespace gjs::driver;

const char *driver::batchStatusName(BatchStatus S) {
  switch (S) {
  case BatchStatus::Ok:
    return "ok";
  case BatchStatus::Degraded:
    return "degraded";
  case BatchStatus::Failed:
    return "failed";
  }
  return "unknown";
}

BatchDriver::BatchDriver(BatchOptions Options) : Options(std::move(Options)) {}

std::string BatchDriver::journalLine(const BatchOutcome &Outcome) {
  json::Object O;
  O["package"] = json::Value(Outcome.Package);
  O["status"] = json::Value(batchStatusName(Outcome.Status));
  O["degradation"] = json::Value(Outcome.Result.Degradation);
  O["attempts"] = json::Value(Outcome.Result.Attempts);
  O["seconds"] = json::Value(Outcome.Seconds);
  O["nodes"] = json::Value(static_cast<unsigned long>(Outcome.Result.MDGNodes));
  O["edges"] = json::Value(static_cast<unsigned long>(Outcome.Result.MDGEdges));

  json::Array Errors;
  for (const scanner::ScanError &E : Outcome.Result.Errors) {
    json::Object EO;
    EO["phase"] = json::Value(scanner::scanPhaseName(E.Phase));
    EO["kind"] = json::Value(scanner::scanErrorKindName(E.Kind));
    if (!E.Detail.empty())
      EO["detail"] = json::Value(E.Detail);
    if (!E.File.empty())
      EO["file"] = json::Value(E.File);
    Errors.push_back(json::Value(std::move(EO)));
  }
  O["errors"] = json::Value(std::move(Errors));

  json::Array Reports;
  for (const queries::VulnReport &R : Outcome.Result.Reports) {
    json::Object RO;
    RO["cwe"] = json::Value(queries::cweOf(R.Type));
    RO["type"] = json::Value(queries::vulnTypeName(R.Type));
    RO["line"] = json::Value(static_cast<unsigned>(R.SinkLoc.Line));
    if (!R.SinkName.empty())
      RO["sink"] = json::Value(R.SinkName);
    Reports.push_back(json::Value(std::move(RO)));
  }
  O["reports"] = json::Value(std::move(Reports));

  // Compact (indent 0): exactly one line per package.
  return json::Value(std::move(O)).str();
}

std::set<std::string> BatchDriver::journaledPackages(const std::string &Path) {
  std::set<std::string> Done;
  std::ifstream In(Path);
  if (!In)
    return Done;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    json::Value V;
    // A killed run can leave a truncated final line; skip anything
    // unparseable rather than poisoning the resume set.
    if (!json::parse(Line, V) || !V.isObject())
      continue;
    const json::Object &O = V.asObject();
    auto It = O.find("package");
    if (It != O.end() && It->second.isString())
      Done.insert(It->second.asString());
  }
  return Done;
}

BatchOutcome BatchDriver::scanOne(scanner::Scanner &Scanner,
                                  const BatchInput &Input) {
  BatchOutcome Out;
  Out.Package = Input.Name;
  Timer T;
  try {
    Out.Result = Scanner.scanPackage(Input.Files);
    Out.Status = Out.Result.Errors.empty() ? BatchStatus::Ok
                                           : BatchStatus::Degraded;
  } catch (const std::exception &E) {
    Out.Status = BatchStatus::Failed;
    Out.Result.Errors.push_back({scanner::ScanPhase::Driver,
                                 scanner::ScanErrorKind::Internal,
                                 std::string("scan threw: ") + E.what(), ""});
  } catch (...) {
    Out.Status = BatchStatus::Failed;
    Out.Result.Errors.push_back({scanner::ScanPhase::Driver,
                                 scanner::ScanErrorKind::Internal,
                                 "scan threw a non-standard exception", ""});
  }
  Out.Seconds = T.elapsedSeconds();
  return Out;
}

BatchSummary BatchDriver::run(const std::vector<BatchInput> &Inputs) {
  BatchSummary Summary;

  std::set<std::string> Done;
  if (Options.Resume && !Options.JournalPath.empty())
    Done = journaledPackages(Options.JournalPath);

  std::ofstream Journal;
  if (!Options.JournalPath.empty()) {
    // Resume appends to the existing journal; a fresh run truncates it.
    Journal.open(Options.JournalPath, Options.Resume
                                          ? std::ios::out | std::ios::app
                                          : std::ios::out | std::ios::trunc);
  }

  // One Scanner for the whole batch: its scan sequence number is what a
  // FaultPlan targets ("fail the build of the 3rd package").
  scanner::Scanner Scanner(Options.Scan);

  for (const BatchInput &Input : Inputs) {
    if (Done.count(Input.Name)) {
      BatchOutcome Skip;
      Skip.Package = Input.Name;
      Skip.Skipped = true;
      Summary.Outcomes.push_back(std::move(Skip));
      ++Summary.SkippedResumed;
      continue;
    }
    if (Options.MaxPackages && Summary.Scanned >= Options.MaxPackages)
      break;

    BatchOutcome Outcome = scanOne(Scanner, Input);
    ++Summary.Scanned;
    switch (Outcome.Status) {
    case BatchStatus::Ok:
      ++Summary.Ok;
      break;
    case BatchStatus::Degraded:
      ++Summary.Degraded;
      break;
    case BatchStatus::Failed:
      ++Summary.Failed;
      break;
    }
    Summary.TotalReports += Outcome.Result.Reports.size();

    // Journal incrementally: the line is flushed before the next package
    // starts, so a kill at any point leaves a valid resumable prefix.
    if (Journal.is_open()) {
      Journal << journalLine(Outcome) << '\n';
      Journal.flush();
    }
    Summary.Outcomes.push_back(std::move(Outcome));
  }
  return Summary;
}
