//===- driver/BatchDriver.h - Resumable batch scan driver --------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch scan driver: runs the scanner over a list of packages the way
/// the paper's evaluation runs it over the vulnerability dataset and the
/// 20k-package npm corpus (§5.2, §5.6) — thousands of mutually independent
/// scans where one pathological package must never take down the run.
///
///  - **Per-package isolation**: each scan runs under a catch-all; a scan
///    that throws is journaled as a failed package (ScanPhase::Driver,
///    ScanErrorKind::Internal) and the batch moves on.
///
///  - **Incremental JSONL journal**: one line per completed package,
///    flushed as soon as the package finishes, recording status, ladder
///    degradation level, structured errors, and the reports themselves.
///    A killed run leaves a valid journal prefix.
///
///  - **Resume**: with BatchOptions::Resume, packages already present in
///    the journal are skipped, so restarting after a crash (or sharding
///    with MaxPackages) re-scans only unjournaled work.
///
/// The evaluation harness (eval::Harness) and the `graphjs batch` CLI mode
/// are both thin layers over this driver.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_DRIVER_BATCHDRIVER_H
#define GJS_DRIVER_BATCHDRIVER_H

#include "scanner/Scanner.h"
#include "support/Timer.h"

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace gjs {
namespace driver {

/// One package of the batch. Name is the journal key (resume matches on
/// it), so it must be unique and stable across runs.
struct BatchInput {
  std::string Name;
  std::vector<scanner::SourceFile> Files;
};

/// Per-package verdict in the journal.
enum class BatchStatus {
  Ok,       ///< Clean scan, no errors recorded.
  Degraded, ///< Finished with recorded errors (timeouts, skipped files,
            ///< injected faults, ladder retries); partial results stand.
  Failed,   ///< The scan itself died (driver-level isolation caught it).
  Quarantined, ///< Poison package: the shared-ledger circuit breaker gave
               ///< up after N kill-class failures across any supervisor.
               ///< Never scanned again; the journal line carries the strike
               ///< history instead of results.
};

/// Stable lowercase names ("ok", "degraded", "failed", "quarantined") for
/// journal lines.
const char *batchStatusName(BatchStatus S);
/// Parses the names back (journal-line parsing); false on unknown.
bool batchStatusFromName(const std::string &Name, BatchStatus &Out);

/// CRC32 (IEEE 802.3 polynomial, the zlib/PNG one) over \p Data. Used to
/// frame ledger/journal records so a SIGKILL-torn tail is detected instead
/// of silently resuming from a corrupt line.
uint32_t journalCrc32(const std::string &Data);

/// Wraps one journal/ledger record payload in CRC32 + length framing:
/// `@<len>:<crc32-hex8>:<payload>`. The payload must not contain a newline.
std::string frameJournalLine(const std::string &Payload);

/// Unframes one journal line. Framed lines (leading '@') are verified:
/// returns false on a short/torn payload or a CRC mismatch. Bare lines pass
/// through unchanged (every reader accepts both formats), with *WasFramed
/// set to false when the caller cares.
bool unframeJournalLine(const std::string &Line, std::string &Payload,
                        bool *WasFramed = nullptr);

/// One journaled package outcome.
struct BatchOutcome {
  std::string Package;
  BatchStatus Status = BatchStatus::Ok;
  scanner::ScanResult Result;
  double Seconds = 0;
  /// True when this package was skipped because a prior run already
  /// journaled it (resume); Result is then empty.
  bool Skipped = false;
  /// Multi-process mode: the exact JSONL line the worker journaled (merged
  /// verbatim into the main journal so worker and in-process output stay
  /// byte-compatible). Empty in in-process mode.
  std::string RawJournalLine;
};

struct BatchOptions {
  scanner::ScanOptions Scan;
  /// JSONL journal path; empty disables journaling (and resume).
  std::string JournalPath;
  /// Skip packages already journaled at JournalPath (appends new lines).
  bool Resume = false;
  /// Stop after scanning this many (unjournaled) packages; 0 = no limit.
  /// With Resume this shards a large batch across successive runs — and
  /// lets tests simulate a run killed partway through.
  size_t MaxPackages = 0;
  /// Enable obs counters for the duration of the run (restoring the prior
  /// state afterwards) and reset them between packages, so every journal
  /// line carries that package's counter values.
  bool EnableCounters = true;
  /// Stderr progress line cadence: emit after every N completed packages
  /// (0 = never on count) and/or every T seconds (0 = never on time).
  /// Both zero (the library default) disables progress entirely; the CLI
  /// turns it on unless `--quiet`.
  size_t ProgressEveryPackages = 0;
  double ProgressEverySeconds = 0;
  /// Hard-suppresses the stderr progress line even when a cadence is set.
  /// Cadences encode "how often"; Quiet encodes "the user said --quiet" —
  /// keeping them separate means a caller that sets cadences
  /// unconditionally cannot accidentally un-silence a quiet run.
  bool Quiet = false;
  /// Prometheus text-format metrics snapshot path (`--metrics-out`): the
  /// run rewrites this file every MetricsEverySeconds and once at the end,
  /// so an external scraper sees live counters and latency percentiles.
  /// Empty disables. Honored by the in-process driver and both pool modes.
  std::string MetricsPath;
  double MetricsEverySeconds = 5.0;
  /// Write journal lines CRC32+length framed (`@<len>:<crc8>:<payload>`).
  /// The shared-ledger shard journals turn this on; the default stays bare
  /// JSONL so existing journal consumers keep parsing lines directly.
  /// Readers (resume, parseJournalLine) accept both formats either way.
  bool FramedJournal = false;
  /// Extra resume set beyond the journal at JournalPath: packages another
  /// supervisor already journaled (a stolen shard's prior-token journals).
  /// Skipped exactly like resumed packages.
  std::set<std::string> AlreadyDone;
  /// Called immediately before each package scan is dispatched (after
  /// resume/AlreadyDone skips). The shared-ledger driver appends a framed
  /// start record here, so a supervisor SIGKILLed mid-scan leaves a
  /// start-without-terminal strike for the quarantine circuit breaker.
  std::function<void(const std::string &Package)> OnPackageStart;
  /// Called between packages (and each pool scheduler iteration). Return
  /// false to stop assigning new work and drain — the shared-ledger driver
  /// heartbeats its lease here and bails out when it has been fenced by a
  /// higher token.
  std::function<bool()> OnTick;
};

/// Aggregate counters for a batch run.
struct BatchSummary {
  std::vector<BatchOutcome> Outcomes; ///< In input order, skips included.
  size_t Scanned = 0;
  size_t SkippedResumed = 0;
  size_t Ok = 0;
  size_t Degraded = 0;
  size_t Failed = 0;
  size_t TotalReports = 0;
  /// Summed per-package scan time. In-process this tracks wall-clock
  /// closely; under `--jobs N` it is the aggregate CPU spent across
  /// workers and exceeds WallSeconds by up to the parallelism factor.
  double TotalSeconds = 0;
  /// End-to-end wall-clock of the whole run (launch to drain).
  double WallSeconds = 0;
  /// Worker-level failure breakdown (multi-process mode; all zero for the
  /// in-process driver).
  size_t Crashed = 0;
  size_t OomKilled = 0;
  size_t DeadlineKilled = 0;
  size_t Retried = 0;
  /// Planned persistent-worker replacements (recycle quota or memory
  /// watermark) — worker hygiene, not failures.
  size_t Recycled = 0;
  /// Shared-ledger mode: packages the quarantine circuit breaker wrote off
  /// this run, and the lease traffic this supervisor generated.
  size_t Quarantined = 0;
  size_t LedgerClaims = 0;
  size_t LedgerSteals = 0;
  size_t LedgerExpired = 0;
};

/// One isolated package scan with a fresh Scanner: exceptions become a
/// Failed outcome (ScanPhase::Driver, ScanErrorKind::Internal) instead of
/// propagating. This is the worker-side scan body shared by the process
/// pool and the scan service; BatchDriver itself keeps one Scanner for the
/// whole batch (its scan sequence is what FaultPlan::Package targets) and
/// wraps it with the same containment.
BatchOutcome scanPackageIsolated(const BatchInput &Input,
                                 const scanner::ScanOptions &Scan);

/// Renders throughput stats for a finished batch (`graphjs batch --stats`):
/// packages/sec on wall-clock, CPU vs wall split, timeout rate, worker
/// failure breakdown, and the top-3 slowest packages.
std::string batchStatsText(const BatchSummary &Summary);

/// Stderr progress reporting shared by the in-process driver and the
/// process pool: "progress: 12/40 done, 2 failed, 3.1 pkg/s, eta 9.0s",
/// throttled to every N packages / T seconds.
class ProgressMeter {
public:
  ProgressMeter(size_t Total, size_t EveryPackages, double EverySeconds,
                bool Quiet = false);

  /// Records one more completed package (failed or not) and emits a line
  /// when the cadence says so.
  void completed(bool DidFail);
  /// Emits a final line if anything was reported at all.
  void finish();
  bool enabled() const {
    return !Quiet && (EveryPackages > 0 || EverySeconds > 0);
  }

private:
  void emit();

  size_t Total;
  size_t EveryPackages;
  double EverySeconds;
  bool Quiet;
  size_t Done = 0;
  size_t Failed = 0;
  size_t LastEmitDone = 0;
  double LastEmitSeconds = 0;
  bool EmittedAny = false;
  Timer Clock;
};

/// The batch driver.
class BatchDriver {
public:
  explicit BatchDriver(BatchOptions Options = {});

  /// Runs the whole batch, journaling incrementally.
  BatchSummary run(const std::vector<BatchInput> &Inputs);

  const BatchOptions &options() const { return Options; }

  /// Package names already journaled at \p Path. Torn or corrupt lines
  /// (truncated tail from a killed run, CRC mismatch on a framed line) are
  /// skipped and logged — counted in the journal.dropped_lines obs counter
  /// and in *DroppedLines when given — instead of failing the resume.
  static std::set<std::string>
  journaledPackages(const std::string &Path, size_t *DroppedLines = nullptr);

  /// Renders one outcome as a single JSONL journal line (no newline).
  static std::string journalLine(const BatchOutcome &Outcome);

  /// Parses a journal line back into an outcome (the supervisor reads
  /// worker journals with this; lossy inverse of journalLine — only the
  /// fields the summary and CLI output need are reconstructed). False on
  /// malformed input.
  static bool parseJournalLine(const std::string &Line, BatchOutcome &Out);

private:
  BatchOptions Options;

  /// One isolated package scan: exceptions become a Failed outcome with a
  /// Driver/Internal ScanError instead of propagating.
  BatchOutcome scanOne(scanner::Scanner &Scanner, const BatchInput &Input);
};

} // namespace driver
} // namespace gjs

#endif // GJS_DRIVER_BATCHDRIVER_H
