//===- driver/ScanService.h - Long-lived graphjs scan daemon -----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `graphjs serve`: a long-lived scan daemon with warm persistent workers.
/// The batch pool amortizes fork cost across one run; the service amortizes
/// it across *runs* — CI bots, editor integrations, and registry monitors
/// pay worker startup once and then get crash-contained scans on demand.
///
/// Shape:
///
///  - **Transport**: a Unix-domain stream socket. Requests and responses
///    are newline-delimited JSON (one object per line); a connection may
///    carry any number of requests.
///  - **Ops**: `scan` (name + file paths, optional per-request deadline and
///    fault spec), `status` (queue/worker/counter snapshot), `drain` (stop
///    admitting scans; in-flight and queued work still completes), and
///    `shutdown` (drain, then exit once the queue is empty).
///  - **Admission**: a bounded queue. A scan arriving with the queue full
///    is rejected immediately with `{"ok":false,"error":"overloaded"}` —
///    explicit backpressure instead of unbounded buffering — and a queued
///    request that outwaits its own deadline is rejected with `"deadline"`.
///  - **Workers**: the same persistent-worker machinery as the pool
///    (driver/WorkerProtocol.h): frames over socketpairs, the kill ladder
///    for wedged jobs, crash/oom/deadline attribution, recycling on a
///    package quota or RSS watermark. A dead worker is re-forked under
///    exponential backoff (a worker that dies on arrival must not turn the
///    daemon into a fork bomb), and idle workers answer heartbeat pings so
///    a wedged-while-idle worker is detected before a job lands on it.
///  - **Durability**: an optional append-mode JSONL journal records every
///    completed scan in the BatchDriver line format, flushed per line.
///    SIGINT/SIGTERM drain gracefully: in-flight requests finish, the
///    journal is flushed, the socket is unlinked.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_DRIVER_SCANSERVICE_H
#define GJS_DRIVER_SCANSERVICE_H

#include "scanner/Scanner.h"

#include <string>

namespace gjs {
namespace driver {

struct ServiceOptions {
  /// Unix-domain socket path to bind (a stale file there is replaced).
  std::string SocketPath;
  /// Base scan settings for every request (per-request deadline_s and
  /// fault override Deadline.WallSeconds / Fault).
  scanner::ScanOptions Scan;
  /// Warm persistent workers kept forked and waiting.
  unsigned Jobs = 2;
  /// Admission bound: scans beyond this many queued requests are rejected
  /// with "overloaded".
  size_t QueueMax = 64;
  /// Supervisor kill for a wedged job, seconds of wall-clock (0 derives
  /// 2*deadline+1 from the request's or the base deadline when one is set,
  /// else disables the killer — same policy as the pool).
  double KillAfterSeconds = 0;
  /// Recycle a worker after this many scans (0 = unlimited).
  unsigned RecycleAfter = 0;
  /// Recycle a worker whose RSS exceeds this many MiB after a job (0 = off).
  size_t RecycleRssMB = 0;
  /// RLIMIT_AS per worker in MiB (0 = uncapped; ignored under ASan).
  size_t MemLimitMB = 0;
  /// Append-mode JSONL journal of completed scans (empty = none).
  std::string JournalPath;
  /// Idle-worker heartbeat cadence in seconds: ping after this long idle,
  /// kill if the pong takes longer than this again (0 disables).
  double HeartbeatSeconds = 5.0;
  /// Suppress the per-event stderr log lines.
  bool Quiet = false;
  /// Prometheus text-format snapshot path (`--metrics-out`): rewritten
  /// every MetricsEverySeconds off the poll loop and once at drain, so an
  /// external scraper sees live counters, latency percentiles, and
  /// uptime/queue gauges without speaking the NDJSON protocol. Empty
  /// disables.
  std::string MetricsPath;
  double MetricsEverySeconds = 5.0;
};

/// The scan daemon. Single-threaded: one poll() loop multiplexes the
/// listening socket, client connections, and worker pipes.
class ScanService {
public:
  explicit ScanService(ServiceOptions Options);

  /// Binds the socket and serves until `shutdown` (request or signal).
  /// Returns 0 on a clean drain, 1 when the socket could not be set up.
  int run();

  const ServiceOptions &options() const { return Options; }

  /// One-shot client: connect to \p SocketPath (retrying while the daemon
  /// is still starting, up to \p TimeoutSeconds), send one request line,
  /// and read one response line. The transport behind
  /// `graphjs serve --client` and the service tests.
  static bool request(const std::string &SocketPath,
                      const std::string &RequestLine, std::string &Response,
                      std::string *Error = nullptr,
                      double TimeoutSeconds = 30.0);

  /// Like request(), but retries `overloaded` admission rejections with
  /// exponential backoff plus jitter (25ms, 50ms, 100ms, ... capped at 1s
  /// per sleep) until the response is anything else or \p RetryBudgetMs of
  /// wall time is spent. A zero budget degenerates to a single request().
  /// Each retry bumps the serve.client_retries counter; *Retries, when
  /// given, receives the count for this call. The transport behind
  /// `graphjs serve --client --retry-budget-ms` and `graphjs metrics`.
  static bool requestWithRetry(const std::string &SocketPath,
                               const std::string &RequestLine,
                               std::string &Response,
                               std::string *Error = nullptr,
                               double RetryBudgetMs = 0,
                               size_t *Retries = nullptr,
                               double TimeoutSeconds = 30.0);

private:
  ServiceOptions Options;
};

} // namespace driver
} // namespace gjs

#endif // GJS_DRIVER_SCANSERVICE_H
